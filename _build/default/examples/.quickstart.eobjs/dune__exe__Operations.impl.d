examples/operations.ml: Des Format Harness Kvsm List Netsim Option Printf Raft String
