examples/quickstart.mli:
