examples/lossy_links.ml: Des Dynatune Format Harness List Netsim Printf Raft Stats String
