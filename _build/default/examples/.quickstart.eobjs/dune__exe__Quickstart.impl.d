examples/quickstart.ml: Des Dynatune Format Harness Kvsm List Netsim Printf Raft String
