examples/fluctuating_wan.ml: Des Format Harness List Netsim Printf Raft Stats Stdlib String
