examples/operations.mli:
