examples/fluctuating_wan.mli:
