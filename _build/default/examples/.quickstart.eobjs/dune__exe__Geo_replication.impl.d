examples/geo_replication.ml: Des Dynatune Format Harness List Netsim Raft Scenarios
