examples/lossy_links.mli:
