(* Operations tour: the library features an operator of a Dynatune
   cluster would actually use day to day — linearizable reads, planned
   leadership hand-off before maintenance, partition tolerance, and
   crash recovery with log compaction.

     dune exec examples/operations.exe *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Time = Des.Time
module Node_id = Netsim.Node_id

let printf = Format.printf

let put c ~seq key value =
  ignore
    (Cluster.submit_target c
       ~payload:(Kvsm.Command.to_payload (Kvsm.Command.Put { key; value }))
       ~client_id:1 ~seq
       ~on_result:(fun ~committed:_ -> ()))

let leader_name c =
  match Cluster.leader c with
  | Some l -> Format.asprintf "%a" Node_id.pp (Raft.Node.id l)
  | None -> "<none>"

let () =
  let config =
    Raft.Config.with_snapshots ~threshold:25 (Raft.Config.dynatune ())
  in
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms:40. ~jitter:0.05 ()))
  in
  let c = Cluster.create ~seed:77L ~n:5 ~config ~conditions () in
  Cluster.start c;
  ignore (Cluster.await_leader c ~timeout:(Time.sec 30));
  printf "cluster up, leader %s@." (leader_name c);

  (* 1. Writes + a linearizable read. *)
  for i = 1 to 40 do
    put c ~seq:i (Printf.sprintf "cfg/%d" i) "enabled"
  done;
  Cluster.run_for c (Time.sec 2);
  printf "@.[reads] linearizable read of cfg/7 via ReadIndex...@.";
  Cluster.linearizable_read c ~key:"cfg/7" ~on_result:(fun r ->
      match r with
      | Some (Some v) ->
          printf "  served at t=%a: cfg/7 = %S (leadership confirmed by a \
                  quorum round)@."
            Time.pp (Cluster.now c) v
      | Some None -> printf "  key absent@."
      | None -> printf "  read failed (no stable leader)@.");
  Cluster.run_for c (Time.ms 500);

  (* 2. Log compaction has kicked in. *)
  (match Cluster.leader c with
  | Some l ->
      let log = Raft.Server.log (Raft.Node.server l) in
      printf
        "@.[compaction] leader log: %d live entries behind snapshot \
         boundary %d@."
        (Raft.Log.length log)
        (Raft.Log.snapshot_index log)
  | None -> ());

  (* 3. Planned maintenance: hand leadership off, no OTS. *)
  let old_leader = Option.get (Cluster.leader c) in
  let target =
    List.find
      (fun id -> not (Node_id.equal id (Raft.Node.id old_leader)))
      (Cluster.node_ids c)
  in
  printf "@.[transfer] moving leadership %s -> %a for maintenance...@."
    (leader_name c) Node_id.pp target;
  let t0 = Cluster.now c in
  ignore (Cluster.transfer_leadership c target);
  let rec wait_transfer () =
    match Cluster.leader c with
    | Some l when Node_id.equal (Raft.Node.id l) target -> ()
    | _ when Time.diff (Cluster.now c) t0 > Time.sec 10 -> ()
    | _ ->
        Cluster.run_for c (Time.ms 5);
        wait_transfer ()
  in
  wait_transfer ();
  printf "  new leader %s after %.0f ms (no election timeout involved)@."
    (leader_name c)
    (Time.to_ms_f (Time.diff (Cluster.now c) t0));
  Cluster.run_for c (Time.sec 1);

  (* 4. Partition: the majority side keeps serving. *)
  let minority =
    [ Raft.Node.id old_leader ]
  in
  printf "@.[partition] isolating %a...@." Node_id.pp (List.hd minority);
  Cluster.partition c [ minority ];
  for i = 41 to 50 do
    put c ~seq:i (Printf.sprintf "during-partition/%d" i) "ok"
  done;
  Cluster.run_for c (Time.sec 3);
  printf "  leader %s still serving; healing...@." (leader_name c);
  Cluster.heal_partition c;
  Cluster.run_for c (Time.sec 5);

  (* 5. Crash a follower: it recovers from its snapshot + log. *)
  let victim =
    List.find
      (fun id ->
        match Cluster.leader c with
        | Some l -> not (Node_id.equal id (Raft.Node.id l))
        | None -> true)
      (Cluster.node_ids c)
  in
  printf "@.[crash] crash-restarting %a (loses volatile state)...@."
    Node_id.pp victim;
  Fault.crash_and_restart c victim ~downtime:(Time.sec 2);
  Cluster.run_for c (Time.sec 5);
  let digests =
    List.map (fun id -> Kvsm.Store.state_digest (Cluster.store c id))
      (Cluster.node_ids c)
  in
  (match digests with
  | d :: rest when List.for_all (String.equal d) rest ->
      printf "  recovered from snapshot + log replay; all 5 replicas agree@."
  | _ -> printf "  WARNING: replicas diverged@.");
  printf "@.done: reads, transfer, partition, crash recovery — all healthy.@."
