(* Geo-replication: a five-region WAN cluster (Tokyo, London, California,
   Sydney, São Paulo) where every leader-follower path gets its own tuned
   election parameters — the per-path asymmetry that motivates Dynatune's
   design (Section III-B).

     dune exec examples/geo_replication.exe *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault

let printf = Format.printf

let region id = List.nth Scenarios.Geo.regions (Netsim.Node_id.to_int id)
let region_name id = Scenarios.Geo.name (region id)

let () =
  let cluster =
    Cluster.create ~seed:5L ~n:5 ~config:(Raft.Config.dynatune ()) ()
  in
  Scenarios.Geo.apply cluster ();
  Cluster.start cluster;
  let leader =
    match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
    | Some l -> l
    | None -> failwith "no leader elected"
  in
  printf "leader elected: %s@."
    (region_name (Raft.Node.id leader));

  (* Warm the tuners, then show the per-path parameters. *)
  Cluster.run_for cluster (Des.Time.sec 30);
  printf "@.per-path election parameters (leader-side h, follower-side Et):@.";
  printf "  %-12s %10s %12s %12s %10s@." "follower" "RTT(ms)" "tuned Et(ms)"
    "tuned h(ms)" "loss est";
  List.iter
    (fun id ->
      if not (Netsim.Node_id.equal id (Raft.Node.id leader)) then begin
        let server = Raft.Node.server (Cluster.node cluster id) in
        let leader_server = Raft.Node.server leader in
        let rtt =
          Scenarios.Geo.rtt_ms (region (Raft.Node.id leader)) (region id)
        in
        let h =
          match Raft.Server.heartbeat_interval_to leader_server id with
          | Some h -> Des.Time.to_ms_f h
          | None -> nan
        in
        match Raft.Server.tuner server with
        | Some tuner ->
            printf "  %-12s %10.0f %12.1f %12.1f %9.3f%%@."
              (region_name id)
              rtt
              (Des.Time.to_ms_f (Dynatune.Tuner.election_timeout tuner))
              h
              (100. *. Dynatune.Tuner.loss_rate tuner)
        | None -> ()
      end)
    (Cluster.node_ids cluster);
  printf
    "@.each follower watches the leader with a timeout matched to its own \
     path;@.static Raft would use 1000ms everywhere.@.";

  (* A failover on the WAN. *)
  printf "@.killing the leader in %s...@."
    (region_name (Raft.Node.id leader));
  match Fault.fail_and_measure cluster () with
  | Ok o ->
      printf "  detected in %.0f ms, new leader %s established in %.0f ms@."
        o.Fault.detection_ms
        (region_name o.Fault.new_leader)
        o.Fault.ots_ms
  | Error msg -> printf "  failover failed: %s@." msg
