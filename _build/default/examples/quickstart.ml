(* Quickstart: build a five-server Dynatune cluster, write some keys,
   kill the leader, and watch the failure being detected and repaired.

     dune exec examples/quickstart.exe *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Monitor = Harness.Monitor

let printf = Format.printf

let () =
  (* A LAN-ish network: 100 ms RTT, mild jitter, no loss — the paper's
     Section IV-B setup. *)
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms:100. ~jitter:0.05 ()))
  in
  let cluster =
    Cluster.create ~seed:1L ~n:5 ~config:(Raft.Config.dynatune ()) ~conditions
      ()
  in
  Cluster.start cluster;

  (* 1. Elect a leader. *)
  let leader =
    match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
    | Some l -> l
    | None -> failwith "no leader elected"
  in
  printf "t=%a: %a became leader@." Des.Time.pp (Cluster.now cluster)
    Netsim.Node_id.pp (Raft.Node.id leader);

  (* 2. Write some keys through the replicated KV store. *)
  let committed = ref 0 in
  for i = 1 to 10 do
    let payload =
      Kvsm.Command.to_payload
        (Kvsm.Command.Put
           { key = Printf.sprintf "user:%d" i; value = Printf.sprintf "v%d" i })
    in
    match
      Cluster.submit_target cluster ~payload ~client_id:1 ~seq:i
        ~on_result:(fun ~committed:ok -> if ok then incr committed)
    with
    | `Accepted -> ()
    | `Not_leader _ -> printf "  (leader moved, request %d dropped)@." i
  done;
  Cluster.run_for cluster (Des.Time.sec 2);
  printf "t=%a: %d/10 writes committed; store has %d keys on every replica@."
    Des.Time.pp (Cluster.now cluster) !committed
    (Kvsm.Store.size (Cluster.store cluster (Raft.Node.id leader)));

  (* 3. Let Dynatune warm up and show what it tuned. *)
  Cluster.run_for cluster (Des.Time.sec 20);
  printf "@.After warm-up, election parameters per follower:@.";
  List.iter
    (fun id ->
      if not (Netsim.Node_id.equal id (Raft.Node.id leader)) then
        let server = Raft.Node.server (Cluster.node cluster id) in
        match Raft.Server.tuner server with
        | Some tuner ->
            printf "  %a: %a@." Netsim.Node_id.pp id Dynatune.Tuner.pp tuner
        | None -> ())
    (Cluster.node_ids cluster);
  printf "  (static Raft would use Et = 1000ms, h = 100ms)@.";

  (* 4. Kill the leader and measure recovery. *)
  printf "@.t=%a: killing the leader...@." Des.Time.pp (Cluster.now cluster);
  (match Fault.fail_and_measure cluster () with
  | Ok o ->
      printf
        "  failure detected after %.0f ms; new leader %a established after \
         %.0f ms (%d election round%s)@."
        o.Fault.detection_ms Netsim.Node_id.pp o.Fault.new_leader o.Fault.ots_ms
        o.Fault.election_rounds
        (if o.Fault.election_rounds = 1 then "" else "s")
  | Error msg -> printf "  failover failed: %s@." msg);

  (* 5. The service keeps accepting writes under the new leader. *)
  let committed2 = ref 0 in
  for i = 11 to 20 do
    let payload =
      Kvsm.Command.to_payload
        (Kvsm.Command.Put
           { key = Printf.sprintf "user:%d" i; value = "after-failover" })
    in
    ignore
      (Cluster.submit_target cluster ~payload ~client_id:1 ~seq:i
         ~on_result:(fun ~committed:ok -> if ok then incr committed2))
  done;
  Cluster.run_for cluster (Des.Time.sec 2);
  printf "t=%a: %d/10 post-failover writes committed@." Des.Time.pp
    (Cluster.now cluster) !committed2;
  let digests =
    List.filter_map
      (fun id ->
        let node = Cluster.node cluster id in
        if Raft.Node.is_paused node then None
        else Some (Kvsm.Store.state_digest (Cluster.store cluster id)))
      (Cluster.node_ids cluster)
  in
  match digests with
  | d :: rest when List.for_all (String.equal d) rest ->
      printf "all live replicas agree (digest %s...)@." (String.sub d 0 12)
  | _ -> printf "WARNING: replicas diverged!@."
