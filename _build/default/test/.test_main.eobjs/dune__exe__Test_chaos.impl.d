test/test_chaos.ml: Alcotest Array Des Harness Hashtbl Int64 Kvsm List Netsim Printf Raft Stats
