test/test_server.ml: Alcotest Des Dynatune List Netsim Option Raft Stats Stdlib
