test/test_netsim.ml: Alcotest Des List Netsim Printf Stats
