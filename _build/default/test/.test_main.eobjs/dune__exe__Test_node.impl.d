test/test_node.ml: Alcotest Des Dynatune List Netsim Option Printf Raft Stdlib
