test/test_tuner.ml: Alcotest Des Dynatune List Printf
