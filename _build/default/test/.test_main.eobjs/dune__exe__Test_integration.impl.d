test/test_integration.ml: Alcotest Des Harness Hashtbl Kvsm List Netsim Printf Raft
