test/test_server_ext.ml: Alcotest Des Dynatune List Netsim Raft Stats
