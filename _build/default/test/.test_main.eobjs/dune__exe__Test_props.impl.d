test/test_props.ml: Des Dynatune Fun Kvsm List Netsim QCheck QCheck_alcotest Raft Stats Stdlib
