test/test_stats.ml: Alcotest Array Float Fun List Stats
