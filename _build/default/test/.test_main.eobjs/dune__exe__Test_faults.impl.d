test/test_faults.ml: Alcotest Des Harness Kvsm List Netsim Option Printf Raft
