test/test_misc.ml: Alcotest Des Dynatune Format Kvsm List Netsim Raft Scenarios Stats String
