test/test_log.ml: Alcotest List Raft
