test/test_harness.ml: Alcotest Des Harness List Netsim Option Printf Raft Scenarios Stats
