test/test_snapshot.ml: Alcotest Des Harness Kvsm List Netsim Printf Raft
