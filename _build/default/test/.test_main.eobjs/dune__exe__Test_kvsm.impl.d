test/test_kvsm.ml: Alcotest Des Format Kvsm List Netsim Printf Raft String
