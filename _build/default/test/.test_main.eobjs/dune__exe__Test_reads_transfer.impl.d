test/test_reads_transfer.ml: Alcotest Des Harness Kvsm List Netsim Option Printf Raft
