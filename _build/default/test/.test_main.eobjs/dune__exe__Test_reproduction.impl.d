test/test_reproduction.ml: Alcotest Des Float List Printf Raft Scenarios Stats
