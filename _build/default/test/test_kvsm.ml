(* Unit tests for the KV state machine, command codec, and workload. *)

module Command = Kvsm.Command
module Store = Kvsm.Store

let roundtrip cmd =
  match Command.of_payload (Command.to_payload cmd) with
  | Ok decoded ->
      Alcotest.(check bool)
        (Format.asprintf "roundtrip %a" Command.pp cmd)
        true (Command.equal cmd decoded)
  | Error msg -> Alcotest.failf "decode failed: %s" msg

let test_codec_roundtrip () =
  List.iter roundtrip
    [
      Command.Put { key = "a"; value = "b" };
      Command.Put { key = ""; value = "" };
      Command.Put { key = "k:with:colons"; value = "v:1:2" };
      Command.Get "some-key";
      Command.Delete "x";
      Command.Cas { key = "k"; expect = Some "old"; value = "new" };
      Command.Cas { key = "k"; expect = None; value = "init" };
      Command.Put { key = String.make 1000 'K'; value = String.make 5000 'V' };
    ]

let test_codec_rejects_garbage () =
  List.iter
    (fun payload ->
      match Command.of_payload payload with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted garbage: %S" payload)
    [ ""; "Z"; "P"; "P9:ab"; "P2:ab"; "P2:ab3:xyztrailing"; "P-1:a1:b" ]

let test_store_put_get () =
  let s = Store.create () in
  (match Store.apply_command s (Command.Put { key = "k"; value = "v" }) with
  | Store.Written -> ()
  | _ -> Alcotest.fail "expected Written");
  Alcotest.(check (option string)) "stored" (Some "v") (Store.find s "k");
  match Store.apply_command s (Command.Get "k") with
  | Store.Value (Some "v") -> ()
  | _ -> Alcotest.fail "expected the stored value"

let test_store_delete () =
  let s = Store.create () in
  ignore (Store.apply_command s (Command.Put { key = "k"; value = "v" }));
  (match Store.apply_command s (Command.Delete "k") with
  | Store.Deleted true -> ()
  | _ -> Alcotest.fail "expected Deleted true");
  (match Store.apply_command s (Command.Delete "k") with
  | Store.Deleted false -> ()
  | _ -> Alcotest.fail "expected Deleted false");
  Alcotest.(check (option string)) "gone" None (Store.find s "k")

let test_store_cas () =
  let s = Store.create () in
  (* CAS on absent key with expect None creates it. *)
  (match
     Store.apply_command s (Command.Cas { key = "k"; expect = None; value = "1" })
   with
  | Store.Swapped true -> ()
  | _ -> Alcotest.fail "expected create");
  (* Wrong expectation fails and leaves state untouched. *)
  (match
     Store.apply_command s
       (Command.Cas { key = "k"; expect = Some "9"; value = "2" })
   with
  | Store.Swapped false -> ()
  | _ -> Alcotest.fail "expected failed swap");
  Alcotest.(check (option string)) "unchanged" (Some "1") (Store.find s "k");
  match
    Store.apply_command s
      (Command.Cas { key = "k"; expect = Some "1"; value = "2" })
  with
  | Store.Swapped true ->
      Alcotest.(check (option string)) "swapped" (Some "2") (Store.find s "k")
  | _ -> Alcotest.fail "expected successful swap"

let test_store_determinism () =
  let run () =
    let s = Store.create () in
    for i = 0 to 99 do
      ignore
        (Store.apply_command s
           (Command.Put
              { key = "k" ^ string_of_int (i mod 10); value = string_of_int i }))
    done;
    ignore (Store.apply_command s (Command.Delete "k3"));
    Store.state_digest s
  in
  Alcotest.(check string) "same history, same digest" (run ()) (run ())

let test_store_digest_sensitive () =
  let s1 = Store.create () and s2 = Store.create () in
  ignore (Store.apply_command s1 (Command.Put { key = "a"; value = "1" }));
  ignore (Store.apply_command s2 (Command.Put { key = "a"; value = "2" }));
  Alcotest.(check bool) "different values differ" false
    (Store.state_digest s1 = Store.state_digest s2)

let test_apply_entry () =
  let s = Store.create () in
  let noop = { Raft.Log.term = 1; index = 1; command = Raft.Log.Noop } in
  Alcotest.(check bool) "noop applies to nothing" true
    (Store.apply_entry s noop = None);
  let put =
    {
      Raft.Log.term = 1;
      index = 2;
      command =
        Raft.Log.Data
          {
            payload = Command.to_payload (Command.Put { key = "x"; value = "y" });
            client_id = 1;
            seq = 1;
          };
    }
  in
  (match Store.apply_entry s put with
  | Some Store.Written -> ()
  | _ -> Alcotest.fail "expected Written");
  let bad =
    {
      Raft.Log.term = 1;
      index = 3;
      command = Raft.Log.Data { payload = "garbage"; client_id = 1; seq = 2 };
    }
  in
  match Store.apply_entry s bad with
  | Some (Store.Invalid _) -> ()
  | _ -> Alcotest.fail "expected Invalid for garbage payload"

(* {2 Client (driven against a fake target)} *)

let test_client_open_loop_rate () =
  let engine = Des.Engine.create ~seed:3L () in
  let accepted = ref 0 in
  let target ~payload:_ ~client_id:_ ~seq:_ ~on_result =
    incr accepted;
    (* Commit instantly. *)
    on_result ~committed:true;
    `Accepted
  in
  let client =
    Kvsm.Client.create ~engine ~target ~client_id:1 ~rate:1000. ()
  in
  Kvsm.Client.start client;
  Des.Engine.run_for engine (Des.Time.sec 10);
  Kvsm.Client.stop client;
  let rate = float_of_int !accepted /. 10. in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.0f near 1000" rate)
    true
    (rate > 900. && rate < 1100.);
  Alcotest.(check int) "all completed" !accepted (Kvsm.Client.completed client)

let test_client_latency_measurement () =
  let engine = Des.Engine.create ~seed:4L () in
  let target ~payload:_ ~client_id:_ ~seq:_ ~on_result =
    (* Commit after 30ms of simulated time. *)
    ignore
      (Des.Engine.schedule_after engine (Des.Time.ms 30) (fun () ->
           on_result ~committed:true)
        : Des.Engine.handle);
    `Accepted
  in
  let client =
    Kvsm.Client.create ~engine ~target ~client_id:1 ~rate:100.
      ~client_rtt:(Des.Time.ms 10) ()
  in
  Kvsm.Client.start client;
  Des.Engine.run_for engine (Des.Time.sec 2);
  Kvsm.Client.stop client;
  let lats = Kvsm.Client.latencies_ms client in
  Alcotest.(check bool) "some completions" true (List.length lats > 50);
  List.iter
    (fun l ->
      if abs_float (l -. 40.) > 0.001 then
        Alcotest.failf "latency %.3f, expected 40ms" l)
    lats

let test_client_counts_redirects () =
  let engine = Des.Engine.create ~seed:5L () in
  let target ~payload:_ ~client_id:_ ~seq:_ ~on_result:_ = `Not_leader None in
  let client = Kvsm.Client.create ~engine ~target ~client_id:1 ~rate:100. () in
  Kvsm.Client.start client;
  Des.Engine.run_for engine (Des.Time.sec 1);
  Kvsm.Client.stop client;
  Alcotest.(check int) "no completions" 0 (Kvsm.Client.completed client);
  Alcotest.(check bool) "redirects counted" true
    (Kvsm.Client.redirected client > 50)

let test_workload_saturation_detection () =
  (* A fake service that can commit at most 500 req/s (2ms service). *)
  let engine = Des.Engine.create ~seed:6L () in
  let cpu = Netsim.Cpu.create engine ~cores:1. in
  let target ~payload:_ ~client_id:_ ~seq:_ ~on_result =
    Netsim.Cpu.execute cpu ~cost:(Des.Time.ms 2) (fun () ->
        on_result ~committed:true);
    `Accepted
  in
  let reports =
    Kvsm.Workload.run_ramp ~engine ~target
      ~rates:[ 100.; 300.; 700.; 1000. ]
      ~hold:(Des.Time.sec 5) ()
  in
  Alcotest.(check int) "one report per level" 4 (List.length reports);
  let peak = Kvsm.Workload.peak_throughput reports in
  Alcotest.(check bool)
    (Printf.sprintf "peak %.0f capped near 500" peak)
    true
    (peak > 420. && peak < 560.);
  match Kvsm.Workload.saturation_rate reports with
  | Some rate ->
      Alcotest.(check bool)
        (Printf.sprintf "saturation at %.0f" rate)
        true (rate >= 500.)
  | None -> Alcotest.fail "expected saturation to be detected"

let tests =
  [
    Alcotest.test_case "codec roundtrip" `Quick test_codec_roundtrip;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "store: put/get" `Quick test_store_put_get;
    Alcotest.test_case "store: delete" `Quick test_store_delete;
    Alcotest.test_case "store: cas" `Quick test_store_cas;
    Alcotest.test_case "store: determinism" `Quick test_store_determinism;
    Alcotest.test_case "store: digest sensitivity" `Quick
      test_store_digest_sensitive;
    Alcotest.test_case "store: apply_entry" `Quick test_apply_entry;
    Alcotest.test_case "client: open-loop rate" `Quick
      test_client_open_loop_rate;
    Alcotest.test_case "client: latency measurement" `Quick
      test_client_latency_measurement;
    Alcotest.test_case "client: counts redirects" `Quick
      test_client_counts_redirects;
    Alcotest.test_case "workload: saturation detection" `Quick
      test_workload_saturation_detection;
  ]
