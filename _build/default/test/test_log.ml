(* Unit tests for the replicated log. *)

module Log = Raft.Log

let entry term index = { Log.term; index; command = Log.Noop }

let data term index payload =
  { Log.term; index; command = Log.Data { payload; client_id = 0; seq = index } }

let test_empty_log () =
  let l = Log.create () in
  Alcotest.(check int) "last index" 0 (Log.last_index l);
  Alcotest.(check int) "last term" 0 (Log.last_term l);
  Alcotest.(check (option int)) "sentinel term" (Some 0) (Log.term_at l 0);
  Alcotest.(check (option int)) "beyond end" None (Log.term_at l 1)

let test_append_new () =
  let l = Log.create () in
  let e1 = Log.append_new l ~term:1 Log.Noop in
  let e2 = Log.append_new l ~term:1 (Log.Data { payload = "x"; client_id = 1; seq = 1 }) in
  Alcotest.(check int) "first index" 1 e1.Log.index;
  Alcotest.(check int) "second index" 2 e2.Log.index;
  Alcotest.(check int) "last term" 1 (Log.last_term l);
  Alcotest.(check (option int)) "term lookup" (Some 1) (Log.term_at l 2)

let test_try_append_success () =
  let l = Log.create () in
  (match
     Log.try_append l ~prev_index:0 ~prev_term:0
       ~entries:[ entry 1 1; entry 1 2 ]
   with
  | `Ok covered -> Alcotest.(check int) "covered" 2 covered
  | `Conflict _ -> Alcotest.fail "append at origin must succeed");
  Alcotest.(check int) "length" 2 (Log.last_index l)

let test_try_append_missing_prev () =
  let l = Log.create () in
  match Log.try_append l ~prev_index:5 ~prev_term:1 ~entries:[ entry 1 6 ] with
  | `Conflict hint -> Alcotest.(check int) "hint = log end + 1" 1 hint
  | `Ok _ -> Alcotest.fail "must conflict when predecessor is missing"

let test_try_append_term_mismatch () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:1 Log.Noop);
  ignore (Log.append_new l ~term:1 Log.Noop);
  match Log.try_append l ~prev_index:2 ~prev_term:9 ~entries:[] with
  | `Conflict hint -> Alcotest.(check int) "hint points at conflict" 2 hint
  | `Ok _ -> Alcotest.fail "must conflict on term mismatch"

let test_try_append_truncates_conflicts () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:1 Log.Noop);
  ignore (Log.append_new l ~term:1 (Log.Data { payload = "old"; client_id = 0; seq = 0 }));
  ignore (Log.append_new l ~term:1 (Log.Data { payload = "old2"; client_id = 0; seq = 0 }));
  (* New leader at term 2 overwrites index 2 onward. *)
  (match
     Log.try_append l ~prev_index:1 ~prev_term:1
       ~entries:[ data 2 2 "new" ]
   with
  | `Ok covered -> Alcotest.(check int) "covered" 2 covered
  | `Conflict _ -> Alcotest.fail "expected success");
  Alcotest.(check int) "conflicting suffix dropped" 2 (Log.last_index l);
  match Log.entry_at l 2 with
  | Some { Log.term = 2; command = Log.Data { payload = "new"; _ }; _ } -> ()
  | _ -> Alcotest.fail "index 2 must hold the new entry"

let test_try_append_idempotent () =
  let l = Log.create () in
  let es = [ entry 1 1; entry 1 2; entry 1 3 ] in
  ignore (Log.try_append l ~prev_index:0 ~prev_term:0 ~entries:es);
  (* A duplicate append (retransmission) must not truncate or duplicate. *)
  (match Log.try_append l ~prev_index:0 ~prev_term:0 ~entries:es with
  | `Ok covered -> Alcotest.(check int) "covered" 3 covered
  | `Conflict _ -> Alcotest.fail "duplicate append must succeed");
  Alcotest.(check int) "no growth" 3 (Log.last_index l)

let test_try_append_partial_overlap () =
  let l = Log.create () in
  ignore
    (Log.try_append l ~prev_index:0 ~prev_term:0
       ~entries:[ entry 1 1; entry 1 2 ]);
  (match
     Log.try_append l ~prev_index:1 ~prev_term:1
       ~entries:[ entry 1 2; entry 1 3; entry 1 4 ]
   with
  | `Ok covered -> Alcotest.(check int) "covered" 4 covered
  | `Conflict _ -> Alcotest.fail "overlap must succeed");
  Alcotest.(check int) "extended" 4 (Log.last_index l)

let test_heartbeat_append_empty () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:1 Log.Noop);
  match Log.try_append l ~prev_index:1 ~prev_term:1 ~entries:[] with
  | `Ok covered -> Alcotest.(check int) "covered = prev" 1 covered
  | `Conflict _ -> Alcotest.fail "empty append with matching prev succeeds"

let test_slice () =
  let l = Log.create () in
  for _ = 1 to 5 do
    ignore (Log.append_new l ~term:1 Log.Noop)
  done;
  Alcotest.(check int) "middle slice" 2
    (List.length (Log.slice l ~from:2 ~max:2));
  Alcotest.(check int) "tail slice clipped" 2
    (List.length (Log.slice l ~from:4 ~max:10));
  Alcotest.(check int) "empty beyond end" 0
    (List.length (Log.slice l ~from:6 ~max:10));
  let indices = List.map (fun (e : Log.entry) -> e.Log.index) (Log.slice l ~from:2 ~max:3) in
  Alcotest.(check (list int)) "contiguous" [ 2; 3; 4 ] indices

let test_up_to_date () =
  let l = Log.create () in
  ignore (Log.append_new l ~term:2 Log.Noop);
  ignore (Log.append_new l ~term:3 Log.Noop);
  (* mine: last (2, term 3) *)
  Alcotest.(check bool) "higher term wins" true
    (Log.up_to_date l ~last_index:1 ~last_term:4);
  Alcotest.(check bool) "same term longer wins" true
    (Log.up_to_date l ~last_index:3 ~last_term:3);
  Alcotest.(check bool) "same term same length ok" true
    (Log.up_to_date l ~last_index:2 ~last_term:3);
  Alcotest.(check bool) "shorter same term loses" false
    (Log.up_to_date l ~last_index:1 ~last_term:3);
  Alcotest.(check bool) "lower term loses" false
    (Log.up_to_date l ~last_index:10 ~last_term:2)

let tests =
  [
    Alcotest.test_case "empty log" `Quick test_empty_log;
    Alcotest.test_case "append_new" `Quick test_append_new;
    Alcotest.test_case "try_append: success" `Quick test_try_append_success;
    Alcotest.test_case "try_append: missing prev" `Quick
      test_try_append_missing_prev;
    Alcotest.test_case "try_append: term mismatch" `Quick
      test_try_append_term_mismatch;
    Alcotest.test_case "try_append: truncates conflicts" `Quick
      test_try_append_truncates_conflicts;
    Alcotest.test_case "try_append: idempotent" `Quick
      test_try_append_idempotent;
    Alcotest.test_case "try_append: partial overlap" `Quick
      test_try_append_partial_overlap;
    Alcotest.test_case "try_append: heartbeat (empty)" `Quick
      test_heartbeat_append_empty;
    Alcotest.test_case "slice" `Quick test_slice;
    Alcotest.test_case "up_to_date voting rule" `Quick test_up_to_date;
  ]
