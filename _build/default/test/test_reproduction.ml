(* Reproduction regression tests: the paper's headline claims, pinned as
   executable assertions over small multi-seed campaigns.  If a change
   to the protocol, the tuner or the network model breaks the *shape* of
   any reproduced result, this suite fails. *)

module Fig4 = Scenarios.Fig4
module Fig6 = Scenarios.Fig6
module Time = Des.Time

let mean = Stats.Summary.mean

let fig4_pair ~seed ~failures =
  let raft = Fig4.run ~seed ~failures ~config:(Raft.Config.static ()) () in
  let dynatune = Fig4.run ~seed ~failures ~config:(Raft.Config.dynatune ()) () in
  (raft, dynatune)

let test_headline_detection_reduction () =
  (* Paper: detection 1205 -> 237 ms (−80%).  Assert a >= 70% reduction
     on every seed. *)
  List.iter
    (fun seed ->
      let raft, dynatune = fig4_pair ~seed ~failures:30 in
      let r = mean raft.Fig4.detection and d = mean dynatune.Fig4.detection in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: detection %.0f -> %.0f" seed r d)
        true
        (d < 0.3 *. r))
    [ 101L; 202L; 303L ]

let test_headline_ots_reduction () =
  (* Paper: OTS 1449 -> 797 ms (−45%).  Assert Dynatune's OTS beats
     Raft's on every seed (the magnitude is seed-noisy at 30 kills, the
     direction must not be). *)
  List.iter
    (fun seed ->
      let raft, dynatune = fig4_pair ~seed ~failures:30 in
      let r = mean raft.Fig4.ots and d = mean dynatune.Fig4.ots in
      Alcotest.(check bool)
        (Printf.sprintf "seed %Ld: ots %.0f -> %.0f" seed r d)
        true (d < r))
    [ 101L; 202L; 303L ]

let test_discussion_election_time_inversion () =
  (* Section IV-E: Raft's election phase (244 ms) is *shorter* than
     Dynatune's (560 ms) because Dynatune's narrow randomization window
     splits votes.  Both the inversion and the split-vote excess must
     reproduce. *)
  let raft, dynatune = fig4_pair ~seed:404L ~failures:60 in
  Alcotest.(check bool)
    (Printf.sprintf "election time inverts (raft %.0f < dynatune %.0f)"
       (mean raft.Fig4.election)
       (mean dynatune.Fig4.election))
    true
    (mean raft.Fig4.election < mean dynatune.Fig4.election);
  Alcotest.(check bool)
    (Printf.sprintf "split votes excess (raft %.2f < dynatune %.2f)"
       raft.Fig4.split_vote_rate dynatune.Fig4.split_vote_rate)
    true
    (raft.Fig4.split_vote_rate < dynatune.Fig4.split_vote_rate)

let test_raft_baseline_matches_paper () =
  (* The static-Raft side has no tuning freedom: its absolute numbers
     must track the paper's (etcd defaults, RTT 100 ms) within a loose
     band: detection ~1205 ms, OTS ~1449 ms, election ~244 ms. *)
  let raft = Fig4.run ~seed:505L ~failures:60 ~config:(Raft.Config.static ()) () in
  let within label lo hi v =
    Alcotest.(check bool)
      (Printf.sprintf "%s = %.0f in [%.0f, %.0f]" label v lo hi)
      true
      (v >= lo && v <= hi)
  in
  within "detection" 1000. 1400. (mean raft.Fig4.detection);
  within "ots" 1200. 1800. (mean raft.Fig4.ots);
  within "election" 150. 450. (mean raft.Fig4.election);
  within "randomizedTimeout at detection" 1000. 1400.
    (mean raft.Fig4.randomized)

let test_fig6b_shape_all_modes () =
  (* Radical RTT spike: Dynatune false-detects without OTS; Raft is
     silent; Raft-Low collapses for the whole high-RTT phase. *)
  let hold = Time.sec 15 in
  let run config = Fig6.run ~seed:606L ~hold ~pattern:Fig6.Radical ~config () in
  let dynatune = run (Raft.Config.dynatune ()) in
  let raft = run (Raft.Config.static ()) in
  let low = run (Raft.Config.raft_low ()) in
  Alcotest.(check bool) "dynatune false-detects" true
    (dynatune.Fig6.false_timeouts > 0);
  Alcotest.(check bool)
    (Printf.sprintf "dynatune OTS negligible (%.0fms)" dynatune.Fig6.ots_total_ms)
    true
    (dynatune.Fig6.ots_total_ms < 1000.);
  Alcotest.(check int) "raft silent" 0 raft.Fig6.false_timeouts;
  Alcotest.(check (float 1e-9)) "raft no OTS" 0. raft.Fig6.ots_total_ms;
  Alcotest.(check bool)
    (Printf.sprintf "raft-low collapses (%.0fms OTS, %d elections)"
       low.Fig6.ots_total_ms low.Fig6.elections)
    true
    (low.Fig6.ots_total_ms > 10_000. && low.Fig6.elections > 20)

let test_fig7_h_formula_shape () =
  (* The tuned h at each loss level must match Et / ceil(log_p 0.001). *)
  let r =
    Scenarios.Fig7.run ~seed:707L ~hold:(Time.sec 10) ~n:5
      ~config:(Raft.Config.dynatune ()) ()
  in
  Alcotest.(check int) "no unnecessary elections" 0 r.Scenarios.Fig7.elections;
  (* At the 30% plateau h must sit well below the 0% plateau. *)
  let h_at pct =
    let samples =
      List.filter_map
        (fun ((_, l), (_, h)) ->
          if abs_float (l -. pct) < 0.1 && not (Float.is_nan h) then Some h
          else None)
        (List.combine r.Scenarios.Fig7.loss r.Scenarios.Fig7.h)
    in
    match samples with
    | [] -> nan
    | l -> List.fold_left ( +. ) 0. l /. float_of_int (List.length l)
  in
  let h0 = h_at 0. and h30 = h_at 30. in
  Alcotest.(check bool)
    (Printf.sprintf "h dips under loss (%.0f -> %.0f ms)" h0 h30)
    true
    ((not (Float.is_nan h0)) && (not (Float.is_nan h30)) && h30 < h0 /. 3.)

let tests =
  [
    Alcotest.test_case "headline: detection reduction across seeds" `Slow
      test_headline_detection_reduction;
    Alcotest.test_case "headline: OTS reduction across seeds" `Slow
      test_headline_ots_reduction;
    Alcotest.test_case "discussion: election-time inversion" `Slow
      test_discussion_election_time_inversion;
    Alcotest.test_case "baseline: raft matches the paper" `Slow
      test_raft_baseline_matches_paper;
    Alcotest.test_case "fig6b: three-mode shape" `Slow
      test_fig6b_shape_all_modes;
    Alcotest.test_case "fig7: h formula shape" `Slow test_fig7_h_formula_shape;
  ]
