(* Tests for linearizable reads (ReadIndex) and leadership transfer. *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Time = Des.Time
module Node_id = Netsim.Node_id

let lan ?(rtt_ms = 50.) () =
  Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.02 ()))

let make ?(seed = 41L) ?(n = 5) ?(config = Raft.Config.static ()) () =
  let c = Cluster.create ~seed ~n ~config ~conditions:(lan ()) () in
  Cluster.start c;
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  c

let leader_id c =
  match Cluster.leader c with
  | Some l -> Raft.Node.id l
  | None -> Alcotest.fail "expected a leader"

let put_sync c ~seq k v =
  let done_ = ref false in
  (match
     Cluster.submit_target c
       ~payload:
         (Kvsm.Command.to_payload (Kvsm.Command.Put { key = k; value = v }))
       ~client_id:1 ~seq
       ~on_result:(fun ~committed -> done_ := committed)
   with
  | `Accepted -> ()
  | `Not_leader _ -> Alcotest.fail "no leader for put");
  Cluster.run_for c (Time.sec 1);
  Alcotest.(check bool) "put committed" true !done_

(* {2 Linearizable reads} *)

let test_read_sees_committed_write () =
  let c = make () in
  put_sync c ~seq:1 "color" "blue";
  let result = ref `Pending in
  Cluster.linearizable_read c ~key:"color" ~on_result:(fun r ->
      result := `Done r);
  (* Not served synchronously: a quorum round trip is needed. *)
  Alcotest.(check bool) "read not served before confirmation" true
    (!result = `Pending);
  Cluster.run_for c (Time.ms 200);
  match !result with
  | `Done (Some (Some "blue")) -> ()
  | `Done (Some other) ->
      Alcotest.failf "wrong value: %s" (Option.value ~default:"<none>" other)
  | `Done None -> Alcotest.fail "read failed"
  | `Pending -> Alcotest.fail "read never served"

let test_read_takes_about_one_rtt () =
  let c = make () in
  put_sync c ~seq:1 "k" "v";
  let served_at = ref None in
  let issued_at = Cluster.now c in
  Cluster.linearizable_read c ~key:"k" ~on_result:(fun _ ->
      served_at := Some (Cluster.now c));
  Cluster.run_for c (Time.sec 1);
  match !served_at with
  | None -> Alcotest.fail "read never served"
  | Some at ->
      let ms = Time.to_ms_f (Time.diff at issued_at) in
      (* RTT 50 ms (small jitter): the confirmation round is kicked off
         immediately, so the read is served in about one round trip. *)
      Alcotest.(check bool)
        (Printf.sprintf "served in %.0fms" ms)
        true
        (ms >= 40. && ms < 150.)

let test_read_fails_without_leader () =
  let c = make () in
  List.iter (fun id -> Fault.pause c id) (Cluster.node_ids c);
  let result = ref `Pending in
  Cluster.linearizable_read c ~key:"k" ~on_result:(fun r -> result := `Done r);
  Alcotest.(check bool) "immediate failure" true (!result = `Done None)

let test_read_rejected_when_leadership_lost () =
  let c = make () in
  put_sync c ~seq:1 "k" "v";
  let leader = leader_id c in
  let result = ref `Pending in
  Cluster.linearizable_read c ~key:"k" ~on_result:(fun r -> result := `Done r);
  (* Kill the leader before any confirmation can arrive. *)
  Raft.Node.crash (Cluster.node c leader);
  Alcotest.(check bool) "read rejected on crash" true (!result = `Done None);
  Raft.Node.restart (Cluster.node c leader)

let test_read_on_stale_minority_leader_fails () =
  (* The classic ReadIndex safety case: a leader isolated in a minority
     partition must NOT serve reads (it can no longer confirm
     authority). *)
  let c = make () in
  put_sync c ~seq:1 "k" "v1";
  let old_leader = leader_id c in
  let others =
    List.filter (fun id -> not (Node_id.equal id old_leader)) (Cluster.node_ids c)
  in
  Cluster.partition c [ [ old_leader ]; others ];
  (* Register the read on the isolated leader while it still believes. *)
  let result = ref `Pending in
  (match
     Raft.Node.read (Cluster.node c old_leader) ~client_id:(-9) ~seq:1
       ~on_result:(fun ~committed ->
         result := `Done committed)
       ()
   with
  | `Accepted -> ()
  | `Not_leader _ -> Alcotest.fail "was still leader");
  (* Run long enough for the majority to elect and the old leader to
     abdicate via CheckQuorum. *)
  Cluster.run_for c (Time.sec 10);
  (match !result with
  | `Done false -> ()
  | `Done true -> Alcotest.fail "stale leader served a linearizable read!"
  | `Pending -> Alcotest.fail "read left pending after abdication");
  Cluster.heal_partition c

(* {2 Leadership transfer} *)

let test_transfer_moves_leadership () =
  let c = make () in
  let old_leader = leader_id c in
  let target =
    List.find (fun id -> not (Node_id.equal id old_leader)) (Cluster.node_ids c)
  in
  (match Cluster.transfer_leadership c target with
  | `Ok -> ()
  | `Not_leader -> Alcotest.fail "leader refused transfer");
  Cluster.run_for c (Time.sec 2);
  Alcotest.(check int) "target took over" (Node_id.to_int target)
    (Node_id.to_int (leader_id c));
  Alcotest.(check bool) "old leader stepped down" false
    (Raft.Types.is_leader
       (Raft.Server.role (Raft.Node.server (Cluster.node c old_leader))))

let test_transfer_is_fast () =
  (* The hand-off bypasses pre-vote and leases: roughly one RTT, far
     below a failover. *)
  let c = make () in
  let old_leader = leader_id c in
  let target =
    List.find (fun id -> not (Node_id.equal id old_leader)) (Cluster.node_ids c)
  in
  let start = Cluster.now c in
  ignore (Cluster.transfer_leadership c target);
  let rec wait () =
    match Cluster.leader c with
    | Some l when Node_id.equal (Raft.Node.id l) target -> Cluster.now c
    | Some _ | None ->
        if Time.diff (Cluster.now c) start > Time.sec 10 then
          Alcotest.fail "transfer never completed"
        else begin
          Cluster.run_for c (Time.ms 5);
          wait ()
        end
  in
  let took = Time.to_ms_f (Time.diff (wait ()) start) in
  Alcotest.(check bool)
    (Printf.sprintf "transfer took %.0fms" took)
    true (took < 300.)

let test_transfer_no_data_loss () =
  let c = make () in
  put_sync c ~seq:1 "before" "transfer";
  let target =
    List.find
      (fun id -> not (Node_id.equal id (leader_id c)))
      (Cluster.node_ids c)
  in
  ignore (Cluster.transfer_leadership c target);
  Cluster.run_for c (Time.sec 2);
  put_sync c ~seq:2 "after" "transfer";
  Cluster.run_for c (Time.sec 2);
  let digests =
    List.map (fun id -> Kvsm.Store.state_digest (Cluster.store c id))
      (Cluster.node_ids c)
  in
  match digests with
  | d :: rest -> List.iter (Alcotest.(check string) "converged" d) rest
  | [] -> Alcotest.fail "no stores"

let test_transfer_from_follower_refused () =
  let c = make () in
  let target = leader_id c in
  let follower =
    List.find (fun id -> not (Node_id.equal id target)) (Cluster.node_ids c)
  in
  Alcotest.(check bool) "follower cannot initiate" true
    (Raft.Node.transfer_leadership (Cluster.node c follower) target
    = `Not_leader)

let test_transfer_works_under_dynatune () =
  let c = make ~config:(Raft.Config.dynatune ()) () in
  Cluster.run_for c (Time.sec 20) (* warm the tuners *);
  let old_leader = leader_id c in
  let target =
    List.find (fun id -> not (Node_id.equal id old_leader)) (Cluster.node_ids c)
  in
  ignore (Cluster.transfer_leadership c target);
  Cluster.run_for c (Time.sec 2);
  Alcotest.(check int) "target leads" (Node_id.to_int target)
    (Node_id.to_int (leader_id c));
  (* The cluster re-tunes against the new leader and stays stable. *)
  Cluster.run_for c (Time.sec 20);
  Alcotest.(check int) "still leads after re-tuning" (Node_id.to_int target)
    (Node_id.to_int (leader_id c))

let tests =
  [
    Alcotest.test_case "read: sees committed write" `Quick
      test_read_sees_committed_write;
    Alcotest.test_case "read: ~one round trip" `Quick
      test_read_takes_about_one_rtt;
    Alcotest.test_case "read: fails without leader" `Quick
      test_read_fails_without_leader;
    Alcotest.test_case "read: rejected on leadership loss" `Quick
      test_read_rejected_when_leadership_lost;
    Alcotest.test_case "read: stale minority leader cannot serve" `Quick
      test_read_on_stale_minority_leader_fails;
    Alcotest.test_case "transfer: moves leadership" `Quick
      test_transfer_moves_leadership;
    Alcotest.test_case "transfer: fast hand-off" `Quick test_transfer_is_fast;
    Alcotest.test_case "transfer: no data loss" `Quick
      test_transfer_no_data_loss;
    Alcotest.test_case "transfer: follower refused" `Quick
      test_transfer_from_follower_refused;
    Alcotest.test_case "transfer: under dynatune" `Quick
      test_transfer_works_under_dynatune;
  ]
