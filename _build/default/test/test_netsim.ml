(* Unit tests for the network model. *)

module Time = Des.Time
module Engine = Des.Engine
module Node_id = Netsim.Node_id
module Conditions = Netsim.Conditions
module Link = Netsim.Link
module Transport = Netsim.Transport
module Fabric = Netsim.Fabric
module Cpu = Netsim.Cpu

let profile = Conditions.profile

(* {2 Node_id} *)

let test_node_id_basics () =
  let a = Node_id.of_int 3 in
  Alcotest.(check int) "round trip" 3 (Node_id.to_int a);
  Alcotest.(check bool) "equal" true (Node_id.equal a (Node_id.of_int 3));
  Alcotest.(check int) "range length" 5 (List.length (Node_id.range 5));
  Alcotest.(check bool) "negative rejected" true
    (try
       ignore (Node_id.of_int (-1));
       false
     with Invalid_argument _ -> true)

(* {2 Conditions} *)

let test_conditions_constant () =
  let c = Conditions.constant (profile ~rtt_ms:50. ()) in
  Alcotest.(check (float 1e-9)) "always same" 50.
    (Conditions.at c (Time.sec 1000)).Conditions.rtt_ms

let test_conditions_staircase () =
  let c =
    Conditions.staircase ~hold:(Time.sec 60)
      [
        profile ~rtt_ms:50. ();
        profile ~rtt_ms:100. ();
        profile ~rtt_ms:150. ();
      ]
  in
  let rtt_at t = (Conditions.at c t).Conditions.rtt_ms in
  Alcotest.(check (float 1e-9)) "segment 0" 50. (rtt_at Time.zero);
  Alcotest.(check (float 1e-9)) "segment 0 end" 50.
    (rtt_at (Time.sec 60 - 1));
  Alcotest.(check (float 1e-9)) "segment 1" 100. (rtt_at (Time.sec 60));
  Alcotest.(check (float 1e-9)) "segment 2" 150. (rtt_at (Time.sec 125));
  Alcotest.(check (float 1e-9)) "last persists" 150. (rtt_at (Time.sec 9999))

let test_conditions_rtt_staircase () =
  let base = profile ~rtt_ms:0. ~loss:0.25 () in
  let c =
    Conditions.rtt_staircase ~base ~hold:(Time.sec 1) ~rtts_ms:[ 10.; 20. ]
  in
  let p = Conditions.at c (Time.sec 1) in
  Alcotest.(check (float 1e-9)) "rtt varies" 20. p.Conditions.rtt_ms;
  Alcotest.(check (float 1e-9)) "loss preserved" 0.25 p.Conditions.loss

let test_conditions_validation () =
  Alcotest.(check bool) "loss > 1 rejected" true
    (try
       ignore (profile ~rtt_ms:1. ~loss:1.5 ());
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "empty piecewise rejected" true
    (try
       ignore (Conditions.piecewise []);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-zero start rejected" true
    (try
       ignore (Conditions.piecewise [ (Time.sec 1, profile ~rtt_ms:1. ()) ]);
       false
     with Invalid_argument _ -> true)

(* {2 Link} *)

let make_link ?(seed = 1L) conditions =
  let e = Engine.create ~seed () in
  (e, Link.create e ~rng:(Stats.Rng.create ~seed ()) conditions)

let test_link_delay_is_half_rtt () =
  let _, l = make_link (Conditions.constant (profile ~rtt_ms:100. ())) in
  (match Link.sample_datagram l with
  | Link.Delivered d ->
      Alcotest.(check int) "one-way = rtt/2" (Time.ms 50) d
  | Link.Lost | Link.Duplicated _ -> Alcotest.fail "lossless link dropped");
  Alcotest.(check int) "reliable same" (Time.ms 50) (Link.sample_reliable l)

let test_link_loss_rate () =
  let _, l =
    make_link (Conditions.constant (profile ~rtt_ms:10. ~loss:0.5 ()))
  in
  let lost = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    match Link.sample_datagram l with
    | Link.Lost -> incr lost
    | Link.Delivered _ | Link.Duplicated _ -> ()
  done;
  let rate = float_of_int !lost /. float_of_int n in
  Alcotest.(check bool)
    (Printf.sprintf "observed loss %.3f near 0.5" rate)
    true
    (rate > 0.48 && rate < 0.52)

let test_link_jitter_mean_preserved () =
  let _, l =
    make_link (Conditions.constant (profile ~rtt_ms:100. ~jitter:0.3 ()))
  in
  let w = Stats.Welford.create () in
  for _ = 1 to 50_000 do
    match Link.sample_datagram l with
    | Link.Delivered d -> Stats.Welford.add w (Time.to_ms_f d)
    | Link.Lost | Link.Duplicated _ -> ()
  done;
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near 50" (Stats.Welford.mean w))
    true
    (abs_float (Stats.Welford.mean w -. 50.) < 1.)

let test_link_reliable_never_drops () =
  let _, l =
    make_link (Conditions.constant (profile ~rtt_ms:10. ~loss:0.9 ()))
  in
  for _ = 1 to 1000 do
    let d = Link.sample_reliable l in
    if d < Time.ms 5 then Alcotest.fail "latency below one-way minimum"
  done

let test_link_reliable_loss_adds_delay () =
  let _, lossy =
    make_link (Conditions.constant (profile ~rtt_ms:10. ~loss:0.5 ()))
  in
  let _, clean = make_link (Conditions.constant (profile ~rtt_ms:10. ())) in
  let mean samples l =
    let w = Stats.Welford.create () in
    for _ = 1 to samples do
      Stats.Welford.add w (Time.to_ms_f (Link.sample_reliable l))
    done;
    Stats.Welford.mean w
  in
  Alcotest.(check bool) "retransmission penalty" true
    (mean 2000 lossy > mean 2000 clean +. 50.)

let test_link_duplication () =
  let _, l =
    make_link (Conditions.constant (profile ~rtt_ms:10. ~duplicate:1.0 ()))
  in
  match Link.sample_datagram l with
  | Link.Duplicated _ -> ()
  | Link.Delivered _ | Link.Lost -> Alcotest.fail "expected duplication"

(* {2 Transport.Channel} *)

let test_channel_fifo () =
  let ch = Transport.Channel.create () in
  let d1 = Transport.Channel.delivery_time ch ~now:0 ~latency:(Time.ms 100) in
  (* Second message sent later but with a much smaller latency must not
     overtake the first. *)
  let d2 =
    Transport.Channel.delivery_time ch ~now:(Time.ms 10) ~latency:(Time.ms 1)
  in
  Alcotest.(check bool) "in order" true (d2 > d1)

(* {2 Fabric} *)

let make_fabric ?(n = 3) ?(conditions = Conditions.constant (profile ~rtt_ms:10. ()))
    () =
  let e = Engine.create ~seed:5L () in
  let f : string Fabric.t = Fabric.create e in
  let ids = Node_id.range n in
  List.iter (Fabric.add_node f) ids;
  Fabric.set_uniform_conditions f conditions;
  (e, f, ids)

let test_fabric_delivers () =
  let e, f, ids = make_fabric () in
  let received = ref [] in
  let n0 = List.nth ids 0 and n1 = List.nth ids 1 in
  Fabric.set_handler f n1 (fun ~src msg ->
      received := (src, msg, Engine.now e) :: !received);
  Fabric.send f Transport.Datagram ~src:n0 ~dst:n1 "hello";
  Engine.run e;
  match !received with
  | [ (src, "hello", at) ] ->
      Alcotest.(check int) "from n0" 0 (Node_id.to_int src);
      Alcotest.(check int) "after one-way delay" (Time.ms 5) at
  | _ -> Alcotest.fail "expected exactly one delivery"

let test_fabric_pause_drops () =
  let e, f, ids = make_fabric () in
  let received = ref 0 in
  let n0 = List.nth ids 0 and n1 = List.nth ids 1 in
  Fabric.set_handler f n1 (fun ~src:_ _ -> incr received);
  Fabric.pause f n1;
  Fabric.send f Transport.Datagram ~src:n0 ~dst:n1 "x";
  Engine.run e;
  Alcotest.(check int) "paused node receives nothing" 0 !received;
  Fabric.resume f n1;
  Fabric.send f Transport.Datagram ~src:n0 ~dst:n1 "y";
  Engine.run e;
  Alcotest.(check int) "resumed node receives" 1 !received;
  Alcotest.(check int) "drop counted" 1 (Fabric.counters f).Fabric.dropped_paused

let test_fabric_reliable_fifo_under_loss () =
  let e, f, ids =
    make_fabric
      ~conditions:(Conditions.constant (profile ~rtt_ms:10. ~loss:0.4 ()))
      ()
  in
  let n0 = List.nth ids 0 and n1 = List.nth ids 1 in
  let received = ref [] in
  Fabric.set_handler f n1 (fun ~src:_ msg -> received := msg :: !received);
  for i = 1 to 50 do
    Fabric.send f Transport.Reliable ~src:n0 ~dst:n1 (string_of_int i)
  done;
  Engine.run e;
  let got = List.rev_map int_of_string !received in
  Alcotest.(check (list int)) "all delivered in order" (List.init 50 (fun i -> i + 1)) got

let test_fabric_per_pair_conditions () =
  let e, f, ids = make_fabric () in
  let n0 = List.nth ids 0 and n2 = List.nth ids 2 in
  Fabric.set_conditions f ~src:n0 ~dst:n2
    (Conditions.constant (profile ~rtt_ms:200. ()));
  let at = ref Time.zero in
  Fabric.set_handler f n2 (fun ~src:_ _ -> at := Engine.now e);
  Fabric.send f Transport.Datagram ~src:n0 ~dst:n2 "slow";
  Engine.run e;
  Alcotest.(check int) "overridden delay" (Time.ms 100) !at

let test_fabric_self_send_immediate () =
  let e, f, ids = make_fabric () in
  let n0 = List.nth ids 0 in
  let got = ref false in
  Fabric.set_handler f n0 (fun ~src:_ _ -> got := true);
  Fabric.send f Transport.Datagram ~src:n0 ~dst:n0 "loop";
  Alcotest.(check bool) "delivered synchronously" true !got;
  Engine.run e

(* {2 Cpu} *)

let test_cpu_queueing () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1. in
  let finished = ref [] in
  Cpu.execute cpu ~cost:(Time.ms 10) (fun () ->
      finished := ("a", Engine.now e) :: !finished);
  Cpu.execute cpu ~cost:(Time.ms 5) (fun () ->
      finished := ("b", Engine.now e) :: !finished);
  Engine.run e;
  match List.rev !finished with
  | [ ("a", ta); ("b", tb) ] ->
      Alcotest.(check int) "first job service time" (Time.ms 10) ta;
      Alcotest.(check int) "second queues behind" (Time.ms 15) tb
  | _ -> Alcotest.fail "unexpected completion order"

let test_cpu_cores_speedup () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:2. in
  let at = ref Time.zero in
  Cpu.execute cpu ~cost:(Time.ms 10) (fun () -> at := Engine.now e);
  Engine.run e;
  Alcotest.(check int) "two cores halve service" (Time.ms 5) !at

let test_cpu_passthrough () =
  let e = Engine.create () in
  let cpu = Cpu.passthrough e in
  let ran = ref false in
  Cpu.execute cpu ~cost:(Time.sec 100) (fun () -> ran := true);
  Alcotest.(check bool) "immediate" true !ran;
  Alcotest.(check int) "nothing accounted" 0 (Cpu.busy_total cpu)

let test_cpu_utilization () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1. in
  (* 300ms of work in the first second. *)
  Cpu.charge cpu ~cost:(Time.ms 300);
  Engine.run_until e (Time.sec 2);
  let util = Cpu.utilization_in cpu ~lo_sec:0. ~hi_sec:1. in
  Alcotest.(check bool)
    (Printf.sprintf "utilization %.1f%% near 30%%" util)
    true
    (abs_float (util -. 30.) < 1.);
  let idle = Cpu.utilization_in cpu ~lo_sec:1. ~hi_sec:2. in
  Alcotest.(check (float 0.5)) "second window idle" 0. idle

let test_cpu_backlog () =
  let e = Engine.create () in
  let cpu = Cpu.create e ~cores:1. in
  Cpu.charge cpu ~cost:(Time.ms 50);
  Alcotest.(check int) "backlog reflects queue" (Time.ms 50) (Cpu.backlog cpu);
  Engine.run_until e (Time.ms 60);
  Alcotest.(check int) "backlog drains" 0 (Cpu.backlog cpu)

let tests =
  [
    Alcotest.test_case "node_id: basics" `Quick test_node_id_basics;
    Alcotest.test_case "conditions: constant" `Quick test_conditions_constant;
    Alcotest.test_case "conditions: staircase" `Quick test_conditions_staircase;
    Alcotest.test_case "conditions: rtt staircase" `Quick
      test_conditions_rtt_staircase;
    Alcotest.test_case "conditions: validation" `Quick
      test_conditions_validation;
    Alcotest.test_case "link: delay = rtt/2" `Quick test_link_delay_is_half_rtt;
    Alcotest.test_case "link: loss rate" `Slow test_link_loss_rate;
    Alcotest.test_case "link: jitter preserves mean" `Slow
      test_link_jitter_mean_preserved;
    Alcotest.test_case "link: reliable never drops" `Quick
      test_link_reliable_never_drops;
    Alcotest.test_case "link: reliable loss adds delay" `Slow
      test_link_reliable_loss_adds_delay;
    Alcotest.test_case "link: duplication" `Quick test_link_duplication;
    Alcotest.test_case "transport: channel FIFO" `Quick test_channel_fifo;
    Alcotest.test_case "fabric: delivers" `Quick test_fabric_delivers;
    Alcotest.test_case "fabric: pause drops" `Quick test_fabric_pause_drops;
    Alcotest.test_case "fabric: reliable FIFO under loss" `Quick
      test_fabric_reliable_fifo_under_loss;
    Alcotest.test_case "fabric: per-pair conditions" `Quick
      test_fabric_per_pair_conditions;
    Alcotest.test_case "fabric: self-send" `Quick test_fabric_self_send_immediate;
    Alcotest.test_case "cpu: queueing" `Quick test_cpu_queueing;
    Alcotest.test_case "cpu: cores speedup" `Quick test_cpu_cores_speedup;
    Alcotest.test_case "cpu: passthrough" `Quick test_cpu_passthrough;
    Alcotest.test_case "cpu: utilization" `Quick test_cpu_utilization;
    Alcotest.test_case "cpu: backlog" `Quick test_cpu_backlog;
  ]
