bench/main.mli:
