bench/main.ml: Array Des Format List Micro Scenarios String Sys Unix
