bench/micro.ml: Analyze Bechamel Benchmark Des Dynatune Format Hashtbl Instance Kvsm List Measure Netsim Raft Staged Stats Test Time Toolkit
