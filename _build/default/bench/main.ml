(* Benchmark harness: regenerates every figure of the paper's evaluation.

   Usage:
     dune exec bench/main.exe                 # all figures, quick scale
     dune exec bench/main.exe -- fig4 fig6a   # selected figures
     dune exec bench/main.exe -- --full       # paper-scale parameters

   Quick scale shrinks campaign sizes and hold durations (the *shape* of
   every result is preserved; only statistical resolution drops); --full
   runs the paper's exact parameters. *)

module Fig4 = Scenarios.Fig4
module Fig5 = Scenarios.Fig5
module Fig6 = Scenarios.Fig6
module Fig7 = Scenarios.Fig7
module Fig8 = Scenarios.Fig8
module Ablation = Scenarios.Ablation
module Report = Scenarios.Report

type scale = { full : bool }

let ppf = Format.std_formatter

let timed name f =
  let t0 = Unix.gettimeofday () in
  f ();
  Format.fprintf ppf "@.[%s done in %.1fs wall]@." name
    (Unix.gettimeofday () -. t0)

let run_fig4 { full } =
  timed "fig4" (fun () ->
      let failures = if full then 1000 else 200 in
      Fig4.print ppf (Fig4.compare_modes ~failures ()))

let run_fig5 { full } =
  timed "fig5" (fun () ->
      let hold = Des.Time.sec (if full then 10 else 3) in
      Fig5.print ppf (Fig5.compare_modes ~hold ()))

let run_fig6 pattern { full } =
  let name = match pattern with Fig6.Gradual -> "fig6a" | Fig6.Radical -> "fig6b" in
  timed name (fun () ->
      let hold = Des.Time.sec (if full then 60 else 20) in
      Fig6.print ppf pattern (Fig6.compare_modes ~hold ~pattern ()))

let run_fig7 { full } =
  timed "fig7" (fun () ->
      let hold = Des.Time.sec (if full then 180 else 20) in
      let ns = [ 5; 17; 65 ] in
      Fig7.print ppf (Fig7.compare_modes ~hold ~ns ()))

let run_fig8 { full } =
  timed "fig8" (fun () ->
      let failures = if full then 1000 else 150 in
      Fig8.print ppf (Fig8.compare_modes ~failures ()))

let run_ablation { full } =
  timed "ablation" (fun () ->
      let failures = if full then 200 else 60 in
      let quiet = Des.Time.sec (if full then 300 else 60) in
      let safety = Ablation.safety_factor_sweep ~failures ~quiet () in
      let arrival = Ablation.arrival_probability_sweep ~quiet () in
      let sizes = Ablation.list_size_sweep () in
      let estimators = Ablation.estimator_sweep () in
      Ablation.print ppf (safety, arrival, sizes, estimators))

let run_extensions { full } =
  timed "extensions" (fun () ->
      let hold = Des.Time.sec (if full then 10 else 3) in
      Scenarios.Extensions.print ppf (Scenarios.Extensions.run ~hold ()))

let run_micro _ =
  timed "micro" (fun () ->
      Report.banner ppf "Microbenchmarks (bechamel)";
      Micro.run ppf)

let figures =
  [
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig6a", run_fig6 Fig6.Gradual);
    ("fig6b", run_fig6 Fig6.Radical);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("ablation", run_ablation);
    ("extensions", run_extensions);
    ("micro", run_micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = List.mem "--full" args in
  let wanted =
    match List.filter (fun a -> a <> "--full") args with
    | [] -> List.map fst figures
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n figures) then begin
              Format.eprintf
                "unknown figure %S; available: %s, plus --full@." n
                (String.concat ", " (List.map fst figures));
              exit 2
            end)
          names;
        names
  in
  Format.fprintf ppf
    "Dynatune reproduction benchmarks (%s scale)@.figures: %s@."
    (if full then "paper (--full)" else "quick")
    (String.concat ", " wanted);
  let scale = { full } in
  List.iter (fun name -> (List.assoc name figures) scale) wanted;
  Format.pp_print_flush ppf ()
