module Cluster = Harness.Cluster
module Fault = Harness.Fault

let run ?(seed = 23L) ?(failures = 300) ?jitter ?loss ~config () =
  let cluster = Cluster.create ~seed ~n:5 ~config () in
  Geo.apply cluster ?jitter ?loss ();
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
  | Some _ -> ()
  | None -> failwith "fig8: initial election failed");
  Cluster.run_for cluster (Des.Time.sec 30);
  let detection = ref [] and majority = ref [] and ots = ref [] in
  let election = ref [] and randomized = ref [] and rounds = ref [] in
  let splits = ref 0 and measured = ref 0 and attempts = ref 0 in
  while !measured < failures && !attempts < 2 * failures do
    incr attempts;
    match Fault.fail_and_measure cluster () with
    | Error _ -> Cluster.run_for cluster (Des.Time.sec 5)
    | Ok o ->
        incr measured;
        detection := o.Fault.detection_ms :: !detection;
        majority := o.Fault.majority_detection_ms :: !majority;
        ots := o.Fault.ots_ms :: !ots;
        election := (o.Fault.ots_ms -. o.Fault.detection_ms) :: !election;
        randomized := o.Fault.randomized_at_detection_ms :: !randomized;
        rounds := float_of_int o.Fault.election_rounds :: !rounds;
        if o.Fault.election_rounds > 1 then incr splits
  done;
  {
    Fig4.mode = Raft.Config.mode_name config;
    failures = !measured;
    detection = Stats.Summary.of_list !detection;
    majority_detection = Stats.Summary.of_list !majority;
    ots = Stats.Summary.of_list !ots;
    election = Stats.Summary.of_list !election;
    randomized = Stats.Summary.of_list !randomized;
    rounds = Stats.Summary.of_list !rounds;
    split_vote_rate =
      (if !measured = 0 then 0.
       else float_of_int !splits /. float_of_int !measured);
  }

let compare_modes ?(failures = 300) ?(seed = 23L) () =
  [
    run ~seed ~failures ~config:(Raft.Config.static ()) ();
    run ~seed ~failures ~config:(Raft.Config.dynatune ()) ();
  ]

let print ppf results =
  Report.banner ppf
    "Fig 8: detection & OTS CDFs on the 5-region geo WAN (AWS analogue)";
  List.iter
    (fun (r : Fig4.result) ->
      Report.subhead ppf
        (r.Fig4.mode ^ " (" ^ string_of_int r.Fig4.failures ^ " leader failures)");
      Report.summary_row ppf ~label:"detect" r.Fig4.detection;
      Report.summary_row ppf ~label:"ots" r.Fig4.ots;
      Report.summary_row ppf ~label:"randTO" r.Fig4.randomized)
    results;
  (match results with
  | [ raft; dynatune ] when raft.Fig4.mode <> dynatune.Fig4.mode ->
      Report.subhead ppf "paper comparison (means)";
      let reduction field paper =
        let a = Stats.Summary.mean (field raft)
        and b = Stats.Summary.mean (field dynatune) in
        Printf.sprintf "%.0fms -> %.0fms (%.0f%% reduction; paper: %s)" a b
          (100. *. (1. -. (b /. a)))
          paper
      in
      Report.kv ppf "detection"
        (reduction (fun (r : Fig4.result) -> r.Fig4.detection)
           "1137 -> 213 = 81%");
      Report.kv ppf "ots"
        (reduction (fun (r : Fig4.result) -> r.Fig4.ots) "1718 -> 1145 = 33%")
  | _ -> ());
  Report.subhead ppf "detection CDF (ms)";
  Report.cdf_table ppf ~label:"prob"
    ~series:(List.map (fun (r : Fig4.result) -> (r.Fig4.mode, r.Fig4.detection)) results)
    ~points:10;
  Report.subhead ppf "OTS CDF (ms)";
  Report.cdf_table ppf ~label:"prob"
    ~series:(List.map (fun (r : Fig4.result) -> (r.Fig4.mode, r.Fig4.ots)) results)
    ~points:10
