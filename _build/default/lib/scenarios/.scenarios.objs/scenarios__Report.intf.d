lib/scenarios/report.mli: Des Format Stats
