lib/scenarios/fig8.ml: Des Fig4 Geo Harness List Printf Raft Report Stats
