lib/scenarios/extensions.mli: Des Format Raft
