lib/scenarios/geo.ml: Harness List Netsim
