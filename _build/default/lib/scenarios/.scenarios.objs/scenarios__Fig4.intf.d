lib/scenarios/fig4.mli: Des Format Raft Stats
