lib/scenarios/fig6.mli: Des Format Raft
