lib/scenarios/fig8.mli: Fig4 Format Raft
