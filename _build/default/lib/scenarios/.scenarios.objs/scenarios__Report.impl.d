lib/scenarios/report.ml: Des Float Format List Printf Stats String
