lib/scenarios/fig7.ml: Des Harness List Netsim Printf Raft Report Stats Stdlib
