lib/scenarios/fig5.ml: Des Format Harness Kvsm List Netsim Printf Raft Report
