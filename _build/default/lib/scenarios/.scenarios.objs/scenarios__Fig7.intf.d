lib/scenarios/fig7.mli: Des Format Raft
