lib/scenarios/extensions.ml: Des Fig4 Fig5 Format Harness List Netsim Raft Report Stats
