lib/scenarios/geo.mli: Harness Netsim
