lib/scenarios/ablation.ml: Des Dynatune Float Format Harness List Netsim Option Raft Report Stats Stdlib
