lib/scenarios/fig4.ml: Des Harness List Netsim Printf Raft Report Stats
