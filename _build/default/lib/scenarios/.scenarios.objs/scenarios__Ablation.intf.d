lib/scenarios/ablation.mli: Des Format
