lib/scenarios/fig5.mli: Des Format Kvsm Raft
