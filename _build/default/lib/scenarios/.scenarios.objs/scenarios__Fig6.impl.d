lib/scenarios/fig6.ml: Des Harness List Netsim Printf Raft Report Stats
