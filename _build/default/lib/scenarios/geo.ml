module Cluster = Harness.Cluster

type region = Tokyo | London | California | Sydney | Sao_paulo

let regions = [ Tokyo; London; California; Sydney; Sao_paulo ]

let name = function
  | Tokyo -> "tokyo"
  | London -> "london"
  | California -> "california"
  | Sydney -> "sydney"
  | Sao_paulo -> "sao-paulo"

(* Approximate AWS inter-region mean RTTs (ms). *)
let rtt_ms a b =
  let key a b = if a <= b then (a, b) else (b, a) in
  let idx = function
    | Tokyo -> 0
    | London -> 1
    | California -> 2
    | Sydney -> 3
    | Sao_paulo -> 4
  in
  match key (idx a) (idx b) with
  | 0, 0 | 1, 1 | 2, 2 | 3, 3 | 4, 4 -> 0.2
  | 0, 1 -> 210.
  | 0, 2 -> 107.
  | 0, 3 -> 105.
  | 0, 4 -> 256.
  | 1, 2 -> 137.
  | 1, 3 -> 264.
  | 1, 4 -> 186.
  | 2, 3 -> 139.
  | 2, 4 -> 172.
  | 3, 4 -> 308.
  | _ -> assert false

let conditions ?(jitter = 0.08) ?(loss = 0.0005) a b =
  Netsim.Conditions.(constant (profile ~rtt_ms:(rtt_ms a b) ~jitter ~loss ()))

let apply cluster ?jitter ?loss () =
  let ids = Cluster.node_ids cluster in
  if List.length ids <> List.length regions then
    invalid_arg "Geo.apply: the geo scenario needs exactly 5 nodes";
  List.iteri
    (fun i a ->
      List.iteri
        (fun j b ->
          if i <> j then
            Cluster.set_pair_conditions cluster (List.nth ids i)
              (List.nth ids j) (conditions ?jitter ?loss a b))
        regions)
    regions
