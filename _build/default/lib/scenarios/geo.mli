(** The five-region WAN of the paper's AWS experiment (Section IV-D):
    Tokyo, London, California, Sydney, São Paulo.

    Inter-region RTTs follow published AWS inter-region latency figures;
    each path gets mild lognormal jitter and a small residual loss rate,
    as dedicated inter-cloud circuits exhibit (Haq et al.). *)

type region = Tokyo | London | California | Sydney | Sao_paulo

val regions : region list
(** In node-id order: node [i] of a 5-node geo cluster lives in
    [List.nth regions i]. *)

val name : region -> string

val rtt_ms : region -> region -> float
(** Symmetric mean RTT between two regions; 0.2 ms within a region. *)

val conditions :
  ?jitter:float -> ?loss:float -> region -> region -> Netsim.Conditions.t
(** Constant-profile conditions for one region pair; defaults
    [jitter = 0.08], [loss = 0.0005]. *)

val apply : Harness.Cluster.t -> ?jitter:float -> ?loss:float -> unit -> unit
(** Install the region matrix on a 5-node cluster (node ids map to
    {!regions} in order).  Raises [Invalid_argument] for other sizes. *)
