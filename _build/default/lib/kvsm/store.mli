(** The key-value state machine replicated by Raft.

    Deterministic: the same sequence of commands yields the same state and
    results on every replica — the SMR contract.  [apply_entry] is the
    function plugged into {!Raft.Node.create}'s [apply]. *)

type t

type result =
  | Value of string option  (** result of a Get *)
  | Written
  | Deleted of bool  (** whether the key existed *)
  | Swapped of bool  (** whether the CAS succeeded *)
  | Invalid of string  (** undecodable payload *)

val create : unit -> t
val size : t -> int
val find : t -> string -> string option

val apply_command : t -> Command.t -> result

val apply_entry : t -> Raft.Log.entry -> result option
(** Decode and apply a log entry's command; [None] for no-op entries. *)

val applied_count : t -> int
(** Number of entries applied so far (monotone; useful for checking
    replica convergence in tests). *)

val state_digest : t -> string
(** Order-independent digest of the current contents; equal digests on
    two replicas mean equal state. *)

val serialize : t -> string
(** Snapshot the full contents (and applied count) into an opaque string
    — the payload of Raft's InstallSnapshot. *)

val of_serialized : string -> (t, string) Stdlib.result
(** Rebuild a store from {!serialize} output. *)
