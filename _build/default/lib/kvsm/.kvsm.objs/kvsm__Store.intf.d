lib/kvsm/store.mli: Command Raft Stdlib
