lib/kvsm/command.mli: Format
