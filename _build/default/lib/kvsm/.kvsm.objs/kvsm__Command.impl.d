lib/kvsm/command.ml: Buffer Format Option Printf Result String
