lib/kvsm/store.ml: Buffer Command Digest Hashtbl List Raft String
