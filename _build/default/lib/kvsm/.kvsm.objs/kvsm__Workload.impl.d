lib/kvsm/workload.ml: Client Des Format List Stats Stdlib
