lib/kvsm/client.ml: Command Des List Netsim Printf Stats String
