lib/kvsm/client.mli: Des Netsim
