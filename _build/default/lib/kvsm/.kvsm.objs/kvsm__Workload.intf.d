lib/kvsm/workload.mli: Client Des Format
