(** An open-loop client: requests arrive at a configured rate regardless
    of completions (the load model of the paper's peak-throughput
    experiment, Section IV-B2).

    The client is decoupled from the cluster by a [target] function —
    usually a wrapper that finds the current leader and calls
    {!Raft.Node.submit}. *)

type submit_result = [ `Accepted | `Not_leader of Netsim.Node_id.t option ]

type target =
  payload:string ->
  client_id:int ->
  seq:int ->
  on_result:(committed:bool -> unit) ->
  submit_result
(** How the client injects a request into the service. *)

type t

val create :
  engine:Des.Engine.t ->
  target:target ->
  client_id:int ->
  rate:float ->
  ?value_size:int ->
  ?client_rtt:Des.Time.span ->
  unit ->
  t
(** A stopped client issuing [Put] requests at [rate] per second with
    exponential inter-arrival gaps.  [client_rtt] is added to every
    recorded latency (the client→leader network round trip, which the
    simulation fabric does not carry).  Requires [rate > 0.]. *)

val start : t -> unit
val stop : t -> unit
(** Stop generating arrivals; outstanding requests may still complete. *)

(** {2 Counters} *)

val offered : t -> int
(** Requests submitted (arrival events). *)

val completed : t -> int
(** Requests committed. *)

val rejected : t -> int
(** Proposals that lost leadership mid-flight. *)

val redirected : t -> int
(** Arrivals that found no leader. *)

val latencies_ms : t -> float list
(** Commit latencies (ms) of completed requests, in completion order. *)
