type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable generation : int;
  mutable pending : Engine.handle option;
  mutable deadline : Time.t option;
  mutable last_span : Time.span option;
}

let create engine callback =
  {
    engine;
    callback;
    generation = 0;
    pending = None;
    deadline = None;
    last_span = None;
  }

let disarm t =
  (match t.pending with Some h -> Engine.cancel h | None -> ());
  t.generation <- t.generation + 1;
  t.pending <- None;
  t.deadline <- None

let arm t span =
  disarm t;
  let generation = t.generation in
  let fire () =
    if generation = t.generation then begin
      t.pending <- None;
      t.deadline <- None;
      t.callback ()
    end
  in
  t.last_span <- Some span;
  t.deadline <- Some (Time.add (Engine.now t.engine) span);
  t.pending <- Some (Engine.schedule_after t.engine span fire)

let is_armed t = t.pending <> None
let deadline t = t.deadline

let remaining t =
  match t.deadline with
  | None -> None
  | Some d -> Some (Time.diff d (Engine.now t.engine))

let armed_span t = t.last_span
