type 'a t = {
  engine : Engine.t;
  mutable events : (Time.t * 'a) list; (* newest first *)
  mutable len : int;
  mutable observers : (Time.t -> 'a -> unit) list;
}

let create engine = { engine; events = []; len = 0; observers = [] }
let engine t = t.engine

let emit t ev =
  let now = Engine.now t.engine in
  t.events <- (now, ev) :: t.events;
  t.len <- t.len + 1;
  List.iter (fun f -> f now ev) t.observers

let length t = t.len
let events t = List.rev t.events
let iter t ~f = List.iter (fun (time, ev) -> f time ev) (events t)

let find_first t ~after ~f =
  let rec scan = function
    | [] -> None
    | (time, ev) :: rest ->
        if time > after && f ~a:ev then Some (time, ev) else scan rest
  in
  scan (events t)

let clear t =
  t.events <- [];
  t.len <- 0

let subscribe t f = t.observers <- t.observers @ [ f ]
