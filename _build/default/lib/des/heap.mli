(** Generic binary min-heap.

    Backs the event queue; also reusable by any component needing a
    priority queue (e.g. retransmission scheduling experiments).  Not
    thread-safe: the simulator is single-domain by design. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap ordered by [cmp] (smallest element at the top). *)

val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Smallest element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the smallest element. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Snapshot of the contents in no particular order. *)
