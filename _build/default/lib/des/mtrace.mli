(** In-simulation trace recorder.

    Components emit typed events against the virtual clock; monitors
    consume the trace afterwards to measure detection time, out-of-service
    intervals, election rounds, etc.  This replaces the paper's practice of
    parsing etcd log files: the shared virtual clock makes the timestamps
    exact. *)

type 'a t

val create : Engine.t -> 'a t
val engine : 'a t -> Engine.t

val emit : 'a t -> 'a -> unit
(** Record an event at the current simulation time. *)

val length : 'a t -> int

val events : 'a t -> (Time.t * 'a) list
(** All events, oldest first. *)

val iter : 'a t -> f:(Time.t -> 'a -> unit) -> unit

val find_first : 'a t -> after:Time.t -> f:(a:'a -> bool) -> (Time.t * 'a) option
(** First event strictly after [after] satisfying the predicate. *)

val clear : 'a t -> unit

val subscribe : 'a t -> (Time.t -> 'a -> unit) -> unit
(** Register a live observer called on every subsequent [emit] (after the
    event is recorded).  Monitors use this to react during the run. *)
