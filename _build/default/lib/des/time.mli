(** Simulated time.

    Instants and spans are integer nanoseconds.  Integer time keeps the
    event queue ordering exact (no floating-point ties) and comfortably
    covers multi-day simulations in 63 bits.  A span is also an [int] of
    nanoseconds; the two aliases exist only for documentation. *)

type t = int
(** An instant, in nanoseconds since the start of the simulation. *)

type span = int
(** A duration in nanoseconds. *)

val zero : t
val ns : int -> span
val us : int -> span
val ms : int -> span
val sec : int -> span

val of_ms_f : float -> span
(** Milliseconds (fractional) to span, rounded to the nearest ns. *)

val of_sec_f : float -> span

val to_ms_f : span -> float
val to_sec_f : span -> float
val to_us_f : span -> float

val add : t -> span -> t
val diff : t -> t -> span
(** [diff a b] is [a - b]. *)

val scale : span -> float -> span
(** [scale s k] is [s·k], rounded. *)

val min_span : span -> span -> span
val max_span : span -> span -> span

val clamp : span -> lo:span -> hi:span -> span

val pp : Format.formatter -> t -> unit
(** Render as seconds with millisecond precision, e.g. ["12.345s"]. *)

val pp_ms : Format.formatter -> span -> unit
(** Render as milliseconds, e.g. ["237.1ms"]. *)
