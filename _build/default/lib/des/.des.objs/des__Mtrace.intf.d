lib/des/mtrace.mli: Engine Time
