lib/des/time.mli: Format
