lib/des/mtrace.ml: Engine List Time
