lib/des/timer.ml: Engine Time
