lib/des/timer.mli: Engine Time
