lib/des/engine.ml: Heap Printf Stats Time
