lib/des/engine.mli: Stats Time
