lib/des/time.ml: Float Format Stdlib
