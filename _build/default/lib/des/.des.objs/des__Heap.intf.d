lib/des/heap.mli:
