type t = int
type span = int

let zero = 0
let ns x = x
let us x = x * 1_000
let ms x = x * 1_000_000
let sec x = x * 1_000_000_000
let of_ms_f x = int_of_float (Float.round (x *. 1e6))
let of_sec_f x = int_of_float (Float.round (x *. 1e9))
let to_ms_f x = float_of_int x /. 1e6
let to_sec_f x = float_of_int x /. 1e9
let to_us_f x = float_of_int x /. 1e3
let add t s = t + s
let diff a b = a - b
let scale s k = int_of_float (Float.round (float_of_int s *. k))
let min_span = Stdlib.min
let max_span = Stdlib.max

let clamp s ~lo ~hi =
  if s < lo then lo else if s > hi then hi else s

let pp ppf t = Format.fprintf ppf "%.3fs" (to_sec_f t)
let pp_ms ppf s = Format.fprintf ppf "%.1fms" (to_ms_f s)
