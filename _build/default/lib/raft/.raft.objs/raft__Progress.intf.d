lib/raft/progress.pp.mli: Des Types
