lib/raft/rpc.pp.ml: Des Dynatune Format List Log String Types
