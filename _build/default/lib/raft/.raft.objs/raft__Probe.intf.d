lib/raft/probe.pp.mli: Des Format Netsim Types
