lib/raft/config.pp.mli: Des Dynatune Netsim
