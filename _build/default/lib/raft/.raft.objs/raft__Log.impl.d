lib/raft/log.pp.ml: Array List Ppx_deriving_runtime Stdlib Types
