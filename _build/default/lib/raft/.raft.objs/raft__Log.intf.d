lib/raft/log.pp.mli: Ppx_deriving_runtime Types
