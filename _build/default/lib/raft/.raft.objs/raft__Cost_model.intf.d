lib/raft/cost_model.pp.mli: Des Rpc
