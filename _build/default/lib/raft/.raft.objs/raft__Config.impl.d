lib/raft/config.pp.ml: Des Dynatune Format Netsim
