lib/raft/types.pp.mli: Ppx_deriving_runtime
