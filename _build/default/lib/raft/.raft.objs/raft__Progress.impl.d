lib/raft/progress.pp.ml: Des Stdlib Types
