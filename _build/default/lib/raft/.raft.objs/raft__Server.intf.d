lib/raft/server.pp.mli: Config Des Dynatune Log Netsim Probe Rpc Stats Types
