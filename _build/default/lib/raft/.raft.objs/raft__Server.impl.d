lib/raft/server.pp.ml: Config Des Dynatune List Log Netsim Option Probe Progress Rpc Stats Stdlib Types
