lib/raft/node.pp.mli: Config Cost_model Des Log Netsim Probe Rpc Server
