lib/raft/node.pp.ml: Config Cost_model Des Hashtbl Lazy List Log Netsim Probe Rpc Server Stats Types
