lib/raft/cost_model.pp.ml: Des List Rpc String
