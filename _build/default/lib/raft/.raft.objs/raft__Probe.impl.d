lib/raft/probe.pp.ml: Des Format Netsim Types
