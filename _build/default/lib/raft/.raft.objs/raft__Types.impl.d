lib/raft/types.pp.ml: Ppx_deriving_runtime
