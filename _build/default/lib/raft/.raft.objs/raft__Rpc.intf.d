lib/raft/rpc.pp.mli: Des Dynatune Format Log Types
