type t = {
  mutable next : Types.index;
  mutable matched : Types.index;
  mutable last_response_at : Des.Time.t;
  mutable last_append_sent_at : Des.Time.t;
}

let create ~last_index =
  {
    next = last_index + 1;
    matched = 0;
    last_response_at = Des.Time.zero;
    last_append_sent_at = Des.Time.zero;
  }

let note_append_sent t ~at = t.last_append_sent_at <- at
let last_append_sent_at t = t.last_append_sent_at

let note_response t ~at = t.last_response_at <- at
let last_response_at t = t.last_response_at
let next_index t = t.next
let match_index t = t.matched

let record_sent t ~upto = if upto + 1 > t.next then t.next <- upto + 1

let record_success t ~upto =
  if upto > t.matched then t.matched <- upto;
  if upto + 1 > t.next then t.next <- upto + 1

let record_conflict t ~hint =
  t.next <- Stdlib.max 1 (Stdlib.min hint t.next)

let needs_entries t ~last_index = t.next <= last_index
