(** Leader-side replication state for one follower. *)

type t

val create : last_index:Types.index -> t
(** Fresh state when a leader takes office: [next = last_index + 1],
    [match = 0]. *)

val next_index : t -> Types.index
(** First entry index to send next. *)

val match_index : t -> Types.index
(** Highest entry known replicated on the follower. *)

val record_sent : t -> upto:Types.index -> unit
(** Entries up to [upto] were handed to the (reliable) transport; advance
    [next] optimistically so the replication pipeline never re-sends
    in-flight entries (etcd's StateReplicate behaviour).  A conflict
    response rewinds via {!record_conflict}. *)

val record_success : t -> upto:Types.index -> unit
(** An AppendEntries covering entries up to [upto] succeeded. *)

val record_conflict : t -> hint:Types.index -> unit
(** A consistency check failed; back [next] off to [hint] (never below
    1, never above the current [next] − 0). *)

val needs_entries : t -> last_index:Types.index -> bool
(** Are there entries this follower has not been sent yet? *)

val note_response : t -> at:Des.Time.t -> unit
(** Record that an AppendEntries response (success or conflict) arrived. *)

val last_response_at : t -> Des.Time.t
(** Instant of the last AppendEntries response ([Time.zero] if none). *)

val note_append_sent : t -> at:Des.Time.t -> unit
(** Record that an AppendEntries carrying entries was sent (used by the
    heartbeat-suppression extension). *)

val last_append_sent_at : t -> Des.Time.t
