(** Observable protocol events emitted into the shared trace.

    The cluster monitor reconstructs the paper's measurements from these:
    detection time (timer expiries after a failure), OTS time (leadership
    establishment), split votes (repeated campaigns per term), and
    Dynatune's fallback behaviour (tuner resets, pre-vote aborts). *)

type t =
  | Role_change of { id : Netsim.Node_id.t; role : Types.role; term : Types.term }
  | Timeout_expired of {
      id : Netsim.Node_id.t;
      term : Types.term;
      randomized : Des.Time.span;  (** the randomizedTimeout that expired *)
    }
  | Pre_vote_aborted of { id : Netsim.Node_id.t; term : Types.term }
      (** leader contact arrived during a pre-campaign *)
  | Tuner_reset of { id : Netsim.Node_id.t }
  | Election_started of { id : Netsim.Node_id.t; term : Types.term }
      (** a real (post-pre-vote) campaign began *)
  | Node_paused of { id : Netsim.Node_id.t }
      (** fault injection froze the node (container sleep) *)
  | Node_resumed of { id : Netsim.Node_id.t }

val pp : Format.formatter -> t -> unit
val node : t -> Netsim.Node_id.t
