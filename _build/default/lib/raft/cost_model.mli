(** CPU service-time model for protocol processing.

    Used with {!Netsim.Cpu} to reproduce the resource-consumption
    experiments: Fig 5 (peak throughput, where Dynatune pays per-heartbeat
    tuning overhead and per-follower timers) and Fig 7b (leader CPU as a
    function of heartbeat rate).  All costs are service times charged to
    the node's CPU; [zero] disables resource modelling entirely. *)

type t = {
  heartbeat_send : Des.Time.span;  (** leader: stamp + transmit one heartbeat *)
  heartbeat_recv : Des.Time.span;  (** follower: receive + reply *)
  heartbeat_resp_recv : Des.Time.span;  (** leader: process one echo *)
  tuning_overhead : Des.Time.span;
      (** extra cost per heartbeat event when measurement/tuning is
          active (list maintenance, statistics, parameter recomputation) *)
  timer_fire : Des.Time.span;
      (** cost of one heartbeat-timer expiry (Dynatune keeps n−1 timers,
          static Raft one) *)
  append_send : Des.Time.span;  (** per AppendEntries message *)
  append_entry : Des.Time.span;  (** additional cost per entry carried *)
  append_recv : Des.Time.span;
  append_resp_recv : Des.Time.span;
  vote_msg : Des.Time.span;  (** any (pre-)vote request/response event *)
  propose : Des.Time.span;  (** leader: admit one client request *)
  apply : Des.Time.span;  (** apply one committed entry to the SM *)
}

val zero : t
(** All costs zero — resource modelling off. *)

val etcd_like : t
(** Calibrated to reproduce the paper's saturation points: a leader
    saturates near 13–14k req/s on four cores and heartbeat exchanges at
    Fix-K rates overload a two-core leader at N = 65. *)

val message_recv_cost : t -> tuning_active:bool -> Rpc.message -> Des.Time.span
(** Service time to process one received message. *)

val message_send_cost : t -> tuning_active:bool -> Rpc.message -> Des.Time.span
(** Service time to emit one message. *)
