(** Core Raft vocabulary: terms, log indices, roles. *)

type term = int [@@deriving show, eq]
(** Monotonically increasing election epoch; 0 before any election. *)

type index = int [@@deriving show, eq]
(** Log position, 1-based; 0 denotes the empty log sentinel. *)

type role =
  | Follower
  | Pre_candidate
      (** Running a pre-vote (etcd-style): soliciting promises without
          disturbing the current term. *)
  | Candidate
  | Leader
[@@deriving show, eq]

val is_leader : role -> bool
val role_name : role -> string
