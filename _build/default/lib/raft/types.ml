type term = int [@@deriving show, eq]
type index = int [@@deriving show, eq]

type role = Follower | Pre_candidate | Candidate | Leader
[@@deriving show, eq]

let is_leader = function Leader -> true | Follower | Pre_candidate | Candidate -> false

let role_name = function
  | Follower -> "follower"
  | Pre_candidate -> "pre-candidate"
  | Candidate -> "candidate"
  | Leader -> "leader"
