type t = {
  engine : Des.Engine.t;
  cores : float;
  passthrough : bool;
  mutable busy_until : Des.Time.t;
  mutable busy_total : Des.Time.span;
  (* Charged cost per whole simulated second, for utilization reporting. *)
  per_second : (int, int ref) Hashtbl.t;
}

let make engine ~cores ~passthrough =
  {
    engine;
    cores;
    passthrough;
    busy_until = Des.Time.zero;
    busy_total = 0;
    per_second = Hashtbl.create 64;
  }

let create engine ~cores =
  if cores <= 0. then invalid_arg "Cpu.create: cores must be positive";
  make engine ~cores ~passthrough:false

let passthrough engine = make engine ~cores:1. ~passthrough:true
let is_passthrough t = t.passthrough

(* Attribute [cost] ns of work to the seconds spanned by [start, start+cost).
   The busy window is the *service* window (cost / cores); the charged cost
   is the raw cost so that utilization can exceed 100%% on multi-core
   nodes, matching docker-stats semantics. *)
let account t ~start ~service ~cost =
  t.busy_total <- t.busy_total + cost;
  let sec_len = Des.Time.sec 1 in
  let finish = start + Stdlib.max 1 service in
  let span = finish - start in
  let rec spread at remaining =
    if remaining > 0 then begin
      let sec = at / sec_len in
      let sec_end = (sec + 1) * sec_len in
      let here = Stdlib.min remaining (sec_end - at) in
      (* Charge proportionally to the fraction of the service window that
         falls in this second. *)
      let charged =
        int_of_float
          (float_of_int cost *. float_of_int here /. float_of_int span)
      in
      let cell =
        match Hashtbl.find_opt t.per_second sec with
        | Some r -> r
        | None ->
            let r = ref 0 in
            Hashtbl.add t.per_second sec r;
            r
      in
      cell := !cell + charged;
      spread sec_end (remaining - here)
    end
  in
  spread start span

let enqueue t ~cost =
  let now = Des.Engine.now t.engine in
  let start = Stdlib.max now t.busy_until in
  let service =
    Stdlib.max 0 (int_of_float (float_of_int cost /. t.cores))
  in
  let finish = start + service in
  t.busy_until <- finish;
  if cost > 0 then account t ~start ~service ~cost;
  finish

let execute t ~cost k =
  if t.passthrough then k ()
  else
    let finish = enqueue t ~cost in
    ignore
      (Des.Engine.schedule_at t.engine finish k : Des.Engine.handle)

let charge t ~cost = if not t.passthrough then ignore (enqueue t ~cost : int)

let backlog t =
  Stdlib.max 0 (t.busy_until - Des.Engine.now t.engine)

let busy_total t = t.busy_total

let utilization_series t ~bucket_sec =
  if bucket_sec <= 0. then invalid_arg "Cpu.utilization_series: bucket <= 0";
  let now_sec = Des.Time.to_sec_f (Des.Engine.now t.engine) in
  let buckets = int_of_float (ceil (now_sec /. bucket_sec)) in
  List.init buckets (fun b ->
      let lo = float_of_int b *. bucket_sec in
      let hi = lo +. bucket_sec in
      let busy = ref 0 in
      Hashtbl.iter
        (fun sec r ->
          let s = float_of_int sec in
          if s >= lo && s < hi then busy := !busy + !r)
        t.per_second;
      (lo, float_of_int !busy /. (bucket_sec *. 1e9) *. 100.))

let utilization_in t ~lo_sec ~hi_sec =
  if hi_sec <= lo_sec then invalid_arg "Cpu.utilization_in: empty window";
  let busy = ref 0 in
  Hashtbl.iter
    (fun sec r ->
      let s = float_of_int sec in
      if s >= lo_sec && s < hi_sec then busy := !busy + !r)
    t.per_second;
  float_of_int !busy /. ((hi_sec -. lo_sec) *. 1e9) *. 100.
