lib/netsim/congestion.ml: Des Stats
