lib/netsim/conditions.ml: Array Des Format List
