lib/netsim/congestion.mli: Des Stats
