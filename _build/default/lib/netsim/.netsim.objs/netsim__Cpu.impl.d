lib/netsim/cpu.ml: Des Hashtbl List Stdlib
