lib/netsim/transport.mli: Des Format
