lib/netsim/node_id.mli: Format Hashtbl Map Set
