lib/netsim/link.mli: Conditions Des Stats
