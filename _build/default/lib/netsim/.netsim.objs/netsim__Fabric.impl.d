lib/netsim/fabric.ml: Conditions Congestion Des Hashtbl Link List Node_id Printf Stats Transport
