lib/netsim/cpu.mli: Des
