lib/netsim/transport.ml: Des Format Stdlib
