lib/netsim/node_id.ml: Format Hashtbl Int List Map Set
