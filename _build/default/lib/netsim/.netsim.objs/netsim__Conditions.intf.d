lib/netsim/conditions.mli: Des Format
