lib/netsim/link.ml: Conditions Des Stats
