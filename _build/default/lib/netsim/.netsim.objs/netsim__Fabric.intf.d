lib/netsim/fabric.mli: Conditions Congestion Des Link Node_id Transport
