(** Sender-side congestion episodes.

    WAN paths exhibit transient queueing-delay spikes of hundreds of
    milliseconds (Høiland-Jørgensen et al., cited by the paper's Section
    II-C1).  The bottleneck is typically the sender's egress queue, so an
    episode delays {e all} traffic a node sends, across every link, for
    its duration — which is what lets a delay spike starve a whole
    cluster's heartbeat fan-out at once.

    Episodes arrive as a Poisson process; each adds a uniformly sampled
    extra one-way delay for a fixed duration.  Between episodes the
    process contributes nothing. *)

type spec = {
  mean_gap : Des.Time.span;  (** mean time between episode starts *)
  extra_lo : Des.Time.span;  (** episode extra delay, lower bound *)
  extra_hi : Des.Time.span;  (** episode extra delay, upper bound *)
  duration : Des.Time.span;  (** how long one episode lasts *)
}

val spec :
  ?extra_lo:Des.Time.span ->
  ?extra_hi:Des.Time.span ->
  ?duration:Des.Time.span ->
  mean_gap:Des.Time.span ->
  unit ->
  spec
(** Defaults: extra 100–250 ms, duration 500 ms — the magnitude of the
    congestion events the paper's motivation cites. *)

type t

val create : rng:Stats.Rng.t -> spec -> t

val extra_delay : t -> now:Des.Time.t -> Des.Time.span
(** The extra one-way delay in force at [now] ([0] outside episodes).
    Must be called with non-decreasing [now] values (simulation time). *)
