(** Server identity within a cluster.

    A small integer wrapped in a private type so node ids, indices and
    counters cannot be confused. *)

type t = private int

val of_int : int -> t
(** Requires a non-negative argument. *)

val to_int : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

val range : int -> t list
(** [range n] is the ids [0 .. n-1] — a convenience for building
    clusters. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
