type t = int

let of_int i =
  if i < 0 then invalid_arg "Node_id.of_int: negative id";
  i

let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash i = i
let pp ppf i = Format.fprintf ppf "n%d" i
let range n = List.init n (fun i -> i)

module Map = Map.Make (Int)
module Set = Set.Make (Int)

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
