type spec = {
  mean_gap : Des.Time.span;
  extra_lo : Des.Time.span;
  extra_hi : Des.Time.span;
  duration : Des.Time.span;
}

let spec ?(extra_lo = Des.Time.ms 100) ?(extra_hi = Des.Time.ms 250)
    ?(duration = Des.Time.ms 500) ~mean_gap () =
  if mean_gap <= 0 then invalid_arg "Congestion.spec: mean_gap must be positive";
  if extra_lo < 0 || extra_hi < extra_lo then
    invalid_arg "Congestion.spec: requires 0 <= extra_lo <= extra_hi";
  if duration <= 0 then invalid_arg "Congestion.spec: duration must be positive";
  { mean_gap; extra_lo; extra_hi; duration }

type t = {
  spec : spec;
  rng : Stats.Rng.t;
  mutable next_at : Des.Time.t;
  mutable until : Des.Time.t;
  mutable extra : Des.Time.span;
}

let exp_gap t =
  let mean = Des.Time.to_sec_f t.spec.mean_gap in
  Des.Time.of_sec_f (Stats.Dist.exponential t.rng ~rate:(1. /. mean))

let create ~rng spec =
  let t = { spec; rng; next_at = 0; until = 0; extra = 0 } in
  t.next_at <- exp_gap t;
  t

let rec advance t ~now =
  if now >= t.next_at then begin
    t.until <- Des.Time.add t.next_at t.spec.duration;
    t.extra <-
      (if t.spec.extra_hi = t.spec.extra_lo then t.spec.extra_lo
       else
         t.spec.extra_lo
         + Stats.Rng.int t.rng (t.spec.extra_hi - t.spec.extra_lo + 1));
    (* Next episode starts after this one ends, plus an exponential gap:
       episodes never overlap. *)
    t.next_at <- Des.Time.add t.until (exp_gap t);
    advance t ~now
  end

let extra_delay t ~now =
  advance t ~now;
  if now < t.until then t.extra else 0
