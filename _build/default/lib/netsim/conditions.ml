type profile = {
  rtt_ms : float;
  jitter : float;
  loss : float;
  duplicate : float;
}

let profile ?(jitter = 0.) ?(loss = 0.) ?(duplicate = 0.) ~rtt_ms () =
  if rtt_ms < 0. then invalid_arg "Conditions.profile: negative rtt";
  if loss < 0. || loss > 1. then invalid_arg "Conditions.profile: loss not in [0,1]";
  { rtt_ms; jitter; loss; duplicate }

type t = { starts : Des.Time.t array; profiles : profile array }

let constant p = { starts = [| 0 |]; profiles = [| p |] }

let piecewise segments =
  match segments with
  | [] -> invalid_arg "Conditions.piecewise: empty schedule"
  | (t0, _) :: _ ->
      if t0 > Des.Time.zero then
        invalid_arg "Conditions.piecewise: schedule must start at time zero";
      let rec check = function
        | (a, _) :: ((b, _) :: _ as rest) ->
            if b <= a then
              invalid_arg "Conditions.piecewise: segments must be ascending";
            check rest
        | _ -> ()
      in
      check segments;
      {
        starts = Array.of_list (List.map fst segments);
        profiles = Array.of_list (List.map snd segments);
      }

let staircase ~hold profiles =
  if hold <= 0 then invalid_arg "Conditions.staircase: hold must be positive";
  piecewise (List.mapi (fun i p -> (i * hold, p)) profiles)

let rtt_staircase ~base ~hold ~rtts_ms =
  staircase ~hold (List.map (fun rtt_ms -> { base with rtt_ms }) rtts_ms)

let loss_staircase ~base ~hold ~losses =
  staircase ~hold (List.map (fun loss -> { base with loss }) losses)

let at t time =
  (* Binary search for the last segment with start <= time. *)
  let n = Array.length t.starts in
  if time <= t.starts.(0) then t.profiles.(0)
  else
    let rec search lo hi =
      (* invariant: starts.(lo) <= time, hi = first index > time or n *)
      if lo + 1 >= hi then t.profiles.(lo)
      else
        let mid = (lo + hi) / 2 in
        if t.starts.(mid) <= time then search mid hi else search lo mid
    in
    search 0 n

let pp_profile ppf p =
  Format.fprintf ppf "rtt=%.1fms jitter=%.2f loss=%.1f%% dup=%.1f%%" p.rtt_ms
    p.jitter (100. *. p.loss) (100. *. p.duplicate)
