(** Per-node CPU model: a FIFO server with utilization accounting.

    Message handling and request processing charge a service time; work is
    serialized (divided by the core count) so a node saturates like the
    paper's containers do in Fig 5 (peak throughput) and Fig 7b (leader CPU
    under heartbeat load).  Utilization is reported like [docker stats]:
    percent of one core, so values above 100% mean more than one core
    busy. *)

type t

val create : Des.Engine.t -> cores:float -> t
(** A CPU with [cores] cores (fractional allowed).  Requires
    [cores > 0.]. *)

val passthrough : Des.Engine.t -> t
(** A free CPU: [execute] runs work immediately and accounts nothing.
    Used by election-timing experiments where processing cost is
    irrelevant. *)

val is_passthrough : t -> bool

val execute : t -> cost:Des.Time.span -> (unit -> unit) -> unit
(** Enqueue work costing [cost]; the continuation runs when the work
    completes (after queueing behind earlier work).  With [cost = 0] the
    work still passes through the queue and completes at the current
    backlog horizon. *)

val charge : t -> cost:Des.Time.span -> unit
(** Account cost with no continuation (fire-and-forget work such as
    sending a message). *)

val backlog : t -> Des.Time.span
(** Work currently queued ahead of a new arrival, in time units. *)

val busy_total : t -> Des.Time.span
(** Total service time charged since creation. *)

val utilization_series :
  t -> bucket_sec:float -> (float * float) list
(** [(bucket_start_sec, percent)] pairs covering the simulation so far.
    Percent is charged-cost per bucket / bucket length × 100. *)

val utilization_in : t -> lo_sec:float -> hi_sec:float -> float
(** Mean utilization percent over a window of simulated seconds. *)
