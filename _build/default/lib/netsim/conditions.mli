(** Time-varying link conditions.

    The OCaml equivalent of the paper's [tc netem] scripts: each link has a
    schedule mapping simulation time to a {!profile} (RTT, jitter, loss,
    duplication).  Builders cover the exact patterns of Section IV:
    constant conditions, gradual ramps (Fig 6a), radical steps (Fig 6b) and
    symmetric up-then-down staircases (Fig 7). *)

type profile = {
  rtt_ms : float;  (** Mean round-trip time in milliseconds. *)
  jitter : float;
      (** Relative delay jitter: sigma of a mean-preserving lognormal
          multiplier applied to each one-way delay.  [0.] = no jitter. *)
  loss : float;  (** Per-message Bernoulli loss probability, [0, 1]. *)
  duplicate : float;
      (** Probability that a datagram is delivered twice. *)
}

val profile :
  ?jitter:float -> ?loss:float -> ?duplicate:float -> rtt_ms:float -> unit ->
  profile
(** Profile with defaults [jitter = 0.], [loss = 0.], [duplicate = 0.]. *)

type t
(** A schedule of profiles over simulation time. *)

val constant : profile -> t

val piecewise : (Des.Time.t * profile) list -> t
(** Segments as [(start_time, profile)]; the profile in force at time [x]
    is that of the last segment with [start_time <= x].  The list must be
    sorted ascending and start at or before time zero (a leading segment
    at time zero is required). *)

val staircase : hold:Des.Time.span -> profile list -> t
(** Profiles held for [hold] each, starting at time zero; the final
    profile persists forever.  Fig 6/7's step patterns. *)

val rtt_staircase :
  base:profile -> hold:Des.Time.span -> rtts_ms:float list -> t
(** [staircase] varying only the RTT over [base]. *)

val loss_staircase :
  base:profile -> hold:Des.Time.span -> losses:float list -> t
(** [staircase] varying only the loss rate over [base]. *)

val at : t -> Des.Time.t -> profile
(** Profile in force at an instant. *)

val pp_profile : Format.formatter -> profile -> unit
