type estimator = Sliding_window | Ewma of float

type t = {
  rtt_estimator : estimator;
  safety_factor : float;
  arrival_probability : float;
  min_list_size : int;
  max_list_size : int;
  default_election_timeout : Des.Time.span;
  default_heartbeat_interval : Des.Time.span;
  min_election_timeout : Des.Time.span;
  max_election_timeout : Des.Time.span;
  min_heartbeat_interval : Des.Time.span;
}

let default =
  {
    rtt_estimator = Sliding_window;
    safety_factor = 2.;
    arrival_probability = 0.999;
    min_list_size = 20;
    max_list_size = 100;
    default_election_timeout = Des.Time.ms 1000;
    default_heartbeat_interval = Des.Time.ms 100;
    min_election_timeout = Des.Time.ms 10;
    max_election_timeout = Des.Time.ms 5000;
    min_heartbeat_interval = Des.Time.ms 1;
  }

let validate t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if (match t.rtt_estimator with
     | Sliding_window -> false
     | Ewma alpha -> not (alpha > 0. && alpha <= 1.))
  then err "ewma alpha must be in (0, 1]"
  else if t.safety_factor < 0. then err "safety_factor must be non-negative"
  else if not (t.arrival_probability > 0. && t.arrival_probability < 1.) then
    err "arrival_probability must be in (0, 1)"
  else if t.min_list_size < 2 then err "min_list_size must be at least 2"
  else if t.max_list_size < t.min_list_size then
    err "max_list_size must be >= min_list_size"
  else if t.min_election_timeout <= 0 then
    err "min_election_timeout must be positive"
  else if t.max_election_timeout < t.min_election_timeout then
    err "max_election_timeout must be >= min_election_timeout"
  else if t.min_heartbeat_interval <= 0 then
    err "min_heartbeat_interval must be positive"
  else if t.default_election_timeout <= 0 then
    err "default_election_timeout must be positive"
  else if t.default_heartbeat_interval <= 0 then
    err "default_heartbeat_interval must be positive"
  else Ok t

let pp ppf t =
  Format.fprintf ppf
    "s=%.2f x=%.4f lists=[%d,%d] defaults Et=%a h=%a clamps Et=[%a,%a] h>=%a"
    t.safety_factor t.arrival_probability t.min_list_size t.max_list_size
    Des.Time.pp_ms t.default_election_timeout Des.Time.pp_ms
    t.default_heartbeat_interval Des.Time.pp_ms t.min_election_timeout
    Des.Time.pp_ms t.max_election_timeout Des.Time.pp_ms
    t.min_heartbeat_interval
