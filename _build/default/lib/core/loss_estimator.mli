(** Packet-loss estimation over the follower's [ids] list (Section
    III-C2).

    The leader stamps heartbeats with a sequential id; the follower keeps
    the ids it received in ascending order, ignoring duplicates, and
    estimates the loss rate as
    [p = 1 − received / expected] with [expected = ids[-1] − ids[0] + 1].
    The list is bounded: beyond [max_size] the oldest (smallest) id is
    evicted, so the estimate tracks recent conditions. *)

type t

val create : min_size:int -> max_size:int -> t
(** Requires [0 < min_size <= max_size]. *)

val observe : t -> int -> [ `Recorded | `Duplicate ]
(** Record a received heartbeat id.  Out-of-order arrivals are inserted
    in position; an id already present is ignored and reported as
    [`Duplicate]. *)

val length : t -> int
(** Number of distinct ids currently stored. *)

val warmed_up : t -> bool

val span : t -> (int * int) option
(** Smallest and largest stored id. *)

val expected : t -> int
(** [ids[-1] − ids[0] + 1]; [0] when empty. *)

val loss_rate : t -> float
(** Estimated loss probability in [\[0, 1)]; [0.] with fewer than two
    ids. *)

val clear : t -> unit
