(** RTT statistics over the follower's [RTTs] list (Section III-C1).

    The leader measures each heartbeat's RTT with its own clock and ships
    the measurement to the follower inside the next heartbeat; the
    follower stores it here.  The election timeout is derived as
    [Et = μ_RTT + s·σ_RTT] (Section III-D1) once at least [min_size]
    samples are present. *)

type t

val create : min_size:int -> max_size:int -> t
(** Requires [0 < min_size <= max_size]. *)

val observe : t -> Des.Time.span -> unit
(** Record one measured RTT. *)

val length : t -> int

val warmed_up : t -> bool
(** At least [min_size] samples recorded (Step 0 complete). *)

val mean : t -> Des.Time.span
(** Mean RTT of the window; [0] when empty. *)

val std : t -> Des.Time.span
(** Population standard deviation of the window. *)

val mean_ms : t -> float
val std_ms : t -> float

val election_timeout : t -> s:float -> Des.Time.span option
(** [μ + s·σ], or [None] until warmed up. *)

val last : t -> Des.Time.span option
(** Most recent sample. *)

val clear : t -> unit
(** Discard all samples (leader change / timer expiry fallback). *)
