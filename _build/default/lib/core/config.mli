(** Dynatune runtime parameters (Section III-E).

    These are the four knobs the paper exposes as runtime arguments —
    safety factor [s], arrival probability [x], and the two list-size
    bounds — plus the default (fallback) election parameters and safety
    clamps that keep a mis-measured path from driving the timers to
    degenerate values. *)

type estimator =
  | Sliding_window
      (** the paper's [RTTs] list: bounded window, batch μ/σ *)
  | Ewma of float
      (** Jacobson/Karels smoothing with the given α (TCP uses 1/8) —
          an O(1)-memory alternative evaluated by the ablation bench *)

type t = {
  rtt_estimator : estimator;
      (** which RTT statistics backend derives [Et] (default:
          [Sliding_window], the paper's design) *)
  safety_factor : float;
      (** [s] in [Et = μ_RTT + s·σ_RTT].  Larger values tolerate more RTT
          variance at the cost of slower failure detection.  Paper
          default: 2. *)
  arrival_probability : float;
      (** [x]: the target probability that at least one heartbeat arrives
          within [Et].  Determines [K = ⌈log_p(1−x)⌉].  Paper default:
          0.999. *)
  min_list_size : int;
      (** Below this many samples the tuner stays in Step 0 (defaults in
          force).  Paper default: 20. *)
  max_list_size : int;
      (** Sample windows evict their oldest entry beyond this size.  Paper
          default: 100. *)
  default_election_timeout : Des.Time.span;
      (** Fallback [Et]; also the value restored when an election timer
          expires.  Paper default: 1000 ms (etcd default). *)
  default_heartbeat_interval : Des.Time.span;
      (** Fallback [h].  Paper default: 100 ms (etcd default). *)
  min_election_timeout : Des.Time.span;
      (** Lower clamp on tuned [Et] (guards against a zero-variance
          window on an idealized link). *)
  max_election_timeout : Des.Time.span;
      (** Upper clamp on tuned [Et]; the conservative default is the
          natural ceiling. *)
  min_heartbeat_interval : Des.Time.span;
      (** Lower clamp on tuned [h]; bounds the heartbeat rate, hence the
          leader's resource consumption. *)
}

val default : t
(** The paper's experimental configuration: [s = 2], [x = 0.999],
    [min_list_size = 20], [max_list_size = 100], defaults 1000 ms /
    100 ms, clamps 10 ms / 5000 ms / 1 ms. *)

val validate : t -> (t, string) result
(** Check internal consistency (list sizes ordered, probabilities in
    range, clamps ordered). *)

val pp : Format.formatter -> t -> unit
