lib/core/loss_estimator.mli:
