lib/core/tuner.mli: Config Des Format
