lib/core/loss_estimator.ml: Array Stdlib
