lib/core/config.ml: Des Format
