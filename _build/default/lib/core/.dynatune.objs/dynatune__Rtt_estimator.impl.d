lib/core/rtt_estimator.ml: Des Option Stats
