lib/core/ewma_estimator.ml: Des Float
