lib/core/leader_path.mli: Config Des
