lib/core/config.mli: Des Format
