lib/core/tuner.ml: Config Des Ewma_estimator Format Loss_estimator Rtt_estimator Stdlib
