lib/core/ewma_estimator.mli: Des
