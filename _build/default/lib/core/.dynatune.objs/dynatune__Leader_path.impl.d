lib/core/leader_path.ml: Config Des
