type t = {
  alpha : float;
  beta : float;
  min_samples : int;
  mutable srtt : float;  (* ms *)
  mutable rttvar : float;  (* ms *)
  mutable count : int;
}

let create ?(alpha = 0.125) ~min_samples () =
  if not (alpha > 0. && alpha <= 1.) then
    invalid_arg "Ewma_estimator.create: alpha must be in (0, 1]";
  if min_samples <= 0 then
    invalid_arg "Ewma_estimator.create: min_samples must be positive";
  {
    alpha;
    beta = Float.min 1. (2. *. alpha);
    min_samples;
    srtt = 0.;
    rttvar = 0.;
    count = 0;
  }

let alpha t = t.alpha

let observe t rtt =
  let r = Des.Time.to_ms_f rtt in
  if t.count = 0 then begin
    (* TCP's initialization: first sample seeds both estimators. *)
    t.srtt <- r;
    t.rttvar <- r /. 2.
  end
  else begin
    t.rttvar <-
      ((1. -. t.beta) *. t.rttvar) +. (t.beta *. abs_float (r -. t.srtt));
    t.srtt <- ((1. -. t.alpha) *. t.srtt) +. (t.alpha *. r)
  end;
  if t.count < max_int then t.count <- t.count + 1

let length t = t.count
let warmed_up t = t.count >= t.min_samples
let mean t = Des.Time.of_ms_f t.srtt
let deviation t = Des.Time.of_ms_f t.rttvar

let election_timeout t ~s =
  if not (warmed_up t) then None
  else Some (Des.Time.of_ms_f (t.srtt +. (s *. t.rttvar)))

let clear t =
  t.srtt <- 0.;
  t.rttvar <- 0.;
  t.count <- 0
