type t = { min_size : int; window : Stats.Window.t }

let create ~min_size ~max_size =
  if min_size <= 0 || max_size < min_size then
    invalid_arg "Rtt_estimator.create: requires 0 < min_size <= max_size";
  { min_size; window = Stats.Window.create ~capacity:max_size }

(* Samples are stored as float milliseconds: the statistics are about
   durations of that magnitude and the window's running sums stay well
   conditioned. *)
let observe t rtt = Stats.Window.push t.window (Des.Time.to_ms_f rtt)
let length t = Stats.Window.length t.window
let warmed_up t = length t >= t.min_size
let mean_ms t = Stats.Window.mean t.window
let std_ms t = Stats.Window.std t.window
let mean t = Des.Time.of_ms_f (mean_ms t)
let std t = Des.Time.of_ms_f (std_ms t)

let election_timeout t ~s =
  if not (warmed_up t) then None
  else Some (Des.Time.of_ms_f (mean_ms t +. (s *. std_ms t)))

let last t = Option.map Des.Time.of_ms_f (Stats.Window.last t.window)
let clear t = Stats.Window.clear t.window
