(** The Dynatune tuning policy for one leader→follower path (Sections
    III-B through III-D).

    This is the follower-side state machine:

    - {b Step 0} ([`Warming]): record heartbeat metadata until both sample
      lists reach [min_list_size]; the default election parameters are in
      force.
    - {b Steps 1–3} ([`Tuned]): on every heartbeat, re-estimate RTT
      statistics and loss rate, derive [Et = μ + s·σ] and
      [h = Et / K] with [K = ⌈log_p(1−x)⌉], and piggyback [h] to the
      leader in the heartbeat response.

    [reset] implements the fallback rule: when the election timer expires
    (leader failure or RTT spike), all measurements are discarded and the
    conservative defaults are restored. *)

type t

val create : Config.t -> t
(** Raises [Invalid_argument] if the configuration fails
    {!Config.validate}. *)

val config : t -> Config.t

type phase = Warming | Tuned

val phase : t -> phase

val observe_heartbeat : t -> hb_id:int -> rtt:Des.Time.span option -> unit
(** Record one received heartbeat: its sequence id, and the previous
    heartbeat's RTT measurement if the leader included one.  Duplicate ids
    are ignored. *)

val election_timeout : t -> Des.Time.span
(** Current [Et]: the tuned value clamped to the configured range when
    [Tuned], the default otherwise. *)

val heartbeat_interval : t -> Des.Time.span
(** Current [h = Et / K], clamped below by [min_heartbeat_interval];
    the default interval while [Warming]. *)

val required_heartbeats : t -> int
(** Current [K = ⌈log_p(1−x)⌉] (1 when the measured loss rate is 0). *)

val loss_rate : t -> float
val rtt_mean : t -> Des.Time.span
val rtt_std : t -> Des.Time.span
val samples : t -> int
(** RTT samples currently held. *)

val reset : t -> unit
(** Discard all measurements and fall back to the defaults (back to
    Step 0). *)

val required_heartbeats_for : p:float -> x:float -> int
(** The pure formula [K = ⌈log_p(1−x)⌉], exposed for analysis and
    property tests: [p <= 0] yields 1; [p >= 1] yields [max_int] (no
    finite K can satisfy the target). *)

val pp : Format.formatter -> t -> unit
