(** EWMA-based RTT estimation — an alternative backend to the paper's
    sliding-window [RTTs] list (Section III-C1).

    Uses the Jacobson/Karels smoothed estimators that TCP retransmission
    timers use: [srtt ← (1−α)·srtt + α·r] and
    [rttvar ← (1−β)·rttvar + β·|r − srtt|] with [β = α/2 ... 2α]
    (we use [β = 2α] capped at 1, TCP's classic α = 1/8, β = 1/4
    ratio).  The election timeout becomes [Et = srtt + s·rttvar].

    Compared to the window: O(1) memory regardless of list size, smooth
    decay instead of abrupt eviction, but slower to forget an outage and
    unable to distinguish one spike from a level shift.  The ablation
    bench quantifies the trade (adaptation lag vs. stability). *)

type t

val create : ?alpha:float -> min_samples:int -> unit -> t
(** [alpha] defaults to 1/8 (TCP's).  Requires [0 < alpha <= 1] and
    [min_samples > 0]. *)

val alpha : t -> float
val observe : t -> Des.Time.span -> unit
val length : t -> int
(** Samples observed since the last [clear] (saturates; only used for
    warm-up detection). *)

val warmed_up : t -> bool
val mean : t -> Des.Time.span
(** Smoothed RTT; [0] when no samples. *)

val deviation : t -> Des.Time.span
(** Smoothed mean absolute deviation (the [rttvar] term). *)

val election_timeout : t -> s:float -> Des.Time.span option
(** [srtt + s·rttvar], or [None] until warmed up. *)

val clear : t -> unit
