type t = {
  min_size : int;
  max_size : int;
  (* Ascending circular buffer of ids. *)
  buf : int array;
  mutable head : int;
  mutable len : int;
}

let create ~min_size ~max_size =
  if min_size <= 0 || max_size < min_size then
    invalid_arg "Loss_estimator.create: requires 0 < min_size <= max_size";
  { min_size; max_size; buf = Array.make max_size 0; head = 0; len = 0 }

let get t i = t.buf.((t.head + i) mod t.max_size)
let set t i v = t.buf.((t.head + i) mod t.max_size) <- v

(* Index of the first stored id >= [id], in [0, len]. *)
let lower_bound t id =
  let rec search lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if get t mid < id then search (mid + 1) hi else search lo mid
  in
  search 0 t.len

let evict_oldest t =
  t.head <- (t.head + 1) mod t.max_size;
  t.len <- t.len - 1

let observe t id =
  let pos = lower_bound t id in
  if pos < t.len && get t pos = id then `Duplicate
  else begin
    if t.len = t.max_size then begin
      (* Evicting the smallest id shifts the insertion point left by one
         unless the new id itself would have been the smallest. *)
      let pos = if pos > 0 then pos - 1 else 0 in
      evict_oldest t;
      (* Shift elements [pos, len) right by one to open a slot. *)
      t.len <- t.len + 1;
      let i = ref (t.len - 1) in
      while !i > pos do
        set t !i (get t (!i - 1));
        decr i
      done;
      set t pos id
    end
    else begin
      t.len <- t.len + 1;
      let i = ref (t.len - 1) in
      while !i > pos do
        set t !i (get t (!i - 1));
        decr i
      done;
      set t pos id
    end;
    `Recorded
  end

let length t = t.len
let warmed_up t = t.len >= t.min_size

let span t =
  if t.len = 0 then None else Some (get t 0, get t (t.len - 1))

let expected t =
  match span t with None -> 0 | Some (lo, hi) -> hi - lo + 1

let loss_rate t =
  if t.len < 2 then 0.
  else
    let e = expected t in
    Stdlib.max 0. (1. -. (float_of_int t.len /. float_of_int e))

let clear t =
  t.head <- 0;
  t.len <- 0
