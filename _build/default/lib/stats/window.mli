(** Bounded sliding window of float samples with running statistics.

    This is the data structure behind Dynatune's [RTTs] list: samples are
    appended, the oldest is evicted once [capacity] is exceeded, and the
    mean / standard deviation of the current contents are available in
    O(1).  Running sums are periodically recomputed from the stored samples
    to bound floating-point drift. *)

type t

val create : capacity:int -> t
(** [create ~capacity] holds at most [capacity] samples.
    Requires [capacity > 0]. *)

val capacity : t -> int
val length : t -> int
val is_full : t -> bool
val clear : t -> unit

val push : t -> float -> unit
(** Append a sample, evicting the oldest when full. *)

val mean : t -> float
(** Mean of the current contents; [0.] when empty. *)

val std : t -> float
(** Population standard deviation of the current contents. *)

val min : t -> float
(** Smallest current sample; [nan] when empty. O(n). *)

val max : t -> float
(** Largest current sample; [nan] when empty. O(n). *)

val get : t -> int -> float
(** [get t i] is the i-th oldest sample, [0 <= i < length t]. *)

val last : t -> float option
(** Most recently pushed sample. *)

val to_list : t -> float list
(** Contents, oldest first. *)

val fold : t -> init:'a -> f:('a -> float -> 'a) -> 'a
(** Left fold, oldest first. *)
