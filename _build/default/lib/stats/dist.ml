let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be positive";
  (* 1 - u avoids log 0 since Rng.float is in [0, 1). *)
  -.log (1. -. Rng.float rng) /. rate

let normal rng ~mu ~sigma =
  let u1 = 1. -. Rng.float rng in
  let u2 = Rng.float rng in
  let r = sqrt (-2. *. log u1) in
  mu +. (sigma *. r *. cos (2. *. Float.pi *. u2))

let lognormal rng ~mu ~sigma = exp (normal rng ~mu ~sigma)

let lognormal_mean_preserving rng ~sigma =
  if sigma = 0. then 1.
  else lognormal rng ~mu:(-.sigma *. sigma /. 2.) ~sigma

let truncated_normal rng ~mu ~sigma ~lo =
  if sigma = 0. then Float.max mu lo
  else
    let rec draw n =
      if n = 0 then lo
      else
        let v = normal rng ~mu ~sigma in
        if v >= lo then v else draw (n - 1)
    in
    draw 64

let pareto rng ~scale ~shape =
  if scale <= 0. || shape <= 0. then
    invalid_arg "Dist.pareto: scale and shape must be positive";
  scale /. ((1. -. Rng.float rng) ** (1. /. shape))

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be non-negative";
  if mean = 0. then 0
  else if mean > 60. then
    (* Normal approximation with continuity correction. *)
    let v = normal rng ~mu:mean ~sigma:(sqrt mean) in
    Stdlib.max 0 (int_of_float (Float.round v))
  else
    let limit = exp (-.mean) in
    let rec loop k p =
      let p = p *. Rng.float rng in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.

let categorical rng ~weights =
  let total = Array.fold_left ( +. ) 0. weights in
  if total <= 0. then
    invalid_arg "Dist.categorical: needs a positive total weight";
  let x = Rng.float rng *. total in
  let n = Array.length weights in
  let rec walk i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else walk (i + 1) acc
  in
  walk 0 0.
