(** Append-only time series of (time, value) points with bucketed
    aggregation.

    Scenario monitors record samples against the simulation clock
    (seconds); the benchmark harness then aggregates them into fixed-width
    buckets to print the per-second / per-interval series shown in the
    paper's figures 6 and 7. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val length : t -> int

val push : t -> time:float -> value:float -> unit
(** Record one point.  Times should be non-decreasing; this is asserted. *)

val points : t -> (float * float) list
(** All points, oldest first. *)

val last : t -> (float * float) option

type agg = Mean | Sum | Max | Min | Last | Count

val bucket : t -> width:float -> agg:agg -> (float * float) list
(** [bucket t ~width ~agg] groups points into consecutive buckets of
    [width] time units starting at the first point's time, and reduces each
    non-empty bucket with [agg].  Returns [(bucket_start_time, value)]
    pairs, oldest first. *)

val values_in : t -> lo:float -> hi:float -> float list
(** Values of points with time in [\[lo, hi)]. *)
