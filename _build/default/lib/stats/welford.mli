(** Online mean and variance (Welford's algorithm).

    Numerically stable single-pass accumulation; O(1) space.  Used wherever
    a long-running average is needed without retaining samples. *)

type t
(** Mutable accumulator. *)

val create : unit -> t
val reset : t -> unit

val add : t -> float -> unit
(** Accumulate one observation. *)

val count : t -> int
val mean : t -> float
(** Mean of the observations so far; [0.] when empty. *)

val variance : t -> float
(** Population variance ([/n]); [0.] when fewer than two samples. *)

val std : t -> float
(** Population standard deviation. *)

val sample_variance : t -> float
(** Unbiased sample variance ([/(n-1)]); [0.] when fewer than two samples. *)

val min : t -> float
(** Smallest observation; [nan] when empty. *)

val max : t -> float
(** Largest observation; [nan] when empty. *)

val merge : t -> t -> t
(** [merge a b] is an accumulator equivalent to having seen both streams
    (Chan et al. parallel combination). Inputs are not mutated. *)
