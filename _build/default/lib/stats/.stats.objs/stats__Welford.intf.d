lib/stats/welford.mli:
