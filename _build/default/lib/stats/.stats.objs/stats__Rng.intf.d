lib/stats/rng.mli:
