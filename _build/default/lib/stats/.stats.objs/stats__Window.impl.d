lib/stats/window.ml: Array List Stdlib
