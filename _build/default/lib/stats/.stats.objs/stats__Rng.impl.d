lib/stats/rng.ml: Array Char Int64 String
