lib/stats/timeseries.mli:
