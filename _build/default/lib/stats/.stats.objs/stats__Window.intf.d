lib/stats/window.mli:
