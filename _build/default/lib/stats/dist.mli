(** Samplers for the probability distributions used by the network model.

    All samplers draw from an explicit {!Rng.t}; none touch global state.
    The [jitter] family is mean-preserving: multiplying a base delay by a
    jitter sample leaves its expectation unchanged, which keeps a link's
    configured RTT equal to its long-run average RTT. *)

val exponential : Rng.t -> rate:float -> float
(** [exponential rng ~rate] samples Exp(rate); mean [1/rate].
    Requires [rate > 0]. *)

val normal : Rng.t -> mu:float -> sigma:float -> float
(** Gaussian via the Box–Muller transform (no cached spare, so draw
    sequences stay reproducible under stream splitting). *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** [lognormal rng ~mu ~sigma] is [exp] of a Normal(mu, sigma) draw. *)

val lognormal_mean_preserving : Rng.t -> sigma:float -> float
(** A lognormal multiplier with expectation exactly 1: [exp(sigma·Z −
    sigma²/2)].  Used as multiplicative delay jitter. [sigma = 0.] always
    yields [1.]. *)

val truncated_normal : Rng.t -> mu:float -> sigma:float -> lo:float -> float
(** Normal(mu, sigma) resampled until the draw is [>= lo].  Used for
    additive jitter that must not produce negative delays. *)

val pareto : Rng.t -> scale:float -> shape:float -> float
(** Pareto(scale, shape): heavy-tailed delays for congestion spikes.
    Requires [scale > 0] and [shape > 0]. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson-distributed count (Knuth's algorithm for small means, normal
    approximation above 60).  Used for batching arrival processes. *)

val categorical : Rng.t -> weights:float array -> int
(** Index sampled proportionally to [weights].  Requires at least one
    strictly positive weight. *)
