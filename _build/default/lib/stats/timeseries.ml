type t = {
  name : string;
  mutable times : float array;
  mutable values : float array;
  mutable len : int;
}

let create ?(name = "") () =
  { name; times = Array.make 64 0.; values = Array.make 64 0.; len = 0 }

let name t = t.name
let length t = t.len

let grow t =
  let cap = Array.length t.times in
  let times = Array.make (2 * cap) 0. in
  let values = Array.make (2 * cap) 0. in
  Array.blit t.times 0 times 0 t.len;
  Array.blit t.values 0 values 0 t.len;
  t.times <- times;
  t.values <- values

let push t ~time ~value =
  assert (t.len = 0 || time >= t.times.(t.len - 1));
  if t.len = Array.length t.times then grow t;
  t.times.(t.len) <- time;
  t.values.(t.len) <- value;
  t.len <- t.len + 1

let points t =
  List.init t.len (fun i -> (t.times.(i), t.values.(i)))

let last t =
  if t.len = 0 then None else Some (t.times.(t.len - 1), t.values.(t.len - 1))

type agg = Mean | Sum | Max | Min | Last | Count

let reduce agg vs =
  match (agg, vs) with
  | _, [] -> nan
  | Mean, vs -> List.fold_left ( +. ) 0. vs /. float_of_int (List.length vs)
  | Sum, vs -> List.fold_left ( +. ) 0. vs
  | Max, v :: vs -> List.fold_left Stdlib.max v vs
  | Min, v :: vs -> List.fold_left Stdlib.min v vs
  | Last, vs -> List.nth vs (List.length vs - 1)
  | Count, vs -> float_of_int (List.length vs)

let bucket t ~width ~agg =
  if t.len = 0 then []
  else begin
    let t0 = t.times.(0) in
    let bucket_of time = int_of_float ((time -. t0) /. width) in
    let out = ref [] in
    let current = ref (bucket_of t.times.(0)) in
    let pending = ref [] in
    let flush () =
      if !pending <> [] then begin
        let start = t0 +. (width *. float_of_int !current) in
        out := (start, reduce agg (List.rev !pending)) :: !out;
        pending := []
      end
    in
    for i = 0 to t.len - 1 do
      let b = bucket_of t.times.(i) in
      if b <> !current then begin
        flush ();
        current := b
      end;
      pending := t.values.(i) :: !pending
    done;
    flush ();
    List.rev !out
  end

let values_in t ~lo ~hi =
  let out = ref [] in
  for i = t.len - 1 downto 0 do
    if t.times.(i) >= lo && t.times.(i) < hi then out := t.values.(i) :: !out
  done;
  !out
