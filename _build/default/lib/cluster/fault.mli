(** Fault injection: the paper's leader-failure campaigns.

    The fault model is the experiment's container sleep: a paused node's
    timers stop acting and all traffic to it is dropped; on recovery it
    rejoins with its state intact (and, if it still believes it is the
    leader, it is deposed by higher-term responses — exactly what a woken
    container experiences). *)

val pause : Cluster.t -> Netsim.Node_id.t -> unit
val recover : Cluster.t -> Netsim.Node_id.t -> unit

val crash_and_restart :
  Cluster.t -> Netsim.Node_id.t -> downtime:Des.Time.span -> unit
(** Crash-recovery fault (Section III-A's second failure model): the node
    loses all volatile state and its KV replica, stays down for
    [downtime], then restarts from its persisted term/vote/log and
    rebuilds the state machine by replaying committed entries. *)

val kill_leader : Cluster.t -> (Netsim.Node_id.t * Des.Time.t) option
(** Pause the current leader; returns its id and the failure instant.
    [None] when no leader exists. *)

type failure_outcome = {
  failed : Netsim.Node_id.t;
  failed_at : Des.Time.t;
  detection_ms : float;
      (** failure → first follower election-timer expiry *)
  majority_detection_ms : float;
      (** failure → (f+1)-th distinct follower expiry (the pre-vote
          quorum point the paper's Fig 6 reasoning uses) *)
  randomized_at_detection_ms : float;
      (** the randomizedTimeout that expired first *)
  ots_ms : float;  (** failure → new leader established *)
  new_leader : Netsim.Node_id.t;
  election_rounds : int;
      (** real campaigns started before one won (>1 ⟹ split votes) *)
}

val fail_and_measure :
  Cluster.t ->
  ?detect_limit:Des.Time.span ->
  unit ->
  (failure_outcome, string) result
(** One iteration of the Section IV-B1 campaign: kill the current leader,
    run until a new leader is established (up to [detect_limit], default
    60 s), measure, then recover the old leader and let it rejoin.
    The cluster trace is cleared before and after. *)
