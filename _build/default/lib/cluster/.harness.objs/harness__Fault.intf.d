lib/cluster/fault.mli: Cluster Des Netsim
