lib/cluster/monitor.mli: Cluster Des Netsim Stats
