lib/cluster/monitor.ml: Cluster Des List Netsim Raft Stats Stdlib
