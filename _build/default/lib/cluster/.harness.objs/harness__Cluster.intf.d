lib/cluster/cluster.mli: Des Kvsm Netsim Raft
