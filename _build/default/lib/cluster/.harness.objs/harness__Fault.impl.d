lib/cluster/fault.ml: Cluster Des Dynatune List Netsim Raft Stats Stdlib
