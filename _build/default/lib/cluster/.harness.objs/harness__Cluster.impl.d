lib/cluster/cluster.ml: Des Kvsm Lazy List Netsim Raft Stdlib
