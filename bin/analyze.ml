(* AST-level determinism analyzer, CLI (see DESIGN.md §12).

   Where bin/lint.ml scans tokens line by line, this parses every
   .ml/.mli under the given directories into a Parsetree (via
   compiler-libs) and runs the semantics-aware rules of lib/analysis:

     effect-taint        call paths from DES/raft/parallel entry points
                         to banned ambient effects, through wrappers
     shared-state        top-level mutable values in modules reachable
                         from domain-spawned closures
     protocol-wildcard   catch-all arms in matches over [@@protocol]
                         variant constructors
     parse-error         a file the frontend cannot parse

   Usage:
     analyze.exe [--allow FILE] DIR...   scan; exit 1 on unsuppressed hits
     analyze.exe --self-test DIR         fixture mode: every rule must fire
                                         in bad*.ml files, none in good*.ml

   The allowlist is the same file and format as the lint's
   ([path-suffix:rule-id] lines, # comments); rule ids are disjoint
   from the lint's, so both tools share lint.allow. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec source_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> source_files (Filename.concat path entry))
  else if
    (Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli")
    (* When run under dune the tree also holds ppx-preprocessed [.pp.ml]
       marshalled-AST artifacts; only real sources are analyzable. *)
    && not (Filename.check_suffix (Filename.chop_extension path) ".pp")
  then [ path ]
  else []

let load_files dirs =
  List.concat_map source_files dirs
  |> List.map (fun path -> { Analysis.path; content = read_file path })

let load_allow path =
  match Analysis.Finding.parse_allow (read_file path) with
  | Ok allow -> allow
  | Error line ->
      prerr_endline ("analyze: malformed allowlist entry: " ^ line);
      exit 2

let run_scan ~allow dirs =
  let config = Analysis.Driver.default_config ~allow () in
  let findings = Analysis.analyze ~config (load_files dirs) in
  List.iter
    (fun f -> prerr_endline (Analysis.Finding.render f))
    findings;
  if findings = [] then print_endline "analysis: clean"
  else begin
    Printf.eprintf "analysis: %d finding(s)\n" (List.length findings);
    exit 1
  end

(* Fixture mode, mirroring lint --self-test: fixtures are given virtual
   paths under lib/raft/ so they sit in a taint entry domain; every
   rule must fire at least once across bad*.ml, and good*.ml must stay
   entirely clean. *)
let self_test dir =
  let files = List.filter (fun p -> Filename.check_suffix p ".ml") (source_files dir) in
  if files = [] then begin
    prerr_endline ("analyze --self-test: no fixtures under " ^ dir);
    exit 2
  end;
  let virtual_files =
    List.map
      (fun path ->
        {
          Analysis.path = "lib/raft/" ^ Filename.basename path;
          content = read_file path;
        })
      files
  in
  let findings = Analysis.analyze virtual_files in
  let is_bad (f : Analysis.Finding.t) =
    let base = Filename.basename f.path in
    String.length base >= 3 && String.equal (String.sub base 0 3) "bad"
  in
  let bad_hits, good_hits = List.partition is_bad findings in
  let failures = ref 0 in
  List.iter
    (fun (rule, _doc) ->
      if
        not
          (List.exists
             (fun (f : Analysis.Finding.t) -> String.equal f.rule rule)
             bad_hits)
      then begin
        Printf.eprintf "analyze --self-test: rule %s never fired on the bad \
                        fixtures\n"
          rule;
        incr failures
      end)
    Analysis.rules;
  List.iter
    (fun f ->
      Printf.eprintf "analyze --self-test: false positive in clean fixture:\n  %s\n"
        (Analysis.Finding.render f);
      incr failures)
    good_hits;
  if !failures > 0 then exit 1;
  Printf.printf
    "analyze --self-test: all %d rules fire, clean fixtures clean\n"
    (List.length Analysis.rules)

let () =
  match Array.to_list Sys.argv with
  | [ _; "--self-test"; dir ] -> self_test dir
  | _ :: "--allow" :: allow :: dirs when dirs <> [] ->
      run_scan ~allow:(load_allow allow) dirs
  | _ :: dirs
    when dirs <> []
         && not (List.exists (fun d -> d = "--allow" || d = "--self-test") dirs)
    ->
      run_scan ~allow:[] dirs
  | _ ->
      prerr_endline
        "usage: analyze [--allow FILE] DIR...\n       analyze --self-test DIR";
      exit 2
