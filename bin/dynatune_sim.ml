(* dynatune_sim: command-line driver for the Dynatune simulation.

   Subcommands:
     failover    repeated leader-kill campaign, detection/OTS statistics
     reconfig    rolling-replace membership campaign on the geo WAN
     watch       live election-parameter adaptation under RTT/loss schedules
     throughput  open-loop RPS ramp with the CPU cost model
     calc        the tuning formulas as a calculator (K, h, Et)
     figure      regenerate one of the paper's figures
     explain     causal forensics of every leadership change in a pinned
                 geo-WAN failover run *)

open Cmdliner

let ppf = Format.std_formatter

(* {2 Shared options} *)

let mode_conv =
  let parse = function
    | "raft" -> Ok (Raft.Config.static ())
    | "raft-low" -> Ok (Raft.Config.raft_low ())
    | "dynatune" -> Ok (Raft.Config.dynatune ())
    | "fix-k" -> Ok (Raft.Config.fix_k ~k:10 ())
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print fmt c = Format.fprintf fmt "%s" (Raft.Config.mode_name c) in
  Arg.conv (parse, print)

let mode =
  Arg.(
    value
    & opt mode_conv (Raft.Config.dynatune ())
    & info [ "m"; "mode" ] ~docv:"MODE"
        ~doc:"Raft variant: raft, raft-low, dynatune or fix-k.")

let seed =
  Arg.(
    value & opt int64 42L
    & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are deterministic).")

let servers =
  Arg.(
    value & opt int 5
    & info [ "n"; "servers" ] ~docv:"N" ~doc:"Cluster size (odd).")

let rtt =
  Arg.(
    value & opt float 100.
    & info [ "rtt" ] ~docv:"MS" ~doc:"Link round-trip time in milliseconds.")

let jitter =
  Arg.(
    value & opt float 0.02
    & info [ "jitter" ] ~docv:"SIGMA"
        ~doc:"Relative delay jitter (lognormal sigma).")

let loss =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P" ~doc:"Packet loss probability in [0,1).")

(* {2 failover} *)

let failover_cmd =
  let failures =
    Arg.(
      value & opt int 100
      & info [ "failures" ] ~docv:"K" ~doc:"Number of leader kills.")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file of the campaign (open in \
             Perfetto or chrome://tracing): election spans per node, tuner \
             decisions, per-link counters.  Implies full instrumentation.")
  in
  let record_every =
    Arg.(
      value
      & opt (some float) None
      & info [ "record" ] ~docv:"MS"
          ~doc:
            "Sample every counter and gauge each MS of virtual time \
             (implies instrumentation).  Export the series with \
             --record-csv and/or --record-openmetrics; defaults to 1000 \
             when either export flag is given without --record.")
  in
  let record_csv =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-csv" ] ~docv:"FILE"
          ~doc:"Write the recorded time series as wide CSV.")
  in
  let record_om =
    Arg.(
      value
      & opt (some string) None
      & info [ "record-openmetrics" ] ~docv:"FILE"
          ~doc:"Write the recorded time series as OpenMetrics text.")
  in
  let run config n failures rtt_ms jitter seed trace_out record_every
      record_csv record_om =
    let record =
      match (record_every, record_csv, record_om) with
      | Some ms, _, _ -> Some (Des.Time.of_ms_f ms)
      | None, None, None -> None
      | None, _, _ -> Some (Des.Time.sec 1)
    in
    let instrument = trace_out <> None || record <> None in
    let sink = Telemetry.Chrome_trace.create () in
    let bridges = ref [] in
    let on_cluster ~shard cluster =
      (* Shard s becomes Chrome process s+1 (pid 0 is reserved).
         With the default jobs=1 there is exactly one. *)
      let b =
        Harness.Tracing.attach ~pid:(shard + 1)
          ~name:(Printf.sprintf "shard %d" shard)
          cluster sink
      in
      bridges := b :: !bridges
    in
    let result =
      Scenarios.Fig4.run ~seed ~n ~failures ~rtt_ms ~jitter ~config
        ~instrument ?record
        ?on_cluster:(if trace_out = None then None else Some on_cluster)
        ()
    in
    Scenarios.Fig4.print ppf [ result ];
    if instrument then
      Format.fprintf ppf "@.telemetry:@.%a" Telemetry.Metrics.pp
        result.Scenarios.Fig4.metrics;
    (match trace_out with
    | None -> ()
    | Some path ->
        List.iter Harness.Tracing.finish !bridges;
        Telemetry.Chrome_trace.write sink path;
        Format.fprintf ppf "@.wrote %d trace events to %s@."
          (Telemetry.Chrome_trace.event_count sink)
          path);
    let dump = result.Scenarios.Fig4.recorder in
    let export label render path =
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (render dump));
      Format.fprintf ppf "@.wrote %d recorded series (%s) to %s@."
        (List.length dump) label path
    in
    Option.iter (export "CSV" Telemetry.Recorder.to_csv) record_csv;
    Option.iter
      (export "OpenMetrics" Telemetry.Recorder.to_openmetrics)
      record_om
  in
  Cmd.v
    (Cmd.info "failover" ~doc:"Leader-failure campaign (Fig 4 style)")
    Term.(
      const run $ mode $ servers $ failures $ rtt $ jitter $ seed $ trace_out
      $ record_every $ record_csv $ record_om)

(* {2 reconfig} *)

let reconfig_cmd =
  let rounds =
    Arg.(
      value & opt int 2
      & info [ "rounds" ] ~docv:"K"
          ~doc:"Rolling-replace rounds (each replaces all 5 servers).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file of the campaign (open in \
             Perfetto or chrome://tracing): election spans per node plus \
             leadership-transfer and learner catch-up spans on the \
             per-node reconfig threads.  Implies full instrumentation.")
  in
  let run config rounds seed trace_out =
    match trace_out with
    | None ->
        Scenarios.Reconfig.print ppf
          [ Scenarios.Reconfig.run ~seed ~rounds ~config () ]
    | Some path ->
        let sink = Telemetry.Chrome_trace.create () in
        let bridges = ref [] in
        let result =
          Scenarios.Reconfig.run ~seed ~rounds ~config ~instrument:true
            ~on_cluster:(fun ~shard cluster ->
              let b =
                Harness.Tracing.attach ~pid:(shard + 1)
                  ~name:(Printf.sprintf "shard %d" shard)
                  cluster sink
              in
              bridges := b :: !bridges)
            ()
        in
        List.iter Harness.Tracing.finish !bridges;
        Telemetry.Chrome_trace.write sink path;
        Scenarios.Reconfig.print ppf [ result ];
        Format.fprintf ppf "@.telemetry:@.%a" Telemetry.Metrics.pp
          result.Scenarios.Reconfig.metrics;
        Format.fprintf ppf "@.wrote %d trace events to %s@."
          (Telemetry.Chrome_trace.event_count sink)
          path
  in
  Cmd.v
    (Cmd.info "reconfig"
       ~doc:"Rolling-replace membership campaign (dynamic reconfiguration)")
    Term.(const run $ mode $ rounds $ seed $ trace_out)

(* {2 watch} *)

let watch_cmd =
  let rtts =
    Arg.(
      value
      & opt (list float) [ 50.; 100.; 200.; 100.; 50. ]
      & info [ "rtts" ] ~docv:"MS,MS,..." ~doc:"RTT schedule, one step each.")
  in
  let losses =
    Arg.(
      value
      & opt (list float) []
      & info [ "losses" ] ~docv:"P,P,..."
          ~doc:"Loss schedule (overrides a constant --loss).")
  in
  let hold =
    Arg.(
      value & opt int 15
      & info [ "hold" ] ~docv:"SEC" ~doc:"Seconds per schedule step.")
  in
  let run config n rtts losses hold jitter seed =
    let hold = Des.Time.sec hold in
    let profiles =
      match losses with
      | [] -> List.map (fun rtt_ms -> Netsim.Conditions.profile ~rtt_ms ~jitter ()) rtts
      | losses ->
          List.concat_map
            (fun rtt_ms ->
              List.map
                (fun loss ->
                  Netsim.Conditions.profile ~rtt_ms ~jitter ~loss ())
                losses)
            rtts
    in
    let conditions = Netsim.Conditions.staircase ~hold profiles in
    let cluster =
      Harness.Cluster.create ~seed ~n ~config ~conditions ()
    in
    Harness.Cluster.start cluster;
    (match Harness.Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
    | Some _ -> ()
    | None -> failwith "no leader elected");
    Format.fprintf ppf "  %6s %10s %8s %16s %8s@." "t(s)" "rtt(ms)" "loss"
      "majority-rTO(ms)" "leader";
    let duration = List.length profiles * hold in
    let series =
      Harness.Monitor.watch cluster ~every:(Des.Time.sec 2) ~duration
        ~probes:
          [
            {
              Harness.Monitor.name = "rto";
              read =
                (fun c ->
                  Harness.Monitor.gap (Harness.Monitor.majority_randomized_ms c));
            };
            {
              Harness.Monitor.name = "led";
              read = (fun c -> if Harness.Monitor.has_leader c then 1. else 0.);
            };
          ]
    in
    let rto = List.assoc "rto" series and led = List.assoc "led" series in
    List.iter2
      (fun (t, v) (_, l) ->
        let p = Netsim.Conditions.at conditions (Des.Time.of_sec_f t) in
        Format.fprintf ppf "  %6.0f %10.0f %7.1f%% %16.0f %8s@." t
          p.Netsim.Conditions.rtt_ms
          (100. *. p.Netsim.Conditions.loss)
          v
          (if l > 0. then "yes" else "NO"))
      (Stats.Timeseries.points rto) (Stats.Timeseries.points led)
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Watch election parameters adapt to an RTT/loss schedule")
    Term.(const run $ mode $ servers $ rtts $ losses $ hold $ jitter $ seed)

(* {2 throughput} *)

let throughput_cmd =
  let max_rps =
    Arg.(
      value & opt int 17000
      & info [ "max-rps" ] ~docv:"RPS" ~doc:"Top of the offered-load ramp.")
  in
  let step =
    Arg.(
      value & opt int 1000
      & info [ "step" ] ~docv:"RPS" ~doc:"Ramp increment per level.")
  in
  let hold =
    Arg.(
      value & opt int 5
      & info [ "hold" ] ~docv:"SEC" ~doc:"Seconds per load level.")
  in
  let run config max_rps step hold rtt_ms seed =
    let rates =
      List.init (max_rps / step) (fun i -> float_of_int ((i + 1) * step))
    in
    let result =
      Scenarios.Fig5.run ~seed ~rates ~hold:(Des.Time.sec hold) ~rtt_ms
        ~config ()
    in
    Scenarios.Fig5.print ppf [ result ]
  in
  Cmd.v
    (Cmd.info "throughput" ~doc:"Open-loop RPS ramp (Fig 5 style)")
    Term.(const run $ mode $ max_rps $ step $ hold $ rtt $ seed)

(* {2 calc} *)

let calc_cmd =
  let x =
    Arg.(
      value & opt float 0.999
      & info [ "x" ] ~docv:"X" ~doc:"Target heartbeat arrival probability.")
  in
  let s =
    Arg.(
      value & opt float 2.
      & info [ "s" ] ~docv:"S" ~doc:"Safety factor in Et = mu + s*sigma.")
  in
  let sigma =
    Arg.(
      value & opt float 5.
      & info [ "sigma" ] ~docv:"MS" ~doc:"RTT standard deviation (ms).")
  in
  let run rtt_ms sigma s x loss =
    let et = rtt_ms +. (s *. sigma) in
    let k = Dynatune.Tuner.required_heartbeats_for ~p:loss ~x in
    Format.fprintf ppf "inputs: mu_RTT=%.1fms sigma=%.1fms s=%.1f p=%.3f x=%.4f@."
      rtt_ms sigma s loss x;
    Format.fprintf ppf "Et = mu + s*sigma           = %.1f ms@." et;
    Format.fprintf ppf "K  = ceil(log_p(1-x))       = %d heartbeats@." k;
    Format.fprintf ppf "h  = Et / K                 = %.1f ms (%.1f heartbeats/s per follower)@."
      (et /. float_of_int k)
      (1000. /. (et /. float_of_int k));
    Format.fprintf ppf
      "guarantee: P(at least one heartbeat within Et) = %.6f >= %.4f@."
      (1. -. (loss ** float_of_int k))
      x
  in
  Cmd.v
    (Cmd.info "calc" ~doc:"Evaluate the tuning formulas (Section III-D)")
    Term.(const run $ rtt $ sigma $ s $ x $ loss)

(* {2 explain} *)

let explain_cmd =
  let failures =
    Arg.(
      value & opt int 3
      & info [ "failures" ] ~docv:"K"
          ~doc:"Leader kills (each recovered before the next).")
  in
  let raw =
    Arg.(
      value & flag
      & info [ "raw" ]
          ~doc:"Also dump every retained forensics record, unanalyzed.")
  in
  let run config seed failures raw =
    let records = Scenarios.Explain.run ~seed ~failures ~config () in
    Scenarios.Explain.print ppf (Scenarios.Explain.analyze records);
    if raw then begin
      Format.fprintf ppf "@.forensics ring (%d records):@."
        (List.length records);
      List.iter
        (fun r ->
          Format.fprintf ppf "  %s@."
            (Telemetry.Forensics.render_record r))
        records
    end
  in
  let seed =
    Arg.(
      value & opt int64 23L
      & info [ "seed" ] ~docv:"SEED"
          ~doc:"PRNG seed (runs are deterministic).")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Explain every leadership change of a pinned geo-WAN failover \
          run: the causal chain from network measurement through tuner \
          decision, timeout, campaign and votes to the new leader, each \
          election classified justified or spurious")
    Term.(const run $ mode $ seed $ failures $ raw)

(* {2 multiraft} *)

let multiraft_cmd =
  let group_counts =
    Arg.(
      value
      & opt (list int) [ 64 ]
      & info [ "groups" ] ~docv:"N,N,..."
          ~doc:"Raft group counts to sweep (one cell each).")
  in
  let replicas =
    Arg.(
      value & opt int 3
      & info [ "replicas" ] ~docv:"R" ~doc:"Servers per group.")
  in
  let rates =
    Arg.(
      value
      & opt (list float) Scenarios.Multiraft.default_rates
      & info [ "rates" ] ~docv:"RPS,RPS,..."
          ~doc:"Aggregate offered rates (spread over the groups by the \
                shard router).")
  in
  let hold =
    Arg.(
      value & opt int 2
      & info [ "hold" ] ~docv:"SEC" ~doc:"Seconds per load level.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"J"
          ~doc:
            "Campaign workers (one cell per worker; results are \
             bit-identical whatever J).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON file of the first group \
             count's run: one Perfetto track group (process) per Raft \
             group, election spans per node.  Implies full \
             instrumentation.")
  in
  let seed =
    Arg.(
      value & opt int64 11L
      & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed (runs are deterministic).")
  in
  let run group_counts replicas rates hold jobs seed trace_out =
    let hold = Des.Time.sec hold in
    match trace_out with
    | None ->
        let result =
          Scenarios.Multiraft.sweep ~seed ~replicas ~group_counts ~rates ~hold
            ~jobs ()
        in
        Scenarios.Multiraft.print ppf result;
        Format.fprintf ppf "@.sweep digest: %016Lx@."
          result.Scenarios.Multiraft.digest
    | Some path ->
        let groups =
          match group_counts with g :: _ -> g | [] -> 64
        in
        let sink = Telemetry.Chrome_trace.create () in
        let bridges = ref [] in
        let cell =
          Scenarios.Multiraft.run_one ~seed ~replicas ~rates ~hold ~groups
            ~telemetry:(Telemetry.Metrics.create ())
            ~on_manager:(fun m ->
              (* One Chrome process per Raft group (pid 0 is reserved),
                 so Perfetto shows one collapsible track group each. *)
              Multiraft.Group_manager.iter_groups m (fun g cluster ->
                  let b =
                    Harness.Tracing.attach ~pid:(g + 1)
                      ~name:(Printf.sprintf "group %d" g)
                      cluster sink
                  in
                  bridges := b :: !bridges))
            ()
        in
        Scenarios.Multiraft.print_cell ppf cell;
        List.iter Harness.Tracing.finish !bridges;
        Telemetry.Chrome_trace.write sink path;
        Format.fprintf ppf "@.wrote %d trace events to %s@."
          (Telemetry.Chrome_trace.event_count sink)
          path
  in
  Cmd.v
    (Cmd.info "multiraft"
       ~doc:
         "Multi-Raft sharding sweep: N consensus groups on one fabric \
          behind a shard-routed KV front door")
    Term.(
      const run $ group_counts $ replicas $ rates $ hold $ jobs $ seed
      $ trace_out)

(* {2 figure} *)

let figure_cmd =
  let figure_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FIGURE"
          ~doc:"One of: fig4, fig5, fig6a, fig6b, fig7, fig8, ablation.")
  in
  let full =
    Arg.(
      value & flag
      & info [ "full" ] ~doc:"Paper-scale parameters (slower).")
  in
  let run figure_name full =
    let hold quick f = Des.Time.sec (if full then f else quick) in
    match figure_name with
    | "fig4" ->
        Scenarios.Fig4.print ppf
          (Scenarios.Fig4.compare_modes
             ~failures:(if full then 1000 else 200)
             ())
    | "fig5" ->
        Scenarios.Fig5.print ppf
          (Scenarios.Fig5.compare_modes ~hold:(hold 3 10) ())
    | "fig6a" ->
        Scenarios.Fig6.print ppf Scenarios.Fig6.Gradual
          (Scenarios.Fig6.compare_modes ~hold:(hold 20 60)
             ~pattern:Scenarios.Fig6.Gradual ())
    | "fig6b" ->
        Scenarios.Fig6.print ppf Scenarios.Fig6.Radical
          (Scenarios.Fig6.compare_modes ~hold:(hold 20 60)
             ~pattern:Scenarios.Fig6.Radical ())
    | "fig7" ->
        Scenarios.Fig7.print ppf
          (Scenarios.Fig7.compare_modes ~hold:(hold 20 180) ~ns:[ 5; 17; 65 ]
             ())
    | "fig8" ->
        Scenarios.Fig8.print ppf
          (Scenarios.Fig8.compare_modes
             ~failures:(if full then 1000 else 150)
             ())
    | "ablation" ->
        Scenarios.Ablation.print ppf
          ( Scenarios.Ablation.safety_factor_sweep (),
            Scenarios.Ablation.arrival_probability_sweep (),
            Scenarios.Ablation.list_size_sweep (),
            Scenarios.Ablation.estimator_sweep () )
    | other -> Format.fprintf ppf "unknown figure %S@." other
  in
  Cmd.v
    (Cmd.info "figure" ~doc:"Regenerate one of the paper's figures")
    Term.(const run $ figure_name $ full)

let () =
  let default =
    Term.(ret (const (`Help (`Pager, None))))
  in
  let info =
    Cmd.info "dynatune_sim" ~version:"1.0.0"
      ~doc:
        "Simulated evaluation of Dynatune: dynamic tuning of Raft election \
         parameters using network measurement"
  in
  exit
    (Cmd.eval
       (Cmd.group ~default info
          [
            failover_cmd;
            reconfig_cmd;
            watch_cmd;
            throughput_cmd;
            multiraft_cmd;
            calc_cmd;
            figure_cmd;
            explain_cmd;
          ]))
