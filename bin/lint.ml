(* Purely static source lint for the simulator sources.

   The simulator's determinism contract bans certain constructs outright:
   wall-clock reads (the only clock is the DES's virtual one), the global
   [Random] state (all randomness flows from seeded [Stats.Rng] streams),
   [Obj.magic], polymorphic [Stdlib.compare]/[Hashtbl.hash] (message and
   state types carry their own comparisons), [exit] from [lib/] (library
   code raises or returns; only the binaries may end the process), and
   top-level mutable globals in [lib/raft] (all protocol state lives in
   [Server.t] so that parallel campaign domains share nothing).

   One rule needs binding structure rather than single lines: [hot-alloc]
   holds [@hot]-marked bindings (the append/heartbeat/delivery hot paths)
   to the allocation discipline — no allocating list/array combinators,
   no [Printf]/[Format], no lambda literals.

   Usage:
     lint.exe [--allow FILE] DIR...    scan .ml/.mli under DIRs; exit 1 on hits
     lint.exe --self-test DIR          fixture mode: every rule must fire in
                                       bad*.ml files, none may fire in good*.ml

   The allowlist file holds lines of the form [path-suffix:rule-id]
   ([#] comments and blank lines ignored); a hit is suppressed when the
   file path ends with the suffix and the rule id matches. *)

let ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

(* Blank out comments (nested) and string literals, preserving line
   structure, so rules only see code. *)
let strip source =
  let n = String.length source in
  let b = Buffer.create n in
  let i = ref 0 in
  let depth = ref 0 in
  while !i < n do
    let c = source.[!i] in
    let next = if !i + 1 < n then source.[!i + 1] else '\000' in
    if !depth > 0 then
      if c = '(' && next = '*' then begin
        incr depth;
        i := !i + 2
      end
      else if c = '*' && next = ')' then begin
        decr depth;
        i := !i + 2
      end
      else begin
        if c = '\n' then Buffer.add_char b '\n';
        incr i
      end
    else if c = '(' && next = '*' then begin
      incr depth;
      i := !i + 2
    end
    else if c = '\'' && next = '"' && !i + 2 < n && source.[!i + 2] = '\'' then begin
      (* the char literal '"' must not open a string *)
      Buffer.add_string b "' '";
      i := !i + 3
    end
    else if c = '"' then begin
      Buffer.add_char b ' ';
      incr i;
      let fin = ref false in
      while (not !fin) && !i < n do
        let c = source.[!i] in
        if c = '\\' && !i + 1 < n then i := !i + 2
        else begin
          if c = '"' then fin := true else if c = '\n' then Buffer.add_char b '\n';
          incr i
        end
      done
    end
    else begin
      Buffer.add_char b c;
      incr i
    end
  done;
  Buffer.contents b

(* [tok] present as a standalone path/identifier: not preceded by an
   identifier character or a ['.'] (so [My_random.x] and [Foo.Sys.time]
   don't match), and — unless the token itself ends in ['.'] — not
   followed by an identifier character (so [Unix.times] is not
   [Unix.time]). *)
let has_token line tok =
  let ln = String.length line and tn = String.length tok in
  let open_ended = tn > 0 && tok.[tn - 1] = '.' in
  let rec go i =
    if i + tn > ln then false
    else if
      String.sub line i tn = tok
      && (i = 0 || ((not (ident_char line.[i - 1])) && line.[i - 1] <> '.'))
      && (open_ended || i + tn = ln || not (ident_char line.[i + tn]))
    then true
    else go (i + 1)
  in
  go 0

let any_token toks line = List.exists (has_token line) toks

(* A column-0 [let NAME [: TYPE] = ref ...]: a top-level mutable global.
   Bindings with parameters (functions returning refs) don't match. *)
let toplevel_ref line =
  String.length line > 4
  && String.sub line 0 4 = "let "
  &&
  match String.index_opt line '=' with
  | None -> false
  | Some eq -> (
      let name = String.trim (String.sub line 4 (eq - 4)) in
      let name =
        match String.index_opt name ':' with
        | Some c -> String.trim (String.sub name 0 c)
        | None -> name
      in
      name <> ""
      && String.for_all ident_char name
      &&
      let rhs = String.trim (String.sub line (eq + 1) (String.length line - eq - 1)) in
      rhs = "ref"
      || (String.length rhs > 3 && String.sub rhs 0 4 = "ref ")
      || (String.length rhs > 3 && String.sub rhs 0 4 = "ref("))

let contains_sub ~sub s =
  let sn = String.length sub and n = String.length s in
  let rec go i = i + sn <= n && (String.sub s i sn = sub || go (i + 1)) in
  go 0

(* The [stdlib-exit] rule used to fire on every standalone [exit]
   token, which also hit record fields, field puns, labelled/optional
   arguments and bindings merely *named* [exit].  [Stdlib.exit] stays
   unconditional; a bare [exit] fires only when its surroundings can't
   prove it is a declaration form:

     ~exit / ?exit          labelled or optional argument
     let/and/val/method/external exit
                            a binding or signature item of that name
     exit = / exit :        field definition or assignment, binding
                            name, type annotation ([exit ::] — a list
                            holding the function — still fires)
     { exit } / ; exit ;    a field pun *)
let exit_usage line =
  has_token line "Stdlib.exit"
  ||
  let n = String.length line in
  let is_space c = c = ' ' || c = '\t' in
  let rec prev j =
    if j < 0 then None else if is_space line.[j] then prev (j - 1) else Some j
  in
  let rec next j =
    if j >= n then None else if is_space line.[j] then next (j + 1) else Some j
  in
  let declaration i =
    (i > 0 && (line.[i - 1] = '~' || line.[i - 1] = '?'))
    || (match prev (i - 1) with
       | Some j when ident_char line.[j] ->
           let rec start k =
             if k >= 0 && ident_char line.[k] then start (k - 1) else k + 1
           in
           let s = start j in
           List.mem
             (String.sub line s (j - s + 1))
             [ "let"; "and"; "val"; "method"; "external" ]
       | _ -> false)
    || (match next (i + 4) with
       | Some j ->
           (line.[j] = '=' && (j + 1 >= n || line.[j + 1] <> '='))
           || (line.[j] = ':' && (j + 1 >= n || line.[j + 1] <> ':'))
       | None -> false)
    || (match (prev (i - 1), next (i + 4)) with
       | Some p, Some q ->
           (line.[p] = '{' || line.[p] = ';')
           && (line.[q] = '}' || line.[q] = ';')
       | _ -> false)
  in
  let rec go i =
    if i + 4 > n then false
    else if
      String.sub line i 4 = "exit"
      && (i = 0 || ((not (ident_char line.[i - 1])) && line.[i - 1] <> '.'))
      && (i + 4 = n || not (ident_char line.[i + 4]))
      && not (declaration i)
    then true
    else go (i + 1)
  in
  go 0

type rule = {
  id : string;
  doc : string;
  scope : string -> bool;  (* does the rule apply to this path? *)
  fires : string -> bool;  (* on one stripped source line *)
  block : (string array -> (int * string) list) option;
      (* whole-file rule: stripped lines -> (0-based lineno, line) hits;
         for rules that need binding structure, not just one line *)
}

(* {2 hot-alloc: allocation discipline for [@hot]-marked bindings}

   A binding marked hot — [let[@hot] f ...], or [[@@hot]] after the
   binding body — is an append/heartbeat/delivery hot-path function: it
   may not call the allocating list/array combinators, may not format
   ([Printf]/[Format] build closures and buffers per call), and may not
   contain a lambda literal (a [fun]/[function] inside the body is a
   closure allocation per call unless hoisted; partial applications that
   allocate are written as lambdas after inlining anyway).

   Binding structure is textual, matching this lint's style: a binding
   starts at a line whose first token is [let]/[and] and extends to the
   next [let]/[and] at the same or shallower indentation, so deeper
   [let ... in] locals do not end the region. *)

let indent_of line =
  let n = String.length line in
  let rec go i = if i < n && line.[i] = ' ' then go (i + 1) else i in
  go 0

let begins_any line prefixes =
  let i = indent_of line in
  let rest = String.sub line i (String.length line - i) in
  List.exists
    (fun p ->
      String.length rest >= String.length p
      && String.sub rest 0 (String.length p) = p)
    prefixes

let starts_binding line = begins_any line [ "let "; "let["; "and "; "and[" ]

(* A binding also ends at the next structure item of any other kind at
   the same or shallower indent — otherwise a [let pp] directly above a
   [module Pool = struct ... end] would swallow the module's bindings
   (and their [@hot] marks). *)
let ends_block line =
  starts_binding line
  || begins_any line
       [ "module "; "type "; "open "; "include "; "exception "; "val "; "end" ]

let hot_banned =
  [
    "List.map"; "List.mapi"; "List.rev_map"; "List.concat_map";
    "List.filter_map"; "List.filter"; "List.append"; "List.concat";
    "Array.append"; "Array.concat"; "Array.of_list"; "Array.to_list";
    "Printf."; "Format.";
  ]

let hot_line_fires line =
  any_token hot_banned line
  || contains_sub ~sub:"(fun" line
  || contains_sub ~sub:"(function" line

let hot_alloc_hits lines =
  let n = Array.length lines in
  let hits = ref [] in
  let i = ref 0 in
  while !i < n do
    if starts_binding lines.(!i) then begin
      let start = !i and ind = indent_of lines.(!i) in
      let j = ref (!i + 1) in
      while
        !j < n && not (ends_block lines.(!j) && indent_of lines.(!j) <= ind)
      do
        incr j
      done;
      let hot = ref false in
      for k = start to !j - 1 do
        if contains_sub ~sub:"@hot]" lines.(k) then hot := true
      done;
      if !hot then
        for k = start to !j - 1 do
          if hot_line_fires lines.(k) then hits := (k, lines.(k)) :: !hits
        done;
      i := !j
    end
    else incr i
  done;
  List.rev !hits

let rules =
  [
    {
      id = "wall-clock";
      block = None;
      doc = "wall-clock read (the DES virtual clock is the only clock)";
      scope = (fun _ -> true);
      fires = any_token [ "Unix.gettimeofday"; "Sys.time"; "Unix.time" ];
    };
    {
      id = "global-rng";
      block = None;
      doc = "global Random state (use seeded Stats.Rng streams)";
      scope = (fun _ -> true);
      fires = any_token [ "Random." ];
    };
    {
      id = "obj-magic";
      block = None;
      doc = "Obj.magic defeats the type system";
      scope = (fun _ -> true);
      fires = any_token [ "Obj.magic" ];
    };
    {
      id = "poly-compare";
      block = None;
      doc = "polymorphic compare/hash on message or state values";
      scope = (fun _ -> true);
      fires = any_token [ "Stdlib.compare"; "Hashtbl.hash" ];
    };
    {
      id = "direct-print";
      block = None;
      doc =
        "direct printing from lib/ (take a formatter or return data; \
         only scenarios/report.ml owns rendering)";
      scope =
        (fun path ->
          contains_sub ~sub:"lib/" path
          && not (Filename.check_suffix path "scenarios/report.ml"));
      fires =
        any_token
          [
            "Printf.printf";
            "Printf.eprintf";
            "Format.printf";
            "Format.eprintf";
            "print_endline";
            "prerr_endline";
            "print_string";
            "print_newline";
            "Format.std_formatter";
            "Format.err_formatter";
          ];
    };
    {
      id = "stdlib-exit";
      block = None;
      doc =
        "exit from lib/ (raise or return a result; only bin/ may end \
         the process)";
      scope = (fun path -> contains_sub ~sub:"lib/" path);
      fires = exit_usage;
    };
    {
      id = "mutable-global";
      block = None;
      doc = "top-level ref in lib/raft (protocol state belongs in Server.t)";
      scope = (fun path -> contains_sub ~sub:"lib/raft/" path);
      fires = toplevel_ref;
    };
    {
      id = "raw-fabric-send";
      block = None;
      doc =
        "direct Fabric.send from lib/raft (every RPC leaves through \
         Replication.transmit so bulk appends cannot bypass the \
         lane/backpressure policy)";
      scope =
        (fun path ->
          contains_sub ~sub:"lib/raft/" path
          (* the seam itself (.ml, .mli, and their .pp.* forms, where a
             doc-comment survives as an attribute payload) *)
          && not (contains_sub ~sub:"/replication." path));
      (* both spellings: [has_token] rejects a preceding '.', so the
         qualified form needs its own token *)
      fires = any_token [ "Fabric.send"; "Netsim.Fabric.send" ];
    };
    {
      id = "hot-alloc";
      block = Some hot_alloc_hits;
      doc =
        "allocation inside a [@hot] binding (hot-path functions may not \
         call allocating list/array combinators, Printf/Format, or \
         contain lambda literals)";
      scope = (fun path -> contains_sub ~sub:"lib/" path);
      fires = (fun _ -> false);
    };
  ]

type hit = { path : string; lineno : int; rule : rule; line : string }

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let rec source_files path =
  if Sys.is_directory path then
    Sys.readdir path |> Array.to_list |> List.sort String.compare
    |> List.concat_map (fun entry -> source_files (Filename.concat path entry))
  else if Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then [ path ]
  else []

let scan_file ~all_rules path =
  let stripped = strip (read_file path) in
  let lines = String.split_on_char '\n' stripped in
  let hits = ref [] in
  List.iteri
    (fun i line ->
      List.iter
        (fun rule ->
          if (all_rules || rule.scope path) && rule.fires line then
            hits := { path; lineno = i + 1; rule; line } :: !hits)
        rules)
    lines;
  let arr = Array.of_list lines in
  List.iter
    (fun rule ->
      match rule.block with
      | Some f when all_rules || rule.scope path ->
          List.iter
            (fun (i, line) ->
              hits := { path; lineno = i + 1; rule; line } :: !hits)
            (f arr)
      | Some _ | None -> ())
    rules;
  List.rev !hits

let load_allowlist path =
  read_file path |> String.split_on_char '\n' |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.rindex_opt l ':' with
         | Some c ->
             ( String.sub l 0 c,
               String.sub l (c + 1) (String.length l - c - 1) )
         | None ->
             prerr_endline ("lint: malformed allowlist entry: " ^ l);
             exit 2)

let allowed allowlist hit =
  List.exists
    (fun (suffix, rule_id) ->
      rule_id = hit.rule.id && Filename.check_suffix hit.path suffix)
    allowlist

let report hit =
  Printf.eprintf "%s:%d: [%s] %s\n  %s\n" hit.path hit.lineno hit.rule.id
    hit.rule.doc (String.trim hit.line)

let run_scan ~allowlist dirs =
  let hits =
    List.concat_map (fun d -> source_files d) dirs
    |> List.concat_map (scan_file ~all_rules:false)
    |> List.filter (fun h -> not (allowed allowlist h))
  in
  List.iter report hits;
  if hits = [] then print_endline "lint: clean"
  else begin
    Printf.eprintf "lint: %d forbidden pattern(s)\n" (List.length hits);
    exit 1
  end

(* Fixture mode: prove the rules can fire.  Every rule must hit at least
   once in bad*.ml, and good*.ml must be entirely clean (false-positive
   guard). *)
let self_test dir =
  let files = source_files dir in
  if files = [] then begin
    prerr_endline ("lint --self-test: no fixtures under " ^ dir);
    exit 2
  end;
  let bad, good =
    List.partition
      (fun p -> String.length (Filename.basename p) >= 3
                && String.sub (Filename.basename p) 0 3 = "bad")
      files
  in
  let bad_hits = List.concat_map (scan_file ~all_rules:true) bad in
  let good_hits = List.concat_map (scan_file ~all_rules:true) good in
  let failures = ref 0 in
  List.iter
    (fun rule ->
      if not (List.exists (fun h -> h.rule.id = rule.id) bad_hits) then begin
        Printf.eprintf "lint --self-test: rule %s never fired on %s\n" rule.id
          (String.concat ", " bad);
        incr failures
      end)
    rules;
  List.iter
    (fun h ->
      Printf.eprintf "lint --self-test: false positive in clean fixture:\n";
      report h;
      incr failures)
    good_hits;
  if !failures > 0 then exit 1;
  Printf.printf "lint --self-test: all %d rules fire, clean fixture clean\n"
    (List.length rules)

let () =
  match Array.to_list Sys.argv with
  | [ _; "--self-test"; dir ] -> self_test dir
  | _ :: "--allow" :: allow :: dirs when dirs <> [] ->
      run_scan ~allowlist:(load_allowlist allow) dirs
  | _ :: dirs when dirs <> [] && not (List.exists (fun d -> d = "--allow" || d = "--self-test") dirs) ->
      run_scan ~allowlist:[] dirs
  | _ ->
      prerr_endline "usage: lint [--allow FILE] DIR...\n       lint --self-test DIR";
      exit 2
