(* End-to-end exercise of the correctness analyses (the @check alias):

   1. short hostile runs under [Check.Always] — leader pauses and
      crash-restarts across several seeds must violate no invariant;
   2. a 200-seed reconfiguration sweep — random membership changes and
      leader failures mid-campaign, also under [Check.Always] — plus a
      200-seed pipelined-replication sweep: small windows and batches
      over a lossy, duplicating, serializing wire with nodes sleeping
      through write bursts, ending in store convergence — plus a
      200-seed multi-group sweep: several Raft groups on one shared
      fabric behind the shard router, group leaders pausing and
      crashing mid-burst, ending in per-group store convergence;
   3. the determinism sanitizer — pinned shard plans (failover,
      reconfig and multiraft campaigns) must produce bit-identical
      trace digests and metrics snapshots with one worker and with
      many;
   4. a deliberately broken fixture — two leaders sharing a term — that
      the checker is required to catch;
   5. an AST-analyzer smoke: each of the three semantic rules
      (effect-taint, shared-state, protocol-wildcard) must fire on an
      inline bad source and stay silent on a clean one, proving the
      @analysis gate can actually bite.

   `selfcheck --perf BASELINE.json` (the @perf alias) instead replays
   the pinned perf-guard plans from the committed bench report: the
   fig4 and multiraft trace digests must match the baseline bit for
   bit, the hot-path words/op figures (Bench_loops) must stay within a
   small headroom of the recorded ones, and events/sec must stay within
   30% of the recorded figure (the throughput gate is skippable with
   DYNATUNE_PERF_SKIP_THROUGHPUT=1 for hopelessly noisy hosts; the
   digest and allocation gates never are). *)

module Cluster = Harness.Cluster

let fail fmt =
  Format.kasprintf
    (fun m ->
      prerr_endline ("selfcheck: FAILED: " ^ m);
      exit 1)
    fmt

let mini_chaos ~seed =
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms:50. ~jitter:0.05 ()))
  in
  let cluster =
    Cluster.create ~seed ~n:5 ~config:(Raft.Config.dynatune ()) ~conditions
      ~check:Check.Always ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> fail "no initial leader (seed %Ld)" seed);
  Cluster.run_for cluster (Des.Time.sec 10);
  for round = 1 to 3 do
    (match Cluster.leader cluster with
    | Some l when round mod 2 = 0 ->
        Raft.Node.crash l;
        Cluster.run_for cluster (Des.Time.sec 4);
        Raft.Node.restart l
    | Some l ->
        Raft.Node.pause l;
        Cluster.run_for cluster (Des.Time.sec 4);
        Raft.Node.resume l
    | None -> ());
    Cluster.run_for cluster (Des.Time.sec 4)
  done;
  Cluster.check_now cluster;
  match Cluster.checker cluster with
  | Some c ->
      if Check.checks_run c = 0 then
        fail "checker installed but never ran (seed %Ld)" seed
  | None -> fail "checker missing despite Check.Always"

(* Random single-server add/remove (plus leader pauses) mid-campaign,
   with every safety and reconfiguration invariant checked after every
   delivered event.  One short hostile run per seed. *)
let reconfig_chaos ~seed =
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms:20. ~jitter:0.05 ()))
  in
  let cluster =
    Cluster.create ~seed ~n:3 ~config:(Raft.Config.dynatune ()) ~conditions
      ~check:Check.Always ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> fail "reconfig chaos: no initial leader (seed %Ld)" seed);
  Cluster.run_for cluster (Des.Time.sec 2);
  let rng =
    Stats.Rng.split (Des.Engine.rng (Cluster.engine cluster)) "selfcheck-chaos"
  in
  for _op = 1 to 4 do
    (match Stats.Rng.int rng 4 with
    | 0 ->
        (* Grow: spawn a joiner and ask the leader to adopt it. *)
        ignore (Cluster.add_server cluster : Netsim.Node_id.t * _)
    | 1 -> (
        (* Shrink: remove a random member (the leader included — that
           exercises the automatic hand-off; an invalid pick is refused
           by the leader, which is also worth hitting). *)
        let ids = Cluster.node_ids cluster in
        let victim = List.nth ids (Stats.Rng.int rng (List.length ids)) in
        match Cluster.remove_server cluster victim with
        | `Ok _ ->
            if Cluster.await_config_quiet cluster ~timeout:(Des.Time.sec 20)
            then begin
              match Cluster.leader cluster with
              | Some l
                when not
                       (List.exists (Netsim.Node_id.equal victim)
                          (Raft.Server.members (Raft.Node.server l))) ->
                  Cluster.retire cluster victim
              | Some _ | None -> ()
            end
        | `Not_leader | `Pending | `Invalid _ -> ())
    | _ -> (
        (* Unplanned leader failure in the middle of it all. *)
        match Cluster.leader cluster with
        | Some l ->
            Raft.Node.pause l;
            Cluster.run_for cluster (Des.Time.sec 3);
            if List.exists
                 (Netsim.Node_id.equal (Raft.Node.id l))
                 (Cluster.node_ids cluster)
            then Raft.Node.resume l
        | None -> ()));
    Cluster.run_for cluster (Des.Time.sec 3)
  done;
  ignore (Cluster.await_config_quiet cluster ~timeout:(Des.Time.sec 30) : bool);
  Cluster.check_now cluster;
  match Cluster.checker cluster with
  | Some c ->
      if Check.checks_run c = 0 then
        fail "reconfig chaos: checker never ran (seed %Ld)" seed
  | None -> fail "reconfig chaos: checker missing despite Check.Always"

(* Replication engine v2 under fire: a small pipelining window and tiny
   batches over a lossy, duplicating, serializing wire, with followers
   sleeping through bursts of writes.  Every delivered event runs the
   full invariant suite ([Check.Always]); at the end the replicas must
   also have converged on one store — the stale-nack rule and the
   stalled-window nudge both sit on this path. *)
let pipelined_chaos ~seed =
  let config =
    Raft.Config.with_replication ~max_inflight_appends:4 ~append_backpressure:8
      ~max_entries_per_append:8
      (Raft.Config.dynatune ())
  in
  let conditions =
    Netsim.Conditions.(
      constant (profile ~rtt_ms:20. ~jitter:0.3 ~loss:0.08 ~duplicate:0.04 ()))
  in
  let cluster =
    Cluster.create ~seed ~n:5 ~config ~conditions ~check:Check.Always ()
  in
  Netsim.Fabric.set_uniform_serialization (Cluster.fabric cluster)
    (Des.Time.us 50);
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> fail "pipelined chaos: no initial leader (seed %Ld)" seed);
  Cluster.run_for cluster (Des.Time.sec 2);
  let rng =
    Stats.Rng.split (Des.Engine.rng (Cluster.engine cluster)) "selfcheck-pipe"
  in
  let target = Cluster.submit_target cluster in
  let seq = ref 0 in
  for _round = 1 to 2 do
    (* A follower (or, one time in four, the leader) sleeps through the
       middle of the burst. *)
    let ids = Cluster.node_ids cluster in
    let victim = List.nth ids (Stats.Rng.int rng (List.length ids)) in
    for i = 1 to 15 do
      if i = 5 then Raft.Node.pause (Cluster.node cluster victim);
      if i = 12 then Raft.Node.resume (Cluster.node cluster victim);
      incr seq;
      ignore
        (target
           ~payload:
             (Kvsm.Command.to_payload
                (Kvsm.Command.Put
                   { key = Printf.sprintf "pipe:%d" !seq; value = "v" }))
           ~client_id:7 ~seq:!seq
           ~on_result:(fun ~committed:_ -> ()));
      Cluster.run_for cluster (Des.Time.ms 20)
    done;
    Cluster.run_for cluster (Des.Time.sec 3)
  done;
  Cluster.run_for cluster (Des.Time.sec 8);
  Cluster.check_now cluster;
  (match Cluster.checker cluster with
  | Some c ->
      if Check.checks_run c = 0 then
        fail "pipelined chaos: checker never ran (seed %Ld)" seed
  | None -> fail "pipelined chaos: checker missing despite Check.Always");
  match
    List.map
      (fun id -> Kvsm.Store.state_digest (Cluster.store cluster id))
      (Cluster.node_ids cluster)
  with
  | [] -> fail "pipelined chaos: no stores (seed %Ld)" seed
  | d :: rest ->
      if not (List.for_all (String.equal d) rest) then
        fail "pipelined chaos: replicas diverged after quiet period (seed %Ld)"
          seed

(* Several consensus groups on one shared fabric/clock behind the shard
   router, every delivered event running the full invariant suite in
   every group's checker.  Random group leaders sleep or crash through
   write bursts; after the quiet period each group's replicas must
   agree on that group's store — per-group convergence is also the
   cross-group isolation witness (a misrouted or cross-applied entry
   would diverge some group's digest). *)
let multiraft_chaos ~seed =
  let module Gm = Multiraft.Group_manager in
  let module Router = Multiraft.Router in
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms:20. ~jitter:0.1 ()))
  in
  let m =
    Gm.create ~seed ~conditions ~check:Check.Always ~groups:3 ~replicas:3
      ~config:(Raft.Config.dynatune ())
      ()
  in
  Gm.start m;
  if not (Gm.await_leaders m ~timeout:(Des.Time.sec 30)) then
    fail "multiraft chaos: initial elections incomplete (seed %Ld)" seed;
  Gm.run_for m (Des.Time.sec 2);
  let router = Router.create m in
  let rng = Stats.Rng.split (Des.Engine.rng (Gm.engine m)) "selfcheck-mr" in
  let seq = ref 0 in
  for _round = 1 to 2 do
    (* A random group's leader drops out mid-burst; one time in two it
       crashes (losing volatile state) rather than just sleeping. *)
    let g = Stats.Rng.int rng (Gm.group_count m) in
    let victim = Harness.Cluster.leader (Gm.group m g) in
    let crash = Stats.Rng.int rng 2 = 0 in
    for i = 1 to 12 do
      (match victim with
      | Some l when i = 4 ->
          if crash then Raft.Node.crash l else Raft.Node.pause l
      | Some l when i = 10 ->
          if crash then Raft.Node.restart l else Raft.Node.resume l
      | Some _ | None -> ());
      incr seq;
      ignore
        (Router.dispatch router
           (Router.Write { key = Printf.sprintf "mr:%d" !seq; value = "v" })
           ~client_id:9 ~seq:!seq
           ~on_result:(fun (_ : Router.response) -> ())
          : Kvsm.Client.submit_result);
      Gm.run_for m (Des.Time.ms 50)
    done;
    Gm.run_for m (Des.Time.sec 3)
  done;
  Gm.run_for m (Des.Time.sec 5);
  Gm.check_now m;
  Gm.iter_groups m (fun g cluster ->
      (match Cluster.checker cluster with
      | Some c ->
          if Check.checks_run c = 0 then
            fail "multiraft chaos: group %d checker never ran (seed %Ld)" g
              seed
      | None ->
          fail "multiraft chaos: group %d checker missing despite \
                Check.Always (seed %Ld)"
            g seed);
      match
        List.map
          (fun id -> Kvsm.Store.state_digest (Cluster.store cluster id))
          (Cluster.node_ids cluster)
      with
      | [] -> fail "multiraft chaos: group %d has no stores (seed %Ld)" g seed
      | d :: rest ->
          if not (List.for_all (String.equal d) rest) then
            fail
              "multiraft chaos: group %d replicas diverged after quiet \
               period (seed %Ld)"
              g seed)

let digest_determinism () =
  let run jobs =
    Scenarios.Fig4.run ~failures:4 ~jobs ~shards:2 ~check:Check.Sample
      ~config:(Raft.Config.dynatune ()) ()
  in
  let a = run 1 and b = run 2 in
  if not (Int64.equal a.Scenarios.Fig4.digest b.Scenarios.Fig4.digest) then
    fail "fig4 digests differ: jobs=1 %Lx vs jobs=2 %Lx"
      a.Scenarios.Fig4.digest b.Scenarios.Fig4.digest

(* The reconfig scenario on a pinned 2-shard plan must be a function of
   the seed alone: same trace digest and byte-identical merged metrics
   snapshot whether one worker runs both shards or two run one each. *)
let reconfig_determinism () =
  let run jobs =
    Scenarios.Reconfig.run ~rounds:2 ~jobs ~shards:2 ~check:Check.Sample
      ~instrument:true
      ~config:(Raft.Config.dynatune ())
      ()
  in
  let a = run 1 and b = run 2 in
  if not (Int64.equal a.Scenarios.Reconfig.digest b.Scenarios.Reconfig.digest)
  then
    fail "reconfig digests differ: jobs=1 %Lx vs jobs=2 %Lx"
      a.Scenarios.Reconfig.digest b.Scenarios.Reconfig.digest;
  let ja = Telemetry.Metrics.to_json a.Scenarios.Reconfig.metrics in
  let jb = Telemetry.Metrics.to_json b.Scenarios.Reconfig.metrics in
  if not (String.equal ja jb) then
    fail "reconfig metrics snapshots differ between jobs=1 and jobs=2"

(* The multiraft sweep on a pinned two-cell plan: same merged trace
   digest and byte-identical merged (group-prefixed) metrics snapshot
   whether one worker runs both cells or two run one each. *)
let multiraft_determinism () =
  let run jobs =
    Scenarios.Multiraft.sweep ~seed:7L ~group_counts:[ 2; 3 ] ~replicas:3
      ~rates:[ 300.; 600. ] ~hold:(Des.Time.sec 1) ~check:Check.Sample
      ~instrument:true ~jobs ()
  in
  let a = run 1 and b = run 2 in
  if
    not (Int64.equal a.Scenarios.Multiraft.digest b.Scenarios.Multiraft.digest)
  then
    fail "multiraft digests differ: jobs=1 %Lx vs jobs=2 %Lx"
      a.Scenarios.Multiraft.digest b.Scenarios.Multiraft.digest;
  let ja = Telemetry.Metrics.to_json a.Scenarios.Multiraft.metrics in
  let jb = Telemetry.Metrics.to_json b.Scenarios.Multiraft.metrics in
  if not (String.equal ja jb) then
    fail "multiraft metrics snapshots differ between jobs=1 and jobs=2"

let broken_fixture () =
  let fake id : Check.node_view =
    {
      Check.id;
      alive = (fun () -> true);
      incarnation = (fun () -> 0);
      role = (fun () -> Raft.Types.Leader);
      term = (fun () -> 3);
      commit_index = (fun () -> 0);
      voted_for = (fun () -> None);
      last_index = (fun () -> 0);
      snapshot_index = (fun () -> 0);
      term_at = (fun _ -> None);
      entry_at = (fun _ -> None);
      voters = (fun () -> Netsim.Node_id.range 2);
      learners = (fun () -> []);
      votes = (fun () -> []);
    }
  in
  let checker =
    Check.create ~mode:Check.Always
      ~nodes:(List.map fake (Netsim.Node_id.range 2))
      ()
  in
  match Check.check_now checker with
  | () -> fail "checker missed two concurrent leaders sharing a term"
  | exception Check.Violation v ->
      if v.Check.invariant <> "election-safety" then
        fail "wrong invariant caught: %s" v.Check.invariant

(* The AST determinism analyzer (lib/analysis, the @analysis alias) has
   its own fixtures and unit tests; this smoke only proves the library
   wired into this binary still detects each semantic rule and reports
   nothing on clean input. *)
let analyzer_smoke () =
  let analyze path content = Analysis.analyze [ { Analysis.path; content } ] in
  let expect rule path content =
    let fs = analyze path content in
    if
      not
        (List.exists (fun (f : Analysis.Finding.t) -> f.rule = rule) fs)
    then fail "analyzer smoke: rule %s did not fire" rule
  in
  expect "effect-taint" "lib/raft/smoke.ml" "let tick () = Unix.gettimeofday ()";
  expect "shared-state" "lib/raft/smoke.ml"
    "let t = Hashtbl.create 4\n\
     let work x = Hashtbl.length t + x\n\
     let run p xs = Pool.map p work xs";
  expect "protocol-wildcard" "lib/raft/smoke.ml"
    "type m = A | B [@@protocol]\nlet f = function A -> 0 | _ -> 1";
  match analyze "lib/raft/smoke.ml" "let pure x = x + 1" with
  | [] -> ()
  | f :: _ ->
      fail "analyzer smoke: clean source flagged: %s"
        (Analysis.Finding.render f)

(* --perf mode ---------------------------------------------------------- *)

(* The baseline report is flat hand-written JSON (bench/main.ml), so a
   string scan is enough to pull two fields out of its perf_guard
   section without a JSON dependency. *)
let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub s i m) sub then Some (i + m)
    else go (i + 1)
  in
  go from

let guard_field json key =
  let start =
    match find_sub json "\"perf_guard\"" 0 with
    | Some i -> i
    | None -> fail "perf baseline has no \"perf_guard\" section"
  in
  let i =
    match find_sub json (Printf.sprintf "%S:" key) start with
    | Some i -> i
    | None -> fail "perf baseline guard has no %S field" key
  in
  let n = String.length json in
  let rec skip i =
    if i < n && (json.[i] = ' ' || json.[i] = '"') then skip (i + 1) else i
  in
  let a = skip i in
  let rec stop i =
    if i >= n then i
    else match json.[i] with '"' | ',' | '}' | ' ' | '\n' -> i | _ -> stop (i + 1)
  in
  String.sub json a (stop a - a)

(* The forensics disabled-path gate: a steady-state cluster event loop
   (the follower heartbeat path end to end) must allocate identically
   with no ring at all and with a present-but-disabled ring — the
   [fo_on] guards in [Raft.Node] keep the disabled path allocation-free.
   A DES run's allocation is deterministic for a pinned seed, so the
   comparison is exact: one extra word per event would fail it. *)
let forensics_off_allocation_gate () =
  let minor_words forensics =
    let cluster =
      Harness.Cluster.create ~seed:5L ~n:3
        ~config:(Raft.Config.dynatune ())
        ?forensics ()
    in
    Cluster.start cluster;
    (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
    | Some _ -> ()
    | None -> fail "forensics gate: steady-state cluster elected no leader");
    Cluster.run_for cluster (Des.Time.sec 10);
    let w0 = Gc.minor_words () in
    Cluster.run_for cluster (Des.Time.sec 120);
    Gc.minor_words () -. w0
  in
  (* One throwaway run first: lazy state (format strings, registries)
     initialized on the first pass would otherwise bias the baseline. *)
  ignore (minor_words None : float);
  let base = minor_words None in
  let off = minor_words (Some (Telemetry.Forensics.create ~enabled:false ())) in
  if base <> off then
    fail
      "forensics disabled path allocates: %.0f minor words with no ring vs \
       %.0f with a disabled ring over the same pinned run"
      base off

(* Minor words per processed DES event, steady-state 3-node dynatune
   cluster: the same pinned plan as [forensics_off_allocation_gate],
   normalized by the engine's event count. *)
let cluster_minor_words_per_event () =
  let cluster =
    Harness.Cluster.create ~seed:5L ~n:3 ~config:(Raft.Config.dynatune ()) ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> fail "words/event gate: steady-state cluster elected no leader");
  Cluster.run_for cluster (Des.Time.sec 10);
  let w0 = Gc.minor_words () in
  let e0 = Des.Engine.global_processed () in
  Cluster.run_for cluster (Des.Time.sec 120);
  let e1 = Des.Engine.global_processed () in
  (Gc.minor_words () -. w0) /. float_of_int (e1 - e0)

let run_perf ~baseline =
  let json =
    match In_channel.with_open_text baseline In_channel.input_all with
    | s -> s
    | exception Sys_error msg -> fail "cannot read perf baseline: %s" msg
  in
  let base_digest = guard_field json "digest" in
  let base_eps =
    match float_of_string_opt (guard_field json "events_per_s") with
    | Some f when f > 0. -> f
    | Some _ | None -> fail "perf baseline has no usable events_per_s"
  in
  let plan () =
    Scenarios.Fig4.run ~seed:42L ~failures:400 ~shards:4 ~jobs:1
      ~config:(Raft.Config.dynatune ()) ()
  in
  (* Digests first (and always): any drift is a determinism regression,
     whatever the host's load. *)
  let digest = Printf.sprintf "%Lx" (plan ()).Scenarios.Fig4.digest in
  if not (String.equal digest base_digest) then
    fail "perf guard digest drift: got %s, baseline %s — scheduling order \
          changed"
      digest base_digest;
  let base_mr_digest = guard_field json "multiraft_digest" in
  let mr =
    Scenarios.Multiraft.sweep ~seed:11L ~group_counts:[ 4 ] ~replicas:3
      ~rates:[ 500.; 1000. ] ~jobs:1 ()
  in
  let mr_digest = Printf.sprintf "%Lx" mr.Scenarios.Multiraft.digest in
  if not (String.equal mr_digest base_mr_digest) then
    fail
      "perf guard multiraft digest drift: got %s, baseline %s — shared-fabric \
       scheduling order changed"
      mr_digest base_mr_digest;
  (* Allocation ratchets, load-independent: words/op of the hot-path
     loops is a constant of the code path (Bench_loops), so anything
     beyond a small headroom over the committed baseline is a real
     allocation regression. *)
  List.iter
    (fun (key, make) ->
      let base =
        match float_of_string_opt (guard_field json key) with
        | Some f when f >= 0. -> f
        | Some _ | None -> fail "perf baseline has no usable %s" key
      in
      let now = Bench_loops.words_per_op (make ()) in
      if now > (base *. 1.15) +. 8. then
        fail
          "perf guard allocation regression: %s = %.1f words/op vs baseline \
           %.1f (allowed %.1f)"
          key now base
          ((base *. 1.15) +. 8.))
    [
      ("hb_words", Bench_loops.make_heartbeat_loop);
      ("rebatch_words", Bench_loops.make_leader_append_loop);
      ("follower_append_words", Bench_loops.make_follower_append_loop);
      ("try_append_words", Bench_loops.make_try_append_loop);
      ("vote_round_words", Bench_loops.make_vote_round_loop);
      ("snapshot_install_words", Bench_loops.make_snapshot_install_loop);
    ];
  (* Minor words per DES event of a steady-state cluster: the end-to-end
     allocation figure the pooling work moves (the loop ratchets above
     only cover the server in isolation).  A pinned-seed DES run's
     allocation is deterministic, so a tight 10% margin holds. *)
  (match float_of_string_opt (guard_field json "words_per_event") with
  | Some base when base > 0. ->
      let now = cluster_minor_words_per_event () in
      if now > (base *. 1.10) +. 1. then
        fail
          "perf guard allocation regression: %.2f minor words/event in the \
           steady-state cluster vs baseline %.2f (allowed %.2f)"
          now base
          ((base *. 1.10) +. 1.)
  | Some _ | None -> fail "perf baseline has no usable words_per_event");
  (* Allocation identity of the forensics-off path, also load-independent. *)
  forensics_off_allocation_gate ();
  (* Throughput second, best of three: a single reading on a busy host
     swings far more than any plausible regression. *)
  let best = ref 0. in
  for _ = 1 to 3 do
    let t0 = Unix.gettimeofday () in
    let e0 = Des.Engine.global_processed () in
    ignore (plan () : Scenarios.Fig4.result);
    let wall = Unix.gettimeofday () -. t0 in
    let events = Des.Engine.global_processed () - e0 in
    if wall > 0. then best := Stdlib.max !best (float_of_int events /. wall)
  done;
  let floor_eps = 0.7 *. base_eps in
  let skipped = Sys.getenv_opt "DYNATUNE_PERF_SKIP_THROUGHPUT" <> None in
  if (not skipped) && !best < floor_eps then
    fail
      "perf guard throughput regression: best of 3 = %.0f events/s, >30%% \
       below baseline %.0f (floor %.0f); set DYNATUNE_PERF_SKIP_THROUGHPUT=1 \
       only if this host is known-noisy"
      !best base_eps floor_eps;
  Printf.printf
    "selfcheck --perf: digests %s and %s (multiraft) match baseline; \
     allocation ratchets hold; %.0f events/s vs baseline %.0f%s\n"
    digest mr_digest !best base_eps
    (if skipped then " (throughput check skipped via env)" else "")

let () =
  match Array.to_list Sys.argv with
  | _ :: "--perf" :: rest ->
      let baseline =
        match rest with
        | [] -> "BENCH_10.json"
        | [ path ] -> path
        | _ ->
            prerr_endline "usage: selfcheck [--perf [BASELINE.json]]";
            exit 2
      in
      run_perf ~baseline
  | [ _ ] ->
      List.iter (fun seed -> mini_chaos ~seed) [ 11L; 12L; 13L ];
      for i = 0 to 199 do
        reconfig_chaos ~seed:(Int64.of_int (1000 + i))
      done;
      for i = 0 to 199 do
        pipelined_chaos ~seed:(Int64.of_int (2000 + i))
      done;
      for i = 0 to 199 do
        multiraft_chaos ~seed:(Int64.of_int (3000 + i))
      done;
      broken_fixture ();
      analyzer_smoke ();
      digest_determinism ();
      reconfig_determinism ();
      multiraft_determinism ();
      print_endline
        "selfcheck: invariants hold, digests deterministic, broken fixture \
         caught, analyzer rules fire"
  | _ ->
      prerr_endline "usage: selfcheck [--perf [BASELINE.json]]";
      exit 2
