(* End-to-end exercise of the correctness analyses (the @check alias):

   1. short hostile runs under [Check.Always] — leader pauses and
      crash-restarts across several seeds must violate no invariant;
   2. the determinism sanitizer — a pinned shard plan must produce
      bit-identical trace digests with one worker and with many;
   3. a deliberately broken fixture — two leaders sharing a term — that
      the checker is required to catch. *)

module Cluster = Harness.Cluster

let fail fmt =
  Format.kasprintf
    (fun m ->
      prerr_endline ("selfcheck: FAILED: " ^ m);
      exit 1)
    fmt

let mini_chaos ~seed =
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms:50. ~jitter:0.05 ()))
  in
  let cluster =
    Cluster.create ~seed ~n:5 ~config:(Raft.Config.dynatune ()) ~conditions
      ~check:Check.Always ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> fail "no initial leader (seed %Ld)" seed);
  Cluster.run_for cluster (Des.Time.sec 10);
  for round = 1 to 3 do
    (match Cluster.leader cluster with
    | Some l when round mod 2 = 0 ->
        Raft.Node.crash l;
        Cluster.run_for cluster (Des.Time.sec 4);
        Raft.Node.restart l
    | Some l ->
        Raft.Node.pause l;
        Cluster.run_for cluster (Des.Time.sec 4);
        Raft.Node.resume l
    | None -> ());
    Cluster.run_for cluster (Des.Time.sec 4)
  done;
  Cluster.check_now cluster;
  match Cluster.checker cluster with
  | Some c ->
      if Check.checks_run c = 0 then
        fail "checker installed but never ran (seed %Ld)" seed
  | None -> fail "checker missing despite Check.Always"

let digest_determinism () =
  let run jobs =
    Scenarios.Fig4.run ~failures:4 ~jobs ~shards:2 ~check:Check.Sample
      ~config:(Raft.Config.dynatune ()) ()
  in
  let a = run 1 and b = run 2 in
  if not (Int64.equal a.Scenarios.Fig4.digest b.Scenarios.Fig4.digest) then
    fail "fig4 digests differ: jobs=1 %Lx vs jobs=2 %Lx"
      a.Scenarios.Fig4.digest b.Scenarios.Fig4.digest

let broken_fixture () =
  let fake id : Check.node_view =
    {
      Check.id;
      alive = (fun () -> true);
      incarnation = (fun () -> 0);
      role = (fun () -> Raft.Types.Leader);
      term = (fun () -> 3);
      commit_index = (fun () -> 0);
      voted_for = (fun () -> None);
      last_index = (fun () -> 0);
      snapshot_index = (fun () -> 0);
      term_at = (fun _ -> None);
      entry_at = (fun _ -> None);
    }
  in
  let checker =
    Check.create ~mode:Check.Always
      ~nodes:(List.map fake (Netsim.Node_id.range 2))
      ()
  in
  match Check.check_now checker with
  | () -> fail "checker missed two concurrent leaders sharing a term"
  | exception Check.Violation v ->
      if v.Check.invariant <> "election-safety" then
        fail "wrong invariant caught: %s" v.Check.invariant

let () =
  List.iter (fun seed -> mini_chaos ~seed) [ 11L; 12L; 13L ];
  broken_fixture ();
  digest_determinism ();
  print_endline
    "selfcheck: invariants hold, digests deterministic, broken fixture caught"
