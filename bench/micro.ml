(* Bechamel microbenchmarks of the hot paths: one Test.make per core
   operation.  These are the per-event costs that bound how large a
   simulated campaign the figure harness can run. *)

open Bechamel
open Toolkit

let test_tuner_observe =
  Test.make ~name:"tuner.observe_heartbeat"
    (Staged.stage
       (let tuner = Dynatune.Tuner.create Dynatune.Config.default in
        let i = ref 0 in
        fun () ->
          incr i;
          Dynatune.Tuner.observe_heartbeat tuner ~hb_id:!i
            ~rtt:(Some (Des.Time.ms 100))))

let test_tuner_retune =
  Test.make ~name:"tuner.election_timeout+interval"
    (Staged.stage
       (let tuner = Dynatune.Tuner.create Dynatune.Config.default in
        for i = 0 to 99 do
          Dynatune.Tuner.observe_heartbeat tuner ~hb_id:i
            ~rtt:(Some (Des.Time.ms 100))
        done;
        fun () ->
          ignore (Dynatune.Tuner.election_timeout tuner : int);
          ignore (Dynatune.Tuner.heartbeat_interval tuner : int)))

let test_loss_observe =
  Test.make ~name:"loss_estimator.observe"
    (Staged.stage
       (let l = Dynatune.Loss_estimator.create ~min_size:20 ~max_size:100 in
        let i = ref 0 in
        fun () ->
          incr i;
          ignore (Dynatune.Loss_estimator.observe l !i)))

let test_window_push =
  Test.make ~name:"window.push+std"
    (Staged.stage
       (let w = Stats.Window.create ~capacity:100 in
        let x = ref 0. in
        fun () ->
          x := !x +. 1.;
          Stats.Window.push w !x;
          ignore (Stats.Window.std w : float)))

let test_engine_schedule =
  Test.make ~name:"engine.schedule+run"
    (Staged.stage
       (let e = Des.Engine.create () in
        fun () ->
          ignore
            (Des.Engine.schedule_after e (Des.Time.us 1) (fun () -> ())
              : Des.Engine.handle);
          ignore (Des.Engine.step e : bool)))

let test_heap_push_pop =
  Test.make ~name:"heap.push+pop (polymorphic cmp)"
    (Staged.stage
       (let h = Des.Heap.create ~cmp:compare in
        List.iter (Des.Heap.push h) [ 5; 3; 9; 1; 7 ];
        let i = ref 0 in
        fun () ->
          incr i;
          Des.Heap.push h (!i mod 1000);
          ignore (Des.Heap.pop h : int option)))

let test_heap_push_pop_int =
  Test.make ~name:"heap.push+pop (Int.compare)"
    (Staged.stage
       (let h = Des.Heap.create ~cmp:Int.compare in
        List.iter (Des.Heap.push h) [ 5; 3; 9; 1; 7 ];
        let i = ref 0 in
        fun () ->
          incr i;
          Des.Heap.push h (!i mod 1000);
          ignore (Des.Heap.pop h : int option)))

let make_heartbeat_loop () =
  let config = Raft.Config.dynatune () in
  let rng = Stats.Rng.create ~seed:1L () in
  let follower =
    Raft.Server.create ~id:(Netsim.Node_id.of_int 0)
      ~peers:(List.tl (Netsim.Node_id.range 5))
      ~config ~rng ()
  in
  ignore (Raft.Server.start follower);
  let i = ref 0 in
  fun () ->
    incr i;
    let meta =
      {
        Dynatune.Leader_path.hb_id = !i;
        sent_at = Des.Time.ms !i;
        measured_rtt = Some (Des.Time.ms 100);
      }
    in
    ignore
      (Raft.Server.handle follower ~now:(Des.Time.ms (!i + 50))
         (Raft.Server.Message
            {
              from = Netsim.Node_id.of_int 1;
              msg = Raft.Rpc.Heartbeat { term = 1; commit = 0; meta };
            })
        : Raft.Server.action list)

let test_server_heartbeat =
  Test.make ~name:"server.handle heartbeat (dynatune)"
    (Staged.stage (make_heartbeat_loop ()))

let test_codec =
  Test.make ~name:"kv command codec roundtrip"
    (Staged.stage (fun () ->
         let payload =
           Kvsm.Command.to_payload
             (Kvsm.Command.Put { key = "benchmark-key"; value = "value-42" })
         in
         ignore (Kvsm.Command.of_payload payload)))

let tests =
  [
    test_tuner_observe;
    test_tuner_retune;
    test_loss_observe;
    test_window_push;
    test_engine_schedule;
    test_heap_push_pop;
    test_heap_push_pop_int;
    test_server_heartbeat;
    test_codec;
  ]


let run ppf =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  Format.fprintf ppf "  %-40s %14s %8s@." "operation" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> nan
          in
          Format.fprintf ppf "  %-40s %11.1f ns %8.4f@." name time_ns r2)
        analyzed)
    tests
