(* Bechamel microbenchmarks of the hot paths: one Test.make per core
   operation.  These are the per-event costs that bound how large a
   simulated campaign the figure harness can run. *)

open Bechamel
open Toolkit

let test_tuner_observe =
  Test.make ~name:"tuner.observe_heartbeat"
    (Staged.stage
       (let tuner = Dynatune.Tuner.create Dynatune.Config.default in
        let i = ref 0 in
        fun () ->
          incr i;
          Dynatune.Tuner.observe_heartbeat tuner ~hb_id:!i
            ~rtt:(Some (Des.Time.ms 100))))

let test_tuner_retune =
  Test.make ~name:"tuner.election_timeout+interval"
    (Staged.stage
       (let tuner = Dynatune.Tuner.create Dynatune.Config.default in
        for i = 0 to 99 do
          Dynatune.Tuner.observe_heartbeat tuner ~hb_id:i
            ~rtt:(Some (Des.Time.ms 100))
        done;
        fun () ->
          ignore (Dynatune.Tuner.election_timeout tuner : int);
          ignore (Dynatune.Tuner.heartbeat_interval tuner : int)))

let test_loss_observe =
  Test.make ~name:"loss_estimator.observe"
    (Staged.stage
       (let l = Dynatune.Loss_estimator.create ~min_size:20 ~max_size:100 in
        let i = ref 0 in
        fun () ->
          incr i;
          ignore (Dynatune.Loss_estimator.observe l !i)))

let test_window_push =
  Test.make ~name:"window.push+std"
    (Staged.stage
       (let w = Stats.Window.create ~capacity:100 in
        let x = ref 0. in
        fun () ->
          x := !x +. 1.;
          Stats.Window.push w !x;
          ignore (Stats.Window.std w : float)))

let test_engine_schedule =
  Test.make ~name:"engine.schedule+run"
    (Staged.stage
       (let e = Des.Engine.create () in
        fun () ->
          ignore
            (Des.Engine.schedule_after e (Des.Time.us 1) (fun () -> ())
              : Des.Engine.handle);
          ignore (Des.Engine.step e : bool)))

let test_heap_push_pop =
  Test.make ~name:"heap.push+pop (polymorphic cmp)"
    (Staged.stage
       (let h = Des.Heap.create ~cmp:compare in
        List.iter (Des.Heap.push h) [ 5; 3; 9; 1; 7 ];
        let i = ref 0 in
        fun () ->
          incr i;
          Des.Heap.push h (!i mod 1000);
          ignore (Des.Heap.pop h : int option)))

let test_heap_push_pop_int =
  Test.make ~name:"heap.push+pop (Int.compare)"
    (Staged.stage
       (let h = Des.Heap.create ~cmp:Int.compare in
        List.iter (Des.Heap.push h) [ 5; 3; 9; 1; 7 ];
        let i = ref 0 in
        fun () ->
          incr i;
          Des.Heap.push h (!i mod 1000);
          ignore (Des.Heap.pop h : int option)))

let test_event_heap_push_pop =
  Test.make ~name:"event_heap.schedule+pop (specialized)"
    (Staged.stage
       (let h = Des.Event_heap.create () in
        let seq = ref 0 in
        for _ = 1 to 5 do
          incr seq;
          ignore
            (Des.Event_heap.schedule h ~at:(!seq * 7919) ~seq:!seq (fun () -> ())
              : Des.Event_heap.event)
        done;
        fun () ->
          incr seq;
          ignore
            (Des.Event_heap.schedule h
               ~at:((!seq * 7919) mod 1000)
               ~seq:!seq
               (fun () -> ())
              : Des.Event_heap.event);
          ignore (Des.Event_heap.pop_live h : Des.Event_heap.event option)))

let test_engine_cancel_churn =
  (* The heartbeat-timer pattern: schedule a timeout far out, cancel it,
     re-arm, fire a near event.  Exercises lazy discard plus the event
     heap's cancelled-entry compaction. *)
  Test.make ~name:"engine.schedule+cancel+step churn"
    (Staged.stage
       (let e = Des.Engine.create () in
        fun () ->
          let h =
            Des.Engine.schedule_after e (Des.Time.ms 500) (fun () -> ())
          in
          Des.Engine.cancel h;
          ignore
            (Des.Engine.schedule_after e (Des.Time.us 1) (fun () -> ())
              : Des.Engine.handle);
          ignore (Des.Engine.step e : bool)))

let test_wheel_churn =
  (* Same shape as the heap churn test above, but through
     [schedule_timer_after]: the far timer parks in the timing wheel and
     its cancellation is an in-place drop — no tombstone, no sift, no
     compaction debt. *)
  Test.make ~name:"wheel.schedule+cancel+step churn"
    (Staged.stage
       (let e = Des.Engine.create () in
        fun () ->
          let h =
            Des.Engine.schedule_timer_after e (Des.Time.ms 500) (fun () -> ())
          in
          Des.Engine.cancel h;
          ignore
            (Des.Engine.schedule_after e (Des.Time.us 1) (fun () -> ())
              : Des.Engine.handle);
          ignore (Des.Engine.step e : bool)))

let test_wheel_fire =
  (* The non-churn half: a near timer that parks in the wheel, is
     flushed into the heap at its slot boundary, and actually fires. *)
  Test.make ~name:"wheel.schedule+fire"
    (Staged.stage
       (let e = Des.Engine.create () in
        fun () ->
          ignore
            (Des.Engine.schedule_timer_after e (Des.Time.ms 2) (fun () -> ())
              : Des.Engine.handle);
          ignore (Des.Engine.step e : bool)))

(* The hot-path loops live in Bench_loops so `selfcheck --perf` can gate
   words/op against the exact code benchmarked here. *)
let bench_log = Bench_loops.bench_log

let test_log_slice_array =
  Test.make ~name:"log.slice 64 (array)"
    (Staged.stage
       (let log = bench_log () in
        let i = ref 0 in
        fun () ->
          i := (!i mod 900) + 1;
          ignore (Raft.Log.slice log ~from:!i ~max:64 : Raft.Log.entry array)))

let test_log_slice_list =
  (* The seed's slice path built a list via [List.init] + per-entry
     [nth]-style lookups; keep it here as the comparison baseline. *)
  Test.make ~name:"log.slice 64 (old list path)"
    (Staged.stage
       (let log = bench_log () in
        let i = ref 0 in
        fun () ->
          i := (!i mod 900) + 1;
          ignore
            (List.init 64 (fun k ->
                 match Raft.Log.entry_at log (!i + k) with
                 | Some e -> e
                 | None -> assert false)
              : Raft.Log.entry list)))

let test_server_heartbeat =
  Test.make ~name:"server.handle heartbeat (dynatune)"
    (Staged.stage (Bench_loops.make_heartbeat_loop ()))

let test_leader_append =
  Test.make ~name:"server.handle append nack+rebatch 64"
    (Staged.stage (Bench_loops.make_leader_append_loop ()))

let test_follower_append =
  Test.make ~name:"server.handle duplicate append 64"
    (Staged.stage (Bench_loops.make_follower_append_loop ()))

let test_try_append =
  Test.make ~name:"log.try_append duplicate 64"
    (Staged.stage (Bench_loops.make_try_append_loop ()))

let test_vote_round =
  Test.make ~name:"server.handle pre-vote round"
    (Staged.stage (Bench_loops.make_vote_round_loop ()))

let test_snapshot_install =
  Test.make ~name:"server.handle stale snapshot install"
    (Staged.stage (Bench_loops.make_snapshot_install_loop ()))

let test_codec =
  Test.make ~name:"kv command codec roundtrip"
    (Staged.stage (fun () ->
         let payload =
           Kvsm.Command.to_payload
             (Kvsm.Command.Put { key = "benchmark-key"; value = "value-42" })
         in
         ignore (Kvsm.Command.of_payload payload)))

let tests =
  [
    test_tuner_observe;
    test_tuner_retune;
    test_loss_observe;
    test_window_push;
    test_engine_schedule;
    test_heap_push_pop;
    test_heap_push_pop_int;
    test_event_heap_push_pop;
    test_engine_cancel_churn;
    test_wheel_churn;
    test_wheel_fire;
    test_log_slice_array;
    test_log_slice_list;
    test_server_heartbeat;
    test_leader_append;
    test_follower_append;
    test_try_append;
    test_vote_round;
    test_snapshot_install;
    test_codec;
  ]

(* Minor-heap allocation per operation (Bench_loops.words_per_op): the
   number bechamel's timing tables can't show, and the one the
   allocation-lean RPC work moves.  `selfcheck --perf` ratchets the four
   server/log rows against the committed baseline. *)
let words_per_op ppf name f =
  Format.fprintf ppf "  %-40s %10.1f minor words/op@." name
    (Bench_loops.words_per_op f)

(* The forensics contract, measured: a steady-state 3-node cluster —
   the follower heartbeat path end to end, timers through fabric to
   delivery — as minor words per DES event.  With the ring disabled the
   loop must allocate exactly like a cluster with no ring at all (the
   [fo_on] guards keep the disabled path allocation-free; `selfcheck
   --perf` gates that equality); the enabled figure prices turning it
   on.  DES runs are deterministic, so each figure is a constant for
   the pinned seed. *)
let cluster_words_per_event ?forensics () =
  let cluster =
    Harness.Cluster.create ~seed:5L ~n:3
      ~config:(Raft.Config.dynatune ())
      ?forensics ()
  in
  Harness.Cluster.start cluster;
  (match Harness.Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> failwith "micro: steady-state cluster elected no leader");
  Harness.Cluster.run_for cluster (Des.Time.sec 10);
  let w0 = Gc.minor_words () in
  let e0 = Des.Engine.global_processed () in
  Harness.Cluster.run_for cluster (Des.Time.sec 120);
  let e1 = Des.Engine.global_processed () in
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int (e1 - e0)

let forensics_pair ppf =
  let off = cluster_words_per_event () in
  let on_ =
    cluster_words_per_event ~forensics:(Telemetry.Forensics.create ()) ()
  in
  Format.fprintf ppf "  %-40s %10.1f minor words/event@."
    "cluster heartbeat loop (forensics off)" off;
  Format.fprintf ppf "  %-40s %10.1f minor words/event@."
    "cluster heartbeat loop (forensics on)" on_

let allocation_report ppf =
  words_per_op ppf "server.handle heartbeat (dynatune)"
    (Bench_loops.make_heartbeat_loop ());
  words_per_op ppf "server.handle append nack+rebatch 64"
    (Bench_loops.make_leader_append_loop ());
  words_per_op ppf "server.handle duplicate append 64"
    (Bench_loops.make_follower_append_loop ());
  words_per_op ppf "log.try_append duplicate 64"
    (Bench_loops.make_try_append_loop ());
  words_per_op ppf "server.handle pre-vote round"
    (Bench_loops.make_vote_round_loop ());
  words_per_op ppf "server.handle stale snapshot install"
    (Bench_loops.make_snapshot_install_loop ());
  (let e = Des.Engine.create () in
   words_per_op ppf "wheel timer schedule+cancel" (fun () ->
       Des.Engine.cancel
         (Des.Engine.schedule_timer_after e (Des.Time.ms 500) (fun () -> ()))));
  let log = bench_log () in
  let i = ref 0 in
  words_per_op ppf "log.slice 64 (array)" (fun () ->
      i := (!i mod 900) + 1;
      ignore (Raft.Log.slice log ~from:!i ~max:64 : Raft.Log.entry array))


(* Direct wall-clock comparison of the seed event queue (generic heap
   with a boxed comparator over event records) against the specialized
   [Event_heap], reported as a ratio so the speedup is visible without
   reading bechamel tables.  A resident population of 4k events
   approximates a mid-campaign queue: each push/pop then costs ~12
   comparisons, so the comparator path dominates as it does in real
   runs. *)
let heap_throughput_ratio ppf =
  let ops = 1_000_000 in
  let resident = 4096 in
  let module Ev = struct
    type t = { at : int; seq : int }

    let compare a b =
      match Int.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c
  end in
  let generic () =
    let h = Des.Heap.create ~cmp:Ev.compare in
    for i = 1 to resident do
      Des.Heap.push h { Ev.at = (i * 7919) mod 65536; seq = i }
    done;
    let t0 = Unix.gettimeofday () in
    for i = 1 to ops do
      Des.Heap.push h { Ev.at = (i * 7919) mod 65536; seq = i };
      ignore (Des.Heap.pop h : Ev.t option)
    done;
    Unix.gettimeofday () -. t0
  in
  let specialized () =
    let h = Des.Event_heap.create () in
    for i = 1 to resident do
      ignore
        (Des.Event_heap.schedule h
           ~at:((i * 7919) mod 65536)
           ~seq:i
           (fun () -> ())
          : Des.Event_heap.event)
    done;
    let t0 = Unix.gettimeofday () in
    for i = 1 to ops do
      ignore
        (Des.Event_heap.schedule h
           ~at:((i * 7919) mod 65536)
           ~seq:i
           (fun () -> ())
          : Des.Event_heap.event);
      ignore (Des.Event_heap.pop_live h : Des.Event_heap.event option)
    done;
    Unix.gettimeofday () -. t0
  in
  (* Best of three to damp scheduler noise. *)
  let best f = Stdlib.min (f ()) (Stdlib.min (f ()) (f ())) in
  let g = best generic and s = best specialized in
  Format.fprintf ppf
    "  event queue push+pop: generic heap %.2f Mops/s, specialized %.2f \
     Mops/s (%.2fx)@."
    (float_of_int ops /. g /. 1e6)
    (float_of_int ops /. s /. 1e6)
    (g /. s)

let run ppf =
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  heap_throughput_ratio ppf;
  allocation_report ppf;
  forensics_pair ppf;
  Format.fprintf ppf "  %-40s %14s %8s@." "operation" "time/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          let time_ns =
            match Analyze.OLS.estimates ols_result with
            | Some (t :: _) -> t
            | Some [] | None -> nan
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> r
            | None -> nan
          in
          Format.fprintf ppf "  %-40s %11.1f ns %8.4f@." name time_ns r2)
        analyzed)
    tests
