(** Hot-path loop builders shared by the bechamel microbenchmarks and
    the perf-regression guard (`selfcheck --perf`).

    Every [make_*] builder returns a closure that replays one pinned
    operation; its minor-heap allocation per call is a constant of the
    code path (no GC- or time-dependent branching), so {!words_per_op}
    figures are exact and comparable across hosts. *)

val bench_log : unit -> Raft.Log.t
(** A 1000-entry log of identical KV [Put] commands. *)

val make_heartbeat_loop : unit -> unit -> unit
(** Follower handling one dynatune heartbeat (tuner observation
    included). *)

val make_leader_append_loop : unit -> unit -> unit
(** Leader handling a conflict nack that forces a 64-entry rebatch — a
    batch-cache hit in steady state. *)

val make_follower_append_loop : unit -> unit -> unit
(** Follower handling a duplicate 64-entry append through
    [Server.handle]: the full RPC path over the prefix scan. *)

val make_try_append_loop : unit -> unit -> unit
(** The same duplicate 64-entry append straight into
    [Raft.Log.try_append]: the log-matching prefix scan alone, the floor
    under the follower figure. *)

val make_vote_round_loop : unit -> unit -> unit
(** Follower granting one replayed pre-vote request: the vote checks and
    the response build, with no durable-state mutation. *)

val make_snapshot_install_loop : unit -> unit -> unit
(** Follower handling a replayed stale [Install_snapshot] (its commit
    point already covers the boundary): the receive path minus the
    one-off log wipe. *)

val words_per_op : (unit -> unit) -> float
(** Minor words allocated per call of [f], measured over 100k iterations
    after a 100-call warmup. *)
