(* Benchmark harness: regenerates every figure of the paper's evaluation.

   Usage:
     dune exec bench/main.exe                 # all figures, quick scale
     dune exec bench/main.exe -- fig4 fig6a   # selected figures
     dune exec bench/main.exe -- --full       # paper-scale parameters
     dune exec bench/main.exe -- --jobs 4     # campaign parallelism
     dune exec bench/main.exe -- --json out.json  # machine-readable timings

   Quick scale shrinks campaign sizes and hold durations (the *shape* of
   every result is preserved; only statistical resolution drops); --full
   runs the paper's exact parameters.

   --jobs N fans campaigns out over N domains (default: all cores minus
   one for the coordinator).  --jobs 1 reproduces the sequential run bit
   for bit; any N is deterministic for a fixed (seed, N). *)

module Fig4 = Scenarios.Fig4
module Fig5 = Scenarios.Fig5
module Fig6 = Scenarios.Fig6
module Fig7 = Scenarios.Fig7
module Fig8 = Scenarios.Fig8
module Ablation = Scenarios.Ablation
module Report = Scenarios.Report

type scale = { full : bool; jobs : int }

let ppf = Format.std_formatter

(* One --json report row per figure, in run order.  GC words are the
   coordinator domain's allocation deltas (campaign shards run in their
   own domains under --jobs > 1, so compare allocation numbers at
   --jobs 1 where everything allocates here). *)
type record = {
  name : string;
  wall : float;
  events : int;
  minor_words : float;
  major_words : float;
}

let records : record list ref = ref []

let timed name f =
  let t0 = Unix.gettimeofday () in
  let e0 = Des.Engine.global_processed () in
  let g0 = Gc.quick_stat () in
  f ();
  let wall = Unix.gettimeofday () -. t0 in
  let events = Des.Engine.global_processed () - e0 in
  let g1 = Gc.quick_stat () in
  records :=
    {
      name;
      wall;
      events;
      minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
      major_words = g1.Gc.major_words -. g0.Gc.major_words;
    }
    :: !records;
  Format.fprintf ppf "@.[%s done in %.1fs wall]@." name wall

let run_fig4 { full; jobs } =
  timed "fig4" (fun () ->
      let failures = if full then 1000 else 200 in
      Fig4.print ppf (Fig4.compare_modes ~failures ~jobs ()))

let run_fig5 { full; jobs } =
  timed "fig5" (fun () ->
      let hold = Des.Time.sec (if full then 10 else 3) in
      Fig5.print ppf (Fig5.compare_modes ~hold ~jobs ()))

let run_fig5sat { full; jobs } =
  timed "fig5sat" (fun () ->
      let hold = Des.Time.sec (if full then 10 else 3) in
      Fig5.print_saturation ppf (Fig5.saturation ~hold ~jobs ()))

let run_fig6 pattern { full; jobs } =
  let name = match pattern with Fig6.Gradual -> "fig6a" | Fig6.Radical -> "fig6b" in
  timed name (fun () ->
      let hold = Des.Time.sec (if full then 60 else 20) in
      Fig6.print ppf pattern (Fig6.compare_modes ~hold ~jobs ~pattern ()))

let run_fig7 { full; jobs } =
  timed "fig7" (fun () ->
      let hold = Des.Time.sec (if full then 180 else 20) in
      let ns = [ 5; 17; 65 ] in
      Fig7.print ppf (Fig7.compare_modes ~hold ~jobs ~ns ()))

let run_fig8 { full; jobs } =
  timed "fig8" (fun () ->
      let failures = if full then 1000 else 150 in
      Fig8.print ppf (Fig8.compare_modes ~failures ~jobs ()))

let run_ablation { full; jobs } =
  timed "ablation" (fun () ->
      let failures = if full then 200 else 60 in
      let quiet = Des.Time.sec (if full then 300 else 60) in
      let safety = Ablation.safety_factor_sweep ~failures ~quiet ~jobs () in
      let arrival = Ablation.arrival_probability_sweep ~quiet ~jobs () in
      let sizes = Ablation.list_size_sweep ~jobs () in
      let estimators = Ablation.estimator_sweep ~jobs () in
      Ablation.print ppf (safety, arrival, sizes, estimators))

let run_reconfig { full; jobs } =
  timed "reconfig" (fun () ->
      let rounds = if full then 8 else 4 in
      Scenarios.Reconfig.print ppf
        (Scenarios.Reconfig.compare_modes ~rounds ~jobs ()))

let run_extensions { full; jobs } =
  timed "extensions" (fun () ->
      let hold = Des.Time.sec (if full then 10 else 3) in
      Scenarios.Extensions.print ppf (Scenarios.Extensions.run ~hold ~jobs ()))

let run_multiraft { full; jobs } =
  timed "multiraft" (fun () ->
      let group_counts = if full then [ 16; 64 ] else [ 4; 16 ] in
      let hold = Des.Time.sec (if full then 5 else 2) in
      Scenarios.Multiraft.print ppf
        (Scenarios.Multiraft.sweep ~group_counts ~hold ~jobs ()))

let run_micro _ =
  timed "micro" (fun () ->
      Report.banner ppf "Microbenchmarks (bechamel)";
      Micro.run ppf)

let figures =
  [
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("fig5sat", run_fig5sat);
    ("fig6a", run_fig6 Fig6.Gradual);
    ("fig6b", run_fig6 Fig6.Radical);
    ("fig7", run_fig7);
    ("fig8", run_fig8);
    ("ablation", run_ablation);
    ("reconfig", run_reconfig);
    ("extensions", run_extensions);
    ("multiraft", run_multiraft);
    ("micro", run_micro);
  ]

(* The report is flat and the values are numbers/strings, so the JSON is
   written by hand rather than pulling in a serialization library. *)
let write_json path ~full ~jobs ~metrics ~recorder ~multiraft ~guard =
  match open_out path with
  | exception Sys_error msg ->
      (* The figures already went to stdout; don't let a bad report path
         look like a failed run. *)
      Format.eprintf "warning: cannot write JSON report: %s@." msg
  | oc ->
      let rows = List.rev !records in
      Printf.fprintf oc
        "{\n  \"full\": %b,\n  \"jobs\": %d,\n  \"figures\": [\n" full jobs;
      List.iteri
        (fun i r ->
          let eps =
            if r.wall > 0. then float_of_int r.events /. r.wall else 0.
          in
          Printf.fprintf oc
            "    {\"name\": %S, \"wall_s\": %.3f, \"events\": %d, \
             \"events_per_s\": %.0f, \"minor_words\": %.0f, \
             \"major_words\": %.0f}%s\n"
            r.name r.wall r.events eps r.minor_words r.major_words
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc
        "  ],\n  \"perf_guard\": %s,\n  \"multiraft\": %s,\n  \"recorder\": \
         %s,\n  \"metrics\": %s\n}\n"
        guard multiraft recorder metrics;
      close_out oc;
      Format.fprintf ppf "[wrote %s]@." path

(* The metrics section of the JSON report: a small instrumented failover
   campaign on a pinned 4-shard plan.  Pinning the plan makes the merged
   snapshot a function of the seed alone — byte-identical whatever
   --jobs says — so the report doubles as a determinism witness. *)
let metrics_json ~jobs =
  let r =
    Fig4.run ~seed:42L ~failures:40 ~shards:4 ~jobs ~instrument:true
      ~config:(Raft.Config.dynatune ()) ()
  in
  Telemetry.Metrics.to_json r.Fig4.metrics

(* The recorder section: the same pinned instrumented plan with the
   time-series recorder sampling every 500 ms of virtual time.  Like the
   metrics section it is a determinism witness — series count, total
   samples and the CSV byte count are functions of (seed, shard plan)
   alone — and it documents what a recorded run costs relative to the
   bare instrumented one. *)
let recorder_json ~jobs =
  let r =
    Fig4.run ~seed:42L ~failures:40 ~shards:4 ~jobs ~instrument:true
      ~record:(Des.Time.ms 500)
      ~config:(Raft.Config.dynatune ()) ()
  in
  let dump = r.Fig4.recorder in
  let samples =
    List.fold_left (fun n (_, s) -> n + Array.length s) 0 dump
  in
  Printf.sprintf
    "{\"every_ms\": 500, \"series\": %d, \"samples\": %d, \"csv_bytes\": %d, \
     \"openmetrics_bytes\": %d}"
    (List.length dump) samples
    (String.length (Telemetry.Recorder.to_csv dump))
    (String.length (Telemetry.Recorder.to_openmetrics dump))

(* The multiraft section: the scale-out evidence.  One group behind the
   shard router (the fig5-saturation wire model and replication config)
   sets the baseline knee and its p99; the 64-group sweep's sustainable
   throughput is the highest level it serves at >= 95% of the offer
   without exceeding that single-group p99 — "5x at equal p99" is a
   claim about this ratio. *)
let multiraft_json () =
  let module M = Scenarios.Multiraft in
  let sustained ?p99_cap (levels : Kvsm.Workload.level_report list) =
    List.fold_left
      (fun acc (l : Kvsm.Workload.level_report) ->
        let sustained_offer = l.throughput_rps >= 0.95 *. l.offered_rps in
        let under_cap =
          match p99_cap with
          | None -> true
          | Some cap -> l.p99_latency_ms <= cap
        in
        if sustained_offer && under_cap then
          match acc with
          | Some (best, _) when best >= l.throughput_rps -> acc
          | Some _ | None -> Some (l.throughput_rps, l.p99_latency_ms)
        else acc)
      None levels
  in
  let single =
    M.run_one ~seed:11L ~groups:1
      ~rates:[ 500.; 1000.; 2000.; 4000.; 8000. ]
      ()
  in
  let single_rps, single_p99 =
    match sustained single.M.levels with
    | Some v -> v
    | None -> failwith "multiraft report: single group sustained no level"
  in
  let multi = M.run_one ~seed:11L ~groups:64 () in
  let multi_rps, multi_p99 =
    match sustained ~p99_cap:single_p99 multi.M.levels with
    | Some v -> v
    | None ->
        failwith
          "multiraft report: 64 groups sustained no level at the \
           single-group p99"
  in
  Printf.sprintf
    "{\"single\": {\"groups\": 1, \"sustainable_rps\": %.0f, \"p99_ms\": \
     %.2f}, \"scaled\": {\"groups\": %d, \"replicas\": %d, \
     \"sustainable_rps\": %.0f, \"p99_ms\": %.2f, \"peak_rps\": %.0f, \
     \"events\": %d}, \"speedup\": %.2f}"
    single_rps single_p99 multi.M.groups multi.M.replicas multi_rps multi_p99
    multi.M.peak_rps multi.M.events
    (multi_rps /. single_rps)

(* The perf_guard section: the pinned plans `selfcheck --perf` replays.
   Always sequential (jobs = 1) so the recorded events/sec is comparable
   across report generations regardless of the --jobs flag; the digests
   are jobs-invariant by the determinism contract.  The words/op rows
   are exact allocation constants of the hot-path loops (Bench_loops),
   ratcheted by the guard with a small headroom. *)
let guard_json () =
  let t0 = Unix.gettimeofday () in
  let e0 = Des.Engine.global_processed () in
  let r =
    Fig4.run ~seed:42L ~failures:400 ~shards:4 ~jobs:1
      ~config:(Raft.Config.dynatune ()) ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  let events = Des.Engine.global_processed () - e0 in
  let mr =
    Scenarios.Multiraft.sweep ~seed:11L ~group_counts:[ 4 ] ~replicas:3
      ~rates:[ 500.; 1000. ] ~jobs:1 ()
  in
  let words f = Bench_loops.words_per_op (f ()) in
  Printf.sprintf
    "{\"plan\": \"fig4 seed=42 failures=400 shards=4 jobs=1\", \"digest\": \
     \"%Lx\", \"wall_s\": %.3f, \"events\": %d, \"events_per_s\": %.0f, \
     \"multiraft_plan\": \"multiraft seed=11 groups=4 replicas=3 \
     rates=500,1000 jobs=1\", \"multiraft_digest\": \"%Lx\", \"hb_words\": \
     %.1f, \"rebatch_words\": %.1f, \"follower_append_words\": %.1f, \
     \"try_append_words\": %.1f, \"vote_round_words\": %.1f, \
     \"snapshot_install_words\": %.1f, \"words_per_event\": %.2f}"
    r.Fig4.digest wall events
    (if wall > 0. then float_of_int events /. wall else 0.)
    mr.Scenarios.Multiraft.digest
    (words Bench_loops.make_heartbeat_loop)
    (words Bench_loops.make_leader_append_loop)
    (words Bench_loops.make_follower_append_loop)
    (words Bench_loops.make_try_append_loop)
    (words Bench_loops.make_vote_round_loop)
    (words Bench_loops.make_snapshot_install_loop)
    (Micro.cluster_words_per_event ())

let usage () =
  Format.eprintf
    "usage: main.exe [--full] [--jobs N] [--json FILE] [FIGURE...]@.available figures: %s@."
    (String.concat ", " (List.map fst figures));
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let full = ref false and jobs = ref 0 and json = ref None in
  let names = ref [] in
  let rec parse = function
    | [] -> ()
    | "--full" :: rest ->
        full := true;
        parse rest
    | "--jobs" :: v :: rest -> (
        match int_of_string_opt v with
        | Some n when n >= 1 ->
            jobs := n;
            parse rest
        | _ ->
            Format.eprintf "--jobs expects a positive integer, got %S@." v;
            exit 2)
    | [ "--jobs" ] ->
        Format.eprintf "--jobs expects a positive integer@.";
        exit 2
    | "--json" :: path :: rest ->
        json := Some path;
        parse rest
    | [ "--json" ] ->
        Format.eprintf "--json expects a file path@.";
        exit 2
    | a :: _ when String.length a > 1 && a.[0] = '-' ->
        Format.eprintf "unknown option %S@." a;
        usage ()
    | a :: rest ->
        names := a :: !names;
        parse rest
  in
  parse args;
  let jobs =
    if !jobs > 0 then !jobs else max 1 (Domain.recommended_domain_count () - 1)
  in
  let wanted =
    match List.rev !names with
    | [] -> List.map fst figures
    | names ->
        List.iter
          (fun n ->
            if not (List.mem_assoc n figures) then begin
              Format.eprintf
                "unknown figure %S; available: %s, plus --full@." n
                (String.concat ", " (List.map fst figures));
              exit 2
            end)
          names;
        names
  in
  Format.fprintf ppf
    "Dynatune reproduction benchmarks (%s scale, %d job%s)@.figures: %s@."
    (if !full then "paper (--full)" else "quick")
    jobs
    (if jobs = 1 then "" else "s")
    (String.concat ", " wanted);
  let scale = { full = !full; jobs } in
  List.iter (fun name -> (List.assoc name figures) scale) wanted;
  Option.iter
    (fun path ->
      write_json path ~full:!full ~jobs ~metrics:(metrics_json ~jobs)
        ~recorder:(recorder_json ~jobs) ~multiraft:(multiraft_json ())
        ~guard:(guard_json ()))
    !json;
  Format.pp_print_flush ppf ()
