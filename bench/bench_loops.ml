(* The hot-path loop builders shared between the bechamel
   microbenchmarks (bench/micro.ml) and the perf-regression guard
   (`selfcheck --perf`): both must price exactly the same code, or the
   guard would ratchet numbers the benchmark never reported.

   Each builder returns a closure whose per-call minor-heap allocation
   is a constant of the code path alone (no GC- or time-dependent
   branching), so [words_per_op] is exact and host-independent — the
   committed baseline can be compared with a tight margin. *)

let bench_payload =
  Kvsm.Command.to_payload (Kvsm.Command.Put { key = "bench-key"; value = "v" })

let bench_log () =
  let log = Raft.Log.create () in
  for _ = 1 to 1000 do
    ignore
      (Raft.Log.append_new log ~term:1
         (Raft.Log.Data { payload = bench_payload; client_id = 1; seq = 1 })
        : Raft.Log.entry)
  done;
  log

(* Simulate the receiving end of each [Send]: in the live system the
   remote server consumes the payload and releases it into the shared
   pool, which is what refills the sender's next allocation.  Hand-rolled
   recursion so the loop adds no closure of its own. *)
let rec release_sends pool = function
  | [] -> ()
  | Raft.Server.Send { msg; _ } :: rest ->
      Raft.Rpc.Pool.release pool msg;
      release_sends pool rest
  | _ :: rest -> release_sends pool rest

let make_heartbeat_loop () =
  let config = Raft.Config.dynatune () in
  let rng = Stats.Rng.create ~seed:1L () in
  let follower =
    Raft.Server.create ~id:(Netsim.Node_id.of_int 0)
      ~peers:(List.tl (Netsim.Node_id.range 5))
      ~config ~rng ()
  in
  ignore (Raft.Server.start follower);
  (* Steady state of the live path: the heartbeat is pool-allocated (as
     the leader would), [handle] releases it at end of delivery, and the
     response record is released back as the leader's side would. *)
  let pool = Raft.Server.pool follower in
  let rtt = Some (Des.Time.ms 100) in
  let event =
    Raft.Server.Message
      {
        from = Netsim.Node_id.of_int 1;
        msg = Raft.Rpc.Timeout_now { term = 0 };
      }
  in
  let i = ref 0 in
  fun () ->
    incr i;
    let msg =
      Raft.Rpc.Pool.heartbeat pool ~term:1 ~commit:0 ~hb_id:!i
        ~sent_at:(Des.Time.ms !i) ~measured_rtt:rtt
    in
    (match event with
    | Raft.Server.Message m -> m.msg <- msg
    | _ -> assert false);
    release_sends pool
      (Raft.Server.handle follower ~now:(Des.Time.ms (!i + 50)) event)

(* The replication engine's entry path, both ends, as standalone servers
   (no fabric, no engine).  The leader is brought to power by feeding the
   vote flow by hand; each iteration then replays a conflict nack that
   rewinds to index 1, so [handle] re-builds and re-sends the same
   64-entry batch — in steady state a batch-cache hit, which is the
   number the allocation-lean work moves.  The follower replays one
   prebuilt duplicate append: the [try_append] prefix-scan hot path. *)
let make_leader_append_loop () =
  let config =
    Raft.Config.with_replication ~max_entries_per_append:64
      (Raft.Config.static ())
  in
  let rng = Stats.Rng.create ~seed:2L () in
  let leader =
    Raft.Server.create ~id:(Netsim.Node_id.of_int 0)
      ~peers:(List.tl (Netsim.Node_id.range 5))
      ~config ~rng ()
  in
  let now = Des.Time.ms 1000 in
  let from_peer p m =
    Raft.Server.Message { from = Netsim.Node_id.of_int p; msg = m }
  in
  ignore (Raft.Server.start leader);
  ignore (Raft.Server.handle leader ~now Raft.Server.Election_timeout_fired);
  List.iter
    (fun pre ->
      List.iter
        (fun p ->
          ignore
            (Raft.Server.handle leader ~now
               (from_peer p
                  (Raft.Rpc.Vote_response
                     { term = 1; granted = true; pre_vote = pre }))))
        [ 1; 2 ])
    [ true; false ];
  assert (Raft.Types.is_leader (Raft.Server.role leader));
  for seq = 1 to 500 do
    ignore
      (Raft.Server.handle leader ~now
         (Raft.Server.Propose
            { payload = bench_payload; client_id = 1; seq }))
  done;
  let nack =
    from_peer 1
      (Raft.Rpc.Append_response
         {
           term = 1;
           success = false;
           match_index = 0;
           conflict_hint = 1;
           req_prev = 0;
           ap_gen = 0;
         })
  in
  let pool = Raft.Server.pool leader in
  fun () -> release_sends pool (Raft.Server.handle leader ~now nack)

(* A 64-entry batch as the wire would carry it, built once. *)
let batch_64 () =
  let scratch = Raft.Log.create () in
  for _ = 1 to 64 do
    ignore
      (Raft.Log.append_new scratch ~term:1
         (Raft.Log.Data { payload = bench_payload; client_id = 1; seq = 1 })
        : Raft.Log.entry)
  done;
  Raft.Log.slice scratch ~from:1 ~max:64

let make_follower_append_loop () =
  let config =
    Raft.Config.with_replication ~max_entries_per_append:64
      (Raft.Config.static ())
  in
  let rng = Stats.Rng.create ~seed:3L () in
  let follower =
    Raft.Server.create ~id:(Netsim.Node_id.of_int 0)
      ~peers:(List.tl (Netsim.Node_id.range 5))
      ~config ~rng ()
  in
  ignore (Raft.Server.start follower);
  (* A gen-0 request so [handle]'s release leaves the replayed record
     alone; the pooled responses are recycled as the leader would. *)
  let append =
    Raft.Server.Message
      {
        from = Netsim.Node_id.of_int 1;
        msg =
          Raft.Rpc.Append_request
            {
              term = 1;
              prev_index = 0;
              prev_term = 0;
              entries = batch_64 ();
              commit = 0;
              ar_gen = 0;
            };
      }
  in
  let pool = Raft.Server.pool follower in
  let i = ref 0 in
  fun () ->
    incr i;
    release_sends pool
      (Raft.Server.handle follower ~now:(Des.Time.ms (!i + 50)) append)

(* The same duplicate 64-entry append, but straight into [Log.try_append]
   with no server around it: the log-matching prefix scan alone, the
   floor under the follower figure above. *)
let make_try_append_loop () =
  let log = Raft.Log.create () in
  let entries = batch_64 () in
  (match Raft.Log.try_append log ~prev_index:0 ~prev_term:0 ~entries with
  | `Ok _ -> ()
  | `Conflict _ -> assert false);
  fun () ->
    ignore
      (Raft.Log.try_append log ~prev_index:0 ~prev_term:0 ~entries
        : [ `Ok of Raft.Types.index | `Conflict of Raft.Types.index ])

(* One pre-vote round at the granting follower, replayed: request checks
   (log up-to-dateness, stickiness lease) plus the response build.
   Pre-vote grants mutate no durable state, so the replay is exact. *)
let make_vote_round_loop () =
  let config = Raft.Config.static () in
  let rng = Stats.Rng.create ~seed:4L () in
  let follower =
    Raft.Server.create ~id:(Netsim.Node_id.of_int 0)
      ~peers:(List.tl (Netsim.Node_id.range 5))
      ~config ~rng ()
  in
  ignore (Raft.Server.start follower);
  let req =
    Raft.Server.Message
      {
        from = Netsim.Node_id.of_int 1;
        msg =
          Raft.Rpc.Vote_request
            {
              term = 1;
              last_log_index = 0;
              last_log_term = 0;
              pre_vote = true;
              force = false;
            };
      }
  in
  let i = ref 0 in
  fun () ->
    incr i;
    ignore
      (Raft.Server.handle follower ~now:(Des.Time.ms (!i + 50)) req
        : Raft.Server.action list)

(* The snapshot-install receive path, replayed as the stale case (the
   follower's commit point already covers the boundary): term and
   leader-contact bookkeeping, the boundary comparison and the response —
   without wiping the log every iteration. *)
let make_snapshot_install_loop () =
  let config =
    Raft.Config.with_replication ~max_entries_per_append:64
      (Raft.Config.static ())
  in
  let rng = Stats.Rng.create ~seed:5L () in
  let follower =
    Raft.Server.create ~id:(Netsim.Node_id.of_int 0)
      ~peers:(List.tl (Netsim.Node_id.range 5))
      ~config ~rng ()
  in
  ignore (Raft.Server.start follower);
  (* Commit 64 entries so a snapshot up to 50 is stale. *)
  ignore
    (Raft.Server.handle follower ~now:(Des.Time.ms 10)
       (Raft.Server.Message
          {
            from = Netsim.Node_id.of_int 1;
            msg =
              Raft.Rpc.Append_request
                {
                  term = 1;
                  prev_index = 0;
                  prev_term = 0;
                  entries = batch_64 ();
                  commit = 64;
                  ar_gen = 0;
                };
          })
      : Raft.Server.action list);
  let snap =
    Raft.Server.Message
      {
        from = Netsim.Node_id.of_int 1;
        msg =
          Raft.Rpc.Install_snapshot
            {
              term = 1;
              last_index = 50;
              last_term = 1;
              voters = Array.of_list (Netsim.Node_id.range 5);
              learners = [||];
              data = "";
            };
      }
  in
  let pool = Raft.Server.pool follower in
  let i = ref 0 in
  fun () ->
    incr i;
    release_sends pool
      (Raft.Server.handle follower ~now:(Des.Time.ms (!i + 50)) snap)

(* Minor-heap allocation per operation, by [Gc.minor_words] delta: the
   number bechamel's timing tables can't show.  [Gc.minor_words] counts
   words allocated on the minor heap since program start, so the delta
   over N iterations divided by N is exact (modulo the loop's own
   constant). *)
let words_per_op f =
  for _ = 1 to 100 do
    f ()
  done;
  let iters = 100_000 in
  let w0 = Gc.minor_words () in
  for _ = 1 to iters do
    f ()
  done;
  let w1 = Gc.minor_words () in
  (w1 -. w0) /. float_of_int iters
