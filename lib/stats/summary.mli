(** Batch summary statistics over a collection of samples.

    Used by the benchmark harness to report what the paper's figures show:
    means, percentiles and empirical CDFs of detection / out-of-service
    times. *)

type t
(** An immutable summary of a batch of samples. *)

val of_list : float list -> t
val of_array : float array -> t
(** The input array is copied; the original is not mutated. *)

val of_parts : t list -> t
(** [of_parts parts] summarizes the union of the samples behind
    [parts].  Because a summary retains every sample, this is exactly
    [of_list] applied to the concatenated raw samples — percentiles
    and CDFs included — so campaign shards can be summarized
    independently and merged without losing precision. *)

val count : t -> int
val mean : t -> float
val std : t -> float
(** Population standard deviation. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t q] with [q] in [\[0, 100\]]; linear interpolation between
    order statistics.  [nan] when empty. *)

val median : t -> float

val cdf : t -> points:int -> (float * float) list
(** [cdf t ~points] is an empirical CDF sampled at [points] evenly spaced
    cumulative probabilities: pairs [(value, prob)] with [prob] in
    (0, 1].  Empty summary yields []. *)

val cdf_at : t -> float -> float
(** [cdf_at t v] is the fraction of samples [<= v]. *)

val pp : Format.formatter -> t -> unit
(** One-line rendering: count, mean, std, min, p50, p90, p99, max. *)
