(** Deterministic pseudo-random number generation.

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    stream.  Streams are seeded deterministically and can be split into
    independent named substreams, so adding a consumer of randomness in one
    component never perturbs the draws seen by another.  The generator is
    SplitMix64 (Steele et al., OOPSLA 2014): 64-bit state, full period,
    passes BigCrush, and is trivially splittable. *)

type t
(** A mutable stream of pseudo-random numbers. *)

val create : ?seed:int64 -> unit -> t
(** [create ?seed ()] makes a fresh stream.  The default seed is a fixed
    constant so that runs are reproducible unless a seed is supplied. *)

val copy : t -> t
(** [copy t] duplicates the stream state; the copy evolves independently. *)

val split : t -> string -> t
(** [split t name] derives an independent substream keyed by [name].
    Splitting the same parent with the same name twice yields streams that
    produce identical draws; distinct names give decorrelated streams.
    Splitting does not advance the parent. *)

val split_int : t -> int -> t
(** [split_int t i] is [split] keyed by an integer (e.g. a node id). *)

val derive : int64 -> int -> int64
(** [derive seed i] deterministically derives an independent seed from a
    campaign seed and a shard index via SplitMix64 mixing — two rounds
    of the finalizer, so nearby [(seed, i)] pairs land far apart.  Used
    to give each campaign shard its own decorrelated root stream. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next 62 uniformly random non-negative bits as an [int]. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)].  Requires [n > 0]. *)

val float : t -> float
(** [float t] is uniform in [\[0, 1)], with 53 bits of precision. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p].  [p <= 0.] never
    succeeds and [p >= 1.] always succeeds. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
