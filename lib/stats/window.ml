type t = {
  buf : float array;
  mutable head : int; (* index of oldest sample *)
  mutable len : int;
  mutable sum : float;
  mutable pushes_since_rebuild : int;
}

(* Rebuild the running sum from the raw samples every [rebuild_period]
   pushes so that cancellation error from evictions cannot accumulate
   without bound. *)
let rebuild_period = 4096

let create ~capacity =
  if capacity <= 0 then invalid_arg "Window.create: capacity must be positive";
  {
    buf = Array.make capacity 0.;
    head = 0;
    len = 0;
    sum = 0.;
    pushes_since_rebuild = 0;
  }

let capacity t = Array.length t.buf
let length t = t.len
let is_full t = t.len = Array.length t.buf

let clear t =
  t.head <- 0;
  t.len <- 0;
  t.sum <- 0.;
  t.pushes_since_rebuild <- 0

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Window.get: index out of bounds";
  t.buf.((t.head + i) mod Array.length t.buf)

(* The accumulation loops below run over a one-element float array
   rather than a [float ref]: stores into a float array are unboxed,
   where every store to a ref (and every float argument to a non-inlined
   recursive call) allocates a fresh box.  [std] runs on the tuner's
   per-heartbeat path, so the accumulator is the difference between a
   constant-size scratch cell and two words of garbage per sample. *)
let rebuild t =
  (* [get] is not inlined, and a non-inlined float return is a fresh box
     per sample; indexing the buffer directly keeps the loop
     allocation-free. *)
  let buf = t.buf and cap = Array.length t.buf and head = t.head in
  let acc = [| 0. |] in
  for i = 0 to t.len - 1 do
    acc.(0) <- acc.(0) +. buf.((head + i) mod cap)
  done;
  t.sum <- acc.(0);
  t.pushes_since_rebuild <- 0

let push t x =
  let cap = Array.length t.buf in
  if t.len = cap then begin
    let old = t.buf.(t.head) in
    t.sum <- t.sum -. old;
    t.buf.(t.head) <- x;
    t.head <- (t.head + 1) mod cap
  end
  else begin
    t.buf.((t.head + t.len) mod cap) <- x;
    t.len <- t.len + 1
  end;
  t.sum <- t.sum +. x;
  t.pushes_since_rebuild <- t.pushes_since_rebuild + 1;
  if t.pushes_since_rebuild >= rebuild_period then rebuild t

let mean t = if t.len = 0 then 0. else t.sum /. float_of_int t.len

(* Two-pass variance over the (bounded) window contents: immune to the
   catastrophic cancellation that the E[x²] − E[x]² shortcut suffers when
   the mean dwarfs the spread. *)
let std t =
  if t.len < 2 then 0.
  else begin
    let n = float_of_int t.len in
    let m = t.sum /. n in
    let buf = t.buf and cap = Array.length t.buf and head = t.head in
    let acc = [| 0. |] in
    for i = 0 to t.len - 1 do
      let d = buf.((head + i) mod cap) -. m in
      acc.(0) <- acc.(0) +. (d *. d)
    done;
    sqrt (acc.(0) /. n)
  end

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc (get t i)
  done;
  !acc

let min t =
  if t.len = 0 then nan else fold t ~init:infinity ~f:Stdlib.min

let max t =
  if t.len = 0 then nan else fold t ~init:neg_infinity ~f:Stdlib.max

let last t = if t.len = 0 then None else Some (get t (t.len - 1))
let to_list t = List.rev (fold t ~init:[] ~f:(fun acc x -> x :: acc))
