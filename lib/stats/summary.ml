type t = { sorted : float array; mean : float; std : float }

let of_array a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let w = Welford.create () in
  Array.iter (Welford.add w) sorted;
  { sorted; mean = Welford.mean w; std = Welford.std w }

let of_list l = of_array (Array.of_list l)

let of_parts parts =
  (* Concatenating the retained (sorted) sample arrays and rebuilding
     gives the summary of the union of the raw samples — exact, not an
     approximation, because [t] keeps every sample. *)
  of_array (Array.concat (List.map (fun t -> t.sorted) parts))
let count t = Array.length t.sorted
let mean t = t.mean
let std t = t.std
let min t = if count t = 0 then nan else t.sorted.(0)
let max t = if count t = 0 then nan else t.sorted.(count t - 1)

let percentile t q =
  let n = count t in
  if n = 0 then nan
  else if q <= 0. then t.sorted.(0)
  else if q >= 100. then t.sorted.(n - 1)
  else
    let rank = q /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    t.sorted.(lo) +. (frac *. (t.sorted.(hi) -. t.sorted.(lo)))

let median t = percentile t 50.

let cdf t ~points =
  let n = count t in
  if n = 0 || points <= 0 then []
  else
    List.init points (fun i ->
        let prob = float_of_int (i + 1) /. float_of_int points in
        let idx =
          Stdlib.min (n - 1)
            (int_of_float (ceil (prob *. float_of_int n)) - 1)
        in
        (t.sorted.(Stdlib.max 0 idx), prob))

let cdf_at t v =
  let n = count t in
  if n = 0 then nan
  else
    (* Binary search for the number of samples <= v. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.sorted.(mid) <= v then search (mid + 1) hi else search lo mid
    in
    float_of_int (search 0 n) /. float_of_int n

let pp ppf t =
  if count t = 0 then Format.fprintf ppf "(empty)"
  else
    Format.fprintf ppf
      "n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f"
      (count t) (mean t) (std t) (min t) (percentile t 50.)
      (percentile t 90.) (percentile t 99.) (max t)
