(** Fixed-width histograms with text rendering.

    The benchmark harness renders distributions (detection time, OTS time)
    as ASCII histograms alongside the CDF tables. *)

type t

val create : lo:float -> hi:float -> bins:int -> t
(** Uniform bins over [\[lo, hi)]; out-of-range samples land in saturating
    underflow/overflow bins.  Requires [lo < hi] and [bins > 0]. *)

val add : t -> float -> unit

val merge : t -> t -> t
(** [merge a b] is a fresh histogram whose every bin (including
    under/overflow) holds the sum of the corresponding bins of [a] and
    [b] — exactly the histogram that adding both sample streams to one
    accumulator would produce, which is what makes sharded campaigns
    mergeable without approximation.  Neither input is mutated.  Raises
    [Invalid_argument] if the bin layouts ([lo], [hi], bin count)
    differ. *)

val copy : t -> t
(** An independent histogram with the same layout and counts — what the
    telemetry registry hands out in snapshots so later samples don't
    mutate an already-taken snapshot. *)

val count : t -> int
(** Total samples added, including under/overflow. *)

val bins : t -> int
(** Number of regular bins (excluding under/overflow). *)

val lo : t -> float
val hi : t -> float

val bin_count : t -> int -> int
(** Samples in bin [i], [0 <= i < bins]. *)

val underflow : t -> int
val overflow : t -> int

val bin_bounds : t -> int -> float * float
(** [bin_bounds t i] is the [(lo, hi)] range of bin [i]. *)

val pp : ?width:int -> Format.formatter -> t -> unit
(** Multi-line bar rendering, one row per non-empty bin. *)
