type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* David Stafford's Mix13 finalizer, as used by SplitMix64. *)
let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let default_seed = 0x5DEECE66DL

let create ?(seed = default_seed) () = { state = mix64 seed }
let copy t = { state = t.state }

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

(* FNV-1a over the name, folded into the parent's current state without
   advancing the parent. *)
let hash_name name =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    name;
  !h

let split t name = { state = mix64 (Int64.logxor t.state (hash_name name)) }

let split_int t i =
  { state = mix64 (Int64.logxor t.state (mix64 (Int64.of_int i))) }

let derive seed i =
  mix64 (Int64.logxor (mix64 seed) (mix64 (Int64.of_int i)))

let bits t = Int64.to_int (Int64.shift_right_logical (int64 t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec draw () =
    let r = bits t in
    let v = r mod n in
    if r - v > (1 lsl 62) - n then draw () else v
  in
  draw ()

let float t =
  (* 53 random bits scaled into [0, 1). *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int r *. 0x1p-53

let uniform t lo hi = lo +. ((hi -. lo) *. float t)
let bool t = Int64.logand (int64 t) 1L = 1L

let bernoulli t p =
  if p <= 0. then false else if p >= 1. then true else float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
