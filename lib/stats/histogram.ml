type t = {
  lo : float;
  hi : float;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if not (lo < hi) then invalid_arg "Histogram.create: requires lo < hi";
  if bins <= 0 then invalid_arg "Histogram.create: bins must be positive";
  { lo; hi; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let bins t = Array.length t.counts
let lo t = t.lo
let hi t = t.hi

let copy t =
  {
    lo = t.lo;
    hi = t.hi;
    counts = Array.copy t.counts;
    underflow = t.underflow;
    overflow = t.overflow;
    total = t.total;
  }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else
    let w = (t.hi -. t.lo) /. float_of_int (bins t) in
    let i = Stdlib.min (bins t - 1) (int_of_float ((x -. t.lo) /. w)) in
    t.counts.(i) <- t.counts.(i) + 1

let merge a b =
  if a.lo <> b.lo || a.hi <> b.hi || Array.length a.counts <> Array.length b.counts
  then invalid_arg "Histogram.merge: histograms have different bin layouts";
  let counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts in
  {
    lo = a.lo;
    hi = a.hi;
    counts;
    underflow = a.underflow + b.underflow;
    overflow = a.overflow + b.overflow;
    total = a.total + b.total;
  }

let count t = t.total
let bin_count t i = t.counts.(i)
let underflow t = t.underflow
let overflow t = t.overflow

let bin_bounds t i =
  let w = (t.hi -. t.lo) /. float_of_int (bins t) in
  (t.lo +. (w *. float_of_int i), t.lo +. (w *. float_of_int (i + 1)))

let pp ?(width = 40) ppf t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        let lo, hi = bin_bounds t i in
        let bar = String.make (Stdlib.max 1 (c * width / peak)) '#' in
        Format.fprintf ppf "[%10.2f, %10.2f) %6d %s@." lo hi c bar
      end)
    t.counts;
  if t.underflow > 0 then Format.fprintf ppf "underflow: %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow: %d@." t.overflow
