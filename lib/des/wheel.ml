(* Hierarchical timing wheel (Varghese & Lauck) layered on Event_heap.

   The wheel is a front-buffer, not an arbiter: events park in coarse
   tick-granularity slots while far from due, and are pushed into the
   heap — carrying their original (at, seq) — just before the engine
   could need them.  The heap then decides firing order exactly as it
   would have without the wheel, which is what keeps trace digests
   bit-identical (see DESIGN.md, "Timer wheel and the determinism
   contract").

   What the wheel buys is the churn case: a timer armed far ahead and
   cancelled before coming due (election resets, heartbeat re-arms) is
   linked and dropped in O(1) without ever touching the heap — no
   sift_up, no tombstone, no compaction debt.

   Geometry: 3 levels x 256 slots, tick = 2^20 ns (~1.05 ms).  Level 0
   spans ~268 ms at tick resolution, level 1 ~68.7 s, level 2 ~4.9 h;
   deadlines beyond that overflow to the heap directly (insert returns
   false).  Slots are intrusive LIFO chains through the events' [w_next]
   field, terminated by the shared [Event_heap.never] sentinel; slot
   order is irrelevant because the heap re-orders on flush.  Cancelled
   events stay chained until their slot is visited, then are dropped.

   Invariant: every linked event's tick is >= [cursor], and a slot is
   non-empty iff its occupancy bit is set. *)

let tick_bits = 20
let slot_bits = 8
let slots_per_level = 1 lsl slot_bits
let span0 = slots_per_level (* ticks covered by level 0 *)

type level = {
  slots : Event_heap.event array; (* chain heads; Event_heap.never = empty *)
  bitmap : int array; (* 8 words x 32 bits of slot occupancy *)
}

type t = {
  heap : Event_heap.t;
  l0 : level;
  l1 : level;
  l2 : level;
  mutable cursor : int; (* tick; every linked event's tick is >= this *)
  mutable linked : int; (* events chained in slots, incl. cancelled *)
  mutable lb : int; (* cached due lower bound in ticks; -1 = recompute *)
  stats : Event_heap.stats;
}

let make_level () =
  {
    slots = Array.make slots_per_level Event_heap.never;
    bitmap = Array.make 8 0;
  }

let create heap =
  {
    heap;
    l0 = make_level ();
    l1 = make_level ();
    l2 = make_level ();
    cursor = 0;
    linked = 0;
    lb = -1;
    stats = Event_heap.stats heap;
  }

let linked t = t.linked
let cursor_tick t = t.cursor

(* De Bruijn count-trailing-zeros over a non-zero 32-bit word. *)
let ctz_table =
  [|
    0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8; 31; 27; 13; 23;
    21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9;
  |]

let[@inline] ctz v = ctz_table.((((v land -v) * 0x077CB531) lsr 27) land 31)

(* Distance (in slots, 0..255) from [pos] to the first occupied slot,
   scanning circularly; -1 when the level is empty.  A top-level
   recursive worker, not a nested one: nesting would capture the scan
   state in a fresh closure on every call, and this runs per flush. *)
let rec scan_from bm pos w0 b0 k =
  if k > 8 then -1
  else
    let wi = (w0 + k) land 7 in
    let v = bm.(wi) in
    let v =
      if k = 0 then v land lnot ((1 lsl b0) - 1)
      else if k = 8 then v land ((1 lsl b0) - 1)
      else v
    in
    if v = 0 then scan_from bm pos w0 b0 (k + 1)
    else (((wi lsl 5) + ctz v) - pos) land 255

let[@inline] first_set_from bm pos =
  scan_from bm pos (pos lsr 5) (pos land 31) 0

let[@inline] link t level idx ev =
  ev.Event_heap.w_next <- level.slots.(idx);
  level.slots.(idx) <- ev;
  level.bitmap.(idx lsr 5) <- level.bitmap.(idx lsr 5) lor (1 lsl (idx land 31));
  t.linked <- t.linked + 1

let unlink_chain level idx =
  let head = level.slots.(idx) in
  level.slots.(idx) <- Event_heap.never;
  level.bitmap.(idx lsr 5) <-
    level.bitmap.(idx lsr 5) land lnot (1 lsl (idx land 31));
  head

(* Chain [ev] into the slot its deadline selects; false = out of range
   (past the cursor, or beyond level 2) and the caller must heap it.

   Levels are selected by slot-number distance, not raw tick delta: the
   window [cursor, cursor + span1) covers 257 distinct values of
   [tick lsr 8], so an event just under the span-1 horizon can share a
   slot index with the cursor's own position one rotation ahead —
   [cascade] would then re-file it into the very slot it is unlinking,
   without moving the cursor, and the flush loop would never terminate.
   Requiring the slot number itself to be within one rotation
   ([dist1 < slots_per_level]) pushes those boundary events up a level
   (or, at level 2, out to the heap), which guarantees every cascade
   strictly demotes its events. *)
let file t ev =
  let tick = ev.Event_heap.at lsr tick_bits in
  if tick < t.cursor then false
  else if tick - t.cursor < span0 then begin
    link t t.l0 (tick land 0xFF) ev;
    true
  end
  else begin
    let dist1 = (tick lsr slot_bits) - (t.cursor lsr slot_bits) in
    if dist1 < slots_per_level then begin
      link t t.l1 ((tick lsr slot_bits) land 0xFF) ev;
      true
    end
    else begin
      let dist2 = (tick lsr (2 * slot_bits)) - (t.cursor lsr (2 * slot_bits)) in
      if dist2 < slots_per_level then begin
        link t t.l2 ((tick lsr (2 * slot_bits)) land 0xFF) ev;
        true
      end
      else false
    end
  end

let insert t ev =
  if file t ev then begin
    let s = t.stats in
    s.Event_heap.wheel_occupancy <- s.Event_heap.wheel_occupancy + 1;
    if s.Event_heap.wheel_occupancy > s.Event_heap.wheel_high_water then
      s.Event_heap.wheel_high_water <- s.Event_heap.wheel_occupancy;
    if t.lb >= 0 then begin
      let tick = ev.Event_heap.at lsr tick_bits in
      if tick < t.lb then t.lb <- tick
    end;
    true
  end
  else false

(* Candidate due lower bounds, in ticks.  Level 0's first occupied slot
   pins an exact tick; levels 1/2 pin only their slot's range start,
   clamped to the cursor (the d = 0 slot's range began in the past). *)
let cand0 t =
  let d = first_set_from t.l0.bitmap (t.cursor land 0xFF) in
  if d < 0 then max_int else t.cursor + d

let cand_hi t level shift =
  let c = t.cursor lsr shift in
  let d = first_set_from level.bitmap (c land 0xFF) in
  if d < 0 then max_int else Stdlib.max t.cursor ((c + d) lsl shift)

let next_due_tick t =
  if t.linked = 0 then max_int
  else begin
    if t.lb < 0 then
      t.lb <-
        Stdlib.min (cand0 t)
          (Stdlib.min
             (cand_hi t t.l1 slot_bits)
             (cand_hi t t.l2 (2 * slot_bits)));
    t.lb
  end

(* Earliest instant any wheel event could be due, in ns; max_int when
   the wheel is empty.  A lower bound: actual deadlines within the
   boundary tick may be up to one tick later. *)
let next_due_ns t =
  let lb = next_due_tick t in
  if lb = max_int then max_int else lb lsl tick_bits

let rec cascade_chain t ev =
  if ev != Event_heap.never then begin
    let next = ev.Event_heap.w_next in
    ev.Event_heap.w_next <- ev;
    t.linked <- t.linked - 1;
    (* Cancelled events were accounted at cancel time; recycle them. *)
    if not ev.Event_heap.cancelled then begin
      if not (file t ev) then assert false
    end
    else Event_heap.release t.heap ev;
    cascade_chain t next
  end

(* Move one slot's events down a level (level 1/2 -> finer slots).  The
   cursor first advances to the slot's range start, so every re-filed
   event lands within the finer level's span. *)
let cascade t level idx start =
  t.cursor <- start;
  t.stats.Event_heap.cascades <- t.stats.Event_heap.cascades + 1;
  cascade_chain t (unlink_chain level idx)

let rec drain_chain t ev =
  if ev != Event_heap.never then begin
    let next = ev.Event_heap.w_next in
    ev.Event_heap.w_next <- ev;
    t.linked <- t.linked - 1;
    if not ev.Event_heap.cancelled then begin
      t.stats.Event_heap.wheel_occupancy <-
        t.stats.Event_heap.wheel_occupancy - 1;
      Event_heap.push_event t.heap ev
    end
    else Event_heap.release t.heap ev;
    drain_chain t next
  end

(* Push one level-0 slot's live events into the heap. *)
let drain t idx tick =
  t.cursor <- tick + 1;
  drain_chain t (unlink_chain t.l0 idx)

(* Process exactly one slot: cascade the earliest-due level-1/2 slot, or
   drain the earliest level-0 slot into the heap.  Ties go to the
   coarser level — its range may contain deadlines earlier than the
   level-0 candidate.  Caller guarantees [linked t > 0]. *)
let flush_next t =
  t.lb <- -1;
  let a = cand0 t in
  let c1 = t.cursor lsr slot_bits in
  let d1 = first_set_from t.l1.bitmap (c1 land 0xFF) in
  let b =
    if d1 < 0 then max_int
    else Stdlib.max t.cursor ((c1 + d1) lsl slot_bits)
  in
  let c2 = t.cursor lsr (2 * slot_bits) in
  let d2 = first_set_from t.l2.bitmap (c2 land 0xFF) in
  let c =
    if d2 < 0 then max_int
    else Stdlib.max t.cursor ((c2 + d2) lsl (2 * slot_bits))
  in
  if c <= a && c <= b then cascade t t.l2 ((c2 + d2) land 0xFF) c
  else if b <= a then cascade t t.l1 ((c1 + d1) land 0xFF) b
  else drain t (a land 0xFF) a
