(** Monomorphic event queue for the DES engine.

    A binary min-heap specialized to the engine's event records: the
    [(at, seq)] lexicographic comparison is inlined into the sift loops
    instead of going through a boxed ['a -> 'a -> int] closure, which is
    worth ~1.6x on push/pop throughput (the hottest loop in every
    campaign).  The generic {!Heap} remains for other priority-queue
    users.

    Events are {e flattened} and {e pooled}: instead of a
    [unit -> unit] closure per schedule, an event carries an int opcode
    plus two uniform operand words and one immediate word, dispatched
    through the engine's handler table ([op] = 0 keeps the closure form,
    stored in [a]).  Fired and discarded events return to a per-heap
    free list ({!release}) and are recycled by {!alloc}, so steady-state
    scheduling allocates zero minor words.

    Cancellation is lazy — [cancel] only marks the event — but the heap
    counts its dead entries and compacts itself once they pass a
    threshold, so workloads that cancel and re-arm timers at a high rate
    (heartbeat churn over long holds) cannot grow the queue without
    bound.

    The heap is also the overflow store and final arbiter for {!Wheel}:
    near-deadline events park in wheel slots and are pushed here (with
    their original [at]/[seq]) just before they come due, so firing
    order is decided by this heap alone whether or not an event took the
    wheel shortcut.  Not thread-safe: each simulation runs
    single-domain. *)

type stats = {
  mutable dead : int;  (** cancelled-but-still-queued entries, right now *)
  mutable cancelled : int;  (** lifetime count of {!cancel} marks *)
  mutable compactions : int;  (** lifetime count of lazy-cancel sweeps *)
  mutable high_water : int;  (** deepest the heap has ever been *)
  mutable cancelled_in_place : int;
      (** cancels that hit a wheel slot — the event was dropped without
          ever being pushed into the heap *)
  mutable cascades : int;  (** wheel slot redistributions between levels *)
  mutable wheel_occupancy : int;  (** live events parked in wheel slots *)
  mutable wheel_high_water : int;  (** peak live wheel occupancy *)
}
(** Self-instrumentation counters, maintained unconditionally — they are
    single field mutations on paths that already mutate the structure,
    too cheap to be worth gating.  Shared between a heap and the wheel
    layered on top of it, because {!cancel} takes only the event and
    must be able to account for both residencies.  Read them via
    {!stats}. *)

type event = {
  mutable at : Time.t;
  mutable seq : int;  (** tie-break: strictly increasing scheduling order *)
  mutable op : int;
      (** handler-table index; 0 = [a] holds a [unit -> unit] closure *)
  mutable a : Obj.t;  (** first operand word (uniform representation) *)
  mutable b : Obj.t;  (** second operand word *)
  mutable arg : int;  (** immediate operand (packed ints, cause IDs) *)
  mutable cancelled : bool;
  mutable queued : bool;  (** currently stored in the heap *)
  mutable w_next : event;
      (** intrusive chain: wheel slot when parked, free list when
          recycled; self-linked when in neither *)
  stats : stats;  (** owning heap's counters *)
}
(** The record is exposed (not private) so {!Wheel} can link events into
    its slots and {!Engine} can dispatch without an indirection layer;
    outside [lib/des], treat it as an abstract handle and only construct
    via {!make}/{!schedule}. *)

type t

val create : unit -> t

val never : event
(** A shared, permanently-cancelled event: a null object for handle
    fields that would otherwise be [event option].  {!cancel} and
    {!is_pending} treat it as already fired; it is never stored. *)

val alloc : t -> at:Time.t -> seq:int -> event
(** Pop a recycled event from the free list (or allocate a fresh one),
    live and unqueued.  The caller must set [op]/[a]/[b]/[arg] before
    the event fires. *)

val release : t -> event -> unit
(** Return an event to the free list for reuse.  The caller must have
    removed it from the heap and any wheel slot; the engine releases at
    execution, the heap at tombstone discard, the wheel at slot visit.
    Releasing {!never} is a no-op. *)

val make : t -> at:Time.t -> seq:int -> (unit -> unit) -> event
(** {!alloc} an event carrying a closure payload ([op] = 0) {e without}
    queueing it — the caller either parks it in a wheel slot or hands it
    to {!push_event}. *)

val push_event : t -> event -> unit
(** Push an event obtained from {!make}/{!alloc} (or one the wheel is
    flushing back).  May trigger compaction first. *)

val schedule : t -> at:Time.t -> seq:int -> (unit -> unit) -> event
(** [make] + [push_event]. *)

val run_closure : event -> unit
(** Execute a closure-form event's payload ([op] = 0) — for direct heap
    users (tests, microbenchmarks) that drive the queue themselves.
    Raises [Invalid_argument] on an opcode event: those belong to an
    engine's handler table. *)

val cancel : event -> unit
(** Mark the event dead; it will be skipped and eventually reclaimed.
    Wheel-resident events are accounted as cancelled-in-place (their
    slot drops them on its next visit).  Cancelling a fired or
    already-cancelled event is a no-op. *)

val is_pending : event -> bool
(** [not cancelled] — mirrors the seed engine's handle semantics. *)

val pop_live : t -> event option
(** Remove and return the earliest non-cancelled event, discarding any
    cancelled entries encountered on the way.  The returned event is
    {e not} released — callers outside the engine own it (and may simply
    drop it; unreleased events are garbage-collected normally). *)

val peek_live : t -> event option
(** Earliest non-cancelled event without removing it; discards cancelled
    entries from the top as a side effect. *)

val top_live : t -> event
(** Allocation-free {!peek_live}: returns {!never} when empty.  The
    engine's hot loop uses this to avoid boxing an option per event. *)

val drop_top : t -> unit
(** Remove the top event.  Only call immediately after {!top_live}
    returned it (the top must be live). *)

val length : t -> int
(** Entries currently stored, including cancelled ones. *)

val live_length : t -> int
(** Entries that are still scheduled to fire. *)

val stats : t -> stats
(** The heap's live counter record (not a copy). *)

val compact_min_dead : int
(** Compaction triggers when more than [compact_min_dead] entries are
    dead AND the dead outnumber the live (amortized O(1) per push). *)
