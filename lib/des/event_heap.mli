(** Monomorphic event queue for the DES engine.

    A binary min-heap specialized to the engine's event records: the
    [(at, seq)] lexicographic comparison is inlined into the sift loops
    instead of going through a boxed ['a -> 'a -> int] closure, which is
    worth ~1.6x on push/pop throughput (the hottest loop in every
    campaign).  The generic {!Heap} remains for other priority-queue
    users.

    Cancellation is lazy — [cancel] only marks the event — but the heap
    counts its dead entries and compacts itself once they pass a
    threshold, so workloads that cancel and re-arm timers at a high rate
    (heartbeat churn over long holds) cannot grow the queue without
    bound.  Not thread-safe: each simulation runs single-domain. *)

type stats = private {
  mutable dead : int;  (** cancelled-but-still-queued entries, right now *)
  mutable cancelled : int;  (** lifetime count of {!cancel} marks *)
  mutable compactions : int;  (** lifetime count of lazy-cancel sweeps *)
  mutable high_water : int;  (** deepest the heap has ever been *)
}
(** Self-instrumentation counters, maintained unconditionally — they are
    single field mutations on paths that already mutate the heap, too
    cheap to be worth gating.  Read them via {!stats}. *)

type event = private {
  at : Time.t;
  seq : int;  (** tie-break: strictly increasing scheduling order *)
  action : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;  (** currently stored in the heap *)
  stats : stats;  (** owning heap's counters *)
}

type t

val create : unit -> t

val schedule : t -> at:Time.t -> seq:int -> (unit -> unit) -> event
(** Allocate an event and push it.  May trigger compaction first. *)

val cancel : event -> unit
(** Mark the event dead; it will be skipped and eventually reclaimed.
    Cancelling a fired or already-cancelled event is a no-op. *)

val is_pending : event -> bool
(** [not cancelled] — mirrors the seed engine's handle semantics. *)

val pop_live : t -> event option
(** Remove and return the earliest non-cancelled event, discarding any
    cancelled entries encountered on the way. *)

val peek_live : t -> event option
(** Earliest non-cancelled event without removing it; discards cancelled
    entries from the top as a side effect. *)

val length : t -> int
(** Entries currently stored, including cancelled ones. *)

val live_length : t -> int
(** Entries that are still scheduled to fire. *)

val stats : t -> stats
(** The heap's live counter record (not a copy). *)

val compact_min_dead : int
(** Compaction triggers when more than [compact_min_dead] entries are
    dead AND the dead outnumber the live (amortized O(1) per push). *)
