(** Restartable one-shot timers.

    The idiom Raft needs everywhere: a timer that is re-armed on every
    heartbeat, fires at most once per arming, and can be disarmed.
    Re-arming cancels the previous deadline's event (the engine never
    fires a cancelled event, so no stale callback can slip through),
    and the arm path allocates nothing beyond the engine's own event
    record — the fire closure is built once per timer. *)

type t

val create : Engine.t -> (unit -> unit) -> t
(** A disarmed timer whose expiry runs the callback. *)

val arm : t -> Time.span -> unit
(** (Re)arm to fire after [span].  Any previous arming is cancelled. *)

val disarm : t -> unit
(** Cancel without firing; no-op when disarmed. *)

val is_armed : t -> bool

val deadline : t -> Time.t option
(** Absolute expiry instant, when armed. *)

val remaining : t -> Time.span option
(** Time left until expiry, when armed. *)

val armed_span : t -> Time.span option
(** The span the timer was last armed with (even after firing) — this is
    the [randomizedTimeout] value the paper samples. *)
