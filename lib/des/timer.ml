(* One shared fire handler per engine, not one closure per timer (let
   alone per arming): the heartbeat/election workload re-arms timers on
   every message, and with the engine's opcode scheduling form an arm is
   a pooled-event fill — zero minor words.  The generation counter
   stayed gone — [cancel] marks the underlying event, and the engine
   guarantees a cancelled event never fires, which is the whole
   stale-fire guard.  Pool safety: [fire] clears [pending] before
   running the callback, and [disarm]/[arm] clear-or-replace it, so this
   module never holds a handle whose event could have been recycled. *)

type t = {
  engine : Engine.t;
  callback : unit -> unit;
  op : (t, unit) Engine.op;  (* engine-shared fire handler *)
  mutable pending : Engine.handle;  (* Engine.never when disarmed/fired *)
  mutable deadline : Time.t;  (* meaningful while armed *)
  mutable last_span : Time.span;  (* meaningful once ever_armed *)
  mutable ever_armed : bool;
}

let fire (t : t) () (_ : int) =
  t.pending <- Engine.never;
  t.callback ()

let create engine callback =
  let op =
    Engine.cached_op engine ~slot:Engine.slot_timer (fun () ->
        Engine.register_op engine fire)
  in
  {
    engine;
    callback;
    op;
    pending = Engine.never;
    deadline = Time.zero;
    last_span = 0;
    ever_armed = false;
  }

let disarm t =
  Engine.cancel t.pending;
  t.pending <- Engine.never

let arm t span =
  Engine.cancel t.pending;
  t.ever_armed <- true;
  t.last_span <- span;
  t.deadline <- Time.add (Engine.now t.engine) span;
  t.pending <- Engine.schedule_timer_op t.engine span t.op t () 0

let is_armed t = Engine.is_pending t.pending
let deadline t = if is_armed t then Some t.deadline else None

let remaining t =
  if is_armed t then Some (Time.diff t.deadline (Engine.now t.engine))
  else None

let armed_span t = if t.ever_armed then Some t.last_span else None
