(* One preallocated [fire] closure per timer, not one per arming: the
   heartbeat/election workload re-arms timers on every message, and the
   old per-arm closure + three option boxes dominated the arm path's
   allocation.  The generation counter is gone with them — [cancel]
   marks the underlying event, and the engine guarantees a cancelled
   event never fires, which is the whole stale-fire guard. *)

type t = {
  engine : Engine.t;
  callback : unit -> unit;
  mutable fire : unit -> unit;
  mutable pending : Engine.handle;  (* Engine.never when disarmed/fired *)
  mutable deadline : Time.t;  (* meaningful while armed *)
  mutable last_span : Time.span;  (* meaningful once ever_armed *)
  mutable ever_armed : bool;
}

let create engine callback =
  let t =
    {
      engine;
      callback;
      fire = ignore;
      pending = Engine.never;
      deadline = Time.zero;
      last_span = 0;
      ever_armed = false;
    }
  in
  t.fire <-
    (fun () ->
      t.pending <- Engine.never;
      t.callback ());
  t

let disarm t =
  Engine.cancel t.pending;
  t.pending <- Engine.never

let arm t span =
  Engine.cancel t.pending;
  t.ever_armed <- true;
  t.last_span <- span;
  t.deadline <- Time.add (Engine.now t.engine) span;
  t.pending <- Engine.schedule_timer_after t.engine span t.fire

let is_armed t = Engine.is_pending t.pending
let deadline t = if is_armed t then Some t.deadline else None

let remaining t =
  if is_armed t then Some (Time.diff t.deadline (Engine.now t.engine))
  else None

let armed_span t = if t.ever_armed then Some t.last_span else None
