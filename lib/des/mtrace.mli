(** In-simulation trace recorder.

    Components emit typed events against the virtual clock; monitors
    consume the trace afterwards to measure detection time, out-of-service
    intervals, election rounds, etc.  This replaces the paper's practice of
    parsing etcd log files: the shared virtual clock makes the timestamps
    exact.

    {b Retention contract.}  By default a trace is unbounded, and replay
    monitors rely on that: [Harness.Monitor.leaderless_intervals] replays
    every retained event, so its results are only exact if the trace was
    neither {!clear}ed nor capacity-trimmed during the window being
    measured (the failover harness honours this by measuring each failure
    before clearing).  Pass [?capacity] only for long free-running
    simulations where live {!subscribe} observers carry the analysis and
    the retained list is just a debugging tail. *)

type 'a t

val create : ?capacity:int -> Engine.t -> 'a t
(** [capacity] bounds the number of retained events: once exceeded, the
    oldest events are evicted (count them with {!dropped}).  Eviction is
    amortized O(1) per emit.  Omitted means unbounded.  Raises
    [Invalid_argument] if [capacity <= 0].  Observers are unaffected by
    the bound — they see every emit. *)

val engine : 'a t -> Engine.t

val emit : 'a t -> 'a -> unit
(** Record an event at the current simulation time. *)

val length : 'a t -> int
(** Events currently retained (at most the capacity). *)

val dropped : 'a t -> int
(** Events evicted by the capacity bound since creation or the last
    {!clear}.  Always [0] for an unbounded trace. *)

val events : 'a t -> (Time.t * 'a) list
(** Retained events, oldest first. *)

val iter : 'a t -> f:(Time.t -> 'a -> unit) -> unit

val find_first : 'a t -> after:Time.t -> f:('a -> bool) -> (Time.t * 'a) option
(** First retained event strictly after [after] satisfying the
    predicate. *)

val clear : 'a t -> unit
(** Drop all retained events and reset the {!dropped} counter.
    Observers stay subscribed. *)

val subscribe : 'a t -> (Time.t -> 'a -> unit) -> unit
(** Register a live observer called on every subsequent [emit] (after the
    event is recorded).  Monitors use this to react during the run. *)
