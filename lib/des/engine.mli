(** Discrete-event simulation engine.

    A virtual clock plus a priority queue of scheduled callbacks.  Events
    scheduled at the same instant fire in scheduling order (a strictly
    increasing sequence number breaks ties), so runs are deterministic.
    The engine owns the root PRNG stream from which all components derive
    named substreams.

    Two scheduling forms share one queue and one firing order:

    - {b Closure form} ({!schedule_at} and friends): the traditional
      [unit -> unit] callback.  Allocates the closure at the call site;
      right for cold paths and one-off work.
    - {b Opcode form} ({!register_op} + {!schedule_op_at} and friends):
      the callback is a handler registered once per engine, and each
      schedule passes it two operand words plus an immediate int.  After
      the event pool warms up, scheduling allocates {e zero} minor
      words — this is what the delivery and timer hot paths use. *)

type t

type handle
(** A cancellation handle for a scheduled event.  Handles are pooled:
    after the event fires or its cancellation is reclaimed, the handle
    may be recycled for an unrelated event.  Holders must forget a
    handle (overwrite it with {!never}) once they learn it fired, and
    must not retain handles they have cancelled — {!Timer} is the
    reference implementation of this discipline. *)

val create : ?seed:int64 -> unit -> t
(** Fresh engine at time zero.  [seed] initializes the root PRNG. *)

val now : t -> Time.t
val rng : t -> Stats.Rng.t
(** Root PRNG stream; split it rather than drawing from it directly. *)

val schedule_at : t -> Time.t -> (unit -> unit) -> handle
(** Schedule a callback at an absolute instant.  Scheduling in the past
    raises [Invalid_argument]. *)

val schedule_after : t -> Time.span -> (unit -> unit) -> handle
(** Schedule after a relative delay (clamped to be non-negative). *)

val schedule_timer_after : t -> Time.span -> (unit -> unit) -> handle
(** Like {!schedule_after}, but for deadlines that are likely to be
    cancelled before coming due (timer re-arm churn): the event parks in
    the timing wheel, where cancellation drops it in place — no heap
    push, sift, or tombstone.  Firing order and semantics are identical
    to {!schedule_after}; one-shot work that nearly always fires should
    keep using the plain entry points, which skip the wheel's flush
    bookkeeping. *)

type ('a, 'b) op
(** A handler-table index for the opcode scheduling form: the handler
    receives the two operand values and the immediate int passed at
    schedule time.  Ops are engine-specific — registering on one engine
    and scheduling on another is unchecked and wrong. *)

val register_op : t -> ('a -> 'b -> int -> unit) -> ('a, 'b) op
(** Register a dispatch handler, once per engine (typically at component
    creation).  The per-schedule cost of the returned op is two operand
    stores and an int store — no closure. *)

val cached_op : t -> slot:int -> (unit -> ('a, 'b) op) -> ('a, 'b) op
(** Memoize an op registration in one of a small number of per-engine
    slots, for components (like {!Timer}) that are instantiated many
    times per engine but need only one shared handler.  The slot
    registry is a fixed convention: slot {!slot_timer} belongs to
    {!Timer}; slots above it are unassigned.  The thunk runs on first
    use only.  Callers must ensure a slot is always used at one type —
    the memoization is untyped. *)

val slot_timer : int
(** {!cached_op} slot owned by {!Timer}'s shared fire handler. *)

val n_cached_slots : int
(** Number of {!cached_op} slots ([slot] must be below this). *)

val schedule_op_at : t -> Time.t -> ('a, 'b) op -> 'a -> 'b -> int -> unit
(** Opcode form of {!schedule_at}: fire [op]'s handler with the given
    operands.  Returns no handle (the common case never cancels);
    allocation-free once the event pool is warm. *)

val schedule_op_after : t -> Time.span -> ('a, 'b) op -> 'a -> 'b -> int -> unit
(** Opcode form of {!schedule_after}. *)

val schedule_timer_op : t -> Time.span -> ('a, 'b) op -> 'a -> 'b -> int -> handle
(** Opcode form of {!schedule_timer_after}; returns a handle because
    timer deadlines are routinely cancelled. *)

val cancel : handle -> unit
(** Cancel a scheduled event; cancelling a fired or already-cancelled
    event is a no-op.  Events still parked in the timing wheel are
    dropped in place without ever touching the heap. *)

val is_pending : handle -> bool

val never : handle
(** A permanently-cancelled handle: a null object for handle-typed
    fields, so holders (e.g. {!Timer}) need no [handle option].
    [cancel] is a no-op on it and [is_pending] is [false]. *)

val run : t -> unit
(** Run until the event queue is empty. *)

val run_until : t -> Time.t -> unit
(** Process all events with timestamp [<= limit], then set the clock to
    [limit].  Events scheduled beyond [limit] remain queued. *)

val run_for : t -> Time.span -> unit
(** [run_until] the current time plus a span. *)

val step : t -> bool
(** Process the single next event; [false] if the queue was empty. *)

val set_post_hook : t -> (unit -> unit) option -> unit
(** Install (or clear, with [None]) a callback invoked after every
    processed event.  At most one hook is installed at a time; the
    online invariant checker uses it to inspect all servers' states
    between events.  An exception raised by the hook propagates out of
    [run] / [run_until] / [step]. *)

val pending_events : t -> int
(** Number of queued non-cancelled events. *)

val processed_events : t -> int
(** Total events executed since creation. *)

type stats = {
  processed : int;  (** events executed ({!processed_events}) *)
  pending : int;  (** queued non-cancelled events ({!pending_events}) *)
  cancelled : int;  (** lifetime [cancel] marks on scheduled events *)
  compactions : int;  (** lazy-cancel heap sweeps performed *)
  heap_high_water : int;  (** deepest the event heap has ever been *)
  cancelled_in_place : int;
      (** cancels absorbed by the timing wheel: the event was dropped
          from its slot without a heap push, sift, or tombstone *)
  cascades : int;  (** wheel slot redistributions between levels *)
  wheel_occupancy : int;  (** live events currently parked in the wheel *)
  wheel_high_water : int;  (** peak live wheel occupancy *)
}
(** Engine self-instrumentation.  [cancelled] vs [processed] shows how
    much timer churn (heartbeat re-arming, election resets) the workload
    generates relative to events that actually fire;
    [cancelled_in_place] is the share of that churn the timing wheel
    absorbed for free, while [compactions] and [heap_high_water]
    characterize the residual load on the lazy-cancellation heap.
    Maintained unconditionally — each is a plain field mutation on a
    path that already mutates the structure. *)

val stats : t -> stats
(** Snapshot of the counters at this instant. *)

val global_processed : unit -> int
(** Events executed by every engine in the process so far, across all
    domains.  Updated in batches at the end of [run] / [run_until], so
    read it between runs, not mid-run.  Used by the benchmark harness to
    report events-per-figure. *)
