(** Hierarchical timing wheel for near-deadline events.

    A front-buffer over {!Event_heap}: events whose deadline falls
    within the wheel's horizon park in O(1) tick-granularity slots and
    are pushed into the heap — with their original [(at, seq)] — just
    before they come due, so the heap remains the single arbiter of
    firing order and determinism is untouched.  Cancelling a
    wheel-resident event ({!Event_heap.cancel}) drops it without any
    heap traffic, which is the payoff for timer-churn workloads.

    3 levels x 256 slots at 2^20 ns (~1.05 ms) per tick: level 0 spans
    ~268 ms, level 1 ~68.7 s, level 2 ~4.9 h.  Deeper deadlines — and
    deadlines at or behind the wheel's cursor — are refused by
    {!insert} and belong in the heap. *)

type t

val create : Event_heap.t -> t
(** A wheel overflowing into (and sharing its stats record with) the
    given heap. *)

val insert : t -> Event_heap.event -> bool
(** Park an event made by {!Event_heap.make}.  [false] means the
    deadline is outside the wheel's range (behind the cursor or beyond
    level 2) and the caller must {!Event_heap.push_event} it instead. *)

val next_due_ns : t -> int
(** Lower bound on the earliest instant any wheel event could be due
    (its slot's tick start), or [max_int] when empty.  The engine may
    pop the heap directly only while the heap top is strictly below
    this bound. *)

val flush_next : t -> unit
(** Advance to the earliest occupied slot and process it: cascade it to
    a finer level, or (at level 0) push its live events into the heap
    and drop its cancelled ones.  Requires [linked t > 0].  Repeated
    calls make progress: every event eventually reaches the heap or is
    dropped. *)

val linked : t -> int
(** Events currently chained in slots, including cancelled ones. *)

val cursor_tick : t -> int
(** The wheel's current position, in ticks (for tests). *)

val tick_bits : int
(** log2 of the tick size in ns (for tests). *)
