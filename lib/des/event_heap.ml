type stats = {
  mutable dead : int;
  mutable cancelled : int;
  mutable compactions : int;
  mutable high_water : int;
  mutable cancelled_in_place : int;
  mutable cascades : int;
  mutable wheel_occupancy : int;
  mutable wheel_high_water : int;
}

type event = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;
  mutable w_next : event;
  stats : stats;
}

type t = { mutable data : event array; mutable len : int; stats : stats }

let fresh_stats () =
  {
    dead = 0;
    cancelled = 0;
    compactions = 0;
    high_water = 0;
    cancelled_in_place = 0;
    cascades = 0;
    wheel_occupancy = 0;
    wheel_high_water = 0;
  }

let create () = { data = [||]; len = 0; stats = fresh_stats () }

(* A permanently-cancelled placeholder: lets handle holders (timers) use
   a plain [event] field instead of an [event option].  Cancelling it is
   a no-op (already cancelled), and it is never queued or linked, so it
   is safe to share — even across domains, since no code path writes it. *)
let never =
  let rec ev =
    {
      at = 0;
      seq = -1;
      action = ignore;
      cancelled = true;
      queued = false;
      w_next = ev;
      stats = fresh_stats ();
    }
  in
  ev

let length t = t.len
let live_length t = t.len - t.stats.dead
let stats t = t.stats
let compact_min_dead = 64

(* The ordering [compare_events] implements, with the comparison inlined
   so sift loops never make an indirect call.  [at] and [seq] are
   immediate ints. *)
let[@inline] lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t x =
  let cap = Array.length t.data in
  if cap = 0 then t.data <- Array.make 16 x
  else begin
    let data = Array.make (2 * cap) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  if t.len > t.stats.high_water then t.stats.high_water <- t.len;
  sift_up t (t.len - 1)

(* Drop every cancelled entry and re-heapify.  O(len), amortized against
   the >= len/2 pushes it took to accumulate that many dead entries. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let ev = t.data.(i) in
    if ev.cancelled then ev.queued <- false
    else begin
      t.data.(!j) <- ev;
      incr j
    end
  done;
  (* Release references beyond the live prefix so dead actions can be
     collected. *)
  if !j > 0 then
    for i = !j to t.len - 1 do
      t.data.(i) <- t.data.(0)
    done;
  t.len <- !j;
  t.stats.dead <- 0;
  t.stats.compactions <- t.stats.compactions + 1;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

let make t ~at ~seq action =
  let rec ev =
    {
      at;
      seq;
      action;
      cancelled = false;
      queued = false;
      w_next = ev;
      stats = t.stats;
    }
  in
  ev

let push_event t ev =
  if t.stats.dead > compact_min_dead && 2 * t.stats.dead > t.len then compact t;
  ev.queued <- true;
  push t ev

let schedule t ~at ~seq action =
  let ev = make t ~at ~seq action in
  push_event t ev;
  ev

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    ev.stats.cancelled <- ev.stats.cancelled + 1;
    if ev.queued then ev.stats.dead <- ev.stats.dead + 1
    else if ev.w_next != ev then begin
      (* Parked in a timing-wheel slot: it never reaches the heap, so it
         costs no sift or compaction work — the wheel drops it when its
         slot is next visited. *)
      ev.stats.cancelled_in_place <- ev.stats.cancelled_in_place + 1;
      ev.stats.wheel_occupancy <- ev.stats.wheel_occupancy - 1
    end
  end

let is_pending ev = not ev.cancelled

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    top.queued <- false;
    Some top
  end

let rec pop_live t =
  match pop t with
  | None -> None
  | Some ev when ev.cancelled ->
      t.stats.dead <- t.stats.dead - 1;
      pop_live t
  | some -> some

(* Allocation-free peek for the engine's hot loop: [never] means empty.
   Like [peek_live], discards cancelled entries from the top. *)
let rec top_live t =
  if t.len = 0 then never
  else begin
    let top = t.data.(0) in
    if top.cancelled then begin
      ignore (pop t : event option);
      t.stats.dead <- t.stats.dead - 1;
      top_live t
    end
    else top
  end

(* Remove the top event; caller has just verified via [top_live] that it
   is live. *)
let drop_top t =
  let top = t.data.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.data.(0) <- t.data.(t.len);
    sift_down t 0
  end;
  top.queued <- false

let rec peek_live t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    if top.cancelled then begin
      ignore (pop t : event option);
      t.stats.dead <- t.stats.dead - 1;
      peek_live t
    end
    else Some top
  end
