type stats = {
  mutable dead : int;
  mutable cancelled : int;
  mutable compactions : int;
  mutable high_water : int;
}

type event = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
  mutable queued : bool;
  stats : stats;
}

type t = { mutable data : event array; mutable len : int; stats : stats }

let create () =
  {
    data = [||];
    len = 0;
    stats = { dead = 0; cancelled = 0; compactions = 0; high_water = 0 };
  }

let length t = t.len
let live_length t = t.len - t.stats.dead
let stats t = t.stats
let compact_min_dead = 64

(* The ordering [compare_events] implements, with the comparison inlined
   so sift loops never make an indirect call.  [at] and [seq] are
   immediate ints. *)
let[@inline] lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t x =
  let cap = Array.length t.data in
  if cap = 0 then t.data <- Array.make 16 x
  else begin
    let data = Array.make (2 * cap) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  if t.len > t.stats.high_water then t.stats.high_water <- t.len;
  sift_up t (t.len - 1)

(* Drop every cancelled entry and re-heapify.  O(len), amortized against
   the >= len/2 pushes it took to accumulate that many dead entries. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let ev = t.data.(i) in
    if ev.cancelled then ev.queued <- false
    else begin
      t.data.(!j) <- ev;
      incr j
    end
  done;
  (* Release references beyond the live prefix so dead actions can be
     collected. *)
  if !j > 0 then
    for i = !j to t.len - 1 do
      t.data.(i) <- t.data.(0)
    done;
  t.len <- !j;
  t.stats.dead <- 0;
  t.stats.compactions <- t.stats.compactions + 1;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

let schedule t ~at ~seq action =
  if t.stats.dead > compact_min_dead && 2 * t.stats.dead > t.len then compact t;
  let ev =
    { at; seq; action; cancelled = false; queued = true; stats = t.stats }
  in
  push t ev;
  ev

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    ev.stats.cancelled <- ev.stats.cancelled + 1;
    if ev.queued then ev.stats.dead <- ev.stats.dead + 1
  end

let is_pending ev = not ev.cancelled

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    top.queued <- false;
    Some top
  end

let rec pop_live t =
  match pop t with
  | None -> None
  | Some ev when ev.cancelled ->
      t.stats.dead <- t.stats.dead - 1;
      pop_live t
  | some -> some

let rec peek_live t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    if top.cancelled then begin
      ignore (pop t : event option);
      t.stats.dead <- t.stats.dead - 1;
      peek_live t
    end
    else Some top
  end
