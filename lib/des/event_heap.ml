type stats = {
  mutable dead : int;
  mutable cancelled : int;
  mutable compactions : int;
  mutable high_water : int;
  mutable cancelled_in_place : int;
  mutable cascades : int;
  mutable wheel_occupancy : int;
  mutable wheel_high_water : int;
}

(* Flattened, pooled event record.  The payload is an int-encoded opcode
   plus two uniform operand words and one immediate word, interpreted by
   the engine's handler table ([op] = 0 means [a] holds a plain
   [unit -> unit] closure).  All fields are mutable so fired and
   cancelled events can be recycled through a per-heap free list instead
   of being re-allocated: on the steady-state replication workload every
   event alloc after warm-up is a free-list pop, so scheduling allocates
   zero minor words. *)
type event = {
  mutable at : Time.t;
  mutable seq : int;
  mutable op : int;
  mutable a : Obj.t;
  mutable b : Obj.t;
  mutable arg : int;
  mutable cancelled : bool;
  mutable queued : bool;
  mutable w_next : event;
  stats : stats;
}

type t = {
  mutable data : event array;
  mutable len : int;
  stats : stats;
  mutable free : event;  (* free-list head, chained via [w_next] *)
}

let fresh_stats () =
  {
    dead = 0;
    cancelled = 0;
    compactions = 0;
    high_water = 0;
    cancelled_in_place = 0;
    cascades = 0;
    wheel_occupancy = 0;
    wheel_high_water = 0;
  }

let unit_obj = Obj.repr ()

(* A permanently-cancelled placeholder: lets handle holders (timers) use
   a plain [event] field instead of an [event option], and terminates
   both wheel-slot chains and the free list.  Cancelling it is a no-op
   (already cancelled), and no code path ever writes it, so it is safe
   to share — even across domains. *)
let never =
  let rec ev =
    {
      at = 0;
      seq = -1;
      op = 0;
      a = unit_obj;
      b = unit_obj;
      arg = 0;
      cancelled = true;
      queued = false;
      w_next = ev;
      stats = fresh_stats ();
    }
  in
  ev

let create () = { data = [||]; len = 0; stats = fresh_stats (); free = never }
let length t = t.len
let live_length t = t.len - t.stats.dead
let stats t = t.stats
let compact_min_dead = 64

(* Pop a recycled event, or allocate a fresh one if the pool is dry.
   The caller overwrites [op]/[a]/[b]/[arg]; a pooled event may pin its
   previous payload until then, which is bounded by the pool size. *)
let alloc t ~at ~seq =
  let ev = t.free in
  if ev == never then
    let rec ev =
      {
        at;
        seq;
        op = 0;
        a = unit_obj;
        b = unit_obj;
        arg = 0;
        cancelled = false;
        queued = false;
        w_next = ev;
        stats = t.stats;
      }
    in
    ev
  else begin
    t.free <- ev.w_next;
    ev.w_next <- ev;
    ev.at <- at;
    ev.seq <- seq;
    ev.cancelled <- false;
    ev
  end

(* Return a fired or discarded event to the pool.  The caller must have
   removed it from the heap and any wheel slot first; the DES gives
   exact reclaim points (execution, tombstone discard, slot visit), so
   no generation counter is needed — only {!Timer} retains handles, and
   it forgets them before the event can be recycled. *)
let release t ev =
  if ev != never then begin
    ev.cancelled <- true;
    ev.queued <- false;
    ev.w_next <- t.free;
    t.free <- ev
  end

(* The ordering [compare_events] implements, with the comparison inlined
   so sift loops never make an indirect call.  [at] and [seq] are
   immediate ints. *)
let[@inline] lt a b = a.at < b.at || (a.at = b.at && a.seq < b.seq)

let grow t x =
  let cap = Array.length t.data in
  if cap = 0 then t.data <- Array.make 16 x
  else begin
    let data = Array.make (2 * cap) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1;
  if t.len > t.stats.high_water then t.stats.high_water <- t.len;
  sift_up t (t.len - 1)

(* Drop every cancelled entry (recycling it) and re-heapify.  O(len),
   amortized against the >= len/2 pushes it took to accumulate that many
   dead entries. *)
let compact t =
  let j = ref 0 in
  for i = 0 to t.len - 1 do
    let ev = t.data.(i) in
    if ev.cancelled then release t ev
    else begin
      t.data.(!j) <- ev;
      incr j
    end
  done;
  for i = !j to t.len - 1 do
    t.data.(i) <- never
  done;
  t.len <- !j;
  t.stats.dead <- 0;
  t.stats.compactions <- t.stats.compactions + 1;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

let make t ~at ~seq action =
  let ev = alloc t ~at ~seq in
  ev.op <- 0;
  ev.a <- Obj.repr action;
  ev.b <- unit_obj;
  ev

let push_event t ev =
  if t.stats.dead > compact_min_dead && 2 * t.stats.dead > t.len then compact t;
  ev.queued <- true;
  push t ev

let schedule t ~at ~seq action =
  let ev = make t ~at ~seq action in
  push_event t ev;
  ev

(* For direct heap users (tests, microbenchmarks) that execute events
   themselves: run a closure-form event's payload. *)
let run_closure ev =
  if ev.op = 0 then (Obj.obj ev.a : unit -> unit) ()
  else invalid_arg "Event_heap.run_closure: opcode event"

let cancel ev =
  if not ev.cancelled then begin
    ev.cancelled <- true;
    ev.stats.cancelled <- ev.stats.cancelled + 1;
    if ev.queued then ev.stats.dead <- ev.stats.dead + 1
    else if ev.w_next != ev then begin
      (* Parked in a timing-wheel slot: it never reaches the heap, so it
         costs no sift or compaction work — the wheel drops it when its
         slot is next visited. *)
      ev.stats.cancelled_in_place <- ev.stats.cancelled_in_place + 1;
      ev.stats.wheel_occupancy <- ev.stats.wheel_occupancy - 1
    end
  end

let is_pending ev = not ev.cancelled

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    top.queued <- false;
    Some top
  end

let rec pop_live t =
  match pop t with
  | None -> None
  | Some ev when ev.cancelled ->
      t.stats.dead <- t.stats.dead - 1;
      release t ev;
      pop_live t
  | some -> some

(* Allocation-free peek for the engine's hot loop: [never] means empty.
   Like [peek_live], discards (and recycles) cancelled entries from the
   top. *)
let rec top_live t =
  if t.len = 0 then never
  else begin
    let top = t.data.(0) in
    if top.cancelled then begin
      ignore (pop t : event option);
      t.stats.dead <- t.stats.dead - 1;
      release t top;
      top_live t
    end
    else top
  end

(* Remove the top event; caller has just verified via [top_live] that it
   is live. *)
let drop_top t =
  let top = t.data.(0) in
  t.len <- t.len - 1;
  if t.len > 0 then begin
    t.data.(0) <- t.data.(t.len);
    sift_down t 0
  end;
  top.queued <- false

let rec peek_live t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    if top.cancelled then begin
      ignore (pop t : event option);
      t.stats.dead <- t.stats.dead - 1;
      release t top;
      peek_live t
    end
    else Some top
  end
