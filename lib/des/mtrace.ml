type 'a t = {
  engine : Engine.t;
  capacity : int; (* max_int when unbounded *)
  mutable events : (Time.t * 'a) list; (* newest first *)
  mutable len : int; (* physical length of [events] *)
  mutable total : int; (* lifetime emits since creation / last clear *)
  mutable observers : (Time.t -> 'a -> unit) list;
}

let create ?capacity engine =
  let capacity =
    match capacity with
    | None -> max_int
    | Some c ->
        if c <= 0 then invalid_arg "Mtrace.create: capacity must be positive";
        c
  in
  { engine; capacity; events = []; len = 0; total = 0; observers = [] }

let engine t = t.engine

(* First [n] elements of a newest-first list, reversed — i.e. the newest
   [n] events in oldest-first order.  Tail-recursive: traces from long
   campaigns overflow the stack under plain [List.rev]. *)
let newest_rev n events =
  let rec go n acc = function
    | [] -> acc
    | _ when n = 0 -> acc
    | hd :: tl -> go (n - 1) (hd :: acc) tl
  in
  go n [] events

(* Eviction is amortized: entries beyond [capacity] are logically dropped
   immediately (readers never see them) but physically trimmed only when
   the backlog doubles, so [emit] stays O(1) amortized instead of O(cap)
   per call. *)
let emit t ev =
  let now = Engine.now t.engine in
  t.events <- (now, ev) :: t.events;
  t.len <- t.len + 1;
  t.total <- t.total + 1;
  if t.len > 2 * t.capacity && t.capacity < max_int then begin
    t.events <- List.rev (newest_rev t.capacity t.events);
    t.len <- t.capacity
  end;
  List.iter (fun f -> f now ev) t.observers

let length t = if t.len < t.capacity then t.len else t.capacity
let dropped t = t.total - length t
let events t = newest_rev (length t) t.events
let iter t ~f = List.iter (fun (time, ev) -> f time ev) (events t)

let find_first t ~after ~f =
  let rec scan = function
    | [] -> None
    | (time, ev) :: rest ->
        if time > after && f ev then Some (time, ev) else scan rest
  in
  scan (events t)

let clear t =
  t.events <- [];
  t.len <- 0;
  t.total <- 0

let subscribe t f = t.observers <- t.observers @ [ f ]
