type event = {
  at : Time.t;
  seq : int;
  action : unit -> unit;
  mutable cancelled : bool;
}

type handle = event

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable processed : int;
  mutable live : int;
  queue : event Heap.t;
  rng : Stats.Rng.t;
}

(* [at] and [seq] are immediate ints ([Time.t = int]); [Int.compare]
   keeps the hottest comparison in the simulator monomorphic instead of
   going through [caml_compare]. *)
let compare_events a b =
  match Int.compare a.at b.at with 0 -> Int.compare a.seq b.seq | c -> c

let create ?seed () =
  {
    clock = Time.zero;
    seq = 0;
    processed = 0;
    live = 0;
    queue = Heap.create ~cmp:compare_events;
    rng = Stats.Rng.create ?seed ();
  }

let now t = t.clock
let rng t = t.rng

let schedule_at t at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now %d)" at
         t.clock);
  let ev = { at; seq = t.seq; action; cancelled = false } in
  t.seq <- t.seq + 1;
  t.live <- t.live + 1;
  Heap.push t.queue ev;
  ev

let schedule_after t span action =
  schedule_at t (Time.add t.clock (Time.max_span 0 span)) action

let cancel ev =
  ev.cancelled <- true

let is_pending ev = not ev.cancelled

let step t =
  let rec next () =
    match Heap.pop t.queue with
    | None -> false
    | Some ev when ev.cancelled ->
        t.live <- t.live - 1;
        next ()
    | Some ev ->
        t.live <- t.live - 1;
        t.clock <- ev.at;
        t.processed <- t.processed + 1;
        ev.action ();
        true
  in
  next ()

let run t = while step t do () done

let run_until t limit =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | Some ev when ev.cancelled ->
        (* Discard lazily so a cancelled head cannot make [step] run an
           event beyond [limit]. *)
        ignore (Heap.pop t.queue : event option);
        t.live <- t.live - 1
    | Some ev when ev.at <= limit -> ignore (step t : bool)
    | Some _ | None -> continue := false
  done;
  if limit > t.clock then t.clock <- limit

let run_for t span = run_until t (Time.add t.clock span)
let pending_events t = t.live
let processed_events t = t.processed
