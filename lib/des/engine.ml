type handle = Event_heap.event

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable processed : int;
  mutable synced : int;  (* portion of [processed] already in [grand_total] *)
  mutable post_hook : (unit -> unit) option;
  queue : Event_heap.t;
  rng : Stats.Rng.t;
}

(* Events processed by every engine in the process, across domains.
   Synced in batches at the end of [run]/[run_until] so the hot loop
   never touches the atomic. *)
let grand_total = Atomic.make 0

let sync t =
  let delta = t.processed - t.synced in
  if delta > 0 then begin
    ignore (Atomic.fetch_and_add grand_total delta : int);
    t.synced <- t.processed
  end

let global_processed () = Atomic.get grand_total

let create ?seed () =
  {
    clock = Time.zero;
    seq = 0;
    processed = 0;
    synced = 0;
    post_hook = None;
    queue = Event_heap.create ();
    rng = Stats.Rng.create ?seed ();
  }

let set_post_hook t hook = t.post_hook <- hook

let now t = t.clock
let rng t = t.rng

let schedule_at t at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now %d)" at
         t.clock);
  let ev = Event_heap.schedule t.queue ~at ~seq:t.seq action in
  t.seq <- t.seq + 1;
  ev

let schedule_after t span action =
  schedule_at t (Time.add t.clock (Time.max_span 0 span)) action

let cancel = Event_heap.cancel
let is_pending = Event_heap.is_pending

let step t =
  match Event_heap.pop_live t.queue with
  | None -> false
  | Some ev ->
      t.clock <- ev.Event_heap.at;
      t.processed <- t.processed + 1;
      ev.Event_heap.action ();
      (match t.post_hook with None -> () | Some f -> f ());
      true

let run t =
  while step t do () done;
  sync t

let run_until t limit =
  let continue = ref true in
  while !continue do
    (* [peek_live] discards cancelled heads, so a cancelled head cannot
       make [step] run an event beyond [limit]. *)
    match Event_heap.peek_live t.queue with
    | Some ev when ev.Event_heap.at <= limit -> ignore (step t : bool)
    | Some _ | None -> continue := false
  done;
  if limit > t.clock then t.clock <- limit;
  sync t

let run_for t span = run_until t (Time.add t.clock span)
let pending_events t = Event_heap.live_length t.queue
let processed_events t = t.processed

type stats = {
  processed : int;
  pending : int;
  cancelled : int;
  compactions : int;
  heap_high_water : int;
}

let stats t =
  let hs = Event_heap.stats t.queue in
  {
    processed = t.processed;
    pending = Event_heap.live_length t.queue;
    cancelled = hs.Event_heap.cancelled;
    compactions = hs.Event_heap.compactions;
    heap_high_water = hs.Event_heap.high_water;
  }
