type handle = Event_heap.event
type ('a, 'b) op = int

type t = {
  mutable clock : Time.t;
  mutable seq : int;
  mutable processed : int;
  mutable synced : int;  (* portion of [processed] already in [grand_total] *)
  mutable post_hook : (unit -> unit) option;
  queue : Event_heap.t;
  wheel : Wheel.t;
  rng : Stats.Rng.t;
  mutable handlers : (Obj.t -> Obj.t -> int -> unit) array;
  mutable n_handlers : int;
  cached_ops : int array;  (* per-slot memoized op indices; -1 = unset *)
}

(* Events processed by every engine in the process, across domains.
   Synced in batches at the end of [run]/[run_until] so the hot loop
   never touches the atomic. *)
let grand_total = Atomic.make 0

let sync t =
  let delta = t.processed - t.synced in
  if delta > 0 then begin
    ignore (Atomic.fetch_and_add grand_total delta : int);
    t.synced <- t.processed
  end

let global_processed () = Atomic.get grand_total
let no_handler (_ : Obj.t) (_ : Obj.t) (_ : int) = ()
let slot_timer = 0
let n_cached_slots = 8

let create ?seed () =
  let queue = Event_heap.create () in
  {
    clock = Time.zero;
    seq = 0;
    processed = 0;
    synced = 0;
    post_hook = None;
    queue;
    wheel = Wheel.create queue;
    rng = Stats.Rng.create ?seed ();
    handlers = Array.make 8 no_handler;
    n_handlers = 1;
    (* index 0 = closure dispatch *)
    cached_ops = Array.make n_cached_slots (-1);
  }

let set_post_hook t hook = t.post_hook <- hook
let now t = t.clock
let rng t = t.rng
let never = Event_heap.never

(* The wrapper closure is built once per registration (engine lifetime),
   never per schedule; [Obj.obj] is a no-op cast under the uniform value
   representation, so dispatch costs one array load and one indirect
   call. *)
let register_op (type a b) t (f : a -> b -> int -> unit) : (a, b) op =
  let g (pa : Obj.t) (pb : Obj.t) (arg : int) =
    f (Obj.obj pa) (Obj.obj pb) arg
  in
  let i = t.n_handlers in
  if i = Array.length t.handlers then begin
    let h = Array.make (2 * i) no_handler in
    Array.blit t.handlers 0 h 0 i;
    t.handlers <- h
  end;
  t.handlers.(i) <- g;
  t.n_handlers <- i + 1;
  i

let cached_op t ~slot f =
  let v = t.cached_ops.(slot) in
  if v >= 0 then v
  else begin
    let op = f () in
    t.cached_ops.(slot) <- op;
    op
  end

let schedule_at t at action =
  if at < t.clock then
    invalid_arg
      (Printf.sprintf "Engine.schedule_at: %d is in the past (now %d)" at
         t.clock);
  let ev = Event_heap.schedule t.queue ~at ~seq:t.seq action in
  t.seq <- t.seq + 1;
  ev

let schedule_after t span action =
  schedule_at t (Time.add t.clock (Time.max_span 0 span)) action

(* Timer deadlines are overwhelmingly cancelled and re-armed before they
   come due (election resets, heartbeat re-arms), so they park in the
   timing wheel where cancellation is a free in-place drop.  One-shot
   work — message deliveries, CPU completions — nearly always fires and
   would pay the wheel's flush bookkeeping for nothing, so the plain
   [schedule_at]/[schedule_after] keep it on the heap. *)
let schedule_timer_after t span action =
  let at = Time.add t.clock (Time.max_span 0 span) in
  let ev = Event_heap.make t.queue ~at ~seq:t.seq action in
  t.seq <- t.seq + 1;
  if not (Wheel.insert t.wheel ev) then Event_heap.push_event t.queue ev;
  ev

let[@inline] fill_op ev op a b arg =
  ev.Event_heap.op <- op;
  ev.Event_heap.a <- Obj.repr a;
  ev.Event_heap.b <- Obj.repr b;
  ev.Event_heap.arg <- arg

let schedule_op_at t at op a b arg =
  if at < t.clock then invalid_arg "Engine.schedule_op_at: past deadline";
  let ev = Event_heap.alloc t.queue ~at ~seq:t.seq in
  t.seq <- t.seq + 1;
  fill_op ev op a b arg;
  Event_heap.push_event t.queue ev

let schedule_op_after t span op a b arg =
  schedule_op_at t (Time.add t.clock (Time.max_span 0 span)) op a b arg

let schedule_timer_op t span op a b arg =
  let at = Time.add t.clock (Time.max_span 0 span) in
  let ev = Event_heap.alloc t.queue ~at ~seq:t.seq in
  t.seq <- t.seq + 1;
  fill_op ev op a b arg;
  if not (Wheel.insert t.wheel ev) then Event_heap.push_event t.queue ev;
  ev

let cancel = Event_heap.cancel
let is_pending = Event_heap.is_pending

(* Merged drain: the heap may be popped directly only while its top is
   strictly before every instant the wheel could still owe us; otherwise
   flush wheel slots (preserving each event's original (at, seq)) until
   the ordering is decided by the heap alone.  [next_due_ns] is a lower
   bound, so the comparison errs toward flushing — never toward firing
   a heap event ahead of an earlier wheel event.

   Returns the next live event without removing it ([Event_heap.never]
   when none): allocation-free, and after it returns the event is the
   heap top, so [exec] can [drop_top] it. *)
let rec next_live t =
  let top = Event_heap.top_live t.queue in
  let lb = Wheel.next_due_ns t.wheel in
  if lb = max_int || (top != Event_heap.never && top.Event_heap.at < lb) then
    top
  else begin
    Wheel.flush_next t.wheel;
    next_live t
  end

(* Read the payload into locals, then recycle the event {e before}
   dispatching: the handler may schedule new events, and letting it
   reuse this one keeps the pool at its high-water mark.  Safe because
   handles are forgotten before their event can recycle (see
   [Event_heap.release]). *)
let[@hot] exec t ev =
  Event_heap.drop_top t.queue;
  t.clock <- ev.Event_heap.at;
  t.processed <- t.processed + 1;
  let op = ev.Event_heap.op
  and a = ev.Event_heap.a
  and b = ev.Event_heap.b
  and arg = ev.Event_heap.arg in
  Event_heap.release t.queue ev;
  if op = 0 then (Obj.obj a : unit -> unit) () else t.handlers.(op) a b arg;
  match t.post_hook with None -> () | Some f -> f ()

let step t =
  let ev = next_live t in
  if ev == Event_heap.never then false
  else begin
    exec t ev;
    true
  end

let run t =
  while step t do () done;
  sync t

let run_until t limit =
  let continue = ref true in
  while !continue do
    (* [next_live] discards cancelled heads and surfaces any due wheel
       events, so a cancelled head cannot push the clock beyond
       [limit]. *)
    let ev = next_live t in
    if ev == Event_heap.never || ev.Event_heap.at > limit then
      continue := false
    else exec t ev
  done;
  if limit > t.clock then t.clock <- limit;
  sync t

let run_for t span = run_until t (Time.add t.clock span)

let pending_events t =
  Event_heap.live_length t.queue
  + (Event_heap.stats t.queue).Event_heap.wheel_occupancy

let processed_events t = t.processed

type stats = {
  processed : int;
  pending : int;
  cancelled : int;
  compactions : int;
  heap_high_water : int;
  cancelled_in_place : int;
  cascades : int;
  wheel_occupancy : int;
  wheel_high_water : int;
}

let stats t =
  let hs = Event_heap.stats t.queue in
  {
    processed = t.processed;
    pending = pending_events t;
    cancelled = hs.Event_heap.cancelled;
    compactions = hs.Event_heap.compactions;
    heap_high_water = hs.Event_heap.high_water;
    cancelled_in_place = hs.Event_heap.cancelled_in_place;
    cascades = hs.Event_heap.cascades;
    wheel_occupancy = hs.Event_heap.wheel_occupancy;
    wheel_high_water = hs.Event_heap.wheel_high_water;
  }
