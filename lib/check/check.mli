(** Online correctness analyses for the simulated Raft cluster.

    Three tools in one module:

    - an {e invariant checker} that, hooked after every delivered DES
      event, asserts the five machine-checkable safety properties of the
      Raft paper (Election Safety, Leader Append-Only, Log Matching,
      Leader Completeness, State Machine Safety) plus monotonic
      [currentTerm] / [commitIndex], single-vote-per-term, pre-vote
      non-disruption, and the reconfiguration invariants (at most one
      pending config change, valid single-server steps with overlapping
      quorums between consecutive configs, no electoral power for
      learners), across all servers' observable states;
    - a {e trace digest} ({!Digest}): an order-sensitive FNV-1a hash of
      a cluster's probe trace, used as a determinism sanitizer for the
      domain-sharded campaign runner — identical [(seed, shard plan)]
      must produce bit-identical digests whatever the worker count;
    - structured {!Violation} reporting carrying the invariant name, the
      offending node and term, and the tail of the measurement trace so
      failures are diagnosable without re-running.

    The checker never mutates the cluster: it reads server state through
    the {!node_view} closures, so a deliberately broken state (or a toy
    node fabricated by a test) is checkable without a live cluster. *)

(** {1 Trace digests} *)

module Digest : sig
  type t
  (** A mutable FNV-1a (64-bit) accumulator. *)

  val create : unit -> t

  val feed_string : t -> string -> unit
  val feed_int : t -> int -> unit
  (** Folded in as 8 little-endian bytes. *)

  val feed_int64 : t -> int64 -> unit
  val value : t -> int64

  val of_string : string -> int64

  val combine : int64 list -> int64
  (** Order-sensitive fold of sub-digests (e.g. one per campaign shard,
      in shard order) into one digest. *)
end

(** {1 Checking modes} *)

type mode =
  | Off  (** no checking, no per-event overhead *)
  | Sample
      (** cheap state checks every 64th event, deep (pairwise log
          matching) checks every 8192nd — for long campaigns *)
  | Always
      (** cheap checks after every delivered event, deep checks every
          512th — for tests.  Transition-sensitive checks (pre-vote
          non-disruption) only run in this mode, since they require
          observing every intermediate state. *)

(** {1 Node views} *)

type node_view = {
  id : Netsim.Node_id.t;
  alive : unit -> bool;  (** not paused / crashed *)
  incarnation : unit -> int;
      (** bumped on crash-recovery; volatile baselines reset with it *)
  role : unit -> Raft.Types.role;
  term : unit -> Raft.Types.term;
  commit_index : unit -> Raft.Types.index;
  voted_for : unit -> Netsim.Node_id.t option;
  last_index : unit -> Raft.Types.index;
  snapshot_index : unit -> Raft.Types.index;
  term_at : Raft.Types.index -> Raft.Types.term option;
  entry_at : Raft.Types.index -> Raft.Log.entry option;
  voters : unit -> Netsim.Node_id.t list;
      (** voting members of the server's live configuration *)
  learners : unit -> Netsim.Node_id.t list;
  votes : unit -> Netsim.Node_id.t list;
      (** votes gathered in the current campaign (empty outside one) *)
}
(** What the checker can observe of one server, as closures so that the
    state is re-read at every check (and so tests can fabricate broken
    servers without a cluster). *)

val view_of_node : Raft.Node.t -> node_view
(** The view of a live simulated node; closures follow the node through
    crash-recovery (they always read the current server). *)

(** {1 Violations} *)

type violation = {
  invariant : string;
      (** e.g. ["election-safety"], ["log-matching"]; see DESIGN.md for
          the full list *)
  node : Netsim.Node_id.t option;  (** offending node, when one exists *)
  term : Raft.Types.term;  (** term in which the violation was observed *)
  detail : string;
  recent : string list;
      (** the last [<= 50] trace events (oldest first) before the
          violation, rendered — the context needed to diagnose it *)
  flight : string list;
      (** the flight-recorder dump ({!set_flight_recorder}) captured at
          the instant of the violation: rendered forensics records and
          recorder window, empty when no recorder is installed *)
}

exception Violation of violation

val pp_violation : Format.formatter -> violation -> unit

(** {1 The checker} *)

type t

val create : mode:mode -> nodes:node_view list -> unit -> t
(** A checker over an initial set of servers ({!add_view} grows it).
    The first view's [voters] at creation time seed the configuration
    history replayed by the config invariants.  [mode = Off] turns every
    entry point into a no-op. *)

val add_view : t -> node_view -> unit
(** Track one more server (a node added to the cluster at runtime).
    Subsequent checks cover it like any other. *)

val set_flight_recorder : t -> (unit -> string list) -> unit
(** Install the flight-recorder dump: called (lazily, only when a
    violation is actually raised) to capture the forensics ring tail and
    the recorder window into {!violation.flight}.  Defaults to
    [fun () -> []]. *)

val observe_trace : t -> Raft.Probe.t Des.Mtrace.t -> unit
(** Subscribe to a cluster trace: every probe is recorded into the
    ring buffer reported by violations, and role-change probes feed the
    historical election-safety registry (which sees {e every} leadership
    transition even in [Sample] mode). *)

val step : t -> unit
(** The per-event hook (install via {!Des.Engine.set_post_hook}):
    counts the event and runs the cheap and/or deep checks the mode's
    sampling schedule calls for.  Raises {!Violation} on the first
    broken invariant. *)

val check_now : t -> unit
(** Run the full battery (cheap + deep) immediately, regardless of mode
    and sampling — call at the end of a scenario for a final verdict.
    Raises {!Violation}. *)

val events_seen : t -> int
(** Events observed through {!step} (for sampling diagnostics). *)

val checks_run : t -> int
(** Cheap check passes actually executed. *)
