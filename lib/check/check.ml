module Node_id = Netsim.Node_id
module Types = Raft.Types
module Log = Raft.Log

(* {1 Trace digests} *)

module Digest = struct
  type t = { mutable h : int64 }

  let fnv_offset = 0xCBF29CE484222325L
  let fnv_prime = 0x100000001B3L

  let create () = { h = fnv_offset }

  let feed_byte t b =
    t.h <- Int64.mul (Int64.logxor t.h (Int64.of_int (b land 0xff))) fnv_prime

  let feed_string t s = String.iter (fun c -> feed_byte t (Char.code c)) s

  let feed_int64 t i =
    for shift = 0 to 7 do
      feed_byte t (Int64.to_int (Int64.shift_right_logical i (8 * shift)))
    done

  let feed_int t i = feed_int64 t (Int64.of_int i)
  let value t = t.h

  let of_string s =
    let t = create () in
    feed_string t s;
    value t

  let combine ds =
    let t = create () in
    List.iter (feed_int64 t) ds;
    value t
end

(* {1 Modes and views} *)

type mode = Off | Sample | Always

type node_view = {
  id : Node_id.t;
  alive : unit -> bool;
  incarnation : unit -> int;
  role : unit -> Types.role;
  term : unit -> Types.term;
  commit_index : unit -> Types.index;
  voted_for : unit -> Node_id.t option;
  last_index : unit -> Types.index;
  snapshot_index : unit -> Types.index;
  term_at : Types.index -> Types.term option;
  entry_at : Types.index -> Log.entry option;
  voters : unit -> Node_id.t list;
  learners : unit -> Node_id.t list;
  votes : unit -> Node_id.t list;
}

let view_of_node node =
  (* Read through [Raft.Node.server] on every call: crash-recovery
     replaces the server instance. *)
  let server () = Raft.Node.server node in
  {
    id = Raft.Node.id node;
    alive = (fun () -> not (Raft.Node.is_paused node));
    incarnation = (fun () -> Raft.Node.incarnation node);
    role = (fun () -> Raft.Server.role (server ()));
    term = (fun () -> Raft.Server.term (server ()));
    commit_index = (fun () -> Raft.Server.commit_index (server ()));
    voted_for = (fun () -> Raft.Server.voted_for (server ()));
    last_index = (fun () -> Log.last_index (Raft.Server.log (server ())));
    snapshot_index =
      (fun () -> Log.snapshot_index (Raft.Server.log (server ())));
    term_at = (fun i -> Log.term_at (Raft.Server.log (server ())) i);
    entry_at = (fun i -> Log.entry_at (Raft.Server.log (server ())) i);
    voters = (fun () -> Raft.Server.voters (server ()));
    learners = (fun () -> Raft.Server.learners (server ()));
    votes = (fun () -> Raft.Server.votes (server ()));
  }

(* {1 Violations} *)

type violation = {
  invariant : string;
  node : Node_id.t option;
  term : Types.term;
  detail : string;
  recent : string list;
  flight : string list;
}

exception Violation of violation

let pp_violation ppf v =
  Format.fprintf ppf "@[<v>invariant %s violated" v.invariant;
  (match v.node with
  | Some id -> Format.fprintf ppf " by %a" Node_id.pp id
  | None -> ());
  Format.fprintf ppf " (term %d): %s" v.term v.detail;
  if v.recent <> [] then begin
    Format.fprintf ppf "@,last %d trace events:" (List.length v.recent);
    List.iter (fun line -> Format.fprintf ppf "@,  %s" line) v.recent
  end;
  if v.flight <> [] then begin
    Format.fprintf ppf "@,flight recorder (%d lines):" (List.length v.flight);
    List.iter (fun line -> Format.fprintf ppf "@,  %s" line) v.flight
  end;
  Format.fprintf ppf "@]"

let () =
  Printexc.register_printer (function
    | Violation v -> Some (Format.asprintf "Check.Violation: %a" pp_violation v)
    | _ -> None)

(* {1 Checker state} *)

(* Volatile per-node baselines from the previous check; reset when the
   node's incarnation changes (crash-recovery). *)
type tracked = {
  view : node_view;
  mutable inc : int;
  mutable prev_term : Types.term;
  mutable prev_commit : Types.index;
  mutable prev_role : Types.role;
  mutable prev_vote : Node_id.t option;  (* vote recorded at [prev_term] *)
  mutable registered : Types.index;
      (* committed entries up to here have been folded into [committed] *)
  mutable leader_mark : (Types.term * Types.index * Types.term) option;
      (* (term, last_index, term of last entry) when last seen leading *)
}

let ring_size = 50

type t = {
  mode : mode;
  mutable nodes : tracked array;
  initial_voters : Node_id.t list;
      (* voting membership when the checker was created; committed
         Config entries replay on top of it in the deep check *)
  committed : (Types.index, Types.term * Log.command) Hashtbl.t;
  leaders_by_term : (Types.term, Node_id.t) Hashtbl.t;
  ring : string array;
  mutable ring_len : int;
  mutable ring_next : int;
  mutable events : int;
  mutable checks : int;
  mutable flight_fn : unit -> string list;
      (* snapshots the forensics ring / recorder window at the instant a
         violation is raised; defaults to nothing *)
}

let cheap_every = function Off -> 0 | Sample -> 64 | Always -> 1
let deep_every = function Off -> 0 | Sample -> 8192 | Always -> 512

let tracked_of_view view =
  {
    view;
    inc = view.incarnation ();
    prev_term = view.term ();
    prev_commit = view.commit_index ();
    prev_role = view.role ();
    prev_vote = view.voted_for ();
    registered = view.snapshot_index ();
    leader_mark = None;
  }

let create ~mode ~nodes () =
  {
    mode;
    nodes = Array.of_list (List.map tracked_of_view nodes);
    initial_voters =
      (match nodes with [] -> [] | v :: _ -> v.voters ());
    committed = Hashtbl.create 256;
    leaders_by_term = Hashtbl.create 64;
    ring = Array.make ring_size "";
    ring_len = 0;
    ring_next = 0;
    events = 0;
    checks = 0;
    flight_fn = (fun () -> []);
  }

let add_view t view =
  t.nodes <- Array.append t.nodes [| tracked_of_view view |]

let set_flight_recorder t fn = t.flight_fn <- fn

let events_seen t = t.events
let checks_run t = t.checks

let ring_push t line =
  t.ring.(t.ring_next) <- line;
  t.ring_next <- (t.ring_next + 1) mod ring_size;
  if t.ring_len < ring_size then t.ring_len <- t.ring_len + 1

let ring_contents t =
  List.init t.ring_len (fun i ->
      t.ring.((t.ring_next - t.ring_len + i + ring_size) mod ring_size))

let fail t ~invariant ?node ~term fmt =
  Format.kasprintf
    (fun detail ->
      raise
        (Violation
           {
             invariant;
             node;
             term;
             detail;
             recent = ring_contents t;
             flight = t.flight_fn ();
           }))
    fmt

(* {2 Election safety (historical, probe-driven)} *)

(* The Role_change probe stream is complete even when state checks are
   sampled, so leadership history is checked exactly. *)
let on_probe t time probe =
  ring_push t (Format.asprintf "%a %a" Des.Time.pp time Raft.Probe.pp probe);
  match probe with
  | Raft.Probe.Role_change { id; role = Types.Leader; term } -> (
      match Hashtbl.find_opt t.leaders_by_term term with
      | Some other when not (Node_id.equal other id) ->
          fail t ~invariant:"election-safety" ~node:id ~term
            "second leader elected in term %d: %a was already leader" term
            Node_id.pp other
      | Some _ | None -> Hashtbl.replace t.leaders_by_term term id)
  | Raft.Probe.Role_change _ | Raft.Probe.Timeout_expired _
  | Raft.Probe.Pre_vote_aborted _ | Raft.Probe.Tuner_reset _
  | Raft.Probe.Tuner_decision _ | Raft.Probe.Election_started _
  | Raft.Probe.Node_paused _ | Raft.Probe.Node_resumed _
  | Raft.Probe.Config_change _ | Raft.Probe.Transfer_started _
  | Raft.Probe.Transfer_aborted _ ->
      ()

let observe_trace t trace = Des.Mtrace.subscribe trace (on_probe t)

(* {2 Commit registry: State Machine Safety and Leader Completeness} *)

(* Every index a node's commit point has covered is registered with the
   (term, command) its log holds there.  Two nodes committing different
   entries at one index is exactly a State Machine Safety violation. *)
let scan_commits t tr =
  let v = tr.view in
  let commit = v.commit_index () in
  let snap = v.snapshot_index () in
  (* Entries at or below the snapshot boundary were compacted away; they
     were committed and checked before (or arrived via InstallSnapshot,
     which only covers committed state). *)
  if tr.registered < snap then tr.registered <- snap;
  while tr.registered < commit do
    let i = tr.registered + 1 in
    (match v.entry_at i with
    | None ->
        fail t ~invariant:"state-machine-safety" ~node:v.id ~term:(v.term ())
          "commit index %d covers index %d but the log has no entry there"
          commit i
    | Some e -> (
        match Hashtbl.find_opt t.committed i with
        | Some (tm, cmd) ->
            if tm <> e.Log.term || not (Log.equal_command cmd e.Log.command)
            then
              fail t ~invariant:"state-machine-safety" ~node:v.id
                ~term:(v.term ())
                "index %d committed as (term %d, %s) elsewhere but (term %d, \
                 %s) here"
                i tm (Log.show_command cmd) e.Log.term
                (Log.show_command e.Log.command)
        | None -> Hashtbl.replace t.committed i (e.Log.term, e.Log.command)));
    tr.registered <- i
  done

(* A leader's log must contain every committed entry (Leader
   Completeness; entries at or below its snapshot boundary are
   committed state by construction).

   Only sound for a leader holding the globally highest term: the
   theorem binds leaders of terms {e above} the committing term, so a
   stale leader — paused or partitioned while a successor commits — is
   legitimately incomplete.  Callers enforce the term guard. *)
let leader_completeness t tr =
  let v = tr.view in
  let term = v.term () in
  let snap = v.snapshot_index () in
  let last = v.last_index () in
  Hashtbl.iter
    (fun i (tm, _cmd) ->
      if i > snap then
        if i > last then
          fail t ~invariant:"leader-completeness" ~node:v.id ~term
            "leader's log ends at %d but index %d was committed (term %d)"
            last i tm
        else
          match v.term_at i with
          | Some lt when lt = tm -> ()
          | Some lt ->
              fail t ~invariant:"leader-completeness" ~node:v.id ~term
                "leader holds term %d at index %d but term %d was committed \
                 there"
                lt i tm
          | None ->
              fail t ~invariant:"leader-completeness" ~node:v.id ~term
                "leader's log has no entry at committed index %d" i)
    t.committed

(* {2 Cheap per-node checks} *)

let global_max_term t =
  Array.fold_left (fun acc tr -> Stdlib.max acc (tr.view.term ())) 0 t.nodes

let check_node t ~max_term tr =
  let v = tr.view in
  let inc = v.incarnation () in
  let term = v.term () in
  let role = v.role () in
  if inc <> tr.inc then begin
    (* Crash-recovery: volatile state (role, commit index) legitimately
       reset, but durable state must have survived. *)
    if term < tr.prev_term then
      fail t ~invariant:"term-monotonic" ~node:v.id ~term
        "restart lost the current term: %d persisted, %d after recovery"
        tr.prev_term term;
    tr.inc <- inc;
    tr.prev_commit <- v.commit_index ();
    tr.prev_role <- role;
    tr.prev_vote <- v.voted_for ();
    tr.registered <- v.snapshot_index ();
    tr.leader_mark <- None
  end
  else begin
    if term < tr.prev_term then
      fail t ~invariant:"term-monotonic" ~node:v.id ~term
        "currentTerm went backwards: %d -> %d" tr.prev_term term;
    let commit = v.commit_index () in
    if commit < tr.prev_commit then
      fail t ~invariant:"commit-monotonic" ~node:v.id ~term
        "commitIndex went backwards: %d -> %d" tr.prev_commit commit;
    let vote = v.voted_for () in
    if term = tr.prev_term then begin
      match (tr.prev_vote, vote) with
      | Some a, Some b when not (Node_id.equal a b) ->
          fail t ~invariant:"single-vote" ~node:v.id ~term
            "vote changed within term %d: %a -> %a" term Node_id.pp a
            Node_id.pp b
      | Some a, None ->
          fail t ~invariant:"single-vote" ~node:v.id ~term
            "vote for %a retracted within term %d" Node_id.pp a term
      | (None | Some _), _ -> ()
    end;
    (* Pre-vote must not disturb terms.  Only sound when every event is
       observed: under sampling, a legitimate real candidacy can hide
       between two observations of the same node. *)
    if
      t.mode = Always
      && Types.equal_role role Types.Pre_candidate
      && (not (Types.equal_role tr.prev_role Types.Pre_candidate))
      && term <> tr.prev_term
    then
      fail t ~invariant:"pre-vote-disruption" ~node:v.id ~term
        "term changed %d -> %d while entering the pre-vote phase"
        tr.prev_term term
  end;
  (* Leader Append-Only: while the same node leads in the same term, its
     log may only grow, and what it held at the previous check must
     still be there. *)
  (if Types.equal_role role Types.Leader then begin
     (match tr.leader_mark with
     | Some (lt, li, ltm) when lt = term ->
         let last = v.last_index () in
         if last < li then
           fail t ~invariant:"leader-append-only" ~node:v.id ~term
             "leader's log shrank from %d to %d entries within term %d" li
             last term;
         if li > v.snapshot_index () then (
           match v.term_at li with
           | Some tm when tm = ltm -> ()
           | Some tm ->
               fail t ~invariant:"leader-append-only" ~node:v.id ~term
                 "leader overwrote its own entry at %d (term %d -> %d)" li
                 ltm tm
           | None ->
               fail t ~invariant:"leader-append-only" ~node:v.id ~term
                 "leader's entry at %d disappeared" li)
     | Some _ | None -> ());
     let li = v.last_index () in
     let ltm = Option.value ~default:0 (v.term_at li) in
     tr.leader_mark <- Some (term, li, ltm)
   end
   else tr.leader_mark <- None);
  (* Learners replicate but hold no electoral power: one must never
     lead or campaign, and no candidate may count a learner's vote. *)
  let learners = v.learners () in
  if List.exists (Node_id.equal v.id) learners then begin
    match role with
    | Types.Leader | Types.Candidate | Types.Pre_candidate ->
        fail t ~invariant:"learner-no-vote" ~node:v.id ~term
          "learner %a is campaigning or leading (role %s)" Node_id.pp v.id
          (Types.show_role role)
    | Types.Follower -> ()
  end;
  List.iter
    (fun voter ->
      if List.exists (Node_id.equal voter) learners then
        fail t ~invariant:"learner-no-vote" ~node:v.id ~term
          "candidate %a counted a vote from learner %a" Node_id.pp v.id
          Node_id.pp voter)
    (v.votes ());
  (* Single-server changes only: a leader may carry at most one
     uncommitted Config entry in its log tail. *)
  if Types.equal_role role Types.Leader then begin
    let commit = v.commit_index () in
    let last = v.last_index () in
    let pending = ref 0 in
    for i = commit + 1 to last do
      match v.entry_at i with
      | Some { Log.command = Log.Config _; _ } -> incr pending
      | Some _ | None -> ()
    done;
    if !pending > 1 then
      fail t ~invariant:"single-pending-config" ~node:v.id ~term
        "leader holds %d uncommitted config entries (commit %d, last %d)"
        !pending commit last
  end;
  (* Register fresh commits, then — on a transition into leadership —
     check the new leader holds everything committed so far. *)
  scan_commits t tr;
  if
    Types.equal_role role Types.Leader
    && (not (Types.equal_role tr.prev_role Types.Leader))
    && term >= max_term
  then leader_completeness t tr;
  tr.prev_term <- term;
  tr.prev_commit <- v.commit_index ();
  tr.prev_role <- role;
  tr.prev_vote <- v.voted_for ()

(* At most one live leader per term, from current states (covers toy
   fixtures with no probe stream; the probe registry covers history). *)
let check_concurrent_leaders t =
  let leaders = Hashtbl.create 8 in
  Array.iter
    (fun tr ->
      let v = tr.view in
      if v.alive () && Types.equal_role (v.role ()) Types.Leader then begin
        let term = v.term () in
        match Hashtbl.find_opt leaders term with
        | Some other when not (Node_id.equal other v.id) ->
            fail t ~invariant:"election-safety" ~node:v.id ~term
              "two concurrent leaders in term %d: %a and %a" term Node_id.pp
              other Node_id.pp v.id
        | Some _ | None -> Hashtbl.replace leaders term v.id
      end)
    t.nodes

let cheap_check t =
  t.checks <- t.checks + 1;
  let max_term = global_max_term t in
  Array.iter (check_node t ~max_term) t.nodes;
  check_concurrent_leaders t

(* {2 Deep checks: pairwise Log Matching} *)

(* If two logs agree on the term at some index, they must be identical
   at every index up to and including it. *)
let log_matching t a b =
  let va = a.view and vb = b.view in
  let lo = 1 + Stdlib.max (va.snapshot_index ()) (vb.snapshot_index ()) in
  let hi = Stdlib.min (va.last_index ()) (vb.last_index ()) in
  let rec top_match i =
    if i < lo then None
    else
      match (va.term_at i, vb.term_at i) with
      | Some ta, Some tb when ta = tb -> Some i
      | _ -> top_match (i - 1)
  in
  match top_match hi with
  | None -> ()
  | Some m ->
      for i = lo to m do
        match (va.entry_at i, vb.entry_at i) with
        | Some ea, Some eb when Log.equal_entry ea eb -> ()
        | Some ea, Some eb ->
            fail t ~invariant:"log-matching" ~node:va.id ~term:(va.term ())
              "logs of %a and %a agree at index %d (term %d) but diverge at \
               %d: %s vs %s"
              Node_id.pp va.id Node_id.pp vb.id m
              (Option.value ~default:0 (va.term_at m))
              i (Log.show_entry ea) (Log.show_entry eb)
        | _ ->
            fail t ~invariant:"log-matching" ~node:va.id ~term:(va.term ())
              "logs of %a and %a agree at index %d but an entry below it is \
               missing at %d"
              Node_id.pp va.id Node_id.pp vb.id m i
      done

(* {2 Deep checks: configuration history} *)

(* Replay the committed Config entries, in index order, on top of the
   initial membership.  Each step must be a valid single-server change
   (config-validity), and every voter-set transition must leave the old
   and new quorums overlapping (config-overlap) — the property that
   makes applied-on-append reconfiguration safe. *)
let config_history t =
  if t.initial_voters <> [] then begin
    let module S = Node_id.Set in
    let changes =
      Hashtbl.fold
        (fun i (tm, cmd) acc ->
          match cmd with
          | Log.Config c -> (i, tm, c) :: acc
          | Log.Noop | Log.Data _ -> acc)
        t.committed []
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
    in
    let overlap ~index ~term v1 v2 =
      let q s = (S.cardinal s / 2) + 1 in
      let union = S.cardinal (S.union v1 v2) in
      if q v1 + q v2 <= union then
        fail t ~invariant:"config-overlap" ~term
          "quorums of consecutive configs at index %d do not overlap \
           (|V1|=%d |V2|=%d |V1∪V2|=%d)"
          index (S.cardinal v1) (S.cardinal v2) union
    in
    ignore
      (List.fold_left
         (fun (voters, learners) (index, term, change) ->
           match change with
           | Log.Add_learner id ->
               if S.mem id voters || S.mem id learners then
                 fail t ~invariant:"config-validity" ~node:id ~term
                   "Add_learner at index %d names an existing member" index;
               (voters, S.add id learners)
           | Log.Promote id ->
               if not (S.mem id learners) then
                 fail t ~invariant:"config-validity" ~node:id ~term
                   "Promote at index %d names a non-learner" index;
               let voters' = S.add id voters in
               overlap ~index ~term voters voters';
               (voters', S.remove id learners)
           | Log.Remove id ->
               if S.mem id voters then begin
                 if S.cardinal voters <= 1 then
                   fail t ~invariant:"config-validity" ~node:id ~term
                     "Remove at index %d deletes the last voter" index;
                 let voters' = S.remove id voters in
                 overlap ~index ~term voters voters';
                 (voters', learners)
               end
               else if S.mem id learners then (voters, S.remove id learners)
               else
                 fail t ~invariant:"config-validity" ~node:id ~term
                   "Remove at index %d names a non-member" index)
         (S.of_list t.initial_voters, S.empty)
         changes
        : S.t * S.t)
  end

let deep_check t =
  let n = Array.length t.nodes in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      log_matching t t.nodes.(i) t.nodes.(j)
    done
  done;
  config_history t;
  (* Re-assert completeness for the authoritative leader — live and at
     the globally highest term — so commits registered since its
     election are covered too.  Stale leaders (paused or partitioned
     while a successor commits) are legitimately incomplete. *)
  let max_term = global_max_term t in
  Array.iter
    (fun tr ->
      if
        tr.view.alive ()
        && Types.equal_role (tr.view.role ()) Types.Leader
        && tr.view.term () >= max_term
      then leader_completeness t tr)
    t.nodes

(* {2 Entry points} *)

let step t =
  match t.mode with
  | Off -> ()
  | Sample | Always ->
      t.events <- t.events + 1;
      if t.events mod cheap_every t.mode = 0 then cheap_check t;
      if t.events mod deep_every t.mode = 0 then deep_check t

let check_now t =
  if t.mode <> Off then begin
    cheap_check t;
    deep_check t
  end
