(** The shard router: a KV front door over {!Group_manager}.

    Keys hash-partition onto groups ({!shard_of_key}: FNV-1a mod group
    count — a pure, total, stable function of [(key, groups)]); requests
    go to the key's group through a per-group cached leader hint,
    refreshed by every [`Not_leader] reply, exactly the redirect
    protocol {!Kvsm.Client} speaks. *)

type request =
  | Write of { key : string; value : string }
  | Read of { key : string }
[@@protocol]
(** The front-door protocol.  [[@@protocol]]: matches over these
    constructors may not use a catch-all arm (bin/analyze.exe,
    protocol-wildcard rule). *)

type response =
  | Committed  (** the write committed *)
  | Value of string option  (** linearizable read result *)
  | Failed  (** no leader / leadership lost mid-request *)

type t

val create : Group_manager.t -> t
(** A router with an empty hint cache.  Registers
    [multiraft/router_hint_{hits,misses,refreshes}] counters on the
    manager's telemetry registry. *)

val manager : t -> Group_manager.t

val shard_of_key : groups:int -> string -> int
(** The partition function, exposed pure for property tests.  Raises
    [Invalid_argument] unless [groups > 0]. *)

val group_of_key : t -> string -> int

val hint : t -> int -> Netsim.Node_id.t option
(** The cached leader for a group, if any. *)

val target : t -> Kvsm.Client.target
(** The open-loop client's injection point: decodes the payload's key,
    shard-routes to its group's hinted leader (falling back to a leader
    scan on a cold cache), and learns from the reply.  An undecodable
    payload is answered [`Not_leader None]. *)

val route : t -> Netsim.Node_id.t -> Kvsm.Client.target
(** Redirect follower (the client's [route] parameter): installs the
    hint the reply carried and pins the retry to that node. *)

val dispatch :
  t ->
  request ->
  client_id:int ->
  seq:int ->
  on_result:(response -> unit) ->
  Kvsm.Client.submit_result
(** One-shot front door used by tests and the chaos sweep: [Write]
    submits a [Put] to the key's group ([on_result] fires exactly once,
    immediately on rejection); [Read] runs the group's linearizable
    read and always returns [`Accepted]. *)

(** {2 Cache statistics} *)

val hint_hits : t -> int
val hint_misses : t -> int
val hint_refreshes : t -> int
