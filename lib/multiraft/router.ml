(* The shard-routed front door: hash a key to its group, submit to that
   group's cached leader, and learn from every [`Not_leader] reply.

   The hint cache is one slot per group.  A hit submits directly to the
   cached node (no leader poll); a miss falls back to the group's
   leader scan.  Replies refresh the cache: [`Not_leader (Some h)]
   installs the hint, [`Not_leader None] clears it, and a client
   following redirects through [route] installs the hint it was handed.
   All of it is deterministic — the cache is driven purely by simulated
   replies, so equal schedules yield equal routing. *)

module Node_id = Netsim.Node_id

type request =
  | Write of { key : string; value : string }
  | Read of { key : string }
[@@protocol]

type response = Committed | Value of string option | Failed

type t = {
  manager : Group_manager.t;
  hints : Node_id.t option array;  (* cached leader, one slot per group *)
  c_hits : Telemetry.Metrics.Counter.t;
  c_misses : Telemetry.Metrics.Counter.t;
  c_refreshes : Telemetry.Metrics.Counter.t;
  mutable hits : int;
  mutable misses : int;
  mutable refreshes : int;
}

(* FNV-1a of the key (the digest module's audited implementation),
   folded onto [0, groups).  Pure: a total, stable function of
   (key, groups) — the qcheck property test pins exactly this. *)
let shard_of_key ~groups key =
  if groups <= 0 then invalid_arg "Router.shard_of_key: groups must be positive";
  Int64.to_int
    (Int64.rem
       (Int64.logand (Check.Digest.of_string key) Int64.max_int)
       (Int64.of_int groups))

let create manager =
  let telemetry = Group_manager.telemetry manager in
  let counter name =
    Telemetry.Metrics.counter telemetry ~scope:"multiraft"
      ~name:("router_" ^ name) ()
  in
  {
    manager;
    hints = Array.make (Group_manager.group_count manager) None;
    c_hits = counter "hint_hits";
    c_misses = counter "hint_misses";
    c_refreshes = counter "hint_refreshes";
    hits = 0;
    misses = 0;
    refreshes = 0;
  }

let manager t = t.manager
let group_of_key t key = shard_of_key ~groups:(Group_manager.group_count t.manager) key
let hint t g = t.hints.(g)
let hint_hits t = t.hits
let hint_misses t = t.misses
let hint_refreshes t = t.refreshes

let key_of_command = function
  | Kvsm.Command.Put { key; _ } -> key
  | Kvsm.Command.Get key -> key
  | Kvsm.Command.Delete key -> key
  | Kvsm.Command.Cas { key; _ } -> key

let submit_group t g ~payload ~client_id ~seq ~on_result =
  let cluster = Group_manager.group t.manager g in
  let result =
    match t.hints.(g) with
    | Some id ->
        t.hits <- t.hits + 1;
        Telemetry.Metrics.Counter.incr t.c_hits;
        Harness.Cluster.submit_to cluster id ~payload ~client_id ~seq
          ~on_result
    | None ->
        t.misses <- t.misses + 1;
        Telemetry.Metrics.Counter.incr t.c_misses;
        Harness.Cluster.submit_target cluster ~payload ~client_id ~seq
          ~on_result
  in
  (match result with
  | `Accepted -> (
      match t.hints.(g) with
      | Some _ -> ()
      | None -> (
          (* Learn the leader the fallback scan found. *)
          match Harness.Cluster.leader cluster with
          | Some l -> t.hints.(g) <- Some (Raft.Node.id l)
          | None -> ()))
  | `Not_leader h ->
      t.refreshes <- t.refreshes + 1;
      Telemetry.Metrics.Counter.incr t.c_refreshes;
      t.hints.(g) <- h);
  result

(* The open-loop client's [target]: decode the payload just enough to
   find the key, then shard-route. *)
let target t ~payload ~client_id ~seq ~on_result =
  match Kvsm.Command.of_payload payload with
  | Error _ -> `Not_leader None
  | Ok cmd ->
      let g = group_of_key t (key_of_command cmd) in
      submit_group t g ~payload ~client_id ~seq ~on_result

(* The client's [route]: a [`Not_leader (Some h)] redirect names a
   fabric node, which names its group; install the hint and pin the
   retry to that node. *)
let route t id =
  let g = Group_manager.group_of_node t.manager id in
  t.hints.(g) <- Some id;
  Harness.Cluster.submit_to (Group_manager.group t.manager g) id

let key_of_request = function Write { key; _ } -> key | Read { key } -> key

let dispatch t req ~client_id ~seq ~on_result =
  let g = group_of_key t (key_of_request req) in
  match req with
  | Write { key; value } ->
      let payload = Kvsm.Command.to_payload (Kvsm.Command.Put { key; value }) in
      let result =
        submit_group t g ~payload ~client_id ~seq
          ~on_result:(fun ~committed ->
            on_result (if committed then Committed else Failed))
      in
      (match result with `Accepted -> () | `Not_leader _ -> on_result Failed);
      result
  | Read { key } ->
      Harness.Cluster.linearizable_read (Group_manager.group t.manager g) ~key
        ~on_result:(fun v ->
          match v with
          | Some value -> on_result (Value value)
          | None -> on_result Failed);
      `Accepted
