(* N independent Raft groups on one DES clock and one fabric.

   Each group is a full Harness.Cluster (its own servers, stores, tuners,
   trace, digest and checker) built on shared infrastructure: the
   manager owns the engine, the fabric, the single engine post hook
   (stepping every group's checker), the recorder attachment and the
   one-shot infra metrics collection — exactly the pieces
   [Cluster.create ~shared] declines.  Fabric node ids are the group
   tag: group [g] owns ids [g * replicas .. (g + 1) * replicas - 1], so
   RPC routing through [Raft.Replication.transmit] needs no extra
   envelope and [group_of_node] is one division. *)

module Node_id = Netsim.Node_id

type t = {
  engine : Des.Engine.t;
  fabric : Raft.Rpc.message Netsim.Fabric.t;
  groups : Harness.Cluster.t array;
  replicas : int;
  telemetry : Telemetry.Metrics.t;
  mutable collected : bool;
}

let scope_of_group g = Printf.sprintf "g%d/" g

let create ?seed ?costs ?cores ?conditions ?flush_delay ?(check = Check.Off)
    ?(telemetry = Telemetry.Metrics.noop)
    ?(forensics = Telemetry.Forensics.noop)
    ?(recorder = Telemetry.Recorder.noop) ~groups ~replicas ~config () =
  if groups <= 0 then
    invalid_arg "Group_manager.create: groups must be positive";
  if replicas <= 0 then
    invalid_arg "Group_manager.create: replicas must be positive";
  let engine = Des.Engine.create ?seed () in
  let fabric = Netsim.Fabric.create engine in
  let clusters =
    Array.init groups (fun g ->
        Harness.Cluster.create ?costs ?cores ?conditions ?flush_delay ~check
          ~telemetry ~forensics ~recorder ~scope:(scope_of_group g)
          ~shared:
            {
              Harness.Cluster.sh_engine = engine;
              sh_fabric = fabric;
              sh_first_id = g * replicas;
            }
          ~n:replicas ~config ())
  in
  (* The engine supports one post hook; step every group's checker from
     it, in group order. *)
  let checkers =
    Array.to_list clusters |> List.filter_map Harness.Cluster.checker
  in
  (match checkers with
  | [] -> ()
  | _ :: _ ->
      Des.Engine.set_post_hook engine
        (Some (fun () -> List.iter Check.step checkers)));
  Telemetry.Recorder.attach recorder engine (fun () ->
      Telemetry.Metrics.snapshot telemetry);
  if Telemetry.Metrics.enabled telemetry then begin
    Telemetry.Metrics.Gauge.set
      (Telemetry.Metrics.gauge telemetry ~scope:"multiraft" ~name:"groups" ())
      (float_of_int groups);
    Telemetry.Metrics.Gauge.set
      (Telemetry.Metrics.gauge telemetry ~scope:"multiraft" ~name:"replicas"
         ())
      (float_of_int replicas)
  end;
  {
    engine;
    fabric;
    groups = clusters;
    replicas;
    telemetry;
    collected = false;
  }

let engine t = t.engine
let fabric t = t.fabric
let telemetry t = t.telemetry
let group_count t = Array.length t.groups
let replicas t = t.replicas

let group t g =
  if g < 0 || g >= Array.length t.groups then
    invalid_arg "Group_manager.group: no such group";
  t.groups.(g)

let node_base t g =
  if g < 0 || g >= Array.length t.groups then
    invalid_arg "Group_manager.node_base: no such group";
  g * t.replicas

let group_of_node t id =
  let g = Node_id.to_int id / t.replicas in
  if g < 0 || g >= Array.length t.groups then
    invalid_arg "Group_manager.group_of_node: id outside any group";
  g

let iter_groups t f = Array.iteri f t.groups
let start t = Array.iter Harness.Cluster.start t.groups
let run_for t span = Des.Engine.run_for t.engine span
let now t = Des.Engine.now t.engine

let leaderless t =
  let n = ref 0 in
  Array.iter
    (fun c -> match Harness.Cluster.leader c with None -> incr n | Some _ -> ())
    t.groups;
  !n

let await_leaders t ~timeout =
  let deadline = Des.Time.add (now t) timeout in
  let rec poll () =
    if leaderless t = 0 then true
    else if now t >= deadline then false
    else begin
      Des.Engine.run_until t.engine
        (Stdlib.min deadline (Des.Time.add (now t) (Des.Time.ms 1)));
      poll ()
    end
  in
  poll ()

(* How evenly leadership landed: counts by replica slot (leader id minus
   the group's base), one cell per slot. *)
let leader_distribution t =
  let dist = Array.make t.replicas 0 in
  Array.iteri
    (fun g c ->
      match Harness.Cluster.leader c with
      | None -> ()
      | Some l ->
          let slot = Node_id.to_int (Raft.Node.id l) - (g * t.replicas) in
          if slot >= 0 && slot < t.replicas then
            dist.(slot) <- dist.(slot) + 1)
    t.groups;
  dist

let digest t =
  Check.Digest.combine
    (Array.to_list (Array.map Harness.Cluster.trace_digest t.groups))

let check_now t = Array.iter Harness.Cluster.check_now t.groups

let collect_metrics t =
  if not t.collected then begin
    t.collected <- true;
    Harness.Cluster.collect_infra_metrics ~telemetry:t.telemetry
      ~engine:t.engine ~fabric:t.fabric ()
  end
