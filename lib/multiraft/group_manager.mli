(** N independent Raft groups multiplexed on one DES engine and one
    fabric.

    Each group is a complete {!Harness.Cluster} (servers, KV replicas,
    tuners, trace, digest, optional checker) built on the manager's
    shared infrastructure; the manager owns the singleton pieces a
    shared cluster declines: the engine post hook (one combined hook
    steps every group's checker, in group order), the recorder
    attachment, and the one-shot engine/fabric metrics collection.

    Fabric node ids double as the group tag: group [g] owns ids
    [g * replicas .. (g + 1) * replicas - 1], so every RPC routed
    through {!Raft.Replication.transmit} is implicitly group-addressed
    and {!group_of_node} is a single division — no envelope type, no
    demux table.

    Metrics scopes are prefixed ["g<g>/"] per group (["g3/raft"]), so N
    groups share one {!Telemetry.Metrics.t} without clobbering; the
    manager additionally registers [multiraft/groups] and
    [multiraft/replicas] gauges. *)

type t

val create :
  ?seed:int64 ->
  ?costs:Raft.Cost_model.t ->
  ?cores:float ->
  ?conditions:Netsim.Conditions.t ->
  ?flush_delay:Des.Time.span ->
  ?check:Check.mode ->
  ?telemetry:Telemetry.Metrics.t ->
  ?forensics:Telemetry.Forensics.t ->
  ?recorder:Telemetry.Recorder.t ->
  groups:int ->
  replicas:int ->
  config:Raft.Config.t ->
  unit ->
  t
(** [groups] clusters of [replicas] servers each, every server running
    [config].  [conditions] applies to each group's internal links
    (groups never talk to each other, so cross-group pairs are never
    touched).  [check] creates one checker per group; all are stepped
    from the single engine post hook.  Raises [Invalid_argument] unless
    [groups] and [replicas] are positive. *)

val engine : t -> Des.Engine.t
val fabric : t -> Raft.Rpc.message Netsim.Fabric.t
val telemetry : t -> Telemetry.Metrics.t
val group_count : t -> int
val replicas : t -> int

val group : t -> int -> Harness.Cluster.t
(** The [g]-th group.  Raises [Invalid_argument] when out of range. *)

val node_base : t -> int -> int
(** First fabric node id owned by group [g] (= [g * replicas]). *)

val group_of_node : t -> Netsim.Node_id.t -> int
(** The group owning a fabric node id (for leader hints carried in
    [`Not_leader] replies).  Raises [Invalid_argument] for ids outside
    every group. *)

val iter_groups : t -> (int -> Harness.Cluster.t -> unit) -> unit

val start : t -> unit
(** Start every node of every group. *)

val run_for : t -> Des.Time.span -> unit
val now : t -> Des.Time.t

val leaderless : t -> int
(** Number of groups currently without a live leader. *)

val await_leaders : t -> timeout:Des.Time.span -> bool
(** Run the engine until every group has a leader (millisecond polling)
    or the timeout elapses; [true] when all groups elected. *)

val leader_distribution : t -> int array
(** Leadership placement by replica slot: cell [i] counts the groups
    whose current leader is their [i]-th replica.  Sums to
    [group_count - leaderless]. *)

val digest : t -> int64
(** {!Check.Digest.combine} of the per-group trace digests, in group
    order — the multiraft determinism sanitizer ([--jobs 1] and
    [--jobs N] sweeps must agree). *)

val check_now : t -> unit
(** Run every group's full invariant battery.  Raises
    {!Check.Violation}. *)

val collect_metrics : t -> unit
(** Fold the shared engine/fabric statistics into the registry, once
    (scopes ["des"], ["net"], ["link"], ["fabric"] — unprefixed: the
    infrastructure is global, unlike the per-group ["g<g>/…"] scopes).
    Subsequent calls are no-ops. *)
