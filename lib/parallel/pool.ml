type t = {
  mutex : Mutex.t;
  wake : Condition.t;  (* task available or stop requested *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
}

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.queue && not t.stop do
      Condition.wait t.wake t.mutex
    done;
    match Queue.take_opt t.queue with
    | Some task ->
        Mutex.unlock t.mutex;
        task ();
        loop ()
    | None ->
        (* stop && empty *)
        Mutex.unlock t.mutex
  in
  loop ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [||];
    }
  in
  t.workers <- Array.init domains (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = Array.length t.workers

(* Per-batch completion state; tasks store either a result or the
   exception they died with, so [map] can re-raise deterministically
   (lowest index wins) after the whole batch has drained. *)
let map t f xs =
  let xs = Array.of_list xs in
  let n = Array.length xs in
  if n = 0 then []
  else begin
    let results = Array.make n None in
    let remaining = ref n in
    let done_m = Mutex.create () in
    let done_c = Condition.create () in
    let task i () =
      let r =
        match f xs.(i) with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ())
      in
      Mutex.lock done_m;
      results.(i) <- Some r;
      decr remaining;
      if !remaining = 0 then Condition.signal done_c;
      Mutex.unlock done_m
    in
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.map: pool is shut down"
    end;
    for i = 0 to n - 1 do
      Queue.add (task i) t.queue
    done;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    Mutex.lock done_m;
    while !remaining > 0 do
      Condition.wait done_c done_m
    done;
    Mutex.unlock done_m;
    Array.to_list results
    |> List.map (function
         | Some (Ok v) -> v
         | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
         | None -> assert false)
  end

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.stop <- true;
  t.workers <- [||];
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  Array.iter Domain.join workers
