(** Fixed-size domain pool with a mutex/condvar task queue.

    OCaml 5 multicore without Domainslib: [create ~domains] spawns that
    many worker domains which block on a shared FIFO; [map] fans a batch
    of independent jobs out to them and waits for all results.  The
    caller's domain does not execute tasks, so a campaign wanting J-way
    parallelism on a C-core box should use [J = C - 1] workers (the
    default picked by the benchmark harness).

    Tasks must not share mutable state — the simulator guarantees this
    by giving every shard its own engine, cluster and PRNG streams. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains ([domains >= 1]; raises
    [Invalid_argument] otherwise).  Spawning is cheap (~100 us/domain)
    relative to any campaign, so pools are created per call site and
    shut down with [shutdown] when the batch completes. *)

val size : t -> int
(** Number of worker domains. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] runs [f] on every element on the worker domains and
    returns the results in input order.  If one or more applications
    raise, the remaining tasks still run to completion, then the
    exception of the lowest-indexed failure is re-raised (with its
    backtrace) in the caller; the pool stays usable.  Raises
    [Invalid_argument] if the pool is shut down. *)

val shutdown : t -> unit
(** Join all workers.  Idempotent.  Outstanding tasks are finished
    first; tasks submitted after shutdown raise. *)
