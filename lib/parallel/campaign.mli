(** Deterministic sharding of simulation campaigns across domains.

    A campaign is a batch of [total] independent trials (e.g. leader
    failures to measure) driven by a single root seed.  [sharded]
    splits the batch into at most [jobs] shards; each shard gets a
    quota of trials and an independent seed derived from the campaign
    seed with {!Stats.Rng.derive}, so the plan — and therefore every
    shard's draw sequence — is a pure function of [(seed, jobs,
    total)].  Running the same plan with any worker count, or on any
    machine, produces identical results.

    With [jobs <= 1] the campaign collapses to a single shard whose
    seed is the campaign seed {e unchanged}, executed inline on the
    calling domain: the sequential code path of the pre-sharding
    simulator, bit for bit. *)

type shard = {
  index : int;  (** 0-based shard number. *)
  shards : int;  (** Total number of shards in the plan. *)
  seed : int64;  (** Root seed for this shard's PRNG streams. *)
  quota : int;  (** Number of trials this shard must complete. *)
}

val plan : ?shards:int -> jobs:int -> seed:int64 -> total:int -> unit -> shard list
(** The shard plan that {!sharded} executes, exposed for testing.

    Without [shards], the plan is a function of [(jobs, total)]:
    [jobs <= 1] or [total <= 1] yields the single shard
    [{index = 0; shards = 1; seed; quota = total}]; otherwise there are
    [min jobs total] shards.  With [shards], the shard count is pinned
    to [min shards total] {e independently of [jobs]} — the determinism
    sanitizer uses this to hold the plan (and therefore every trace)
    fixed while varying only the worker count.  In every plan, quotas
    differ by at most one and sum to [total]; a multi-shard plan gives
    shard [i] the seed [Stats.Rng.derive seed i], while a single-shard
    plan keeps the campaign seed unchanged (the sequential code path,
    bit for bit).  Raises [Invalid_argument] if [shards <= 0]. *)

val sharded :
  ?shards:int -> jobs:int -> seed:int64 -> total:int -> f:(shard -> 'a) ->
  unit -> 'a list
(** [sharded ?shards ~jobs ~seed ~total ~f ()] runs [f] on every shard
    of [plan ?shards ~jobs ~seed ~total ()] and returns the results in
    shard order.  Single-shard plans run inline on the calling domain
    (no pool), as does any plan when [jobs <= 1]; otherwise the shards
    fan out over a fresh {!Pool} of [min jobs shards] domains, which is
    shut down before returning. *)

val all : jobs:int -> (unit -> 'a) list -> 'a list
(** [all ~jobs thunks] runs independent thunks — complete scenario
    runs that cannot be subdivided, such as the legs of a parameter
    sweep — and returns their results in order.  [jobs <= 1] or a
    single thunk runs inline sequentially; otherwise the thunks fan
    out over a pool of [min jobs (List.length thunks)] domains. *)
