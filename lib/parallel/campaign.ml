type shard = { index : int; shards : int; seed : int64; quota : int }

let plan ?shards ~jobs ~seed ~total () =
  let count =
    match shards with
    | Some s ->
        if s <= 0 then invalid_arg "Campaign.plan: shards must be positive";
        Stdlib.max 1 (Stdlib.min s total)
    | None -> if jobs <= 1 || total <= 1 then 1 else Stdlib.min jobs total
  in
  if count = 1 then [ { index = 0; shards = 1; seed; quota = total } ]
  else begin
    let base = total / count and extra = total mod count in
    List.init count (fun index ->
        {
          index;
          shards = count;
          seed = Stats.Rng.derive seed index;
          (* First [extra] shards carry one more trial so quotas sum to
             [total]. *)
          quota = (base + if index < extra then 1 else 0);
        })
  end

let sharded ?shards ~jobs ~seed ~total ~f () =
  match plan ?shards ~jobs ~seed ~total () with
  | [ single ] -> [ f single ]
  | plan when jobs <= 1 ->
      (* A pinned shard count with one worker: the same plan, executed
         sequentially — results and traces bit-identical to the pooled
         run. *)
      List.map f plan
  | plan ->
      let pool = Pool.create ~domains:(Stdlib.min jobs (List.length plan)) in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.map pool f plan)

let all ~jobs thunks =
  let n = List.length thunks in
  if jobs <= 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let pool = Pool.create ~domains:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool (fun f -> f ()) thunks)
  end
