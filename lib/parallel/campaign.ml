type shard = { index : int; shards : int; seed : int64; quota : int }

let plan ~jobs ~seed ~total =
  if jobs <= 1 || total <= 1 then [ { index = 0; shards = 1; seed; quota = total } ]
  else begin
    let shards = min jobs total in
    let base = total / shards and extra = total mod shards in
    List.init shards (fun index ->
        {
          index;
          shards;
          seed = Stats.Rng.derive seed index;
          (* First [extra] shards carry one more trial so quotas sum to
             [total]. *)
          quota = (base + if index < extra then 1 else 0);
        })
  end

let sharded ~jobs ~seed ~total ~f =
  match plan ~jobs ~seed ~total with
  | [ single ] -> [ f single ]
  | shards ->
      let pool = Pool.create ~domains:(List.length shards) in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.map pool f shards)

let all ~jobs thunks =
  let n = List.length thunks in
  if jobs <= 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let pool = Pool.create ~domains:(min jobs n) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () -> Pool.map pool (fun f -> f ()) thunks)
  end
