(* The analyzer driver: parse every file, run the rule passes, apply
   the allowlist, and return sorted findings.  Pure — the caller
   (bin/analyze.ml, selfcheck, tests) owns printing and process exit. *)

type file = { path : string; content : string }

type config = {
  entry_dirs : string list;
      (* directories whose values are taint entry points *)
  libraries : (string * string) list;
      (* directory prefix -> wrapper module name *)
  allow : Finding.allow;
}

let default_libraries =
  [
    ("lib/core", "Dynatune");
    ("lib/cluster", "Harness");
    ("lib/des", "Des");
    ("lib/netsim", "Netsim");
    ("lib/raft", "Raft");
    ("lib/kvsm", "Kvsm");
    ("lib/stats", "Stats");
    ("lib/check", "Check");
    ("lib/parallel", "Parallel");
    ("lib/multiraft", "Multiraft");
    ("lib/scenarios", "Scenarios");
    ("lib/telemetry", "Telemetry");
    ("lib/analysis", "Analysis");
  ]

(* The forensics layer (cause allocation, ring appends, recorder
   sampling) rides the hot paths it observes, so its entry points are
   taint roots like the DES/raft ones.  File-level prefixes, not the
   whole directory: the exporters (chrome_trace) legitimately write
   files when asked. *)
let default_entry_dirs =
  [
    "lib/des/";
    "lib/raft/";
    "lib/parallel/";
    "lib/multiraft/";
    "lib/telemetry/cause";
    "lib/telemetry/forensics";
    "lib/telemetry/recorder";
  ]

let default_config ?(allow = []) () =
  { entry_dirs = default_entry_dirs; libraries = default_libraries; allow }

let rules =
  [
    ("parse-error", "the file does not parse, so nothing in it can be checked");
    ( "effect-taint",
      "call path from a DES/raft/parallel/forensics entry point to a banned \
       ambient effect (wall clock, global Random, Sys, I/O), through any \
       number of wrappers" );
    ( "shared-state",
      "top-level mutable value in a module reachable from closures handed \
       to Parallel.Pool/Campaign or Domain.spawn (campaign domains would \
       share it)" );
    ( "protocol-wildcard",
      "catch-all arm in a match over [@@protocol] variant constructors \
       (growing the protocol would be silently swallowed)" );
  ]

let contains path dir =
  let n = String.length path and m = String.length dir in
  let rec go i =
    i + m <= n && (String.equal (String.sub path i m) dir || go (i + 1))
  in
  go 0

let library_of config path =
  match
    List.find_opt (fun (dir, _) -> contains path (dir ^ "/")) config.libraries
  with
  | Some (_, wrapper) -> wrapper
  | None -> ""

let parse_findings (s : Source.t) =
  match s.kind with
  | Source.Broken { line; error } ->
      [ Finding.v ~path:s.path ~line ~rule:"parse-error" error ]
  | Source.Impl _ | Source.Intf _ -> []

let analyze ?config files =
  let config =
    match config with Some c -> c | None -> default_config ()
  in
  let sources =
    List.map
      (fun f ->
        Source.parse ~library:(library_of config f.path) ~path:f.path
          f.content)
      files
  in
  let cg = Callgraph.build sources in
  let exempt_taint path =
    Finding.allowed config.allow ~path ~rule:Effects.rule
  in
  let findings =
    List.concat_map parse_findings sources
    @ Effects.findings ~entry_dirs:config.entry_dirs ~exempt:exempt_taint cg
    @ Shared_state.findings cg sources
    @ Exhaustive.findings sources
  in
  findings
  |> List.filter (fun (f : Finding.t) ->
         not (Finding.allowed config.allow ~path:f.path ~rule:f.rule))
  |> List.sort_uniq Finding.compare
