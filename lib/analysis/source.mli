(** Parsed source files, via the compiler frontend. *)

type kind =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Broken of { line : int; error : string }
      (** the file failed to parse; reported as a finding, never skipped *)

type t = {
  path : string;  (** as given, e.g. ["lib/raft/rpc.ml"] *)
  library : string;  (** wrapper module of the owning library, [""] if none *)
  modname : string;  (** capitalized basename, e.g. ["Rpc"] *)
  kind : kind;
}

val modname_of_path : string -> string

val parse : library:string -> path:string -> string -> t
(** Parse [.ml] as a structure, [.mli] as a signature.  Never raises on
    bad input: syntax and lexing failures yield [Broken]. *)

val line_of_loc : Location.t -> int
(** 1-based start line. *)

val flatten_longident : Longident.t -> string list option
(** Like [Longident.flatten], but [None] on functor-application paths
    instead of raising. *)
