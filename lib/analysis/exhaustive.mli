(** Protocol-match exhaustiveness rule ([protocol-wildcard]).

    Variant types marked [[@@protocol]] (or [[@@dynatune.protocol]]) at
    their declaration are protocol surfaces: RPC messages, log
    commands, membership changes.  A [match]/[function] that names any
    of their constructors and also has an unguarded catch-all arm is
    flagged — the wildcard would silently swallow every variant added
    later. *)

val rule : string

val protocol_constructors : Source.t list -> string list
(** Constructors of marked variant types, minus any name an unmarked
    variant also declares (those cannot be attributed without types). *)

val findings : Source.t list -> Finding.t list
