(* Interprocedural effect taint.

   The determinism contract says simulation code — everything reachable
   from the DES, the Raft protocol, and the parallel campaign runner —
   may not read the wall clock, draw from the global [Random] state,
   query the ambient system, or perform ambient I/O.  The token lint
   catches direct textual uses; this pass catches them through any
   number of local wrappers: it walks the call graph forward from every
   value defined under the entry directories and reports each reached
   value that directly references a banned effect, with the full call
   chain as evidence.

   Files allowlisted for [effect-taint] (e.g. [lib/stats/rng.ml], the
   sanctioned home of randomness primitives) contribute no direct
   effects, which is what keeps their callers untainted. *)

let rule = "effect-taint"

let benign_sys =
  [
    "opaque_identity";
    "word_size";
    "int_size";
    "big_endian";
    "max_string_length";
    "max_array_length";
    "max_floatarray_length";
    "unix";
    "win32";
    "cygwin";
    "backend_type";
    "ocaml_version";
  ]

let io_prims =
  [
    "print_endline";
    "print_string";
    "print_newline";
    "print_int";
    "print_float";
    "print_char";
    "print_bytes";
    "prerr_endline";
    "prerr_string";
    "prerr_newline";
    "prerr_int";
    "prerr_float";
    "prerr_char";
    "prerr_bytes";
    "read_line";
    "read_int";
    "read_int_opt";
    "read_float";
    "read_float_opt";
    "open_in";
    "open_in_bin";
    "open_out";
    "open_out_bin";
    "stdin";
    "stdout";
    "stderr";
  ]

(* [Some category] when the identifier is a banned ambient effect. *)
let rec classify parts =
  match parts with
  | [ "Unix"; ("gettimeofday" | "time") ] -> Some "wall clock"
  | "Unix" :: _ :: _ -> Some "ambient Unix"
  | [ "Sys"; f ] when not (List.mem f benign_sys) -> Some "ambient Sys"
  | "Random" :: _ :: _ -> Some "global Random"
  | [ p ] when List.mem p io_prims -> Some "ambient I/O"
  | [ "Printf"; ("printf" | "eprintf") ]
  | [ "Format"; ("printf" | "eprintf" | "std_formatter" | "err_formatter") ]
    ->
      Some "ambient I/O"
  | "In_channel" :: _ :: _ | "Out_channel" :: _ :: _ -> Some "ambient I/O"
  | "Stdlib" :: (_ :: _ as rest) -> classify rest
  | _ -> None

let findings ~entry_dirs ~exempt (cg : Callgraph.t) =
  let contains path dir =
    let n = String.length path and m = String.length dir in
    let rec go i = i + m <= n && (String.equal (String.sub path i m) dir || go (i + 1)) in
    go 0
  in
  let is_entry path = List.exists (contains path) entry_dirs in
  let roots =
    List.filter (fun (v : Callgraph.value) -> is_entry v.vpath) cg.values
  in
  let walk = Callgraph.reach cg roots in
  let seen = Hashtbl.create 64 in
  List.concat_map
    (fun (v : Callgraph.value) ->
      if exempt v.vpath then []
      else
        List.filter_map
          (fun (parts, line) ->
            match classify parts with
            | None -> None
            | Some category ->
                let effect_name = String.concat "." parts in
                let k = Callgraph.value_key v ^ "!" ^ effect_name in
                if Hashtbl.mem seen k then None
                else begin
                  Hashtbl.replace seen k ();
                  let chain =
                    List.map Callgraph.display (Callgraph.chain walk v)
                    @ [ effect_name ]
                  in
                  Some
                    (Finding.v ~path:v.vpath ~line ~rule
                       (Printf.sprintf
                          "%s reaches banned effect `%s` (%s) from a \
                           DES/raft/parallel entry point: %s"
                          (Callgraph.display v) effect_name category
                          (String.concat " -> " chain)))
                end)
          v.vrefs)
    walk.order
