(* Root module of the [analysis] library — the AST-level determinism
   analyzer (see DESIGN.md §12).  Re-exports the passes and the driver
   entry point. *)

module Finding = Finding
module Source = Source
module Callgraph = Callgraph
module Effects = Effects
module Shared_state = Shared_state
module Exhaustive = Exhaustive
module Driver = Driver

type file = Driver.file = { path : string; content : string }

let analyze = Driver.analyze
let rules = Driver.rules
