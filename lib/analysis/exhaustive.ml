(* Protocol-match exhaustiveness.

   Variant types carrying protocol payloads — RPC messages, log
   commands, membership changes — are marked at their declaration with
   a [[@@protocol]] (or [[@@dynatune.protocol]]) attribute.  A [match]
   (or [function]) that names any of their constructors and also has an
   unguarded catch-all arm ([_] or a variable) would silently swallow
   every variant added later: growing the protocol could drop messages
   with no compiler diagnostic, because the wildcard keeps the match
   exhaustive.  This rule flags that catch-all arm; the fix is to
   enumerate the remaining constructors (warning 8, already an error
   for lib/, then polices future additions).

   Constructor names that are also declared by some unmarked variant
   type are dropped from the trigger set: without type information a
   shared name cannot be attributed to the protocol, and a false fire
   on an unrelated match would teach people to sprinkle allowlist
   entries. *)

let rule = "protocol-wildcard"

let protocol_attr (attr : Parsetree.attribute) =
  match attr.attr_name.Asttypes.txt with
  | "protocol" | "dynatune.protocol" -> true
  | _ -> false

(* (constructor, declared-in-protocol-type) over every variant
   declaration in the tree, implementations and interfaces alike. *)
let constructors (sources : Source.t list) =
  let acc = ref [] in
  let type_declaration self (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Parsetree.Ptype_variant ctors ->
        let marked = List.exists protocol_attr td.ptype_attributes in
        List.iter
          (fun (c : Parsetree.constructor_declaration) ->
            acc := (c.pcd_name.Asttypes.txt, marked) :: !acc)
          ctors
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration self td
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  List.iter
    (fun (s : Source.t) ->
      match s.kind with
      | Source.Impl str -> it.Ast_iterator.structure it str
      | Source.Intf sg -> it.Ast_iterator.signature it sg
      | Source.Broken _ -> ())
    sources;
  !acc

(* Protocol constructors whose name no unmarked variant also declares. *)
let protocol_constructors sources =
  let all = constructors sources in
  List.filter_map
    (fun (name, marked) ->
      if
        marked
        && not
             (List.exists
                (fun (n, m) -> (not m) && String.equal n name)
                all)
      then Some name
      else None)
    all
  |> List.sort_uniq String.compare

let rec unguarded_catch_all (p : Parsetree.pattern) =
  match p.ppat_desc with
  | Parsetree.Ppat_any | Parsetree.Ppat_var _ -> true
  | Parsetree.Ppat_alias (p, _) | Parsetree.Ppat_constraint (p, _) ->
      unguarded_catch_all p
  | Parsetree.Ppat_or (a, b) -> unguarded_catch_all a || unguarded_catch_all b
  | _ -> false

let constructors_in_pattern pat =
  let acc = ref [] in
  let pat_it self (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Parsetree.Ppat_construct (lid, _) -> (
        match Source.flatten_longident lid.Asttypes.txt with
        | Some parts -> (
            match List.rev parts with
            | c :: _ -> acc := c :: !acc
            | [] -> ())
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.pat self p
  in
  let it = { Ast_iterator.default_iterator with pat = pat_it } in
  it.Ast_iterator.pat it pat;
  List.sort_uniq String.compare !acc

let check_cases ~protocol ~path (cases : Parsetree.case list) =
  let mentioned =
    List.concat_map
      (fun (c : Parsetree.case) -> constructors_in_pattern c.pc_lhs)
      cases
    |> List.sort_uniq String.compare
    |> List.filter (fun c -> List.mem c protocol)
  in
  if mentioned = [] then []
  else
    List.filter_map
      (fun (c : Parsetree.case) ->
        if Option.is_none c.pc_guard && unguarded_catch_all c.pc_lhs then
          Some
            (Finding.v ~path
               ~line:(Source.line_of_loc c.pc_lhs.ppat_loc)
               ~rule
               (Printf.sprintf
                  "catch-all arm in a match over protocol constructors (%s) \
                   — a variant added later is silently swallowed; enumerate \
                   the remaining constructors instead"
                  (String.concat ", " mentioned)))
        else None)
      cases

let findings (sources : Source.t list) =
  let protocol = protocol_constructors sources in
  if protocol = [] then []
  else begin
    let acc = ref [] in
    let scan path =
      let expr self (e : Parsetree.expression) =
        (match e.pexp_desc with
        | Parsetree.Pexp_match (_, cases) | Parsetree.Pexp_function cases ->
            acc := check_cases ~protocol ~path cases @ !acc
        | _ -> ());
        Ast_iterator.default_iterator.expr self e
      in
      { Ast_iterator.default_iterator with expr }
    in
    List.iter
      (fun (s : Source.t) ->
        match s.kind with
        | Source.Impl str ->
            let it = scan s.path in
            it.Ast_iterator.structure it str
        | Source.Intf _ | Source.Broken _ -> ())
      sources;
    List.rev !acc
  end
