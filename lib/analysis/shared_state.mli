(** Cross-domain shared-state rule ([shared-state]).

    Flags top-level mutable values (refs, arrays, hash tables, queues,
    buffers, atomics, bytes, records with mutable fields) in any module
    reachable from closures handed to [Parallel.Pool] /
    [Parallel.Campaign] / [Domain.spawn] — those run on other domains,
    and module-level state is process-global. *)

val rule : string

val spawn_function : string list -> bool
(** Is this identifier one of the domain-spawning entry points? *)

val mutable_ctor : string list -> bool
(** Does this identifier allocate mutable state ([ref],
    [Hashtbl.create], [Array.make], [Atomic.make], ...)? *)

val findings : Callgraph.t -> Source.t list -> Finding.t list
