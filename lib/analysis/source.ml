(* One parsed source file.  Parsing uses the vendored compiler frontend
   ([compiler-libs.common]); a file that fails to parse is kept as
   [Broken] so the driver can surface it as a finding instead of
   silently skipping it. *)

type kind =
  | Impl of Parsetree.structure
  | Intf of Parsetree.signature
  | Broken of { line : int; error : string }

type t = {
  path : string;  (* as given, e.g. "lib/raft/rpc.ml" *)
  library : string;  (* wrapper module of the owning library, "" if none *)
  modname : string;  (* capitalized basename, e.g. "Rpc" *)
  kind : kind;
}

let modname_of_path path =
  String.capitalize_ascii Filename.(remove_extension (basename path))

let error_location exn =
  match exn with
  | Syntaxerr.Error err -> Some (Syntaxerr.location_of_error err)
  | Lexer.Error (_, loc) -> Some loc
  | _ -> None

let parse ~library ~path content =
  let lexbuf = Lexing.from_string content in
  Location.init lexbuf path;
  let kind =
    match
      if Filename.check_suffix path ".mli" then Intf (Parse.interface lexbuf)
      else Impl (Parse.implementation lexbuf)
    with
    | parsed -> parsed
    | exception exn ->
        let line =
          match error_location exn with
          | Some loc -> loc.Location.loc_start.Lexing.pos_lnum
          | None -> 1
        in
        let error =
          match exn with
          | Syntaxerr.Error _ -> "syntax error"
          | Lexer.Error _ -> "lexing error"
          | exn -> Printexc.to_string exn
        in
        Broken { line; error }
  in
  { path; library; modname = modname_of_path path; kind }

let line_of_loc (loc : Location.t) = loc.Location.loc_start.Lexing.pos_lnum

(* [Longident.flatten] raises on [Lapply]; the analyzer treats those
   (functor applications in paths) as unresolvable instead. *)
let rec flatten_longident (lid : Longident.t) =
  match lid with
  | Longident.Lident s -> Some [ s ]
  | Longident.Ldot (p, s) ->
      Option.map (fun ps -> ps @ [ s ]) (flatten_longident p)
  | Longident.Lapply _ -> None
