(** Value-level call graph over the parsed tree.

    Nodes are top-level value bindings (nested modules contribute
    dot-prefixed names; module-initialization code pools into a
    per-file ["(init)"] node).  Edges are identifier references,
    resolved same-file first, then same-library module, then
    library-qualified ([Stats.Rng.float]), then unique global module.
    Unresolved references (locals, stdlib, external libraries)
    contribute no edge. *)

type value = {
  vpath : string;  (** file the binding lives in *)
  vlib : string;  (** wrapper module name of its library, [""] if none *)
  vmod : string;  (** module name, e.g. ["Server"] *)
  vname : string;  (** ["f"], ["Sub.g"], or ["(init)"] *)
  vline : int;
  vrefs : (string list * int) list;
      (** every flattened identifier the body references, with its line *)
}

type t = {
  values : value list;  (** in file order, bindings in source order *)
  by_key : (string, value) Hashtbl.t;
  module_file : (string, string) Hashtbl.t;
  mod_paths : (string, string list) Hashtbl.t;
  libraries : (string, unit) Hashtbl.t;
}

val value_key : value -> string
(** Stable node id: [vpath ^ "#" ^ vname]. *)

val display : value -> string
(** ["Raft.Server.tick"]-style name for reports. *)

val init_name : string
(** The pooled module-initialization node name, ["(init)"]. *)

val build : Source.t list -> t

val lookup : t -> path:string -> name:string -> value option

val resolve : t -> path:string -> lib:string -> string list -> value option
(** Resolve a flattened identifier as referenced from a file of library
    [lib]. *)

val callees : t -> value -> (value * int) list
(** Resolved outgoing edges of a value, with the referencing line. *)

type walk = {
  visited : (string, value) Hashtbl.t;
  order : value list;  (** BFS order *)
  parents : (string, string * int) Hashtbl.t;
}

val reach : t -> value list -> walk
(** Forward BFS from the roots; deterministic order. *)

val chain : walk -> value -> value list
(** The discovered call chain from a root down to [v], inclusive. *)

val idents_of_expr : Parsetree.expression -> (string list * int) list
(** All flattened identifiers referenced in an expression. *)

val pattern_names : Parsetree.pattern -> string list
(** All variable names a pattern binds, in source order. *)
