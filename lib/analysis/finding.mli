(** Structured analyzer findings and the [suffix:rule] allowlist.

    The allowlist format is shared with [bin/lint.ml]'s [lint.allow]: one
    [path-suffix:rule-id] per line, [#] comments and blank lines ignored.
    A finding is suppressed when its path ends with the suffix and the
    rule id matches exactly. *)

type t = {
  path : string;  (** path of the file the finding points at *)
  line : int;  (** 1-based line of the offending construct *)
  rule : string;  (** rule id, e.g. ["effect-taint"] *)
  message : string;  (** human-readable explanation, incl. call chains *)
}

val v : path:string -> line:int -> rule:string -> string -> t
val render : t -> string
(** ["path:line: [rule] message"], the same shape [bin/lint.ml] prints. *)

val compare : t -> t -> int
(** Path, then line, then rule, then message. *)

type allow = (string * string) list
(** [(path-suffix, rule-id)] pairs. *)

val parse_allow : string -> (allow, string) result
(** Parse allowlist file contents; [Error line] on a malformed entry. *)

val allowed : allow -> path:string -> rule:string -> bool
