(** AST-level determinism analyzer (DESIGN.md §12).

    Parses every [.ml]/[.mli] into a Parsetree ([compiler-libs.common])
    and runs semantics-aware rules the token lint cannot express:
    interprocedural effect taint from DES/raft/parallel entry points,
    cross-domain shared-state detection, and protocol-match
    exhaustiveness over [[@@protocol]]-marked variants.

    The library is pure: callers ([bin/analyze.ml], selfcheck, tests)
    own file loading, printing and process exit. *)

module Finding = Finding
module Source = Source
module Callgraph = Callgraph
module Effects = Effects
module Shared_state = Shared_state
module Exhaustive = Exhaustive
module Driver = Driver

type file = Driver.file = { path : string; content : string }

val analyze : ?config:Driver.config -> file list -> Finding.t list
val rules : (string * string) list
