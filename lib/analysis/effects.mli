(** Interprocedural effect-taint rule ([effect-taint]).

    Walks the call graph forward from every value defined under the
    entry directories and reports each reached value that directly
    references a banned ambient effect — wall clock, global [Random],
    ambient [Sys], ambient I/O — with the full call chain as evidence. *)

val rule : string

val classify : string list -> string option
(** [Some category] when the flattened identifier is a banned effect. *)

val findings :
  entry_dirs:string list ->
  exempt:(string -> bool) ->
  Callgraph.t ->
  Finding.t list
(** [exempt path] cuts taint at allowlisted files: their direct effect
    references are neither reported nor propagated. *)
