(* A structured finding from the AST analyzer, plus the allowlist that
   suppresses sanctioned hits.  The allowlist shares its format with
   [bin/lint.ml]: one [path-suffix:rule-id] per line, [#] comments and
   blanks ignored; a finding is suppressed when its path ends with the
   suffix and the rule id matches. *)

type t = {
  path : string;  (** path of the file the finding points at *)
  line : int;  (** 1-based line of the offending construct *)
  rule : string;  (** rule id, e.g. ["effect-taint"] *)
  message : string;  (** human-readable explanation, incl. call chains *)
}

let v ~path ~line ~rule message = { path; line; rule; message }

let render t = Printf.sprintf "%s:%d: [%s] %s" t.path t.line t.rule t.message

let compare a b =
  let c = String.compare a.path b.path in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = String.compare a.rule b.rule in
      if c <> 0 then c else String.compare a.message b.message

(* {1 Allowlist} *)

type allow = (string * string) list
(* [(path-suffix, rule-id)] pairs *)

let parse_allow source =
  String.split_on_char '\n' source
  |> List.map String.trim
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  |> List.map (fun l ->
         match String.rindex_opt l ':' with
         | Some c ->
             Ok (String.sub l 0 c, String.sub l (c + 1) (String.length l - c - 1))
         | None -> Error l)
  |> List.fold_left
       (fun acc entry ->
         match (acc, entry) with
         | Error e, _ -> Error e
         | Ok _, Error l -> Error l
         | Ok entries, Ok e -> Ok (e :: entries))
       (Ok [])
  |> Result.map List.rev

let allowed (allow : allow) ~path ~rule =
  List.exists
    (fun (suffix, rule_id) ->
      String.equal rule_id rule && Filename.check_suffix path suffix)
    allow
