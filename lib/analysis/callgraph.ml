(* A per-module value-level call graph over the whole source tree.

   Nodes are top-level value bindings (nested modules contribute
   dot-prefixed names, module-initialization code is pooled into a
   per-file "(init)" node); edges come from every identifier a binding's
   body references, resolved against the tree:

   - [helper]              -> a value of the same file
   - [Rng.float]           -> module [Rng] of the same library, else the
                              unique library that has a module [Rng]
   - [Stats.Rng.float]     -> module [Rng] of library [Stats] (the
                              wrapper name disambiguates, e.g. the two
                              [Config] modules in core and raft)
   - [Node_id.Set.add]     -> nested value ["Set.add"] of [node_id.ml]

   Unresolvable references (locals, parameters, stdlib, external
   libraries) simply contribute no edge: the graph over-approximates
   locally (a local binding shadowing a top-level name still counts as a
   reference to the top-level) and under-approximates globally (calls
   through higher-order parameters are invisible), which is the usual
   static-call-graph trade-off and errs on the side of reporting. *)

type value = {
  vpath : string;  (* file the binding lives in *)
  vlib : string;  (* wrapper module name of its library, "" if none *)
  vmod : string;  (* module name, e.g. "Server" *)
  vname : string;  (* "f", "Sub.g", or "(init)" *)
  vline : int;
  vrefs : (string list * int) list;  (* flattened idents in the body *)
}

type t = {
  values : value list;  (* in file order, bindings in source order *)
  by_key : (string, value) Hashtbl.t;  (* vpath ^ "#" ^ vname *)
  module_file : (string, string) Hashtbl.t;  (* "Lib.Mod" -> .ml path *)
  mod_paths : (string, string list) Hashtbl.t;  (* "Mod" -> .ml paths *)
  libraries : (string, unit) Hashtbl.t;  (* known wrapper names *)
}

let key ~path ~name = path ^ "#" ^ name
let value_key v = key ~path:v.vpath ~name:v.vname

let display v =
  let lib = if v.vlib = "" || v.vlib = v.vmod then "" else v.vlib ^ "." in
  lib ^ v.vmod ^ "." ^ v.vname

(* {1 AST collection} *)

let collect_idents run =
  let acc = ref [] in
  let expr self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Parsetree.Pexp_ident lid -> (
        match Source.flatten_longident lid.Asttypes.txt with
        | Some parts -> acc := (parts, Source.line_of_loc e.pexp_loc) :: !acc
        | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  let it = { Ast_iterator.default_iterator with expr } in
  run it;
  List.rev !acc

let idents_of_expr e = collect_idents (fun it -> it.Ast_iterator.expr it e)

let idents_of_module_expr m =
  collect_idents (fun it -> it.Ast_iterator.module_expr it m)

let pattern_names pat =
  let acc = ref [] in
  let pat_it self (p : Parsetree.pattern) =
    (match p.ppat_desc with
    | Parsetree.Ppat_var name | Parsetree.Ppat_alias (_, name) ->
        acc := name.Asttypes.txt :: !acc
    | _ -> ());
    Ast_iterator.default_iterator.pat self p
  in
  let it = { Ast_iterator.default_iterator with pat = pat_it } in
  it.Ast_iterator.pat it pat;
  List.rev !acc

(* {1 Graph construction} *)

let init_name = "(init)"

type builder = {
  mutable bvalues : value list;  (* reversed *)
  bby_key : (string, value) Hashtbl.t;
}

let add_value b ~path ~lib ~modname ~name ~line refs =
  let k = key ~path ~name in
  match Hashtbl.find_opt b.bby_key k with
  | Some existing ->
      (* several [let () = ...] blocks pool into one (init) node *)
      let merged = { existing with vrefs = existing.vrefs @ refs } in
      Hashtbl.replace b.bby_key k merged;
      b.bvalues <-
        merged :: List.filter (fun v -> value_key v <> k) b.bvalues
  | None ->
      let v =
        {
          vpath = path;
          vlib = lib;
          vmod = modname;
          vname = name;
          vline = line;
          vrefs = refs;
        }
      in
      Hashtbl.replace b.bby_key k v;
      b.bvalues <- v :: b.bvalues

let rec structure_values b ~path ~lib ~modname ~prefix items =
  List.iter
    (fun (item : Parsetree.structure_item) ->
      let line = Source.line_of_loc item.pstr_loc in
      match item.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.iter
            (fun (vb : Parsetree.value_binding) ->
              let names = pattern_names vb.pvb_pat in
              let refs = idents_of_expr vb.pvb_expr in
              let line = Source.line_of_loc vb.pvb_loc in
              match names with
              | [] ->
                  add_value b ~path ~lib ~modname ~name:(prefix ^ init_name)
                    ~line refs
              | names ->
                  List.iter
                    (fun n ->
                      add_value b ~path ~lib ~modname ~name:(prefix ^ n) ~line
                        refs)
                    names)
            vbs
      | Parsetree.Pstr_eval (e, _) ->
          add_value b ~path ~lib ~modname ~name:(prefix ^ init_name) ~line
            (idents_of_expr e)
      | Parsetree.Pstr_module mb -> bind_module b ~path ~lib ~modname ~prefix mb
      | Parsetree.Pstr_recmodule mbs ->
          List.iter (bind_module b ~path ~lib ~modname ~prefix) mbs
      | Parsetree.Pstr_include incl ->
          add_value b ~path ~lib ~modname ~name:(prefix ^ init_name) ~line
            (idents_of_module_expr incl.pincl_mod)
      | _ -> ())
    items

and bind_module b ~path ~lib ~modname ~prefix (mb : Parsetree.module_binding) =
  let line = Source.line_of_loc mb.pmb_loc in
  match mb.pmb_name.Asttypes.txt with
  | Some m -> (
      match mb.pmb_expr.pmod_desc with
      | Parsetree.Pmod_structure items ->
          structure_values b ~path ~lib ~modname ~prefix:(prefix ^ m ^ ".")
            items
      | _ ->
          (* functor / alias / constrained module: one opaque node *)
          add_value b ~path ~lib ~modname ~name:(prefix ^ m) ~line
            (idents_of_module_expr mb.pmb_expr))
  | None ->
      add_value b ~path ~lib ~modname ~name:(prefix ^ init_name) ~line
        (idents_of_module_expr mb.pmb_expr)

let build (sources : Source.t list) =
  let b = { bvalues = []; bby_key = Hashtbl.create 256 } in
  let module_file = Hashtbl.create 64 in
  let mod_paths = Hashtbl.create 64 in
  let libraries = Hashtbl.create 16 in
  List.iter
    (fun (s : Source.t) ->
      match s.kind with
      | Source.Impl items ->
          if s.library <> "" then Hashtbl.replace libraries s.library ();
          Hashtbl.replace module_file (s.library ^ "." ^ s.modname) s.path;
          let prev =
            Option.value ~default:[] (Hashtbl.find_opt mod_paths s.modname)
          in
          Hashtbl.replace mod_paths s.modname (prev @ [ s.path ]);
          structure_values b ~path:s.path ~lib:s.library ~modname:s.modname
            ~prefix:"" items
      | Source.Intf _ | Source.Broken _ -> ())
    sources;
  {
    values = List.rev b.bvalues;
    by_key = b.bby_key;
    module_file;
    mod_paths;
    libraries;
  }

(* {1 Resolution} *)

let lookup t ~path ~name = Hashtbl.find_opt t.by_key (key ~path ~name)

let resolve t ~path ~lib parts =
  match parts with
  | [] -> None
  | [ n ] -> lookup t ~path ~name:n
  | _ -> (
      let rec split = function
        | [ v ] -> ([], v)
        | m :: rest ->
            let ms, v = split rest in
            (m :: ms, v)
        | [] -> assert false
      in
      let mpath, v = split parts in
      let in_file file rest = lookup t ~path:file ~name:(String.concat "." (rest @ [ v ])) in
      match mpath with
      | l :: m :: rest when Hashtbl.mem t.libraries l -> (
          match Hashtbl.find_opt t.module_file (l ^ "." ^ m) with
          | Some file -> in_file file rest
          | None -> None)
      | m :: rest -> (
          match Hashtbl.find_opt t.module_file (lib ^ "." ^ m) with
          | Some file -> in_file file rest
          | None -> (
              match Hashtbl.find_opt t.mod_paths m with
              | Some [ file ] -> in_file file rest
              | Some _ | None -> None))
      | [] -> None)

let callees t v =
  List.filter_map
    (fun (parts, line) ->
      match resolve t ~path:v.vpath ~lib:v.vlib parts with
      | Some callee -> Some (callee, line)
      | None -> None)
    v.vrefs

(* {1 Reachability} *)

type walk = {
  visited : (string, value) Hashtbl.t;
  order : value list;  (* BFS order *)
  parents : (string, string * int) Hashtbl.t;  (* key -> caller key, line *)
}

let reach t roots =
  let visited = Hashtbl.create 256 in
  let parents = Hashtbl.create 256 in
  let order = ref [] in
  let q = Queue.create () in
  List.iter
    (fun v ->
      let k = value_key v in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k v;
        Queue.push v q
      end)
    roots;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    order := v :: !order;
    List.iter
      (fun (callee, line) ->
        let k = value_key callee in
        if not (Hashtbl.mem visited k) then begin
          Hashtbl.replace visited k callee;
          Hashtbl.replace parents k (value_key v, line);
          Queue.push callee q
        end)
      (callees t v)
  done;
  { visited; order = List.rev !order; parents }

let chain walk v =
  let rec up k acc =
    match Hashtbl.find_opt walk.parents k with
    | Some (parent, _) -> up parent (parent :: acc)
    | None -> acc
  in
  List.filter_map
    (fun k -> Hashtbl.find_opt walk.visited k)
    (up (value_key v) [ value_key v ])
