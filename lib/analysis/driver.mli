(** Analyzer driver: parse, run every rule, apply the allowlist. *)

type file = { path : string; content : string }

type config = {
  entry_dirs : string list;
      (** directories whose values are taint entry points *)
  libraries : (string * string) list;
      (** directory prefix -> wrapper module name *)
  allow : Finding.allow;
}

val default_libraries : (string * string) list
(** This repository's layout: [lib/core] -> [Dynatune], [lib/cluster]
    -> [Harness], every other [lib/<d>] -> capitalized [<d>]. *)

val default_entry_dirs : string list
(** [lib/des/], [lib/raft/], [lib/parallel/]. *)

val default_config : ?allow:Finding.allow -> unit -> config

val rules : (string * string) list
(** [(rule-id, one-line doc)] for every rule the driver can emit. *)

val analyze : ?config:config -> file list -> Finding.t list
(** Returns unsuppressed findings, sorted and de-duplicated.  Pure:
    never prints, never exits, never raises on malformed input (parse
    failures come back as [parse-error] findings). *)
