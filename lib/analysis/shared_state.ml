(* Cross-domain shared-state detection.

   Campaign shards run on separate OCaml 5 domains and must share no
   mutable state — every shard owns its engine, cluster and PRNG
   streams.  Top-level mutable values (refs, arrays, hash tables,
   queues, buffers, atomics, records with mutable fields) are
   process-global, so any module reachable from a closure handed to
   [Parallel.Pool.map] / [Parallel.Campaign.sharded] / [Domain.spawn]
   must not define one.

   The pass finds every spawn call site, takes the values referenced in
   its argument expressions as domain roots, walks the call graph
   forward, and flags every top-level mutable binding in a file that
   contains a reached value.  (Flagging the whole file, not just
   reached bindings, is deliberate: once a domain executes any code of
   a module, the module's top-level state is shared.) *)

let rule = "shared-state"

let spawn_function parts =
  match parts with
  | [ "Pool"; ("map" | "create") ]
  | [ "Parallel"; "Pool"; ("map" | "create") ]
  | [ "Campaign"; ("sharded" | "all") ]
  | [ "Parallel"; "Campaign"; ("sharded" | "all") ]
  | [ "Domain"; ("spawn" | "spawn_on") ] ->
      true
  | _ -> false

(* {1 Mutable top-level bindings} *)

let mutable_ctor parts =
  match parts with
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> true
  | [ "Hashtbl"; ("create" | "of_seq" | "copy" | "rebuild") ] -> true
  | [ "Queue"; ("create" | "copy" | "of_seq") ] -> true
  | [ "Stack"; ("create" | "of_seq") ] -> true
  | [ "Buffer"; "create" ] -> true
  | [ "Bytes"; ("create" | "make" | "init" | "of_string" | "copy" | "sub") ]
    ->
      true
  | [
      "Array";
      ( "make" | "init" | "create_float" | "make_matrix" | "of_list" | "copy"
      | "append" | "concat" | "sub" | "map" | "mapi" );
    ] ->
      true
  | [ "Atomic"; "make" ] -> true
  | [ "Weak"; "create" ] -> true
  | [ "Mutex"; "create" ] | [ "Condition"; "create" ] -> true
  | [ "Semaphore"; ("Counting" | "Binary"); "make" ] -> true
  | _ -> false

(* The shape of a right-hand side that allocates mutable state at
   module initialization.  Functions are skipped: a function returning
   a fresh ref is fine.  [field_mutable] answers "is this record-field
   reference a mutable field?" with module-scoped lookup, so a field
   name that is mutable in some unrelated type does not taint every
   record literal in the tree. *)
let rec mutable_shape ~field_mutable (e : Parsetree.expression) =
  match e.pexp_desc with
  | Parsetree.Pexp_apply ({ pexp_desc = Parsetree.Pexp_ident lid; _ }, _) -> (
      match Source.flatten_longident lid.Asttypes.txt with
      | Some parts when mutable_ctor parts ->
          Some (String.concat "." parts)
      | Some _ | None -> None)
  | Parsetree.Pexp_array _ -> Some "array literal"
  | Parsetree.Pexp_record (fields, _) ->
      List.find_map
        (fun ((lid : Longident.t Asttypes.loc), _) ->
          match Source.flatten_longident lid.Asttypes.txt with
          | Some parts when field_mutable parts -> (
              match List.rev parts with
              | f :: _ -> Some ("record with mutable field `" ^ f ^ "`")
              | [] -> None)
          | Some _ | None -> None)
        fields
  | Parsetree.Pexp_tuple es ->
      List.find_map (mutable_shape ~field_mutable) es
  | Parsetree.Pexp_construct (_, Some e)
  | Parsetree.Pexp_constraint (e, _)
  | Parsetree.Pexp_coerce (e, _, _)
  | Parsetree.Pexp_open (_, e)
  | Parsetree.Pexp_letmodule (_, _, e)
  | Parsetree.Pexp_sequence (_, e)
  | Parsetree.Pexp_let (_, _, e) ->
      mutable_shape ~field_mutable e
  | Parsetree.Pexp_ifthenelse (_, a, b) -> (
      match mutable_shape ~field_mutable a with
      | Some s -> Some s
      | None -> Option.bind b (mutable_shape ~field_mutable))
  | _ -> None

(* Mutable record fields (top-level and inline constructor records),
   keyed by the file-level module that declares them — ["Lib.Mod"].
   Implementations and interfaces of the same module merge. *)
type field_table = {
  ft_by_module : (string, string list) Hashtbl.t;  (* "Lib.Mod" -> fields *)
  ft_by_name : (string, string list) Hashtbl.t;  (* "Mod" -> keys *)
  ft_libs : (string, unit) Hashtbl.t;
}

let field_table (sources : Source.t list) =
  let t =
    {
      ft_by_module = Hashtbl.create 64;
      ft_by_name = Hashtbl.create 64;
      ft_libs = Hashtbl.create 16;
    }
  in
  let fields = ref [] in
  let label (ld : Parsetree.label_declaration) =
    match ld.pld_mutable with
    | Asttypes.Mutable -> fields := ld.pld_name.Asttypes.txt :: !fields
    | Asttypes.Immutable -> ()
  in
  let type_declaration self (td : Parsetree.type_declaration) =
    (match td.ptype_kind with
    | Parsetree.Ptype_record labels -> List.iter label labels
    | Parsetree.Ptype_variant ctors ->
        List.iter
          (fun (c : Parsetree.constructor_declaration) ->
            match c.pcd_args with
            | Parsetree.Pcstr_record labels -> List.iter label labels
            | Parsetree.Pcstr_tuple _ -> ())
          ctors
    | _ -> ());
    Ast_iterator.default_iterator.type_declaration self td
  in
  let it = { Ast_iterator.default_iterator with type_declaration } in
  List.iter
    (fun (s : Source.t) ->
      fields := [];
      (match s.kind with
      | Source.Impl str -> it.Ast_iterator.structure it str
      | Source.Intf sg -> it.Ast_iterator.signature it sg
      | Source.Broken _ -> ());
      if !fields <> [] then begin
        let key = s.library ^ "." ^ s.modname in
        if s.library <> "" then Hashtbl.replace t.ft_libs s.library ();
        let prev =
          Option.value ~default:[] (Hashtbl.find_opt t.ft_by_module key)
        in
        Hashtbl.replace t.ft_by_module key
          (List.sort_uniq String.compare (prev @ !fields));
        let keys =
          Option.value ~default:[] (Hashtbl.find_opt t.ft_by_name s.modname)
        in
        if not (List.mem key keys) then
          Hashtbl.replace t.ft_by_name s.modname (keys @ [ key ])
      end)
    sources;
  t

(* Module-scoped field lookup: an unqualified field is looked up in the
   current module; [M.f] in module [M] of the same library, else the
   unique module named [M]; [Lib.M.f] in module [M] of library [Lib]. *)
let field_mutable table ~lib ~modname parts =
  match List.rev parts with
  | [] -> false
  | f :: revmod ->
      let keys =
        match List.rev revmod with
        | [] -> [ lib ^ "." ^ modname ]
        | l :: m :: _ when Hashtbl.mem table.ft_libs l -> [ l ^ "." ^ m ]
        | m :: _ ->
            if Hashtbl.mem table.ft_by_module (lib ^ "." ^ m) then
              [ lib ^ "." ^ m ]
            else
              Option.value ~default:[]
                (Hashtbl.find_opt table.ft_by_name m)
      in
      List.exists
        (fun k ->
          match Hashtbl.find_opt table.ft_by_module k with
          | Some fs -> List.mem f fs
          | None -> false)
        keys

type binding = {
  bpath : string;
  bname : string;
  bline : int;
  bshape : string;  (* e.g. "Hashtbl.create" *)
}

let rec mutable_bindings_of_structure ~field_mutable ~path ~prefix items acc =
  List.fold_left
    (fun acc (item : Parsetree.structure_item) ->
      match item.pstr_desc with
      | Parsetree.Pstr_value (_, vbs) ->
          List.fold_left
            (fun acc (vb : Parsetree.value_binding) ->
              match mutable_shape ~field_mutable vb.pvb_expr with
              | None -> acc
              | Some shape ->
                  let names =
                    match Callgraph.pattern_names vb.pvb_pat with
                    | [] -> [ "_" ]
                    | ns -> ns
                  in
                  List.fold_left
                    (fun acc n ->
                      {
                        bpath = path;
                        bname = prefix ^ n;
                        bline = Source.line_of_loc vb.pvb_loc;
                        bshape = shape;
                      }
                      :: acc)
                    acc names)
            acc vbs
      | Parsetree.Pstr_module
          {
            pmb_name = { Asttypes.txt = Some m; _ };
            pmb_expr = { pmod_desc = Parsetree.Pmod_structure items; _ };
            _;
          } ->
          mutable_bindings_of_structure ~field_mutable ~path
            ~prefix:(prefix ^ m ^ ".") items acc
      | _ -> acc)
    acc items

(* {1 Domain roots} *)

(* Values referenced inside the argument expressions of spawn call
   sites: the closures (and everything they capture) that will run on
   other domains. *)
let spawn_root_refs (sources : Source.t list) =
  let acc = ref [] in
  let record path (args : (Asttypes.arg_label * Parsetree.expression) list) =
    List.iter
      (fun (_, arg) ->
        List.iter
          (fun (parts, _line) -> acc := (path, parts) :: !acc)
          (Callgraph.idents_of_expr arg))
      args
  in
  let expr path self (e : Parsetree.expression) =
    (match e.pexp_desc with
    | Parsetree.Pexp_apply
        ({ pexp_desc = Parsetree.Pexp_ident lid; _ }, args) -> (
        match Source.flatten_longident lid.Asttypes.txt with
        | Some parts when spawn_function parts -> record path args
        | Some _ | None -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr self e
  in
  List.iter
    (fun (s : Source.t) ->
      match s.kind with
      | Source.Impl str ->
          let it =
            { Ast_iterator.default_iterator with expr = expr s.path }
          in
          it.Ast_iterator.structure it str
      | Source.Intf _ | Source.Broken _ -> ())
    sources;
  List.rev !acc

let findings (cg : Callgraph.t) (sources : Source.t list) =
  let lib_of path =
    match
      List.find_opt (fun (s : Source.t) -> String.equal s.path path) sources
    with
    | Some s -> s.library
    | None -> ""
  in
  let roots =
    List.filter_map
      (fun (path, parts) -> Callgraph.resolve cg ~path ~lib:(lib_of path) parts)
      (spawn_root_refs sources)
  in
  let walk = Callgraph.reach cg roots in
  let reached_files =
    List.sort_uniq String.compare
      (List.map (fun (v : Callgraph.value) -> v.vpath) walk.order)
  in
  let table = field_table sources in
  let bindings =
    List.fold_left
      (fun acc (s : Source.t) ->
        match s.kind with
        | Source.Impl str when List.mem s.path reached_files ->
            mutable_bindings_of_structure
              ~field_mutable:
                (field_mutable table ~lib:s.library ~modname:s.modname)
              ~path:s.path ~prefix:"" str acc
        | _ -> acc)
      [] sources
    |> List.rev
  in
  List.map
    (fun b ->
      Finding.v ~path:b.bpath ~line:b.bline ~rule
        (Printf.sprintf
           "top-level mutable value `%s` (%s) in a module reachable from \
            closures handed to Parallel.Pool/Campaign or Domain.spawn — \
            campaign domains would share it; move it into per-shard state"
           b.bname b.bshape))
    bindings
