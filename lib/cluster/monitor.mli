(** Live measurement utilities over a running cluster.

    These implement the paper's observation methodology: per-second
    sampling of the (f+1)-th smallest randomizedTimeout (Fig 6), of the
    applied heartbeat interval (Fig 7a), and reconstruction of
    out-of-service intervals from the role-change trace (the background
    shading of Fig 6). *)

val randomized_timeouts_ms : Cluster.t -> float list
(** Current randomizedTimeout of every non-leader node, ms, unsorted. *)

val majority_randomized_ms : Cluster.t -> float option
(** The (f+1)-th smallest of the above — the value at which a pre-vote
    quorum becomes possible.  [None] when not enough followers. *)

val election_timeout_ms : Cluster.t -> Netsim.Node_id.t -> float
(** Node's current base [Et] (tuned or default). *)

val leader_h_ms : Cluster.t -> follower:Netsim.Node_id.t -> float option
(** The heartbeat interval the current leader applies toward [follower];
    [None] when there is no leader (or the follower {e is} the leader). *)

val gap : float option -> float
(** [None] rendered as [nan] — for plotted time series, where a missing
    sample must become a gap in the curve rather than a point. *)

val has_leader : Cluster.t -> bool

type probe = { name : string; read : Cluster.t -> float }

val watch :
  Cluster.t ->
  every:Des.Time.span ->
  duration:Des.Time.span ->
  probes:probe list ->
  (string * Stats.Timeseries.t) list
(** Advance the simulation by [duration], sampling every probe at the
    given period; returns one time series (times in seconds) per probe.
    NaN samples are recorded as-is (plotted series show gaps). *)

val leaderless_intervals :
  Cluster.t -> from:Des.Time.t -> until:Des.Time.t ->
  (Des.Time.t * Des.Time.t) list
(** Out-of-service intervals within the window, reconstructed from the
    role-change trace.  Requires the trace not to have been cleared since
    before [from], {e and} not capacity-trimmed over the window: replay
    only sees what [Mtrace.events] retains, so clusters measured with
    this must keep the default unbounded trace (see the retention
    contract in {!Des.Mtrace}). *)

val total_ots_ms : Cluster.t -> from:Des.Time.t -> until:Des.Time.t -> float
(** Sum of the leaderless interval lengths in the window. *)
