module Node_id = Netsim.Node_id
module Chrome = Telemetry.Chrome_trace

type t = {
  cluster : Cluster.t;
  sink : Chrome.t;
  pid : int;
  (* The span currently open on each node's Chrome thread, if any.  The
     trace-event format requires B/E pairs to nest per (pid, tid), so a
     role change always closes the previous span before opening the
     next. *)
  open_spans : string Node_id.Table.t;
  mutable finished : bool;
}

(* The election lifecycle as nested-free spans: a follower is "idle"
   (no span), everything else is a phase of seeking or holding
   leadership. *)
let span_of_role = function
  | Raft.Types.Follower -> None
  | Raft.Types.Pre_candidate -> Some "pre-vote"
  | Raft.Types.Candidate -> Some "campaign"
  | Raft.Types.Leader -> Some "leader"

let tid id = Node_id.to_int id

let close_span t ~at id =
  match Node_id.Table.find_opt t.open_spans id with
  | None -> ()
  | Some name ->
      Node_id.Table.remove t.open_spans id;
      Chrome.duration_end t.sink ~name ~pid:t.pid ~tid:(tid id) ~at ()

let open_span t ~at id name ~args =
  Node_id.Table.replace t.open_spans id name;
  Chrome.duration_begin t.sink ~name ~pid:t.pid ~tid:(tid id) ~at ~args ()

let on_probe t at probe =
  if not t.finished then begin
    let id = Raft.Probe.node probe in
    let instant name args =
      Chrome.instant t.sink ~name ~pid:t.pid ~tid:(tid id) ~at ~args ()
    in
    match probe with
    | Raft.Probe.Role_change { role; term; _ } -> begin
        close_span t ~at id;
        match span_of_role role with
        | None -> ()
        | Some name -> open_span t ~at id name ~args:[ ("term", Chrome.Int term) ]
      end
    | Raft.Probe.Timeout_expired { term; randomized; _ } ->
        instant "timeout_expired"
          [
            ("term", Chrome.Int term);
            ("randomized_ms", Chrome.Float (Des.Time.to_ms_f randomized));
          ]
    | Raft.Probe.Pre_vote_aborted { term; _ } ->
        instant "pre_vote_aborted" [ ("term", Chrome.Int term) ]
    | Raft.Probe.Tuner_reset _ -> instant "tuner_reset" []
    | Raft.Probe.Tuner_decision { rtt_ms; rtt_std_ms; loss; k; et; h; reason; _ }
      ->
        instant "tuner_decision"
          [
            ("reason", Chrome.Str (Raft.Probe.reason_name reason));
            ("rtt_ms", Chrome.Float rtt_ms);
            ("rtt_std_ms", Chrome.Float rtt_std_ms);
            ("loss", Chrome.Float loss);
            ("et_ms", Chrome.Float (Des.Time.to_ms_f et));
            ("h_ms", Chrome.Float (Des.Time.to_ms_f h));
            ("k", Chrome.Int k);
          ]
    | Raft.Probe.Election_started { term; _ } ->
        instant "election_started" [ ("term", Chrome.Int term) ]
    | Raft.Probe.Node_paused _ -> instant "node_paused" []
    | Raft.Probe.Node_resumed _ -> instant "node_resumed" []
  end

let attach ?(pid = 1) ?name cluster sink =
  let t =
    {
      cluster;
      sink;
      pid;
      open_spans = Node_id.Table.create 8;
      finished = false;
    }
  in
  (match name with
  | Some n -> Chrome.process_name sink ~pid n
  | None -> ());
  List.iter
    (fun id ->
      Chrome.thread_name sink ~pid ~tid:(tid id)
        ("node " ^ string_of_int (Node_id.to_int id)))
    (Cluster.node_ids cluster);
  Des.Mtrace.subscribe (Cluster.trace cluster) (fun at probe ->
      on_probe t at probe);
  t

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let at = Cluster.now t.cluster in
    List.iter (fun id -> close_span t ~at id) (Cluster.node_ids t.cluster);
    (* Fabric- and link-level tallies as counter tracks, so the trace
       shows where messages were dropped alongside the election spans. *)
    let fc = Netsim.Fabric.counters (Cluster.fabric t.cluster) in
    Chrome.counter t.sink ~name:"fabric" ~pid:t.pid ~tid:0 ~at
      ~values:
        [
          ("sent", float_of_int fc.Netsim.Fabric.sent);
          ("delivered", float_of_int fc.Netsim.Fabric.delivered);
          ("lost", float_of_int fc.Netsim.Fabric.lost);
          ("dropped_paused", float_of_int fc.Netsim.Fabric.dropped_paused);
          ("duplicated", float_of_int fc.Netsim.Fabric.duplicated);
        ]
      ();
    List.iter
      (fun ((src, dst), (lc : Netsim.Link.counters)) ->
        Chrome.counter t.sink
          ~name:(Printf.sprintf "link n%d->n%d" src dst)
          ~pid:t.pid ~tid:0 ~at
          ~values:
            [
              ("sent", float_of_int lc.Netsim.Link.sent);
              ("lost", float_of_int lc.Netsim.Link.lost);
              ("duplicated", float_of_int lc.Netsim.Link.duplicated);
              ("retransmissions", float_of_int lc.Netsim.Link.retransmissions);
            ]
          ())
      (Netsim.Fabric.link_counters (Cluster.fabric t.cluster))
  end
