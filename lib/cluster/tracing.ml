module Node_id = Netsim.Node_id
module Chrome = Telemetry.Chrome_trace

type t = {
  cluster : Cluster.t;
  sink : Chrome.t;
  pid : int;
  (* The span currently open on each node's Chrome thread, if any.  The
     trace-event format requires B/E pairs to nest per (pid, tid), so a
     role change always closes the previous span before opening the
     next. *)
  open_spans : string Node_id.Table.t;
  (* Reconfiguration spans live on synthetic threads (tid 1000 + node)
     so they can overlap the role spans without breaking B/E nesting:
     an in-flight leadership transfer keyed by the old leader, and a
     learner's catch-up window keyed by the learner. *)
  xfer_spans : unit Node_id.Table.t;
  catchup_spans : unit Node_id.Table.t;
  named : unit Node_id.Table.t;  (* threads named so far (nodes join late) *)
  mutable finished : bool;
}

(* The election lifecycle as nested-free spans: a follower is "idle"
   (no span), everything else is a phase of seeking or holding
   leadership. *)
let span_of_role = function
  | Raft.Types.Follower -> None
  | Raft.Types.Pre_candidate -> Some "pre-vote"
  | Raft.Types.Candidate -> Some "campaign"
  | Raft.Types.Leader -> Some "leader"

let tid id = Node_id.to_int id
let reconfig_tid id = 1000 + Node_id.to_int id

let ensure_named t id =
  if not (Node_id.Table.mem t.named id) then begin
    Node_id.Table.add t.named id ();
    Chrome.thread_name t.sink ~pid:t.pid ~tid:(tid id)
      ("node " ^ string_of_int (Node_id.to_int id));
    Chrome.thread_name t.sink ~pid:t.pid ~tid:(reconfig_tid id)
      ("reconfig n" ^ string_of_int (Node_id.to_int id))
  end

let open_reconfig_span t table ~at id name ~args =
  if not (Node_id.Table.mem table id) then begin
    ensure_named t id;
    Node_id.Table.add table id ();
    Chrome.duration_begin t.sink ~name ~pid:t.pid ~tid:(reconfig_tid id) ~at
      ~args ()
  end

let close_reconfig_span t table ~at id name =
  if Node_id.Table.mem table id then begin
    Node_id.Table.remove table id;
    Chrome.duration_end t.sink ~name ~pid:t.pid ~tid:(reconfig_tid id) ~at ()
  end

let close_span t ~at id =
  match Node_id.Table.find_opt t.open_spans id with
  | None -> ()
  | Some name ->
      Node_id.Table.remove t.open_spans id;
      Chrome.duration_end t.sink ~name ~pid:t.pid ~tid:(tid id) ~at ()

let open_span t ~at id name ~args =
  Node_id.Table.replace t.open_spans id name;
  Chrome.duration_begin t.sink ~name ~pid:t.pid ~tid:(tid id) ~at ~args ()

let on_probe t at probe =
  if not t.finished then begin
    let id = Raft.Probe.node probe in
    ensure_named t id;
    let instant name args =
      Chrome.instant t.sink ~name ~pid:t.pid ~tid:(tid id) ~at ~args ()
    in
    match probe with
    | Raft.Probe.Role_change { role; term; _ } -> begin
        (* Any role change on the old leader ends its transfer window
           (on success it steps down when the successor's term
           arrives). *)
        close_reconfig_span t t.xfer_spans ~at id "transfer";
        close_span t ~at id;
        match span_of_role role with
        | None -> ()
        | Some name -> open_span t ~at id name ~args:[ ("term", Chrome.Int term) ]
      end
    | Raft.Probe.Timeout_expired { term; randomized; _ } ->
        instant "timeout_expired"
          [
            ("term", Chrome.Int term);
            ("randomized_ms", Chrome.Float (Des.Time.to_ms_f randomized));
          ]
    | Raft.Probe.Pre_vote_aborted { term; _ } ->
        instant "pre_vote_aborted" [ ("term", Chrome.Int term) ]
    | Raft.Probe.Tuner_reset _ -> instant "tuner_reset" []
    | Raft.Probe.Tuner_decision { rtt_ms; rtt_std_ms; loss; k; et; h; reason; _ }
      ->
        instant "tuner_decision"
          [
            ("reason", Chrome.Str (Raft.Probe.reason_name reason));
            ("rtt_ms", Chrome.Float rtt_ms);
            ("rtt_std_ms", Chrome.Float rtt_std_ms);
            ("loss", Chrome.Float loss);
            ("et_ms", Chrome.Float (Des.Time.to_ms_f et));
            ("h_ms", Chrome.Float (Des.Time.to_ms_f h));
            ("k", Chrome.Int k);
          ]
    | Raft.Probe.Election_started { term; _ } ->
        instant "election_started" [ ("term", Chrome.Int term) ]
    | Raft.Probe.Node_paused _ -> instant "node_paused" []
    | Raft.Probe.Node_resumed _ -> instant "node_resumed" []
    | Raft.Probe.Transfer_started { term; target; _ } ->
        open_reconfig_span t t.xfer_spans ~at id "transfer"
          ~args:
            [
              ("term", Chrome.Int term);
              ("target", Chrome.Int (Node_id.to_int target));
            ]
    | Raft.Probe.Transfer_aborted { term; _ } ->
        close_reconfig_span t t.xfer_spans ~at id "transfer";
        instant "transfer_aborted" [ ("term", Chrome.Int term) ]
    | Raft.Probe.Config_change { index; change; committed; _ } -> (
        instant "config_change"
          [
            ("change", Chrome.Str (Raft.Log.show_change change));
            ("index", Chrome.Int index);
            ("committed", Chrome.Str (if committed then "yes" else "no"));
          ];
        (* The catch-up window runs from the leader appending
           [Add_learner] (committed:false, emitted once) to it
           appending the [Promote] that ends the learner phase. *)
        match (change, committed) with
        | Raft.Log.Add_learner l, false ->
            open_reconfig_span t t.catchup_spans ~at l "catch-up"
              ~args:[ ("index", Chrome.Int index) ]
        | (Raft.Log.Promote l | Raft.Log.Remove l), false ->
            close_reconfig_span t t.catchup_spans ~at l "catch-up"
        | (Raft.Log.Add_learner _ | Raft.Log.Promote _ | Raft.Log.Remove _), _
          ->
            ())
  end

let attach ?(pid = 1) ?name cluster sink =
  let t =
    {
      cluster;
      sink;
      pid;
      open_spans = Node_id.Table.create 8;
      xfer_spans = Node_id.Table.create 4;
      catchup_spans = Node_id.Table.create 4;
      named = Node_id.Table.create 8;
      finished = false;
    }
  in
  (match name with
  | Some n -> Chrome.process_name sink ~pid n
  | None -> ());
  List.iter (ensure_named t) (Cluster.node_ids cluster);
  Des.Mtrace.subscribe (Cluster.trace cluster) (fun at probe ->
      on_probe t at probe);
  t

let finish t =
  if not t.finished then begin
    t.finished <- true;
    let at = Cluster.now t.cluster in
    let keys table = Node_id.Table.fold (fun id _ acc -> id :: acc) table [] in
    List.iter (fun id -> close_span t ~at id) (keys t.open_spans);
    List.iter
      (fun id -> close_reconfig_span t t.xfer_spans ~at id "transfer")
      (keys t.xfer_spans);
    List.iter
      (fun id -> close_reconfig_span t t.catchup_spans ~at id "catch-up")
      (keys t.catchup_spans);
    (* Fabric- and link-level tallies as counter tracks, so the trace
       shows where messages were dropped alongside the election spans. *)
    let fc = Netsim.Fabric.counters (Cluster.fabric t.cluster) in
    Chrome.counter t.sink ~name:"fabric" ~pid:t.pid ~tid:0 ~at
      ~values:
        [
          ("sent", float_of_int fc.Netsim.Fabric.sent);
          ("delivered", float_of_int fc.Netsim.Fabric.delivered);
          ("lost", float_of_int fc.Netsim.Fabric.lost);
          ("dropped_paused", float_of_int fc.Netsim.Fabric.dropped_paused);
          ("duplicated", float_of_int fc.Netsim.Fabric.duplicated);
        ]
      ();
    List.iter
      (fun ((src, dst), (lc : Netsim.Link.counters)) ->
        Chrome.counter t.sink
          ~name:(Printf.sprintf "link n%d->n%d" src dst)
          ~pid:t.pid ~tid:0 ~at
          ~values:
            [
              ("sent", float_of_int lc.Netsim.Link.sent);
              ("lost", float_of_int lc.Netsim.Link.lost);
              ("duplicated", float_of_int lc.Netsim.Link.duplicated);
              ("retransmissions", float_of_int lc.Netsim.Link.retransmissions);
            ]
          ())
      (Netsim.Fabric.link_counters (Cluster.fabric t.cluster));
    (* Replication-engine tallies: the high-water egress queue depth per
       link (only links that ever queued appear) and each node's
       append window occupancy at trace end. *)
    List.iter
      (fun ((src, dst), depth) ->
        Chrome.counter t.sink
          ~name:(Printf.sprintf "egress n%d->n%d" src dst)
          ~pid:t.pid ~tid:0 ~at
          ~values:[ ("queue_depth_hw", float_of_int depth) ]
          ())
      (Netsim.Fabric.link_queue_depths (Cluster.fabric t.cluster));
    Chrome.counter t.sink ~name:"appends_inflight" ~pid:t.pid ~tid:0 ~at
      ~values:
        (List.map
           (fun id ->
             ( Printf.sprintf "n%d" (Node_id.to_int id),
               float_of_int
                 (Raft.Server.appends_inflight
                    (Raft.Node.server (Cluster.node t.cluster id))) ))
           (Cluster.node_ids t.cluster))
      ()
  end
