(** A complete simulated key-value service cluster.

    Bundles the engine, fabric, trace, n Raft nodes (each applying to its
    own KV store replica) and optional CPU modelling — the unit every
    experiment manipulates. *)

type t

type shared = {
  sh_engine : Des.Engine.t;
  sh_fabric : Raft.Rpc.message Netsim.Fabric.t;
  sh_first_id : int;
}
(** Pre-existing infrastructure to build a cluster on, for hosts (the
    multiraft group manager) that run many clusters on one DES clock and
    one fabric.  [sh_first_id] is the first fabric node id this cluster
    owns; it takes ids [sh_first_id .. sh_first_id + n - 1].  A cluster
    built on shared infrastructure does {b not} install the engine post
    hook (the host steps all checkers from one combined hook), does not
    attach the recorder, and leaves engine/fabric statistics collection
    to the host (see {!collect_infra_metrics}). *)

val create :
  ?seed:int64 ->
  ?costs:Raft.Cost_model.t ->
  ?cores:float ->
  ?conditions:Netsim.Conditions.t ->
  ?flush_delay:Des.Time.span ->
  ?check:Check.mode ->
  ?telemetry:Telemetry.Metrics.t ->
  ?forensics:Telemetry.Forensics.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?scope:string ->
  ?shared:shared ->
  n:int ->
  config:Raft.Config.t ->
  unit ->
  t
(** An [n]-server cluster where every server runs [config].  [conditions]
    (default: ideal links) applies to every directed link; per-pair
    overrides can be set afterwards.  When [costs] is given, each node
    gets a CPU with [cores] (default 4., matching the paper's container
    allocation).

    [check] (default {!Check.Off}) runs the online safety-invariant
    checker after every delivered simulation event, on the schedule the
    mode selects; a broken invariant raises {!Check.Violation} out of
    whatever [run_for] / [await_leader] call delivered the event.

    [telemetry] (default {!Telemetry.Metrics.noop}) is handed to every
    node (per-node RPC metrics, tuner-decision probes) and fed per-node
    protocol counters through a live trace subscription; finish with
    {!collect_metrics} to fold in the pull-style engine/fabric/link
    statistics before taking the snapshot.

    [forensics] (default {!Telemetry.Forensics.noop}) is handed to every
    node: causally stamped transition records accumulate in the shared
    ring (see {!Raft.Node.create}).  [recorder] (default
    {!Telemetry.Recorder.noop}) samples the telemetry registry on the
    DES clock.  When either is enabled and checking is on, invariant
    violations carry a flight-recorder dump (ring tail + last recorder
    ticks) in {!Check.violation.flight}.

    [scope] (default [""]) prefixes every metrics scope this cluster
    registers (["raft"] → ["g3/raft"]), so N clusters sharing one
    registry merge without clobbering each other.  [shared] (default:
    none) builds the cluster on a host-owned engine and fabric instead
    of creating its own; [seed] is ignored in that case. *)

val engine : t -> Des.Engine.t
val fabric : t -> Raft.Rpc.message Netsim.Fabric.t
val trace : t -> Raft.Probe.t Des.Mtrace.t

val checker : t -> Check.t option
(** The online invariant checker, when [create] was given a mode other
    than {!Check.Off}. *)

val telemetry : t -> Telemetry.Metrics.t
(** The registry passed at creation ({!Telemetry.Metrics.noop} when none
    was). *)

val forensics : t -> Telemetry.Forensics.t
(** The forensics ring passed at creation ({!Telemetry.Forensics.noop}
    when none was). *)

val recorder : t -> Telemetry.Recorder.t
(** The time-series recorder passed at creation
    ({!Telemetry.Recorder.noop} when none was). *)

val collect_metrics : t -> unit
(** Fold the cumulative engine, fabric and per-link statistics into the
    telemetry registry (scopes ["des"], ["net"], ["link"], ["fabric"],
    each prefixed with the cluster's [scope]).  Call once, at the end of
    the scenario, just before snapshotting; subsequent calls are no-ops.
    No-op when telemetry is disabled, and on shared-infrastructure
    clusters (the host collects once via {!collect_infra_metrics}). *)

val collect_infra_metrics :
  ?scope:string ->
  telemetry:Telemetry.Metrics.t ->
  engine:Des.Engine.t ->
  fabric:Raft.Rpc.message Netsim.Fabric.t ->
  unit ->
  unit
(** The engine/fabric half of {!collect_metrics}, standalone: a
    multiraft host sharing one engine and fabric across N clusters calls
    this exactly once.  Not idempotent — the counters are cumulative, so
    a second call would double them. *)

val check_now : t -> unit
(** Run the checker's full battery immediately (final verdict at the end
    of a scenario).  Raises {!Check.Violation}; no-op when checking is
    off. *)

val trace_digest : t -> int64
(** Order-sensitive FNV-1a digest of every probe emitted on this
    cluster's trace so far (timestamps included).  Accumulated through a
    live subscription, so it is immune to [Mtrace.clear] and usable as a
    determinism sanitizer: equal seeds and schedules must yield equal
    digests. *)

val size : t -> int
val quorum : t -> int

val nodes : t -> Raft.Node.t list
val node : t -> Netsim.Node_id.t -> Raft.Node.t
val node_ids : t -> Netsim.Node_id.t list
val store : t -> Netsim.Node_id.t -> Kvsm.Store.t

val reset_store : t -> Netsim.Node_id.t -> unit
(** Replace a node's KV replica with an empty one (used by the
    crash-restart fault: the state machine is rebuilt by log replay). *)

val start : t -> unit
(** Start every node (arms their election timers). *)

val leader : t -> Raft.Node.t option
(** The live leader: an unpaused node in the [Leader] role; when several
    claim leadership (stale terms), the one with the highest term. *)

val await_leader : t -> timeout:Des.Time.span -> Raft.Node.t option
(** Run the engine until a leader exists (checking at millisecond
    granularity) or the timeout elapses. *)

val set_uniform_conditions : t -> Netsim.Conditions.t -> unit

val set_pair_conditions :
  t -> Netsim.Node_id.t -> Netsim.Node_id.t -> Netsim.Conditions.t -> unit

val partition : t -> Netsim.Node_id.t list list -> unit
(** Network-partition the cluster into groups (see
    {!Netsim.Fabric.partition}). *)

val heal_partition : t -> unit

val submit_target : t -> Kvsm.Client.target
(** A client target that finds the current leader and submits to it. *)

val linearizable_read :
  t -> key:string -> on_result:(string option option -> unit) -> unit
(** Read [key] with linearizable semantics via the ReadIndex protocol:
    [on_result] receives [Some value_opt] once the leader confirms its
    authority (value as of at least the read's registration point), or
    [None] if no leader was available / leadership was lost mid-read. *)

val transfer_leadership : t -> Netsim.Node_id.t -> [ `Ok | `Not_leader ]
(** Ask the current leader to hand off to [target]. *)

(** {2 Dynamic membership}

    Single-server reconfiguration: spin up a fresh node as a learner,
    let the leader promote it once caught up, and retire removed
    servers.  The safety checker (when on) tracks added nodes too. *)

val submit_to : t -> Netsim.Node_id.t -> Kvsm.Client.target
(** A client target pinned to one node (for redirect-following clients:
    pass [submit_to t] as the client's [route]). *)

val reconfigure : t -> Raft.Log.change -> Raft.Server.reconfigure_result
(** Submit a membership change to the current leader. *)

val spawn_joiner : t -> Netsim.Node_id.t
(** Create, register and start a fresh node (next unused id) outside the
    configuration; it joins once a leader's [Add_learner] entry names
    it.  Links to it are created lazily with the fabric's current
    default conditions — set per-pair overrides afterwards. *)

val add_server : t -> Netsim.Node_id.t * Raft.Server.reconfigure_result
(** [spawn_joiner] plus an [Add_learner] submitted to the leader. *)

val remove_server : t -> Netsim.Node_id.t -> Raft.Server.reconfigure_result
(** Submit the removal of a member to the leader.  Once the change
    commits (and, for a leader removing itself, the automatic
    leadership hand-off completes), call {!retire}. *)

val retire : t -> Netsim.Node_id.t -> unit
(** Take a removed server off the air: pause it and deregister it from
    the fabric (in-flight traffic to it is dropped; its links die with
    it).  The member's store remains readable. *)

val await_config_quiet : t -> timeout:Des.Time.span -> bool
(** Run until a leader exists with no pending config change and no
    in-flight leadership transfer (millisecond polling), or time out. *)

val await_voter : t -> Netsim.Node_id.t -> timeout:Des.Time.span -> bool
(** Run until the leader's configuration lists the node as a voter with
    no change pending (i.e. its promotion committed), or time out. *)

val run_for : t -> Des.Time.span -> unit
val now : t -> Des.Time.t
