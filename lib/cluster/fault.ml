module Node_id = Netsim.Node_id

let pause t id = Raft.Node.pause (Cluster.node t id)
let recover t id = Raft.Node.resume (Cluster.node t id)

let crash_and_restart t id ~downtime =
  Raft.Node.crash (Cluster.node t id);
  Cluster.run_for t downtime;
  (* The state machine is volatile below the commit index: recovery
     replays the persisted log into a fresh replica. *)
  Cluster.reset_store t id;
  Raft.Node.restart (Cluster.node t id)

let kill_leader t =
  match Cluster.leader t with
  | None -> None
  | Some l ->
      let id = Raft.Node.id l in
      Raft.Node.pause l;
      Some (id, Cluster.now t)

type failure_outcome = {
  failed : Node_id.t;
  failed_at : Des.Time.t;
  detection_ms : float;
  majority_detection_ms : float;
  randomized_at_detection_ms : float;
  ots_ms : float;
  new_leader : Node_id.t;
  election_rounds : int;
}

(* Scan the trace for the measurements of one failure window. *)
let analyse t ~failed ~failed_at ~new_leader_at ~new_leader =
  let timeouts = ref [] in
  let rounds = ref 0 in
  (* The precise establishment instant is the new leader's Role_change
     probe (the polling loop only brackets it to the millisecond). *)
  let new_leader_at =
    match
      Des.Mtrace.find_first (Cluster.trace t) ~after:failed_at ~f:(function
          | Raft.Probe.Role_change { id; role = Raft.Types.Leader; _ } ->
              not (Node_id.equal id failed)
          | Raft.Probe.Role_change _ | Raft.Probe.Timeout_expired _
          | Raft.Probe.Pre_vote_aborted _ | Raft.Probe.Tuner_reset _
          | Raft.Probe.Tuner_decision _ | Raft.Probe.Election_started _
          | Raft.Probe.Node_paused _ | Raft.Probe.Node_resumed _
          | Raft.Probe.Config_change _ | Raft.Probe.Transfer_started _
          | Raft.Probe.Transfer_aborted _ ->
              false)
    with
    | Some (time, _) -> time
    | None -> new_leader_at
  in
  Des.Mtrace.iter (Cluster.trace t) ~f:(fun time probe ->
      if time > failed_at && time <= new_leader_at then
        match probe with
        | Raft.Probe.Timeout_expired { id; randomized; _ }
          when not (Node_id.equal id failed) ->
            (* Keep each node's first expiry only. *)
            if not (List.exists (fun (i, _, _) -> Node_id.equal i id) !timeouts)
            then timeouts := (id, time, randomized) :: !timeouts
        | Raft.Probe.Election_started _ -> incr rounds
        | Raft.Probe.Timeout_expired _ | Raft.Probe.Role_change _
        | Raft.Probe.Pre_vote_aborted _ | Raft.Probe.Tuner_reset _
        | Raft.Probe.Tuner_decision _ | Raft.Probe.Node_paused _
        | Raft.Probe.Node_resumed _ | Raft.Probe.Config_change _
        | Raft.Probe.Transfer_started _ | Raft.Probe.Transfer_aborted _ ->
            ());
  match List.rev !timeouts with
  | [] -> Error "no follower detected the failure"
  | (_, first_time, first_randomized) :: _ as ordered ->
      let f = Cluster.size t / 2 in
      let majority_time =
        match List.nth_opt ordered f with
        | Some (_, time, _) -> time
        | None -> first_time
      in
      Ok
        {
          failed;
          failed_at;
          detection_ms = Des.Time.to_ms_f (Des.Time.diff first_time failed_at);
          majority_detection_ms =
            Des.Time.to_ms_f (Des.Time.diff majority_time failed_at);
          randomized_at_detection_ms = Des.Time.to_ms_f first_randomized;
          ots_ms = Des.Time.to_ms_f (Des.Time.diff new_leader_at failed_at);
          new_leader;
          election_rounds = !rounds;
        }

let await_new_leader t ~excluding ~limit =
  let deadline = Des.Time.add (Cluster.now t) limit in
  (* As in [Cluster.await_leader]: a 1 ms slice that processed no events
     cannot have changed leadership, so skip the roster scan.  Slice
     cadence (where the engine clock stops) is unchanged. *)
  let engine = Cluster.engine t in
  let last_processed = ref (-1) in
  let rec poll () =
    let processed = Des.Engine.processed_events engine in
    let fresh =
      if processed = !last_processed then None
      else
        match Cluster.leader t with
        | Some l when not (Node_id.equal (Raft.Node.id l) excluding) -> Some l
        | Some _ | None -> None
    in
    last_processed := processed;
    match fresh with
    | Some l -> Some (Raft.Node.id l, Cluster.now t)
    | None ->
        if Cluster.now t >= deadline then None
        else begin
          Des.Engine.run_until (Cluster.engine t)
            (Stdlib.min deadline
               (Des.Time.add (Cluster.now t) (Des.Time.ms 1)));
          poll ()
        end
  in
  poll ()

(* Run until every live follower's tuner has left Step 0 (no-op for
   static configurations), so consecutive failure injections measure the
   tuned steady state rather than the warming fallback. *)
let settle_until_tuned t =
  let tuned_or_static node =
    let server = Raft.Node.server node in
    Raft.Types.is_leader (Raft.Server.role server)
    ||
    match Raft.Server.tuner server with
    | None -> true
    | Some tuner -> Dynatune.Tuner.phase tuner = Dynatune.Tuner.Tuned
  in
  let all_settled () =
    Cluster.leader t <> None
    && List.for_all
         (fun node -> Raft.Node.is_paused node || tuned_or_static node)
         (Cluster.nodes t)
  in
  let deadline = Des.Time.add (Cluster.now t) (Des.Time.sec 60) in
  while (not (all_settled ())) && Cluster.now t < deadline do
    Cluster.run_for t (Des.Time.ms 100)
  done

let fail_and_measure t ?(detect_limit = Des.Time.sec 60) () =
  (* De-correlate the kill instant from the heartbeat schedule: the
     harness's polling loops otherwise land every kill at the same phase
     of the heartbeat period, which biases the detection-time
     distribution. *)
  let jitter =
    Stats.Rng.int (Des.Engine.rng (Cluster.engine t)) (Des.Time.ms 250)
  in
  Cluster.run_for t jitter;
  Des.Mtrace.clear (Cluster.trace t);
  (* The previous iteration can leave the cluster mid-election; wait for
     a leader to exist before injecting the next failure. *)
  let kill =
    match kill_leader t with
    | Some k -> Some k
    | None -> (
        match Cluster.await_leader t ~timeout:detect_limit with
        | Some _ -> kill_leader t
        | None -> None)
  in
  match kill with
  | None -> Error "no leader to kill"
  | Some (failed, failed_at) -> (
      match await_new_leader t ~excluding:failed ~limit:detect_limit with
      | None ->
          recover t failed;
          Error "no new leader elected within the limit"
      | Some (new_leader, new_leader_at) ->
          let outcome =
            analyse t ~failed ~failed_at ~new_leader_at ~new_leader
          in
          recover t failed;
          (* Let the old leader rejoin and the cluster settle before the
             next iteration. *)
          Cluster.run_for t
            (Des.Time.max_span (Des.Time.ms 500)
               (2 * Raft.Config.election_timeout_base
                      (Raft.Server.config
                         (Raft.Node.server (Cluster.node t failed)))));
          (* Under a tuned mode, followers discarded their measurements at
             the failover; wait for them to warm back up (Step 0 → Tuned)
             so the next iteration measures tuned behaviour, as the
             paper's repeated-failure campaign does. *)
          settle_until_tuned t;
          Des.Mtrace.clear (Cluster.trace t);
          outcome)
