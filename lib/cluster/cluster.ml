module Node_id = Netsim.Node_id

type member = { node : Raft.Node.t; mutable store : Kvsm.Store.t }

type t = {
  engine : Des.Engine.t;
  fabric : Raft.Rpc.message Netsim.Fabric.t;
  trace : Raft.Probe.t Des.Mtrace.t;
  members : member Node_id.Table.t;
  ids : Node_id.t list;
  checker : Check.t option;
  digest : Check.Digest.t;
  mutable read_seq : int;  (* sequence numbers for internal read clients *)
}

let create ?seed ?costs ?(cores = 4.) ?conditions ?flush_delay
    ?(check = Check.Off) ~n ~config () =
  if n <= 0 then invalid_arg "Cluster.create: n must be positive";
  let engine = Des.Engine.create ?seed () in
  let fabric = Netsim.Fabric.create engine in
  let trace = Des.Mtrace.create engine in
  let ids = Node_id.range n in
  List.iter (Netsim.Fabric.add_node fabric) ids;
  (match conditions with
  | Some c -> Netsim.Fabric.set_uniform_conditions fabric c
  | None -> ());
  let members = Node_id.Table.create n in
  List.iter
    (fun id ->
      let peers = List.filter (fun p -> not (Node_id.equal p id)) ids in
      let cpu =
        match costs with
        | Some _ -> Some (Netsim.Cpu.create engine ~cores)
        | None -> None
      in
      (* The member record is created first so the apply closure reads the
         store through it: a crash-restart swaps in a fresh replica and
         the replayed log rebuilds it. *)
      let rec member =
        lazy
          {
            node =
              Raft.Node.create ~fabric ~trace ?cpu ?costs
                ~apply:(fun entry ->
                  ignore
                    (Kvsm.Store.apply_entry (Lazy.force member).store entry
                      : Kvsm.Store.result option))
                ~snapshot_of:(fun () ->
                  Kvsm.Store.serialize (Lazy.force member).store)
                ~install_sm:(fun data ->
                  let m = Lazy.force member in
                  match Kvsm.Store.of_serialized data with
                  | Ok store -> m.store <- store
                  | Error _ -> m.store <- Kvsm.Store.create ())
                ?flush_delay ~id ~peers ~config ();
            store = Kvsm.Store.create ();
          }
      in
      Node_id.Table.add members id (Lazy.force member))
    ids;
  (* The digest accumulates online through a subscription, so it survives
     the trace clears the measurement loop performs between failures. *)
  let digest = Check.Digest.create () in
  Des.Mtrace.subscribe trace (fun time probe ->
      Check.Digest.feed_int digest time;
      Check.Digest.feed_string digest (Format.asprintf "%a" Raft.Probe.pp probe));
  let checker =
    match check with
    | Check.Off -> None
    | (Check.Sample | Check.Always) as mode ->
        let views =
          List.map
            (fun id -> Check.view_of_node (Node_id.Table.find members id).node)
            ids
        in
        let c = Check.create ~mode ~nodes:views () in
        Check.observe_trace c trace;
        Des.Engine.set_post_hook engine (Some (fun () -> Check.step c));
        Some c
  in
  { engine; fabric; trace; members; ids; checker; digest; read_seq = 0 }

let engine t = t.engine
let fabric t = t.fabric
let trace t = t.trace
let checker t = t.checker
let trace_digest t = Check.Digest.value t.digest

let check_now t =
  match t.checker with None -> () | Some c -> Check.check_now c
let size t = List.length t.ids
let quorum t = (size t / 2) + 1
let node_ids t = t.ids

let member t id =
  match Node_id.Table.find_opt t.members id with
  | Some m -> m
  | None -> invalid_arg "Cluster: unknown node id"

let node t id = (member t id).node
let store t id = (member t id).store

let reset_store t id =
  let m = member t id in
  m.store <- Kvsm.Store.create ()
let nodes t = List.map (fun id -> node t id) t.ids

let start t = List.iter Raft.Node.start (nodes t)

let leader t =
  let candidates =
    List.filter
      (fun n ->
        (not (Raft.Node.is_paused n))
        && Raft.Types.is_leader (Raft.Server.role (Raft.Node.server n)))
      (nodes t)
  in
  let compare_terms a b =
    compare
      (Raft.Server.term (Raft.Node.server b))
      (Raft.Server.term (Raft.Node.server a))
  in
  match List.sort compare_terms candidates with [] -> None | l :: _ -> Some l

let run_for t span = Des.Engine.run_for t.engine span
let now t = Des.Engine.now t.engine

let await_leader t ~timeout =
  let deadline = Des.Time.add (now t) timeout in
  let rec poll () =
    match leader t with
    | Some l -> Some l
    | None ->
        if now t >= deadline then None
        else begin
          Des.Engine.run_until t.engine
            (Stdlib.min deadline (Des.Time.add (now t) (Des.Time.ms 1)));
          poll ()
        end
  in
  poll ()

let set_uniform_conditions t c = Netsim.Fabric.set_uniform_conditions t.fabric c

let set_pair_conditions t a b c =
  Netsim.Fabric.set_pair_conditions t.fabric a b c

let partition t groups = Netsim.Fabric.partition t.fabric groups
let heal_partition t = Netsim.Fabric.heal_partition t.fabric

let submit_target t ~payload ~client_id ~seq ~on_result =
  match leader t with
  | None -> `Not_leader None
  | Some l -> Raft.Node.submit l ~payload ~client_id ~seq ~on_result ()

(* Reads use a reserved client id far outside the test/benchmark range. *)
let read_client_id = -1

let linearizable_read t ~key ~on_result =
  match leader t with
  | None -> on_result None
  | Some l -> (
      t.read_seq <- t.read_seq + 1;
      let leader_id = Raft.Node.id l in
      match
        Raft.Node.read l ~client_id:read_client_id ~seq:t.read_seq
          ~on_result:(fun ~committed ->
            if committed then
              (* The leader's replica is linearizable at this instant. *)
              on_result (Some (Kvsm.Store.find (store t leader_id) key))
            else on_result None)
          ()
      with
      | `Accepted -> ()
      | `Not_leader _ -> on_result None)

let transfer_leadership t target =
  match leader t with
  | None -> `Not_leader
  | Some l -> Raft.Node.transfer_leadership l target
