module Node_id = Netsim.Node_id

type member = { node : Raft.Node.t; mutable store : Kvsm.Store.t }

type shared = {
  sh_engine : Des.Engine.t;
  sh_fabric : Raft.Rpc.message Netsim.Fabric.t;
  sh_first_id : int;
}

type t = {
  engine : Des.Engine.t;
  fabric : Raft.Rpc.message Netsim.Fabric.t;
  trace : Raft.Probe.t Des.Mtrace.t;
  members : member Node_id.Table.t;
  mutable ids : Node_id.t list;  (* live membership, in join order *)
  mutable roster : member array;
      (* [members] in join order, rebuilt on membership change: the
         leader poll scans this without hashing *)
  checker : Check.t option;
  digest : Check.Digest.t;
  telemetry : Telemetry.Metrics.t;
  forensics : Telemetry.Forensics.t;
  recorder : Telemetry.Recorder.t;
  pool : Raft.Rpc.Pool.t;
      (* one message free-list for the whole group, so a record released
         at its receiver refills the sender's next allocation *)
  (* Creation parameters, kept so [add_server] can build members later. *)
  costs : Raft.Cost_model.t option;
  cores : float;
  flush_delay : Des.Time.span option;
  config : Raft.Config.t;
  scope : string;  (* metrics-scope prefix, e.g. "g3/" under multiraft *)
  owns_infra : bool;
      (* false when engine/fabric are shared with other clusters: the
         host (the multiraft manager) owns the post hook, the recorder
         attachment and the infra metrics collection *)
  mutable next_id : int;  (* next fresh id for [add_server] *)
  mutable collected : bool;  (* [collect_metrics] already ran *)
  mutable read_seq : int;  (* sequence numbers for internal read clients *)
}

let node_label id = "n" ^ string_of_int (Node_id.to_int id)

let roster_of ~members ~ids =
  Array.of_list (List.map (fun id -> Node_id.Table.find members id) ids)

(* Per-node protocol counters, filled through a live trace subscription
   so they survive the measurement loop's [Mtrace.clear]s. *)
type probe_counters = {
  c_timeouts : Telemetry.Metrics.Counter.t;
  c_elections : Telemetry.Metrics.Counter.t;
  c_prevote_aborts : Telemetry.Metrics.Counter.t;
  c_tuner_resets : Telemetry.Metrics.Counter.t;
  c_tuner_decisions : Telemetry.Metrics.Counter.t;
  c_leader_wins : Telemetry.Metrics.Counter.t;
}

let attach_probe_counters ~scope telemetry trace =
  if Telemetry.Metrics.enabled telemetry then begin
    let raft_scope = scope ^ "raft" in
    (* Group-level churn counter: one per cluster, not per node, so a
       multiraft host can read leader stability per group at a glance. *)
    let c_leader_changes =
      Telemetry.Metrics.counter telemetry ~scope:raft_scope
        ~name:"leader_changes" ()
    in
    let tbl = Node_id.Table.create 8 in
    let handles id =
      match Node_id.Table.find_opt tbl id with
      | Some h -> h
      | None ->
          let node = node_label id in
          let counter name =
            Telemetry.Metrics.counter telemetry ~scope:raft_scope ~name ~node
              ()
          in
          let h =
            {
              c_timeouts = counter "timeouts";
              c_elections = counter "elections";
              c_prevote_aborts = counter "prevote_aborts";
              c_tuner_resets = counter "tuner_resets";
              c_tuner_decisions = counter "tuner_decisions";
              c_leader_wins = counter "leader_wins";
            }
          in
          Node_id.Table.add tbl id h;
          h
    in
    Des.Mtrace.subscribe trace (fun _time probe ->
        let h = handles (Raft.Probe.node probe) in
        match probe with
        | Raft.Probe.Timeout_expired _ ->
            Telemetry.Metrics.Counter.incr h.c_timeouts
        | Raft.Probe.Election_started _ ->
            Telemetry.Metrics.Counter.incr h.c_elections
        | Raft.Probe.Pre_vote_aborted _ ->
            Telemetry.Metrics.Counter.incr h.c_prevote_aborts
        | Raft.Probe.Tuner_reset _ ->
            Telemetry.Metrics.Counter.incr h.c_tuner_resets
        | Raft.Probe.Tuner_decision _ ->
            Telemetry.Metrics.Counter.incr h.c_tuner_decisions
        | Raft.Probe.Role_change { role = Raft.Types.Leader; _ } ->
            Telemetry.Metrics.Counter.incr h.c_leader_wins;
            Telemetry.Metrics.Counter.incr c_leader_changes
        | Raft.Probe.Role_change _ | Raft.Probe.Node_paused _
        | Raft.Probe.Node_resumed _ | Raft.Probe.Config_change _
        | Raft.Probe.Transfer_started _ | Raft.Probe.Transfer_aborted _ ->
            ())
  end

(* The member record is created first so the apply closure reads the
   store through it: a crash-restart swaps in a fresh replica and the
   replayed log rebuilds it. *)
let make_member ~engine ~fabric ~trace ~costs ~cores ~flush_delay ~telemetry
    ~forensics ~config ~joining ~pool ~id ~peers =
  let cpu =
    match costs with
    | Some _ -> Some (Netsim.Cpu.create engine ~cores)
    | None -> None
  in
  let rec member =
    lazy
      {
        node =
          Raft.Node.create ~fabric ~trace ?cpu ?costs
            ~apply:(fun entry ->
              ignore
                (Kvsm.Store.apply_entry (Lazy.force member).store entry
                  : Kvsm.Store.result option))
            ~snapshot_of:(fun () ->
              Kvsm.Store.serialize (Lazy.force member).store)
            ~install_sm:(fun data ->
              let m = Lazy.force member in
              match Kvsm.Store.of_serialized data with
              | Ok store -> m.store <- store
              | Error _ -> m.store <- Kvsm.Store.create ())
            ?flush_delay ~metrics:telemetry ~forensics ~joining ~pool ~id
            ~peers ~config ();
        store = Kvsm.Store.create ();
      }
  in
  Lazy.force member

let create ?seed ?costs ?(cores = 4.) ?conditions ?flush_delay
    ?(check = Check.Off) ?(telemetry = Telemetry.Metrics.noop)
    ?(forensics = Telemetry.Forensics.noop)
    ?(recorder = Telemetry.Recorder.noop) ?(scope = "") ?shared ~n ~config ()
    =
  if n <= 0 then invalid_arg "Cluster.create: n must be positive";
  let owns_infra = match shared with None -> true | Some _ -> false in
  let engine, fabric, first_id =
    match shared with
    | None ->
        let engine = Des.Engine.create ?seed () in
        (engine, Netsim.Fabric.create engine, 0)
    | Some s -> (s.sh_engine, s.sh_fabric, s.sh_first_id)
  in
  let trace = Des.Mtrace.create engine in
  let ids = List.init n (fun i -> Node_id.of_int (first_id + i)) in
  List.iter (Netsim.Fabric.add_node fabric) ids;
  (match conditions with
  | Some c -> (
      match shared with
      | None -> Netsim.Fabric.set_uniform_conditions fabric c
      | Some _ ->
          (* Uniform conditions would eagerly touch every registered
             pair on the shared fabric (other groups' links included);
             restrict them to this group's own directed pairs. *)
          List.iter
            (fun a ->
              List.iter
                (fun b ->
                  if not (Node_id.equal a b) then
                    Netsim.Fabric.set_pair_conditions fabric a b c)
                ids)
            ids)
  | None -> ());
  let members = Node_id.Table.create n in
  let pool = Raft.Rpc.Pool.create () in
  List.iter
    (fun id ->
      let peers = List.filter (fun p -> not (Node_id.equal p id)) ids in
      Node_id.Table.add members id
        (make_member ~engine ~fabric ~trace ~costs ~cores ~flush_delay
           ~telemetry ~forensics ~config ~joining:false ~pool ~id ~peers))
    ids;
  (* The digest accumulates online through a subscription, so it survives
     the trace clears the measurement loop performs between failures. *)
  let digest = Check.Digest.create () in
  Des.Mtrace.subscribe trace (fun time probe ->
      Check.Digest.feed_int digest time;
      Check.Digest.feed_string digest (Format.asprintf "%a" Raft.Probe.pp probe));
  let checker =
    match check with
    | Check.Off -> None
    | (Check.Sample | Check.Always) as mode ->
        let views =
          List.map
            (fun id -> Check.view_of_node (Node_id.Table.find members id).node)
            ids
        in
        let c = Check.create ~mode ~nodes:views () in
        Check.observe_trace c trace;
        (* The flight recorder: when a violation fires, its report carries
           the tail of the forensics ring and the recorder's last ticks —
           captured lazily, only on an actual failure. *)
        if
          Telemetry.Forensics.enabled forensics
          || Telemetry.Recorder.enabled recorder
        then
          Check.set_flight_recorder c (fun () ->
              Telemetry.Forensics.tail forensics 32
              @ Telemetry.Recorder.window recorder 8);
        (* The engine supports a single post hook.  A shared-infra host
           (multiraft) owns it and steps every group's checker from one
           combined hook; a standalone cluster installs its own. *)
        if owns_infra then
          Des.Engine.set_post_hook engine (Some (fun () -> Check.step c));
        Some c
  in
  if owns_infra then
    Telemetry.Recorder.attach recorder engine (fun () ->
        Telemetry.Metrics.snapshot telemetry);
  attach_probe_counters ~scope telemetry trace;
  {
    engine;
    fabric;
    trace;
    members;
    ids;
    roster = roster_of ~members ~ids;
    pool;
    checker;
    digest;
    telemetry;
    forensics;
    recorder;
    costs;
    cores;
    flush_delay;
    config;
    scope;
    owns_infra;
    next_id = first_id + n;
    collected = false;
    read_seq = 0;
  }

let engine t = t.engine
let fabric t = t.fabric
let trace t = t.trace
let checker t = t.checker
let telemetry t = t.telemetry
let forensics t = t.forensics
let recorder t = t.recorder

(* Fold the pull-style sources (engine, fabric, links) into the registry.
   Exposed standalone so a multiraft host sharing one engine/fabric
   across clusters can collect the infra statistics exactly once. *)
let collect_infra_metrics ?(scope = "") ~telemetry ~engine ~fabric () =
  if Telemetry.Metrics.enabled telemetry then begin
    let m = telemetry in
    let add sc name v =
      Telemetry.Metrics.Counter.add
        (Telemetry.Metrics.counter m ~scope:(scope ^ sc) ~name ())
        v
    in
    let es = Des.Engine.stats engine in
    add "des" "events_processed" es.Des.Engine.processed;
    add "des" "events_pending" es.Des.Engine.pending;
    add "des" "timers_cancelled" es.Des.Engine.cancelled;
    add "des" "heap_compactions" es.Des.Engine.compactions;
    Telemetry.Metrics.Gauge.set_max
      (Telemetry.Metrics.gauge m ~scope:(scope ^ "des") ~name:"heap_high_water"
         ())
      (float_of_int es.Des.Engine.heap_high_water);
    add "des" "wheel_cascades" es.Des.Engine.cascades;
    add "des" "wheel_cancelled_in_place" es.Des.Engine.cancelled_in_place;
    Telemetry.Metrics.Gauge.set_max
      (Telemetry.Metrics.gauge m ~scope:(scope ^ "des")
         ~name:"wheel_high_water" ())
      (float_of_int es.Des.Engine.wheel_high_water);
    let fc = Netsim.Fabric.counters fabric in
    add "net" "sent" fc.Netsim.Fabric.sent;
    add "net" "delivered" fc.Netsim.Fabric.delivered;
    add "net" "lost" fc.Netsim.Fabric.lost;
    add "net" "dropped_paused" fc.Netsim.Fabric.dropped_paused;
    add "net" "duplicated" fc.Netsim.Fabric.duplicated;
    List.iter
      (fun ((src, dst), (lc : Netsim.Link.counters)) ->
        let node = Printf.sprintf "n%d->n%d" src dst in
        let add name v =
          Telemetry.Metrics.Counter.add
            (Telemetry.Metrics.counter m ~scope:(scope ^ "link") ~name ~node
               ())
            v
        in
        add "sent" lc.Netsim.Link.sent;
        add "delivered" lc.Netsim.Link.delivered;
        add "lost" lc.Netsim.Link.lost;
        add "duplicated" lc.Netsim.Link.duplicated;
        add "retransmissions" lc.Netsim.Link.retransmissions)
      (Netsim.Fabric.link_counters fabric);
    (* High-water egress depth per directed link; only links that ever
       queued (a serialization delay was configured) appear. *)
    List.iter
      (fun ((src, dst), depth) ->
        let node = Printf.sprintf "n%d->n%d" src dst in
        Telemetry.Metrics.Gauge.set_max
          (Telemetry.Metrics.gauge m ~scope:(scope ^ "fabric")
             ~name:"queue_depth" ~node ())
          (float_of_int depth))
      (Netsim.Fabric.link_queue_depths fabric)
  end

(* Idempotent per cluster; a shared-infra cluster leaves the (global)
   engine/fabric statistics to its host. *)
let collect_metrics t =
  if t.owns_infra && not t.collected then begin
    t.collected <- true;
    collect_infra_metrics ~scope:t.scope ~telemetry:t.telemetry
      ~engine:t.engine ~fabric:t.fabric ()
  end
let trace_digest t = Check.Digest.value t.digest

let check_now t =
  match t.checker with None -> () | Some c -> Check.check_now c
let size t = List.length t.ids
let quorum t = (size t / 2) + 1
let node_ids t = t.ids

let member t id =
  match Node_id.Table.find_opt t.members id with
  | Some m -> m
  | None -> invalid_arg "Cluster: unknown node id"

let node t id = (member t id).node
let store t id = (member t id).store

let reset_store t id =
  let m = member t id in
  m.store <- Kvsm.Store.create ()
let nodes t = List.map (fun id -> node t id) t.ids

let start t = List.iter Raft.Node.start (nodes t)

(* The measurement harness polls this once per simulated millisecond
   while awaiting elections, so it is a single scan rather than a
   map/filter/sort chain: the common no-leader poll allocates nothing. *)
let leader t =
  let roster = t.roster in
  let best = ref None and best_term = ref min_int in
  for i = 0 to Array.length roster - 1 do
    let n = roster.(i).node in
    if
      (not (Raft.Node.is_paused n))
      && Raft.Types.is_leader (Raft.Server.role (Raft.Node.server n))
    then begin
      let term = Raft.Server.term (Raft.Node.server n) in
      (* Strict [>] keeps the first max-term leader in join order, as the
         stable descending sort did. *)
      if term > !best_term then begin
        best := Some n;
        best_term := term
      end
    end
  done;
  !best

let run_for t span = Des.Engine.run_for t.engine span
let now t = Des.Engine.now t.engine

let await_leader t ~timeout =
  let deadline = Des.Time.add (now t) timeout in
  (* Leadership only changes when an event runs, so a poll slice that
     processed nothing can skip the roster scan.  The cadence of the
     1 ms slices — and thus where the engine clock stops — is
     unchanged. *)
  let last_processed = ref (-1) in
  let rec poll () =
    let processed = Des.Engine.processed_events t.engine in
    let l = if processed = !last_processed then None else leader t in
    last_processed := processed;
    match l with
    | Some l -> Some l
    | None ->
        if now t >= deadline then None
        else begin
          Des.Engine.run_until t.engine
            (Stdlib.min deadline (Des.Time.add (now t) (Des.Time.ms 1)));
          poll ()
        end
  in
  poll ()

let set_uniform_conditions t c = Netsim.Fabric.set_uniform_conditions t.fabric c

let set_pair_conditions t a b c =
  Netsim.Fabric.set_pair_conditions t.fabric a b c

let partition t groups = Netsim.Fabric.partition t.fabric groups
let heal_partition t = Netsim.Fabric.heal_partition t.fabric

let submit_target t ~payload ~client_id ~seq ~on_result =
  match leader t with
  | None -> `Not_leader None
  | Some l -> Raft.Node.submit l ~payload ~client_id ~seq ~on_result ()

(* Reads use a reserved client id far outside the test/benchmark range. *)
let read_client_id = -1

let linearizable_read t ~key ~on_result =
  match leader t with
  | None -> on_result None
  | Some l -> (
      t.read_seq <- t.read_seq + 1;
      let leader_id = Raft.Node.id l in
      match
        Raft.Node.read l ~client_id:read_client_id ~seq:t.read_seq
          ~on_result:(fun ~committed ->
            if committed then
              (* The leader's replica is linearizable at this instant. *)
              on_result (Some (Kvsm.Store.find (store t leader_id) key))
            else on_result None)
          ()
      with
      | `Accepted -> ()
      | `Not_leader _ -> on_result None)

let transfer_leadership t target =
  match leader t with
  | None -> `Not_leader
  | Some l -> Raft.Node.transfer_leadership l target

(* {2 Dynamic membership} *)

let submit_to t id ~payload ~client_id ~seq ~on_result =
  Raft.Node.submit (node t id) ~payload ~client_id ~seq ~on_result ()

let reconfigure t change =
  match leader t with
  | None -> `Not_leader
  | Some l -> Raft.Node.reconfigure l change

let spawn_joiner t =
  let id = Node_id.of_int t.next_id in
  t.next_id <- t.next_id + 1;
  Netsim.Fabric.add_node t.fabric id;
  let m =
    make_member ~engine:t.engine ~fabric:t.fabric ~trace:t.trace
      ~costs:t.costs ~cores:t.cores ~flush_delay:t.flush_delay
      ~telemetry:t.telemetry ~forensics:t.forensics ~config:t.config
      ~joining:true ~pool:t.pool ~id ~peers:t.ids
  in
  Node_id.Table.add t.members id m;
  t.ids <- t.ids @ [ id ];
  t.roster <- roster_of ~members:t.members ~ids:t.ids;
  (match t.checker with
  | Some c -> Check.add_view c (Check.view_of_node m.node)
  | None -> ());
  Raft.Node.start m.node;
  id

let add_server t =
  let id = spawn_joiner t in
  (id, reconfigure t (Raft.Log.Add_learner id))

let remove_server t id = reconfigure t (Raft.Log.Remove id)

let retire t id =
  let m = member t id in
  if not (Raft.Node.is_paused m.node) then Raft.Node.pause m.node;
  Netsim.Fabric.remove_node t.fabric id;
  t.ids <- List.filter (fun i -> not (Node_id.equal i id)) t.ids;
  t.roster <- roster_of ~members:t.members ~ids:t.ids

let config_quiet t =
  match leader t with
  | None -> false
  | Some l ->
      let s = Raft.Node.server l in
      Raft.Server.pending_config s = None
      && Raft.Server.transfer_pending s = None

let poll_until t ~timeout cond =
  let deadline = Des.Time.add (now t) timeout in
  let rec poll () =
    if cond () then true
    else if now t >= deadline then false
    else begin
      Des.Engine.run_until t.engine
        (Stdlib.min deadline (Des.Time.add (now t) (Des.Time.ms 1)));
      poll ()
    end
  in
  poll ()

let await_config_quiet t ~timeout = poll_until t ~timeout (fun () -> config_quiet t)

let await_voter t target ~timeout =
  poll_until t ~timeout (fun () ->
      match leader t with
      | None -> false
      | Some l ->
          let s = Raft.Node.server l in
          Raft.Server.is_voter s target && Raft.Server.pending_config s = None)
