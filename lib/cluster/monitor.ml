module Node_id = Netsim.Node_id

let randomized_timeouts_ms t =
  Cluster.nodes t
  |> List.filter_map (fun n ->
         let server = Raft.Node.server n in
         if Raft.Types.is_leader (Raft.Server.role server) then None
         else
           Some (Des.Time.to_ms_f (Raft.Server.randomized_timeout server)))

let majority_randomized_ms t =
  let sorted = List.sort Float.compare (randomized_timeouts_ms t) in
  let f = Cluster.size t / 2 in
  List.nth_opt sorted f

let election_timeout_ms t id =
  Des.Time.to_ms_f
    (Raft.Server.election_timeout_now (Raft.Node.server (Cluster.node t id)))

let leader_h_ms t ~follower =
  match Cluster.leader t with
  | None -> None
  | Some l -> (
      match
        Raft.Server.heartbeat_interval_to (Raft.Node.server l) follower
      with
      | Some h when not (Node_id.equal (Raft.Node.id l) follower) ->
          Some (Des.Time.to_ms_f h)
      | Some _ | None -> None)

let gap = function Some v -> v | None -> nan
let has_leader t = Cluster.leader t <> None

type probe = { name : string; read : Cluster.t -> float }

let watch t ~every ~duration ~probes =
  if every <= 0 then invalid_arg "Monitor.watch: period must be positive";
  let series =
    List.map (fun p -> (p, Stats.Timeseries.create ~name:p.name ())) probes
  in
  let engine = Cluster.engine t in
  let stop_at = Des.Time.add (Des.Engine.now engine) duration in
  let rec arm () =
    ignore
      (Des.Engine.schedule_after engine every (fun () ->
           let now_sec = Des.Time.to_sec_f (Des.Engine.now engine) in
           List.iter
             (fun (p, ts) ->
               Stats.Timeseries.push ts ~time:now_sec ~value:(p.read t))
             series;
           if Des.Engine.now engine < stop_at then arm ())
        : Des.Engine.handle)
  in
  arm ();
  Des.Engine.run_until engine stop_at;
  List.map (fun (p, ts) -> (p.name, ts)) series

let role_changes t ~until =
  let events = ref [] in
  Des.Mtrace.iter (Cluster.trace t) ~f:(fun time probe ->
      if time <= until then
        match probe with
        | Raft.Probe.Role_change { id; role; _ } ->
            events := (time, id, `Role role) :: !events
        | Raft.Probe.Node_paused { id } -> events := (time, id, `Paused) :: !events
        | Raft.Probe.Node_resumed { id } ->
            events := (time, id, `Resumed) :: !events
        | Raft.Probe.Timeout_expired _ | Raft.Probe.Pre_vote_aborted _
        | Raft.Probe.Tuner_reset _ | Raft.Probe.Tuner_decision _
        | Raft.Probe.Election_started _ | Raft.Probe.Config_change _
        | Raft.Probe.Transfer_started _ | Raft.Probe.Transfer_aborted _ ->
            ());
  List.rev !events

let leaderless_intervals t ~from ~until =
  let roles : Raft.Types.role Node_id.Table.t =
    Node_id.Table.create (Cluster.size t)
  in
  let paused = Node_id.Table.create (Cluster.size t) in
  let count_leaders () =
    Node_id.Table.fold
      (fun id role acc ->
        if Raft.Types.is_leader role && not (Node_id.Table.mem paused id) then
          acc + 1
        else acc)
      roles 0
  in
  (* Replay role and fault events from the beginning of the trace;
     everyone starts as a follower, so the run begins leaderless.  A
     paused leader does not count as a leader (the container-sleep fault
     takes it out of service even though its role never changed). *)
  let intervals = ref [] in
  let gap_start = ref (Some Des.Time.zero) in
  List.iter
    (fun (time, id, event) ->
      let before = count_leaders () in
      (match event with
      | `Role role -> Node_id.Table.replace roles id role
      | `Paused -> Node_id.Table.replace paused id ()
      | `Resumed -> Node_id.Table.remove paused id);
      let after = count_leaders () in
      if before = 0 && after > 0 then begin
        (match !gap_start with
        | Some s when time > s -> intervals := (s, time) :: !intervals
        | Some _ | None -> ());
        gap_start := None
      end
      else if before > 0 && after = 0 then gap_start := Some time)
    (role_changes t ~until);
  (match !gap_start with
  | Some s when until > s -> intervals := (s, until) :: !intervals
  | Some _ | None -> ());
  (* Clip to the requested window. *)
  List.rev !intervals
  |> List.filter_map (fun (s, e) ->
         let s = Stdlib.max s from and e = Stdlib.min e until in
         if e > s then Some (s, e) else None)

let total_ots_ms t ~from ~until =
  leaderless_intervals t ~from ~until
  |> List.fold_left
       (fun acc (s, e) -> acc +. Des.Time.to_ms_f (Des.Time.diff e s))
       0.
