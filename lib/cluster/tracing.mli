(** Bridge from the cluster's probe trace to a Chrome trace-event sink.

    Renders election lifecycles as duration spans on one Chrome thread
    per node — pre-vote → campaign → leader, each span closed by the
    next role change — with timeout expiries, pre-vote aborts, tuner
    resets and tuner decisions (measured RTT/loss in, chosen [Et]/[H]/[k]
    out) as instant markers.  Open the result in Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) or [chrome://tracing].

    The bridge rides a live {!Des.Mtrace.subscribe} observer, so it sees
    every probe even though the failover harness clears the trace between
    failures. *)

type t

val attach : ?pid:int -> ?name:string -> Cluster.t -> Telemetry.Chrome_trace.t -> t
(** Subscribe to the cluster's trace and start emitting.  [pid]
    (default 1) is the Chrome process id used for this cluster — give
    each cluster its own when several share a sink; [name] labels the
    process in the viewer.  Emits one [thread_name] metadata record per
    node immediately. *)

val finish : t -> unit
(** Close any still-open role spans at the cluster's current virtual
    time and append fabric-wide and per-link counter samples (sent /
    lost / duplicated / retransmissions).  Call once, after the run;
    further probes are then ignored.  Idempotent. *)
