type kind = Datagram | Reliable

let pp_kind ppf = function
  | Datagram -> Format.pp_print_string ppf "udp"
  | Reliable -> Format.pp_print_string ppf "tcp"

type lane = Urgent | Bulk

let pp_lane ppf = function
  | Urgent -> Format.pp_print_string ppf "urgent"
  | Bulk -> Format.pp_print_string ppf "bulk"

module Channel = struct
  type t = { mutable last_delivery : Des.Time.t }

  let create () = { last_delivery = Des.Time.zero }

  let delivery_time t ~now ~latency =
    let arrival = Des.Time.add now latency in
    let ordered = Stdlib.max arrival (t.last_delivery + 1) in
    t.last_delivery <- ordered;
    ordered
end
