type counters = {
  sent : int;
  delivered : int;
  lost : int;
  dropped_paused : int;
  duplicated : int;
}

type 'msg node_state = {
  mutable handler : (src:Node_id.t -> 'msg -> unit) option;
  mutable paused : bool;
  mutable congestion : Congestion.t option;
}

(* Egress scheduling state for one directed link, allocated only when a
   serialization delay is configured.  Two FIFO lanes: urgent messages
   depart before anything queued in the bulk lane; within a lane, send
   order (the engine's sequence order) breaks ties, so the schedule is a
   pure function of the send sequence. *)
type 'msg egress = {
  mutable busy : bool;  (* a message currently occupies the wire *)
  eg_urgent : (Transport.kind * int * int * 'msg) Queue.t;
      (* (kind, units, cause, msg); cause is 0 unless tracking is on *)
  eg_bulk : (Transport.kind * int * int * 'msg) Queue.t;
  mutable depth_high_water : int;
}

type 'msg t = {
  engine : Des.Engine.t;
  rng : Stats.Rng.t;
  nodes : 'msg node_state Node_id.Table.t;
  mutable node_order : Node_id.t list; (* registration order *)
  (* Directed-pair tables are keyed by [key src dst], a single int:
     a tuple key would be allocated afresh (and polymorphically hashed)
     on every message send. *)
  links : (int, Link.t) Hashtbl.t;
  delivery : (int, 'msg -> unit) Hashtbl.t;
      (* per-link pre-bound [deliver t ~src ~dst]: the per-message
         delivery thunk then captures only this and the message *)
  channels : (int, Transport.Channel.t) Hashtbl.t;
  egresses : (int, 'msg egress) Hashtbl.t;
  serialization : (int, Des.Time.span) Hashtbl.t;
  mutable default_serialization : Des.Time.span;  (* 0 = wire never busy *)
  mutable default_conditions : Conditions.t;
  mutable groups : int Node_id.Table.t option;  (* node -> partition group *)
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_paused : int;
  mutable duplicated : int;
  (* Causal piggyback channel (the forensics layer).  Causes are opaque
     int tokens: a sender stages one just before [send], the fabric
     carries it alongside the message, and the receiver reads the token
     back during its delivery handler.  All three fields are immediate
     ints and every use is branch-guarded on [track_causes], so the
     default path allocates and behaves byte-identically to a fabric
     without the channel. *)
  mutable track_causes : bool;
  mutable staged_cause : int;  (* consumed by the next [send] *)
  mutable last_cause : int;  (* cause of the delivery in progress *)
}

let create engine =
  {
    engine;
    rng = Stats.Rng.split (Des.Engine.rng engine) "fabric";
    nodes = Node_id.Table.create 16;
    node_order = [];
    links = Hashtbl.create 64;
    delivery = Hashtbl.create 64;
    channels = Hashtbl.create 64;
    egresses = Hashtbl.create 64;
    serialization = Hashtbl.create 64;
    default_serialization = 0;
    default_conditions = Conditions.(constant (profile ~rtt_ms:0. ()));
    groups = None;
    sent = 0;
    delivered = 0;
    lost = 0;
    dropped_paused = 0;
    duplicated = 0;
    track_causes = false;
    staged_cause = 0;
    last_cause = 0;
  }

let engine t = t.engine
let enable_cause_tracking t = t.track_causes <- true

let stage_cause t cause =
  if t.track_causes then t.staged_cause <- cause

let delivery_cause t = t.last_cause

let add_node t id =
  if Node_id.to_int id < 0 || Node_id.to_int id > 0xFFFFF then
    invalid_arg "Fabric.add_node: node id out of range";
  if Node_id.Table.mem t.nodes id then
    invalid_arg "Fabric.add_node: duplicate node id";
  Node_id.Table.add t.nodes id
    { handler = None; paused = false; congestion = None };
  t.node_order <- t.node_order @ [ id ]

let nodes t = t.node_order

let remove_node t id =
  if not (Node_id.Table.mem t.nodes id) then
    invalid_arg "Fabric.remove_node: unknown node id";
  Node_id.Table.remove t.nodes id;
  t.node_order <- List.filter (fun n -> not (Node_id.equal n id)) t.node_order;
  let touches k =
    let i = Node_id.to_int id in
    k lsr 20 = i || k land 0xFFFFF = i
  in
  let drop table =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
    List.iter (fun k -> if touches k then Hashtbl.remove table k) keys
  in
  drop t.links;
  drop t.delivery;
  drop t.channels;
  drop t.egresses;
  drop t.serialization;
  match t.groups with
  | Some table -> Node_id.Table.remove table id
  | None -> ()

let state t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some s -> s
  | None -> invalid_arg "Fabric: unknown node id"

let set_handler t id handler = (state t id).handler <- Some handler

(* Node ids are small non-negative ints, so a directed pair packs into
   one immediate int. *)
let key src dst = (Node_id.to_int src lsl 20) lor Node_id.to_int dst

let link t ~src ~dst =
  let k = key src dst in
  match Hashtbl.find_opt t.links k with
  | Some l -> l
  | None ->
      let name = Printf.sprintf "link-%d-%d" (k lsr 20) (k land 0xFFFFF) in
      let l =
        Link.create t.engine
          ~rng:(Stats.Rng.split t.rng name)
          t.default_conditions
      in
      Hashtbl.add t.links k l;
      l

let set_conditions t ~src ~dst conditions =
  Link.set_conditions (link t ~src ~dst) conditions

let set_pair_conditions t a b conditions =
  set_conditions t ~src:a ~dst:b conditions;
  set_conditions t ~src:b ~dst:a conditions

let set_uniform_conditions t conditions =
  t.default_conditions <- conditions;
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Node_id.equal src dst) then
            set_conditions t ~src ~dst conditions)
        t.node_order)
    t.node_order

let channel t src dst =
  let k = key src dst in
  match Hashtbl.find_opt t.channels k with
  | Some c -> c
  | None ->
      let c = Transport.Channel.create () in
      Hashtbl.add t.channels k c;
      c

(* Tolerant of unknown destinations: a message in flight toward a node
   that [remove_node] has since deleted counts as dropped, not an
   error. *)
let deliver t ~src ~dst msg =
  match Node_id.Table.find_opt t.nodes dst with
  | None -> t.dropped_paused <- t.dropped_paused + 1
  | Some st -> (
      if st.paused then t.dropped_paused <- t.dropped_paused + 1
      else
        match st.handler with
        | None -> t.dropped_paused <- t.dropped_paused + 1
        | Some handler ->
            t.delivered <- t.delivered + 1;
            handler ~src msg)

(* The pre-bound delivery function for a directed link.  [deliver]
   itself re-checks that [dst] still exists, so a thunk surviving
   [remove_node] is harmless (the message counts as dropped). *)
let deliver_fn t ~src ~dst =
  let k = key src dst in
  match Hashtbl.find_opt t.delivery k with
  | Some f -> f
  | None ->
      let f msg = deliver t ~src ~dst msg in
      Hashtbl.add t.delivery k f;
      f

(* [cause = 0] (the untracked case) builds exactly the closure the
   pre-forensics fabric built, so the disabled path's allocation profile
   is unchanged; a tracked delivery re-stamps [last_cause] just before
   the handler runs, which is what lets receivers read their causal
   parent without the message type carrying it. *)
let schedule_delivery t ~deliver1 ~latency ~cause msg =
  if cause = 0 then
    ignore
      (Des.Engine.schedule_after t.engine latency (fun () -> deliver1 msg)
        : Des.Engine.handle)
  else
    ignore
      (Des.Engine.schedule_after t.engine latency (fun () ->
           t.last_cause <- cause;
           deliver1 msg;
           t.last_cause <- 0)
        : Des.Engine.handle)

let set_egress_congestion t id spec =
  let rng =
    Stats.Rng.split_int
      (Stats.Rng.split t.rng "congestion")
      (Node_id.to_int id)
  in
  (state t id).congestion <- Some (Congestion.create ~rng spec)

let set_all_egress_congestion t spec =
  List.iter (fun id -> set_egress_congestion t id spec) t.node_order

let egress_extra t src =
  match (state t src).congestion with
  | None -> 0
  | Some c -> Congestion.extra_delay c ~now:(Des.Engine.now t.engine)

let partition t groups =
  let table = Node_id.Table.create 16 in
  List.iteri
    (fun group ids ->
      List.iter
        (fun id ->
          ignore (state t id : _ node_state);
          if Node_id.Table.mem table id then
            invalid_arg "Fabric.partition: node appears in two groups";
          Node_id.Table.add table id group)
        ids)
    groups;
  (* Unmentioned nodes share an implicit extra group. *)
  let extra = List.length groups in
  List.iter
    (fun id ->
      if not (Node_id.Table.mem table id) then
        Node_id.Table.add table id extra)
    t.node_order;
  t.groups <- Some table

let heal_partition t = t.groups <- None

let reachable t src dst =
  match t.groups with
  | None -> true
  | Some table ->
      Node_id.equal src dst
      || Node_id.Table.find_opt table src = Node_id.Table.find_opt table dst

(* Put one message on the (now free) wire: sample the link model and
   schedule the delivery.  This is the entire send path when no
   serialization delay is configured, and the wire-free continuation
   when one is. *)
let transmit t kind ~src ~dst ~cause msg =
  let l = link t ~src ~dst in
  let deliver1 = deliver_fn t ~src ~dst in
  let extra = egress_extra t src in
  match kind with
  | Transport.Datagram -> (
      match Link.sample_datagram l with
      | Link.Lost -> t.lost <- t.lost + 1
      | Link.Delivered latency ->
          schedule_delivery t ~deliver1 ~latency:(latency + extra) ~cause msg
      | Link.Duplicated (l1, l2) ->
          t.duplicated <- t.duplicated + 1;
          schedule_delivery t ~deliver1 ~latency:(l1 + extra) ~cause msg;
          schedule_delivery t ~deliver1 ~latency:(l2 + extra) ~cause msg)
  | Transport.Reliable -> (
      let latency = Link.sample_reliable l + extra in
      let now = Des.Engine.now t.engine in
      let at =
        Transport.Channel.delivery_time (channel t src dst) ~now ~latency
      in
      if cause = 0 then
        ignore
          (Des.Engine.schedule_at t.engine at (fun () -> deliver1 msg)
            : Des.Engine.handle)
      else
        ignore
          (Des.Engine.schedule_at t.engine at (fun () ->
               t.last_cause <- cause;
               deliver1 msg;
               t.last_cause <- 0)
            : Des.Engine.handle))

let serialization_of t k =
  match Hashtbl.find_opt t.serialization k with
  | Some s -> s
  | None -> t.default_serialization

let set_serialization t ~src ~dst span =
  if span < 0 then invalid_arg "Fabric.set_serialization: negative span";
  Hashtbl.replace t.serialization (key src dst) span

let set_uniform_serialization t span =
  if span < 0 then invalid_arg "Fabric.set_uniform_serialization: negative span";
  t.default_serialization <- span;
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Node_id.equal src dst) then set_serialization t ~src ~dst span)
        t.node_order)
    t.node_order

let egress_of t k =
  match Hashtbl.find_opt t.egresses k with
  | Some eg -> eg
  | None ->
      let eg =
        {
          busy = false;
          eg_urgent = Queue.create ();
          eg_bulk = Queue.create ();
          depth_high_water = 0;
        }
      in
      Hashtbl.add t.egresses k eg;
      eg

let egress_depth eg =
  Queue.length eg.eg_urgent + Queue.length eg.eg_bulk
  + if eg.busy then 1 else 0

(* Drain the egress: urgent lane first, then bulk, FIFO within each —
   deterministic because sends on one link happen in engine sequence
   order.  Each message occupies the wire for [units x serialization]
   before the link's propagation model takes over. *)
let rec pump t ~src ~dst eg =
  let next =
    if not (Queue.is_empty eg.eg_urgent) then Some (Queue.pop eg.eg_urgent)
    else if not (Queue.is_empty eg.eg_bulk) then Some (Queue.pop eg.eg_bulk)
    else None
  in
  match next with
  | None -> eg.busy <- false
  | Some (kind, units, cause, msg) ->
      eg.busy <- true;
      let wire = units * serialization_of t (key src dst) in
      ignore
        (Des.Engine.schedule_after t.engine wire (fun () ->
             transmit t kind ~src ~dst ~cause msg;
             pump t ~src ~dst eg)
          : Des.Engine.handle)

let send t kind ?(lane = Transport.Urgent) ?(units = 1) ~src ~dst msg =
  t.sent <- t.sent + 1;
  (* The staged cause is one-shot: whatever happens to this message
     (delivered, lost, queued), the next send starts clean. *)
  let cause = t.staged_cause in
  if cause <> 0 then t.staged_cause <- 0;
  if Node_id.equal src dst then
    if cause = 0 then deliver t ~src ~dst msg
    else begin
      t.last_cause <- cause;
      deliver t ~src ~dst msg;
      t.last_cause <- 0
    end
  else if not (Node_id.Table.mem t.nodes dst) then
    (* Destination left the fabric: the message vanishes into a closed
       port. *)
    t.lost <- t.lost + 1
  else if not (reachable t src dst) then t.lost <- t.lost + 1
  else
    let k = key src dst in
    if serialization_of t k <= 0 then transmit t kind ~src ~dst ~cause msg
    else begin
      let eg = egress_of t k in
      (match lane with
      | Transport.Urgent -> Queue.push (kind, units, cause, msg) eg.eg_urgent
      | Transport.Bulk -> Queue.push (kind, units, cause, msg) eg.eg_bulk);
      let depth = egress_depth eg in
      if depth > eg.depth_high_water then eg.depth_high_water <- depth;
      if not eg.busy then pump t ~src ~dst eg
    end

let pending t ~src ~dst =
  match Hashtbl.find_opt t.egresses (key src dst) with
  | None -> 0
  | Some eg -> egress_depth eg

let link_queue_depths t =
  Hashtbl.fold
    (fun k eg acc ->
      ((k lsr 20, k land 0xFFFFF), eg.depth_high_water) :: acc)
    t.egresses []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

let pause t id = (state t id).paused <- true
let resume t id = (state t id).paused <- false
let is_paused t id = (state t id).paused

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    dropped_paused = t.dropped_paused;
    duplicated = t.duplicated;
  }

let link_counters t =
  Hashtbl.fold
    (fun k l acc -> ((k lsr 20, k land 0xFFFFF), Link.counters l) :: acc)
    t.links []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
