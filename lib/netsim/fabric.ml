type counters = {
  sent : int;
  delivered : int;
  lost : int;
  dropped_paused : int;
  duplicated : int;
}

type 'msg node_state = {
  mutable handler : (src:Node_id.t -> 'msg -> unit) option;
  mutable paused : bool;
  mutable congestion : Congestion.t option;
  mutable alive : bool;
      (* cleared by [remove_node]; in-flight deliveries that still hold
         a port to this node check it and count as dropped *)
}

(* Egress scheduling state for one directed link, allocated only when a
   serialization delay is configured.  Two FIFO lanes: urgent messages
   depart before anything queued in the bulk lane; within a lane, send
   order (the engine's sequence order) breaks ties, so the schedule is a
   pure function of the send sequence. *)
type 'msg egress = {
  mutable busy : bool;  (* a message currently occupies the wire *)
  eg_urgent : (Transport.kind * int * int * 'msg) Queue.t;
      (* (kind, units, cause, msg); cause is 0 unless tracking is on *)
  eg_bulk : (Transport.kind * int * int * 'msg) Queue.t;
  mutable depth_high_water : int;
}

type 'msg t = {
  engine : Des.Engine.t;
  rng : Stats.Rng.t;
  nodes : 'msg node_state Node_id.Table.t;
  mutable node_order : Node_id.t list; (* registration order *)
  (* Directed-pair tables are keyed by [key src dst], a single int:
     a tuple key would be allocated afresh (and polymorphically hashed)
     on every message send.  [links]/[channels]/[egresses]/
     [serialization] remain the canonical configuration stores (they
     survive port invalidation); [ports] caches everything the send hot
     path needs behind a single allocation-free lookup. *)
  links : (int, Link.t) Hashtbl.t;
  channels : (int, Transport.Channel.t) Hashtbl.t;
  egresses : (int, 'msg egress) Hashtbl.t;
  serialization : (int, Des.Time.span) Hashtbl.t;
  ports : 'msg port Itab.t;
  deliver_op : ('msg port, 'msg) Des.Engine.op;
      (* engine handler delivering [msg] through a port; the schedule's
         int operand carries the causal token, so a delivery event
         allocates nothing *)
  mutable default_serialization : Des.Time.span;  (* 0 = wire never busy *)
  mutable default_conditions : Conditions.t;
  mutable groups : int Node_id.Table.t option;  (* node -> partition group *)
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable dropped_paused : int;
  mutable duplicated : int;
  (* Causal piggyback channel (the forensics layer).  Causes are opaque
     int tokens: a sender stages one just before [send], the fabric
     carries it alongside the message, and the receiver reads the token
     back during its delivery handler.  All three fields are immediate
     ints and every use is branch-guarded on [track_causes], so the
     default path allocates and behaves byte-identically to a fabric
     without the channel. *)
  mutable track_causes : bool;
  mutable staged_cause : int;  (* consumed by the next [send] *)
  mutable last_cause : int;  (* cause of the delivery in progress *)
  mutable dup_clone : 'msg -> 'msg;
      (* applied to the second copy of a duplicated datagram; identity
         unless the host pools messages (a pooled payload must not be
         shared between two in-flight deliveries — the first delivery's
         release could recycle it under the second) *)
}

(* Everything one directed src -> dst message needs, resolved once and
   cached: the send hot path does a single [Itab.find] and then touches
   only record fields.  Ports are dropped when either endpoint leaves
   the fabric ([remove_node]), so a found port's states are current. *)
and 'msg port = {
  pt_fabric : 'msg t;
  pt_src : Node_id.t;
  pt_dst : Node_id.t;
  pt_link : Link.t;
  pt_channel : Transport.Channel.t;
  pt_src_state : 'msg node_state;
  pt_dst_state : 'msg node_state;
  mutable pt_serialization : Des.Time.span;
  mutable pt_egress : 'msg egress option;
}

let[@inline] deliver_port t port msg =
  let st = port.pt_dst_state in
  if (not st.alive) || st.paused then
    t.dropped_paused <- t.dropped_paused + 1
  else
    match st.handler with
    | None -> t.dropped_paused <- t.dropped_paused + 1
    | Some handler ->
        t.delivered <- t.delivered + 1;
        handler ~src:port.pt_src msg

(* The engine-table delivery handler ([cause = 0] is the untracked
   case); registered once per fabric, scheduled per message with zero
   allocation. *)
let dispatch_deliver port msg cause =
  let t = port.pt_fabric in
  if cause = 0 then deliver_port t port msg
  else begin
    t.last_cause <- cause;
    deliver_port t port msg;
    t.last_cause <- 0
  end

let create engine =
  let deliver_op = Des.Engine.register_op engine dispatch_deliver in
  {
    engine;
    rng = Stats.Rng.split (Des.Engine.rng engine) "fabric";
    nodes = Node_id.Table.create 16;
    node_order = [];
    links = Hashtbl.create 64;
    channels = Hashtbl.create 64;
    egresses = Hashtbl.create 64;
    serialization = Hashtbl.create 64;
    ports = Itab.create 64;
    deliver_op;
    default_serialization = 0;
    default_conditions = Conditions.(constant (profile ~rtt_ms:0. ()));
    groups = None;
    sent = 0;
    delivered = 0;
    lost = 0;
    dropped_paused = 0;
    duplicated = 0;
    track_causes = false;
    staged_cause = 0;
    last_cause = 0;
    dup_clone = (fun msg -> msg);
  }

let engine t = t.engine
let enable_cause_tracking t = t.track_causes <- true
let set_dup_clone t clone = t.dup_clone <- clone

let stage_cause t cause =
  if t.track_causes then t.staged_cause <- cause

let delivery_cause t = t.last_cause

let add_node t id =
  if Node_id.to_int id < 0 || Node_id.to_int id > 0xFFFFF then
    invalid_arg "Fabric.add_node: node id out of range";
  if Node_id.Table.mem t.nodes id then
    invalid_arg "Fabric.add_node: duplicate node id";
  Node_id.Table.add t.nodes id
    { handler = None; paused = false; congestion = None; alive = true };
  t.node_order <- t.node_order @ [ id ]

let nodes t = t.node_order

let remove_node t id =
  match Node_id.Table.find_opt t.nodes id with
  | None -> invalid_arg "Fabric.remove_node: unknown node id"
  | Some st ->
      st.alive <- false;
      Node_id.Table.remove t.nodes id;
      t.node_order <-
        List.filter (fun n -> not (Node_id.equal n id)) t.node_order;
      let touches k =
        let i = Node_id.to_int id in
        k lsr 20 = i || k land 0xFFFFF = i
      in
      Itab.filter t.ports (fun k _ -> not (touches k));
      let drop table =
        let keys = Hashtbl.fold (fun k _ acc -> k :: acc) table [] in
        List.iter (fun k -> if touches k then Hashtbl.remove table k) keys
      in
      drop t.links;
      drop t.channels;
      drop t.egresses;
      drop t.serialization;
      (match t.groups with
      | Some table -> Node_id.Table.remove table id
      | None -> ())

let state t id =
  match Node_id.Table.find_opt t.nodes id with
  | Some s -> s
  | None -> invalid_arg "Fabric: unknown node id"

let set_handler t id handler = (state t id).handler <- Some handler

(* Node ids are small non-negative ints, so a directed pair packs into
   one immediate int. *)
let key src dst = (Node_id.to_int src lsl 20) lor Node_id.to_int dst

let link t ~src ~dst =
  let k = key src dst in
  match Hashtbl.find_opt t.links k with
  | Some l -> l
  | None ->
      let name = Printf.sprintf "link-%d-%d" (k lsr 20) (k land 0xFFFFF) in
      let l =
        Link.create t.engine
          ~rng:(Stats.Rng.split t.rng name)
          t.default_conditions
      in
      Hashtbl.add t.links k l;
      l

let set_conditions t ~src ~dst conditions =
  Link.set_conditions (link t ~src ~dst) conditions

let set_pair_conditions t a b conditions =
  set_conditions t ~src:a ~dst:b conditions;
  set_conditions t ~src:b ~dst:a conditions

let set_uniform_conditions t conditions =
  t.default_conditions <- conditions;
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Node_id.equal src dst) then
            set_conditions t ~src ~dst conditions)
        t.node_order)
    t.node_order

let channel t src dst =
  let k = key src dst in
  match Hashtbl.find_opt t.channels k with
  | Some c -> c
  | None ->
      let c = Transport.Channel.create () in
      Hashtbl.add t.channels k c;
      c

(* Tolerant of unknown destinations: a message in flight toward a node
   that [remove_node] has since deleted counts as dropped, not an
   error.  Only self-sends take this path; everything else delivers
   through a port. *)
let deliver t ~src ~dst msg =
  match Node_id.Table.find_opt t.nodes dst with
  | None -> t.dropped_paused <- t.dropped_paused + 1
  | Some st -> (
      if st.paused then t.dropped_paused <- t.dropped_paused + 1
      else
        match st.handler with
        | None -> t.dropped_paused <- t.dropped_paused + 1
        | Some handler ->
            t.delivered <- t.delivered + 1;
            handler ~src msg)

let set_egress_congestion t id spec =
  let rng =
    Stats.Rng.split_int
      (Stats.Rng.split t.rng "congestion")
      (Node_id.to_int id)
  in
  (state t id).congestion <- Some (Congestion.create ~rng spec)

let set_all_egress_congestion t spec =
  List.iter (fun id -> set_egress_congestion t id spec) t.node_order

let partition t groups =
  let table = Node_id.Table.create 16 in
  List.iteri
    (fun group ids ->
      List.iter
        (fun id ->
          ignore (state t id : _ node_state);
          if Node_id.Table.mem table id then
            invalid_arg "Fabric.partition: node appears in two groups";
          Node_id.Table.add table id group)
        ids)
    groups;
  (* Unmentioned nodes share an implicit extra group. *)
  let extra = List.length groups in
  List.iter
    (fun id ->
      if not (Node_id.Table.mem table id) then
        Node_id.Table.add table id extra)
    t.node_order;
  t.groups <- Some table

let heal_partition t = t.groups <- None

let reachable t src dst =
  match t.groups with
  | None -> true
  | Some table ->
      Node_id.equal src dst
      || Node_id.Table.find_opt table src = Node_id.Table.find_opt table dst

let serialization_of t k =
  match Hashtbl.find_opt t.serialization k with
  | Some s -> s
  | None -> t.default_serialization

let egress_of t k =
  match Hashtbl.find_opt t.egresses k with
  | Some eg -> eg
  | None ->
      let eg =
        {
          busy = false;
          eg_urgent = Queue.create ();
          eg_bulk = Queue.create ();
          depth_high_water = 0;
        }
      in
      Hashtbl.add t.egresses k eg;
      eg

(* Build and cache the port for a directed pair; both endpoints must be
   registered.  Creation order is digest-irrelevant — [Stats.Rng.split]
   is pure, so when a link is created does not affect any draw
   sequence. *)
let make_port t ~src ~dst k =
  let src_state = state t src in
  let dst_state = state t dst in
  let ser = serialization_of t k in
  let p =
    {
      pt_fabric = t;
      pt_src = src;
      pt_dst = dst;
      pt_link = link t ~src ~dst;
      pt_channel = channel t src dst;
      pt_src_state = src_state;
      pt_dst_state = dst_state;
      pt_serialization = ser;
      pt_egress = (if ser > 0 then Some (egress_of t k) else None);
    }
  in
  Itab.add t.ports k p;
  p

let set_serialization t ~src ~dst span =
  if span < 0 then invalid_arg "Fabric.set_serialization: negative span";
  let k = key src dst in
  Hashtbl.replace t.serialization k span;
  match Itab.find t.ports k with
  | None -> ()
  | Some p ->
      p.pt_serialization <- span;
      if span > 0 then
        match p.pt_egress with
        | Some _ -> ()
        | None -> p.pt_egress <- Some (egress_of t k)

let set_uniform_serialization t span =
  if span < 0 then invalid_arg "Fabric.set_uniform_serialization: negative span";
  t.default_serialization <- span;
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Node_id.equal src dst) then set_serialization t ~src ~dst span)
        t.node_order)
    t.node_order

(* Put one message on the (now free) wire: sample the link model and
   schedule the delivery through the engine's handler table.  This is
   the entire send path when no serialization delay is configured, and
   the wire-free continuation when one is.  Allocation-free for
   datagrams (the dominant kind): packed link sample, pooled event,
   int-carried cause. *)
let[@hot] transmit_port t p kind ~cause msg =
  let extra =
    match p.pt_src_state.congestion with
    | None -> 0
    | Some c -> Congestion.extra_delay c ~now:(Des.Engine.now t.engine)
  in
  match kind with
  | Transport.Datagram ->
      let d1 = Link.sample_datagram_packed p.pt_link in
      if d1 < 0 then t.lost <- t.lost + 1
      else begin
        let d2 = Link.dup_latency p.pt_link in
        Des.Engine.schedule_op_after t.engine (d1 + extra) t.deliver_op p msg
          cause;
        if d2 >= 0 then begin
          t.duplicated <- t.duplicated + 1;
          Des.Engine.schedule_op_after t.engine (d2 + extra) t.deliver_op p
            (t.dup_clone msg) cause
        end
      end
  | Transport.Reliable ->
      let latency = Link.sample_reliable p.pt_link + extra in
      let now = Des.Engine.now t.engine in
      let at = Transport.Channel.delivery_time p.pt_channel ~now ~latency in
      Des.Engine.schedule_op_at t.engine at t.deliver_op p msg cause

let egress_depth eg =
  Queue.length eg.eg_urgent + Queue.length eg.eg_bulk
  + if eg.busy then 1 else 0

(* Drain the egress: urgent lane first, then bulk, FIFO within each —
   deterministic because sends on one link happen in engine sequence
   order.  Each message occupies the wire for [units x serialization]
   before the link's propagation model takes over. *)
let[@hot] rec pump t p eg =
  let next =
    if not (Queue.is_empty eg.eg_urgent) then Some (Queue.pop eg.eg_urgent)
    else if not (Queue.is_empty eg.eg_bulk) then Some (Queue.pop eg.eg_bulk)
    else None
  in
  match next with
  | None -> eg.busy <- false
  | Some (kind, units, cause, msg) ->
      eg.busy <- true;
      let wire = units * p.pt_serialization in
      ignore
        (Des.Engine.schedule_after t.engine wire (fun () ->
             transmit_port t p kind ~cause msg;
             pump t p eg)
          : Des.Engine.handle)

(* Route one message through a resolved port: free wire -> transmit now;
   serialized wire -> queue on the egress. *)
let[@hot] send_port t p kind lane units ~cause msg =
  if p.pt_serialization <= 0 then transmit_port t p kind ~cause msg
  else begin
    let eg =
      match p.pt_egress with
      | Some eg -> eg
      | None ->
          (* Serialization was configured before this port existed. *)
          let eg = egress_of t (key p.pt_src p.pt_dst) in
          p.pt_egress <- Some eg;
          eg
    in
    (match lane with
    | Transport.Urgent -> Queue.push (kind, units, cause, msg) eg.eg_urgent
    | Transport.Bulk -> Queue.push (kind, units, cause, msg) eg.eg_bulk);
    let depth = egress_depth eg in
    if depth > eg.depth_high_water then eg.depth_high_water <- depth;
    if not eg.busy then pump t p eg
  end

let[@hot] send t kind ?(lane = Transport.Urgent) ?(units = 1) ~src ~dst msg =
  t.sent <- t.sent + 1;
  (* The staged cause is one-shot: whatever happens to this message
     (delivered, lost, queued), the next send starts clean. *)
  let cause = t.staged_cause in
  if cause <> 0 then t.staged_cause <- 0;
  if Node_id.equal src dst then
    if cause = 0 then deliver t ~src ~dst msg
    else begin
      t.last_cause <- cause;
      deliver t ~src ~dst msg;
      t.last_cause <- 0
    end
  else
    let k = key src dst in
    match Itab.find t.ports k with
    | Some p ->
        (* A cached port implies both endpoints are registered. *)
        if not (reachable t src dst) then t.lost <- t.lost + 1
        else send_port t p kind lane units ~cause msg
    | None ->
        if not (Node_id.Table.mem t.nodes dst) then
          (* Destination left the fabric: the message vanishes into a
             closed port. *)
          t.lost <- t.lost + 1
        else if not (reachable t src dst) then t.lost <- t.lost + 1
        else send_port t (make_port t ~src ~dst k) kind lane units ~cause msg

let pending t ~src ~dst =
  match Hashtbl.find_opt t.egresses (key src dst) with
  | None -> 0
  | Some eg -> egress_depth eg

let link_queue_depths t =
  Hashtbl.fold
    (fun k eg acc ->
      ((k lsr 20, k land 0xFFFFF), eg.depth_high_water) :: acc)
    t.egresses []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)

let pause t id = (state t id).paused <- true
let resume t id = (state t id).paused <- false
let is_paused t id = (state t id).paused

let counters t =
  {
    sent = t.sent;
    delivered = t.delivered;
    lost = t.lost;
    dropped_paused = t.dropped_paused;
    duplicated = t.duplicated;
  }

let link_counters t =
  Hashtbl.fold
    (fun k l acc -> ((k lsr 20, k land 0xFFFFF), Link.counters l) :: acc)
    t.links []
  |> List.sort (fun ((a1, a2), _) ((b1, b2), _) ->
         match Int.compare a1 b1 with 0 -> Int.compare a2 b2 | c -> c)
