(** A directed network link.

    Samples per-message outcomes (delay, loss, duplication) from the link's
    current {!Conditions.profile}.  One-way delay is [RTT/2] scaled by a
    mean-preserving lognormal jitter multiplier, so the configured RTT is
    the long-run mean RTT observed by request/response exchanges. *)

type t

type counters = private {
  mutable sent : int;  (** messages offered to the link *)
  mutable delivered : int;  (** at least one copy arrived *)
  mutable lost : int;  (** datagrams dropped by the loss draw *)
  mutable duplicated : int;  (** datagrams delivered twice *)
  mutable retransmissions : int;  (** reliable-stream loss events *)
}
(** Per-link transmission statistics, maintained unconditionally (one
    field increment per sample, on a path that draws from the PRNG).
    Reliable sends always count as delivered — loss becomes
    retransmission delay, tallied separately. *)

val create : Des.Engine.t -> rng:Stats.Rng.t -> Conditions.t -> t
val set_conditions : t -> Conditions.t -> unit
val conditions : t -> Conditions.t

val counters : t -> counters
(** The link's live counter record (not a copy). *)

val profile_now : t -> Conditions.profile
(** The profile in force at the current simulation time. *)

type outcome =
  | Lost
  | Delivered of Des.Time.span  (** one-way latency *)
  | Duplicated of Des.Time.span * Des.Time.span
      (** two copies with independent latencies *)

val sample_datagram : t -> outcome
(** Unreliable (UDP-like) transmission: loss and duplication apply. *)

val sample_datagram_packed : t -> int
(** Variant-free {!sample_datagram} for the fabric's hot path: same
    draws in the same order, but returns [-1] for a lost datagram or the
    one-way latency otherwise, and parks any duplicate copy's latency
    for {!dup_latency} instead of boxing an outcome. *)

val dup_latency : t -> int
(** Second-copy latency of the last {!sample_datagram_packed} ([-1] when
    it produced no duplicate).  Overwritten by the next packed sample. *)

val sample_reliable : t -> Des.Time.span
(** Reliable (TCP-like) transmission latency: message loss is converted to
    retransmission delay with exponential RTO backoff (minimum RTO 200 ms,
    initial RTO [max(200ms, 2·RTT)]), so the message always arrives but
    late under loss. *)
