(** Open-addressing table keyed by non-negative ints, for the fabric's
    directed-pair hot lookups.

    Unlike [(int, _) Hashtbl.t], {!find} makes no C call (the hash is
    one Fibonacci multiply) and allocates nothing — it returns the
    option box stored at insertion.  Linear probing over power-of-2
    capacity at load factor <= 1/2.  Keys must be [>= 0]. *)

type 'a t

val create : int -> 'a t
(** Table expecting around [n] entries (grows as needed). *)

val find : 'a t -> int -> 'a option
(** Allocation-free lookup: the returned option is the box stored by
    {!add}, shared across calls. *)

val add : 'a t -> int -> 'a -> unit
(** Insert or replace. *)

val filter : 'a t -> (int -> 'a -> bool) -> unit
(** Drop every entry the predicate rejects (rebuilds in place —
    deletion is assumed rare). *)

val iter : 'a t -> (int -> 'a -> unit) -> unit
val length : 'a t -> int
