type counters = {
  mutable sent : int;
  mutable delivered : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable retransmissions : int;
}

type t = {
  engine : Des.Engine.t;
  rng : Stats.Rng.t;
  mutable conditions : Conditions.t;
  counters : counters;
  mutable dup : int;  (* second-copy latency of the last packed sample *)
}

let create engine ~rng conditions =
  {
    engine;
    rng;
    conditions;
    counters =
      { sent = 0; delivered = 0; lost = 0; duplicated = 0; retransmissions = 0 };
    dup = -1;
  }

let set_conditions t c = t.conditions <- c
let conditions t = t.conditions
let counters t = t.counters
let profile_now t = Conditions.at t.conditions (Des.Engine.now t.engine)

type outcome =
  | Lost
  | Delivered of Des.Time.span
  | Duplicated of Des.Time.span * Des.Time.span

let one_way t (p : Conditions.profile) =
  let base = p.rtt_ms /. 2. in
  let mult = Stats.Dist.lognormal_mean_preserving t.rng ~sigma:p.jitter in
  Des.Time.of_ms_f (base *. mult)

let sample_datagram t =
  let c = t.counters in
  c.sent <- c.sent + 1;
  let p = profile_now t in
  if Stats.Rng.bernoulli t.rng p.loss then begin
    c.lost <- c.lost + 1;
    Lost
  end
  else begin
    c.delivered <- c.delivered + 1;
    let d1 = one_way t p in
    if p.duplicate > 0. && Stats.Rng.bernoulli t.rng p.duplicate then begin
      c.duplicated <- c.duplicated + 1;
      Duplicated (d1, one_way t p)
    end
    else Delivered d1
  end

(* Variant-free [sample_datagram] for the fabric's hot path: identical
   draws in identical order, but the outcome is an int (-1 = lost, else
   the one-way latency) with any duplicate's latency parked in [t.dup]
   until the next packed sample.  Saves one outcome block per message. *)
let sample_datagram_packed t =
  let c = t.counters in
  c.sent <- c.sent + 1;
  let p = profile_now t in
  if Stats.Rng.bernoulli t.rng p.loss then begin
    c.lost <- c.lost + 1;
    t.dup <- -1;
    -1
  end
  else begin
    c.delivered <- c.delivered + 1;
    let d1 = one_way t p in
    if p.duplicate > 0. && Stats.Rng.bernoulli t.rng p.duplicate then begin
      c.duplicated <- c.duplicated + 1;
      t.dup <- one_way t p
    end
    else t.dup <- -1;
    d1
  end

let dup_latency t = t.dup
let min_rto = Des.Time.ms 200
let max_retransmissions = 8

let sample_reliable t =
  let c = t.counters in
  c.sent <- c.sent + 1;
  c.delivered <- c.delivered + 1;
  let p = profile_now t in
  let rto = Des.Time.max_span min_rto (Des.Time.of_ms_f (2. *. p.rtt_ms)) in
  let rec attempt n penalty =
    if n >= max_retransmissions then penalty
    else if Stats.Rng.bernoulli t.rng p.loss then begin
      c.retransmissions <- c.retransmissions + 1;
      attempt (n + 1) (penalty + (rto * (1 lsl n)))
    end
    else penalty
  in
  attempt 0 0 + one_way t p
