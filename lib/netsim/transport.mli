(** Transport semantics over a {!Link}.

    Dynatune sends heartbeats over UDP and consensus traffic over TCP
    (Section III-E); the two transports differ in loss behaviour and
    ordering, which is exactly what these two kinds model. *)

type kind =
  | Datagram
      (** UDP-like: messages may be lost, duplicated, or reordered by
          variable delay. *)
  | Reliable
      (** TCP-like: per-(src,dst) FIFO delivery; loss becomes
          retransmission delay. *)

val pp_kind : Format.formatter -> kind -> unit

type lane =
  | Urgent
      (** protocol-critical traffic (heartbeats, votes, TimeoutNow):
          jumps ahead of any queued bulk messages at the egress *)
  | Bulk
      (** entry-carrying replication traffic: queues behind urgent
          messages when the sender's NIC is busy *)
(** Egress scheduling class.  Lanes only matter on a {!Fabric} link with
    a configured serialization delay; without one every message departs
    immediately and the lane is ignored. *)

val pp_lane : Format.formatter -> lane -> unit

module Channel : sig
  (** Per-(src,dst) reliable-channel ordering state. *)

  type t

  val create : unit -> t

  val delivery_time : t -> now:Des.Time.t -> latency:Des.Time.span -> Des.Time.t
  (** Arrival instant for a message sent now with the given sampled
      latency, pushed later if needed so deliveries on this channel stay
      in send order (head-of-line blocking, as TCP exhibits under
      retransmission). *)
end
