(* Open-addressing int-keyed table for the fabric's directed-pair hot
   lookups.  [Hashtbl] with int keys costs a polymorphic-hash C call per
   operation and [find_opt] boxes an option per hit; here the hash is a
   single Fibonacci multiply and [find] returns the option box stored at
   insertion, so a lookup allocates nothing.  Linear probing, power-of-2
   capacity, load factor <= 1/2; deletion is a filtering rebuild (only
   [remove_node] deletes, and that is rare and O(n) anyway). *)

type 'a t = {
  mutable keys : int array;  (* -1 = empty *)
  mutable vals : 'a option array;  (* physically paired with [keys] *)
  mutable mask : int;  (* capacity - 1 *)
  mutable shift : int;  (* 63 - log2 capacity *)
  mutable count : int;
}

(* Odd 64-bit multiplier (Fibonacci hashing): the top bits of [k * phi]
   are well mixed even for sequential keys.  [lsr] is a logical shift,
   so a negative product still indexes correctly. *)
let phi = 0x2545F4914F6CDD1D

let[@inline] slot t k = ((k * phi) lsr t.shift) land t.mask

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let sized_arrays cap = (Array.make cap (-1), Array.make cap None)

let create n =
  let rec cap c = if c >= 2 * n then c else cap (2 * c) in
  let cap = cap 16 in
  let keys, vals = sized_arrays cap in
  { keys; vals; mask = cap - 1; shift = 63 - log2 cap; count = 0 }

let length t = t.count

let rec probe_find t k i =
  let key = t.keys.(i) in
  if key = k then t.vals.(i)
  else if key < 0 then None
  else probe_find t k ((i + 1) land t.mask)

let[@inline] find t k = probe_find t k (slot t k)

let rec probe_slot t k i =
  let key = t.keys.(i) in
  if key = k || key < 0 then i else probe_slot t k ((i + 1) land t.mask)

let rec add t k v =
  if 2 * (t.count + 1) > t.mask + 1 then grow t;
  let i = probe_slot t k (slot t k) in
  if t.keys.(i) < 0 then begin
    t.keys.(i) <- k;
    t.count <- t.count + 1
  end;
  t.vals.(i) <- Some v

and grow t =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = 2 * (t.mask + 1) in
  let keys, vals = sized_arrays cap in
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- cap - 1;
  t.shift <- 63 - log2 cap;
  t.count <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then
        match old_vals.(i) with Some v -> add t k v | None -> ())
    old_keys

let iter t f =
  Array.iteri
    (fun i k ->
      if k >= 0 then match t.vals.(i) with Some v -> f k v | None -> ())
    t.keys

(* Rebuild keeping only entries the predicate accepts — deletion without
   tombstones, so probe chains stay intact. *)
let filter t f =
  let old_keys = t.keys and old_vals = t.vals in
  let cap = t.mask + 1 in
  let keys, vals = sized_arrays cap in
  t.keys <- keys;
  t.vals <- vals;
  t.count <- 0;
  Array.iteri
    (fun i k ->
      if k >= 0 then
        match old_vals.(i) with
        | Some v -> if f k v then add t k v
        | None -> ())
    old_keys
