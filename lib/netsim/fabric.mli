(** The cluster's message fabric: a full mesh of directed links.

    Generic in the message type so the Raft layer supplies its own RPC
    variant.  The fabric owns per-pair {!Link}s (lazily created, each with
    its own PRNG substream), applies transport semantics, and implements
    the fault model of the paper's experiments: pausing a node (the
    container-sleep fault) silently discards everything addressed to it. *)

type 'msg t

val create : Des.Engine.t -> 'msg t
val engine : _ t -> Des.Engine.t

val add_node : 'msg t -> Node_id.t -> unit
(** Register a node.  Adding the same id twice is an error. *)

val remove_node : 'msg t -> Node_id.t -> unit
(** Deregister a node: its state, handler and every link or channel
    touching it are discarded, so a node re-added under the same id gets
    fresh per-link delay/loss models.  Messages already in flight toward
    it are dropped on arrival (counted as [dropped_paused]); new sends to
    it are counted as [lost].  Removing an unknown id is an error. *)

val nodes : _ t -> Node_id.t list

val set_handler : 'msg t -> Node_id.t -> (src:Node_id.t -> 'msg -> unit) -> unit
(** Install the delivery callback for a node. *)

val set_conditions :
  'msg t -> src:Node_id.t -> dst:Node_id.t -> Conditions.t -> unit
(** Conditions for the directed link [src → dst]. *)

val set_pair_conditions :
  'msg t -> Node_id.t -> Node_id.t -> Conditions.t -> unit
(** Same conditions in both directions. *)

val set_uniform_conditions : 'msg t -> Conditions.t -> unit
(** Same conditions on every directed link between registered nodes. *)

val link : 'msg t -> src:Node_id.t -> dst:Node_id.t -> Link.t
(** The directed link (created on demand). *)

val send :
  'msg t ->
  Transport.kind ->
  ?lane:Transport.lane ->
  ?units:int ->
  src:Node_id.t ->
  dst:Node_id.t ->
  'msg ->
  unit
(** Transmit a message.  Self-sends are delivered immediately.

    When the link has a serialization delay configured
    ({!set_serialization}), the message first queues at the sender's
    egress and occupies the wire for [units x serialization] (default
    [units = 1]) before the link's propagation model applies; [lane]
    (default [Urgent]) picks the egress class — urgent messages depart
    before anything waiting in the bulk lane.  Without a serialization
    delay the egress queue does not exist, [lane]/[units] are ignored,
    and the send path is identical to the pre-lane fabric. *)

val set_serialization :
  'msg t -> src:Node_id.t -> dst:Node_id.t -> Des.Time.span -> unit
(** Per-message wire time (per {!send} unit) on the directed link.
    [0] (the default) disables the egress queue entirely. *)

val set_uniform_serialization : 'msg t -> Des.Time.span -> unit
(** Serialization delay for every directed link (including future ones). *)

val set_dup_clone : 'msg t -> ('msg -> 'msg) -> unit
(** Copy function applied to the {e second} delivery of a duplicated
    datagram (identity by default).  A host that pools message payloads
    must install one: the two deliveries otherwise share a record, and
    releasing it after the first delivery could recycle the copy the
    second still holds.  The clone must be value-identical, so digests
    cannot observe it. *)

val pending : 'msg t -> src:Node_id.t -> dst:Node_id.t -> int
(** Messages queued at (or occupying) the [src -> dst] egress right now:
    the per-destination congestion signal a sender throttles bulk
    traffic on.  Always [0] on a link without serialization. *)

val link_queue_depths : _ t -> ((int * int) * int) list
(** High-water egress queue depth per directed link, keyed by
    [(src, dst)] node ints and sorted by that key.  Links that never
    queued (no serialization delay) are absent. *)

(** {2 Causal piggyback}

    The forensics layer threads an opaque cause token alongside each
    message: the sender stages it immediately before {!send}, the fabric
    carries it through egress queues and link delays, and the receiver
    reads it back with {!delivery_cause} from inside its delivery
    handler.  Tokens are plain nonzero ints (packed by the telemetry
    layer, which this library cannot depend on); [0] means "no cause".
    Until {!enable_cause_tracking} is called, {!stage_cause} is a no-op
    and the send path is byte-identical to a fabric without the
    channel. *)

val enable_cause_tracking : _ t -> unit

val stage_cause : _ t -> int -> unit
(** Attach a cause to the next {!send} on this fabric (one-shot).  No-op
    unless tracking is enabled. *)

val delivery_cause : _ t -> int
(** The cause of the delivery currently in progress ([0] outside a
    tracked delivery).  Only meaningful when called synchronously from a
    handler installed with {!set_handler}. *)

val set_egress_congestion : 'msg t -> Node_id.t -> Congestion.spec -> unit
(** Attach a sender-side congestion process to a node: during an episode,
    everything the node sends (all links, both transports) incurs the
    episode's extra one-way delay. *)

val set_all_egress_congestion : 'msg t -> Congestion.spec -> unit
(** Independent congestion processes on every registered node. *)

val partition : 'msg t -> Node_id.t list list -> unit
(** Split the cluster into groups: messages are delivered only between
    nodes of the same group.  Nodes not mentioned form an implicit final
    group.  Replaces any previous partition. *)

val heal_partition : 'msg t -> unit
(** Remove the partition; full connectivity is restored. *)

val reachable : 'msg t -> Node_id.t -> Node_id.t -> bool
(** Whether messages currently flow from one node to the other. *)

val pause : 'msg t -> Node_id.t -> unit
(** Start dropping every message delivered to the node. *)

val resume : 'msg t -> Node_id.t -> unit
val is_paused : 'msg t -> Node_id.t -> bool

type counters = {
  sent : int;
  delivered : int;
  lost : int;  (** dropped by link loss (datagram only) *)
  dropped_paused : int;  (** addressed to a paused node *)
  duplicated : int;
}

val counters : _ t -> counters

val link_counters : _ t -> ((int * int) * Link.counters) list
(** Per-link statistics for every link created so far, keyed by
    [(src, dst)] node ints and sorted by that key, so snapshots built
    from it are deterministic.  Links are created lazily: a pair that
    never exchanged a message is absent. *)
