type event =
  | Timeout of {
      randomized : Des.Time.span;
      et : Des.Time.span;
      h : Des.Time.span;
      k : int;
    }
  | Campaign of { pre : bool }
  | Role of { role : string }
  | Vote of { from : int; granted : bool; pre : bool }
  | Tuner of {
      rtt_ms : float;
      loss : float;
      et : Des.Time.span;
      h : Des.Time.span;
      k : int;
      reason : string;
    }
  | Tuner_reset
  | Prevote_abort
  | Paused
  | Resumed
  | Transfer of { target : int }
  | Config of { change : string; committed : bool }

type record = {
  at : Des.Time.t;
  node : int;
  term : int;
  cause : Cause.t;
  parent : Cause.t;
  ev : event;
}

let dummy =
  { at = 0; node = 0; term = 0; cause = 0; parent = 0; ev = Tuner_reset }

type t = {
  on : bool;
  ring : record array;  (* [| |] when disabled *)
  mutable len : int;
  mutable next : int;  (* slot the next record goes into *)
  mutable dropped : int;
  mutable seq : int;  (* cause sequence counter *)
}

let create ?(capacity = 8192) ?(enabled = true) () =
  if capacity <= 0 then invalid_arg "Forensics.create: capacity must be positive";
  {
    on = enabled;
    ring = (if enabled then Array.make capacity dummy else [||]);
    len = 0;
    next = 0;
    dropped = 0;
    seq = 0;
  }

(* The shared disabled ring mutates nothing: [record]/[new_cause] bail
   on [on] before touching any field. *)
let noop = { on = false; ring = [||]; len = 0; next = 0; dropped = 0; seq = 0 }
let enabled t = t.on

let new_cause t ~kind ~node ~term =
  if not t.on then Cause.none
  else begin
    t.seq <- t.seq + 1;
    Cause.make ~kind ~node ~term ~seq:t.seq
  end

let record t ~at ~node ~term ~cause ~parent ev =
  if t.on then begin
    let cap = Array.length t.ring in
    t.ring.(t.next) <- { at; node; term; cause; parent; ev };
    t.next <- (t.next + 1) mod cap;
    if t.len < cap then t.len <- t.len + 1 else t.dropped <- t.dropped + 1
  end

let length t = t.len
let dropped t = t.dropped

let records t =
  let cap = Array.length t.ring in
  List.init t.len (fun i ->
      t.ring.((t.next - t.len + i + cap) mod cap))

let pp_event ppf = function
  | Timeout { randomized; et; h; k } ->
      Format.fprintf ppf "timeout fired (randomized %a) Et=%a h=%a K=%d"
        Des.Time.pp_ms randomized Des.Time.pp_ms et Des.Time.pp_ms h k
  | Campaign { pre } ->
      Format.fprintf ppf "campaign started%s" (if pre then " (pre-vote)" else "")
  | Role { role } -> Format.fprintf ppf "role -> %s" role
  | Vote { from; granted; pre } ->
      Format.fprintf ppf "%s from n%d: %s"
        (if pre then "pre-vote" else "vote")
        from
        (if granted then "granted" else "denied")
  | Tuner { rtt_ms; loss; et; h; k; reason } ->
      Format.fprintf ppf "tuner %s: rtt %.3fms loss %.4f -> Et=%a h=%a K=%d"
        reason rtt_ms loss Des.Time.pp_ms et Des.Time.pp_ms h k
  | Tuner_reset -> Format.pp_print_string ppf "tuner reset"
  | Prevote_abort -> Format.pp_print_string ppf "pre-vote aborted"
  | Paused -> Format.pp_print_string ppf "paused"
  | Resumed -> Format.pp_print_string ppf "resumed"
  | Transfer { target } -> Format.fprintf ppf "transfer to n%d" target
  | Config { change; committed } ->
      Format.fprintf ppf "config %s %s"
        (if committed then "committed" else "appended")
        change

let render_record r =
  Format.asprintf "%a n%d t%d %s<-%s %a" Des.Time.pp r.at r.node r.term
    (Cause.to_string r.cause) (Cause.to_string r.parent) pp_event r.ev

let render t = List.map render_record (records t)

let tail t n =
  let all = records t in
  let len = List.length all in
  let rec drop k l = if k <= 0 then l else match l with [] -> [] | _ :: tl -> drop (k - 1) tl in
  List.map render_record (drop (len - n) all)

let merge_rendered dumps =
  List.concat
    (List.mapi
       (fun i lines ->
         let prefix = "s" ^ string_of_int i ^ " " in
         List.map (fun l -> prefix ^ l) lines)
       dumps)
