(** Time-series recorder: DES-clock-cadence sampling of a metrics
    registry into columnar series.

    {!attach} schedules a self-rescheduling sampling event on the DES
    engine; at each tick it snapshots the registry and appends every
    counter and gauge value (histograms are skipped — they are already
    cumulative) to its series.  The sampling events consume engine
    sequence numbers but draw no randomness and emit no probes, so trace
    digests are unaffected by the recorder being on — the property the
    jobs-bit-identity tests pin.

    A recorder reschedules itself forever; drive the engine with
    [run_for]/[run_until] (as every scenario does), never run-to-empty.

    Disabled recorders ({!noop}, [create ~enabled:false]) never touch
    the engine: {!attach} is a no-op, keeping the disabled path free of
    extra events and allocation. *)

type t

val create : ?enabled:bool -> every:Des.Time.span -> unit -> t
(** A recorder sampling every [every] of virtual time (first sample one
    period after {!attach}).  Raises [Invalid_argument] if
    [every <= 0]. *)

val noop : t
(** A shared disabled recorder. *)

val enabled : t -> bool

val attach : t -> Des.Engine.t -> (unit -> Metrics.snapshot) -> unit
(** Start sampling [snapshot ()] on the engine's clock.  No-op when
    disabled.  Attach at most once per recorder. *)

val samples : t -> int
(** Ticks recorded so far. *)

type dump = (string * (float * float) array) list
(** Columnar series, sorted by key ({!Metrics.key_label}): for each key
    the [(t_ms, value)] samples in time order.  Counters are rendered as
    their integer value, gauges as the level. *)

val dump : t -> dump

val merge : dump list -> dump
(** Shard merge: part [i]'s keys are prefixed ["s<i>/"] and the parts
    concatenated in the given order, so the result depends only on the
    shard plan — [--jobs 1] and [--jobs N] merges are equal on a pinned
    plan. *)

val to_csv : dump -> string
(** Wide CSV: header [t_ms,<key>,...], one row per sampled instant
    (union over keys), empty cells where a key has no sample.
    Deterministic bytes for equal dumps. *)

val to_openmetrics : dump -> string
(** OpenMetrics text: one gauge family per key (label characters outside
    [[a-zA-Z0-9_:]] become [_]; a ["@node"] suffix becomes a [node]
    label), every sample with its timestamp in seconds, terminated by
    [# EOF]. *)

val window : t -> int -> string list
(** The last [n] ticks rendered one line each (["<time> k=v k=v ..."]) —
    the flight-recorder view dumped beside violations. *)
