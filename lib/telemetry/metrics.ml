type key = { scope : string; name : string; node : string }

let compare_key a b =
  match String.compare a.scope b.scope with
  | 0 -> (
      match String.compare a.name b.name with
      | 0 -> String.compare a.node b.node
      | c -> c)
  | c -> c

let key_label k =
  if k.node = "" then k.scope ^ "/" ^ k.name
  else k.scope ^ "/" ^ k.name ^ "@" ^ k.node

(* Handles are the cells themselves.  A disabled registry hands out
   shared dead handles whose [live] flag is false, so every emission on
   the hot path costs exactly one load and one branch. *)

module Counter = struct
  type t = { mutable n : int; live : bool }

  let dead = { n = 0; live = false }
  let incr c = if c.live then c.n <- c.n + 1
  let add c k = if c.live then c.n <- c.n + k
  let value c = c.n
end

module Gauge = struct
  type t = { mutable v : float; mutable present : bool; live : bool }

  let dead = { v = 0.; present = false; live = false }

  let set g x =
    if g.live then begin
      g.v <- x;
      g.present <- true
    end

  let set_max g x =
    if g.live && ((not g.present) || x > g.v) then begin
      g.v <- x;
      g.present <- true
    end

  let value g = g.v
end

module Timer = struct
  (* [None] is the dead handle. *)
  type t = Stats.Histogram.t option

  let dead : t = None

  let observe_ms t x =
    match t with None -> () | Some h -> Stats.Histogram.add h x
end

type cell =
  | Counter_cell of Counter.t
  | Gauge_cell of Gauge.t
  | Timer_cell of Stats.Histogram.t

type t = {
  enabled : bool;
  cells : (key, cell) Hashtbl.t;
  mutable order : key list; (* registration order, newest first *)
}

let create ?(enabled = true) () =
  { enabled; cells = Hashtbl.create 64; order = [] }

(* Shared no-op registry.  Registration on a disabled registry
   short-circuits before touching the table, so this value is never
   mutated and is safe to share across campaign domains. *)
let noop = create ~enabled:false ()

let enabled t = t.enabled

let register t key fresh =
  match Hashtbl.find_opt t.cells key with
  | Some cell -> cell
  | None ->
      let cell = fresh () in
      Hashtbl.add t.cells key cell;
      t.order <- key :: t.order;
      cell

let kind_error key want =
  invalid_arg
    (Printf.sprintf "Metrics: %s already registered with a different kind (%s)"
       (key_label key) want)

let counter t ~scope ~name ?(node = "") () =
  if not t.enabled then Counter.dead
  else
    let key = { scope; name; node } in
    match register t key (fun () -> Counter_cell { Counter.n = 0; live = true }) with
    | Counter_cell c -> c
    | Gauge_cell _ | Timer_cell _ -> kind_error key "counter"

let gauge t ~scope ~name ?(node = "") () =
  if not t.enabled then Gauge.dead
  else
    let key = { scope; name; node } in
    match
      register t key (fun () ->
          Gauge_cell { Gauge.v = 0.; present = false; live = true })
    with
    | Gauge_cell g -> g
    | Counter_cell _ | Timer_cell _ -> kind_error key "gauge"

let timer t ~scope ~name ?(node = "") ~lo ~hi ~bins () =
  if not t.enabled then Timer.dead
  else
    let key = { scope; name; node } in
    match
      register t key (fun () -> Timer_cell (Stats.Histogram.create ~lo ~hi ~bins))
    with
    | Timer_cell h -> Some h
    | Counter_cell _ | Gauge_cell _ -> kind_error key "timer"

(* {2 Snapshots} *)

type value =
  | Count of int
  | Level of float
  | Series of Stats.Histogram.t

type snapshot = (key * value) list

let snapshot t =
  List.rev t.order
  |> List.filter_map (fun key ->
         match Hashtbl.find_opt t.cells key with
         | Some (Counter_cell c) -> Some (key, Count c.Counter.n)
         | Some (Gauge_cell g) ->
             if g.Gauge.present then Some (key, Level g.Gauge.v) else None
         | Some (Timer_cell h) -> Some (key, Series (Stats.Histogram.copy h))
         | None -> None)
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let merge_values key a b =
  match (a, b) with
  | Count x, Count y -> Count (x + y)
  | Level x, Level y -> Level (if y > x then y else x)
  | Series x, Series y -> Series (Stats.Histogram.merge x y)
  | (Count _ | Level _ | Series _), _ ->
      invalid_arg
        ("Metrics.merge: " ^ key_label key ^ " has mismatched kinds across parts")

(* Union of keys; counters sum, gauges keep the max, timers merge their
   congruent histograms — the same associative part-merging contract as
   [Summary.of_parts], so sharded campaigns aggregate deterministically
   whatever the worker count. *)
let merge parts =
  let merged = Hashtbl.create 64 in
  List.iter
    (fun part ->
      List.iter
        (fun (key, v) ->
          match Hashtbl.find_opt merged key with
          | None -> Hashtbl.add merged key v
          | Some prev -> Hashtbl.replace merged key (merge_values key prev v))
        part)
    parts;
  Hashtbl.fold (fun key v acc -> (key, v) :: acc) merged []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

(* {2 Rendering} *)

(* One fixed float syntax so snapshots compare bit-for-bit: shortest
   round-trippable decimal, with non-finite values mapped to null. *)
let json_float x =
  if Float.is_nan x || Float.abs x = Float.infinity then "null"
  else
    let s = Printf.sprintf "%.17g" x in
    if float_of_string s = x then
      let shorter = Printf.sprintf "%.15g" x in
      if float_of_string shorter = x then shorter else s
    else s

let escape_json s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let value_to_json = function
  | Count n -> string_of_int n
  | Level v -> json_float v
  | Series h ->
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "{\"count\": %d, \"lo\": %s, \"hi\": %s, "
           (Stats.Histogram.count h)
           (json_float (Stats.Histogram.lo h))
           (json_float (Stats.Histogram.hi h)));
      Buffer.add_string b
        (Printf.sprintf "\"underflow\": %d, \"overflow\": %d, \"bins\": ["
           (Stats.Histogram.underflow h)
           (Stats.Histogram.overflow h));
      for i = 0 to Stats.Histogram.bins h - 1 do
        if i > 0 then Buffer.add_string b ", ";
        Buffer.add_string b (string_of_int (Stats.Histogram.bin_count h i))
      done;
      Buffer.add_string b "]}";
      Buffer.contents b

let to_json snapshot =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{";
  List.iteri
    (fun i (key, v) ->
      if i > 0 then Buffer.add_string b ",";
      Buffer.add_string b "\n    \"";
      Buffer.add_string b (escape_json (key_label key));
      Buffer.add_string b "\": ";
      Buffer.add_string b (value_to_json v))
    snapshot;
  if snapshot <> [] then Buffer.add_string b "\n  ";
  Buffer.add_string b "}";
  Buffer.contents b

let pp ppf snapshot =
  List.iter
    (fun (key, v) ->
      match v with
      | Count n -> Format.fprintf ppf "%-40s %d@." (key_label key) n
      | Level x -> Format.fprintf ppf "%-40s %g@." (key_label key) x
      | Series h ->
          Format.fprintf ppf "%-40s n=%d@." (key_label key)
            (Stats.Histogram.count h))
    snapshot
