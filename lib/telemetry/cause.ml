type t = int

type kind =
  | Election_timer
  | Heartbeat_timer
  | Client
  | Fault
  | Internal

let none = 0
let is_none c = c = 0

(* 1-based kind codes keep every packed cause nonzero even when node,
   term and seq are all 0. *)
let kind_code = function
  | Election_timer -> 1
  | Heartbeat_timer -> 2
  | Client -> 3
  | Fault -> 4
  | Internal -> 5

let kind_of_code = function
  | 1 -> Election_timer
  | 2 -> Heartbeat_timer
  | 3 -> Client
  | 4 -> Fault
  | _ -> Internal

let make ~kind ~node ~term ~seq =
  (kind_code kind lsl 59)
  lor ((node land 0xFFF) lsl 47)
  lor ((term land 0x7FFF) lsl 32)
  lor (seq land 0xFFFFFFFF)

let kind c = kind_of_code ((c lsr 59) land 0x7)
let node c = (c lsr 47) land 0xFFF
let term c = (c lsr 32) land 0x7FFF
let seq c = c land 0xFFFFFFFF

let kind_name = function
  | Election_timer -> "et"
  | Heartbeat_timer -> "hb"
  | Client -> "cl"
  | Fault -> "ft"
  | Internal -> "in"

let to_string c =
  if c = 0 then "-"
  else
    Printf.sprintf "%s:n%d/t%d#%d" (kind_name (kind c)) (node c) (term c)
      (seq c)
