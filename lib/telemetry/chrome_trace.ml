(* Chrome trace-event JSON writer (the format Perfetto and
   chrome://tracing load).  Events are appended to an in-memory buffer
   and serialized once at the end; timestamps are virtual DES time
   converted to the format's microsecond unit. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = { buf : Buffer.t; mutable count : int }

let create () = { buf = Buffer.create 4096; count = 0 }
let event_count t = t.count

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let arg_to_json = function
  | Int n -> string_of_int n
  | Float x ->
      if Float.is_nan x || Float.abs x = Float.infinity then "null"
      else Printf.sprintf "%.6g" x
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let add_args buf args =
  match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ", \"args\": {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf "\"";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          Buffer.add_string buf (arg_to_json v))
        args;
      Buffer.add_string buf "}"

(* The trace-event format counts in microseconds; DES time is integer
   nanoseconds, so %.3f keeps exact virtual time with no rounding. *)
let ts_us at = Printf.sprintf "%.3f" (Des.Time.to_us_f at)

(* [fields] are extra top-level members, already rendered as JSON (the
   instant scope ["s"] lives beside [ph], not inside [args]). *)
let emit t ~ph ~name ~pid ~tid ?at ?(fields = []) ?(args = []) () =
  if t.count > 0 then Buffer.add_string t.buf ",";
  Buffer.add_string t.buf "\n  {\"ph\": \"";
  Buffer.add_string t.buf ph;
  Buffer.add_string t.buf "\", \"name\": \"";
  Buffer.add_string t.buf (escape name);
  Buffer.add_string t.buf "\", \"pid\": ";
  Buffer.add_string t.buf (string_of_int pid);
  Buffer.add_string t.buf ", \"tid\": ";
  Buffer.add_string t.buf (string_of_int tid);
  (match at with
  | None -> ()
  | Some at ->
      Buffer.add_string t.buf ", \"ts\": ";
      Buffer.add_string t.buf (ts_us at));
  List.iter
    (fun (k, v) ->
      Buffer.add_string t.buf ", \"";
      Buffer.add_string t.buf k;
      Buffer.add_string t.buf "\": ";
      Buffer.add_string t.buf v)
    fields;
  add_args t.buf args;
  Buffer.add_string t.buf "}";
  t.count <- t.count + 1

let duration_begin t ~name ~pid ~tid ~at ?(args = []) () =
  emit t ~ph:"B" ~name ~pid ~tid ~at ~args ()

let duration_end t ~name ~pid ~tid ~at ?(args = []) () =
  emit t ~ph:"E" ~name ~pid ~tid ~at ~args ()

let instant t ~name ~pid ~tid ~at ?(args = []) () =
  emit t ~ph:"i" ~name ~pid ~tid ~at ~fields:[ ("s", "\"t\"") ] ~args ()

let counter t ~name ~pid ~tid ~at ~values () =
  emit t ~ph:"C" ~name ~pid ~tid ~at
    ~args:(List.map (fun (k, v) -> (k, Float v)) values)
    ()

let thread_name t ~pid ~tid name =
  emit t ~ph:"M" ~name:"thread_name" ~pid ~tid ~args:[ ("name", Str name) ] ()

let process_name t ~pid name =
  emit t ~ph:"M" ~name:"process_name" ~pid ~tid:0
    ~args:[ ("name", Str name) ]
    ()

let to_string t =
  let b = Buffer.create (Buffer.length t.buf + 64) in
  Buffer.add_string b "{\"traceEvents\": [";
  Buffer.add_buffer b t.buf;
  if t.count > 0 then Buffer.add_string b "\n";
  Buffer.add_string b "], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
