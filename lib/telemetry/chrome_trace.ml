(* Chrome trace-event JSON writer (the format Perfetto and
   chrome://tracing load).  Events are appended to an in-memory buffer
   and serialized once at the end; timestamps are virtual DES time
   converted to the format's microsecond unit. *)

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

type t = { buf : Buffer.t; mutable count : int }

let create () = { buf = Buffer.create 4096; count = 0 }
let event_count t = t.count

(* Multi-byte UTF-8 passes through verbatim (JSON is UTF-8), but only
   when well-formed: a stray 0x80..0xFF byte — a Latin-1 span name, a
   truncated sequence — would make the whole file invalid JSON, so
   malformed bytes are replaced with U+FFFD.  The validation follows the
   Unicode table: no overlongs, no surrogates, nothing above U+10FFFF. *)
let utf8_seq_len s i =
  let n = String.length s in
  let cont j lo hi =
    j < n
    &&
    let c = Char.code s.[j] in
    c >= lo && c <= hi
  in
  match Char.code s.[i] with
  | c when c < 0x80 -> 1
  | c when c >= 0xC2 && c <= 0xDF -> if cont (i + 1) 0x80 0xBF then 2 else 0
  | 0xE0 -> if cont (i + 1) 0xA0 0xBF && cont (i + 2) 0x80 0xBF then 3 else 0
  | c when c >= 0xE1 && c <= 0xEC ->
      if cont (i + 1) 0x80 0xBF && cont (i + 2) 0x80 0xBF then 3 else 0
  | 0xED ->
      (* 0xED 0xA0.. would encode a UTF-16 surrogate *)
      if cont (i + 1) 0x80 0x9F && cont (i + 2) 0x80 0xBF then 3 else 0
  | c when c >= 0xEE && c <= 0xEF ->
      if cont (i + 1) 0x80 0xBF && cont (i + 2) 0x80 0xBF then 3 else 0
  | 0xF0 ->
      if cont (i + 1) 0x90 0xBF && cont (i + 2) 0x80 0xBF && cont (i + 3) 0x80 0xBF
      then 4
      else 0
  | c when c >= 0xF1 && c <= 0xF3 ->
      if cont (i + 1) 0x80 0xBF && cont (i + 2) 0x80 0xBF && cont (i + 3) 0x80 0xBF
      then 4
      else 0
  | 0xF4 ->
      if cont (i + 1) 0x80 0x8F && cont (i + 2) 0x80 0xBF && cont (i + 3) 0x80 0xBF
      then 4
      else 0
  | _ -> 0 (* 0x80..0xC1, 0xF5..0xFF: never a lead byte *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '"' ->
        Buffer.add_string b "\\\"";
        incr i
    | '\\' ->
        Buffer.add_string b "\\\\";
        incr i
    | '\n' ->
        Buffer.add_string b "\\n";
        incr i
    | '\t' ->
        Buffer.add_string b "\\t";
        incr i
    | '\r' ->
        Buffer.add_string b "\\r";
        incr i
    | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c));
        incr i
    | c when Char.code c < 0x80 ->
        Buffer.add_char b c;
        incr i
    | _ -> (
        match utf8_seq_len s !i with
        | 0 ->
            Buffer.add_string b "\\ufffd";
            incr i
        | len ->
            Buffer.add_string b (String.sub s !i len);
            i := !i + len))
  done;
  Buffer.contents b

let arg_to_json = function
  | Int n -> string_of_int n
  | Float x ->
      if Float.is_nan x || Float.abs x = Float.infinity then "null"
      else Printf.sprintf "%.6g" x
  | Str s -> "\"" ^ escape s ^ "\""
  | Bool b -> if b then "true" else "false"

let add_args buf args =
  match args with
  | [] -> ()
  | args ->
      Buffer.add_string buf ", \"args\": {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf "\"";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf "\": ";
          Buffer.add_string buf (arg_to_json v))
        args;
      Buffer.add_string buf "}"

(* The trace-event format counts in microseconds; DES time is integer
   nanoseconds, so %.3f keeps exact virtual time with no rounding. *)
let ts_us at = Printf.sprintf "%.3f" (Des.Time.to_us_f at)

(* [fields] are extra top-level members, already rendered as JSON (the
   instant scope ["s"] lives beside [ph], not inside [args]). *)
let emit t ~ph ~name ~pid ~tid ?at ?(fields = []) ?(args = []) () =
  if t.count > 0 then Buffer.add_string t.buf ",";
  Buffer.add_string t.buf "\n  {\"ph\": \"";
  Buffer.add_string t.buf ph;
  Buffer.add_string t.buf "\", \"name\": \"";
  Buffer.add_string t.buf (escape name);
  Buffer.add_string t.buf "\", \"pid\": ";
  Buffer.add_string t.buf (string_of_int pid);
  Buffer.add_string t.buf ", \"tid\": ";
  Buffer.add_string t.buf (string_of_int tid);
  (match at with
  | None -> ()
  | Some at ->
      Buffer.add_string t.buf ", \"ts\": ";
      Buffer.add_string t.buf (ts_us at));
  List.iter
    (fun (k, v) ->
      Buffer.add_string t.buf ", \"";
      Buffer.add_string t.buf k;
      Buffer.add_string t.buf "\": ";
      Buffer.add_string t.buf v)
    fields;
  add_args t.buf args;
  Buffer.add_string t.buf "}";
  t.count <- t.count + 1

let duration_begin t ~name ~pid ~tid ~at ?(args = []) () =
  emit t ~ph:"B" ~name ~pid ~tid ~at ~args ()

let duration_end t ~name ~pid ~tid ~at ?(args = []) () =
  emit t ~ph:"E" ~name ~pid ~tid ~at ~args ()

let instant t ~name ~pid ~tid ~at ?(args = []) () =
  emit t ~ph:"i" ~name ~pid ~tid ~at ~fields:[ ("s", "\"t\"") ] ~args ()

let counter t ~name ~pid ~tid ~at ~values () =
  emit t ~ph:"C" ~name ~pid ~tid ~at
    ~args:(List.map (fun (k, v) -> (k, Float v)) values)
    ()

let thread_name t ~pid ~tid name =
  emit t ~ph:"M" ~name:"thread_name" ~pid ~tid ~args:[ ("name", Str name) ] ()

let process_name t ~pid name =
  emit t ~ph:"M" ~name:"process_name" ~pid ~tid:0
    ~args:[ ("name", Str name) ]
    ()

let to_string t =
  let b = Buffer.create (Buffer.length t.buf + 64) in
  Buffer.add_string b "{\"traceEvents\": [";
  Buffer.add_buffer b t.buf;
  if t.count > 0 then Buffer.add_string b "\n";
  Buffer.add_string b "], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents b

let write t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))
