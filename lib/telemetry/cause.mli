(** Compact causal identifiers for the forensics layer.

    A cause names the root event a chain of state transitions descends
    from: a timer fire, a client request, an injected fault.  It packs
    into a single immediate integer (like {!Netsim.Fabric}'s directed
    pair keys) so it can ride through hot paths — staged on the fabric,
    stored in mutable fields — without allocating.

    Layout (63 usable bits, zero is reserved for {!none}):

    {v
      bits 59-61  kind        (3 bits, 1-based so a valid cause is never 0)
      bits 47-58  origin node (12 bits, truncated)
      bits 32-46  term        (15 bits, truncated)
      bits  0-31  sequence    (32 bits, per-ring draw counter)
    v}

    Node and term are identification aids, not authoritative values: a
    cluster larger than 4095 nodes or a term beyond 32767 wraps within
    its field.  The sequence number disambiguates — it is unique per
    forensics ring for the lifetime of a run. *)

type t = int
(** Causes travel through layers (netsim) that cannot depend on this
    library, so the representation is deliberately transparent: an
    opaque-by-convention immediate int. *)

type kind =
  | Election_timer  (** an election timer fired *)
  | Heartbeat_timer  (** a heartbeat / broadcast timer fired *)
  | Client  (** a client submitted a command or read *)
  | Fault  (** the harness injected a fault (pause/crash/restart) *)
  | Internal  (** everything else (startup, transfers) *)

val none : t
(** The absent cause; renders as ["-"]. *)

val is_none : t -> bool

val make : kind:kind -> node:int -> term:int -> seq:int -> t
(** Pack a cause.  [node] and [term] are truncated to their fields;
    [seq] to 32 bits. *)

val kind : t -> kind
(** The packed kind.  Meaningless on {!none}. *)

val node : t -> int
val term : t -> int
val seq : t -> int

val kind_name : kind -> string
(** Two-letter tag: ["et"], ["hb"], ["cl"], ["ft"], ["in"]. *)

val to_string : t -> string
(** ["et:n2/t7#1234"], or ["-"] for {!none}.  Deterministic — digests
    and golden files rely on it. *)
