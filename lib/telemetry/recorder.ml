type tick = { t_at : Des.Time.t; t_values : (string * float) list }

type t = {
  on : bool;
  every : Des.Time.span;
  mutable ticks : tick list;  (* newest first *)
  mutable count : int;
}

let create ?(enabled = true) ~every () =
  if every <= 0 then invalid_arg "Recorder.create: every must be positive";
  { on = enabled; every; ticks = []; count = 0 }

let noop = { on = false; every = 1; ticks = []; count = 0 }
let enabled t = t.on

(* Counters and gauges only: a histogram is already a cumulative
   structure, and flattening one per tick would dwarf the scalars. *)
let values_of snapshot =
  List.filter_map
    (fun (key, v) ->
      match (v : Metrics.value) with
      | Metrics.Count n -> Some (Metrics.key_label key, float_of_int n)
      | Metrics.Level x -> Some (Metrics.key_label key, x)
      | Metrics.Series _ -> None)
    snapshot

let attach t engine sample =
  if t.on then begin
    let rec fire () =
      t.ticks <-
        { t_at = Des.Engine.now engine; t_values = values_of (sample ()) }
        :: t.ticks;
      t.count <- t.count + 1;
      ignore
        (Des.Engine.schedule_after engine t.every fire : Des.Engine.handle)
    in
    ignore (Des.Engine.schedule_after engine t.every fire : Des.Engine.handle)
  end

let samples t = t.count

type dump = (string * (float * float) array) list

let dump t =
  let series : (string, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun tick ->
      let ms = Des.Time.to_ms_f tick.t_at in
      List.iter
        (fun (key, v) ->
          match Hashtbl.find_opt series key with
          | Some l -> l := (ms, v) :: !l
          | None -> Hashtbl.add series key (ref [ (ms, v) ]))
        tick.t_values)
    (List.rev t.ticks);
  Hashtbl.fold (fun key l acc -> (key, Array.of_list (List.rev !l)) :: acc)
    series []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let merge dumps =
  List.concat
    (List.mapi
       (fun i d ->
         let prefix = "s" ^ string_of_int i ^ "/" in
         List.map (fun (key, samples) -> (prefix ^ key, samples)) d)
       dumps)

let fmt_value v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let to_csv (d : dump) =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "t_ms";
  List.iter
    (fun (key, _) ->
      Buffer.add_char buf ',';
      Buffer.add_string buf key)
    d;
  Buffer.add_char buf '\n';
  (* Union of sampled instants, ascending; per-series cursors walk the
     (time-sorted) sample arrays in step. *)
  let times = Hashtbl.create 64 in
  List.iter
    (fun (_, samples) ->
      Array.iter (fun (ms, _) -> Hashtbl.replace times ms ()) samples)
    d;
  let instants =
    Hashtbl.fold (fun ms () acc -> ms :: acc) times []
    |> List.sort Float.compare
  in
  let cursors = List.map (fun (_, samples) -> (samples, ref 0)) d in
  List.iter
    (fun ms ->
      Buffer.add_string buf (Printf.sprintf "%.3f" ms);
      List.iter
        (fun (samples, cur) ->
          Buffer.add_char buf ',';
          if
            !cur < Array.length samples
            && fst samples.(!cur) = ms
          then begin
            Buffer.add_string buf (fmt_value (snd samples.(!cur)));
            incr cur
          end)
        cursors;
      Buffer.add_char buf '\n')
    instants;
  Buffer.contents buf

(* "scope/name@node" -> metric name "scope_name" + node label; any
   character outside the OpenMetrics name alphabet becomes '_'. *)
let om_name_and_label key =
  let key, node =
    match String.index_opt key '@' with
    | Some i ->
        ( String.sub key 0 i,
          Some (String.sub key (i + 1) (String.length key - i - 1)) )
    | None -> (key, None)
  in
  let name =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      key
  in
  (name, node)

let to_openmetrics (d : dump) =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun (key, samples) ->
      let name, node = om_name_and_label key in
      if not (Hashtbl.mem typed name) then begin
        Hashtbl.add typed name ();
        Buffer.add_string buf ("# TYPE " ^ name ^ " gauge\n")
      end;
      Array.iter
        (fun (ms, v) ->
          Buffer.add_string buf name;
          (match node with
          | Some n -> Buffer.add_string buf ("{node=\"" ^ n ^ "\"}")
          | None -> ());
          Buffer.add_string buf
            (Printf.sprintf " %s %.6f\n" (fmt_value v) (ms /. 1000.)))
        samples)
    d;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let window t n =
  let rec take k l =
    if k <= 0 then []
    else match l with [] -> [] | x :: tl -> x :: take (k - 1) tl
  in
  take n t.ticks
  |> List.rev_map (fun tick ->
         let b = Buffer.create 128 in
         Buffer.add_string b (Format.asprintf "%a" Des.Time.pp tick.t_at);
         List.iter
           (fun (k, v) ->
             Buffer.add_char b ' ';
             Buffer.add_string b k;
             Buffer.add_char b '=';
             Buffer.add_string b (fmt_value v))
           tick.t_values;
         Buffer.contents b)
