(** Typed metrics registry: counters, gauges and histogram-backed timers
    keyed by [(scope, name, node)].

    The registry is the quantitative half of the observability layer (the
    qualitative half is span tracing, {!Chrome_trace}).  Design contract:

    - {b Handles, not lookups, on the hot path.}  Instrumented code
      registers once and keeps the returned handle; each emission
      ([Counter.incr], [Timer.observe_ms]) is a field mutation.
    - {b Near-no-op when disabled.}  A disabled registry (or {!noop})
      hands out {e dead} handles; emitting on a dead handle is a single
      load-and-branch, so instrumented hot paths stay within noise of the
      uninstrumented build.
    - {b Mergeable like [Summary.of_parts].}  {!snapshot} is a pure value;
      {!merge} combines per-shard snapshots associatively (counters sum,
      gauges max, timer histograms bin-wise add), so a [--jobs N] campaign
      aggregates to the same bytes whatever the worker count. *)

type t
(** A registry.  Not thread-safe: each campaign shard owns its own
    registry and the shard snapshots are merged afterwards. *)

type key = private { scope : string; name : string; node : string }
(** [scope] groups related metrics ("des", "net", "raft", "rpc"); [node]
    is a free-form instance label (["n3"], ["n0->n1"], or [""] for
    process-wide metrics). *)

val key_label : key -> string
(** ["scope/name"] or ["scope/name\@node"]. *)

val create : ?enabled:bool -> unit -> t
(** A fresh registry, enabled by default. *)

val noop : t
(** A shared disabled registry: registration returns dead handles and
    never mutates shared state, so [noop] is safe to use concurrently
    from campaign domains. *)

val enabled : t -> bool

module Counter : sig
  type t

  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit
  val set_max : t -> float -> unit
  (** Keep the maximum of all observations (high-water marks). *)

  val value : t -> float
end

module Timer : sig
  type t

  val observe_ms : t -> float -> unit
  (** Record one duration sample, in milliseconds. *)
end

val counter : t -> scope:string -> name:string -> ?node:string -> unit -> Counter.t
(** Find-or-create.  Raises [Invalid_argument] if the key is already
    registered with a different kind. *)

val gauge : t -> scope:string -> name:string -> ?node:string -> unit -> Gauge.t
(** Gauges appear in snapshots only once set. *)

val timer :
  t ->
  scope:string ->
  name:string ->
  ?node:string ->
  lo:float ->
  hi:float ->
  bins:int ->
  unit ->
  Timer.t
(** [lo]/[hi]/[bins] fix the histogram layout; shards must register the
    same layout for {!merge} to accept their snapshots (they do, since
    they run the same code). *)

(** {2 Snapshots} *)

type value =
  | Count of int
  | Level of float
  | Series of Stats.Histogram.t  (** an independent copy *)

type snapshot = (key * value) list
(** Sorted by key; a pure value, detached from the registry. *)

val snapshot : t -> snapshot
(** Empty for a disabled registry. *)

val merge : snapshot list -> snapshot
(** Associative shard merge: counters sum, gauges keep the max, timer
    histograms add bin-wise ({!Stats.Histogram.merge}).  Raises
    [Invalid_argument] on kind or histogram-layout mismatch. *)

val to_json : snapshot -> string
(** A deterministic JSON object, one member per key in sorted order:
    counters as integers, gauges as numbers, timers as
    [{"count", "lo", "hi", "underflow", "overflow", "bins"}].  Equal
    snapshots render to equal bytes — the property the [--jobs]
    bit-identity test pins. *)

val pp : Format.formatter -> snapshot -> unit
(** Human-readable listing, one line per key. *)
