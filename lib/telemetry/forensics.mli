(** The forensics ring: a bounded buffer of structured transition
    records with causal provenance.

    One ring serves a whole cluster (like the probe trace): every node
    appends its transitions — timer fires, campaigns, votes, role and
    tuner changes, injected faults — each stamped with the {!Cause.t}
    that triggered it and, where known, that cause's parent.  The ring
    is the raw material for the [explain] CLI and the flight-recorder
    dump attached to invariant violations.

    Contract mirrors {!Metrics}:

    - {b Dead when disabled.}  {!noop} (and [create ~enabled:false])
      never mutates shared state; callers gate their instrumentation on
      {!enabled} so the disabled path stays allocation-free.
    - {b Deterministic.}  Records are appended in DES event order and
      cause sequence numbers are drawn from a per-ring counter, so for a
      fixed (seed, shard plan) the rendered dump is byte-identical — the
      shard merge ({!merge_rendered}) concatenates per-shard dumps in
      shard order, making [--jobs 1] and [--jobs N] dumps equal. *)

(** One structured transition.  Node ids are plain ints and roles /
    reasons are strings: this library sits below [lib/raft] and cannot
    name its types. *)
type event =
  | Timeout of {
      randomized : Des.Time.span;  (** the drawn randomizedTimeout *)
      et : Des.Time.span;
          (** base Et in force once the expiry was processed.  A tuned
              follower falls back to defaults on suspicion, so after a
              real leader loss this reads the post-reset default;
              [randomized] preserves the tuned draw that actually
              expired. *)
      h : Des.Time.span;  (** heartbeat interval in force *)
      k : int;  (** required heartbeats K *)
    }
  | Campaign of { pre : bool }
  | Role of { role : string }
  | Vote of { from : int; granted : bool; pre : bool }
  | Tuner of {
      rtt_ms : float;
      loss : float;
      et : Des.Time.span;
      h : Des.Time.span;
      k : int;
      reason : string;
    }
  | Tuner_reset
  | Prevote_abort
  | Paused
  | Resumed
  | Transfer of { target : int }
  | Config of { change : string; committed : bool }

type record = {
  at : Des.Time.t;
  node : int;
  term : int;
  cause : Cause.t;  (** the causal token this transition belongs to *)
  parent : Cause.t;  (** what triggered that cause ({!Cause.none} if unknown) *)
  ev : event;
}

type t

val create : ?capacity:int -> ?enabled:bool -> unit -> t
(** A fresh ring retaining the last [capacity] (default 8192) records;
    older records are evicted in insertion order (count them with
    {!dropped}).  Raises [Invalid_argument] if [capacity <= 0]. *)

val noop : t
(** A shared disabled ring: {!record} and {!new_cause} are no-ops
    touching no shared state, so it is safe across campaign domains. *)

val enabled : t -> bool

val new_cause : t -> kind:Cause.kind -> node:int -> term:int -> Cause.t
(** Allocate a fresh cause (next ring-local sequence number).  Returns
    {!Cause.none} on a disabled ring. *)

val record :
  t ->
  at:Des.Time.t ->
  node:int ->
  term:int ->
  cause:Cause.t ->
  parent:Cause.t ->
  event ->
  unit
(** Append one record (evicting the oldest beyond capacity).  No-op on a
    disabled ring. *)

val length : t -> int
val dropped : t -> int

val records : t -> record list
(** Retained records, oldest first. *)

val render_record : record -> string
(** One deterministic line:
    ["<time> n<id> t<term> <cause><-<parent> <event>"]. *)

val render : t -> string list
(** Every retained record, oldest first, via {!render_record}. *)

val tail : t -> int -> string list
(** The last [n] retained records, rendered, oldest first (the flight
    recorder's window). *)

val merge_rendered : string list list -> string list
(** Shard merge: per-shard dumps concatenated in the given (shard)
    order, each line prefixed ["s<i> "].  Associative in the sense the
    determinism contract needs: the result depends only on the shard
    plan, not on how many workers produced the parts. *)
