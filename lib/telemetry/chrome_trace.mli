(** Chrome trace-event JSON sink — the format Perfetto
    ({{:https://ui.perfetto.dev}ui.perfetto.dev}) and [chrome://tracing]
    load directly.

    A sink accumulates events in memory and serializes once via
    {!to_string}/{!write}.  Timestamps are exact virtual {!Des.Time}
    instants rendered in the format's microsecond unit with nanosecond
    precision ([ts] is [ns / 1000] with three decimals), so a trace from
    a deterministic run is itself deterministic.

    Convention used by the simulator: one {e process} ([pid]) per
    cluster, one {e thread} ([tid]) per node, named via {!thread_name}.
    Election lifecycles are [B]/[E] duration spans, tuner decisions and
    fault/timeout markers are [i] instants, and link/fabric statistics
    are [C] counter tracks. *)

type t

type arg =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool

val create : unit -> t

val event_count : t -> int
(** Events emitted so far (metadata records included). *)

val duration_begin :
  t ->
  name:string ->
  pid:int ->
  tid:int ->
  at:Des.Time.t ->
  ?args:(string * arg) list ->
  unit ->
  unit

val duration_end :
  t ->
  name:string ->
  pid:int ->
  tid:int ->
  at:Des.Time.t ->
  ?args:(string * arg) list ->
  unit ->
  unit
(** [B]/[E] pairs must nest properly per [(pid, tid)]; the tracing
    bridge guarantees this by closing a node's open span before opening
    the next one. *)

val instant :
  t ->
  name:string ->
  pid:int ->
  tid:int ->
  at:Des.Time.t ->
  ?args:(string * arg) list ->
  unit ->
  unit
(** Thread-scoped instant event ([ph:"i"], [s:"t"]). *)

val counter :
  t ->
  name:string ->
  pid:int ->
  tid:int ->
  at:Des.Time.t ->
  values:(string * float) list ->
  unit ->
  unit
(** Counter track sample ([ph:"C"]); each [values] entry becomes one
    series of the track. *)

val thread_name : t -> pid:int -> tid:int -> string -> unit
val process_name : t -> pid:int -> string -> unit

val to_string : t -> string
(** The complete JSON document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val write : t -> string -> unit
(** [write t path] saves {!to_string} to [path]. *)
