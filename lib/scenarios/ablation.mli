(** Ablation studies over Dynatune's runtime parameters — the design
    choices Section III-D leaves to the practitioner ([s], [x],
    [minListSize]).  Not in the paper's figures, but called out in its
    design discussion; these quantify the trade-offs it describes. *)

type safety_row = {
  s : float;
  detection_mean_ms : float;
  ots_mean_ms : float;
  et_mean_ms : float;  (** tuned Et under jittery links *)
  false_timeouts : int;  (** timer expiries with a healthy leader *)
}

val safety_factor_sweep :
  ?seed:int64 ->
  ?values:float list ->
  ?failures:int ->
  ?quiet:Des.Time.span ->
  ?jitter:float ->
  ?jobs:int ->
  unit ->
  safety_row list
(** For each safety factor: tuned Et, detection/OTS means over a failure
    campaign, and false detections during a quiet (failure-free) period
    on a jittery 100 ms link.  Small [s] detects fast but false-triggers;
    large [s] is safe but slow — the trade-off of Section III-D1. *)

type arrival_row = {
  x : float;
  k : int;  (** required heartbeats under the measured loss *)
  h_ms : float;
  heartbeat_rate_hz : float;  (** per-path sending rate (1000/h) *)
  false_timeouts : int;
}

val arrival_probability_sweep :
  ?seed:int64 ->
  ?values:float list ->
  ?loss:float ->
  ?quiet:Des.Time.span ->
  ?jobs:int ->
  unit ->
  arrival_row list
(** For each target arrival probability [x] under 10% link loss: the
    K/h the tuner converges to and the false detections observed — the
    resource-vs-safety trade-off of Section III-D2. *)

type list_size_row = {
  min_list_size : int;
  warmup_ms : float;  (** leader election -> tuner leaves Step 0 *)
  adaptation_ms : float;
      (** RTT step 50 -> 150 ms -> majority timeout exceeds the new RTT *)
}

val list_size_sweep :
  ?seed:int64 -> ?values:int list -> ?jobs:int -> unit -> list_size_row list
(** Responsiveness cost of larger measurement windows (Section III-E). *)

type estimator_row = {
  estimator : string;
  et_steady_ms : float;  (** mean tuned Et on a jittery steady link *)
  et_jitter_ms : float;  (** std of the tuned Et over that period *)
  adaptation_up_ms : float;  (** RTT step 50→150: time to re-accommodate *)
  false_timeouts : int;
  detection_mean_ms : float;  (** small failover campaign *)
}

val estimator_sweep :
  ?seed:int64 -> ?failures:int -> ?jobs:int -> unit -> estimator_row list
(** Compare the paper's sliding-window statistics against EWMA
    (Jacobson/Karels) backends: stability vs. adaptation lag. *)

val print :
  Format.formatter ->
  safety_row list * arrival_row list * list_size_row list
  * estimator_row list ->
  unit
