let banner ppf title =
  let line = String.make (String.length title + 4) '=' in
  Format.fprintf ppf "@.%s@.= %s =@.%s@." line title line

let subhead ppf title = Format.fprintf ppf "@.-- %s --@." title
let kv ppf key value = Format.fprintf ppf "  %-28s %s@." (key ^ ":") value

let float_cell v =
  if Float.is_nan v then Printf.sprintf "%10s" "-"
  else Printf.sprintf "%10.1f" v

let summary_row ppf ~label s =
  Format.fprintf ppf "  %-12s n=%-5d mean=%8.1f p50=%8.1f p90=%8.1f p99=%8.1f max=%8.1f@."
    label (Stats.Summary.count s) (Stats.Summary.mean s)
    (Stats.Summary.percentile s 50.)
    (Stats.Summary.percentile s 90.)
    (Stats.Summary.percentile s 99.)
    (Stats.Summary.max s)

let cdf_table ppf ~label ~series ~points =
  Format.fprintf ppf "  %-8s" label;
  List.iter (fun (name, _) -> Format.fprintf ppf "%12s" name) series;
  Format.fprintf ppf "@.";
  for i = 1 to points do
    let prob = float_of_int i /. float_of_int points in
    Format.fprintf ppf "  p%-7.3g" (100. *. prob);
    List.iter
      (fun (_, s) ->
        let v = Stats.Summary.percentile s (100. *. prob) in
        Format.fprintf ppf "%12s" (String.trim (float_cell v)))
      series;
    Format.fprintf ppf "@."
  done

let series_table ppf ~time_label ~columns =
  match columns with
  | [] -> ()
  | columns ->
      (* Rows are the union of every column's sample instants: columns
         sampled at different times still line up, with [-] where a
         column has no point at that instant (indexing cells by row
         position would pair unrelated instants instead). *)
      let instants =
        List.sort_uniq Float.compare
          (List.concat_map (fun (_, points) -> List.map fst points) columns)
      in
      Format.fprintf ppf "  %10s" time_label;
      List.iter (fun (name, _) -> Format.fprintf ppf "%14s" name) columns;
      Format.fprintf ppf "@.";
      List.iter
        (fun time ->
          Format.fprintf ppf "  %10.0f" time;
          List.iter
            (fun (_, points) ->
              match
                List.find_opt (fun (t, _) -> Float.compare t time = 0) points
              with
              | Some (_, v) ->
                  Format.fprintf ppf "%14s" (String.trim (float_cell v))
              | None -> Format.fprintf ppf "%14s" "-")
            columns;
          Format.fprintf ppf "@.")
        instants

let intervals ppf ~label spans =
  match spans with
  | [] -> Format.fprintf ppf "  %s: none@." label
  | spans ->
      Format.fprintf ppf "  %s:@." label;
      List.iter
        (fun (s, e) ->
          Format.fprintf ppf "    %7.1fs – %7.1fs  (%.1fs)@."
            (Des.Time.to_sec_f s) (Des.Time.to_sec_f e)
            (Des.Time.to_sec_f (Des.Time.diff e s)))
        spans
