(** Evaluation of the Section IV-E proposed extensions (left as future
    work in the paper, implemented here):

    1. {e heartbeat suppression}: skip a follower's heartbeat when
       replication traffic already reset its election timer;
    2. {e consolidated timer}: drive all followers from one heartbeat
       timer at the minimum tuned [h].

    Both target the throughput/CPU cost that Fig 5 and Fig 7b measure, so
    the evaluation reuses those benches across the four variants and adds
    a failover campaign to show detection quality is not sacrificed. *)

type variant = { label : string; config : Raft.Config.t }

val variants : unit -> variant list
(** dynatune, +suppress, +single-timer, +both. *)

type row = {
  label : string;
  peak_rps : float;  (** fig5-style peak throughput *)
  leader_cpu_pct : float;
      (** fig7b-style leader CPU at N = 17, 10% loss, steady state *)
  heartbeats_sent : int;  (** during the CPU window *)
  detection_ms : float;  (** failover campaign mean *)
  ots_ms : float;
}

val run :
  ?seed:int64 ->
  ?rates:float list ->
  ?hold:Des.Time.span ->
  ?failures:int ->
  ?jobs:int ->
  unit ->
  row list
(** [jobs > 1] evaluates the four variants on parallel domains; each
    variant is a self-contained simulation, so results are identical at
    any [jobs]. *)

val print : Format.formatter -> row list -> unit
