(* The library's public face.  An explicit main module (rather than
   dune's generated alias) so the multiraft scenario can live in a file
   whose name does not shadow the [Multiraft] library it drives. *)

module Ablation = Ablation
module Explain = Explain
module Extensions = Extensions
module Fig4 = Fig4
module Fig5 = Fig5
module Fig6 = Fig6
module Fig7 = Fig7
module Fig8 = Fig8
module Geo = Geo
module Measure = Measure
module Multiraft = Multiraft_scenario
module Reconfig = Reconfig
module Report = Report
