(** Rolling-replace campaign on the geo WAN: dynamic membership under
    client load, measuring client-perceived unavailability with the
    tuner on vs off.

    Every round replaces each member of the 5-region cluster with a
    fresh server in the same region slot, make-before-break (learner
    catch-up, promotion, removal).  The round's first replacement
    crash-replaces the current leader — downtime bounded by failure
    detection, which Dynatune shrinks — and the rest drain gracefully
    through leadership transfer.  Downtime is sampled in 1 ms slices: a
    slice is down when no live leader can accept proposals. *)

type raw = {
  rounds : int;  (** rolling-replace rounds completed *)
  replacements : int;  (** servers replaced *)
  stalls : int;  (** waits that hit their timeout *)
  sampled_ms : float;  (** sampled replacement activity *)
  reactive_down_ms : float;  (** down slices after un-announced failures *)
  graceful_down_ms : float;  (** down slices in planned transfer windows *)
  offered : int;
  completed : int;
  rejected : int;
  redirected : int;
  abandoned : int;
}

val merge_raw : raw list -> raw

type result = {
  mode : string;
  rounds : int;
  replacements : int;
  stalls : int;
  sampled_ms : float;
  reactive_down_ms : float;
  graceful_down_ms : float;
  total_down_ms : float;
  unavailability : float;  (** total downtime / sampled time *)
  offered : int;
  completed : int;
  rejected : int;
  redirected : int;
  abandoned : int;
  digest : int64;
  metrics : Telemetry.Metrics.snapshot;
}

val run :
  ?seed:int64 ->
  ?rounds:int ->
  ?jitter:float ->
  ?loss:float ->
  ?rate:float ->
  ?warmup:Des.Time.span ->
  ?recover:Des.Time.span ->
  ?jobs:int ->
  ?shards:int ->
  ?check:Check.mode ->
  ?instrument:bool ->
  ?on_cluster:(shard:int -> Harness.Cluster.t -> unit) ->
  config:Raft.Config.t ->
  unit ->
  result
(** Run [rounds] rolling-replace rounds (default 4), sharded like the
    failover campaigns: [shards] pins the plan independently of [jobs],
    so the merged metrics snapshot and digest are functions of [(seed,
    shards, rounds)] alone.  [rate] is the open-loop client request rate
    (default 20/s); the client follows leader redirects.  [recover] is
    the unsampled operator hold between rounds (default 15 s) — the
    config churn re-warms every tuner, and the hold lets measurement
    finish before the next round's un-announced failure.  [on_cluster]
    fires once per shard cluster before it starts (trace bridges). *)

val compare_modes :
  ?rounds:int -> ?seed:int64 -> ?jobs:int -> unit -> result list
(** [static] then [dynatune], same seeds — the tuner-off/on pair.  The
    plan is pinned to two shards, so the comparison is a function of
    [(seed, rounds)] alone, independent of [jobs]. *)

val print : Format.formatter -> result list -> unit
