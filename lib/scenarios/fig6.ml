module Cluster = Harness.Cluster
module Monitor = Harness.Monitor

type series = {
  mode : string;
  rtt : (float * float) list;
  majority_timeout : (float * float) list;
  ots : (Des.Time.t * Des.Time.t) list;
  ots_total_ms : float;
  false_timeouts : int;
  pre_vote_aborts : int;
  elections : int;
}

type pattern = Gradual | Radical

let rtt_schedule pattern ~hold:_ =
  match pattern with
  | Gradual ->
      let up = List.init 16 (fun i -> 50. +. (10. *. float_of_int i)) in
      let down = List.rev (List.init 15 (fun i -> 50. +. (10. *. float_of_int i))) in
      up @ down
  | Radical -> [ 50.; 500.; 50. ]

let run ?(seed = 11L) ?(hold = Des.Time.sec 60)
    ?(sample_every = Des.Time.sec 1) ~pattern ~config () =
  let warmup = Des.Time.sec 30 in
  let values = rtt_schedule pattern ~hold in
  let jitter = 0.02 in
  (* Warm-up segment at the first RTT, then the staircase. *)
  let segments =
    (Des.Time.zero, Netsim.Conditions.profile ~rtt_ms:(List.hd values) ~jitter ())
    :: List.mapi
         (fun i rtt_ms ->
           ( Des.Time.add warmup (i * hold),
             Netsim.Conditions.profile ~rtt_ms ~jitter () ))
         values
  in
  let conditions = Netsim.Conditions.piecewise segments in
  let cluster = Cluster.create ~seed ~n:5 ~config ~conditions () in
  (* WAN realism: transient sender-side congestion episodes (the paper's
     Section II-C1 cites queueing spikes above 200 ms).  These are what
     expose Raft-Low's fragility once the RTT approaches its election
     timeout, while Raft's and Dynatune's conservative fallbacks ride
     them out. *)
  Netsim.Fabric.set_all_egress_congestion (Cluster.fabric cluster)
    (Netsim.Congestion.spec ~mean_gap:(Des.Time.sec 12)
       ~extra_lo:(Des.Time.ms 80) ~extra_hi:(Des.Time.ms 170)
       ~duration:(Des.Time.ms 300) ());
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> failwith "fig6: initial election failed");
  Des.Engine.run_until (Cluster.engine cluster) warmup;
  let measure_from = Cluster.now cluster in
  let duration = List.length values * hold in
  let watched =
    Monitor.watch cluster ~every:sample_every ~duration
      ~probes:
        [
          {
            Monitor.name = "majority_timeout";
            read = (fun c -> Monitor.gap (Monitor.majority_randomized_ms c));
          };
        ]
  in
  let measure_until = Cluster.now cluster in
  let majority_timeout =
    match watched with
    | [ (_, ts) ] -> Stats.Timeseries.points ts
    | _ -> assert false
  in
  let rtt =
    List.map
      (fun (sec, _) ->
        let t = Des.Time.of_sec_f sec in
        (sec, (Netsim.Conditions.at conditions t).Netsim.Conditions.rtt_ms))
      majority_timeout
  in
  let false_timeouts = ref 0 and aborts = ref 0 and elections = ref 0 in
  Des.Mtrace.iter (Cluster.trace cluster) ~f:(fun time probe ->
      if time > measure_from && time <= measure_until then
        match probe with
        | Raft.Probe.Timeout_expired _ -> incr false_timeouts
        | Raft.Probe.Pre_vote_aborted _ -> incr aborts
        | Raft.Probe.Election_started _ -> incr elections
        | Raft.Probe.Role_change _ | Raft.Probe.Tuner_reset _
        | Raft.Probe.Tuner_decision _ | Raft.Probe.Node_paused _
        | Raft.Probe.Node_resumed _ | Raft.Probe.Config_change _
        | Raft.Probe.Transfer_started _ | Raft.Probe.Transfer_aborted _ ->
            ());
  let ots =
    Monitor.leaderless_intervals cluster ~from:measure_from
      ~until:measure_until
  in
  {
    mode = Raft.Config.mode_name config;
    rtt;
    majority_timeout;
    ots;
    ots_total_ms =
      Monitor.total_ots_ms cluster ~from:measure_from ~until:measure_until;
    false_timeouts = !false_timeouts;
    pre_vote_aborts = !aborts;
    elections = !elections;
  }

let compare_modes ?(seed = 11L) ?hold ?(jobs = 1) ~pattern () =
  Parallel.Campaign.all ~jobs
    [
      (fun () -> run ~seed ?hold ~pattern ~config:(Raft.Config.dynatune ()) ());
      (fun () -> run ~seed ?hold ~pattern ~config:(Raft.Config.static ()) ());
      (fun () -> run ~seed ?hold ~pattern ~config:(Raft.Config.raft_low ()) ());
    ]

let print ppf pattern results =
  let title =
    match pattern with
    | Gradual -> "Fig 6a: gradual RTT 50->200->50ms"
    | Radical -> "Fig 6b: radical RTT 50->500->50ms"
  in
  Report.banner ppf (title ^ " (3rd-smallest randomizedTimeout, OTS shading)");
  (match results with
  | first :: _ ->
      (* One table: time, stimulus RTT, one timeout column per mode.
         Downsample to every 10th second to keep the output readable. *)
      let every_nth n points =
        List.filteri (fun i _ -> i mod n = 0) points
      in
      let columns =
        ("link RTT", every_nth 10 first.rtt)
        :: List.map (fun r -> (r.mode, every_nth 10 r.majority_timeout)) results
      in
      Report.series_table ppf ~time_label:"t(s)" ~columns
  | [] -> ());
  List.iter
    (fun r ->
      Report.subhead ppf r.mode;
      Report.kv ppf "total OTS" (Printf.sprintf "%.0f ms" r.ots_total_ms);
      Report.kv ppf "timer expiries (false detections)"
        (string_of_int r.false_timeouts);
      Report.kv ppf "pre-vote aborts" (string_of_int r.pre_vote_aborts);
      Report.kv ppf "real elections" (string_of_int r.elections);
      Report.intervals ppf ~label:"OTS intervals" r.ots)
    results
