module Cluster = Harness.Cluster
module Fault = Harness.Fault

type raw = {
  measured : int;
  splits : int;
  detection : float list;
  majority : float list;
  ots : float list;
  election : float list;
  randomized : float list;
  rounds : float list;
}

let empty =
  {
    measured = 0;
    splits = 0;
    detection = [];
    majority = [];
    ots = [];
    election = [];
    randomized = [];
    rounds = [];
  }

let failures ?(metrics = Telemetry.Metrics.noop) cluster ~quota =
  let m_attempts =
    Telemetry.Metrics.counter metrics ~scope:"measure" ~name:"attempts" ()
  and m_measured =
    Telemetry.Metrics.counter metrics ~scope:"measure" ~name:"measured" ()
  and m_errors =
    Telemetry.Metrics.counter metrics ~scope:"measure" ~name:"errors" ()
  in
  let detection = ref [] and majority = ref [] and ots = ref [] in
  let election = ref [] and randomized = ref [] and rounds = ref [] in
  let splits = ref 0 and measured = ref 0 and attempts = ref 0 in
  while !measured < quota && !attempts < 2 * quota do
    incr attempts;
    Telemetry.Metrics.Counter.incr m_attempts;
    match Fault.fail_and_measure cluster () with
    | Error _ ->
        Telemetry.Metrics.Counter.incr m_errors;
        (* Give the cluster a chance to re-stabilise before retrying. *)
        Cluster.run_for cluster (Des.Time.sec 5)
    | Ok o ->
        incr measured;
        Telemetry.Metrics.Counter.incr m_measured;
        detection := o.Fault.detection_ms :: !detection;
        majority := o.Fault.majority_detection_ms :: !majority;
        ots := o.Fault.ots_ms :: !ots;
        election := (o.Fault.ots_ms -. o.Fault.detection_ms) :: !election;
        randomized := o.Fault.randomized_at_detection_ms :: !randomized;
        rounds := float_of_int o.Fault.election_rounds :: !rounds;
        if o.Fault.election_rounds > 1 then incr splits
  done;
  {
    measured = !measured;
    splits = !splits;
    detection = !detection;
    majority = !majority;
    ots = !ots;
    election = !election;
    randomized = !randomized;
    rounds = !rounds;
  }

let merge parts =
  List.fold_left
    (fun acc p ->
      {
        measured = acc.measured + p.measured;
        splits = acc.splits + p.splits;
        detection = acc.detection @ p.detection;
        majority = acc.majority @ p.majority;
        ots = acc.ots @ p.ots;
        election = acc.election @ p.election;
        randomized = acc.randomized @ p.randomized;
        rounds = acc.rounds @ p.rounds;
      })
    empty parts
