(** Figure 6 — adaptivity to RTT fluctuations.

    Two patterns from Section IV-C1, each run for Dynatune, default Raft
    and Raft-Low (parameters ÷ 10):

    - {e gradual}: RTT 50 → 200 → 50 ms in 10 ms steps, one minute per
      step (Fig 6a);
    - {e radical}: 50 ms for a minute, jump to 500 ms for a minute, back
      (Fig 6b).

    The observable is the (f+1)-th smallest randomizedTimeout sampled once
    per second, with out-of-service intervals (leaderless periods caused
    by unnecessary elections) as background shading. *)

type series = {
  mode : string;
  rtt : (float * float) list;  (** (second, link RTT ms) — the stimulus *)
  majority_timeout : (float * float) list;
      (** (second, (f+1)-th smallest randomizedTimeout ms) *)
  ots : (Des.Time.t * Des.Time.t) list;  (** leaderless intervals *)
  ots_total_ms : float;
  false_timeouts : int;  (** election-timer expiries while the leader was alive *)
  pre_vote_aborts : int;
  elections : int;  (** real (term-bumping) campaigns *)
}

type pattern = Gradual | Radical

val rtt_schedule : pattern -> hold:Des.Time.span -> float list
(** The RTT step values of each pattern. *)

val run :
  ?seed:int64 ->
  ?hold:Des.Time.span ->
  ?sample_every:Des.Time.span ->
  pattern:pattern ->
  config:Raft.Config.t ->
  unit ->
  series
(** [hold] is the duration of each RTT step (paper: 60 s). *)

val compare_modes :
  ?seed:int64 -> ?hold:Des.Time.span -> ?jobs:int -> pattern:pattern ->
  unit -> series list
(** Dynatune vs Raft vs Raft-Low.  [jobs > 1] runs the three modes on
    parallel domains; results are identical at any [jobs]. *)

val print : Format.formatter -> pattern -> series list -> unit
