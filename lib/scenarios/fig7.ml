module Cluster = Harness.Cluster
module Monitor = Harness.Monitor

type result = {
  mode : string;
  n : int;
  loss : (float * float) list;
  h : (float * float) list;
  leader_cpu : (float * float) list;
  follower_cpu : (float * float) list;
  elections : int;
  timer_expiries : int;
}

let loss_schedule =
  [ 0.; 5.; 10.; 15.; 20.; 25.; 30.; 25.; 20.; 15.; 10.; 5.; 0. ]

let run ?(seed = 19L) ?(hold = Des.Time.sec 180)
    ?(sample_every = Des.Time.sec 5) ?(cores = 2.) ~n ~config () =
  let warmup = Des.Time.sec 30 in
  let rtt_ms = 200. and jitter = 0.02 in
  let segments =
    (Des.Time.zero, Netsim.Conditions.profile ~rtt_ms ~jitter ())
    :: List.mapi
         (fun i pct ->
           ( Des.Time.add warmup (i * hold),
             Netsim.Conditions.profile ~rtt_ms ~jitter ~loss:(pct /. 100.) ()
           ))
         loss_schedule
  in
  let conditions = Netsim.Conditions.piecewise segments in
  let cluster =
    Cluster.create ~seed ~costs:Raft.Cost_model.etcd_like ~cores ~n ~config
      ~conditions ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
  | Some _ -> ()
  | None -> failwith "fig7: initial election failed");
  Des.Engine.run_until (Cluster.engine cluster) warmup;
  let measure_from = Cluster.now cluster in
  (* Fix the observed leader/follower pair at measurement start (the paper
     plots one leader and one follower). *)
  let leader_node =
    match Cluster.leader cluster with
    | Some l -> l
    | None -> failwith "fig7: leader lost before measurement"
  in
  let follower_id =
    List.find
      (fun id -> not (Netsim.Node_id.equal id (Raft.Node.id leader_node)))
      (Cluster.node_ids cluster)
  in
  let follower_node = Cluster.node cluster follower_id in
  let window_sec = Des.Time.to_sec_f sample_every in
  let cpu_probe node _cluster =
    let now_sec = Des.Time.to_sec_f (Cluster.now cluster) in
    Netsim.Cpu.utilization_in (Raft.Node.cpu node)
      ~lo_sec:(Stdlib.max 0. (now_sec -. window_sec))
      ~hi_sec:(Stdlib.max window_sec now_sec)
  in
  let duration = List.length loss_schedule * hold in
  let watched =
    Monitor.watch cluster ~every:sample_every ~duration
      ~probes:
        [
          {
            Monitor.name = "h";
            read =
              (fun c -> Monitor.gap (Monitor.leader_h_ms c ~follower:follower_id));
          };
          { Monitor.name = "leader_cpu"; read = cpu_probe leader_node };
          { Monitor.name = "follower_cpu"; read = cpu_probe follower_node };
        ]
  in
  let measure_until = Cluster.now cluster in
  let series name =
    match List.assoc_opt name watched with
    | Some ts -> Stats.Timeseries.points ts
    | None -> []
  in
  let h = series "h" in
  let loss =
    List.map
      (fun (sec, _) ->
        let t = Des.Time.of_sec_f sec in
        (sec, 100. *. (Netsim.Conditions.at conditions t).Netsim.Conditions.loss))
      h
  in
  let elections = ref 0 and expiries = ref 0 in
  Des.Mtrace.iter (Cluster.trace cluster) ~f:(fun time probe ->
      if time > measure_from && time <= measure_until then
        match probe with
        | Raft.Probe.Election_started _ -> incr elections
        | Raft.Probe.Timeout_expired _ -> incr expiries
        | Raft.Probe.Role_change _ | Raft.Probe.Pre_vote_aborted _
        | Raft.Probe.Tuner_reset _ | Raft.Probe.Tuner_decision _
        | Raft.Probe.Node_paused _ | Raft.Probe.Node_resumed _
        | Raft.Probe.Config_change _ | Raft.Probe.Transfer_started _
        | Raft.Probe.Transfer_aborted _ ->
            ());
  {
    mode = Raft.Config.mode_name config;
    n;
    loss;
    h;
    leader_cpu = series "leader_cpu";
    follower_cpu = series "follower_cpu";
    elections = !elections;
    timer_expiries = !expiries;
  }

let compare_modes ?(seed = 19L) ?hold ?(jobs = 1) ~ns () =
  Parallel.Campaign.all ~jobs
    (List.concat_map
       (fun n ->
         [
           (fun () -> run ~seed ?hold ~n ~config:(Raft.Config.dynatune ()) ());
           (fun () -> run ~seed ?hold ~n ~config:(Raft.Config.fix_k ~k:10 ()) ());
         ])
       ns)

let print ppf results =
  Report.banner ppf
    "Fig 7: heartbeat interval & CPU under loss 0->30->0% (RTT 200ms)";
  let nth_sample n points = List.filteri (fun i _ -> i mod n = 0) points in
  List.iter
    (fun r ->
      Report.subhead ppf (Printf.sprintf "%s N=%d" r.mode r.n);
      Report.series_table ppf ~time_label:"t(s)"
        ~columns:
          [
            ("loss %", nth_sample 6 r.loss);
            ("h (ms)", nth_sample 6 r.h);
            ("leader cpu%", nth_sample 6 r.leader_cpu);
            ("follower cpu%", nth_sample 6 r.follower_cpu);
          ];
      Report.kv ppf "unnecessary elections" (string_of_int r.elections);
      Report.kv ppf "timer expiries" (string_of_int r.timer_expiries);
      let cpu_peak =
        List.fold_left (fun acc (_, v) -> Stdlib.max acc v) 0. r.leader_cpu
      in
      Report.kv ppf "leader cpu peak" (Printf.sprintf "%.0f%%" cpu_peak))
    results
