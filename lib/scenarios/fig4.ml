module Cluster = Harness.Cluster

type result = {
  mode : string;
  failures : int;
  detection : Stats.Summary.t;
  majority_detection : Stats.Summary.t;
  ots : Stats.Summary.t;
  election : Stats.Summary.t;
  randomized : Stats.Summary.t;
  rounds : Stats.Summary.t;
  split_vote_rate : float;
  digest : int64;
      (* order-sensitive digest of every shard's probe trace, in shard
         order: the determinism sanitizer's witness *)
  metrics : Telemetry.Metrics.snapshot;
  recorder : Telemetry.Recorder.dump;
}

let result_of_raw ~mode ~digest ?(metrics = []) ?(recorder = [])
    (raw : Measure.raw) =
  {
    mode;
    digest;
    metrics;
    recorder;
    failures = raw.Measure.measured;
    detection = Stats.Summary.of_list raw.Measure.detection;
    majority_detection = Stats.Summary.of_list raw.Measure.majority;
    ots = Stats.Summary.of_list raw.Measure.ots;
    election = Stats.Summary.of_list raw.Measure.election;
    randomized = Stats.Summary.of_list raw.Measure.randomized;
    rounds = Stats.Summary.of_list raw.Measure.rounds;
    split_vote_rate =
      (if raw.Measure.measured = 0 then 0.
       else float_of_int raw.Measure.splits /. float_of_int raw.Measure.measured);
  }

let run ?(seed = 42L) ?(n = 5) ?(failures = 1000) ?(rtt_ms = 100.)
    ?(jitter = 0.02) ?(warmup = Des.Time.sec 30) ?(jobs = 1) ?shards
    ?(check = Check.Off) ?(instrument = false) ?record ?on_cluster ~config () =
  let shard (s : Parallel.Campaign.shard) =
    let conditions =
      Netsim.Conditions.(constant (profile ~rtt_ms ~jitter ()))
    in
    (* One registry per shard; the per-shard snapshots merge in shard
       order below, so the aggregate is independent of the worker
       count. *)
    let telemetry = Telemetry.Metrics.create ~enabled:instrument () in
    let recorder =
      match record with
      | Some every -> Telemetry.Recorder.create ~every ()
      | None -> Telemetry.Recorder.noop
    in
    let cluster =
      Cluster.create ~seed:s.seed ~n ~config ~conditions ~check ~telemetry
        ~recorder ()
    in
    (match on_cluster with Some f -> f ~shard:s.index cluster | None -> ());
    Cluster.start cluster;
    (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
    | Some _ -> ()
    | None -> failwith "fig4: initial election failed");
    Cluster.run_for cluster warmup;
    let raw = Measure.failures ~metrics:telemetry cluster ~quota:s.quota in
    Cluster.check_now cluster;
    Cluster.collect_metrics cluster;
    ( raw,
      Cluster.trace_digest cluster,
      Telemetry.Metrics.snapshot telemetry,
      Telemetry.Recorder.dump recorder )
  in
  let outcomes =
    Parallel.Campaign.sharded ?shards ~jobs ~seed ~total:failures ~f:shard ()
  in
  let digest =
    Check.Digest.combine (List.map (fun (_, d, _, _) -> d) outcomes)
  in
  let metrics =
    Telemetry.Metrics.merge (List.map (fun (_, _, m, _) -> m) outcomes)
  in
  let recorder =
    Telemetry.Recorder.merge (List.map (fun (_, _, _, r) -> r) outcomes)
  in
  result_of_raw ~mode:(Raft.Config.mode_name config) ~digest ~metrics
    ~recorder
    (Measure.merge (List.map (fun (r, _, _, _) -> r) outcomes))

let compare_modes ?(failures = 1000) ?(seed = 42L) ?(jobs = 1) () =
  [
    run ~seed ~failures ~jobs ~config:(Raft.Config.static ()) ();
    run ~seed ~failures ~jobs ~config:(Raft.Config.dynatune ()) ();
  ]

let print ppf results =
  Report.banner ppf
    "Fig 4: detection & OTS time CDFs (5 servers, RTT 100ms, p=0)";
  List.iter
    (fun r ->
      Report.subhead ppf (r.mode ^ " (" ^ string_of_int r.failures ^ " leader failures)");
      Report.summary_row ppf ~label:"detect" r.detection;
      Report.summary_row ppf ~label:"majority" r.majority_detection;
      Report.summary_row ppf ~label:"ots" r.ots;
      Report.summary_row ppf ~label:"election" r.election;
      Report.summary_row ppf ~label:"randTO" r.randomized;
      Report.kv ppf "split-vote rate"
        (Printf.sprintf "%.1f%% (mean %.2f rounds)" (100. *. r.split_vote_rate)
           (Stats.Summary.mean r.rounds)))
    results;
  (match results with
  | [ raft; dynatune ] when raft.mode <> dynatune.mode ->
      Report.subhead ppf "paper comparison (means)";
      let reduction field =
        let a = Stats.Summary.mean (field raft)
        and b = Stats.Summary.mean (field dynatune) in
        Printf.sprintf "%.0fms -> %.0fms (%.0f%% reduction; paper: 1205 -> 237 = 80%% / 1449 -> 797 = 45%%)"
          a b
          (100. *. (1. -. (b /. a)))
      in
      Report.kv ppf "detection" (reduction (fun r -> r.detection));
      Report.kv ppf "ots" (reduction (fun r -> r.ots))
  | _ -> ());
  Report.subhead ppf "detection CDF (ms)";
  Report.cdf_table ppf ~label:"prob"
    ~series:(List.map (fun r -> (r.mode, r.detection)) results)
    ~points:10;
  Report.subhead ppf "OTS CDF (ms)";
  Report.cdf_table ppf ~label:"prob"
    ~series:(List.map (fun r -> (r.mode, r.ots)) results)
    ~points:10
