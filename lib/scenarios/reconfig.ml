module Cluster = Harness.Cluster
module Node_id = Netsim.Node_id

type raw = {
  rounds : int;
  replacements : int;
  stalls : int;
  sampled_ms : float;
  reactive_down_ms : float;
  graceful_down_ms : float;
  offered : int;
  completed : int;
  rejected : int;
  redirected : int;
  abandoned : int;
}

let empty_raw =
  {
    rounds = 0;
    replacements = 0;
    stalls = 0;
    sampled_ms = 0.;
    reactive_down_ms = 0.;
    graceful_down_ms = 0.;
    offered = 0;
    completed = 0;
    rejected = 0;
    redirected = 0;
    abandoned = 0;
  }

let merge_raw parts =
  List.fold_left
    (fun acc p ->
      {
        rounds = acc.rounds + p.rounds;
        replacements = acc.replacements + p.replacements;
        stalls = acc.stalls + p.stalls;
        sampled_ms = acc.sampled_ms +. p.sampled_ms;
        reactive_down_ms = acc.reactive_down_ms +. p.reactive_down_ms;
        graceful_down_ms = acc.graceful_down_ms +. p.graceful_down_ms;
        offered = acc.offered + p.offered;
        completed = acc.completed + p.completed;
        rejected = acc.rejected + p.rejected;
        redirected = acc.redirected + p.redirected;
        abandoned = acc.abandoned + p.abandoned;
      })
    empty_raw parts

type result = {
  mode : string;
  rounds : int;
  replacements : int;
  stalls : int;
  sampled_ms : float;
  reactive_down_ms : float;
  graceful_down_ms : float;
  total_down_ms : float;
  unavailability : float;
  offered : int;
  completed : int;
  rejected : int;
  redirected : int;
  abandoned : int;
  digest : int64;
  metrics : Telemetry.Metrics.snapshot;
}

let result_of_raw ~mode ~digest ?(metrics = []) (raw : raw) =
  let total = raw.reactive_down_ms +. raw.graceful_down_ms in
  {
    mode;
    digest;
    metrics;
    rounds = raw.rounds;
    replacements = raw.replacements;
    stalls = raw.stalls;
    sampled_ms = raw.sampled_ms;
    reactive_down_ms = raw.reactive_down_ms;
    graceful_down_ms = raw.graceful_down_ms;
    total_down_ms = total;
    unavailability = (if raw.sampled_ms <= 0. then 0. else total /. raw.sampled_ms);
    offered = raw.offered;
    completed = raw.completed;
    rejected = raw.rejected;
    redirected = raw.redirected;
    abandoned = raw.abandoned;
  }

(* One rolling-replace campaign on the 5-region geo cluster.

   Each round replaces every current member with a fresh server in the
   same region slot, one at a time, make-before-break: spawn the
   replacement as a learner, wait for the leader to promote it, then
   remove the outgoing member.  The round's first replacement is
   {e reactive} — the outgoing leader fails un-announced (the crashed
   server is replaced rather than drained), so downtime there is bounded
   by failure detection, the quantity the tuner shrinks.  The remaining
   four are {e graceful}: a removed leader hands off via leadership
   transfer before departing.

   Client-perceived downtime is sampled in 1 ms slices while the engine
   advances: a slice is down when no live node is a leader able to
   accept proposals (no leader at all, or the leader is frozen by an
   in-flight transfer). *)

type phase = Steady | Reactive | Graceful

let spin_timeout = Des.Time.sec 180

let shard_campaign ?jitter ?loss ~rate ~check ~telemetry ~config ~on_cluster
    ~warmup ~recover ~rounds ~seed ~shard_index () =
  let cluster = Cluster.create ~seed ~n:5 ~config ~check ~telemetry () in
  Geo.apply cluster ?jitter ?loss ();
  (match on_cluster with Some f -> f ~shard:shard_index cluster | None -> ());
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
  | Some _ -> ()
  | None -> failwith "reconfig: initial election failed");
  Cluster.run_for cluster warmup;
  (* Region slot of each node: replacements inherit the slot of the
     member they replace, so the WAN geometry is preserved across
     rounds. *)
  let region = Hashtbl.create 16 in
  List.iteri
    (fun i id -> Hashtbl.replace region (Node_id.to_int id) i)
    (Cluster.node_ids cluster);
  let client =
    Kvsm.Client.create
      ~engine:(Cluster.engine cluster)
      ~target:(Cluster.submit_target cluster)
      ~route:(Cluster.submit_to cluster) ~client_id:1 ~rate ()
  in
  Kvsm.Client.start client;
  let sampled = ref 0. and reactive = ref 0. and graceful = ref 0. in
  let stalls = ref 0 and replacements = ref 0 and rounds_done = ref 0 in
  let down () =
    match Cluster.leader cluster with
    | None -> true
    | Some l ->
        Raft.Server.transfer_pending (Raft.Node.server l) <> None
  in
  (* Advance in 1 ms slices until [cond] holds, charging down slices to
     the phase's bucket.  Returns whether the condition was reached. *)
  let spin ~phase cond =
    let deadline = Des.Time.add (Cluster.now cluster) spin_timeout in
    let rec go () =
      if cond () then true
      else if Cluster.now cluster >= deadline then begin
        incr stalls;
        false
      end
      else begin
        Cluster.run_for cluster (Des.Time.ms 1);
        sampled := !sampled +. 1.;
        (if down () then
           match phase with
           | Reactive -> reactive := !reactive +. 1.
           | Graceful -> graceful := !graceful +. 1.
           | Steady -> ());
        go ()
      end
    in
    go ()
  in
  let leader_server () =
    Option.map Raft.Node.server (Cluster.leader cluster)
  in
  let quiet () =
    match leader_server () with
    | None -> false
    | Some s ->
        Raft.Server.pending_config s = None
        && Raft.Server.transfer_pending s = None
  in
  let voter id () =
    match leader_server () with
    | None -> false
    | Some s ->
        Raft.Server.is_voter s id && Raft.Server.pending_config s = None
  in
  (* Submitting a change retries through leader churn: [`Not_leader] and
     [`Pending] resolve as the engine advances. *)
  let submit ~phase change =
    spin ~phase (fun () ->
        match Cluster.reconfigure cluster change with
        | `Ok _ -> true
        | `Not_leader | `Pending | `Invalid _ -> false)
  in
  let replace_one ~reactive_step old =
    let slot = Hashtbl.find region (Node_id.to_int old) in
    let entry_phase = if reactive_step then Reactive else Graceful in
    if reactive_step then begin
      (* The outgoing leader fails before it can be drained. *)
      Raft.Node.pause (Cluster.node cluster old);
      ignore (spin ~phase:Reactive (fun () -> Cluster.leader cluster <> None))
    end;
    let nid = Cluster.spawn_joiner cluster in
    Hashtbl.replace region (Node_id.to_int nid) slot;
    List.iter
      (fun other ->
        if not (Node_id.equal other nid) then
          let a = List.nth Geo.regions slot in
          let b =
            List.nth Geo.regions (Hashtbl.find region (Node_id.to_int other))
          in
          Cluster.set_pair_conditions cluster nid other
            (Geo.conditions ?jitter ?loss a b))
      (Cluster.node_ids cluster);
    if submit ~phase:entry_phase (Raft.Log.Add_learner nid) then begin
      ignore (spin ~phase:entry_phase (voter nid));
      if submit ~phase:Graceful (Raft.Log.Remove old) then begin
        ignore (spin ~phase:Graceful quiet);
        Cluster.retire cluster old;
        incr replacements
      end
    end
  in
  for _ = 1 to rounds do
    ignore (spin ~phase:Steady (fun () -> Cluster.leader cluster <> None));
    let originals = Cluster.node_ids cluster in
    let lead =
      match Cluster.leader cluster with
      | Some l -> Raft.Node.id l
      | None -> List.hd originals
    in
    replace_one ~reactive_step:true lead;
    List.iter
      (fun old ->
        if not (Node_id.equal old lead) then
          replace_one ~reactive_step:false old)
      originals;
    incr rounds_done;
    (* Operator pacing: rolling replaces run with a health-check hold
       between rounds.  The committed config changes re-warmed every
       tuner; the hold gives them time to measure again, so the next
       round's un-announced failure meets tuned parameters (the steady
       state the campaign is probing).  Not sampled: nothing is being
       replaced. *)
    Cluster.run_for cluster recover
  done;
  Kvsm.Client.stop client;
  (* Let in-flight commits complete so the client tallies settle. *)
  Cluster.run_for cluster (Des.Time.sec 2);
  Cluster.check_now cluster;
  Cluster.collect_metrics cluster;
  let raw =
    {
      rounds = !rounds_done;
      replacements = !replacements;
      stalls = !stalls;
      sampled_ms = !sampled;
      reactive_down_ms = !reactive;
      graceful_down_ms = !graceful;
      offered = Kvsm.Client.offered client;
      completed = Kvsm.Client.completed client;
      rejected = Kvsm.Client.rejected client;
      redirected = Kvsm.Client.redirected client;
      abandoned = Kvsm.Client.abandoned client;
    }
  in
  (raw, Cluster.trace_digest cluster, Telemetry.Metrics.snapshot telemetry)

let run ?(seed = 42L) ?(rounds = 4) ?jitter ?loss ?(rate = 20.)
    ?(warmup = Des.Time.sec 30) ?(recover = Des.Time.sec 15) ?(jobs = 1)
    ?shards ?(check = Check.Off) ?(instrument = false) ?on_cluster ~config () =
  let shard (s : Parallel.Campaign.shard) =
    let telemetry = Telemetry.Metrics.create ~enabled:instrument () in
    shard_campaign ?jitter ?loss ~rate ~check ~telemetry ~config ~on_cluster
      ~warmup ~recover ~rounds:s.quota ~seed:s.seed ~shard_index:s.index ()
  in
  let outcomes =
    Parallel.Campaign.sharded ?shards ~jobs ~seed ~total:rounds ~f:shard ()
  in
  result_of_raw ~mode:(Raft.Config.mode_name config)
    ~digest:(Check.Digest.combine (List.map (fun (_, d, _) -> d) outcomes))
    ~metrics:(Telemetry.Metrics.merge (List.map (fun (_, _, m) -> m) outcomes))
    (merge_raw (List.map (fun (r, _, _) -> r) outcomes))

(* The plan is pinned to two shards so the tuner-off/on comparison is a
   function of [(seed, rounds)] alone, whatever [--jobs] says — and so
   each shard runs several rounds against one long-lived cluster, where
   the between-round recovery holds let the re-warmed tuners reach
   steady state (a one-round shard only ever measures the first
   failover). *)
let compare_modes ?(rounds = 4) ?(seed = 42L) ?(jobs = 1) () =
  [
    run ~seed ~rounds ~jobs ~shards:2 ~config:(Raft.Config.static ()) ();
    run ~seed ~rounds ~jobs ~shards:2 ~config:(Raft.Config.dynatune ()) ();
  ]

let print ppf results =
  Report.banner ppf
    "Reconfig: rolling replace on the 5-region geo WAN (client-perceived \
     downtime)";
  List.iter
    (fun r ->
      Report.subhead ppf
        (Printf.sprintf "%s (%d rounds, %d replacements)" r.mode r.rounds
           r.replacements);
      Report.kv ppf "sampled"
        (Printf.sprintf "%.0f ms of replacement activity" r.sampled_ms);
      Report.kv ppf "downtime"
        (Printf.sprintf "%.0f ms total = %.0f ms reactive + %.0f ms graceful"
           r.total_down_ms r.reactive_down_ms r.graceful_down_ms);
      Report.kv ppf "unavailability"
        (Printf.sprintf "%.3f%%" (100. *. r.unavailability));
      Report.kv ppf "client"
        (Printf.sprintf
           "%d offered, %d committed, %d rejected, %d redirects, %d abandoned"
           r.offered r.completed r.rejected r.redirected r.abandoned);
      if r.stalls > 0 then
        Report.kv ppf "stalls" (string_of_int r.stalls))
    results;
  match results with
  | [ off; on ] when off.mode <> on.mode ->
      Report.subhead ppf "tuner impact";
      let pct a b = if a <= 0. then 0. else 100. *. (1. -. (b /. a)) in
      Report.kv ppf "downtime"
        (Printf.sprintf "%.0fms -> %.0fms (%.0f%% reduction)" off.total_down_ms
           on.total_down_ms
           (pct off.total_down_ms on.total_down_ms));
      Report.kv ppf "reactive"
        (Printf.sprintf "%.0fms -> %.0fms (detection-bound)"
           off.reactive_down_ms on.reactive_down_ms)
  | _ -> ()
