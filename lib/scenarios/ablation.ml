module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Monitor = Harness.Monitor

type safety_row = {
  s : float;
  detection_mean_ms : float;
  ots_mean_ms : float;
  et_mean_ms : float;
  false_timeouts : int;
}

let dynatune_with f = Raft.Config.dynatune ~cfg:(f Dynatune.Config.default) ()

let count_expiries cluster ~from ~until =
  let n = ref 0 in
  Des.Mtrace.iter (Cluster.trace cluster) ~f:(fun time probe ->
      if time > from && time <= until then
        match probe with
        | Raft.Probe.Timeout_expired _ -> incr n
        | Raft.Probe.Role_change _ | Raft.Probe.Pre_vote_aborted _
        | Raft.Probe.Tuner_reset _ | Raft.Probe.Tuner_decision _
        | Raft.Probe.Election_started _ | Raft.Probe.Node_paused _
        | Raft.Probe.Node_resumed _ | Raft.Probe.Config_change _
        | Raft.Probe.Transfer_started _ | Raft.Probe.Transfer_aborted _ ->
            ());
  !n

(* Mean of a per-second-sampled quantity over a window, ignoring NaNs
   (samples taken while warming / leaderless are excluded). *)
let sampled_mean cluster ~duration ~read =
  let w = Stats.Welford.create () in
  let engine = Cluster.engine cluster in
  let stop_at = Des.Time.add (Des.Engine.now engine) duration in
  let rec arm () =
    ignore
      (Des.Engine.schedule_after engine (Des.Time.sec 1) (fun () ->
           (match read cluster with
           | Some v -> Stats.Welford.add w v
           | None -> ());
           if Des.Engine.now engine < stop_at then arm ())
        : Des.Engine.handle)
  in
  arm ();
  Des.Engine.run_until engine stop_at;
  if Stats.Welford.count w = 0 then nan else Stats.Welford.mean w

(* Mean tuned Et across followers whose tuner has left Step 0; [None]
   when none is tuned right now. *)
let tuned_follower_et cluster =
  let leader = Option.map Raft.Node.id (Cluster.leader cluster) in
  let ets =
    List.filter_map
      (fun id ->
        let skip =
          match leader with
          | Some l -> Netsim.Node_id.equal l id
          | None -> false
        in
        if skip then None
        else
          match
            Raft.Server.tuner (Raft.Node.server (Cluster.node cluster id))
          with
          | Some tuner when Dynatune.Tuner.phase tuner = Dynatune.Tuner.Tuned
            ->
              Some (Des.Time.to_ms_f (Dynatune.Tuner.election_timeout tuner))
          | Some _ | None -> None)
      (Cluster.node_ids cluster)
  in
  match ets with
  | [] -> None
  | _ ->
      Some (List.fold_left ( +. ) 0. ets /. float_of_int (List.length ets))

let safety_factor_sweep ?(seed = 31L) ?(values = [ 0.; 1.; 2.; 3.; 4. ])
    ?(failures = 100) ?(quiet = Des.Time.sec 120) ?(jitter = 0.15)
    ?(jobs = 1) () =
  Parallel.Campaign.all ~jobs
  @@ List.map
       (fun s () ->
      let config =
        dynatune_with (fun cfg -> { cfg with Dynatune.Config.safety_factor = s })
      in
      let conditions =
        Netsim.Conditions.(constant (profile ~rtt_ms:100. ~jitter ()))
      in
      let cluster = Cluster.create ~seed ~n:5 ~config ~conditions () in
      Cluster.start cluster;
      (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
      | Some _ -> ()
      | None -> failwith "ablation: initial election failed");
      Cluster.run_for cluster (Des.Time.sec 30);
      (* Quiet period: sample the tuned Et and count false detections
         under jitter. *)
      Des.Mtrace.clear (Cluster.trace cluster);
      let from = Cluster.now cluster in
      let et_mean_ms =
        sampled_mean cluster ~duration:quiet ~read:tuned_follower_et
      in
      let false_timeouts =
        count_expiries cluster ~from ~until:(Cluster.now cluster)
      in
      (* Failure campaign. *)
      let det = ref [] and ots = ref [] in
      let measured = ref 0 and attempts = ref 0 in
      while !measured < failures && !attempts < 2 * failures do
        incr attempts;
        match Fault.fail_and_measure cluster () with
        | Error _ -> Cluster.run_for cluster (Des.Time.sec 5)
        | Ok o ->
            incr measured;
            det := o.Fault.detection_ms :: !det;
            ots := o.Fault.ots_ms :: !ots
      done;
      {
        s;
        detection_mean_ms = Stats.Summary.(mean (of_list !det));
        ots_mean_ms = Stats.Summary.(mean (of_list !ots));
        et_mean_ms;
        false_timeouts;
      })
       values

type arrival_row = {
  x : float;
  k : int;
  h_ms : float;
  heartbeat_rate_hz : float;
  false_timeouts : int;
}

let arrival_probability_sweep ?(seed = 37L)
    ?(values = [ 0.9; 0.99; 0.999; 0.9999 ]) ?(loss = 0.10)
    ?(quiet = Des.Time.sec 120) ?(jobs = 1) () =
  Parallel.Campaign.all ~jobs
  @@ List.map
       (fun x () ->
      let config =
        dynatune_with (fun cfg ->
            { cfg with Dynatune.Config.arrival_probability = x })
      in
      let conditions =
        Netsim.Conditions.(
          constant (profile ~rtt_ms:200. ~jitter:0.02 ~loss ()))
      in
      let cluster = Cluster.create ~seed ~n:5 ~config ~conditions () in
      Cluster.start cluster;
      (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
      | Some _ -> ()
      | None -> failwith "ablation: initial election failed");
      Cluster.run_for cluster (Des.Time.sec 60);
      Des.Mtrace.clear (Cluster.trace cluster);
      let from = Cluster.now cluster in
      (* Sample the h the leader actually applies toward one follower
         over the quiet period (warming dips excluded as NaN). *)
      let follower =
        List.find
          (fun id ->
            match Cluster.leader cluster with
            | Some l -> not (Netsim.Node_id.equal (Raft.Node.id l) id)
            | None -> true)
          (Cluster.node_ids cluster)
      in
      let h_ms =
        sampled_mean cluster ~duration:quiet ~read:(fun c ->
            Monitor.leader_h_ms c ~follower)
      in
      let false_timeouts =
        count_expiries cluster ~from ~until:(Cluster.now cluster)
      in
      let k = Dynatune.Tuner.required_heartbeats_for ~p:loss ~x in
      {
        x;
        k;
        h_ms;
        heartbeat_rate_hz = (if h_ms > 0. then 1000. /. h_ms else nan);
        false_timeouts;
      })
       values

type list_size_row = {
  min_list_size : int;
  warmup_ms : float;
  adaptation_ms : float;
}

let list_size_sweep ?(seed = 41L) ?(values = [ 5; 20; 50; 100 ]) ?(jobs = 1)
    () =
  Parallel.Campaign.all ~jobs
  @@ List.map
       (fun min_list_size () ->
      let config =
        dynatune_with (fun cfg ->
            {
              cfg with
              Dynatune.Config.min_list_size;
              max_list_size = Stdlib.max min_list_size cfg.Dynatune.Config.max_list_size;
            })
      in
      let step_at = Des.Time.sec 120 in
      let conditions =
        Netsim.Conditions.piecewise
          [
            (Des.Time.zero, Netsim.Conditions.profile ~rtt_ms:50. ~jitter:0.02 ());
            (step_at, Netsim.Conditions.profile ~rtt_ms:150. ~jitter:0.02 ());
          ]
      in
      let cluster = Cluster.create ~seed ~n:5 ~config ~conditions () in
      Cluster.start cluster;
      let elected =
        match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
        | Some _ -> Cluster.now cluster
        | None -> failwith "ablation: initial election failed"
      in
      (* Warm-up duration: run until every follower's tuner is Tuned. *)
      let followers () =
        List.filter
          (fun id ->
            match Cluster.leader cluster with
            | Some l -> not (Netsim.Node_id.equal (Raft.Node.id l) id)
            | None -> true)
          (Cluster.node_ids cluster)
      in
      let all_tuned () =
        List.for_all
          (fun id ->
            match Raft.Server.tuner (Raft.Node.server (Cluster.node cluster id)) with
            | Some t -> Dynatune.Tuner.phase t = Dynatune.Tuner.Tuned
            | None -> false)
          (followers ())
      in
      let rec wait_tuned limit =
        if all_tuned () then Cluster.now cluster
        else if Cluster.now cluster >= limit then Cluster.now cluster
        else begin
          Cluster.run_for cluster (Des.Time.ms 100);
          wait_tuned limit
        end
      in
      let tuned_at = wait_tuned (Des.Time.sec 110) in
      let warmup_ms = Des.Time.to_ms_f (Des.Time.diff tuned_at elected) in
      (* Adaptation: run to the RTT step, then wait until every follower
         has re-tuned (left Step 0 again — the step typically trips timers
         and falls back to defaults) and the majority randomized timeout
         accommodates the new RTT. *)
      Des.Engine.run_until (Cluster.engine cluster) step_at;
      let rec wait_adapted limit =
        if
          all_tuned ()
          && (match Monitor.majority_randomized_ms cluster with
             | Some v -> v >= 150.
             | None -> false)
        then Cluster.now cluster
        else if Cluster.now cluster >= limit then Cluster.now cluster
        else begin
          Cluster.run_for cluster (Des.Time.ms 100);
          wait_adapted limit
        end
      in
      let adapted_at = wait_adapted (Des.Time.add step_at (Des.Time.sec 120)) in
      {
        min_list_size;
        warmup_ms;
        adaptation_ms = Des.Time.to_ms_f (Des.Time.diff adapted_at step_at);
      })
       values

type estimator_row = {
  estimator : string;
  et_steady_ms : float;
  et_jitter_ms : float;
  adaptation_up_ms : float;
  false_timeouts : int;
  detection_mean_ms : float;
}

let estimator_sweep ?(seed = 47L) ?(failures = 40) ?(jobs = 1) () =
  let backends =
    [
      ("window", Dynatune.Config.Sliding_window);
      ("ewma-1/8", Dynatune.Config.Ewma 0.125);
      ("ewma-1/4", Dynatune.Config.Ewma 0.25);
      ("ewma-1/2", Dynatune.Config.Ewma 0.5);
    ]
  in
  Parallel.Campaign.all ~jobs
  @@ List.map
       (fun (name, rtt_estimator) () ->
      let config =
        dynatune_with (fun cfg -> { cfg with Dynatune.Config.rtt_estimator })
      in
      let step_at = Des.Time.sec 150 in
      let conditions =
        Netsim.Conditions.piecewise
          [
            ( Des.Time.zero,
              Netsim.Conditions.profile ~rtt_ms:50. ~jitter:0.1 () );
            (step_at, Netsim.Conditions.profile ~rtt_ms:150. ~jitter:0.1 ());
          ]
      in
      let cluster = Cluster.create ~seed ~n:5 ~config ~conditions () in
      Cluster.start cluster;
      (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
      | Some _ -> ()
      | None -> failwith "ablation: initial election failed");
      Cluster.run_for cluster (Des.Time.sec 30);
      (* Steady jittery period: Et level, Et stability, false trips. *)
      Des.Mtrace.clear (Cluster.trace cluster);
      let from = Cluster.now cluster in
      let et = Stats.Welford.create () in
      let engine = Cluster.engine cluster in
      let stop_at = Des.Time.add from (Des.Time.sec 100) in
      let rec arm () =
        ignore
          (Des.Engine.schedule_after engine (Des.Time.sec 1) (fun () ->
               (match tuned_follower_et cluster with
               | Some v -> Stats.Welford.add et v
               | None -> ());
               if Des.Engine.now engine < stop_at then arm ())
            : Des.Engine.handle)
      in
      arm ();
      Des.Engine.run_until engine stop_at;
      let false_timeouts =
        count_expiries cluster ~from ~until:(Cluster.now cluster)
      in
      (* Adaptation to the RTT step. *)
      Des.Engine.run_until engine step_at;
      let all_tuned_and_adapted () =
        (match Monitor.majority_randomized_ms cluster with
        | Some v -> v >= 150.
        | None -> false)
        && List.for_all
             (fun id ->
               match
                 Raft.Server.tuner
                   (Raft.Node.server (Cluster.node cluster id))
               with
               | Some t -> Dynatune.Tuner.phase t = Dynatune.Tuner.Tuned
               | None -> false)
             (List.filter
                (fun id ->
                  match Cluster.leader cluster with
                  | Some l -> not (Netsim.Node_id.equal (Raft.Node.id l) id)
                  | None -> true)
                (Cluster.node_ids cluster))
      in
      let rec wait_adapted limit =
        if all_tuned_and_adapted () then Cluster.now cluster
        else if Cluster.now cluster >= limit then Cluster.now cluster
        else begin
          Cluster.run_for cluster (Des.Time.ms 100);
          wait_adapted limit
        end
      in
      let adapted_at =
        wait_adapted (Des.Time.add step_at (Des.Time.sec 120))
      in
      (* Small failover campaign at the new level. *)
      Cluster.run_for cluster (Des.Time.sec 10);
      let det = ref [] in
      let measured = ref 0 and attempts = ref 0 in
      while !measured < failures && !attempts < 2 * failures do
        incr attempts;
        match Fault.fail_and_measure cluster () with
        | Error _ -> Cluster.run_for cluster (Des.Time.sec 5)
        | Ok o ->
            incr measured;
            det := o.Fault.detection_ms :: !det
      done;
      {
        estimator = name;
        et_steady_ms = Stats.Welford.mean et;
        et_jitter_ms = Stats.Welford.std et;
        adaptation_up_ms =
          Des.Time.to_ms_f (Des.Time.diff adapted_at step_at);
        false_timeouts;
        detection_mean_ms = Stats.Summary.(mean (of_list !det));
      })
       backends

let print ppf (safety, arrival, sizes, estimators) =
  Report.banner ppf "Ablations: Dynatune runtime parameters";
  Report.subhead ppf
    "safety factor s (RTT 100ms, jitter 15%; detection vs false triggers)";
  Format.fprintf ppf "  %6s %12s %12s %12s %16s@." "s" "Et(ms)" "detect(ms)"
    "ots(ms)" "false timeouts";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %6.1f %12.1f %12.1f %12.1f %16d@." r.s
        r.et_mean_ms r.detection_mean_ms r.ots_mean_ms r.false_timeouts)
    safety;
  Report.subhead ppf
    "arrival probability x (RTT 200ms, loss 10%; heartbeat cost vs safety)";
  Format.fprintf ppf "  %8s %4s %10s %12s %16s@." "x" "K" "h(ms)" "hb rate/s"
    "false timeouts";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %8.4f %4d %10.1f %12.1f %16d@." r.x r.k r.h_ms
        r.heartbeat_rate_hz r.false_timeouts)
    arrival;
  Report.subhead ppf "minListSize (warm-up and adaptation lag)";
  Format.fprintf ppf "  %8s %14s %16s@." "size" "warmup(ms)" "adaptation(ms)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %8d %14.0f %16.0f@." r.min_list_size r.warmup_ms
        r.adaptation_ms)
    sizes;
  Report.subhead ppf
    "RTT estimator backend (window vs EWMA; RTT 50ms jitter 10%, step to 150ms)";
  Format.fprintf ppf "  %10s %12s %12s %14s %8s %12s@." "backend" "Et(ms)"
    "Et std(ms)" "adapt(ms)" "false" "detect(ms)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %10s %12.1f %12.1f %14.0f %8d %12.1f@."
        r.estimator r.et_steady_ms r.et_jitter_ms r.adaptation_up_ms
        r.false_timeouts r.detection_mean_ms)
    estimators
