(* The multiraft scenario: N consensus groups on one fabric behind the
   shard router, driven by an open-loop client ramp an order of
   magnitude beyond fig5's single-group saturation sweep.

   Lives in a file that does not shadow the [Multiraft] library; the
   public name is [Scenarios.Multiraft] (see scenarios.ml). *)

module Gm = Multiraft.Group_manager
module Router = Multiraft.Router

type cell = {
  groups : int;
  replicas : int;
  levels : Kvsm.Workload.level_report list;
      (* aggregate (all groups together), one row per offered level *)
  peak_rps : float;
  saturation_rps : float option;
  leader_distribution : int array;
  hint_hits : int;
  hint_misses : int;
  hint_refreshes : int;
  events : int;  (* DES events processed over the whole cell *)
  digest : int64;  (* Group_manager.digest: per-group digests combined *)
}

type result = {
  cells : cell list;
  digest : int64;
      (* cell digests combined in cell order — the jobs-invariance
         witness for the whole sweep *)
  metrics : Telemetry.Metrics.snapshot;
  recorder : Telemetry.Recorder.dump;
}

(* Aggregate offered rates: fig5's saturation sweep tops out at 8000
   req/s against one group; the router spreads these over N groups. *)
let default_rates = [ 5000.; 10000.; 20000.; 40000.; 80000. ]

let default_group_counts = [ 16; 64 ]

(* One cell: a fixed group count, the full rate ramp.  The replication
   engine runs fig5's best configuration (window 16, priority lanes) on
   top of dynatune, under the same wire model. *)
let run_one ?(seed = 11L) ?(replicas = 3) ?(rates = default_rates)
    ?(hold = Des.Time.sec 2) ?(rtt_ms = 50.) ?(serialization = Des.Time.us 100)
    ?(warmup = Des.Time.sec 10) ?(check = Check.Off)
    ?(telemetry = Telemetry.Metrics.noop)
    ?(forensics = Telemetry.Forensics.noop)
    ?(recorder = Telemetry.Recorder.noop) ?on_manager ~groups () =
  let config =
    Raft.Config.with_replication ~max_inflight_appends:16
      ~append_backpressure:64 ~max_entries_per_append:64 ~priority_lanes:true
      (Raft.Config.dynatune ())
  in
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.05 ()))
  in
  let m =
    Gm.create ~seed ~conditions ~check ~telemetry ~forensics ~recorder ~groups
      ~replicas ~config ()
  in
  Netsim.Fabric.set_uniform_serialization (Gm.fabric m) serialization;
  (match on_manager with Some f -> f m | None -> ());
  Gm.start m;
  if not (Gm.await_leaders m ~timeout:(Des.Time.sec 30)) then
    failwith "multiraft: initial elections failed";
  (* Let every group's tuner warm before offering load. *)
  Gm.run_for m warmup;
  let router = Router.create m in
  let levels =
    Kvsm.Workload.run_ramp ~engine:(Gm.engine m)
      ~target:(Router.target router) ~route:(Router.route router) ~rates ~hold
      ~client_rtt:(Des.Time.of_ms_f rtt_ms) ()
  in
  Gm.check_now m;
  Gm.collect_metrics m;
  let stats = Des.Engine.stats (Gm.engine m) in
  {
    groups;
    replicas;
    levels;
    peak_rps = Kvsm.Workload.peak_throughput levels;
    saturation_rps = Kvsm.Workload.saturation_rate levels;
    leader_distribution = Gm.leader_distribution m;
    hint_hits = Router.hint_hits router;
    hint_misses = Router.hint_misses router;
    hint_refreshes = Router.hint_refreshes router;
    events = stats.Des.Engine.processed;
    digest = Gm.digest m;
  }

(* The sweep: group count x offered rate, one campaign task per group
   count.  Each cell derives its own seed from the sweep seed and its
   position, builds its own registry/recorder, and the per-cell pieces
   merge in cell order — so the merged digest, metrics and recorder
   bytes are independent of [jobs]. *)
let sweep ?(seed = 11L) ?(replicas = 3) ?(group_counts = default_group_counts)
    ?(rates = default_rates) ?hold ?rtt_ms ?serialization ?warmup
    ?(check = Check.Off) ?(instrument = false) ?record ?(jobs = 1) () =
  let outcomes =
    Parallel.Campaign.all ~jobs
      (List.mapi
         (fun i groups () ->
           let telemetry = Telemetry.Metrics.create ~enabled:instrument () in
           let recorder =
             match record with
             | Some every -> Telemetry.Recorder.create ~every ()
             | None -> Telemetry.Recorder.noop
           in
           let cell =
             run_one ~seed:(Stats.Rng.derive seed i) ~replicas ~rates ?hold
               ?rtt_ms ?serialization ?warmup ~check ~telemetry ~recorder
               ~groups ()
           in
           ( cell,
             Telemetry.Metrics.snapshot telemetry,
             Telemetry.Recorder.dump recorder ))
         group_counts)
  in
  {
    cells = List.map (fun (c, _, _) -> c) outcomes;
    digest =
      Check.Digest.combine
        (List.map (fun ((c : cell), _, _) -> c.digest) outcomes);
    metrics = Telemetry.Metrics.merge (List.map (fun (_, m, _) -> m) outcomes);
    recorder =
      Telemetry.Recorder.merge (List.map (fun (_, _, r) -> r) outcomes);
  }

let pp_distribution ppf dist =
  Array.iteri
    (fun slot count ->
      if slot > 0 then Format.fprintf ppf " ";
      Format.fprintf ppf "r%d:%d" slot count)
    dist

let print_cell ppf c =
  Report.subhead ppf
    (Printf.sprintf "%d groups x %d replicas (%d nodes)" c.groups c.replicas
       (c.groups * c.replicas));
  List.iter
    (fun level -> Format.fprintf ppf "  %a@." Kvsm.Workload.pp_report level)
    c.levels;
  Report.kv ppf "peak throughput" (Printf.sprintf "%.0f req/s" c.peak_rps);
  Report.kv ppf "saturation offered rate"
    (match c.saturation_rps with
    | Some v -> Printf.sprintf "%.0f req/s" v
    | None -> "not reached");
  Report.kv ppf "leader distribution"
    (Format.asprintf "%a" pp_distribution c.leader_distribution);
  Report.kv ppf "router hints"
    (Printf.sprintf "%d hits / %d misses / %d refreshes" c.hint_hits
       c.hint_misses c.hint_refreshes);
  Report.kv ppf "DES events" (string_of_int c.events)

let print ppf r =
  Report.banner ppf
    "Multiraft: group count x aggregate offered load behind the shard router";
  List.iter (print_cell ppf) r.cells;
  match (r.cells, List.rev r.cells) with
  | one :: _, widest :: _ when widest.groups > one.groups && one.peak_rps > 0.
    ->
      Report.subhead ppf "scale-out effect";
      Report.kv ppf "sustainable throughput"
        (Printf.sprintf "%.0f -> %.0f req/s (%.1fx at %dx groups)"
           one.peak_rps widest.peak_rps
           (widest.peak_rps /. one.peak_rps)
           (widest.groups / one.groups))
  | _ -> ()
