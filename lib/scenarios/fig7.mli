(** Figure 7 — adaptivity to packet-loss fluctuations (Section IV-C2).

    RTT fixed at 200 ms; the loss rate climbs 0 → 30% in 5-point steps and
    back down, each level held for three minutes.  Dynatune (auto-tuned
    [h]) is compared against Fix-K ([K = 10] fixed, [h = Et/10]) for
    cluster sizes N ∈ {5, 17, 65}:

    - Fig 7a: the applied heartbeat interval [h] over time;
    - Fig 7b: leader and follower CPU utilization (docker-stats style,
      5-second windows, percent of one core on two-core nodes). *)

type result = {
  mode : string;
  n : int;
  loss : (float * float) list;  (** (second, loss %) — the stimulus *)
  h : (float * float) list;
      (** (second, applied heartbeat interval ms toward one follower) *)
  leader_cpu : (float * float) list;  (** (second, percent) *)
  follower_cpu : (float * float) list;
  elections : int;  (** unnecessary elections during the run (paper: 0) *)
  timer_expiries : int;
}

val loss_schedule : float list
(** 0, 5, 10, 15, 20, 25, 30, 25, 20, 15, 10, 5, 0 (percent). *)

val run :
  ?seed:int64 ->
  ?hold:Des.Time.span ->
  ?sample_every:Des.Time.span ->
  ?cores:float ->
  n:int ->
  config:Raft.Config.t ->
  unit ->
  result
(** [hold] defaults to the paper's 180 s per loss level; [cores] to 2
    (the paper's Fig 7 allocation). *)

val compare_modes :
  ?seed:int64 -> ?hold:Des.Time.span -> ?jobs:int -> ns:int list -> unit ->
  result list
(** Dynatune and Fix-K(10) at each cluster size.  [jobs > 1] runs the
    legs on parallel domains; results are identical at any [jobs]. *)

val print : Format.formatter -> result list -> unit
