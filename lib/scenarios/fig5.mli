(** Figure 5 — peak throughput and latency without failures.

    The Section IV-B2 open-loop RPS ramp with the CPU cost model active:
    Dynatune pays measurement/tuning overhead per heartbeat plus n−1
    heartbeat timers, which shows up as a slightly lower peak throughput
    than default Raft (the paper measures −6.4%). *)

type result = {
  mode : string;
  levels : Kvsm.Workload.level_report list;
  peak_rps : float;
  saturation_rps : float option;
}

val run :
  ?seed:int64 ->
  ?n:int ->
  ?cores:float ->
  ?rates:float list ->
  ?hold:Des.Time.span ->
  ?rtt_ms:float ->
  config:Raft.Config.t ->
  unit ->
  result
(** Defaults: 5 servers with 4 cores each (the paper's container
    allocation), RTT 10 ms LAN-like links, +1000 rps levels up to 17k,
    10 s per level. *)

val compare_modes :
  ?seed:int64 -> ?rates:float list -> ?hold:Des.Time.span -> ?jobs:int ->
  unit -> result list
(** [jobs > 1] runs the two modes on parallel domains.  Each mode's
    ramp is a self-contained deterministic simulation, so the results
    are identical at any [jobs] — only the wall-clock changes. *)

val print : Format.formatter -> result list -> unit

(** {2 Saturation sweep — replication engine v2}

    The fig5 extension: the same open-loop ramp, but with a wire model
    (per-message serialization delay) on every link and no CPU costs, so
    the bottleneck is the leader's egress.  Four variants cross the
    pipelining window ([1] = strict request/response, one batch per RTT)
    with the priority lanes (off = heartbeats queue FIFO behind the
    replication burst, inflating the tuner's RTT estimate). *)

type sat_result = {
  sat_label : string;  (** e.g. ["window=16 lanes=on"] *)
  sat_window : int;  (** [max_inflight_appends] of the variant *)
  sat_lanes : bool;
  sat_levels : Kvsm.Workload.level_report list;
  sat_peak_rps : float;
  sat_saturation_rps : float option;
  sat_rtt_err : float;
      (** Mean relative error of the followers' tuned RTT estimate
          against the configured base RTT, sampled after the last
          (saturating) level.  [nan] if no follower had samples. *)
}

val saturation :
  ?seed:int64 ->
  ?n:int ->
  ?rates:float list ->
  ?hold:Des.Time.span ->
  ?rtt_ms:float ->
  ?serialization:Des.Time.span ->
  ?jobs:int ->
  unit ->
  sat_result list
(** Defaults: 5 servers, 50 ms RTT, 100 us/unit serialization, levels
    250..8000 rps held 3 s each; variants (window, lanes) in
    [(1,off); (1,on); (16,off); (16,on)].  Each variant is its own
    deterministic simulation, so results are identical at any [jobs]. *)

val print_saturation : Format.formatter -> sat_result list -> unit
