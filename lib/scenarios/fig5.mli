(** Figure 5 — peak throughput and latency without failures.

    The Section IV-B2 open-loop RPS ramp with the CPU cost model active:
    Dynatune pays measurement/tuning overhead per heartbeat plus n−1
    heartbeat timers, which shows up as a slightly lower peak throughput
    than default Raft (the paper measures −6.4%). *)

type result = {
  mode : string;
  levels : Kvsm.Workload.level_report list;
  peak_rps : float;
  saturation_rps : float option;
}

val run :
  ?seed:int64 ->
  ?n:int ->
  ?cores:float ->
  ?rates:float list ->
  ?hold:Des.Time.span ->
  ?rtt_ms:float ->
  config:Raft.Config.t ->
  unit ->
  result
(** Defaults: 5 servers with 4 cores each (the paper's container
    allocation), RTT 10 ms LAN-like links, +1000 rps levels up to 17k,
    10 s per level. *)

val compare_modes :
  ?seed:int64 -> ?rates:float list -> ?hold:Des.Time.span -> ?jobs:int ->
  unit -> result list
(** [jobs > 1] runs the two modes on parallel domains.  Each mode's
    ramp is a self-contained deterministic simulation, so the results
    are identical at any [jobs] — only the wall-clock changes. *)

val print : Format.formatter -> result list -> unit
