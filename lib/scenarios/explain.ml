module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Forensics = Telemetry.Forensics

type election = {
  term : int;
  winner : int;
  won_at : Des.Time.t;
  cause : Telemetry.Cause.t;
  justified : bool;
  prior_leader : int option;
  provenance : Forensics.record option;
  chain : Forensics.record list;
}

(* A fold over the ring, oldest first.  Liveness bookkeeping (who is
   paused at each instant) decides justified vs spurious; the per-cause
   index reassembles each election's chain — the election-timer cause
   propagates through vote requests to the voters and back on their
   responses, so every record it stamps belongs to one campaign. *)
let analyze records =
  let by_cause : (Telemetry.Cause.t, Forensics.record list) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (r : Forensics.record) ->
      if not (Telemetry.Cause.is_none r.Forensics.cause) then
        Hashtbl.replace by_cause r.Forensics.cause
          (r
          :: Option.value ~default:[]
               (Hashtbl.find_opt by_cause r.Forensics.cause)))
    records;
  let chain_of c =
    List.rev (Option.value ~default:[] (Hashtbl.find_opt by_cause c))
  in
  let down = Hashtbl.create 8 in
  let last_tuner = Hashtbl.create 8 in
  let cur_leader = ref None in
  let out = ref [] in
  List.iter
    (fun (r : Forensics.record) ->
      match r.Forensics.ev with
      | Forensics.Paused -> Hashtbl.replace down r.Forensics.node ()
      | Forensics.Resumed -> Hashtbl.remove down r.Forensics.node
      | Forensics.Tuner _ -> Hashtbl.replace last_tuner r.Forensics.node r
      | Forensics.Role { role } when String.equal role "leader" ->
          let prior = !cur_leader in
          let justified =
            match prior with None -> true | Some l -> Hashtbl.mem down l
          in
          cur_leader := Some r.Forensics.node;
          out :=
            {
              term = r.Forensics.term;
              winner = r.Forensics.node;
              won_at = r.Forensics.at;
              cause = r.Forensics.cause;
              justified;
              prior_leader = prior;
              provenance = Hashtbl.find_opt last_tuner r.Forensics.node;
              chain = chain_of r.Forensics.cause;
            }
            :: !out
      | Forensics.Role _ | Forensics.Timeout _ | Forensics.Campaign _
      | Forensics.Vote _ | Forensics.Tuner_reset | Forensics.Prevote_abort
      | Forensics.Transfer _ | Forensics.Config _ ->
          ())
    records;
  List.rev !out

let run ?(seed = 23L) ?(failures = 3) ?(config = Raft.Config.dynatune ()) () =
  let forensics = Forensics.create () in
  let telemetry = Telemetry.Metrics.create ~enabled:true () in
  let cluster =
    Cluster.create ~seed ~n:5 ~config ~telemetry ~forensics ()
  in
  Geo.apply cluster ();
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
  | Some _ -> ()
  | None -> failwith "explain: initial election failed");
  Cluster.run_for cluster (Des.Time.sec 30);
  for _ = 1 to failures do
    match Fault.kill_leader cluster with
    | Some (failed, _) ->
        (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 120) with
        | Some _ -> ()
        | None -> failwith "explain: no re-election after a leader kill");
        Cluster.run_for cluster (Des.Time.sec 5);
        Fault.recover cluster failed;
        Cluster.run_for cluster (Des.Time.sec 10)
    | None -> failwith "explain: no leader to kill"
  done;
  Forensics.records forensics

let verdict e =
  if e.justified then
    match e.prior_leader with
    | None -> "justified (no prior leader)"
    | Some l -> Printf.sprintf "justified (leader n%d was down)" l
  else
    match e.prior_leader with
    | Some l -> Printf.sprintf "spurious (leader n%d was live)" l
    | None -> "justified (no prior leader)"

let print ppf elections =
  Report.banner ppf "explain: causal forensics of every leadership change";
  let justified =
    List.length (List.filter (fun e -> e.justified) elections)
  in
  Report.kv ppf "leadership changes"
    (Printf.sprintf "%d (%d justified, %d spurious)" (List.length elections)
       justified
       (List.length elections - justified));
  List.iteri
    (fun i e ->
      Report.subhead ppf
        (Format.asprintf "election %d: n%d won term %d at %a — %s" (i + 1)
           e.winner e.term Des.Time.pp e.won_at (verdict e));
      Report.kv ppf "cause" (Telemetry.Cause.to_string e.cause);
      Report.kv ppf "provenance"
        (match e.provenance with
        | Some r -> Forensics.render_record r
        | None -> "defaults (no tuner decision recorded)");
      List.iter
        (fun r -> Report.kv ppf "chain" (Forensics.render_record r))
        e.chain)
    elections
