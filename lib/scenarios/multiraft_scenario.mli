(** The multiraft scenario (public name: [Scenarios.Multiraft]).

    An open-loop client ramp against {!Multiraft.Group_manager} through
    the shard router ({!Multiraft.Router}), sweeping group count x
    aggregate offered RPS an order of magnitude beyond fig5's
    single-group saturation experiment.  Each cell reports the
    aggregate throughput/latency curve, the per-slot leader
    distribution, router hint-cache statistics, DES event volume and
    the combined per-group trace digest. *)

type cell = {
  groups : int;
  replicas : int;
  levels : Kvsm.Workload.level_report list;
      (** aggregate over all groups, one row per offered level *)
  peak_rps : float;
  saturation_rps : float option;
  leader_distribution : int array;  (** groups led, by replica slot *)
  hint_hits : int;
  hint_misses : int;
  hint_refreshes : int;
  events : int;  (** DES events processed over the whole cell *)
  digest : int64;  (** per-group trace digests combined in group order *)
}

type result = {
  cells : cell list;
  digest : int64;
      (** cell digests combined in cell order — must be bit-identical
          at [--jobs 1] and [--jobs N] on a pinned sweep *)
  metrics : Telemetry.Metrics.snapshot;
  recorder : Telemetry.Recorder.dump;
}

val default_rates : float list
val default_group_counts : int list

val run_one :
  ?seed:int64 ->
  ?replicas:int ->
  ?rates:float list ->
  ?hold:Des.Time.span ->
  ?rtt_ms:float ->
  ?serialization:Des.Time.span ->
  ?warmup:Des.Time.span ->
  ?check:Check.mode ->
  ?telemetry:Telemetry.Metrics.t ->
  ?forensics:Telemetry.Forensics.t ->
  ?recorder:Telemetry.Recorder.t ->
  ?on_manager:(Multiraft.Group_manager.t -> unit) ->
  groups:int ->
  unit ->
  cell
(** One cell: [groups] dynatune groups of [replicas] (default 3) under
    fig5's wire model (RTT [rtt_ms], per-message [serialization]), the
    replication engine at window 16 with priority lanes, ramped through
    [rates] (aggregate req/s) held [hold] each.  [on_manager] runs
    after construction, before [start] — the hook the CLI uses to
    attach per-group Perfetto tracks. *)

val sweep :
  ?seed:int64 ->
  ?replicas:int ->
  ?group_counts:int list ->
  ?rates:float list ->
  ?hold:Des.Time.span ->
  ?rtt_ms:float ->
  ?serialization:Des.Time.span ->
  ?warmup:Des.Time.span ->
  ?check:Check.mode ->
  ?instrument:bool ->
  ?record:Des.Time.span ->
  ?jobs:int ->
  unit ->
  result
(** The sweep: one campaign task per group count, run on the domain
    pool.  Cell seeds derive from [(seed, cell index)], each cell owns
    its registry/recorder, and digests/metrics/recorder dumps merge in
    cell order — all independent of [jobs]. *)

val print : Format.formatter -> result -> unit
val print_cell : Format.formatter -> cell -> unit
