module Cluster = Harness.Cluster

type result = {
  mode : string;
  levels : Kvsm.Workload.level_report list;
  peak_rps : float;
  saturation_rps : float option;
}

let default_rates =
  List.init 17 (fun i -> float_of_int ((i + 1) * 1000))

let run ?(seed = 7L) ?(n = 5) ?(cores = 4.) ?(rates = default_rates)
    ?(hold = Des.Time.sec 10) ?(rtt_ms = 100.) ~config () =
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.05 ()))
  in
  let cluster =
    Cluster.create ~seed ~costs:Raft.Cost_model.etcd_like ~cores ~n ~config
      ~conditions ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> failwith "fig5: initial election failed");
  (* Let tuned modes finish warming before offering load. *)
  Cluster.run_for cluster (Des.Time.sec 10);
  let target = Cluster.submit_target cluster in
  let levels =
    Kvsm.Workload.run_ramp ~engine:(Cluster.engine cluster) ~target ~rates
      ~hold
      ~client_rtt:(Des.Time.of_ms_f rtt_ms)
      ()
  in
  {
    mode = Raft.Config.mode_name config;
    levels;
    peak_rps = Kvsm.Workload.peak_throughput levels;
    saturation_rps = Kvsm.Workload.saturation_rate levels;
  }

let compare_modes ?(seed = 7L) ?rates ?hold ?(jobs = 1) () =
  Parallel.Campaign.all ~jobs
    [
      (fun () -> run ~seed ?rates ?hold ~config:(Raft.Config.static ()) ());
      (fun () -> run ~seed ?rates ?hold ~config:(Raft.Config.dynatune ()) ());
    ]

let print ppf results =
  Report.banner ppf "Fig 5: throughput & latency vs offered load";
  List.iter
    (fun r ->
      Report.subhead ppf r.mode;
      List.iter
        (fun level ->
          Format.fprintf ppf "  %a@." Kvsm.Workload.pp_report level)
        r.levels;
      Report.kv ppf "peak throughput"
        (Printf.sprintf "%.0f req/s" r.peak_rps);
      Report.kv ppf "saturation offered rate"
        (match r.saturation_rps with
        | Some v -> Printf.sprintf "%.0f req/s" v
        | None -> "not reached"))
    results;
  match results with
  | [ raft; dynatune ] when raft.mode <> dynatune.mode ->
      Report.subhead ppf "paper comparison";
      Report.kv ppf "peak throughput"
        (Printf.sprintf
           "%.0f -> %.0f req/s (%.1f%% lower; paper: 13678 -> 12800 = 6.4%% lower)"
           raft.peak_rps dynatune.peak_rps
           (100. *. (1. -. (dynatune.peak_rps /. raft.peak_rps))))
  | _ -> ()
