module Cluster = Harness.Cluster

type result = {
  mode : string;
  levels : Kvsm.Workload.level_report list;
  peak_rps : float;
  saturation_rps : float option;
}

let default_rates =
  List.init 17 (fun i -> float_of_int ((i + 1) * 1000))

let run ?(seed = 7L) ?(n = 5) ?(cores = 4.) ?(rates = default_rates)
    ?(hold = Des.Time.sec 10) ?(rtt_ms = 100.) ~config () =
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.05 ()))
  in
  let cluster =
    Cluster.create ~seed ~costs:Raft.Cost_model.etcd_like ~cores ~n ~config
      ~conditions ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> failwith "fig5: initial election failed");
  (* Let tuned modes finish warming before offering load. *)
  Cluster.run_for cluster (Des.Time.sec 10);
  let target = Cluster.submit_target cluster in
  let levels =
    Kvsm.Workload.run_ramp ~engine:(Cluster.engine cluster) ~target ~rates
      ~hold
      ~client_rtt:(Des.Time.of_ms_f rtt_ms)
      ()
  in
  {
    mode = Raft.Config.mode_name config;
    levels;
    peak_rps = Kvsm.Workload.peak_throughput levels;
    saturation_rps = Kvsm.Workload.saturation_rate levels;
  }

(* {2 Saturation sweep (replication engine v2)}

   The fig5 extension: offered load vs commit latency with a wire model
   on every link (per-message serialization), crossing the pipelining
   window with the priority lanes.  [window = 1] recovers strict
   request/response replication — one batch per RTT — while the wire
   itself sustains an order of magnitude more; lanes decide whether the
   heartbeats the tuner measures RTT on queue behind the replication
   burst. *)

type sat_result = {
  sat_label : string;
  sat_window : int;
  sat_lanes : bool;
  sat_levels : Kvsm.Workload.level_report list;
  sat_peak_rps : float;
  sat_saturation_rps : float option;
  sat_rtt_err : float;
      (* mean relative error of the followers' tuned RTT estimate
         against the configured base RTT, sampled after the last
         (saturating) level; inflation here is queueing delay the tuner
         mistakes for path latency *)
}

let run_saturation_one ~seed ~n ~rates ~hold ~rtt_ms ~serialization ~window
    ~lanes () =
  let config =
    Raft.Config.with_replication ~max_inflight_appends:window
      ~append_backpressure:64 ~max_entries_per_append:64
      ~priority_lanes:lanes
      (Raft.Config.dynatune ())
  in
  let conditions =
    Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.05 ()))
  in
  let cluster = Cluster.create ~seed ~n ~config ~conditions () in
  Netsim.Fabric.set_uniform_serialization (Cluster.fabric cluster)
    serialization;
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> failwith "fig5: initial election failed");
  Cluster.run_for cluster (Des.Time.sec 10);
  let target = Cluster.submit_target cluster in
  let levels =
    Kvsm.Workload.run_ramp ~engine:(Cluster.engine cluster) ~target ~rates
      ~hold
      ~client_rtt:(Des.Time.of_ms_f rtt_ms)
      ()
  in
  let sat_rtt_err =
    let leader =
      match Cluster.leader cluster with
      | Some node -> Some (Raft.Node.id node)
      | None -> None
    in
    let errs =
      List.filter_map
        (fun id ->
          if leader = Some id then None
          else
            match
              Raft.Server.tuner (Raft.Node.server (Cluster.node cluster id))
            with
            | Some tuner when Dynatune.Tuner.samples tuner > 0 ->
                let est = Des.Time.to_ms_f (Dynatune.Tuner.rtt_mean tuner) in
                Some (Float.abs (est -. rtt_ms) /. rtt_ms)
            | Some _ | None -> None)
        (Cluster.node_ids cluster)
    in
    match errs with
    | [] -> Float.nan
    | _ -> List.fold_left ( +. ) 0. errs /. float_of_int (List.length errs)
  in
  {
    sat_label =
      Printf.sprintf "window=%d lanes=%s" window (if lanes then "on" else "off");
    sat_window = window;
    sat_lanes = lanes;
    sat_levels = levels;
    sat_peak_rps = Kvsm.Workload.peak_throughput levels;
    sat_saturation_rps = Kvsm.Workload.saturation_rate levels;
    sat_rtt_err;
  }

let default_sat_rates = [ 250.; 500.; 1000.; 2000.; 4000.; 8000. ]

let saturation ?(seed = 11L) ?(n = 5) ?(rates = default_sat_rates)
    ?(hold = Des.Time.sec 3) ?(rtt_ms = 50.) ?(serialization = Des.Time.us 100)
    ?(jobs = 1) () =
  Parallel.Campaign.all ~jobs
    (List.map
       (fun (window, lanes) () ->
         run_saturation_one ~seed ~n ~rates ~hold ~rtt_ms ~serialization
           ~window ~lanes ())
       [ (1, false); (1, true); (16, false); (16, true) ])

let print_saturation ppf results =
  Report.banner ppf
    "Fig 5 (saturation): pipelining x priority lanes under a wire model";
  List.iter
    (fun r ->
      Report.subhead ppf r.sat_label;
      List.iter
        (fun level ->
          Format.fprintf ppf "  %a@." Kvsm.Workload.pp_report level)
        r.sat_levels;
      Report.kv ppf "peak throughput"
        (Printf.sprintf "%.0f req/s" r.sat_peak_rps);
      Report.kv ppf "saturation offered rate"
        (match r.sat_saturation_rps with
        | Some v -> Printf.sprintf "%.0f req/s" v
        | None -> "not reached");
      Report.kv ppf "tuner RTT estimate error"
        (Printf.sprintf "%.1f%%" (100. *. r.sat_rtt_err)))
    results;
  match
    ( List.find_opt (fun r -> r.sat_window = 1 && r.sat_lanes) results,
      List.find_opt (fun r -> r.sat_window > 1 && r.sat_lanes) results )
  with
  | Some base, Some piped when base.sat_peak_rps > 0. ->
      Report.subhead ppf "pipelining effect";
      Report.kv ppf "sustainable throughput"
        (Printf.sprintf "%.0f -> %.0f req/s (%.1fx)" base.sat_peak_rps
           piped.sat_peak_rps
           (piped.sat_peak_rps /. base.sat_peak_rps))
  | _ -> ()

let compare_modes ?(seed = 7L) ?rates ?hold ?(jobs = 1) () =
  Parallel.Campaign.all ~jobs
    [
      (fun () -> run ~seed ?rates ?hold ~config:(Raft.Config.static ()) ());
      (fun () -> run ~seed ?rates ?hold ~config:(Raft.Config.dynatune ()) ());
    ]

let print ppf results =
  Report.banner ppf "Fig 5: throughput & latency vs offered load";
  List.iter
    (fun r ->
      Report.subhead ppf r.mode;
      List.iter
        (fun level ->
          Format.fprintf ppf "  %a@." Kvsm.Workload.pp_report level)
        r.levels;
      Report.kv ppf "peak throughput"
        (Printf.sprintf "%.0f req/s" r.peak_rps);
      Report.kv ppf "saturation offered rate"
        (match r.saturation_rps with
        | Some v -> Printf.sprintf "%.0f req/s" v
        | None -> "not reached"))
    results;
  match results with
  | [ raft; dynatune ] when raft.mode <> dynatune.mode ->
      Report.subhead ppf "paper comparison";
      Report.kv ppf "peak throughput"
        (Printf.sprintf
           "%.0f -> %.0f req/s (%.1f%% lower; paper: 13678 -> 12800 = 6.4%% lower)"
           raft.peak_rps dynatune.peak_rps
           (100. *. (1. -. (dynatune.peak_rps /. raft.peak_rps))))
  | _ -> ()
