module Cluster = Harness.Cluster

type variant = { label : string; config : Raft.Config.t }

let variants () =
  let base = Raft.Config.dynatune () in
  [
    { label = "dynatune"; config = base };
    {
      label = "+suppress";
      config =
        Raft.Config.with_extensions ~suppress_heartbeats_under_load:true
          ~consolidated_timer:false base;
    };
    {
      label = "+single-timer";
      config =
        Raft.Config.with_extensions ~suppress_heartbeats_under_load:false
          ~consolidated_timer:true base;
    };
    {
      label = "+both";
      config =
        Raft.Config.with_extensions ~suppress_heartbeats_under_load:true
          ~consolidated_timer:true base;
    };
  ]

type row = {
  label : string;
  peak_rps : float;
  leader_cpu_pct : float;
  heartbeats_sent : int;
  detection_ms : float;
  ots_ms : float;
}

let cpu_probe ~seed ~config =
  (* N = 17 under 10% loss: the tuned h is small, so heartbeat cost is
     visible; measure the leader CPU over a steady-state window. *)
  let conditions =
    Netsim.Conditions.(
      constant (profile ~rtt_ms:200. ~jitter:0.02 ~loss:0.10 ()))
  in
  let cluster =
    Cluster.create ~seed ~costs:Raft.Cost_model.etcd_like ~cores:2. ~n:17
      ~config ~conditions ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
  | Some _ -> ()
  | None -> failwith "extensions: initial election failed");
  Cluster.run_for cluster (Des.Time.sec 40);
  let leader =
    match Cluster.leader cluster with
    | Some l -> l
    | None -> failwith "extensions: leader lost"
  in
  let sent_before = (Netsim.Fabric.counters (Cluster.fabric cluster)).Netsim.Fabric.sent in
  let from = Des.Time.to_sec_f (Cluster.now cluster) in
  Cluster.run_for cluster (Des.Time.sec 30);
  let until = Des.Time.to_sec_f (Cluster.now cluster) in
  let sent_after = (Netsim.Fabric.counters (Cluster.fabric cluster)).Netsim.Fabric.sent in
  ( Netsim.Cpu.utilization_in (Raft.Node.cpu leader) ~lo_sec:from ~hi_sec:until,
    sent_after - sent_before )

let failover_probe ~seed ~config =
  let r = Fig4.run ~seed ~failures:50 ~config () in
  (Stats.Summary.mean r.Fig4.detection, Stats.Summary.mean r.Fig4.ots)

let run ?(seed = 29L) ?rates ?(hold = Des.Time.sec 3) ?failures:_ ?(jobs = 1)
    () =
  Parallel.Campaign.all ~jobs
  @@ List.map
       (fun v () ->
         let fig5 = Fig5.run ~seed ?rates ~hold ~config:v.config () in
         let leader_cpu_pct, heartbeats_sent =
           cpu_probe ~seed ~config:v.config
         in
         let detection_ms, ots_ms = failover_probe ~seed ~config:v.config in
         {
           label = v.label;
           peak_rps = fig5.Fig5.peak_rps;
           leader_cpu_pct;
           heartbeats_sent;
           detection_ms;
           ots_ms;
         })
       (variants ())

let print ppf rows =
  Report.banner ppf
    "Extensions (Section IV-E future work): suppression & single timer";
  Format.fprintf ppf "  %-14s %10s %12s %12s %12s %10s@." "variant"
    "peak rps" "leader cpu%" "msgs sent" "detect(ms)" "ots(ms)";
  List.iter
    (fun r ->
      Format.fprintf ppf "  %-14s %10.0f %12.1f %12d %12.1f %10.1f@." r.label
        r.peak_rps r.leader_cpu_pct r.heartbeats_sent r.detection_ms r.ots_ms)
    rows;
  Format.fprintf ppf
    "@.  suppression removes heartbeat cost under load; the single timer \
     cuts the leader's@.  timer work at the price of extra heartbeats on \
     slow paths.  Detection quality holds.@."
