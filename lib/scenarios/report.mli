(** Text rendering helpers for the benchmark harness: section banners,
    aligned series tables, CDF tables — the textual equivalents of the
    paper's figures. *)

val banner : Format.formatter -> string -> unit
(** A boxed section header. *)

val subhead : Format.formatter -> string -> unit

val kv : Format.formatter -> string -> string -> unit
(** An aligned ["  key: value"] line. *)

val summary_row : Format.formatter -> label:string -> Stats.Summary.t -> unit
(** One labelled row of count/mean/percentiles. *)

val cdf_table :
  Format.formatter ->
  label:string ->
  series:(string * Stats.Summary.t) list ->
  points:int ->
  unit
(** A CDF table with one column per named summary: rows are cumulative
    probabilities, cells are the value (ms) at that probability. *)

val series_table :
  Format.formatter ->
  time_label:string ->
  columns:(string * (float * float) list) list ->
  unit
(** Aligned multi-column time series: one row per instant in the sorted
    union of every column's sample times.  Columns need not share
    sampling instants — a column without a point at a row's instant
    prints [-] in that cell, keeping the columns aligned. *)

val intervals :
  Format.formatter -> label:string -> (Des.Time.t * Des.Time.t) list -> unit
(** Render OTS intervals as [start–end (length)] lines. *)

val float_cell : float -> string
(** Fixed-width numeric cell; NaN renders as ["-"]. *)
