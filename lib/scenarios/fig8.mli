(** Figure 8 — the real-distributed (geo-replicated) experiment of
    Section IV-D: the Fig 4 failure campaign on a five-region WAN
    (Tokyo, London, California, Sydney, São Paulo) with heterogeneous
    RTTs, jitter and residual loss.

    The paper's deployment measures times across NTP-synchronized hosts
    (tens of ms of error); the simulation's shared clock measures them
    exactly, so our numbers are the error-free analogue. *)

val run :
  ?seed:int64 ->
  ?failures:int ->
  ?jitter:float ->
  ?loss:float ->
  ?jobs:int ->
  ?shards:int ->
  ?check:Check.mode ->
  ?instrument:bool ->
  ?record:Des.Time.span ->
  config:Raft.Config.t ->
  unit ->
  Fig4.result
(** [jobs] shards the campaign exactly as in {!Fig4.run}: [1] (the
    default) is the sequential run, bit for bit; [> 1] fans the quota
    out over that many independently seeded clusters on parallel
    domains.  [shards] pins the shard plan, [check] enables the
    online invariant checker, and [record] attaches a per-shard
    time-series recorder, as in {!Fig4.run}. *)

val compare_modes :
  ?failures:int -> ?seed:int64 -> ?jobs:int -> unit -> Fig4.result list
(** Default Raft vs Dynatune on the geo WAN. *)

val print : Format.formatter -> Fig4.result list -> unit
