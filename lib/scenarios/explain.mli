(** The [explain] analysis: reconstruct, from the forensics ring, the
    causal chain behind every leadership change.

    Each election is traced end to end — the tuner decision that set the
    parameters in force ({e measurement → estimator → tuner}), the
    election-timer arm and expiry those parameters produced ({e timeout}),
    the campaign, the votes that crossed the network carrying the
    election's cause, and the resulting role change — and classified:

    - {e justified}: the previous leader really was down (a fault record
      precedes the timeout with no recovery in between), or there was no
      leader to begin with;
    - {e spurious}: a live leader was deposed — the timeout fired on a
      healthy cluster, the disruption Dynatune's [K]-of-[h] suspicion
      threshold exists to prevent.

    {!analyze} is pure (a fold over records), so tests can feed it
    synthetic rings; {!run} produces a real ring from a pinned
    deterministic geo-WAN failover scenario. *)

type election = {
  term : int;  (** the term the winner established *)
  winner : int;  (** node id that became leader *)
  won_at : Des.Time.t;
  cause : Telemetry.Cause.t;
      (** the cause the winning role change belongs to — normally the
          election-timer expiry that started the campaign, propagated to
          the voters and back on the deciding vote *)
  justified : bool;
  prior_leader : int option;
      (** the leader deposed (or succeeded), [None] for the first
          election *)
  provenance : Telemetry.Forensics.record option;
      (** the winner's last tuner decision before the win: where the
          [Et]/[h]/[K] in force came from ([None] = defaults) *)
  chain : Telemetry.Forensics.record list;
      (** every record sharing [cause], oldest first: timeout, campaign,
          votes, role changes *)
}

val analyze : Telemetry.Forensics.record list -> election list
(** Walk a ring dump (oldest first, as {!Telemetry.Forensics.records}
    returns it) and reconstruct one {!election} per record of a node
    becoming leader. *)

val run :
  ?seed:int64 ->
  ?failures:int ->
  ?config:Raft.Config.t ->
  unit ->
  Telemetry.Forensics.record list
(** The pinned scenario the CLI replays: a 5-server cluster on the
    Fig 8 geo WAN (default [config]: Dynatune, [seed = 23], [failures =
    3] leader kills with recovery), forensics ring and telemetry
    enabled, no CPU cost model (so causal context is never deferred).
    Returns the retained records. *)

val print : Format.formatter -> election list -> unit
(** Deterministic rendering: a summary line (justified vs spurious
    counts), then one block per election with its provenance and causal
    chain. *)
