(** Shared leader-failure measurement loop for the failover campaigns.

    Fig 4 (stable links), Fig 8 (geo WAN) and the campaign shards they
    fan out over all drive the same loop: kill the leader, measure
    detection / out-of-service / election metrics, repeat until a quota
    of successful measurements is reached.  The loop returns the raw
    samples rather than summaries so that shards run on separate
    domains can be merged exactly ({!merge} concatenates sample lists;
    {!Stats.Summary.of_list} sorts, so the result is independent of
    shard interleaving). *)

type raw = {
  measured : int;  (** successful failover measurements *)
  splits : int;  (** failovers that needed more than one round *)
  detection : float list;  (** ms *)
  majority : float list;  (** ms; (f+1)-th expiry *)
  ots : float list;  (** ms *)
  election : float list;  (** ms; OTS − detection *)
  randomized : float list;  (** ms; randomizedTimeout at detection *)
  rounds : float list;  (** election rounds per failover *)
}

val failures : ?metrics:Telemetry.Metrics.t -> Harness.Cluster.t -> quota:int -> raw
(** Run the kill/measure loop on a started, warmed-up cluster until
    [quota] failovers have been measured (giving up after [2 * quota]
    attempts, matching the paper campaigns' retry budget).  Failed
    measurements re-stabilise the cluster for 5 s before retrying.
    [metrics] (default {!Telemetry.Metrics.noop}) receives the loop's
    attempt/measured/error tallies under scope ["measure"]. *)

val merge : raw list -> raw
(** Concatenate shard results in order; counts add, sample lists
    append.  [merge [r]] is [r] itself, field for field. *)
