module Cluster = Harness.Cluster

let run ?(seed = 23L) ?(failures = 300) ?jitter ?loss ?(jobs = 1) ?shards
    ?(check = Check.Off) ?(instrument = false) ?record ~config () =
  let shard (s : Parallel.Campaign.shard) =
    let telemetry = Telemetry.Metrics.create ~enabled:instrument () in
    let recorder =
      match record with
      | Some every -> Telemetry.Recorder.create ~every ()
      | None -> Telemetry.Recorder.noop
    in
    let cluster =
      Cluster.create ~seed:s.seed ~n:5 ~config ~check ~telemetry ~recorder ()
    in
    Geo.apply cluster ?jitter ?loss ();
    Cluster.start cluster;
    (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 60) with
    | Some _ -> ()
    | None -> failwith "fig8: initial election failed");
    Cluster.run_for cluster (Des.Time.sec 30);
    let raw = Measure.failures ~metrics:telemetry cluster ~quota:s.quota in
    Cluster.check_now cluster;
    Cluster.collect_metrics cluster;
    ( raw,
      Cluster.trace_digest cluster,
      Telemetry.Metrics.snapshot telemetry,
      Telemetry.Recorder.dump recorder )
  in
  let outcomes =
    Parallel.Campaign.sharded ?shards ~jobs ~seed ~total:failures ~f:shard ()
  in
  Fig4.result_of_raw ~mode:(Raft.Config.mode_name config)
    ~digest:(Check.Digest.combine (List.map (fun (_, d, _, _) -> d) outcomes))
    ~metrics:
      (Telemetry.Metrics.merge (List.map (fun (_, _, m, _) -> m) outcomes))
    ~recorder:
      (Telemetry.Recorder.merge (List.map (fun (_, _, _, r) -> r) outcomes))
    (Measure.merge (List.map (fun (r, _, _, _) -> r) outcomes))

let compare_modes ?(failures = 300) ?(seed = 23L) ?(jobs = 1) () =
  [
    run ~seed ~failures ~jobs ~config:(Raft.Config.static ()) ();
    run ~seed ~failures ~jobs ~config:(Raft.Config.dynatune ()) ();
  ]

let print ppf results =
  Report.banner ppf
    "Fig 8: detection & OTS CDFs on the 5-region geo WAN (AWS analogue)";
  List.iter
    (fun (r : Fig4.result) ->
      Report.subhead ppf
        (r.Fig4.mode ^ " (" ^ string_of_int r.Fig4.failures ^ " leader failures)");
      Report.summary_row ppf ~label:"detect" r.Fig4.detection;
      Report.summary_row ppf ~label:"ots" r.Fig4.ots;
      Report.summary_row ppf ~label:"randTO" r.Fig4.randomized)
    results;
  (match results with
  | [ raft; dynatune ] when raft.Fig4.mode <> dynatune.Fig4.mode ->
      Report.subhead ppf "paper comparison (means)";
      let reduction field paper =
        let a = Stats.Summary.mean (field raft)
        and b = Stats.Summary.mean (field dynatune) in
        Printf.sprintf "%.0fms -> %.0fms (%.0f%% reduction; paper: %s)" a b
          (100. *. (1. -. (b /. a)))
          paper
      in
      Report.kv ppf "detection"
        (reduction (fun (r : Fig4.result) -> r.Fig4.detection)
           "1137 -> 213 = 81%");
      Report.kv ppf "ots"
        (reduction (fun (r : Fig4.result) -> r.Fig4.ots) "1718 -> 1145 = 33%")
  | _ -> ());
  Report.subhead ppf "detection CDF (ms)";
  Report.cdf_table ppf ~label:"prob"
    ~series:(List.map (fun (r : Fig4.result) -> (r.Fig4.mode, r.Fig4.detection)) results)
    ~points:10;
  Report.subhead ppf "OTS CDF (ms)";
  Report.cdf_table ppf ~label:"prob"
    ~series:(List.map (fun (r : Fig4.result) -> (r.Fig4.mode, r.Fig4.ots)) results)
    ~points:10
