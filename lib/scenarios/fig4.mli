(** Figure 4 — election performance under stable conditions.

    The Section IV-B1 campaign: a 5-server cluster on 100 ms RTT lossless
    links; the leader is killed repeatedly and the failure-detection and
    out-of-service (OTS) times are measured for default Raft and for
    Dynatune.  Also produces the Section IV-E decomposition (election time
    = OTS − detection; split-vote rate). *)

type result = {
  mode : string;
  failures : int;  (** measured failovers *)
  detection : Stats.Summary.t;  (** ms *)
  majority_detection : Stats.Summary.t;  (** ms; (f+1)-th expiry *)
  ots : Stats.Summary.t;  (** ms *)
  election : Stats.Summary.t;  (** ms; OTS − detection *)
  randomized : Stats.Summary.t;  (** ms; randomizedTimeout at detection *)
  rounds : Stats.Summary.t;  (** real campaigns per failover *)
  split_vote_rate : float;  (** fraction of failovers needing > 1 round *)
  digest : int64;
      (** {!Check.Digest.combine} of every shard's probe-trace digest,
          in shard order — the determinism sanitizer's witness: two runs
          of the same [(seed, shard plan)] must agree on it, whatever
          the worker count. *)
  metrics : Telemetry.Metrics.snapshot;
      (** Merged per-shard telemetry, empty unless [run ~instrument:true].
          Merged in shard order, so — like [digest] — it is a function of
          [(seed, shard plan)] alone: [--jobs 1] and [--jobs n] runs of a
          pinned plan agree bit-for-bit. *)
  recorder : Telemetry.Recorder.dump;
      (** Merged per-shard time series ({!Telemetry.Recorder.merge},
          keys prefixed by shard), empty unless [run ~record].  Same
          shard-plan determinism as [metrics]. *)
}

val result_of_raw :
  mode:string ->
  digest:int64 ->
  ?metrics:Telemetry.Metrics.snapshot ->
  ?recorder:Telemetry.Recorder.dump ->
  Measure.raw ->
  result
(** Summarize the raw samples of a (possibly merged) failure campaign.
    Shared with {!Fig8}, which produces the same result shape. *)

val run :
  ?seed:int64 ->
  ?n:int ->
  ?failures:int ->
  ?rtt_ms:float ->
  ?jitter:float ->
  ?warmup:Des.Time.span ->
  ?jobs:int ->
  ?shards:int ->
  ?check:Check.mode ->
  ?instrument:bool ->
  ?record:Des.Time.span ->
  ?on_cluster:(shard:int -> Harness.Cluster.t -> unit) ->
  config:Raft.Config.t ->
  unit ->
  result
(** Defaults match the paper: [n = 5], [rtt_ms = 100.], no injected loss,
    small residual jitter (0.02 — a physical link is never exactly
    noiseless, and the tuner needs a non-degenerate σ), 30 s warm-up.
    [failures] defaults to 1000 as in the paper.

    [jobs] (default 1) splits the campaign into up to [jobs] shards run
    on parallel domains, each an independent cluster seeded by
    {!Parallel.Campaign}.  [jobs = 1] runs the single-cluster
    sequential campaign with [seed] unchanged — bit-for-bit the
    pre-sharding behaviour; [jobs > 1] draws the same total number of
    failovers from [jobs] decorrelated clusters, so summaries are
    statistically equivalent but not numerically identical to the
    sequential run.  Output depends only on [(seed, jobs)], never on
    scheduling.

    [shards] pins the shard count independently of [jobs] (see
    {!Parallel.Campaign.plan}): with it, the result — including
    [digest] — is a function of [(seed, shards)] alone, so running the
    same plan with [jobs = 1] and [jobs = n] must produce bit-identical
    digests.  [check] (default {!Check.Off}) runs the safety-invariant
    checker inside every shard's cluster and a full check at the end of
    its campaign.

    [instrument] (default false) gives every shard an enabled telemetry
    registry — filling [result.metrics] — and turns on tuner-decision
    probes.  [record] attaches a per-shard {!Telemetry.Recorder} with
    the given sampling period (use with [instrument], which populates
    the registry it samples) — filling [result.recorder]; the sampling
    events draw no randomness, so [digest] is unchanged by it.
    [on_cluster] is invoked with each shard's cluster right
    after creation (before [start]); the [--trace-out] exporter uses it
    to attach a {!Harness.Tracing} bridge per shard. *)

val compare_modes :
  ?failures:int -> ?seed:int64 -> ?jobs:int -> unit -> result list
(** The paper's comparison: default Raft vs Dynatune. *)

val print : Format.formatter -> result list -> unit
