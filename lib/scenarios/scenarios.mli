(** The scenario library: reproductions of the paper's figures, the
    extensions, and the multiraft sharding sweep.

    An explicit main module so [Scenarios.Multiraft] can be implemented
    by [Multiraft_scenario] without shadowing the [Multiraft] library
    it drives. *)

module Ablation = Ablation
module Explain = Explain
module Extensions = Extensions
module Fig4 = Fig4
module Fig5 = Fig5
module Fig6 = Fig6
module Fig7 = Fig7
module Fig8 = Fig8
module Geo = Geo
module Measure = Measure
module Multiraft = Multiraft_scenario
module Reconfig = Reconfig
module Report = Report
