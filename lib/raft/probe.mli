(** Observable protocol events emitted into the shared trace.

    The cluster monitor reconstructs the paper's measurements from these:
    detection time (timer expiries after a failure), OTS time (leadership
    establishment), split votes (repeated campaigns per term), and
    Dynatune's fallback behaviour (tuner resets, pre-vote aborts). *)

type decision_reason =
  | Warmed  (** first tuned values after leaving Step 0 (warming) *)
  | Retuned  (** a subsequent measurement window changed [Et]/[H]/[k] *)
  | Reconfigured
      (** first tuned values after a committed membership change forced
          the tuner back into warm-up (stale link measurements) *)

type t =
  | Role_change of { id : Netsim.Node_id.t; role : Types.role; term : Types.term }
  | Timeout_expired of {
      id : Netsim.Node_id.t;
      term : Types.term;
      randomized : Des.Time.span;  (** the randomizedTimeout that expired *)
    }
  | Pre_vote_aborted of { id : Netsim.Node_id.t; term : Types.term }
      (** leader contact arrived during a pre-campaign *)
  | Tuner_reset of { id : Netsim.Node_id.t }
  | Tuner_decision of {
      id : Netsim.Node_id.t;
      rtt_ms : float;  (** mean heartbeat RTT the tuner measured *)
      rtt_std_ms : float;
      loss : float;  (** estimated heartbeat loss rate, [0, 1] *)
      k : int;  (** required consecutive misses before suspicion *)
      et : Des.Time.span;  (** chosen election timeout *)
      h : Des.Time.span;  (** chosen heartbeat interval *)
      reason : decision_reason;
    }
      (** A follower's tuner adopted new parameters.  Emitted only by
          instrumented servers ([Server.set_instrument]) and only when the
          chosen [(et, h, k)] differs from the previous decision, so the
          trace records parameter {e changes}, not every heartbeat. *)
  | Election_started of { id : Netsim.Node_id.t; term : Types.term }
      (** a real (post-pre-vote) campaign began *)
  | Node_paused of { id : Netsim.Node_id.t }
      (** fault injection froze the node (container sleep) *)
  | Node_resumed of { id : Netsim.Node_id.t }
  | Config_change of {
      id : Netsim.Node_id.t;
      term : Types.term;
      index : Types.index;
      change : Log.change;
      committed : bool;
          (** [false] when the leader appends the entry (the change is
              already effective), [true] on every node whose commit index
              passes it *)
    }
  | Transfer_started of {
      id : Netsim.Node_id.t;
      term : Types.term;
      target : Netsim.Node_id.t;
    }  (** the leader began a leadership transfer ([TimeoutNow] pending) *)
  | Transfer_aborted of { id : Netsim.Node_id.t; term : Types.term }
      (** the transfer window elapsed without the target taking over *)

val reason_name : decision_reason -> string
(** ["warmed"] / ["retuned"] / ["reconfigured"]. *)

val pp : Format.formatter -> t -> unit
val node : t -> Netsim.Node_id.t
