(** Leader-side replication state for one follower.

    Follows etcd's two-state flow.  A follower starts out {e probed}:
    one append at a time until the consistency check passes.  The first
    success switches it to {e replicating}: the leader streams batches
    optimistically (advancing [next] at send time) with up to
    [max_inflight_appends] batches unacknowledged.  A conflict response
    — or a stall detected through the response clock — rewinds [next],
    clears the in-flight window and drops back to probing. *)

type t

val create : last_index:Types.index -> t
(** Fresh state when a leader takes office: [next = last_index + 1],
    [match = 0], probing, nothing in flight. *)

val next_index : t -> Types.index
(** First entry index to send next. *)

val match_index : t -> Types.index
(** Highest entry known replicated on the follower. *)

val inflight : t -> int
(** Entry-carrying appends (and snapshots) sent but not yet
    acknowledged.  Forgotten wholesale by a rewind. *)

val may_send : t -> window:int -> bool
(** May another entry-carrying append be handed to the transport?
    Probing: only when nothing is outstanding.  Replicating: while the
    in-flight count is below [window]. *)

val record_sent : t -> upto:Types.index -> unit
(** Entries up to [upto] were handed to the (reliable) transport:
    advance [next] optimistically so the pipeline never re-sends
    in-flight entries, and count the send against the window. *)

val record_success : t -> upto:Types.index -> unit
(** An AppendEntries covering entries up to [upto] succeeded: advance
    [match]/[next], retire one in-flight send, and enter (or stay in)
    the replicating state. *)

val record_conflict : t -> hint:Types.index -> unit
(** Unconditional rewind: back [next] off to [hint] (never below 1,
    never above the current [next]), forget the in-flight window, and
    drop back to probing.  Used when the leader itself decides to rewind
    (stale response clock, compacted backlog). *)

val record_conflict_response :
  t -> req_prev:Types.index -> hint:Types.index -> [ `Rewound | `Stale ]
(** A conflict response whose request probed position [req_prev + 1].
    [`Rewound]: the conflict is current — [next] was rewound as
    {!record_conflict} does, and the caller should resend.  [`Stale]:
    the response answers a send from before an earlier rewind (its
    position lies beyond the current [next]); the probe already in
    flight supersedes it and no resend must happen, or every stale nack
    would re-append the same entries. *)

val needs_entries : t -> last_index:Types.index -> bool
(** Are there entries this follower has not been sent yet? *)

val note_response : t -> at:Des.Time.t -> unit
(** Record that an AppendEntries response (success or conflict) arrived. *)

val last_response_at : t -> Des.Time.t
(** Instant of the last AppendEntries response ([Time.zero] if none). *)

val note_append_sent : t -> at:Des.Time.t -> unit
(** Record that an AppendEntries carrying entries was sent (used by the
    heartbeat-suppression extension). *)

val last_append_sent_at : t -> Des.Time.t
