(* The single seam between the Raft layer and the fabric's egress.
   Every RPC a node sends leaves through [transmit], which classifies it
   into a wire lane and sizes its serialization cost; nothing else in
   lib/raft may call [Netsim.Fabric.send] (lint-enforced), so bulk
   replication traffic cannot bypass the priority/backpressure policy. *)

(* Control traffic — heartbeats, votes, acks, TimeoutNow, and the empty
   consistency probes — rides the urgent lane: it is what election
   timers and the tuner's RTT estimate live on, and it must not sit
   behind a queued replication burst.  Only payload-bearing transfers
   (entry batches and snapshots) are bulk. *)
let lane_of (msg : Rpc.message) =
  match msg with
  | Rpc.Append_request { entries; _ } when Array.length entries > 0 ->
      Netsim.Transport.Bulk
  | Rpc.Install_snapshot _ -> Netsim.Transport.Bulk
  | Rpc.Append_request _ | Rpc.Vote_request _ | Rpc.Vote_response _
  | Rpc.Append_response _ | Rpc.Heartbeat _ | Rpc.Heartbeat_response _
  | Rpc.Install_snapshot_response _ | Rpc.Timeout_now _ ->
      Netsim.Transport.Urgent

(* Serialization units: one per message frame, plus one per entry
   carried (a snapshot counts its payload in 256-byte frames).  Only
   meaningful on links with a serialization delay configured. *)
let wire_units (msg : Rpc.message) =
  match msg with
  | Rpc.Append_request { entries; _ } -> 1 + Array.length entries
  | Rpc.Install_snapshot { data; _ } -> 1 + ((String.length data + 255) / 256)
  | Rpc.Vote_request _ | Rpc.Vote_response _ | Rpc.Append_response _
  | Rpc.Heartbeat _ | Rpc.Heartbeat_response _
  | Rpc.Install_snapshot_response _ | Rpc.Timeout_now _ ->
      1

(* [cause] piggybacks the sender's causal token on the message (0 = no
   cause, the common case): the fabric carries it next to the frame and
   re-surfaces it at the receiver's delivery handler, so causal chains
   cross the network without the RPC variants growing a field every
   send would have to fill. *)
let transmit fabric ~lanes ~cause ~src ~dst kind msg =
  if cause <> 0 then Netsim.Fabric.stage_cause fabric cause;
  let lane = if lanes then lane_of msg else Netsim.Transport.Urgent in
  Netsim.Fabric.send fabric kind ~lane ~units:(wire_units msg) ~src ~dst msg
