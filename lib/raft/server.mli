(** The Raft protocol state machine for one server.

    Written transition-style: {!handle} consumes one event and returns the
    list of {!action}s the host must carry out (messages to send, timers to
    arm, entries to apply).  The server never touches the network or the
    clock directly — the DES binding ({!Node}) and the unit tests are both
    hosts.  The only ambient effect is the server's private PRNG stream,
    used to randomize election timeouts.

    Protocol surface implemented: leader election with randomized
    timeouts ([randomizedTimeout ∈ \[Et, 2·Et)], as etcd draws them),
    etcd-style pre-vote with leader-stickiness lease, log replication with
    conflict back-off, commit/apply tracking, and the Dynatune tuning
    loop of Section III (measurement metadata on heartbeats, follower-side
    [Et]/[h] derivation, piggybacked [h], reset-to-defaults fallback). *)

type event =
  | Message of { mutable from : Netsim.Node_id.t; mutable msg : Rpc.message }
      (** Mutable so a passthrough host can reuse one scratch event per
          delivery; {!handle} reads the fields once at entry and never
          retains the event. *)
  | Election_timeout_fired
  | Heartbeat_due of Netsim.Node_id.t
      (** per-follower heartbeat timer (tuned modes) *)
  | Broadcast_due  (** the single heartbeat timer of static mode *)
  | Quorum_check_due
      (** periodic CheckQuorum evaluation on the leader *)
  | Flush_due  (** replication batch flush *)
  | Propose of { payload : string; client_id : int; seq : int }
  | Read of { client_id : int; seq : int }
      (** linearizable read request (ReadIndex protocol) *)
  | Transfer_leadership of Netsim.Node_id.t
      (** hand leadership to a peer (etcd's MoveLeader) *)
  | Snapshot_ready of { upto : Types.index; data : string }
      (** the host captured the state machine in response to
          [Take_snapshot]; the log can now be compacted *)
  | Restarted  (** the host came back from a pause *)

type action =
  | Send of {
      dst : Netsim.Node_id.t;
      kind : Netsim.Transport.kind;
      msg : Rpc.message;
    }
  | Arm_election of Des.Time.span
      (** (re)arm the election timer with this randomized span *)
  | Disarm_election
  | Arm_heartbeat of { peer : Netsim.Node_id.t; after : Des.Time.span }
  | Arm_broadcast of Des.Time.span
  | Arm_quorum_check of Des.Time.span
  | Disarm_heartbeats
  | Request_flush
      (** ask the host to deliver [Flush_due] shortly (batching) *)
  | Commit of Log.entry array
      (** newly committed entries, in order, to apply to the SM (a log
          slice — do not mutate) *)
  | Take_snapshot of { upto : Types.index }
      (** capture the state machine (which reflects exactly the entries
          up to [upto]) and reply with [Snapshot_ready] *)
  | Install_sm of { data : string; last_index : Types.index }
      (** replace the state machine with a received snapshot *)
  | Serve_read of { client_id : int; seq : int; read_index : Types.index }
      (** the registered read is linearizable now: leadership was
          confirmed by a quorum and the state machine covers
          [read_index] *)
  | Reject_proposal of { client_id : int; seq : int }
  | Probe of Probe.t

type t

type persistent = {
  term : Types.term;
  voted_for : Netsim.Node_id.t option;
  entries : Log.entry array;
  snapshot : (Types.index * Types.term * string) option;
      (** compaction boundary and the state-machine snapshot at it *)
  base_voters : Netsim.Node_id.t list;
      (** voting membership at the snapshot boundary (initial membership
          until the first compaction); config entries in [entries] apply
          on top of it *)
  base_learners : Netsim.Node_id.t list;
}
(** What Raft requires on stable storage: current term, vote, the log,
    the latest snapshot and the configuration at its boundary.
    Everything else (role, commit index, measurement windows) is
    volatile and rebuilt after a crash. *)

type reconfigure_result =
  [ `Ok of Types.index  (** the index of the appended config entry *)
  | `Not_leader
  | `Pending
    (** a previous config change is not yet committed, or a leadership
        transfer is in flight *)
  | `Invalid of string ]

val create :
  ?restore:persistent ->
  ?pool:Rpc.Pool.t ->
  ?joining:bool ->
  id:Netsim.Node_id.t ->
  peers:Netsim.Node_id.t list ->
  config:Config.t ->
  rng:Stats.Rng.t ->
  unit ->
  t
(** A fresh follower at term 0, or — with [restore] — a follower
    recovering from a crash with its persisted state reloaded.  [peers]
    excludes [id].  With [joining] (default false) the server starts
    {e outside} the configuration — [peers] are the existing members —
    and joins once it receives the [Add_learner] entry naming it; until
    then it neither votes nor campaigns.  Raises [Invalid_argument] on
    an invalid configuration.

    [pool] is the message free-list the server allocates its hot
    payloads from and releases delivered messages into (fresh private
    pool by default).  Servers that exchange messages should share one —
    records released at the receiver then refill the sender — and a pool
    must never be shared across domains. *)

val pool : t -> Rpc.Pool.t
(** The server's message pool (for the host's restart path and the
    benchmark loops). *)

val reconfigure :
  t -> now:Des.Time.t -> Log.change -> action list * reconfigure_result
(** Leader-side single-server membership change.  The change is appended
    to the log and takes effect immediately (applied-on-append); at most
    one change may be uncommitted at a time, and changes are refused
    while a leadership transfer is pending.  The host must carry out the
    returned actions regardless of the result. *)

val persisted : t -> persistent
(** Snapshot of the server's durable state (what a WAL would hold). *)

val start : t -> action list
(** Initial actions (arms the election timer). *)

val handle : t -> now:Des.Time.t -> event -> action list

(** {2 Introspection} *)

val id : t -> Netsim.Node_id.t
val role : t -> Types.role
val term : t -> Types.term

val voted_for : t -> Netsim.Node_id.t option
(** The vote cast in the current term, if any (durable state; the
    invariant checker asserts it never changes within a term). *)

val leader : t -> Netsim.Node_id.t option
(** The leader this server currently believes in ([None] after its own
    timeout — this is also the stickiness lease). *)

val commit_index : t -> Types.index
val log : t -> Log.t
val config : t -> Config.t

val randomized_timeout : t -> Des.Time.span
(** The most recently drawn randomizedTimeout (the quantity Fig 6
    samples). *)

val election_timeout_now : t -> Des.Time.span
(** The current base [Et] (tuned when warmed up, default otherwise). *)

val tuner : t -> Dynatune.Tuner.t option
(** The follower-side tuner, when a tuned mode is configured. *)

val tuning_snapshot : t -> Des.Time.span * Des.Time.span * int
(** The election parameters in force right now, as [(Et, h, K)]: the
    provenance the forensics layer stamps on every timeout record.  [h]
    is the configured heartbeat interval while warming or in static
    mode; [K] is [0] when no tuner exists. *)

val set_instrument : t -> bool -> unit
(** Enable (or disable) emission of [Probe.Tuner_decision] events.  Off
    by default so plain campaigns pay nothing; the telemetry harness
    turns it on, and must turn it on again after a restart (a restart
    builds a fresh server). *)

val set_congestion_probe : t -> (Netsim.Node_id.t -> int) -> unit
(** Install the per-destination egress-depth probe the replication
    driver throttles bulk appends on (typically the fabric's
    [pending] count).  Defaults to [fun _ -> 0] — no backpressure —
    and, like {!set_instrument}, must be reinstalled after a restart. *)

val appends_inflight : t -> int
(** Entry-carrying appends (and snapshots) sent but not yet
    acknowledged, summed over all followers.  [0] on non-leaders. *)

val heartbeat_interval_to : t -> Netsim.Node_id.t -> Des.Time.span option
(** Leader only: the interval currently applied toward a follower (the
    quantity Fig 7a plots). *)

val tuning_active : t -> bool
(** Whether measurement/tuning work is being performed (for cost
    accounting). *)

(** {2 Membership introspection} *)

val voters : t -> Netsim.Node_id.t list
(** Voting members of the live configuration, in membership order
    (includes this server when it is a voter). *)

val learners : t -> Netsim.Node_id.t list

val members : t -> Netsim.Node_id.t list
(** All members (voters then learners interleaved in insertion order). *)

val is_voter : t -> Netsim.Node_id.t -> bool
val is_learner : t -> Netsim.Node_id.t -> bool

val votes : t -> Netsim.Node_id.t list
(** The votes gathered in the current campaign (empty outside one).  The
    invariant checker asserts none come from a learner. *)

val transfer_pending : t -> Netsim.Node_id.t option
(** The target of an in-flight leadership transfer, if any. *)

val pending_config : t -> Types.index option
(** The index of the latest config entry when it is not yet committed
    ([None] once it commits — the gate for the next change). *)
