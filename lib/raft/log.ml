type change =
  | Add_learner of Netsim.Node_id.t
  | Promote of Netsim.Node_id.t
  | Remove of Netsim.Node_id.t
[@@deriving show, eq] [@@protocol]

type command =
  | Noop
  | Data of { payload : string; client_id : int; seq : int }
  | Config of change
[@@deriving show, eq] [@@protocol]

type entry = { term : Types.term; index : Types.index; command : command }
[@@deriving show, eq]

type t = {
  mutable entries : entry array;
  mutable len : int;
  mutable snapshot_index : Types.index;
  mutable snapshot_term : Types.term;
  mutable mutations : int;
}

let create () =
  {
    entries = [||];
    len = 0;
    snapshot_index = 0;
    snapshot_term = 0;
    mutations = 0;
  }

let mutations t = t.mutations

let length t = t.len
let last_index t = t.snapshot_index + t.len
let snapshot_index t = t.snapshot_index
let snapshot_term t = t.snapshot_term
let first_available t = t.snapshot_index + 1

(* Entry with log index [index]; caller guarantees it is stored. *)
let nth t index = t.entries.(index - t.snapshot_index - 1)

let last_term t =
  if t.len = 0 then t.snapshot_term else (nth t (last_index t)).term

(* Option-free [term_at] for the append hot loops: -1 = absent (terms
   are never negative). *)
let term_at_raw t index =
  if index = t.snapshot_index then t.snapshot_term
  else if index < t.snapshot_index || index > last_index t then -1
  else (nth t index).term

let term_at t index =
  let raw = term_at_raw t index in
  if raw < 0 then None else Some raw

let entry_at t index =
  if index <= t.snapshot_index || index > last_index t then None
  else Some (nth t index)

let grow t entry =
  let cap = Array.length t.entries in
  if t.len = cap then begin
    let entries = Array.make (Stdlib.max 16 (2 * cap)) entry in
    Array.blit t.entries 0 entries 0 t.len;
    t.entries <- entries
  end

let push t entry =
  grow t entry;
  t.entries.(t.len) <- entry;
  t.len <- t.len + 1

let append_new t ~term command =
  let entry = { term; index = last_index t + 1; command } in
  push t entry;
  entry

(* A placeholder for freed slots: without it, truncation and compaction
   would leave the old entries (and their payloads) reachable through
   the backing array indefinitely. *)
let blank = { term = 0; index = 0; command = Noop }

let capacity t = Array.length t.entries

(* Clear slots [t.len, old_len) and shrink the backing array once
   occupancy drops below a quarter, so a log that shrank (truncation,
   compaction, snapshot install) cannot pin its high-water storage. *)
let scrub t ~old_len =
  for i = t.len to old_len - 1 do
    t.entries.(i) <- blank
  done;
  let cap = Array.length t.entries in
  if cap > 16 && 4 * t.len < cap then begin
    let entries = Array.make (Stdlib.max 16 (2 * t.len)) blank in
    Array.blit t.entries 0 entries 0 t.len;
    t.entries <- entries
  end

let truncate_from t index =
  (* Drop entries at [index] and beyond. *)
  let len = Stdlib.max 0 (Stdlib.min t.len (index - t.snapshot_index - 1)) in
  if len <> t.len then begin
    t.mutations <- t.mutations + 1;
    let old_len = t.len in
    t.len <- len;
    scrub t ~old_len
  end

let[@hot] try_append t ~prev_index ~prev_term ~entries =
  (* Prefix check on raw terms: a predecessor below the snapshot is
     committed, hence matches by construction. *)
  let prefix_term =
    if prev_index < t.snapshot_index then prev_term
    else term_at_raw t prev_index
  in
  if prefix_term < 0 then
    (* We are missing the predecessor entirely; ask the leader to back
       off to just past our log end. *)
    `Conflict (last_index t + 1)
  else if prefix_term <> prev_term then
    (* Predecessor conflicts; everything from it onward is suspect. *)
    `Conflict prev_index
  else begin
    (* Plain counted loop (no closure, no fold, no option boxing): this
       is the follower hot path, executed once per replicated batch —
       a duplicate batch allocates nothing here. *)
    let n = Array.length entries in
    for i = 0 to n - 1 do
      let entry = entries.(i) in
      assert (entry.index >= 1);
      if entry.index > t.snapshot_index then begin
        let existing = term_at_raw t entry.index in
        if existing <> entry.term then begin
          if existing >= 0 then truncate_from t entry.index
          else assert (entry.index = last_index t + 1);
          push t entry
        end
      end
    done;
    (* Batches are contiguous and ascending: the last entry carries
       the highest index. *)
    let covered = if n = 0 then prev_index else entries.(n - 1).index in
    `Ok (Stdlib.max covered t.snapshot_index)
  end

let compact t ~upto =
  if upto > last_index t then
    invalid_arg "Log.compact: cannot compact beyond the last entry";
  if upto > t.snapshot_index then begin
    let term =
      match term_at t upto with Some term -> term | None -> assert false
    in
    let keep = last_index t - upto in
    let from = upto - t.snapshot_index in
    (* Shift the surviving suffix to the front. *)
    for i = 0 to keep - 1 do
      t.entries.(i) <- t.entries.(from + i)
    done;
    let old_len = t.len in
    t.len <- keep;
    t.snapshot_index <- upto;
    t.snapshot_term <- term;
    scrub t ~old_len
  end

let install_snapshot t ~index ~term =
  let old_len = t.len in
  t.len <- 0;
  t.snapshot_index <- index;
  t.snapshot_term <- term;
  t.mutations <- t.mutations + 1;
  scrub t ~old_len

(* Entries are stored contiguously, so a slice is a single [Array.sub]
   (and the empty case is the static atom [| |] — no allocation). *)
let slice t ~from ~max =
  let from = Stdlib.max (first_available t) from in
  let stop = Stdlib.min (last_index t) (from + max - 1) in
  if from > stop then [||]
  else Array.sub t.entries (from - t.snapshot_index - 1) (stop - from + 1)

let up_to_date t ~last_index:cand_index ~last_term:cand_term =
  let mine = last_term t in
  cand_term > mine || (cand_term = mine && cand_index >= last_index t)
