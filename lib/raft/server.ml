module Node_id = Netsim.Node_id

type event =
  | Message of { mutable from : Node_id.t; mutable msg : Rpc.message }
  | Election_timeout_fired
  | Heartbeat_due of Node_id.t
  | Broadcast_due
  | Quorum_check_due
  | Flush_due
  | Propose of { payload : string; client_id : int; seq : int }
  | Read of { client_id : int; seq : int }
  | Transfer_leadership of Node_id.t
  | Snapshot_ready of { upto : Types.index; data : string }
  | Restarted

type action =
  | Send of { dst : Node_id.t; kind : Netsim.Transport.kind; msg : Rpc.message }
  | Arm_election of Des.Time.span
  | Disarm_election
  | Arm_heartbeat of { peer : Node_id.t; after : Des.Time.span }
  | Arm_broadcast of Des.Time.span
  | Arm_quorum_check of Des.Time.span
  | Disarm_heartbeats
  | Request_flush
  | Commit of Log.entry array
  | Take_snapshot of { upto : Types.index }
  | Install_sm of { data : string; last_index : Types.index }
  | Serve_read of { client_id : int; seq : int; read_index : Types.index }
  | Reject_proposal of { client_id : int; seq : int }
  | Probe of Probe.t

type persistent = {
  term : Types.term;
  voted_for : Node_id.t option;
  entries : Log.entry array;
  snapshot : (Types.index * Types.term * string) option;
  base_voters : Node_id.t list;
  base_learners : Node_id.t list;
}

type reconfigure_result =
  [ `Ok of Types.index | `Not_leader | `Pending | `Invalid of string ]

(* The cluster configuration in force at some log position.  [m_order]
   lists every member (voters and learners) in insertion order; iteration
   over it is what replaces the frozen [peers] list, so for a cluster
   that never reconfigures the traversal — and hence every PRNG draw —
   is identical to the pre-reconfiguration code. *)
type membership = {
  m_voters : Node_id.Set.t;
  m_learners : Node_id.Set.t;
  m_order : Node_id.t list;
}

type transfer = {
  tr_target : Node_id.t;
  tr_deadline : Des.Time.t;
  mutable tr_sent : bool;
}

type t = {
  id : Node_id.t;
  config : Config.t;
  rng : Stats.Rng.t;
  log : Log.t;
  mutable base : membership;
      (* configuration at the snapshot boundary (initial config until the
         first compaction folds config entries into it) *)
  mutable current : membership;
      (* live configuration: [base] plus every config entry in the log,
         effective as soon as appended (dissertation §4.1) *)
  mutable others : Node_id.t list;
      (* [current.m_order] minus self, cached for the hot paths *)
  mutable latest_config_index : Types.index;
  mutable config_mutations : int;
  mutable transfer : transfer option;
  mutable rewarm_pending : bool;
  mutable term : Types.term;
  mutable voted_for : Node_id.t option;
  mutable role : Types.role;
  mutable leader : Node_id.t option;
  mutable commit_index : Types.index;
  mutable votes : Node_id.Set.t;
  mutable quorum_acks : Node_id.Set.t;
  (* Per-peer leader state is kept in option arrays indexed by
     [Node_id.to_int peer]: the lookups run per heartbeat and per
     replication op, so they must not hash. *)
  mutable progress : Progress.t option array;
  mutable batches : batch_cache option array;
      (* per-peer reuse of the last sliced entry window: retransmits and
         probes of an unchanged log region ship the same (immutable)
         array instead of re-slicing *)
  mutable congestion : Node_id.t -> int;
      (* host-installed egress-depth probe; [fun _ -> 0] until set *)
  mutable paths : Dynatune.Leader_path.t option array;
  tuner : Dynatune.Tuner.t option;
  mutable randomized : Des.Time.span;
  mutable last_leader_contact : Des.Time.t;
  mutable flush_requested : bool;
  mutable snapshot_data : string option;
  mutable force_campaign : bool;
  mutable pending_reads : pending_read list;
  mutable instrument : bool;
  mutable last_decision : (Des.Time.span * Des.Time.span * int) option;
  mutable pb_h : Des.Time.span option;
      (* cache of the last piggybacked [Some h]: the tuned interval
         changes rarely relative to heartbeat volume, so the same box is
         shipped in nearly every response instead of a fresh [Some] *)
  pool : Rpc.Pool.t;
      (* free lists for the hot message payloads; shared across a
         cluster's servers so a record released at the receiver refills
         the sender's next allocation *)
  ctx : ctx;
      (* scratch action accumulator, reused across [handle] calls: a ctx
         is only live inside one call (actions are materialized by
         [finish] before the host interprets them), so one per server
         suffices *)
}
and batch_cache = {
  mutable bc_from : Types.index;
  mutable bc_mutations : int;
  mutable bc_entries : Log.entry array;
}

and ctx = { mutable acts : action list; mutable now : Des.Time.t }

and pending_read = {
  r_client : int;
  r_seq : int;
  read_index : Types.index;
  registered_at : Des.Time.t;
  mutable confirmations : Node_id.Set.t;
}

(* {2 Membership} *)

let member_of m n = Node_id.Set.mem n m.m_voters || Node_id.Set.mem n m.m_learners

let apply_change m = function
  | Log.Add_learner n ->
      if member_of m n then m
      else
        {
          m with
          m_learners = Node_id.Set.add n m.m_learners;
          m_order = m.m_order @ [ n ];
        }
  | Log.Promote n ->
      if not (Node_id.Set.mem n m.m_learners) then m
      else
        {
          m with
          m_voters = Node_id.Set.add n m.m_voters;
          m_learners = Node_id.Set.remove n m.m_learners;
        }
  | Log.Remove n ->
      {
        m_voters = Node_id.Set.remove n m.m_voters;
        m_learners = Node_id.Set.remove n m.m_learners;
        m_order = List.filter (fun x -> not (Node_id.equal x n)) m.m_order;
      }

let set_current t m =
  t.current <- m;
  t.others <- List.filter (fun n -> not (Node_id.equal n t.id)) m.m_order

let quorum t = (Node_id.Set.cardinal t.current.m_voters / 2) + 1
let is_voter_id t n = Node_id.Set.mem n t.current.m_voters
let self_is_voter t = is_voter_id t t.id
let self_weight t = if self_is_voter t then 1 else 0

(* Quorum evidence (CheckQuorum, ReadIndex) only ever counts voters. *)
let note_ack t from =
  if is_voter_id t from then t.quorum_acks <- Node_id.Set.add from t.quorum_acks

(* Re-derive the live configuration: the boundary config plus every
   config entry still stored in the log (applied-on-append). *)
let refresh_membership t =
  let m = ref t.base and latest = ref 0 in
  for i = Log.snapshot_index t.log + 1 to Log.last_index t.log do
    match Log.entry_at t.log i with
    | Some { Log.command = Log.Config c; Log.index; _ } ->
        m := apply_change !m c;
        latest := index
    | Some _ | None -> ()
  done;
  set_current t !m;
  t.latest_config_index <- latest.contents;
  t.config_mutations <- Log.mutations t.log

(* Fold the config entries at or below [upto] into the boundary config;
   called just before the log compacts to [upto]. *)
let fold_base t ~upto =
  let m = ref t.base in
  for i = Log.snapshot_index t.log + 1 to Stdlib.min upto (Log.last_index t.log)
  do
    match Log.entry_at t.log i with
    | Some { Log.command = Log.Config c; _ } -> m := apply_change !m c
    | Some _ | None -> ()
  done;
  t.base <- m.contents

let create ?restore ?pool ?(joining = false) ~id ~peers ~config ~rng () =
  (match Config.validate config with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Server.create: " ^ msg));
  if List.exists (Node_id.equal id) peers then
    invalid_arg "Server.create: peers must not contain the server itself";
  let tuner =
    match config.Config.tuning with
    | Config.Static -> None
    | Config.Dynatune cfg | Config.Fix_k { cfg; _ } ->
        Some (Dynatune.Tuner.create cfg)
  in
  let log = Log.create () in
  let term, voted_for, snapshot_data, base =
    match restore with
    | None ->
        let base =
          if joining then
            (* A joining server starts outside the configuration: it
               learns of its own membership from the Add_learner entry
               the leader replicates to it. *)
            {
              m_voters = Node_id.Set.of_list peers;
              m_learners = Node_id.Set.empty;
              m_order = peers;
            }
          else
            {
              m_voters = Node_id.Set.of_list (id :: peers);
              m_learners = Node_id.Set.empty;
              m_order = id :: peers;
            }
        in
        (0, None, None, base)
    | Some p ->
        let snapshot_data =
          match p.snapshot with
          | Some (index, term, data) ->
              Log.install_snapshot log ~index ~term;
              Some data
          | None -> None
        in
        Array.iter
          (fun (e : Log.entry) ->
            let e' = Log.append_new log ~term:e.Log.term e.Log.command in
            assert (e'.Log.index = e.Log.index))
          p.entries;
        let base =
          {
            m_voters = Node_id.Set.of_list p.base_voters;
            m_learners = Node_id.Set.of_list p.base_learners;
            m_order = p.base_voters @ p.base_learners;
          }
        in
        (p.term, p.voted_for, snapshot_data, base)
  in
  let t =
    {
      id;
      config;
      rng;
      log;
      base;
      current = base;
      others = [];
      latest_config_index = 0;
      config_mutations = 0;
      transfer = None;
      rewarm_pending = false;
      term;
      voted_for;
      role = Types.Follower;
      leader = None;
      commit_index = Log.snapshot_index log;
      votes = Node_id.Set.empty;
      quorum_acks = Node_id.Set.empty;
      progress = [||];
      batches = [||];
      congestion = (fun _ -> 0);
      paths = [||];
      tuner;
      randomized = 0;
      last_leader_contact = Des.Time.zero;
      flush_requested = false;
      snapshot_data;
      force_campaign = false;
      pending_reads = [];
      instrument = false;
      last_decision = None;
      pb_h = None;
      pool =
        (match pool with Some p -> p | None -> Rpc.Pool.create ());
      ctx = { acts = []; now = Des.Time.zero };
    }
  in
  refresh_membership t;
  t

(* {2 Introspection} *)

let persisted (srv : t) =
  {
    term = srv.term;
    voted_for = srv.voted_for;
    entries =
      Log.slice srv.log ~from:(Log.first_available srv.log)
        ~max:(Log.length srv.log);
    snapshot =
      (if Log.snapshot_index srv.log > 0 then
         Some
           ( Log.snapshot_index srv.log,
             Log.snapshot_term srv.log,
             Option.value ~default:"" srv.snapshot_data )
       else None);
    base_voters =
      List.filter (fun n -> Node_id.Set.mem n srv.base.m_voters)
        srv.base.m_order;
    base_learners =
      List.filter (fun n -> Node_id.Set.mem n srv.base.m_learners)
        srv.base.m_order;
  }

let id t = t.id
let pool t = t.pool
let role t = t.role
let term t = t.term
let voted_for t = t.voted_for
let leader t = t.leader
let commit_index t = t.commit_index
let log t = t.log
let config t = t.config
let randomized_timeout t = t.randomized
let tuner t = t.tuner
let set_instrument t on = t.instrument <- on
let set_congestion_probe t f = t.congestion <- f

(* Ensure a per-peer option array covers index [i]. *)
let peer_array arr i =
  if i < Array.length arr then arr
  else begin
    let bigger = Array.make (i + 8) None in
    Array.blit arr 0 bigger 0 (Array.length arr);
    bigger
  end

let appends_inflight t =
  Array.fold_left
    (fun acc p ->
      match p with Some p -> acc + Progress.inflight p | None -> acc)
    0 t.progress

let election_timeout_now t =
  match t.tuner with
  | Some tuner -> Dynatune.Tuner.election_timeout tuner
  | None -> t.config.Config.election_timeout

let tuning_active t = t.tuner <> None

let voters t =
  List.filter (fun n -> Node_id.Set.mem n t.current.m_voters) t.current.m_order

let learners t =
  List.filter
    (fun n -> Node_id.Set.mem n t.current.m_learners)
    t.current.m_order

let members t = t.current.m_order
let is_voter t n = is_voter_id t n
let is_learner t n = Node_id.Set.mem n t.current.m_learners
let votes t = Node_id.Set.elements t.votes
let transfer_pending t = Option.map (fun tr -> tr.tr_target) t.transfer

let pending_config t =
  if t.latest_config_index > t.commit_index then Some t.latest_config_index
  else None

let path t peer =
  let i = Node_id.to_int peer in
  t.paths <- peer_array t.paths i;
  match t.paths.(i) with
  | Some p -> p
  | None ->
      let cfg =
        match t.config.Config.tuning with
        | Config.Dynatune cfg | Config.Fix_k { cfg; _ } -> cfg
        | Config.Static ->
            (* Static mode still stamps measurement metadata (followers
               simply ignore it), so a path record exists per peer. *)
            {
              Dynatune.Config.default with
              default_heartbeat_interval = t.config.Config.heartbeat_interval;
              default_election_timeout = t.config.Config.election_timeout;
            }
      in
      let p = Dynatune.Leader_path.create cfg in
      t.paths.(i) <- Some p;
      p

let heartbeat_interval_to t peer =
  if Types.is_leader t.role then
    Some (Dynatune.Leader_path.interval (path t peer))
  else None

(* The h a follower piggybacks to the leader (Step 3); -1 while warming
   or untuned: the leader then keeps its current (default) interval. *)
let piggyback_h_value t =
  match (t.config.Config.tuning, t.tuner) with
  | Config.Static, _ | _, None -> -1
  | Config.Dynatune _, Some tuner -> (
      match Dynatune.Tuner.phase tuner with
      | Dynatune.Tuner.Warming -> -1
      | Dynatune.Tuner.Tuned -> Dynatune.Tuner.heartbeat_interval tuner)
  | Config.Fix_k { cfg; k }, Some tuner -> (
      match Dynatune.Tuner.phase tuner with
      | Dynatune.Tuner.Warming -> -1
      | Dynatune.Tuner.Tuned ->
          let et = Dynatune.Tuner.election_timeout tuner in
          Des.Time.max_span cfg.Dynatune.Config.min_heartbeat_interval (et / k))

(* Boxed via the per-server cache: a heartbeat response carries the same
   h as the previous one except just after a tuner decision. *)
let piggyback_h t =
  let v = piggyback_h_value t in
  if v < 0 then None
  else
    match t.pb_h with
    | Some h when h = v -> t.pb_h
    | Some _ | None ->
        let boxed = Some v in
        t.pb_h <- boxed;
        boxed

(* The tuning parameters in force at this instant, for forensics
   records: (Et, h, K).  h falls back to the configured interval while
   warming (or in static mode); K is 0 when no tuner exists. *)
let tuning_snapshot t =
  let et = election_timeout_now t in
  let h =
    let v = piggyback_h_value t in
    if v >= 0 then v else t.config.Config.heartbeat_interval
  in
  let k =
    match t.tuner with
    | Some tuner -> Dynatune.Tuner.required_heartbeats tuner
    | None -> 0
  in
  (et, h, k)

(* {2 Action accumulation} *)

let emit ctx a = ctx.acts <- a :: ctx.acts
let finish ctx = List.rev ctx.acts

(* Reset the server's scratch ctx for a new [handle] round. *)
let fresh_ctx t ~now =
  let ctx = t.ctx in
  ctx.acts <- [];
  ctx.now <- now;
  ctx

(* randomizedTimeout = Et + uniform[0, Et), as etcd draws it. *)
let draw_timeout t =
  let et = Stdlib.max 1 (election_timeout_now t) in
  et + Stats.Rng.int t.rng et

let arm_election t ctx =
  t.randomized <- draw_timeout t;
  emit ctx (Arm_election t.randomized)

let set_role t ctx role =
  if not (Types.equal_role t.role role) then begin
    t.role <- role;
    emit ctx (Probe (Probe.Role_change { id = t.id; role; term = t.term }))
  end

let reset_tuner t ctx =
  match t.tuner with
  | Some tuner ->
      Dynatune.Tuner.reset tuner;
      t.last_decision <- None;
      emit ctx (Probe (Probe.Tuner_reset { id = t.id }))
  | None -> ()

(* Probe the tuner's chosen parameters when they change.  Runs only on
   instrumented servers: the per-heartbeat comparison (and the probe
   volume) stays out of plain campaigns. *)
let note_tuner_decision t ctx =
  if t.instrument then
    match t.tuner with
    | None -> ()
    | Some tuner -> (
        match Dynatune.Tuner.phase tuner with
        | Dynatune.Tuner.Warming -> ()
        | Dynatune.Tuner.Tuned ->
            let et = election_timeout_now t in
            let h =
              match piggyback_h t with
              | Some h -> h
              | None -> Dynatune.Tuner.heartbeat_interval tuner
            in
            let k = Dynatune.Tuner.required_heartbeats tuner in
            if t.last_decision <> Some (et, h, k) then begin
              let reason =
                if t.rewarm_pending then Probe.Reconfigured
                else
                  match t.last_decision with
                  | None -> Probe.Warmed
                  | Some _ -> Probe.Retuned
              in
              t.rewarm_pending <- false;
              t.last_decision <- Some (et, h, k);
              emit ctx
                (Probe
                   (Probe.Tuner_decision
                      {
                        id = t.id;
                        rtt_ms = Des.Time.to_ms_f (Dynatune.Tuner.rtt_mean tuner);
                        rtt_std_ms =
                          Des.Time.to_ms_f (Dynatune.Tuner.rtt_std tuner);
                        loss = Dynatune.Tuner.loss_rate tuner;
                        k;
                        et;
                        h;
                        reason;
                      }))
            end)

let become_follower t ctx ~term ~leader =
  if term > t.term then begin
    t.term <- term;
    t.voted_for <- None
  end;
  if Types.is_leader t.role then begin
    emit ctx Disarm_heartbeats;
    (* Linearizable reads awaiting confirmation cannot be served by a
       deposed leader. *)
    List.iter
      (fun r ->
        emit ctx (Reject_proposal { client_id = r.r_client; seq = r.r_seq }))
      t.pending_reads;
    t.pending_reads <- []
  end;
  t.votes <- Node_id.Set.empty;
  (* A pending transfer ends with deposition — by the transferee on
     success, by anyone else on failure.  Either way it is over. *)
  t.transfer <- None;
  t.leader <- leader;
  set_role t ctx Types.Follower;
  arm_election t ctx

(* {2 Leader-side replication} *)

let progress_of t peer =
  let i = Node_id.to_int peer in
  t.progress <- peer_array t.progress i;
  match t.progress.(i) with
  | Some p -> p
  | None ->
      let p = Progress.create ~last_index:(Log.last_index t.log) in
      t.progress.(i) <- Some p;
      p

(* The sliced windows are immutable once built (receivers must not
   mutate them, and the log only ever truncates/extends whole entries),
   so a window already shipped may be shipped again by reference.  Probes
   and retransmits of an unchanged log region therefore reuse the cached
   array; the cache is invalidated by the log's mutation counter. *)
let batch_for t peer ~from =
  let slice () =
    Log.slice t.log ~from ~max:t.config.Config.max_entries_per_append
  in
  let i = Node_id.to_int peer in
  t.batches <- peer_array t.batches i;
  match t.batches.(i) with
  | Some bc ->
      let muts = Log.mutations t.log in
      let len = Array.length bc.bc_entries in
      let still_valid =
        bc.bc_from = from && bc.bc_mutations = muts
        && (* a window short of the batch limit grows as the log does *)
        (len >= t.config.Config.max_entries_per_append
        || from + len > Log.last_index t.log)
      in
      if still_valid then bc.bc_entries
      else begin
        let entries = slice () in
        bc.bc_from <- from;
        bc.bc_mutations <- muts;
        bc.bc_entries <- entries;
        entries
      end
  | None ->
      let entries = slice () in
      t.batches.(i) <-
        Some
          { bc_from = from; bc_mutations = Log.mutations t.log;
            bc_entries = entries };
      entries

let append_request_for t peer =
  let pr = progress_of t peer in
  let next = Progress.next_index pr in
  let prev_index = next - 1 in
  let prev_term = Option.value ~default:0 (Log.term_at t.log prev_index) in
  let entries = batch_for t peer ~from:next in
  Rpc.Pool.append_request t.pool ~term:t.term ~prev_index ~prev_term ~entries
    ~commit:t.commit_index

let send_install_snapshot t ctx peer ~data =
  let pr = progress_of t peer in
  let last_index = Log.snapshot_index t.log in
  Progress.record_sent pr ~upto:last_index;
  Progress.note_append_sent pr ~at:ctx.now;
  emit ctx
    (Send
       {
         dst = peer;
         kind = Netsim.Transport.Reliable;
         msg =
           Rpc.Install_snapshot
             {
               term = t.term;
               last_index;
               last_term = Log.snapshot_term t.log;
               voters =
                 Array.of_list
                   (List.filter
                      (fun n -> Node_id.Set.mem n t.base.m_voters)
                      t.base.m_order);
               learners =
                 Array.of_list
                   (List.filter
                      (fun n -> Node_id.Set.mem n t.base.m_learners)
                      t.base.m_order);
               data;
             };
       })

let rec send_append t ctx peer =
  if Progress.next_index (progress_of t peer) <= Log.snapshot_index t.log
  then
    (* The entries this follower needs were compacted away: ship the
       state-machine snapshot instead, then continue with the log. *)
    match t.snapshot_data with
    | Some data -> send_install_snapshot t ctx peer ~data
    | None ->
        (* No snapshot retained (threshold disabled but log compacted —
           cannot happen in practice); fall through with what we have. *)
        Progress.record_conflict (progress_of t peer)
          ~hint:(Log.first_available t.log);
        send_append_entries t ctx peer
  else send_append_entries t ctx peer

and send_append_entries t ctx peer =
  let msg = append_request_for t peer in
  (match msg with
  | Rpc.Append_request { entries; _ } when Array.length entries > 0 ->
      (* Slices are contiguous and ascending: the last element is the
         highest index (no fold over the batch). *)
      let upto = entries.(Array.length entries - 1).Log.index in
      let pr = progress_of t peer in
      Progress.record_sent pr ~upto;
      Progress.note_append_sent pr ~at:ctx.now
  | Rpc.Append_request _ | Rpc.Vote_request _ | Rpc.Vote_response _
  | Rpc.Append_response _ | Rpc.Heartbeat _ | Rpc.Heartbeat_response _
  | Rpc.Install_snapshot _ | Rpc.Install_snapshot_response _
  | Rpc.Timeout_now _ ->
      ());
  emit ctx (Send { dst = peer; kind = Netsim.Transport.Reliable; msg })

(* The pipelined replication driver: stream batches to [peer] while it
   is behind, its in-flight window has room, and its egress queue is not
   congested.  With the default window this degenerates to at most one
   extra send over the old one-batch-per-trigger flow (a second batch
   only exists when more than [max_entries_per_append] entries are
   pending), which is what keeps the figure digests stable. *)
and replicate t ctx peer =
  let pr = progress_of t peer in
  let window = t.config.Config.max_inflight_appends in
  let limit = t.config.Config.append_backpressure in
  let continue = ref true in
  while
    !continue
    && Progress.needs_entries pr ~last_index:(Log.last_index t.log)
    && Progress.may_send pr ~window
    && t.congestion peer < limit
  do
    let before = Progress.next_index pr in
    send_append t ctx peer;
    (* A send that does not advance [next] (probe resend, snapshot
       fallback) must not spin. *)
    if Progress.next_index pr <= before then continue := false
  done

let send_heartbeat t ctx ~now peer =
  let p = path t peer in
  let hb_id = Dynatune.Leader_path.next_id p in
  let measured_rtt = Dynatune.Leader_path.take_rtt p in
  let commit =
    Stdlib.min t.commit_index (Progress.match_index (progress_of t peer))
  in
  emit ctx
    (Send
       {
         dst = peer;
         kind = t.config.Config.heartbeat_transport;
         msg =
           Rpc.Pool.heartbeat t.pool ~term:t.term ~commit ~hb_id ~sent_at:now
             ~measured_rtt;
       })

(* Section IV-E extension 1: a follower that just received entries has
   already reset its election timer; its heartbeat can be skipped. *)
let heartbeat_suppressed t ctx peer ~interval =
  t.config.Config.suppress_heartbeats_under_load
  && Des.Time.diff ctx.now
       (Progress.last_append_sent_at (progress_of t peer))
     < interval

(* Section IV-E extension 2: the single-timer interval is the minimum h
   across all follower paths. *)
let consolidated_interval t =
  List.fold_left
    (fun acc peer ->
      Des.Time.min_span acc (Dynatune.Leader_path.interval (path t peer)))
    (Config.heartbeat_interval_base t.config)
    t.others

let broadcast_interval t =
  match t.config.Config.tuning with
  | Config.Static -> t.config.Config.heartbeat_interval
  | Config.Dynatune _ | Config.Fix_k _ -> consolidated_interval t

(* {2 Leadership transfer} *)

let maybe_send_timeout_now t ctx =
  match t.transfer with
  | Some tr
    when Types.is_leader t.role
         && (not tr.tr_sent)
         && Progress.match_index (progress_of t tr.tr_target)
            >= Log.last_index t.log ->
      tr.tr_sent <- true;
      emit ctx
        (Send
           {
             dst = tr.tr_target;
             kind = Netsim.Transport.Reliable;
             msg = Rpc.Timeout_now { term = t.term };
           })
  | Some _ | None -> ()

let begin_transfer t ctx ~now target =
  match t.transfer with
  | Some _ -> ()
  | None ->
      if not (Node_id.equal target t.id) then begin
        t.transfer <-
          Some
            {
              tr_target = target;
              tr_deadline =
                Des.Time.add now (Config.election_timeout_base t.config);
              tr_sent = false;
            };
        emit ctx
          (Probe (Probe.Transfer_started { id = t.id; term = t.term; target }));
        maybe_send_timeout_now t ctx;
        match t.transfer with
        | Some { tr_sent = false; _ } ->
            (* Nudge the target's catch-up rather than waiting for the
               heartbeat path to notice it is behind. *)
            replicate t ctx target
        | Some _ | None -> ()
      end

(* A transfer that outlives one (base) election timeout is abandoned and
   the leader resumes accepting proposals; checked lazily from the leader
   timer events. *)
let check_transfer_deadline t ctx ~now =
  match t.transfer with
  | Some tr when now >= tr.tr_deadline ->
      t.transfer <- None;
      emit ctx (Probe (Probe.Transfer_aborted { id = t.id; term = t.term }))
  | Some _ | None -> ()

(* {2 Configuration changes} *)

(* Leader-side config append: a single-server change takes effect as
   soon as it is appended (dissertation §4.1); commitment only gates the
   *next* change. *)
let append_config t ctx change =
  let e = Log.append_new t.log ~term:t.term (Log.Config change) in
  set_current t (apply_change t.current change);
  t.latest_config_index <- e.Log.index;
  emit ctx
    (Probe
       (Probe.Config_change
          {
            id = t.id;
            term = t.term;
            index = e.Log.index;
            change;
            committed = false;
          }));
  (match change with
  | Log.Add_learner n ->
      (* Ship the new member its backlog right away (snapshot first if
         its entries were compacted), and give it a heartbeat timer when
         the leader drives per-peer timers. *)
      let pr = progress_of t n in
      Progress.record_conflict pr ~hint:(Log.first_available t.log);
      send_append t ctx n;
      (match t.config.Config.tuning with
      | Config.Static -> ()
      | Config.Dynatune _ | Config.Fix_k _ ->
          if not t.config.Config.consolidated_timer then
            emit ctx
              (Arm_heartbeat
                 { peer = n; after = Dynatune.Leader_path.interval (path t n) }))
  | Log.Promote _ | Log.Remove _ -> ());
  if not t.flush_requested then begin
    t.flush_requested <- true;
    emit ctx Request_flush
  end;
  e.Log.index

let validate_change t change =
  match change with
  | Log.Add_learner n ->
      if member_of t.current n then Error "already a member" else Ok ()
  | Log.Promote n ->
      if Node_id.Set.mem n t.current.m_learners then Ok ()
      else Error "not a learner"
  | Log.Remove n ->
      if not (member_of t.current n) then Error "not a member"
      else if
        Node_id.Set.mem n t.current.m_voters
        && Node_id.Set.cardinal t.current.m_voters <= 1
      then Error "cannot remove the last voter"
      else Ok ()

(* React to freshly committed entries: probe committed config changes,
   force the tuner back into warm-up (the measurements predate the new
   topology), and hand leadership off when the leader itself was
   removed. *)
let note_committed t ctx newly =
  Array.iter
    (fun (e : Log.entry) ->
      match e.Log.command with
      | Log.Noop | Log.Data _ -> ()
      | Log.Config change -> (
          emit ctx
            (Probe
               (Probe.Config_change
                  {
                    id = t.id;
                    term = t.term;
                    index = e.Log.index;
                    change;
                    committed = true;
                  }));
          (match t.tuner with
          | Some _ ->
              t.rewarm_pending <- true;
              reset_tuner t ctx
          | None -> ());
          match change with
          | Log.Remove n when Node_id.equal n t.id && Types.is_leader t.role
            ->
              (* A removed leader hands off to the most caught-up voter
                 instead of lingering until CheckQuorum deposes it. *)
              let best =
                List.fold_left
                  (fun acc peer ->
                    if not (is_voter_id t peer) then acc
                    else
                      let m = Progress.match_index (progress_of t peer) in
                      match acc with
                      | Some (_, bm) when bm >= m -> acc
                      | Some _ | None -> Some (peer, m))
                  None t.others
              in
              (match best with
              | Some (target, _) -> begin_transfer t ctx ~now:ctx.now target
              | None -> ())
          | Log.Remove _ | Log.Add_learner _ | Log.Promote _ -> ()))
    newly

(* ReadIndex (linearizable reads): a read registered at commit index C is
   servable once (a) a quorum has echoed a heartbeat *sent at or after
   registration* — proving the node was still leader when the read
   arrived — and (b) the state machine has applied at least C.  Only
   heartbeat responses qualify: their echoed timestamp dates the
   evidence (etcd's ReadIndex heartbeat round). *)
let note_read_confirmation t ctx ~from ~sent_at =
  if t.pending_reads <> [] then begin
    List.iter
      (fun r ->
        if sent_at >= r.registered_at && is_voter_id t from then
          r.confirmations <- Node_id.Set.add from r.confirmations)
      t.pending_reads;
    let ready, waiting =
      List.partition
        (fun r ->
          self_weight t + Node_id.Set.cardinal r.confirmations >= quorum t
          && t.commit_index >= r.read_index)
        t.pending_reads
    in
    t.pending_reads <- waiting;
    List.iter
      (fun r ->
        emit ctx
          (Serve_read
             { client_id = r.r_client; seq = r.r_seq; read_index = r.read_index }))
      ready
  end

let maybe_take_snapshot t ctx =
  let threshold = t.config.Config.snapshot_threshold in
  if
    threshold > 0
    && t.commit_index - Log.snapshot_index t.log >= threshold
  then emit ctx (Take_snapshot { upto = t.commit_index })

(* Advance the leader commit index to the highest N with a quorum of
   match indices >= N and log term N = current term. *)
let maybe_advance_commit t ctx =
  let q = quorum t in
  let matches =
    let own = if self_is_voter t then [ Log.last_index t.log ] else [] in
    own
    @ List.filter_map
        (fun p ->
          if is_voter_id t p then Some (Progress.match_index (progress_of t p))
          else None)
        t.others
  in
  if List.length matches >= q then begin
    let sorted = List.sort (fun a b -> compare b a) matches in
    (* The quorum-th largest match index is replicated on a majority. *)
    let candidate = List.nth sorted (q - 1) in
    if
      candidate > t.commit_index
      && Log.term_at t.log candidate = Some t.term
    then begin
      let newly =
        Log.slice t.log ~from:(t.commit_index + 1)
          ~max:(candidate - t.commit_index)
      in
      t.commit_index <- candidate;
      emit ctx (Commit newly);
      note_committed t ctx newly;
      maybe_take_snapshot t ctx
    end
  end

let follower_advance_commit t ctx ~leader_commit =
  let target = Stdlib.min leader_commit (Log.last_index t.log) in
  if target > t.commit_index then begin
    let newly =
      Log.slice t.log ~from:(t.commit_index + 1) ~max:(target - t.commit_index)
    in
    t.commit_index <- target;
    emit ctx (Commit newly);
    note_committed t ctx newly;
    maybe_take_snapshot t ctx
  end

(* The learner promotion rule: once a learner's match index is within
   [learner_promotion_gap] entries of the leader's last index, the leader
   grants it a vote — provided no other change is in flight. *)
let maybe_promote_learner t ctx from =
  if
    Types.is_leader t.role
    && Node_id.Set.mem from t.current.m_learners
    && t.latest_config_index <= t.commit_index
    && (not (Option.is_some t.transfer))
    && Progress.match_index (progress_of t from)
       >= Log.last_index t.log - t.config.Config.learner_promotion_gap
  then ignore (append_config t ctx (Log.Promote from) : Types.index)

(* {2 Leadership} *)

let arm_leader_heartbeats t ctx ~immediately =
  match t.config.Config.tuning with
  | Config.Static ->
      let after = if immediately then 0 else t.config.Config.heartbeat_interval in
      emit ctx (Arm_broadcast after)
  | Config.Dynatune _ | Config.Fix_k _ ->
      if t.config.Config.consolidated_timer then
        let after = if immediately then 0 else broadcast_interval t in
        emit ctx (Arm_broadcast after)
      else
        List.iter
          (fun peer ->
            (* Stagger the initial phase of each per-peer timer uniformly
               over one interval: real schedulers drift the n−1 timers
               apart, and the resulting independent heartbeat phases
               spread follower expiries after a leader failure (fewer
               simultaneous candidacies, hence fewer split votes). *)
            let after =
              if immediately then 0
              else
                let interval = Dynatune.Leader_path.interval (path t peer) in
                1 + Stats.Rng.int t.rng (Stdlib.max 1 interval)
            in
            emit ctx (Arm_heartbeat { peer; after }))
          t.others

let become_leader t ctx =
  t.leader <- Some t.id;
  t.quorum_acks <- Node_id.Set.empty;
  t.transfer <- None;
  emit ctx Disarm_election;
  if t.config.Config.check_quorum then
    emit ctx (Arm_quorum_check (Config.election_timeout_base t.config));
  Array.fill t.progress 0 (Array.length t.progress) None;
  Array.fill t.batches 0 (Array.length t.batches) None;
  Array.iter
    (function Some p -> Dynatune.Leader_path.reset p | None -> ())
    t.paths;
  List.iter (fun peer -> ignore (progress_of t peer : Progress.t)) t.others;
  ignore (Log.append_new t.log ~term:t.term Log.Noop : Log.entry);
  set_role t ctx Types.Leader;
  List.iter (fun peer -> replicate t ctx peer) t.others;
  arm_leader_heartbeats t ctx ~immediately:false;
  (* A single-server cluster commits by itself. *)
  maybe_advance_commit t ctx

(* {2 Elections} *)

let broadcast_vote_request t ctx ~pre ~force =
  let req =
    Rpc.Vote_request
      {
        term = (if pre then t.term + 1 else t.term);
        last_log_index = Log.last_index t.log;
        last_log_term = Log.last_term t.log;
        pre_vote = pre;
        force;
      }
  in
  List.iter
    (fun peer ->
      if is_voter_id t peer then
        emit ctx
          (Send { dst = peer; kind = Netsim.Transport.Reliable; msg = req }))
    t.others

let rec campaign t ctx ~pre ~force =
  t.votes <- Node_id.Set.singleton t.id;
  if pre then begin
    set_role t ctx Types.Pre_candidate;
    if Node_id.Set.cardinal t.votes >= quorum t then
      campaign t ctx ~pre:false ~force
    else begin
      broadcast_vote_request t ctx ~pre:true ~force;
      arm_election t ctx
    end
  end
  else begin
    t.term <- t.term + 1;
    t.voted_for <- Some t.id;
    t.force_campaign <- force;
    set_role t ctx Types.Candidate;
    emit ctx (Probe (Probe.Election_started { id = t.id; term = t.term }));
    if Node_id.Set.cardinal t.votes >= quorum t then become_leader t ctx
    else begin
      broadcast_vote_request t ctx ~pre:false ~force;
      arm_election t ctx
    end
  end

let on_election_timeout t ctx =
  match t.role with
  | Types.Leader -> ()
  | Types.Follower | Types.Pre_candidate | Types.Candidate ->
      if not (self_is_voter t) then begin
        (* Learners (and servers already removed from the config) never
           campaign; their timer only marks lost leader contact, which
           still discards the tuner's measurements. *)
        t.leader <- None;
        reset_tuner t ctx;
        arm_election t ctx
      end
      else begin
        emit ctx
          (Probe
             (Probe.Timeout_expired
                { id = t.id; term = t.term; randomized = t.randomized }));
        (* Fall back to the default parameters: discard measurements
           (Section III-B).  The lease is gone: we no longer trust the
           leader. *)
        t.leader <- None;
        reset_tuner t ctx;
        campaign t ctx ~pre:t.config.Config.pre_vote ~force:false
      end

(* {2 Leader contact (heartbeats / appends)} *)

let note_leader_contact t ctx ~now ~from ~term =
  t.last_leader_contact <- now;
  let new_leader = t.leader <> Some from in
  (match t.role with
  | Types.Pre_candidate ->
      emit ctx (Probe (Probe.Pre_vote_aborted { id = t.id; term = t.term }))
  | Types.Follower | Types.Candidate | Types.Leader -> ());
  if term > t.term || not (Types.equal_role t.role Types.Follower) then
    become_follower t ctx ~term ~leader:(Some from)
  else begin
    t.leader <- Some from;
    arm_election t ctx
  end;
  (* A change of leader starts measurement from scratch (Step 0 with the
     new leader). *)
  if new_leader then reset_tuner t ctx

(* {2 Message handlers} *)

let on_vote_request t ctx ~now ~from (req : Rpc.vote_request) =
  if not (self_is_voter t) then begin
    (* A learner (or removed server) has no vote to give.  Adopt newer
       real terms so later messages are not mistaken for stale ones. *)
    if (not req.pre_vote) && req.term > t.term then begin
      t.term <- req.term;
      t.voted_for <- None
    end;
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg =
             Rpc.Vote_response
               { term = t.term; granted = false; pre_vote = req.pre_vote };
         })
  end
  else begin
  let log_ok =
    Log.up_to_date t.log ~last_index:req.last_log_index
      ~last_term:req.last_log_term
  in
  (* etcd's CheckQuorum lease: campaigns are ignored while we have heard
     from a leader within the (base, un-randomized) election timeout. *)
  let lease_active =
    (not req.force)
    && t.config.Config.leader_stickiness
    && t.leader <> None
    && Des.Time.diff now t.last_leader_contact < election_timeout_now t
  in
  if req.pre_vote then begin
    let granted = req.term > t.term && log_ok && not lease_active in
    let term = if granted then req.term else t.term in
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg = Rpc.Vote_response { term; granted; pre_vote = true };
         })
  end
  else if req.term < t.term then
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg = Rpc.Vote_response { term = t.term; granted = false; pre_vote = false };
         })
  else if lease_active && req.term > t.term then
    (* Within the lease we ignore higher-term campaigns entirely (etcd's
       CheckQuorum behaviour): do not adopt the term, reject. *)
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg = Rpc.Vote_response { term = t.term; granted = false; pre_vote = false };
         })
  else begin
    if req.term > t.term then become_follower t ctx ~term:req.term ~leader:None;
    let can_vote =
      match t.voted_for with
      | None -> true
      | Some v -> Node_id.equal v from
    in
    let granted = can_vote && log_ok in
    if granted then begin
      t.voted_for <- Some from;
      arm_election t ctx
    end;
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg =
             Rpc.Vote_response { term = t.term; granted; pre_vote = false };
         })
  end
  end

let on_vote_response t ctx ~from (resp : Rpc.vote_response) =
  if resp.term > t.term && not resp.granted then
    become_follower t ctx ~term:resp.term ~leader:None
  else
    match (t.role, resp.pre_vote) with
    | Types.Pre_candidate, true
      when resp.granted && resp.term = t.term + 1 ->
        if is_voter_id t from then t.votes <- Node_id.Set.add from t.votes;
        if Node_id.Set.cardinal t.votes >= quorum t then
          campaign t ctx ~pre:false ~force:t.force_campaign
    | Types.Candidate, false when resp.granted && resp.term = t.term ->
        if is_voter_id t from then t.votes <- Node_id.Set.add from t.votes;
        if Node_id.Set.cardinal t.votes >= quorum t then become_leader t ctx
    | _ -> ()

(* Top-level predicate: a per-call closure here would charge every
   follower append five words. *)
let entry_is_config (e : Log.entry) =
  match e.Log.command with
  | Log.Config _ -> true
  | Log.Noop | Log.Data _ -> false

let on_append_request t ctx ~now ~from (req : Rpc.append_request) =
  if req.term < t.term then
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg =
             Rpc.Pool.append_response t.pool ~term:t.term ~success:false
               ~match_index:0 ~conflict_hint:0 ~req_prev:req.prev_index;
         })
  else begin
    note_leader_contact t ctx ~now ~from ~term:req.term;
    let response =
      match
        Log.try_append t.log ~prev_index:req.prev_index
          ~prev_term:req.prev_term ~entries:req.entries
      with
      | `Ok covered ->
          (* Config entries are applied on append; a conflicting-suffix
             truncation can also retract one (detected via the log's
             mutation counter). *)
          if
            Array.exists entry_is_config req.entries
            || Log.mutations t.log <> t.config_mutations
          then refresh_membership t;
          follower_advance_commit t ctx ~leader_commit:req.commit;
          Rpc.Pool.append_response t.pool ~term:t.term ~success:true
            ~match_index:covered ~conflict_hint:0 ~req_prev:req.prev_index
      | `Conflict hint ->
          Rpc.Pool.append_response t.pool ~term:t.term ~success:false
            ~match_index:0 ~conflict_hint:hint ~req_prev:req.prev_index
    in
    emit ctx
      (Send { dst = from; kind = Netsim.Transport.Reliable; msg = response })
  end

let on_append_response t ctx ~now ~from (resp : Rpc.append_response) =
  if resp.term > t.term then become_follower t ctx ~term:resp.term ~leader:None
  else if Types.is_leader t.role && resp.term = t.term then begin
    note_ack t from;
    let pr = progress_of t from in
    Progress.note_response pr ~at:now;
    if resp.success then begin
      Progress.record_success pr ~upto:resp.match_index;
      maybe_advance_commit t ctx;
      maybe_send_timeout_now t ctx;
      maybe_promote_learner t ctx from;
      replicate t ctx from
    end
    else
      (* Only a conflict for the probe currently in flight rewinds; a
         nack answering a send from before an earlier rewind is dropped,
         or every stale nack would re-append the same entries. *)
      match
        Progress.record_conflict_response pr ~req_prev:resp.req_prev
          ~hint:resp.conflict_hint
      with
      | `Rewound -> send_append t ctx from
      | `Stale -> ()
  end

(* Inline-record messages cannot escape their match, so the dispatch in
   [handle] passes the heartbeat fields as arguments. *)
let on_heartbeat t ctx ~now ~from ~term:hb_term ~commit ~hb_id ~sent_at
    ~measured_rtt =
  if hb_term < t.term then
    emit ctx
      (Send
         {
           dst = from;
           kind = t.config.Config.heartbeat_transport;
           msg =
             Rpc.Pool.heartbeat_response t.pool ~term:t.term ~hb_id
               ~echo_sent_at:sent_at ~tuned_h:None;
         })
  else begin
    (* Leader contact: abort any pre-campaign, adopt the term/leader,
       and — if the leader changed — restart measurement (Step 0). *)
    (match t.role with
    | Types.Pre_candidate ->
        emit ctx (Probe (Probe.Pre_vote_aborted { id = t.id; term = t.term }))
    | Types.Follower | Types.Candidate | Types.Leader -> ());
    let new_leader = t.leader <> Some from in
    t.last_leader_contact <- now;
    if hb_term > t.term || not (Types.equal_role t.role Types.Follower) then
      become_follower t ctx ~term:hb_term ~leader:(Some from)
    else t.leader <- Some from;
    if new_leader then reset_tuner t ctx;
    (* Record the measurement sample before re-arming so the timer uses
       the freshest tuned Et. *)
    (match t.tuner with
    | Some tuner ->
        Dynatune.Tuner.observe_heartbeat tuner ~hb_id ~rtt:measured_rtt
    | None -> ());
    note_tuner_decision t ctx;
    follower_advance_commit t ctx ~leader_commit:commit;
    emit ctx
      (Send
         {
           dst = from;
           kind = t.config.Config.heartbeat_transport;
           msg =
             Rpc.Pool.heartbeat_response t.pool ~term:t.term ~hb_id
               ~echo_sent_at:sent_at ~tuned_h:(piggyback_h t);
         });
    arm_election t ctx
  end

let on_heartbeat_response t ctx ~now ~from ~term:resp_term ~echo_sent_at
    ~tuned_h =
  if resp_term > t.term then become_follower t ctx ~term:resp_term ~leader:None
  else if Types.is_leader t.role && resp_term = t.term then begin
    note_ack t from;
    note_read_confirmation t ctx ~from ~sent_at:echo_sent_at;
    maybe_send_timeout_now t ctx;
    maybe_promote_learner t ctx from;
    Dynatune.Leader_path.on_response (path t from) ~now ~echo_sent_at ~tuned_h;
    (* Heartbeat responses double as replication nudges.  A follower can
       be behind in two ways: entries never handed to the transport
       ([needs_entries]), or entries sent optimistically while it was
       unreachable and silently dropped — detected as a stale response
       clock, in which case [next] is rewound to just past its match. *)
    let pr = progress_of t from in
    let last_index = Log.last_index t.log in
    let stale_clock () =
      Des.Time.diff now (Progress.last_response_at pr)
      > Config.election_timeout_base t.config
    in
    if Progress.needs_entries pr ~last_index then begin
      if Progress.inflight pr > 0 && stale_clock () then begin
        (* The window is full of sends that never drew a response: they
           were dropped while the follower was unreachable, and no nack
           will ever drain them.  Rewind to re-probe from its match. *)
        Progress.record_conflict pr ~hint:(Progress.match_index pr + 1);
        Progress.note_response pr ~at:now;
        send_append t ctx from
      end
      else replicate t ctx from
    end
    else if Progress.match_index pr < last_index && stale_clock () then begin
      Progress.record_conflict pr ~hint:(Progress.match_index pr + 1);
      Progress.note_response pr ~at:now;
      send_append t ctx from
    end
  end

let on_install_snapshot t ctx ~now ~from (snap : Rpc.install_snapshot) =
  if snap.term < t.term then
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg =
             Rpc.Install_snapshot_response
               { term = t.term; match_index = 0 };
         })
  else begin
    note_leader_contact t ctx ~now ~from ~term:snap.term;
    if snap.last_index > t.commit_index then begin
      Log.install_snapshot t.log ~index:snap.last_index ~term:snap.last_term;
      (* The wire carries the configuration at the snapshot boundary;
         with the log gone it becomes both base and live config. *)
      t.base <-
        {
          m_voters = Node_id.Set.of_list (Array.to_list snap.voters);
          m_learners = Node_id.Set.of_list (Array.to_list snap.learners);
          m_order = Array.to_list snap.voters @ Array.to_list snap.learners;
        };
      refresh_membership t;
      t.commit_index <- snap.last_index;
      t.snapshot_data <- Some snap.data;
      emit ctx (Install_sm { data = snap.data; last_index = snap.last_index })
    end;
    emit ctx
      (Send
         {
           dst = from;
           kind = Netsim.Transport.Reliable;
           msg =
             Rpc.Install_snapshot_response
               { term = t.term; match_index = t.commit_index };
         })
  end

let on_install_snapshot_response t ctx ~now ~from
    (resp : Rpc.install_snapshot_response) =
  if resp.term > t.term then become_follower t ctx ~term:resp.term ~leader:None
  else if Types.is_leader t.role && resp.term = t.term then begin
    note_ack t from;
    let pr = progress_of t from in
    Progress.note_response pr ~at:now;
    Progress.record_success pr ~upto:resp.match_index;
    maybe_advance_commit t ctx;
    maybe_send_timeout_now t ctx;
    maybe_promote_learner t ctx from;
    replicate t ctx from
  end

let on_timeout_now t ctx ~term =
  (* Leadership transfer: campaign immediately, bypassing the pre-vote
     and the voters' leases (etcd's campaignTransfer).  Only voters may
     take the leadership offered. *)
  if term >= t.term && (not (Types.is_leader t.role)) && self_is_voter t then
    campaign t ctx ~pre:false ~force:true

(* {2 Host-facing API} *)

let start t =
  let ctx = fresh_ctx t ~now:Des.Time.zero in
  arm_election t ctx;
  finish ctx

let handle t ~now event =
  let ctx = fresh_ctx t ~now in
  (match event with
  | Message { from; msg } ->
      (match msg with
      | Rpc.Vote_request req -> on_vote_request t ctx ~now ~from req
      | Rpc.Vote_response resp -> on_vote_response t ctx ~from resp
      | Rpc.Append_request req -> on_append_request t ctx ~now ~from req
      | Rpc.Append_response resp -> on_append_response t ctx ~now ~from resp
      | Rpc.Heartbeat { term; commit; hb_id; sent_at; measured_rtt; _ } ->
          on_heartbeat t ctx ~now ~from ~term ~commit ~hb_id ~sent_at
            ~measured_rtt
      | Rpc.Heartbeat_response { term; echo_sent_at; tuned_h; _ } ->
          on_heartbeat_response t ctx ~now ~from ~term ~echo_sent_at ~tuned_h
      | Rpc.Install_snapshot snap -> on_install_snapshot t ctx ~now ~from snap
      | Rpc.Install_snapshot_response resp ->
          on_install_snapshot_response t ctx ~now ~from resp
      | Rpc.Timeout_now { term } -> on_timeout_now t ctx ~term);
      (* The delivery is fully consumed: recycle the payload record.
         Exactly-once per delivery — the fabric clones duplicated
         datagrams, and hand-built records (gen 0) are ignored. *)
      Rpc.Pool.release t.pool msg
  | Election_timeout_fired -> on_election_timeout t ctx
  | Heartbeat_due peer ->
      if Types.is_leader t.role then begin
        check_transfer_deadline t ctx ~now;
        if member_of t.current peer then begin
          let interval = Dynatune.Leader_path.interval (path t peer) in
          if not (heartbeat_suppressed t ctx peer ~interval) then
            send_heartbeat t ctx ~now peer;
          emit ctx (Arm_heartbeat { peer; after = interval })
        end
        (* A removed member's timer simply dies: no re-arm. *)
      end
  | Broadcast_due ->
      if Types.is_leader t.role then begin
        check_transfer_deadline t ctx ~now;
        let interval = broadcast_interval t in
        List.iter
          (fun peer ->
            if not (heartbeat_suppressed t ctx peer ~interval) then
              send_heartbeat t ctx ~now peer)
          t.others;
        emit ctx (Arm_broadcast interval)
      end
  | Quorum_check_due ->
      if Types.is_leader t.role && t.config.Config.check_quorum then begin
        check_transfer_deadline t ctx ~now;
        if
          self_weight t
          + Node_id.Set.cardinal
              (Node_id.Set.inter t.quorum_acks t.current.m_voters)
          >= quorum t
        then begin
          t.quorum_acks <- Node_id.Set.empty;
          emit ctx (Arm_quorum_check (Config.election_timeout_base t.config))
        end
        else
          (* No quorum heard from within an election timeout: the leader
             abdicates (etcd CheckQuorum). *)
          become_follower t ctx ~term:t.term ~leader:None
      end
  | Flush_due ->
      t.flush_requested <- false;
      if Types.is_leader t.role then
        List.iter (fun peer -> replicate t ctx peer) t.others
  | Propose { payload; client_id; seq } ->
      if Types.is_leader t.role && not (Option.is_some t.transfer) then begin
        ignore
          (Log.append_new t.log ~term:t.term
             (Log.Data { payload; client_id; seq })
            : Log.entry);
        if not t.flush_requested then begin
          t.flush_requested <- true;
          emit ctx Request_flush
        end;
        (* A single-server cluster commits immediately. *)
        if t.others = [] then maybe_advance_commit t ctx
      end
      else
        (* Not leader — or leadership is in transit (etcd rejects
           proposals during a transfer rather than risk losing them). *)
        emit ctx (Reject_proposal { client_id; seq })
  | Read { client_id; seq } ->
      if Types.is_leader t.role then
        if t.others = [] then
          (* Single-server cluster: trivially confirmed. *)
          emit ctx
            (Serve_read { client_id; seq; read_index = t.commit_index })
        else begin
          t.pending_reads <-
            {
              r_client = client_id;
              r_seq = seq;
              read_index = t.commit_index;
              registered_at = now;
              confirmations = Node_id.Set.empty;
            }
            :: t.pending_reads;
          (* Kick off the confirmation round immediately rather than
             waiting for the next scheduled heartbeat (as etcd does). *)
          List.iter (fun peer -> send_heartbeat t ctx ~now peer) t.others
        end
      else emit ctx (Reject_proposal { client_id; seq })
  | Transfer_leadership target ->
      if
        Types.is_leader t.role
        && is_voter_id t target
        && not (Node_id.equal target t.id)
      then begin_transfer t ctx ~now target
  | Snapshot_ready { upto; data } ->
      if upto <= t.commit_index && upto > Log.snapshot_index t.log then begin
        fold_base t ~upto;
        Log.compact t.log ~upto;
        t.snapshot_data <- Some data
      end
  | Restarted ->
      if Types.is_leader t.role then begin
        arm_leader_heartbeats t ctx ~immediately:true;
        t.quorum_acks <- Node_id.Set.empty;
        if t.config.Config.check_quorum then
          emit ctx (Arm_quorum_check (Config.election_timeout_base t.config))
      end
      else begin
        t.leader <- None;
        arm_election t ctx
      end);
  finish ctx

let reconfigure t ~now change =
  let ctx = fresh_ctx t ~now in
  let result =
    if not (Types.is_leader t.role) then `Not_leader
    else if Option.is_some t.transfer then `Pending
    else if t.latest_config_index > t.commit_index then
      (* At most one change may be in flight (§4.1): the previous entry
         must commit before the next one is accepted. *)
      `Pending
    else
      match validate_change t change with
      | Error msg -> `Invalid msg
      | Ok () ->
          let index = append_config t ctx change in
          (* A cluster whose only voter is this leader commits alone. *)
          if t.others = [] then maybe_advance_commit t ctx;
          `Ok index
  in
  (finish ctx, result)
