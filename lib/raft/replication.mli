(** The Raft layer's only gateway to {!Netsim.Fabric.send}.

    Classifies outgoing RPCs into the fabric's two egress lanes and
    sizes their serialization cost, so that on links with a wire model
    ({!Netsim.Fabric.set_serialization}) control traffic overtakes
    queued replication bursts.  A lint rule keeps every other module in
    [lib/raft] from sending directly. *)

val lane_of : Rpc.message -> Netsim.Transport.lane
(** [Bulk] for payload-bearing transfers (entry-carrying AppendEntries,
    InstallSnapshot); [Urgent] for everything else, including the empty
    consistency probes. *)

val wire_units : Rpc.message -> int
(** Serialization units: 1 per frame plus 1 per entry carried (snapshot
    payloads count in 256-byte frames). *)

val transmit :
  Rpc.message Netsim.Fabric.t ->
  lanes:bool ->
  cause:int ->
  src:Netsim.Node_id.t ->
  dst:Netsim.Node_id.t ->
  Netsim.Transport.kind ->
  Rpc.message ->
  unit
(** Send one RPC.  With [lanes:false] everything departs urgent — one
    FIFO, the priority-lane ablation.  [cause] (a {!Telemetry.Cause.t}
    token; [0] = none) is staged on the fabric so the receiver's
    delivery handler can read its causal parent — see
    {!Netsim.Fabric.stage_cause}. *)
