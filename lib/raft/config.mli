(** Per-server Raft configuration, including the election-parameter
    tuning mode under evaluation.

    The three comparators of the paper's experiments are all instances of
    this record:

    - {e Raft} (default etcd): [Static] with [Et = 1000 ms], [h = 100 ms].
    - {e Raft-Low}: [Static] with the parameters divided by 10.
    - {e Dynatune}: [Dynatune cfg] with the paper's runtime arguments.
    - {e Fix-K}: [Fix_k] — Et tuned from RTT like Dynatune, but
      [h = Et/K] with a fixed K (no loss-driven tuning). *)

type tuning =
  | Static
      (** Fixed election parameters; the leader drives all followers from
          one broadcast heartbeat timer. *)
  | Dynatune of Dynatune.Config.t
      (** Full per-path tuning of both [Et] and [h]. *)
  | Fix_k of { cfg : Dynatune.Config.t; k : int }
      (** [Et] tuned from RTT, [h = Et/k] fixed (the Fig 7 ablation). *)

type t = {
  election_timeout : Des.Time.span;
      (** Base [Et] for [Static] mode (tuned modes take defaults from
          their [Dynatune.Config.t]). *)
  heartbeat_interval : Des.Time.span;  (** Base [h] for [Static] mode. *)
  pre_vote : bool;  (** Run the pre-vote phase before real elections. *)
  leader_stickiness : bool;
      (** Reject (pre-)votes while a current leader has been heard from
          within the election timeout (etcd's CheckQuorum lease). *)
  check_quorum : bool;
      (** Leader self-demotion (etcd's CheckQuorum): step down when no
          response from a quorum arrived within one election timeout.
          Load-bearing for the Fig 6 Raft-Low result — when the RTT
          exceeds [Et], responses always lag and the leader perpetually
          abdicates. *)
  tuning : tuning;
  heartbeat_transport : Netsim.Transport.kind;
      (** Dynatune sends heartbeats over UDP, default etcd over TCP
          (Section III-E). *)
  max_entries_per_append : int;
      (** Replication batch size limit. *)
  suppress_heartbeats_under_load : bool;
      (** Section IV-E extension 1: skip a follower's heartbeat when an
          AppendEntries was sent to it within the current interval —
          replication traffic already resets its election timer.
          Recovers throughput headroom at high request rates. *)
  consolidated_timer : bool;
      (** Section IV-E extension 2: drive all followers from a single
          heartbeat timer at the minimum tuned [h], instead of n−1
          per-follower timers.  Trades some extra heartbeats on slow
          paths for less leader timer load. *)
  snapshot_threshold : int;
      (** Compact the log into a state-machine snapshot once this many
          entries have been committed past the previous snapshot;
          laggards behind the boundary catch up via InstallSnapshot.
          [0] disables compaction. *)
  learner_promotion_gap : int;
      (** A learner is considered caught up — and auto-promoted by the
          leader — once its match index is within this many entries of
          the leader's last index.  [0] requires an exact match. *)
  max_inflight_appends : int;
      (** Pipelining window: how many entry-carrying AppendEntries (or
          snapshots) the leader keeps unacknowledged per follower before
          it stops streaming.  [1] recovers strict request/response
          replication. *)
  append_backpressure : int;
      (** Egress-queue depth (per destination, from the fabric's
          congestion signal) above which the leader stops handing new
          bulk appends to the transport.  Only engages on links with a
          serialization delay — queues cannot form otherwise. *)
  priority_lanes : bool;
      (** Send control traffic (heartbeats, votes, TimeoutNow, ...) on
          the fabric's urgent lane so it overtakes queued bulk appends.
          Off, everything shares one FIFO lane. *)
}

val with_replication :
  ?max_inflight_appends:int ->
  ?append_backpressure:int ->
  ?max_entries_per_append:int ->
  ?priority_lanes:bool ->
  t ->
  t
(** Override the replication-engine knobs on a configuration. *)

val with_extensions :
  ?suppress_heartbeats_under_load:bool -> ?consolidated_timer:bool -> t -> t
(** Enable the Section IV-E extensions on a configuration. *)

val with_snapshots : threshold:int -> t -> t
(** Enable log compaction every [threshold] committed entries. *)

val with_learner_promotion_gap : gap:int -> t -> t
(** Set the catch-up gap under which the leader auto-promotes a learner.
    Raises [Invalid_argument] if [gap < 0]. *)

val static : ?election_timeout:Des.Time.span -> ?heartbeat_interval:Des.Time.span -> unit -> t
(** etcd defaults: [Et = 1000 ms], [h = 100 ms], pre-vote and stickiness
    on, heartbeats over TCP. *)

val raft_low : unit -> t
(** The paper's Raft-Low comparator: static parameters at 1/10 of the
    defaults. *)

val dynatune : ?cfg:Dynatune.Config.t -> unit -> t
(** Dynatune with the paper's runtime arguments; heartbeats over UDP. *)

val fix_k : ?cfg:Dynatune.Config.t -> k:int -> unit -> t
(** The Fig 7 ablation. *)

val validate : t -> (t, string) result

val election_timeout_base : t -> Des.Time.span
(** The configured fallback/base [Et] (mode-aware). *)

val heartbeat_interval_base : t -> Des.Time.span

val mode_name : t -> string
(** ["raft"], ["raft-low"], ["dynatune"] or ["fix-k"]; used in reports. *)
