type vote_request = {
  term : Types.term;
  last_log_index : Types.index;
  last_log_term : Types.term;
  pre_vote : bool;
  force : bool;
}

type vote_response = { term : Types.term; granted : bool; pre_vote : bool }

(* The four steady-state message payloads (appends both ways, heartbeats
   both ways) have mutable fields so {!Pool} can recycle the records: in
   a long DES run they dominate allocation volume, and their lifetime is
   exact — allocated at send, dead once the receiver's [Server.handle]
   returns.  [*_gen] is the pool generation stamp: 0 marks a record that
   was built by hand (never pooled, never recycled), and every pool
   allocation bumps it, which is what the pool-safety property observes
   to prove a record cannot be recycled while still in flight. *)

type append_request = {
  mutable term : Types.term;
  mutable prev_index : Types.index;
  mutable prev_term : Types.term;
  mutable entries : Log.entry array;
  mutable commit : Types.index;
  mutable ar_gen : int;
}

type append_response = {
  mutable term : Types.term;
  mutable success : bool;
  mutable match_index : Types.index;
  mutable conflict_hint : Types.index;
  mutable req_prev : Types.index;
      (* the request's [prev_index], echoed back: with pipelined appends
         the leader must tell a conflict for the probe it has in flight
         from a conflict for a send it already rewound past *)
  mutable ap_gen : int;
}

type install_snapshot = {
  term : Types.term;
  last_index : Types.index;
  last_term : Types.term;
  voters : Netsim.Node_id.t array;
  learners : Netsim.Node_id.t array;
  data : string;
}

type install_snapshot_response = {
  term : Types.term;
  match_index : Types.index;
}

type message =
  | Vote_request of vote_request
  | Vote_response of vote_response
  | Append_request of append_request
  | Append_response of append_response
  | Heartbeat of {
      mutable term : Types.term;
      mutable commit : Types.index;
      mutable hb_id : int;
      mutable sent_at : Des.Time.t;
      mutable measured_rtt : Des.Time.span option;
      mutable hb_gen : int;
    }
  | Heartbeat_response of {
      mutable term : Types.term;
      mutable hb_id : int;
      mutable echo_sent_at : Des.Time.t;
      mutable tuned_h : Des.Time.span option;
      mutable hr_gen : int;
    }
  | Install_snapshot of install_snapshot
  | Install_snapshot_response of install_snapshot_response
  | Timeout_now of { term : Types.term }
[@@protocol]
(* The [@@protocol] mark feeds bin/analyze.exe's protocol-wildcard rule:
   a match naming these constructors may not have a catch-all arm, so a
   message kind added later cannot be silently dropped. *)

let kind_name = function
  | Vote_request { pre_vote = true; _ } -> "prevote_req"
  | Vote_request _ -> "vote_req"
  | Vote_response { pre_vote = true; _ } -> "prevote_resp"
  | Vote_response _ -> "vote_resp"
  | Append_request _ -> "append_req"
  | Append_response _ -> "append_resp"
  | Heartbeat _ -> "hb"
  | Heartbeat_response _ -> "hb_resp"
  | Install_snapshot _ -> "snap"
  | Install_snapshot_response _ -> "snap_resp"
  | Timeout_now _ -> "timeout_now"

let pp ppf = function
  | Vote_request r ->
      Format.fprintf ppf "%s(term=%d last=%d/%d)"
        (if r.pre_vote then "PreVote" else "Vote")
        r.term r.last_log_index r.last_log_term
  | Vote_response r ->
      Format.fprintf ppf "%sResp(term=%d granted=%b)"
        (if r.pre_vote then "PreVote" else "Vote")
        r.term r.granted
  | Append_request r ->
      Format.fprintf ppf "Append(term=%d prev=%d/%d n=%d commit=%d)" r.term
        r.prev_index r.prev_term (Array.length r.entries) r.commit
  | Append_response r ->
      Format.fprintf ppf "AppendResp(term=%d ok=%b match=%d hint=%d)" r.term
        r.success r.match_index r.conflict_hint
  | Heartbeat { term; commit; hb_id; measured_rtt; _ } -> (
      match measured_rtt with
      | Some rtt ->
          Format.fprintf ppf "Heartbeat(term=%d commit=%d id=%d rtt=%a)" term
            commit hb_id Des.Time.pp_ms rtt
      | None ->
          Format.fprintf ppf "Heartbeat(term=%d commit=%d id=%d)" term commit
            hb_id)
  | Heartbeat_response { term; hb_id; _ } ->
      Format.fprintf ppf "HeartbeatResp(term=%d id=%d)" term hb_id
  | Install_snapshot r ->
      Format.fprintf ppf "Snapshot(term=%d upto=%d/%d voters=%d bytes=%d)"
        r.term r.last_index r.last_term (Array.length r.voters)
        (String.length r.data)
  | Install_snapshot_response r ->
      Format.fprintf ppf "SnapshotResp(term=%d match=%d)" r.term r.match_index
  | Timeout_now { term } -> Format.fprintf ppf "TimeoutNow(term=%d)" term

(* {2 Message pooling}

   Free lists for the hot payloads, keyed by constructor.  The DES gives
   messages exact lifetimes: a message is born at a [Send] action and is
   dead the moment the receiving [Server.handle] call returns (nothing
   in the protocol retains a request or response record — entry records
   are shared, but the array and the wrapper record are not).  The
   server therefore releases every delivered pooled message back, and
   allocation pops the free list instead of the minor heap.

   Safety invariant: a record enters a free list only after its sole
   delivery has been fully processed.  Lost messages, messages dropped
   at a paused/removed node, and hand-built records (gen 0) never enter
   a pool — they fall back to the GC.  A duplicated datagram delivers
   two references to one send; the fabric's dup hook replaces the second
   with {!Pool.clone_for_dup}'s unpooled copy so the primary's release
   cannot recycle a record the duplicate still holds. *)

module Pool = struct
  (* Array-backed stack: push/pop allocate nothing (a list free-list
     would pay a cons per release, a third of the record it recycles).
     Each stack owns its slot filler — a pool is single-domain, and
     keeping the filler off the toplevel keeps the whole module free of
     shared mutable state (the shared-state analyzer rule checks). *)
  type stack = {
    mutable items : message array;
    mutable len : int;
    filler : message;  (* dead-slot marker, never handed out *)
  }

  let new_stack () =
    let filler = Timeout_now { term = 0 } in
    { items = Array.make 16 filler; len = 0; filler }

  let push s m =
    let cap = Array.length s.items in
    if s.len = cap then begin
      let items = Array.make (2 * cap) s.filler in
      Array.blit s.items 0 items 0 cap;
      s.items <- items
    end;
    s.items.(s.len) <- m;
    s.len <- s.len + 1

  let pop s =
    s.len <- s.len - 1;
    let m = s.items.(s.len) in
    s.items.(s.len) <- s.filler;
    m

  type t = { hb : stack; hbr : stack; areq : stack; aresp : stack }

  let create () =
    {
      hb = new_stack ();
      hbr = new_stack ();
      areq = new_stack ();
      aresp = new_stack ();
    }

  (* Each allocator pops a dead record and overwrites every field (so
     [release] need not clear them) — or builds a fresh one at gen 1 if
     the pool is dry.  The popped constructor is guaranteed by which
     stack it sits on; the protocol-wildcard rule still wants the other
     arms spelled out. *)

  let[@hot] heartbeat p ~term ~commit ~hb_id ~sent_at ~measured_rtt =
    if p.hb.len = 0 then
      Heartbeat { term; commit; hb_id; sent_at; measured_rtt; hb_gen = 1 }
    else begin
      let m = pop p.hb in
      (match m with
      | Heartbeat h ->
          h.term <- term;
          h.commit <- commit;
          h.hb_id <- hb_id;
          h.sent_at <- sent_at;
          h.measured_rtt <- measured_rtt;
          h.hb_gen <- h.hb_gen + 1
      | Vote_request _ | Vote_response _ | Append_request _
      | Append_response _ | Heartbeat_response _ | Install_snapshot _
      | Install_snapshot_response _ | Timeout_now _ ->
          assert false);
      m
    end

  let[@hot] heartbeat_response p ~term ~hb_id ~echo_sent_at ~tuned_h =
    if p.hbr.len = 0 then
      Heartbeat_response { term; hb_id; echo_sent_at; tuned_h; hr_gen = 1 }
    else begin
      let m = pop p.hbr in
      (match m with
      | Heartbeat_response h ->
          h.term <- term;
          h.hb_id <- hb_id;
          h.echo_sent_at <- echo_sent_at;
          h.tuned_h <- tuned_h;
          h.hr_gen <- h.hr_gen + 1
      | Vote_request _ | Vote_response _ | Append_request _
      | Append_response _ | Heartbeat _ | Install_snapshot _
      | Install_snapshot_response _ | Timeout_now _ ->
          assert false);
      m
    end

  let[@hot] append_request p ~term ~prev_index ~prev_term ~entries ~commit =
    if p.areq.len = 0 then
      Append_request { term; prev_index; prev_term; entries; commit; ar_gen = 1 }
    else begin
      let m = pop p.areq in
      (match m with
      | Append_request r ->
          r.term <- term;
          r.prev_index <- prev_index;
          r.prev_term <- prev_term;
          r.entries <- entries;
          r.commit <- commit;
          r.ar_gen <- r.ar_gen + 1
      | Vote_request _ | Vote_response _ | Append_response _ | Heartbeat _
      | Heartbeat_response _ | Install_snapshot _
      | Install_snapshot_response _ | Timeout_now _ ->
          assert false);
      m
    end

  let[@hot] append_response p ~term ~success ~match_index ~conflict_hint ~req_prev =
    if p.aresp.len = 0 then
      Append_response
        { term; success; match_index; conflict_hint; req_prev; ap_gen = 1 }
    else begin
      let m = pop p.aresp in
      (match m with
      | Append_response r ->
          r.term <- term;
          r.success <- success;
          r.match_index <- match_index;
          r.conflict_hint <- conflict_hint;
          r.req_prev <- req_prev;
          r.ap_gen <- r.ap_gen + 1
      | Vote_request _ | Vote_response _ | Append_request _ | Heartbeat _
      | Heartbeat_response _ | Install_snapshot _
      | Install_snapshot_response _ | Timeout_now _ ->
          assert false);
      m
    end

  let[@hot] release p m =
    match m with
    | Heartbeat h -> if h.hb_gen > 0 then push p.hb m
    | Heartbeat_response h -> if h.hr_gen > 0 then push p.hbr m
    | Append_request r ->
        if r.ar_gen > 0 then begin
          (* Do not pin the batch window in the pool: the array belongs
             to the leader's batch cache and may be large. *)
          r.entries <- [||];
          push p.areq m
        end
    | Append_response r -> if r.ap_gen > 0 then push p.aresp m
    | Vote_request _ | Vote_response _ | Install_snapshot _
    | Install_snapshot_response _ | Timeout_now _ ->
        ()

  let generation = function
    | Heartbeat h -> h.hb_gen
    | Heartbeat_response h -> h.hr_gen
    | Append_request r -> r.ar_gen
    | Append_response r -> r.ap_gen
    | Vote_request _ | Vote_response _ | Install_snapshot _
    | Install_snapshot_response _ | Timeout_now _ ->
        -1

  (* An unpooled (gen-0) copy for the second delivery of a duplicated
     datagram; value-identical, so digests cannot see the difference. *)
  let clone_for_dup m =
    match m with
    | Heartbeat { term; commit; hb_id; sent_at; measured_rtt; hb_gen = _ } ->
        Heartbeat { term; commit; hb_id; sent_at; measured_rtt; hb_gen = 0 }
    | Heartbeat_response { term; hb_id; echo_sent_at; tuned_h; hr_gen = _ } ->
        Heartbeat_response { term; hb_id; echo_sent_at; tuned_h; hr_gen = 0 }
    | Append_request { term; prev_index; prev_term; entries; commit; ar_gen = _ }
      ->
        Append_request
          { term; prev_index; prev_term; entries; commit; ar_gen = 0 }
    | Append_response
        { term; success; match_index; conflict_hint; req_prev; ap_gen = _ } ->
        Append_response
          { term; success; match_index; conflict_hint; req_prev; ap_gen = 0 }
    | Vote_request _ | Vote_response _ | Install_snapshot _
    | Install_snapshot_response _ | Timeout_now _ ->
        m

  (* Free-list depths, for the pool-safety tests. *)
  let sizes p = (p.hb.len, p.hbr.len, p.areq.len, p.aresp.len)
end
