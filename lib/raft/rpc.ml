type vote_request = {
  term : Types.term;
  last_log_index : Types.index;
  last_log_term : Types.term;
  pre_vote : bool;
  force : bool;
}

type vote_response = { term : Types.term; granted : bool; pre_vote : bool }

type append_request = {
  term : Types.term;
  prev_index : Types.index;
  prev_term : Types.term;
  entries : Log.entry array;
  commit : Types.index;
}

type append_response = {
  term : Types.term;
  success : bool;
  match_index : Types.index;
  conflict_hint : Types.index;
  req_prev : Types.index;
      (* the request's [prev_index], echoed back: with pipelined appends
         the leader must tell a conflict for the probe it has in flight
         from a conflict for a send it already rewound past *)
}

type install_snapshot = {
  term : Types.term;
  last_index : Types.index;
  last_term : Types.term;
  voters : Netsim.Node_id.t list;
  learners : Netsim.Node_id.t list;
  data : string;
}

type install_snapshot_response = {
  term : Types.term;
  match_index : Types.index;
}

type message =
  | Vote_request of vote_request
  | Vote_response of vote_response
  | Append_request of append_request
  | Append_response of append_response
  | Heartbeat of {
      term : Types.term;
      commit : Types.index;
      hb_id : int;
      sent_at : Des.Time.t;
      measured_rtt : Des.Time.span option;
    }
  | Heartbeat_response of {
      term : Types.term;
      hb_id : int;
      echo_sent_at : Des.Time.t;
      tuned_h : Des.Time.span option;
    }
  | Install_snapshot of install_snapshot
  | Install_snapshot_response of install_snapshot_response
  | Timeout_now of { term : Types.term }
[@@protocol]
(* The [@@protocol] mark feeds bin/analyze.exe's protocol-wildcard rule:
   a match naming these constructors may not have a catch-all arm, so a
   message kind added later cannot be silently dropped. *)

let kind_name = function
  | Vote_request { pre_vote = true; _ } -> "prevote_req"
  | Vote_request _ -> "vote_req"
  | Vote_response { pre_vote = true; _ } -> "prevote_resp"
  | Vote_response _ -> "vote_resp"
  | Append_request _ -> "append_req"
  | Append_response _ -> "append_resp"
  | Heartbeat _ -> "hb"
  | Heartbeat_response _ -> "hb_resp"
  | Install_snapshot _ -> "snap"
  | Install_snapshot_response _ -> "snap_resp"
  | Timeout_now _ -> "timeout_now"

let pp ppf = function
  | Vote_request r ->
      Format.fprintf ppf "%s(term=%d last=%d/%d)"
        (if r.pre_vote then "PreVote" else "Vote")
        r.term r.last_log_index r.last_log_term
  | Vote_response r ->
      Format.fprintf ppf "%sResp(term=%d granted=%b)"
        (if r.pre_vote then "PreVote" else "Vote")
        r.term r.granted
  | Append_request r ->
      Format.fprintf ppf "Append(term=%d prev=%d/%d n=%d commit=%d)" r.term
        r.prev_index r.prev_term (Array.length r.entries) r.commit
  | Append_response r ->
      Format.fprintf ppf "AppendResp(term=%d ok=%b match=%d hint=%d)" r.term
        r.success r.match_index r.conflict_hint
  | Heartbeat { term; commit; hb_id; _ } ->
      Format.fprintf ppf "Heartbeat(term=%d commit=%d id=%d)" term commit hb_id
  | Heartbeat_response { term; hb_id; _ } ->
      Format.fprintf ppf "HeartbeatResp(term=%d id=%d)" term hb_id
  | Install_snapshot r ->
      Format.fprintf ppf "Snapshot(term=%d upto=%d/%d voters=%d bytes=%d)"
        r.term r.last_index r.last_term (List.length r.voters)
        (String.length r.data)
  | Install_snapshot_response r ->
      Format.fprintf ppf "SnapshotResp(term=%d match=%d)" r.term r.match_index
  | Timeout_now { term } -> Format.fprintf ppf "TimeoutNow(term=%d)" term
