type decision_reason = Warmed | Retuned | Reconfigured

type t =
  | Role_change of { id : Netsim.Node_id.t; role : Types.role; term : Types.term }
  | Timeout_expired of {
      id : Netsim.Node_id.t;
      term : Types.term;
      randomized : Des.Time.span;
    }
  | Pre_vote_aborted of { id : Netsim.Node_id.t; term : Types.term }
  | Tuner_reset of { id : Netsim.Node_id.t }
  | Tuner_decision of {
      id : Netsim.Node_id.t;
      rtt_ms : float;
      rtt_std_ms : float;
      loss : float;
      k : int;
      et : Des.Time.span;
      h : Des.Time.span;
      reason : decision_reason;
    }
  | Election_started of { id : Netsim.Node_id.t; term : Types.term }
  | Node_paused of { id : Netsim.Node_id.t }
  | Node_resumed of { id : Netsim.Node_id.t }
  | Config_change of {
      id : Netsim.Node_id.t;
      term : Types.term;
      index : Types.index;
      change : Log.change;
      committed : bool;
    }
  | Transfer_started of {
      id : Netsim.Node_id.t;
      term : Types.term;
      target : Netsim.Node_id.t;
    }
  | Transfer_aborted of { id : Netsim.Node_id.t; term : Types.term }

let reason_name = function
  | Warmed -> "warmed"
  | Retuned -> "retuned"
  | Reconfigured -> "reconfigured"

let pp ppf = function
  | Role_change { id; role; term } ->
      Format.fprintf ppf "%a -> %s (term %d)" Netsim.Node_id.pp id
        (Types.role_name role) term
  | Timeout_expired { id; term; randomized } ->
      Format.fprintf ppf "%a timeout (%a) in term %d" Netsim.Node_id.pp id
        Des.Time.pp_ms randomized term
  | Pre_vote_aborted { id; term } ->
      Format.fprintf ppf "%a pre-vote aborted (term %d)" Netsim.Node_id.pp id
        term
  | Tuner_reset { id } ->
      Format.fprintf ppf "%a tuner reset" Netsim.Node_id.pp id
  | Tuner_decision { id; rtt_ms; rtt_std_ms; loss; k; et; h; reason } ->
      Format.fprintf ppf
        "%a tuner %s: rtt %.3f±%.3fms loss %.4f -> Et %a H %a k %d"
        Netsim.Node_id.pp id (reason_name reason) rtt_ms rtt_std_ms loss
        Des.Time.pp_ms et Des.Time.pp_ms h k
  | Election_started { id; term } ->
      Format.fprintf ppf "%a election started (term %d)" Netsim.Node_id.pp id
        term
  | Node_paused { id } ->
      Format.fprintf ppf "%a paused" Netsim.Node_id.pp id
  | Node_resumed { id } ->
      Format.fprintf ppf "%a resumed" Netsim.Node_id.pp id
  | Config_change { id; term; index; change; committed } ->
      Format.fprintf ppf "%a config %s %a at index %d (term %d)"
        Netsim.Node_id.pp id
        (if committed then "committed" else "appended")
        Log.pp_change change index term
  | Transfer_started { id; term; target } ->
      Format.fprintf ppf "%a transfer to %a (term %d)" Netsim.Node_id.pp id
        Netsim.Node_id.pp target term
  | Transfer_aborted { id; term } ->
      Format.fprintf ppf "%a transfer aborted (term %d)" Netsim.Node_id.pp id
        term

let node = function
  | Role_change { id; _ }
  | Timeout_expired { id; _ }
  | Pre_vote_aborted { id; _ }
  | Tuner_reset { id }
  | Tuner_decision { id; _ }
  | Election_started { id; _ }
  | Node_paused { id }
  | Node_resumed { id }
  | Config_change { id; _ }
  | Transfer_started { id; _ }
  | Transfer_aborted { id; _ } ->
      id
