(* etcd-style two-state replication flow: a follower whose log position
   is unknown is probed one append at a time; once an append succeeds the
   leader switches to pipelined replication, streaming up to the
   configured window of optimistic batches before the first ack.  A
   conflict (or a silent stall detected via the response clock) rewinds
   [next], forgets the in-flight window, and drops back to probing —
   responses to sends from before the rewind are recognized by their
   echoed request position and discarded instead of re-triggering
   resends. *)

type state = Probing | Replicating

type t = {
  mutable next : Types.index;
  mutable matched : Types.index;
  mutable state : state;
  mutable inflight : int;
      (* entry-carrying appends (and snapshots) sent but not yet
         acknowledged; cleared wholesale by a rewind *)
  mutable last_response_at : Des.Time.t;
  mutable last_append_sent_at : Des.Time.t;
}

let create ~last_index =
  {
    next = last_index + 1;
    matched = 0;
    state = Probing;
    inflight = 0;
    last_response_at = Des.Time.zero;
    last_append_sent_at = Des.Time.zero;
  }

let note_append_sent t ~at = t.last_append_sent_at <- at
let last_append_sent_at t = t.last_append_sent_at

let note_response t ~at = t.last_response_at <- at
let last_response_at t = t.last_response_at
let next_index t = t.next
let match_index t = t.matched
let inflight t = t.inflight

let record_sent t ~upto =
  if upto + 1 > t.next then t.next <- upto + 1;
  t.inflight <- t.inflight + 1

let record_success t ~upto =
  if upto > t.matched then t.matched <- upto;
  if upto + 1 > t.next then t.next <- upto + 1;
  t.state <- Replicating;
  if t.inflight > 0 then t.inflight <- t.inflight - 1

let record_conflict t ~hint =
  t.next <- Stdlib.max 1 (Stdlib.min hint t.next);
  t.state <- Probing;
  t.inflight <- 0

let record_conflict_response t ~req_prev ~hint =
  (* A conflict for a request probing position [req_prev + 1].  If the
     window has already been rewound below that position, this response
     belongs to a send made before the rewind: the probe in flight at
     [next] supersedes it, and resending here would only re-append the
     same entries again (the nack/rewind churn). *)
  if req_prev + 1 > t.next then `Stale
  else begin
    record_conflict t ~hint;
    `Rewound
  end

let may_send t ~window =
  match t.state with
  | Probing -> t.inflight = 0
  | Replicating -> t.inflight < window

let needs_entries t ~last_index = t.next <= last_index
