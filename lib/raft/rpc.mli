(** Raft wire messages, including the Dynatune heartbeat metadata.

    Heartbeats are a distinct lightweight message (as in etcd's
    [MsgHeartbeat]) rather than empty AppendEntries: they carry the leader
    commit index plus the Dynatune measurement metadata, and under
    Dynatune they travel over the datagram transport while everything
    else uses the reliable one. *)

type vote_request = {
  term : Types.term;
      (** For a pre-vote this is the term the candidate {e would} start
          (current + 1); the candidate's own term is not bumped. *)
  last_log_index : Types.index;
  last_log_term : Types.term;
  pre_vote : bool;
  force : bool;
      (** Leadership-transfer campaign: voters skip the stickiness lease
          (etcd's campaignTransfer). *)
}

type vote_response = {
  term : Types.term;  (** echo of the request term on grants *)
  granted : bool;
  pre_vote : bool;
}

type append_request = {
  term : Types.term;
  prev_index : Types.index;
  prev_term : Types.term;
  entries : Log.entry array;
      (** a zero-copy-sliced window of the leader's log; receivers must
          not mutate it *)
  commit : Types.index;
}

type append_response = {
  term : Types.term;
  success : bool;
  match_index : Types.index;  (** meaningful when [success] *)
  conflict_hint : Types.index;  (** meaningful when not [success] *)
  req_prev : Types.index;
      (** The request's [prev_index], echoed back.  With pipelined
          appends the leader uses it to tell a conflict for the probe it
          has in flight from a stale nack answering a send it already
          rewound past (which must not trigger another resend). *)
}

type install_snapshot = {
  term : Types.term;
  last_index : Types.index;  (** the snapshot covers entries up to here *)
  last_term : Types.term;
  voters : Netsim.Node_id.t list;
      (** the voting membership as of [last_index] — config entries at or
          below the boundary are folded into the snapshot, so the wire
          must carry the resulting configuration *)
  learners : Netsim.Node_id.t list;
  data : string;  (** opaque serialized state-machine contents *)
}

type install_snapshot_response = {
  term : Types.term;
  match_index : Types.index;  (** the follower now holds state up to here *)
}

type message =
  | Vote_request of vote_request
  | Vote_response of vote_response
  | Append_request of append_request
  | Append_response of append_response
  | Heartbeat of {
      term : Types.term;
      commit : Types.index;
      hb_id : int;  (** sequential per-path id for loss measurement *)
      sent_at : Des.Time.t;  (** leader local send time, echoed back *)
      measured_rtt : Des.Time.span option;
          (** the most recent RTT the leader measured on this path *)
    }
  | Heartbeat_response of {
      term : Types.term;
      hb_id : int;
      echo_sent_at : Des.Time.t;  (** the leader timestamp, verbatim *)
      tuned_h : Des.Time.span option;
          (** the follower's piggybacked heartbeat interval (Step 3) *)
    }
      (** Heartbeat and its echo use inline records: the whole message is
          one flat block (no nested meta/echo records), which matters
          because these two dominate message volume in steady state. *)
  | Install_snapshot of install_snapshot
  | Install_snapshot_response of install_snapshot_response
  | Timeout_now of { term : Types.term }
      (** leadership transfer: the leader orders the target to campaign
          immediately (skipping pre-vote and leases) *)
[@@protocol]
(** The [@@protocol] mark feeds [bin/analyze.exe]'s protocol-wildcard
    rule: a match naming these constructors may not have a catch-all
    arm, so a message kind added later cannot be silently dropped. *)

val pp : Format.formatter -> message -> unit

val kind_name : message -> string
(** Short tag for counters/cost accounting: ["vote_req"], ["hb"], ... *)
