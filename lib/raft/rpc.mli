(** Raft wire messages, including the Dynatune heartbeat metadata.

    Heartbeats are a distinct lightweight message (as in etcd's
    [MsgHeartbeat]) rather than empty AppendEntries: they carry the leader
    commit index plus the Dynatune measurement metadata, and under
    Dynatune they travel over the datagram transport while everything
    else uses the reliable one.

    The four steady-state payloads (appends and heartbeats, both
    directions) have mutable fields so {!Pool} can recycle the records.
    Their [*_gen] field is the pool generation stamp: [0] marks a
    hand-built record that the pool will never adopt; pool allocations
    carry a positive, strictly increasing stamp.  Code outside the pool
    treats the fields as immutable — construct with the pool (or a
    literal at gen 0), never mutate in place. *)

type vote_request = {
  term : Types.term;
      (** For a pre-vote this is the term the candidate {e would} start
          (current + 1); the candidate's own term is not bumped. *)
  last_log_index : Types.index;
  last_log_term : Types.term;
  pre_vote : bool;
  force : bool;
      (** Leadership-transfer campaign: voters skip the stickiness lease
          (etcd's campaignTransfer). *)
}

type vote_response = {
  term : Types.term;  (** echo of the request term on grants *)
  granted : bool;
  pre_vote : bool;
}

type append_request = {
  mutable term : Types.term;
  mutable prev_index : Types.index;
  mutable prev_term : Types.term;
  mutable entries : Log.entry array;
      (** a zero-copy-sliced window of the leader's log; receivers must
          not mutate it *)
  mutable commit : Types.index;
  mutable ar_gen : int;  (** pool generation; 0 = never pooled *)
}

type append_response = {
  mutable term : Types.term;
  mutable success : bool;
  mutable match_index : Types.index;  (** meaningful when [success] *)
  mutable conflict_hint : Types.index;  (** meaningful when not [success] *)
  mutable req_prev : Types.index;
      (** The request's [prev_index], echoed back.  With pipelined
          appends the leader uses it to tell a conflict for the probe it
          has in flight from a stale nack answering a send it already
          rewound past (which must not trigger another resend). *)
  mutable ap_gen : int;  (** pool generation; 0 = never pooled *)
}

type install_snapshot = {
  term : Types.term;
  last_index : Types.index;  (** the snapshot covers entries up to here *)
  last_term : Types.term;
  voters : Netsim.Node_id.t array;
      (** the voting membership as of [last_index] — config entries at or
          below the boundary are folded into the snapshot, so the wire
          must carry the resulting configuration (flat arrays: receivers
          only ever iterate them) *)
  learners : Netsim.Node_id.t array;
  data : string;  (** opaque serialized state-machine contents *)
}

type install_snapshot_response = {
  term : Types.term;
  match_index : Types.index;  (** the follower now holds state up to here *)
}

type message =
  | Vote_request of vote_request
  | Vote_response of vote_response
  | Append_request of append_request
  | Append_response of append_response
  | Heartbeat of {
      mutable term : Types.term;
      mutable commit : Types.index;
      mutable hb_id : int;  (** sequential per-path id for loss measurement *)
      mutable sent_at : Des.Time.t;
          (** leader local send time, echoed back *)
      mutable measured_rtt : Des.Time.span option;
          (** the most recent RTT the leader measured on this path *)
      mutable hb_gen : int;  (** pool generation; 0 = never pooled *)
    }
  | Heartbeat_response of {
      mutable term : Types.term;
      mutable hb_id : int;
      mutable echo_sent_at : Des.Time.t;
          (** the leader timestamp, verbatim *)
      mutable tuned_h : Des.Time.span option;
          (** the follower's piggybacked heartbeat interval (Step 3) *)
      mutable hr_gen : int;  (** pool generation; 0 = never pooled *)
    }
      (** Heartbeat and its echo use inline records: the whole message is
          one flat block (no nested meta/echo records), which matters
          because these two dominate message volume in steady state. *)
  | Install_snapshot of install_snapshot
  | Install_snapshot_response of install_snapshot_response
  | Timeout_now of { term : Types.term }
      (** leadership transfer: the leader orders the target to campaign
          immediately (skipping pre-vote and leases) *)
[@@protocol]
(** The [@@protocol] mark feeds [bin/analyze.exe]'s protocol-wildcard
    rule: a match naming these constructors may not have a catch-all
    arm, so a message kind added later cannot be silently dropped. *)

val pp : Format.formatter -> message -> unit

val kind_name : message -> string
(** Short tag for counters/cost accounting: ["vote_req"], ["hb"], ... *)

(** Free lists for the hot payloads.

    A pool is single-domain (one per cluster; parallel campaign runs
    each build their own).  The lifecycle contract: {!Pool.release} may
    be called exactly once per delivered message, after the receiving
    server is completely done with it — in this codebase that is the end
    of the [Server.handle] call that consumed it.  Messages that are
    lost, dropped at a paused node, or hand-built (gen 0) are simply
    GC'd; double release of a pooled record is a correctness bug (the
    record would alias two future messages).  Duplicated datagrams must
    deliver {!Pool.clone_for_dup} copies on the second leg (the fabric's
    dup hook): the primary delivery's release must not recycle a record
    the duplicate still references. *)
module Pool : sig
  type t

  val create : unit -> t

  val heartbeat :
    t ->
    term:Types.term ->
    commit:Types.index ->
    hb_id:int ->
    sent_at:Des.Time.t ->
    measured_rtt:Des.Time.span option ->
    message

  val heartbeat_response :
    t ->
    term:Types.term ->
    hb_id:int ->
    echo_sent_at:Des.Time.t ->
    tuned_h:Des.Time.span option ->
    message

  val append_request :
    t ->
    term:Types.term ->
    prev_index:Types.index ->
    prev_term:Types.term ->
    entries:Log.entry array ->
    commit:Types.index ->
    message

  val append_response :
    t ->
    term:Types.term ->
    success:bool ->
    match_index:Types.index ->
    conflict_hint:Types.index ->
    req_prev:Types.index ->
    message

  val release : t -> message -> unit
  (** Return a delivered message's record to the free list.  No-op for
      unpooled variants and gen-0 records, so it is always safe to call
      on whatever arrived — but never twice on the same delivery. *)

  val generation : message -> int
  (** Current pool generation of a poolable message ([-1] for variants
      the pool does not manage).  A record observed at generation [g]
      has been recycled iff its generation later differs from [g]. *)

  val clone_for_dup : message -> message
  (** Value-identical unpooled copy (gen 0) for the second delivery of a
      duplicated datagram; identity on unpooled variants. *)

  val sizes : t -> int * int * int * int
  (** Free-list depths (hb, hb_resp, append_req, append_resp), for the
      pool-safety tests. *)
end
