(** A Raft server bound to the simulation: timers, network, CPU, trace.

    [Node] owns the election timer, the heartbeat timer(s) (one per
    follower under Dynatune, a single broadcast timer under static Raft —
    the very asymmetry whose cost Section IV-E discusses), the replication
    flush timer, and the fault switch that models the paper's
    container-sleep leader failures. *)

type t

val create :
  fabric:Rpc.message Netsim.Fabric.t ->
  trace:Probe.t Des.Mtrace.t ->
  ?cpu:Netsim.Cpu.t ->
  ?costs:Cost_model.t ->
  ?apply:(Log.entry -> unit) ->
  ?snapshot_of:(unit -> string) ->
  ?install_sm:(string -> unit) ->
  ?flush_delay:Des.Time.span ->
  ?metrics:Telemetry.Metrics.t ->
  ?forensics:Telemetry.Forensics.t ->
  ?joining:bool ->
  ?pool:Rpc.Pool.t ->
  id:Netsim.Node_id.t ->
  peers:Netsim.Node_id.t list ->
  config:Config.t ->
  unit ->
  t
(** Create a node and register it on the fabric (which must already know
    the id).  With [joining] (default false) the node starts outside the
    cluster configuration and becomes a member only when the leader's
    [Add_learner] entry reaches it (see {!Server.create}).  [cpu] defaults to a passthrough CPU, [costs] to
    {!Cost_model.zero}, [flush_delay] to 1 ms.  [apply] is invoked for
    every committed entry, in log order.  When log compaction is enabled
    ({!Config.with_snapshots}), [snapshot_of] must serialize the current
    state machine and [install_sm] must replace it with a received
    serialization.

    [metrics] (default {!Telemetry.Metrics.noop}) receives per-node RPC
    counters ([rpc/sent], [rpc/recv]) and the heartbeat round-trip
    histogram ([rpc/hb_rtt_ms]); when it is enabled the node also turns
    on [Server.set_instrument] (and keeps it on across {!restart}), so
    tuner decisions reach the trace.

    [forensics] (default {!Telemetry.Forensics.noop}) receives causally
    stamped transition records: every timer fire, client request and
    injected fault mints a fresh {!Telemetry.Cause.t}, sends piggyback
    the current cause across the fabric, and probes are mirrored into
    the ring with it.  When enabled the node turns on the fabric's
    cause tracking; when disabled every added branch is on a cached
    [bool] and the node allocates exactly what it did before.

    [pool] is the message free-list handed to {!Server.create} (and kept
    across {!restart}); a cluster passes one shared pool to all its
    nodes so records released at receivers refill the senders. *)

val start : t -> unit
(** Arm the initial election timer.  Call once, on every node, before
    running the engine. *)

val server : t -> Server.t
(** The underlying protocol state machine (read-only use expected). *)

val id : t -> Netsim.Node_id.t
val cpu : t -> Netsim.Cpu.t

val submit :
  t ->
  payload:string ->
  client_id:int ->
  seq:int ->
  on_result:(committed:bool -> unit) ->
  unit ->
  [ `Accepted | `Not_leader of Netsim.Node_id.t option ]
(** Offer a client command.  [`Accepted] means the command entered the
    leader's log; [on_result ~committed:true] fires when it commits.
    [`Not_leader] reports the believed leader for redirect. *)

val read :
  t ->
  client_id:int ->
  seq:int ->
  on_result:(committed:bool -> unit) ->
  unit ->
  [ `Accepted | `Not_leader of Netsim.Node_id.t option ]
(** Register a linearizable read (ReadIndex protocol): [on_result
    ~committed:true] fires once leadership has been re-confirmed by a
    quorum and the local state machine covers the read point — read the
    state machine {e in that callback}.  Rejected if leadership is lost
    first. *)

val transfer_leadership : t -> Netsim.Node_id.t -> [ `Ok | `Not_leader ]
(** Ask the leader to hand leadership to [target] (etcd's MoveLeader):
    once the target is caught up it is told to campaign immediately,
    bypassing pre-vote and leases, so the hand-off completes in about
    one round trip with no out-of-service window.  Proposals are
    rejected while the transfer is in flight. *)

val reconfigure : t -> Log.change -> Server.reconfigure_result
(** Submit a single-server membership change to this node (which must be
    the leader).  The change takes effect as soon as it is appended;
    [`Ok index] reports the config entry's log index. *)

val pause : t -> unit
(** Freeze the node: its timers stop acting and the fabric drops its
    inbound messages (the paper's container-sleep fault). *)

val resume : t -> unit
(** Unfreeze; the server re-arms its timers and rejoins. *)

val is_paused : t -> bool

val incarnation : t -> int
(** Number of crash-recoveries this node has been through.  The protocol
    state machine is replaced wholesale by {!restart}; observers that
    track volatile quantities (commit index, role) across checks use
    this to detect the replacement and reset their baselines. *)

val crash : t -> unit
(** Crash the node: like {!pause}, but volatile state (role, commit
    index, measurement windows, outstanding client waiters — rejected)
    will be lost.  Only the Raft-persistent state (term, vote, log)
    survives, as if read back from a WAL on disk. *)

val restart : t -> unit
(** Recover a crashed node from its persisted state: it rejoins as a
    follower at its last term with an empty measurement window and
    commit index 0, re-learning the commit point from the leader (the
    crash-recovery model of the paper's Section III-A). *)
