type tuning =
  | Static
  | Dynatune of Dynatune.Config.t
  | Fix_k of { cfg : Dynatune.Config.t; k : int }

type t = {
  election_timeout : Des.Time.span;
  heartbeat_interval : Des.Time.span;
  pre_vote : bool;
  leader_stickiness : bool;
  check_quorum : bool;
  tuning : tuning;
  heartbeat_transport : Netsim.Transport.kind;
  max_entries_per_append : int;
  suppress_heartbeats_under_load : bool;
  consolidated_timer : bool;
  snapshot_threshold : int;
  learner_promotion_gap : int;
  max_inflight_appends : int;
  append_backpressure : int;
  priority_lanes : bool;
}

let with_replication ?max_inflight_appends ?append_backpressure
    ?max_entries_per_append ?priority_lanes t =
  let pick v = function Some v' -> v' | None -> v in
  {
    t with
    max_inflight_appends = pick t.max_inflight_appends max_inflight_appends;
    append_backpressure = pick t.append_backpressure append_backpressure;
    max_entries_per_append = pick t.max_entries_per_append max_entries_per_append;
    priority_lanes = pick t.priority_lanes priority_lanes;
  }

let with_learner_promotion_gap ~gap t =
  if gap < 0 then invalid_arg "Config.with_learner_promotion_gap: negative gap";
  { t with learner_promotion_gap = gap }

let with_snapshots ~threshold t =
  if threshold < 0 then invalid_arg "Config.with_snapshots: negative threshold";
  { t with snapshot_threshold = threshold }

let with_extensions ?(suppress_heartbeats_under_load = true)
    ?(consolidated_timer = false) t =
  { t with suppress_heartbeats_under_load; consolidated_timer }

let static ?(election_timeout = Des.Time.ms 1000)
    ?(heartbeat_interval = Des.Time.ms 100) () =
  {
    election_timeout;
    heartbeat_interval;
    pre_vote = true;
    leader_stickiness = true;
    check_quorum = true;
    tuning = Static;
    heartbeat_transport = Netsim.Transport.Reliable;
    max_entries_per_append = 1024;
    suppress_heartbeats_under_load = false;
    consolidated_timer = false;
    snapshot_threshold = 0;
    learner_promotion_gap = 64;
    max_inflight_appends = 1024;
    append_backpressure = 64;
    priority_lanes = true;
  }

let raft_low () =
  static ~election_timeout:(Des.Time.ms 100)
    ~heartbeat_interval:(Des.Time.ms 10) ()

let dynatune ?(cfg = Dynatune.Config.default) () =
  {
    election_timeout = cfg.Dynatune.Config.default_election_timeout;
    heartbeat_interval = cfg.Dynatune.Config.default_heartbeat_interval;
    pre_vote = true;
    leader_stickiness = true;
    check_quorum = true;
    tuning = Dynatune cfg;
    heartbeat_transport = Netsim.Transport.Datagram;
    max_entries_per_append = 1024;
    suppress_heartbeats_under_load = false;
    consolidated_timer = false;
    snapshot_threshold = 0;
    learner_promotion_gap = 64;
    max_inflight_appends = 1024;
    append_backpressure = 64;
    priority_lanes = true;
  }

let fix_k ?(cfg = Dynatune.Config.default) ~k () =
  if k <= 0 then invalid_arg "Config.fix_k: k must be positive";
  let base = dynatune ~cfg () in
  { base with tuning = Fix_k { cfg; k } }

let validate t =
  let err fmt = Format.kasprintf (fun m -> Error m) fmt in
  if t.election_timeout <= 0 then err "election_timeout must be positive"
  else if t.heartbeat_interval <= 0 then
    err "heartbeat_interval must be positive"
  else if t.heartbeat_interval >= t.election_timeout then
    err "heartbeat_interval must be below election_timeout"
  else if t.max_entries_per_append <= 0 then
    err "max_entries_per_append must be positive"
  else if t.snapshot_threshold < 0 then
    err "snapshot_threshold must be non-negative"
  else if t.learner_promotion_gap < 0 then
    err "learner_promotion_gap must be non-negative"
  else if t.max_inflight_appends <= 0 then
    err "max_inflight_appends must be positive"
  else if t.append_backpressure <= 0 then
    err "append_backpressure must be positive"
  else
    match t.tuning with
    | Static -> Ok t
    | Dynatune cfg | Fix_k { cfg; _ } -> (
        match Dynatune.Config.validate cfg with
        | Ok _ -> Ok t
        | Error msg -> err "tuning config: %s" msg)

let election_timeout_base t =
  match t.tuning with
  | Static -> t.election_timeout
  | Dynatune cfg | Fix_k { cfg; _ } ->
      cfg.Dynatune.Config.default_election_timeout

let heartbeat_interval_base t =
  match t.tuning with
  | Static -> t.heartbeat_interval
  | Dynatune cfg | Fix_k { cfg; _ } ->
      cfg.Dynatune.Config.default_heartbeat_interval

let mode_name t =
  match t.tuning with
  | Dynatune _ -> "dynatune"
  | Fix_k _ -> "fix-k"
  | Static ->
      if t.election_timeout <= Des.Time.ms 100 then "raft-low" else "raft"
