module Node_id = Netsim.Node_id

type t = {
  engine : Des.Engine.t;
  fabric : Rpc.message Netsim.Fabric.t;
  mutable server : Server.t;
  peers : Node_id.t list;
  config : Config.t;
  rng : Stats.Rng.t;
  trace : Probe.t Des.Mtrace.t;
  cpu : Netsim.Cpu.t;
  costs : Cost_model.t;
  election_timer : Des.Timer.t;
  broadcast_timer : Des.Timer.t;
  quorum_timer : Des.Timer.t;
  flush_timer : Des.Timer.t;
  (* indexed by [Node_id.to_int peer]: the per-follower heartbeat timer
     is re-armed on every beat, so the lookup must not hash *)
  mutable hb_timers : Des.Timer.t option array;
  waiters : (int * int, committed:bool -> unit) Hashtbl.t;
  apply : Log.entry -> unit;
  snapshot_of : unit -> string;
  install_sm : string -> unit;
  flush_delay : Des.Time.span;
  instrumented : bool;
  fo : Telemetry.Forensics.t;
  fo_on : bool;
  mutable cur_cause : int;
      (* the causal token of the event being processed: stamped at every
         timer fire / message delivery, read by every forensics record
         and piggybacked on every send *)
  mutable election_arm_cause : int;
      (* [cur_cause] when the election timer was last armed — the parent
         of the timeout that fires from it *)
  m_sent : Telemetry.Metrics.Counter.t;
  m_recv : Telemetry.Metrics.Counter.t;
  m_hb_rtt : Telemetry.Metrics.Timer.t;
  m_inflight : Telemetry.Metrics.Gauge.t;
  m_batch : Telemetry.Metrics.Timer.t;
  mutable paused : bool;
  mutable incarnation : int;
      (* bumped on every crash-recovery: volatile server state does not
         survive a restart, and observers (the invariant checker) must
         reset their volatile baselines when this changes *)
}

let id t = Server.id t.server
let server t = t.server
let cpu t = t.cpu
let is_paused t = t.paused
let incarnation t = t.incarnation

let[@hot] rec dispatch t event =
  let actions = Server.handle t.server ~now:(Des.Engine.now t.engine) event in
  interpret_all t actions

(* Hand-rolled [List.iter (interpret t)]: dispatch runs once per event,
   and the partial application would allocate a closure every time. *)
and interpret_all t = function
  | [] -> ()
  | action :: rest ->
      interpret t action;
      interpret_all t rest
  [@@hot]

(* A fresh cause for a locally originated event (timer fire, client
   request, fault), stamped as the current causal context. *)
and new_cause t kind =
  t.cur_cause <-
    Telemetry.Forensics.new_cause t.fo ~kind
      ~node:(Netsim.Node_id.to_int (Server.id t.server))
      ~term:(Server.term t.server)

and interpret t = function
  | Server.Send { dst; kind; msg } ->
      Telemetry.Metrics.Counter.incr t.m_sent;
      if t.instrumented then begin
        match msg with
        | Rpc.Append_request { entries; _ } when Array.length entries > 0 ->
            Telemetry.Metrics.Timer.observe_ms t.m_batch
              (float_of_int (Array.length entries));
            Telemetry.Metrics.Gauge.set_max t.m_inflight
              (float_of_int (Server.appends_inflight t.server))
        | Rpc.Append_request _ | Rpc.Vote_request _ | Rpc.Vote_response _
        | Rpc.Append_response _ | Rpc.Heartbeat _ | Rpc.Heartbeat_response _
        | Rpc.Install_snapshot _ | Rpc.Install_snapshot_response _
        | Rpc.Timeout_now _ ->
            ()
      end;
      Netsim.Cpu.charge t.cpu
        ~cost:
          (Cost_model.message_send_cost t.costs
             ~tuning_active:(Server.tuning_active t.server)
             msg);
      Replication.transmit t.fabric
        ~lanes:t.config.Config.priority_lanes
        ~cause:(if t.fo_on then t.cur_cause else 0)
        ~src:(id t) ~dst kind msg
  | Server.Arm_election span ->
      if t.fo_on then t.election_arm_cause <- t.cur_cause;
      Des.Timer.arm t.election_timer span
  | Server.Disarm_election -> Des.Timer.disarm t.election_timer
  | Server.Arm_heartbeat { peer; after } ->
      Des.Timer.arm (hb_timer t peer) after
  | Server.Arm_broadcast after -> Des.Timer.arm t.broadcast_timer after
  | Server.Arm_quorum_check after -> Des.Timer.arm t.quorum_timer after
  | Server.Disarm_heartbeats ->
      Des.Timer.disarm t.broadcast_timer;
      Array.iter
        (function Some timer -> Des.Timer.disarm timer | None -> ())
        t.hb_timers
  | Server.Request_flush ->
      if not (Des.Timer.is_armed t.flush_timer) then
        Des.Timer.arm t.flush_timer t.flush_delay
  | Server.Commit entries ->
      Array.iter
        (fun (entry : Log.entry) ->
          Netsim.Cpu.charge t.cpu ~cost:t.costs.Cost_model.apply;
          t.apply entry;
          match entry.command with
          | Log.Noop | Log.Config _ -> ()
          | Log.Data { client_id; seq; _ } -> (
              match Hashtbl.find_opt t.waiters (client_id, seq) with
              | Some k ->
                  Hashtbl.remove t.waiters (client_id, seq);
                  k ~committed:true
              | None -> ()))
        entries
  | Server.Take_snapshot { upto } ->
      let data = t.snapshot_of () in
      dispatch t (Server.Snapshot_ready { upto; data })
  | Server.Install_sm { data; last_index = _ } -> t.install_sm data
  | Server.Serve_read { client_id; seq; read_index = _ } -> (
      match Hashtbl.find_opt t.waiters (client_id, seq) with
      | Some k ->
          Hashtbl.remove t.waiters (client_id, seq);
          k ~committed:true
      | None -> ())
  | Server.Reject_proposal { client_id; seq } -> (
      match Hashtbl.find_opt t.waiters (client_id, seq) with
      | Some k ->
          Hashtbl.remove t.waiters (client_id, seq);
          k ~committed:false
      | None -> ())
  | Server.Probe p ->
      if t.fo_on then forensics_probe t p;
      Des.Mtrace.emit t.trace p

(* Mirror the probe into the forensics ring, stamped with the causal
   context of the event being processed.  Terms come from the probe
   where it carries one: by the time actions are interpreted the server
   may already have moved on (a timeout increments the term before its
   probe is seen here). *)
and forensics_probe t p =
  let at = Des.Engine.now t.engine in
  let node = Node_id.to_int (Server.id t.server) in
  let record ?(parent = Telemetry.Cause.none) ~term ev =
    Telemetry.Forensics.record t.fo ~at ~node ~term ~cause:t.cur_cause ~parent
      ev
  in
  match p with
  | Probe.Timeout_expired { term; randomized; _ } ->
      let et, h, k = Server.tuning_snapshot t.server in
      record ~parent:t.election_arm_cause ~term
        (Telemetry.Forensics.Timeout { randomized; et; h; k })
  | Probe.Election_started { term; _ } ->
      record ~parent:t.election_arm_cause ~term
        (Telemetry.Forensics.Campaign { pre = false })
  | Probe.Role_change { role; term; _ } ->
      record ~term (Telemetry.Forensics.Role { role = Types.role_name role })
  | Probe.Pre_vote_aborted { term; _ } ->
      record ~term Telemetry.Forensics.Prevote_abort
  | Probe.Tuner_reset _ ->
      record ~term:(Server.term t.server) Telemetry.Forensics.Tuner_reset
  | Probe.Tuner_decision { rtt_ms; loss; k; et; h; reason; _ } ->
      record ~term:(Server.term t.server)
        (Telemetry.Forensics.Tuner
           { rtt_ms; loss; et; h; k; reason = Probe.reason_name reason })
  | Probe.Config_change { term; change; committed; _ } ->
      record ~term
        (Telemetry.Forensics.Config
           { change = Format.asprintf "%a" Log.pp_change change; committed })
  | Probe.Transfer_started { term; target; _ } ->
      record ~term
        (Telemetry.Forensics.Transfer { target = Node_id.to_int target })
  | Probe.Node_paused _ | Probe.Node_resumed _ | Probe.Transfer_aborted _ ->
      (* pause/resume are recorded at the fault-injection site, where the
         fault cause is minted; transfer expiry adds nothing causal *)
      ()

and hb_timer t peer =
  let i = Node_id.to_int peer in
  if i >= Array.length t.hb_timers then begin
    let bigger = Array.make (i + 8) None in
    Array.blit t.hb_timers 0 bigger 0 (Array.length t.hb_timers);
    t.hb_timers <- bigger
  end;
  match t.hb_timers.(i) with
  | Some timer -> timer
  | None ->
      let timer =
        Des.Timer.create t.engine (fun () ->
            if not t.paused then begin
              Netsim.Cpu.charge t.cpu ~cost:t.costs.Cost_model.timer_fire;
              if t.fo_on then new_cause t Telemetry.Cause.Heartbeat_timer;
              dispatch t (Server.Heartbeat_due peer)
            end)
      in
      t.hb_timers.(i) <- Some timer;
      timer

(* Datagram heartbeats arrive on a bounded socket buffer: when the node's
   CPU cannot keep up, the buffer overflows and the datagram is silently
   lost (the cost Dynatune pays for taking heartbeats off the reliable
   stream).  A few milliseconds of backlog stands in for a ~200 KB UDP
   receive buffer. *)
let udp_drop_backlog = Des.Time.ms 4

let datagram_overflow t msg =
  (match (Server.config t.server).Config.heartbeat_transport with
  | Netsim.Transport.Datagram -> (
      match msg with
      | Rpc.Heartbeat _ | Rpc.Heartbeat_response _ ->
          Netsim.Cpu.backlog t.cpu > udp_drop_backlog
      | Rpc.Vote_request _ | Rpc.Vote_response _ | Rpc.Append_request _
      | Rpc.Append_response _ | Rpc.Install_snapshot _
      | Rpc.Install_snapshot_response _ | Rpc.Timeout_now _ ->
          false)
  | Netsim.Transport.Reliable -> false)

let create ~fabric ~trace ?cpu ?(costs = Cost_model.zero) ?apply ?snapshot_of
    ?install_sm ?(flush_delay = Des.Time.ms 1)
    ?(metrics = Telemetry.Metrics.noop)
    ?(forensics = Telemetry.Forensics.noop) ?(joining = false) ?pool
    ~id:node_id ~peers ~config () =
  let engine = Netsim.Fabric.engine fabric in
  let node_label = "n" ^ string_of_int (Node_id.to_int node_id) in
  let cpu =
    match cpu with Some c -> c | None -> Netsim.Cpu.passthrough engine
  in
  let rng =
    Stats.Rng.split_int
      (Stats.Rng.split (Des.Engine.rng engine) "raft-node")
      (Node_id.to_int node_id)
  in
  let server =
    Server.create ~joining ?pool ~id:node_id ~peers ~config
      ~rng:(Stats.Rng.copy rng) ()
  in
  Server.set_instrument server (Telemetry.Metrics.enabled metrics);
  Server.set_congestion_probe server (fun dst ->
      Netsim.Fabric.pending fabric ~src:node_id ~dst);
  let apply = match apply with Some f -> f | None -> fun _ -> () in
  let snapshot_of = match snapshot_of with Some f -> f | None -> fun () -> "" in
  let install_sm = match install_sm with Some f -> f | None -> fun _ -> () in
  let rec t =
    lazy
      {
        engine;
        fabric;
        server;
        peers;
        config;
        rng;
        trace;
        cpu;
        costs;
        election_timer =
          Des.Timer.create engine (fun () ->
              let t = Lazy.force t in
              if not t.paused then begin
                Netsim.Cpu.charge cpu ~cost:costs.Cost_model.timer_fire;
                if t.fo_on then new_cause t Telemetry.Cause.Election_timer;
                dispatch t Server.Election_timeout_fired
              end);
        broadcast_timer =
          Des.Timer.create engine (fun () ->
              let t = Lazy.force t in
              if not t.paused then begin
                Netsim.Cpu.charge cpu ~cost:costs.Cost_model.timer_fire;
                if t.fo_on then new_cause t Telemetry.Cause.Heartbeat_timer;
                dispatch t Server.Broadcast_due
              end);
        quorum_timer =
          Des.Timer.create engine (fun () ->
              let t = Lazy.force t in
              if not t.paused then begin
                if t.fo_on then new_cause t Telemetry.Cause.Internal;
                dispatch t Server.Quorum_check_due
              end);
        flush_timer =
          Des.Timer.create engine (fun () ->
              let t = Lazy.force t in
              if not t.paused then begin
                if t.fo_on then new_cause t Telemetry.Cause.Internal;
                dispatch t Server.Flush_due
              end);
        hb_timers = [||];
        waiters = Hashtbl.create 64;
        instrumented = Telemetry.Metrics.enabled metrics;
        fo = forensics;
        fo_on = Telemetry.Forensics.enabled forensics;
        cur_cause = 0;
        election_arm_cause = 0;
        m_sent =
          Telemetry.Metrics.counter metrics ~scope:"rpc" ~name:"sent"
            ~node:node_label ();
        m_recv =
          Telemetry.Metrics.counter metrics ~scope:"rpc" ~name:"recv"
            ~node:node_label ();
        m_hb_rtt =
          Telemetry.Metrics.timer metrics ~scope:"rpc" ~name:"hb_rtt_ms"
            ~node:node_label ~lo:0. ~hi:1000. ~bins:100 ();
        m_inflight =
          Telemetry.Metrics.gauge metrics ~scope:"raft"
            ~name:"appends_inflight" ~node:node_label ();
        m_batch =
          (* bins are batch sizes, not milliseconds *)
          Telemetry.Metrics.timer metrics ~scope:"raft"
            ~name:"append_batch_size" ~node:node_label ~lo:0. ~hi:1024.
            ~bins:64 ();
        apply;
        snapshot_of;
        install_sm;
        flush_delay;
        paused = false;
        incarnation = 0;
      }
  in
  let t = Lazy.force t in
  (* The receiver releases delivered payloads into its pool, so the
     second copy of a duplicated datagram must be a distinct record. *)
  Netsim.Fabric.set_dup_clone fabric Rpc.Pool.clone_for_dup;
  let fast_path =
    Netsim.Cpu.is_passthrough t.cpu && (not t.instrumented) && not t.fo_on
  in
  if fast_path then begin
    (* Steady-state delivery without metrics, forensics or a CPU model:
       one scratch event is reused for every message.  Safe because a
       passthrough CPU dispatches synchronously (nothing defers and reads
       the event later), [Server.handle] consumes the fields at entry,
       and passthrough backlog is always 0 so the datagram-overflow check
       cannot fire. *)
    let scratch =
      Server.Message { from = node_id; msg = Rpc.Timeout_now { term = 0 } }
    in
    Netsim.Fabric.set_handler fabric node_id (fun ~src msg ->
        if not t.paused then begin
          (match scratch with
          | Server.Message m ->
              m.from <- src;
              m.msg <- msg
          | _ -> assert false);
          dispatch t scratch
        end)
  end
  else
    Netsim.Fabric.set_handler fabric node_id (fun ~src msg ->
      if not t.paused then
        if datagram_overflow t msg then ()
        else begin
          if t.instrumented then begin
            Telemetry.Metrics.Counter.incr t.m_recv;
            (* Heartbeat echoes carry their send instant, so the leader
               observes the full heartbeat round-trip at delivery. *)
            match msg with
            | Rpc.Heartbeat_response { echo_sent_at; _ } ->
                Telemetry.Metrics.Timer.observe_ms t.m_hb_rtt
                  (Des.Time.to_ms_f
                     (Des.Time.diff (Des.Engine.now t.engine) echo_sent_at))
            | Rpc.Heartbeat _ | Rpc.Vote_request _ | Rpc.Vote_response _
            | Rpc.Append_request _ | Rpc.Append_response _
            | Rpc.Install_snapshot _ | Rpc.Install_snapshot_response _
            | Rpc.Timeout_now _ ->
                ()
          end;
          if t.fo_on then begin
            (* The sender's staged cause, surfaced by the fabric for the
               duration of this delivery: adopt it as our causal context
               (under a CPU cost model [execute] may defer the dispatch,
               in which case a later delivery can overwrite it — the
               forensics scenarios run without a cost model). *)
            t.cur_cause <- Netsim.Fabric.delivery_cause t.fabric;
            match msg with
            | Rpc.Vote_response { granted; pre_vote; _ } ->
                Telemetry.Forensics.record t.fo
                  ~at:(Des.Engine.now t.engine)
                  ~node:(Node_id.to_int node_id) ~term:(Server.term t.server)
                  ~cause:t.cur_cause ~parent:Telemetry.Cause.none
                  (Telemetry.Forensics.Vote
                     { from = Node_id.to_int src; granted; pre = pre_vote })
            | Rpc.Heartbeat _ | Rpc.Heartbeat_response _ | Rpc.Vote_request _
            | Rpc.Append_request _ | Rpc.Append_response _
            | Rpc.Install_snapshot _ | Rpc.Install_snapshot_response _
            | Rpc.Timeout_now _ ->
                ()
          end;
          Netsim.Cpu.execute t.cpu
            ~cost:
              (Cost_model.message_recv_cost t.costs
                 ~tuning_active:(Server.tuning_active t.server)
                 msg)
            (fun () ->
              if not t.paused then
                dispatch t (Server.Message { from = src; msg }))
        end);
  if t.fo_on then Netsim.Fabric.enable_cause_tracking fabric;
  t

let start t =
  if t.fo_on then new_cause t Telemetry.Cause.Internal;
  interpret_all t (Server.start t.server)

(* Fault-injection transitions root fresh causal chains: whatever the
   cluster does next — elections after a leader pause, catch-up after a
   resume — traces back to this record. *)
let forensics_fault t ev =
  if t.fo_on then begin
    new_cause t Telemetry.Cause.Fault;
    Telemetry.Forensics.record t.fo
      ~at:(Des.Engine.now t.engine)
      ~node:(Node_id.to_int (id t))
      ~term:(Server.term t.server)
      ~cause:t.cur_cause ~parent:Telemetry.Cause.none ev
  end

let submit t ~payload ~client_id ~seq ~on_result () =
  if t.paused || not (Types.is_leader (Server.role t.server)) then
    `Not_leader (Server.leader t.server)
  else begin
    Hashtbl.replace t.waiters (client_id, seq) on_result;
    if t.fo_on then new_cause t Telemetry.Cause.Client;
    Netsim.Cpu.execute t.cpu ~cost:t.costs.Cost_model.propose (fun () ->
        dispatch t (Server.Propose { payload; client_id; seq }));
    `Accepted
  end

let read t ~client_id ~seq ~on_result () =
  if t.paused || not (Types.is_leader (Server.role t.server)) then
    `Not_leader (Server.leader t.server)
  else begin
    Hashtbl.replace t.waiters (client_id, seq) on_result;
    if t.fo_on then new_cause t Telemetry.Cause.Client;
    Netsim.Cpu.execute t.cpu ~cost:t.costs.Cost_model.apply (fun () ->
        dispatch t (Server.Read { client_id; seq }));
    `Accepted
  end

let transfer_leadership t target =
  if t.paused || not (Types.is_leader (Server.role t.server)) then `Not_leader
  else begin
    if t.fo_on then new_cause t Telemetry.Cause.Internal;
    dispatch t (Server.Transfer_leadership target);
    `Ok
  end

let reconfigure t change =
  if t.paused || not (Types.is_leader (Server.role t.server)) then `Not_leader
  else begin
    if t.fo_on then new_cause t Telemetry.Cause.Internal;
    let actions, result =
      Server.reconfigure t.server ~now:(Des.Engine.now t.engine) change
    in
    interpret_all t actions;
    result
  end

let pause t =
  t.paused <- true;
  Netsim.Fabric.pause t.fabric (id t);
  forensics_fault t Telemetry.Forensics.Paused;
  Des.Mtrace.emit t.trace (Probe.Node_paused { id = id t })

let resume t =
  t.paused <- false;
  Netsim.Fabric.resume t.fabric (id t);
  forensics_fault t Telemetry.Forensics.Resumed;
  Des.Mtrace.emit t.trace (Probe.Node_resumed { id = id t });
  dispatch t Server.Restarted

let disarm_all t =
  Des.Timer.disarm t.election_timer;
  Des.Timer.disarm t.broadcast_timer;
  Des.Timer.disarm t.quorum_timer;
  Des.Timer.disarm t.flush_timer;
  Array.iter
        (function Some timer -> Des.Timer.disarm timer | None -> ())
        t.hb_timers

let crash t =
  t.paused <- true;
  Netsim.Fabric.pause t.fabric (id t);
  disarm_all t;
  (* Outstanding client requests die with the process. *)
  let pending = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.waiters [] in
  Hashtbl.reset t.waiters;
  List.iter (fun (_, k) -> k ~committed:false) pending;
  forensics_fault t Telemetry.Forensics.Paused;
  Des.Mtrace.emit t.trace (Probe.Node_paused { id = id t })

let restart t =
  let restore = Server.persisted t.server in
  (* A fresh PRNG substream keyed by the restart instant: deterministic,
     but not a replay of the pre-crash randomized-timeout draws. *)
  let rng = Stats.Rng.split_int t.rng (Des.Engine.now t.engine) in
  t.server <-
    Server.create ~restore
      ~pool:(Server.pool t.server)
      ~id:(id t) ~peers:t.peers ~config:t.config ~rng ();
  Server.set_instrument t.server t.instrumented;
  Server.set_congestion_probe t.server (fun dst ->
      Netsim.Fabric.pending t.fabric ~src:(id t) ~dst);
  t.incarnation <- t.incarnation + 1;
  (* Seed the state machine from the persisted snapshot; entries above
     the boundary are replayed as the leader re-teaches the commit
     point. *)
  (match restore.Server.snapshot with
  | Some (_, _, data) -> t.install_sm data
  | None -> ());
  t.paused <- false;
  Netsim.Fabric.resume t.fabric (id t);
  forensics_fault t Telemetry.Forensics.Resumed;
  Des.Mtrace.emit t.trace (Probe.Node_resumed { id = id t });
  interpret_all t (Server.start t.server)
