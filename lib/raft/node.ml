module Node_id = Netsim.Node_id

type t = {
  engine : Des.Engine.t;
  fabric : Rpc.message Netsim.Fabric.t;
  mutable server : Server.t;
  peers : Node_id.t list;
  config : Config.t;
  rng : Stats.Rng.t;
  trace : Probe.t Des.Mtrace.t;
  cpu : Netsim.Cpu.t;
  costs : Cost_model.t;
  election_timer : Des.Timer.t;
  broadcast_timer : Des.Timer.t;
  quorum_timer : Des.Timer.t;
  flush_timer : Des.Timer.t;
  hb_timers : Des.Timer.t Node_id.Table.t;
  waiters : (int * int, committed:bool -> unit) Hashtbl.t;
  apply : Log.entry -> unit;
  snapshot_of : unit -> string;
  install_sm : string -> unit;
  flush_delay : Des.Time.span;
  instrumented : bool;
  m_sent : Telemetry.Metrics.Counter.t;
  m_recv : Telemetry.Metrics.Counter.t;
  m_hb_rtt : Telemetry.Metrics.Timer.t;
  m_inflight : Telemetry.Metrics.Gauge.t;
  m_batch : Telemetry.Metrics.Timer.t;
  mutable paused : bool;
  mutable incarnation : int;
      (* bumped on every crash-recovery: volatile server state does not
         survive a restart, and observers (the invariant checker) must
         reset their volatile baselines when this changes *)
}

let id t = Server.id t.server
let server t = t.server
let cpu t = t.cpu
let is_paused t = t.paused
let incarnation t = t.incarnation

let rec dispatch t event =
  let actions = Server.handle t.server ~now:(Des.Engine.now t.engine) event in
  List.iter (interpret t) actions

and interpret t = function
  | Server.Send { dst; kind; msg } ->
      Telemetry.Metrics.Counter.incr t.m_sent;
      if t.instrumented then begin
        match msg with
        | Rpc.Append_request { entries; _ } when Array.length entries > 0 ->
            Telemetry.Metrics.Timer.observe_ms t.m_batch
              (float_of_int (Array.length entries));
            Telemetry.Metrics.Gauge.set_max t.m_inflight
              (float_of_int (Server.appends_inflight t.server))
        | Rpc.Append_request _ | Rpc.Vote_request _ | Rpc.Vote_response _
        | Rpc.Append_response _ | Rpc.Heartbeat _ | Rpc.Heartbeat_response _
        | Rpc.Install_snapshot _ | Rpc.Install_snapshot_response _
        | Rpc.Timeout_now _ ->
            ()
      end;
      Netsim.Cpu.charge t.cpu
        ~cost:
          (Cost_model.message_send_cost t.costs
             ~tuning_active:(Server.tuning_active t.server)
             msg);
      Replication.transmit t.fabric
        ~lanes:t.config.Config.priority_lanes
        ~src:(id t) ~dst kind msg
  | Server.Arm_election span -> Des.Timer.arm t.election_timer span
  | Server.Disarm_election -> Des.Timer.disarm t.election_timer
  | Server.Arm_heartbeat { peer; after } ->
      Des.Timer.arm (hb_timer t peer) after
  | Server.Arm_broadcast after -> Des.Timer.arm t.broadcast_timer after
  | Server.Arm_quorum_check after -> Des.Timer.arm t.quorum_timer after
  | Server.Disarm_heartbeats ->
      Des.Timer.disarm t.broadcast_timer;
      Node_id.Table.iter (fun _ timer -> Des.Timer.disarm timer) t.hb_timers
  | Server.Request_flush ->
      if not (Des.Timer.is_armed t.flush_timer) then
        Des.Timer.arm t.flush_timer t.flush_delay
  | Server.Commit entries ->
      Array.iter
        (fun (entry : Log.entry) ->
          Netsim.Cpu.charge t.cpu ~cost:t.costs.Cost_model.apply;
          t.apply entry;
          match entry.command with
          | Log.Noop | Log.Config _ -> ()
          | Log.Data { client_id; seq; _ } -> (
              match Hashtbl.find_opt t.waiters (client_id, seq) with
              | Some k ->
                  Hashtbl.remove t.waiters (client_id, seq);
                  k ~committed:true
              | None -> ()))
        entries
  | Server.Take_snapshot { upto } ->
      let data = t.snapshot_of () in
      dispatch t (Server.Snapshot_ready { upto; data })
  | Server.Install_sm { data; last_index = _ } -> t.install_sm data
  | Server.Serve_read { client_id; seq; read_index = _ } -> (
      match Hashtbl.find_opt t.waiters (client_id, seq) with
      | Some k ->
          Hashtbl.remove t.waiters (client_id, seq);
          k ~committed:true
      | None -> ())
  | Server.Reject_proposal { client_id; seq } -> (
      match Hashtbl.find_opt t.waiters (client_id, seq) with
      | Some k ->
          Hashtbl.remove t.waiters (client_id, seq);
          k ~committed:false
      | None -> ())
  | Server.Probe p -> Des.Mtrace.emit t.trace p

and hb_timer t peer =
  match Node_id.Table.find_opt t.hb_timers peer with
  | Some timer -> timer
  | None ->
      let timer =
        Des.Timer.create t.engine (fun () ->
            if not t.paused then begin
              Netsim.Cpu.charge t.cpu ~cost:t.costs.Cost_model.timer_fire;
              dispatch t (Server.Heartbeat_due peer)
            end)
      in
      Node_id.Table.add t.hb_timers peer timer;
      timer

(* Datagram heartbeats arrive on a bounded socket buffer: when the node's
   CPU cannot keep up, the buffer overflows and the datagram is silently
   lost (the cost Dynatune pays for taking heartbeats off the reliable
   stream).  A few milliseconds of backlog stands in for a ~200 KB UDP
   receive buffer. *)
let udp_drop_backlog = Des.Time.ms 4

let datagram_overflow t msg =
  (match (Server.config t.server).Config.heartbeat_transport with
  | Netsim.Transport.Datagram -> (
      match msg with
      | Rpc.Heartbeat _ | Rpc.Heartbeat_response _ ->
          Netsim.Cpu.backlog t.cpu > udp_drop_backlog
      | Rpc.Vote_request _ | Rpc.Vote_response _ | Rpc.Append_request _
      | Rpc.Append_response _ | Rpc.Install_snapshot _
      | Rpc.Install_snapshot_response _ | Rpc.Timeout_now _ ->
          false)
  | Netsim.Transport.Reliable -> false)

let create ~fabric ~trace ?cpu ?(costs = Cost_model.zero) ?apply ?snapshot_of
    ?install_sm ?(flush_delay = Des.Time.ms 1)
    ?(metrics = Telemetry.Metrics.noop) ?(joining = false) ~id:node_id ~peers
    ~config () =
  let engine = Netsim.Fabric.engine fabric in
  let node_label = "n" ^ string_of_int (Node_id.to_int node_id) in
  let cpu =
    match cpu with Some c -> c | None -> Netsim.Cpu.passthrough engine
  in
  let rng =
    Stats.Rng.split_int
      (Stats.Rng.split (Des.Engine.rng engine) "raft-node")
      (Node_id.to_int node_id)
  in
  let server =
    Server.create ~joining ~id:node_id ~peers ~config ~rng:(Stats.Rng.copy rng)
      ()
  in
  Server.set_instrument server (Telemetry.Metrics.enabled metrics);
  Server.set_congestion_probe server (fun dst ->
      Netsim.Fabric.pending fabric ~src:node_id ~dst);
  let apply = match apply with Some f -> f | None -> fun _ -> () in
  let snapshot_of = match snapshot_of with Some f -> f | None -> fun () -> "" in
  let install_sm = match install_sm with Some f -> f | None -> fun _ -> () in
  let rec t =
    lazy
      {
        engine;
        fabric;
        server;
        peers;
        config;
        rng;
        trace;
        cpu;
        costs;
        election_timer =
          Des.Timer.create engine (fun () ->
              if not (Lazy.force t).paused then begin
                Netsim.Cpu.charge cpu ~cost:costs.Cost_model.timer_fire;
                dispatch (Lazy.force t) Server.Election_timeout_fired
              end);
        broadcast_timer =
          Des.Timer.create engine (fun () ->
              if not (Lazy.force t).paused then begin
                Netsim.Cpu.charge cpu ~cost:costs.Cost_model.timer_fire;
                dispatch (Lazy.force t) Server.Broadcast_due
              end);
        quorum_timer =
          Des.Timer.create engine (fun () ->
              if not (Lazy.force t).paused then
                dispatch (Lazy.force t) Server.Quorum_check_due);
        flush_timer =
          Des.Timer.create engine (fun () ->
              if not (Lazy.force t).paused then
                dispatch (Lazy.force t) Server.Flush_due);
        hb_timers = Node_id.Table.create 8;
        waiters = Hashtbl.create 64;
        instrumented = Telemetry.Metrics.enabled metrics;
        m_sent =
          Telemetry.Metrics.counter metrics ~scope:"rpc" ~name:"sent"
            ~node:node_label ();
        m_recv =
          Telemetry.Metrics.counter metrics ~scope:"rpc" ~name:"recv"
            ~node:node_label ();
        m_hb_rtt =
          Telemetry.Metrics.timer metrics ~scope:"rpc" ~name:"hb_rtt_ms"
            ~node:node_label ~lo:0. ~hi:1000. ~bins:100 ();
        m_inflight =
          Telemetry.Metrics.gauge metrics ~scope:"raft"
            ~name:"appends_inflight" ~node:node_label ();
        m_batch =
          (* bins are batch sizes, not milliseconds *)
          Telemetry.Metrics.timer metrics ~scope:"raft"
            ~name:"append_batch_size" ~node:node_label ~lo:0. ~hi:1024.
            ~bins:64 ();
        apply;
        snapshot_of;
        install_sm;
        flush_delay;
        paused = false;
        incarnation = 0;
      }
  in
  let t = Lazy.force t in
  Netsim.Fabric.set_handler fabric node_id (fun ~src msg ->
      if not t.paused then
        if datagram_overflow t msg then ()
        else begin
          if t.instrumented then begin
            Telemetry.Metrics.Counter.incr t.m_recv;
            (* Heartbeat echoes carry their send instant, so the leader
               observes the full heartbeat round-trip at delivery. *)
            match msg with
            | Rpc.Heartbeat_response { echo_sent_at; _ } ->
                Telemetry.Metrics.Timer.observe_ms t.m_hb_rtt
                  (Des.Time.to_ms_f
                     (Des.Time.diff (Des.Engine.now t.engine) echo_sent_at))
            | Rpc.Heartbeat _ | Rpc.Vote_request _ | Rpc.Vote_response _
            | Rpc.Append_request _ | Rpc.Append_response _
            | Rpc.Install_snapshot _ | Rpc.Install_snapshot_response _
            | Rpc.Timeout_now _ ->
                ()
          end;
          Netsim.Cpu.execute t.cpu
            ~cost:
              (Cost_model.message_recv_cost t.costs
                 ~tuning_active:(Server.tuning_active t.server)
                 msg)
            (fun () ->
              if not t.paused then
                dispatch t (Server.Message { from = src; msg }))
        end);
  t

let start t = List.iter (interpret t) (Server.start t.server)

let submit t ~payload ~client_id ~seq ~on_result () =
  if t.paused || not (Types.is_leader (Server.role t.server)) then
    `Not_leader (Server.leader t.server)
  else begin
    Hashtbl.replace t.waiters (client_id, seq) on_result;
    Netsim.Cpu.execute t.cpu ~cost:t.costs.Cost_model.propose (fun () ->
        dispatch t (Server.Propose { payload; client_id; seq }));
    `Accepted
  end

let read t ~client_id ~seq ~on_result () =
  if t.paused || not (Types.is_leader (Server.role t.server)) then
    `Not_leader (Server.leader t.server)
  else begin
    Hashtbl.replace t.waiters (client_id, seq) on_result;
    Netsim.Cpu.execute t.cpu ~cost:t.costs.Cost_model.apply (fun () ->
        dispatch t (Server.Read { client_id; seq }));
    `Accepted
  end

let transfer_leadership t target =
  if t.paused || not (Types.is_leader (Server.role t.server)) then `Not_leader
  else begin
    dispatch t (Server.Transfer_leadership target);
    `Ok
  end

let reconfigure t change =
  if t.paused || not (Types.is_leader (Server.role t.server)) then `Not_leader
  else begin
    let actions, result =
      Server.reconfigure t.server ~now:(Des.Engine.now t.engine) change
    in
    List.iter (interpret t) actions;
    result
  end

let pause t =
  t.paused <- true;
  Netsim.Fabric.pause t.fabric (id t);
  Des.Mtrace.emit t.trace (Probe.Node_paused { id = id t })

let resume t =
  t.paused <- false;
  Netsim.Fabric.resume t.fabric (id t);
  Des.Mtrace.emit t.trace (Probe.Node_resumed { id = id t });
  dispatch t Server.Restarted

let disarm_all t =
  Des.Timer.disarm t.election_timer;
  Des.Timer.disarm t.broadcast_timer;
  Des.Timer.disarm t.quorum_timer;
  Des.Timer.disarm t.flush_timer;
  Node_id.Table.iter (fun _ timer -> Des.Timer.disarm timer) t.hb_timers

let crash t =
  t.paused <- true;
  Netsim.Fabric.pause t.fabric (id t);
  disarm_all t;
  (* Outstanding client requests die with the process. *)
  let pending = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.waiters [] in
  Hashtbl.reset t.waiters;
  List.iter (fun (_, k) -> k ~committed:false) pending;
  Des.Mtrace.emit t.trace (Probe.Node_paused { id = id t })

let restart t =
  let restore = Server.persisted t.server in
  (* A fresh PRNG substream keyed by the restart instant: deterministic,
     but not a replay of the pre-crash randomized-timeout draws. *)
  let rng = Stats.Rng.split_int t.rng (Des.Engine.now t.engine) in
  t.server <-
    Server.create ~restore ~id:(id t) ~peers:t.peers ~config:t.config ~rng ();
  Server.set_instrument t.server t.instrumented;
  Server.set_congestion_probe t.server (fun dst ->
      Netsim.Fabric.pending t.fabric ~src:(id t) ~dst);
  t.incarnation <- t.incarnation + 1;
  (* Seed the state machine from the persisted snapshot; entries above
     the boundary are replayed as the leader re-teaches the commit
     point. *)
  (match restore.Server.snapshot with
  | Some (_, _, data) -> t.install_sm data
  | None -> ());
  t.paused <- false;
  Netsim.Fabric.resume t.fabric (id t);
  Des.Mtrace.emit t.trace (Probe.Node_resumed { id = id t });
  List.iter (interpret t) (Server.start t.server)
