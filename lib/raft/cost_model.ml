type t = {
  heartbeat_send : Des.Time.span;
  heartbeat_recv : Des.Time.span;
  heartbeat_resp_recv : Des.Time.span;
  tuning_overhead : Des.Time.span;
  timer_fire : Des.Time.span;
  append_send : Des.Time.span;
  append_entry : Des.Time.span;
  append_recv : Des.Time.span;
  append_resp_recv : Des.Time.span;
  vote_msg : Des.Time.span;
  propose : Des.Time.span;
  apply : Des.Time.span;
}

let zero =
  {
    heartbeat_send = 0;
    heartbeat_recv = 0;
    heartbeat_resp_recv = 0;
    tuning_overhead = 0;
    timer_fire = 0;
    append_send = 0;
    append_entry = 0;
    append_recv = 0;
    append_resp_recv = 0;
    vote_msg = 0;
    propose = 0;
    apply = 0;
  }

let etcd_like =
  {
    heartbeat_send = Des.Time.us 140;
    heartbeat_recv = Des.Time.us 140;
    heartbeat_resp_recv = Des.Time.us 110;
    tuning_overhead = Des.Time.us 40;
    timer_fire = Des.Time.us 15;
    append_send = Des.Time.us 30;
    append_entry = Des.Time.us 25;
    append_recv = Des.Time.us 25;
    append_resp_recv = Des.Time.us 15;
    vote_msg = Des.Time.us 50;
    propose = Des.Time.us 160;
    apply = Des.Time.us 40;
  }

let tuning_extra t ~tuning_active = if tuning_active then t.tuning_overhead else 0

let message_recv_cost t ~tuning_active = function
  | Rpc.Heartbeat _ -> t.heartbeat_recv + tuning_extra t ~tuning_active
  | Rpc.Heartbeat_response _ ->
      t.heartbeat_resp_recv + tuning_extra t ~tuning_active
  | Rpc.Append_request { entries; _ } ->
      t.append_recv + (t.append_entry * Array.length entries)
  | Rpc.Append_response _ -> t.append_resp_recv
  | Rpc.Install_snapshot { data; _ } ->
      (* Snapshot transfer cost scales with the payload. *)
      t.append_recv + (t.append_entry * (1 + (String.length data / 256)))
  | Rpc.Install_snapshot_response _ -> t.append_resp_recv
  | Rpc.Vote_request _ | Rpc.Vote_response _ | Rpc.Timeout_now _ -> t.vote_msg

let message_send_cost t ~tuning_active = function
  | Rpc.Heartbeat _ -> t.heartbeat_send + tuning_extra t ~tuning_active
  | Rpc.Heartbeat_response _ -> 0
  | Rpc.Append_request { entries; _ } ->
      t.append_send + (t.append_entry * Array.length entries)
  | Rpc.Append_response _ -> 0
  | Rpc.Install_snapshot { data; _ } ->
      t.append_send + (t.append_entry * (1 + (String.length data / 256)))
  | Rpc.Install_snapshot_response _ -> 0
  | Rpc.Vote_request _ | Rpc.Vote_response _ | Rpc.Timeout_now _ -> 0
