(** The replicated log, with snapshot-based compaction.

    Indices are 1-based.  A snapshot boundary [(snapshot_index,
    snapshot_term)] replaces the committed prefix once the log is
    compacted: entries at or below the boundary are gone (their effect
    lives in the state-machine snapshot), and the boundary acts as the
    sentinel for consistency checks.  A fresh log has boundary [(0, 0)].

    The log enforces the Raft log-matching property at the append
    boundary: [try_append] verifies the predecessor entry and truncates
    conflicting suffixes before appending. *)

type change =
  | Add_learner of Netsim.Node_id.t
      (** join as a non-voting learner that receives replication only *)
  | Promote of Netsim.Node_id.t  (** grant a caught-up learner its vote *)
  | Remove of Netsim.Node_id.t  (** drop a voter or learner entirely *)
[@@deriving show, eq] [@@protocol]
(** A single-server membership change (Raft dissertation §4): each entry
    alters the configuration by exactly one server, which keeps the
    quorums of consecutive configurations overlapping.  [[@@protocol]]:
    matches over these constructors may not use a catch-all arm
    (bin/analyze.exe, protocol-wildcard). *)

type command =
  | Noop  (** the empty entry a new leader commits to establish its term *)
  | Data of { payload : string; client_id : int; seq : int }
  | Config of change
      (** a membership change, effective as soon as it is {e appended} *)
[@@deriving show, eq] [@@protocol]

type entry = { term : Types.term; index : Types.index; command : command }
[@@deriving show, eq]

type t

val create : unit -> t

val length : t -> int
(** Number of entries currently stored (after the snapshot boundary). *)

val mutations : t -> int
(** Counter bumped whenever stored entries are retroactively invalidated
    (suffix truncation, snapshot install).  Configuration state derived
    from a log scan is stale once this changes. *)

val last_index : t -> Types.index
val last_term : t -> Types.term

val snapshot_index : t -> Types.index
(** The compaction boundary; 0 when never compacted. *)

val snapshot_term : t -> Types.term
val first_available : t -> Types.index
(** Lowest index still present as an entry ([snapshot_index + 1]). *)

val term_at : t -> Types.index -> Types.term option
(** [Some] for the boundary and every stored entry; [None] beyond the
    last index {e or below the boundary} (compacted away). *)

val entry_at : t -> Types.index -> entry option

val append_new : t -> term:Types.term -> command -> entry
(** Leader-side append of a fresh entry at [last_index + 1]. *)

val try_append :
  t ->
  prev_index:Types.index ->
  prev_term:Types.term ->
  entries:entry array ->
  [ `Ok of Types.index  (** new last index covered by this append *)
  | `Conflict of Types.index  (** hint: retry from at most this index *) ]
(** Follower-side append with the AppendEntries consistency check.
    On success, conflicting suffixes are truncated and missing entries
    appended (duplicates of already-matching entries are ignored;
    entries below the snapshot boundary are treated as matching — they
    were committed before being compacted). *)

val compact : t -> upto:Types.index -> unit
(** Move the snapshot boundary to [upto], discarding the entries at or
    below it.  Only call for indices known committed and applied.
    Raises [Invalid_argument] if [upto > last_index]; indices at or
    below the current boundary are a no-op. *)

val install_snapshot : t -> index:Types.index -> term:Types.term -> unit
(** Replace the whole log with a received snapshot boundary (the
    follower-side effect of InstallSnapshot): all entries are dropped
    and the boundary set to [(index, term)]. *)

val slice : t -> from:Types.index -> max:int -> entry array
(** Up to [max] entries starting at [from] (inclusive), as a fresh array
    copied straight out of contiguous storage (a single [Array.sub]; the
    empty slice allocates nothing).  Entries below [first_available]
    cannot be served and are silently skipped — use {!snapshot_index} to
    detect that a snapshot is needed instead. *)

val capacity : t -> int
(** Size of the backing array.  Exposed so tests can observe that
    truncation and compaction release storage: capacity shrinks once
    occupancy falls below a quarter, and freed slots no longer pin their
    old entries. *)

val up_to_date : t -> last_index:Types.index -> last_term:Types.term -> bool
(** Raft's voting rule: is a candidate log described by
    [(last_index, last_term)] at least as complete as ours? *)
