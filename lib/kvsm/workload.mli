(** The RPS-ramp workload of the peak-throughput experiment (Fig 5).

    Offered load is increased level by level (the paper uses +1000 req/s
    steps held for 10 s each); each level runs a fresh open-loop client
    and reports achieved throughput and latency.  Peak throughput is the
    highest achieved rate before the service saturates. *)

type level_report = {
  offered_rps : float;  (** configured arrival rate *)
  offered : int;  (** arrivals during the window *)
  completed : int;  (** commits during the window *)
  throughput_rps : float;  (** completed / window *)
  mean_latency_ms : float;  (** nan when nothing completed *)
  p50_latency_ms : float;
  p99_latency_ms : float;
  redirected : int;  (** [`Not_leader] replies (hops when routing) *)
  abandoned : int;  (** requests dropped after exhausting redirects *)
}

val run_ramp :
  engine:Des.Engine.t ->
  target:Client.target ->
  ?route:(Netsim.Node_id.t -> Client.target) ->
  rates:float list ->
  hold:Des.Time.span ->
  ?client_rtt:Des.Time.span ->
  unit ->
  level_report list
(** Run the levels back to back on the engine (which is advanced by
    [hold] per level) and report one row per level.  With [route] each
    level's client follows leader hints (see {!Client.create}). *)

val peak_throughput : level_report list -> float
(** Highest achieved throughput across levels; [0.] on empty input. *)

val saturation_rate : level_report list -> float option
(** The first offered rate whose achieved throughput falls short of the
    offer by more than 5% — the knee of the curve. *)

val pp_report : Format.formatter -> level_report -> unit
