type t = { table : (string, string) Hashtbl.t; mutable applied : int }

type result =
  | Value of string option
  | Written
  | Deleted of bool
  | Swapped of bool
  | Invalid of string

let create () = { table = Hashtbl.create 256; applied = 0 }
let size t = Hashtbl.length t.table
let find t key = Hashtbl.find_opt t.table key

let apply_command t command =
  t.applied <- t.applied + 1;
  match command with
  | Command.Put { key; value } ->
      Hashtbl.replace t.table key value;
      Written
  | Command.Get key -> Value (Hashtbl.find_opt t.table key)
  | Command.Delete key ->
      let existed = Hashtbl.mem t.table key in
      if existed then Hashtbl.remove t.table key;
      Deleted existed
  | Command.Cas { key; expect; value } ->
      let current = Hashtbl.find_opt t.table key in
      if current = expect then begin
        Hashtbl.replace t.table key value;
        Swapped true
      end
      else Swapped false

let apply_entry t (entry : Raft.Log.entry) =
  match entry.command with
  | Raft.Log.Noop | Raft.Log.Config _ -> None
  | Raft.Log.Data { payload; _ } -> (
      match Command.of_payload payload with
      | Ok command -> Some (apply_command t command)
      | Error msg ->
          t.applied <- t.applied + 1;
          Some (Invalid msg))

let applied_count t = t.applied

(* Snapshot format: "<applied>\n" then each binding as two
   length-prefixed fields "<len>:<bytes>". *)
let serialize t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (string_of_int t.applied);
  Buffer.add_char buf '\n';
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [] in
  List.iter
    (fun (k, v) ->
      let field s =
        Buffer.add_string buf (string_of_int (String.length s));
        Buffer.add_char buf ':';
        Buffer.add_string buf s
      in
      field k;
      field v)
    (List.sort compare bindings);
  Buffer.contents buf

let of_serialized s =
  match String.index_opt s '\n' with
  | None -> Error "missing applied-count header"
  | Some nl -> (
      match int_of_string_opt (String.sub s 0 nl) with
      | None -> Error "malformed applied count"
      | Some applied ->
          let t = { table = Hashtbl.create 256; applied } in
          let parse_field pos =
            match String.index_from_opt s pos ':' with
            | None -> Error "missing length delimiter"
            | Some colon -> (
                match int_of_string_opt (String.sub s pos (colon - pos)) with
                | Some len when len >= 0 && colon + 1 + len <= String.length s
                  ->
                    Ok (String.sub s (colon + 1) len, colon + 1 + len)
                | Some _ | None -> Error "malformed field length")
          in
          let rec load pos =
            if pos = String.length s then Ok t
            else
              match parse_field pos with
              | Error e -> Error e
              | Ok (key, pos) -> (
                  match parse_field pos with
                  | Error e -> Error e
                  | Ok (value, pos) ->
                      Hashtbl.replace t.table key value;
                      load pos)
          in
          load (nl + 1))

let state_digest t =
  let bindings = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.table [] in
  let sorted = List.sort compare bindings in
  let buf = Buffer.create 256 in
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf k;
      Buffer.add_char buf '\x00';
      Buffer.add_string buf v;
      Buffer.add_char buf '\x01')
    sorted;
  Digest.to_hex (Digest.string (Buffer.contents buf))
