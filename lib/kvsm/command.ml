type t =
  | Put of { key : string; value : string }
  | Get of string
  | Delete of string
  | Cas of { key : string; expect : string option; value : string }
[@@protocol]
(* [@@protocol]: matches over these constructors may not use a
   catch-all arm (bin/analyze.exe, protocol-wildcard rule). *)

let equal a b =
  match (a, b) with
  | Put a, Put b -> a.key = b.key && a.value = b.value
  | Get a, Get b -> a = b
  | Delete a, Delete b -> a = b
  | Cas a, Cas b -> a.key = b.key && a.expect = b.expect && a.value = b.value
  | (Put _ | Get _ | Delete _ | Cas _), _ -> false

let pp ppf = function
  | Put { key; value } -> Format.fprintf ppf "PUT %s=%s" key value
  | Get key -> Format.fprintf ppf "GET %s" key
  | Delete key -> Format.fprintf ppf "DEL %s" key
  | Cas { key; expect; value } ->
      Format.fprintf ppf "CAS %s:%s->%s" key
        (Option.value ~default:"<absent>" expect)
        value

(* Encoding: TAG fields..., each field as <len>:<bytes>. *)

let field buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let to_payload t =
  let buf = Buffer.create 32 in
  (match t with
  | Put { key; value } ->
      Buffer.add_char buf 'P';
      field buf key;
      field buf value
  | Get key ->
      Buffer.add_char buf 'G';
      field buf key
  | Delete key ->
      Buffer.add_char buf 'D';
      field buf key
  | Cas { key; expect; value } -> (
      match expect with
      | Some e ->
          Buffer.add_char buf 'C';
          field buf key;
          field buf e;
          field buf value
      | None ->
          Buffer.add_char buf 'N';
          field buf key;
          field buf value));
  Buffer.contents buf

let parse_field s pos =
  match String.index_from_opt s pos ':' with
  | None -> Error "missing length delimiter"
  | Some colon -> (
      match int_of_string_opt (String.sub s pos (colon - pos)) with
      | None -> Error "malformed length"
      | Some len when len < 0 || colon + 1 + len > String.length s ->
          Error "length out of range"
      | Some len -> Ok (String.sub s (colon + 1) len, colon + 1 + len))

let ( let* ) = Result.bind

let of_payload s =
  if s = "" then Error "empty payload"
  else
    let finish v pos =
      if pos = String.length s then Ok v else Error "trailing bytes"
    in
    match s.[0] with
    | 'P' ->
        let* key, pos = parse_field s 1 in
        let* value, pos = parse_field s pos in
        finish (Put { key; value }) pos
    | 'G' ->
        let* key, pos = parse_field s 1 in
        finish (Get key) pos
    | 'D' ->
        let* key, pos = parse_field s 1 in
        finish (Delete key) pos
    | 'C' ->
        let* key, pos = parse_field s 1 in
        let* expect, pos = parse_field s pos in
        let* value, pos = parse_field s pos in
        finish (Cas { key; expect = Some expect; value }) pos
    | 'N' ->
        let* key, pos = parse_field s 1 in
        let* value, pos = parse_field s pos in
        finish (Cas { key; expect = None; value }) pos
    | c -> Error (Printf.sprintf "unknown tag %C" c)
