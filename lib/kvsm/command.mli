(** Commands of the replicated key-value service (the etcd role in the
    paper's evaluation).

    Commands are serialized into the opaque payload carried by Raft log
    entries; the encoding is a simple length-prefixed text format so logs
    stay printable and decoding failures are detectable. *)

type t =
  | Put of { key : string; value : string }
  | Get of string
      (** reads are replicated too (linearizable reads via the log) *)
  | Delete of string
  | Cas of { key : string; expect : string option; value : string }
      (** compare-and-swap: succeeds iff the current value equals
          [expect] ([None] = key absent) *)
[@@protocol]
(** [[@@protocol]]: matches over these constructors may not use a
    catch-all arm (bin/analyze.exe, protocol-wildcard rule). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val to_payload : t -> string
val of_payload : string -> (t, string) result
(** Inverse of [to_payload]; [Error] describes the malformation. *)
