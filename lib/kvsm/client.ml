type submit_result = [ `Accepted | `Not_leader of Netsim.Node_id.t option ]

type target =
  payload:string ->
  client_id:int ->
  seq:int ->
  on_result:(committed:bool -> unit) ->
  submit_result

type t = {
  engine : Des.Engine.t;
  target : target;
  client_id : int;
  rate : float;
  value : string;
  client_rtt : Des.Time.span;
  route : (Netsim.Node_id.t -> target) option;
  max_redirects : int;
  redirect_backoff : Des.Time.span;
  rng : Stats.Rng.t;
  mutable running : bool;
  mutable seq : int;
  mutable offered : int;
  mutable completed : int;
  mutable rejected : int;
  mutable redirected : int;
  mutable abandoned : int;
  mutable latencies : float list; (* ms, newest first *)
}

let create ~engine ~target ~client_id ~rate ?(value_size = 64)
    ?(client_rtt = 0) ?route ?(max_redirects = 3)
    ?(redirect_backoff = Des.Time.ms 1) () =
  if rate <= 0. then invalid_arg "Client.create: rate must be positive";
  if max_redirects < 0 then
    invalid_arg "Client.create: max_redirects must be non-negative";
  {
    engine;
    target;
    client_id;
    rate;
    value = String.make value_size 'v';
    client_rtt;
    route;
    max_redirects;
    redirect_backoff;
    rng =
      Stats.Rng.split_int
        (Stats.Rng.split (Des.Engine.rng engine) "kv-client")
        client_id;
    running = false;
    seq = 0;
    offered = 0;
    completed = 0;
    rejected = 0;
    redirected = 0;
    abandoned = 0;
    latencies = [];
  }

let issue t =
  let seq = t.seq in
  t.seq <- seq + 1;
  t.offered <- t.offered + 1;
  let key = Printf.sprintf "c%d-k%d" t.client_id (seq mod 1024) in
  let payload =
    Command.to_payload (Command.Put { key; value = t.value })
  in
  let sent_at = Des.Engine.now t.engine in
  let on_result ~committed =
    if committed then begin
      t.completed <- t.completed + 1;
      (* Latency runs from the {e first} send, so redirect hops are
         charged to the request that needed them. *)
      let elapsed =
        Des.Time.diff (Des.Engine.now t.engine) sent_at + t.client_rtt
      in
      t.latencies <- Des.Time.to_ms_f elapsed :: t.latencies
    end
    else t.rejected <- t.rejected + 1
  in
  let rec attempt ~via ~hops =
    match via ~payload ~client_id:t.client_id ~seq ~on_result with
    | `Accepted -> ()
    | `Not_leader hint -> (
        t.redirected <- t.redirected + 1;
        match (t.route, hint) with
        | Some route, Some next when hops < t.max_redirects ->
            ignore
              (Des.Engine.schedule_after t.engine t.redirect_backoff
                 (fun () -> attempt ~via:(route next) ~hops:(hops + 1))
                : Des.Engine.handle)
        | _ -> t.abandoned <- t.abandoned + 1)
  in
  attempt ~via:t.target ~hops:0

let rec schedule_next t =
  let gap = Stats.Dist.exponential t.rng ~rate:t.rate in
  ignore
    (Des.Engine.schedule_after t.engine (Des.Time.of_sec_f gap) (fun () ->
         if t.running then begin
           issue t;
           schedule_next t
         end)
      : Des.Engine.handle)

let start t =
  if not t.running then begin
    t.running <- true;
    schedule_next t
  end

let stop t = t.running <- false
let offered t = t.offered
let completed t = t.completed
let rejected t = t.rejected
let redirected t = t.redirected
let abandoned t = t.abandoned
let latencies_ms t = List.rev t.latencies
