type level_report = {
  offered_rps : float;
  offered : int;
  completed : int;
  throughput_rps : float;
  mean_latency_ms : float;
  p50_latency_ms : float;
  p99_latency_ms : float;
  redirected : int;
  abandoned : int;
}

let run_level ~engine ~target ?route ~rate ~hold ~client_rtt ~client_id () =
  let client =
    Client.create ~engine ~target ~client_id ~rate ?client_rtt:(Some client_rtt)
      ?route ()
  in
  Client.start client;
  Des.Engine.run_for engine hold;
  Client.stop client;
  let latencies = Stats.Summary.of_list (Client.latencies_ms client) in
  let window = Des.Time.to_sec_f hold in
  {
    offered_rps = rate;
    offered = Client.offered client;
    completed = Client.completed client;
    throughput_rps = float_of_int (Client.completed client) /. window;
    mean_latency_ms = Stats.Summary.mean latencies;
    p50_latency_ms = Stats.Summary.percentile latencies 50.;
    p99_latency_ms = Stats.Summary.percentile latencies 99.;
    redirected = Client.redirected client;
    abandoned = Client.abandoned client;
  }

let run_ramp ~engine ~target ?route ~rates ~hold ?(client_rtt = 0) () =
  List.mapi
    (fun i rate ->
      run_level ~engine ~target ?route ~rate ~hold ~client_rtt
        ~client_id:(i + 1) ())
    rates

let peak_throughput reports =
  List.fold_left (fun acc r -> Stdlib.max acc r.throughput_rps) 0. reports

let saturation_rate reports =
  List.find_map
    (fun r ->
      if r.throughput_rps < 0.95 *. r.offered_rps then Some r.offered_rps
      else None)
    reports

let pp_report ppf r =
  Format.fprintf ppf
    "offered=%8.0f rps achieved=%8.1f rps latency mean=%7.2fms p50=%7.2fms \
     p99=%7.2fms"
    r.offered_rps r.throughput_rps r.mean_latency_ms r.p50_latency_ms
    r.p99_latency_ms
