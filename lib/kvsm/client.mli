(** An open-loop client: requests arrive at a configured rate regardless
    of completions (the load model of the paper's peak-throughput
    experiment, Section IV-B2).

    The client is decoupled from the cluster by a [target] function —
    usually a wrapper that finds the current leader and calls
    {!Raft.Node.submit}. *)

type submit_result = [ `Accepted | `Not_leader of Netsim.Node_id.t option ]

type target =
  payload:string ->
  client_id:int ->
  seq:int ->
  on_result:(committed:bool -> unit) ->
  submit_result
(** How the client injects a request into the service. *)

type t

val create :
  engine:Des.Engine.t ->
  target:target ->
  client_id:int ->
  rate:float ->
  ?value_size:int ->
  ?client_rtt:Des.Time.span ->
  ?route:(Netsim.Node_id.t -> target) ->
  ?max_redirects:int ->
  ?redirect_backoff:Des.Time.span ->
  unit ->
  t
(** A stopped client issuing [Put] requests at [rate] per second with
    exponential inter-arrival gaps.  [client_rtt] is added to every
    recorded latency (the client→leader network round trip, which the
    simulation fabric does not carry).  Requires [rate > 0.].

    With [route], the client follows leader hints: a [`Not_leader (Some
    hint)] reply re-submits the request to [route hint] after
    [redirect_backoff] (default 1 ms), at most [max_redirects] times per
    request (default 3; must be non-negative).  Latency still runs from
    the first send.  A request whose reply carries no hint, or that
    exhausts the hop budget, is dropped and counted in {!abandoned}.
    Without [route] (the default) behaviour is unchanged: every
    [`Not_leader] is terminal. *)

val start : t -> unit
val stop : t -> unit
(** Stop generating arrivals; outstanding requests may still complete. *)

(** {2 Counters} *)

val offered : t -> int
(** Requests submitted (arrival events). *)

val completed : t -> int
(** Requests committed. *)

val rejected : t -> int
(** Proposals that lost leadership mid-flight. *)

val redirected : t -> int
(** [`Not_leader] replies received (one per hop when following
    redirects). *)

val abandoned : t -> int
(** Requests dropped after a hint-less [`Not_leader] or an exhausted
    redirect budget. *)

val latencies_ms : t -> float list
(** Commit latencies (ms) of completed requests, in completion order. *)
