(** Leader-side per-follower state (the tuning half that runs on the
    leader).

    For each follower the leader (a) allocates sequential heartbeat ids,
    (b) stamps heartbeats with its local send time, (c) computes the RTT
    when the echo comes back and forwards that measurement to the follower
    in the next heartbeat, and (d) applies the [h] the follower piggybacks
    in its response as the sending interval toward that follower
    (Steps 0 and 3 of Section III-B).

    RTT computation uses only the leader's clock via the echoed timestamp,
    so it is robust to reordering, loss and clock skew (Section
    III-C1). *)

type t

val create : Config.t -> t

val next_id : t -> int
(** Allocate the sequential id for the next heartbeat on this path. *)

val take_rtt : t -> Des.Time.span option
(** Consume the pending RTT measurement (each measurement is shipped
    exactly once, in the heartbeat after its echo arrived).  Returns the
    stored option value itself, so shipping it allocates nothing. *)

val on_response :
  t -> now:Des.Time.t -> echo_sent_at:Des.Time.t -> tuned_h:Des.Time.span option -> unit
(** Process a heartbeat response: compute the RTT from the echoed send
    time and stash it for the next heartbeat; apply the follower's tuned
    [h] (clamped below by [min_heartbeat_interval]) as the new sending
    interval.  Replies whose echoed timestamp is in the future (clock
    anomaly) are ignored. *)

val interval : t -> Des.Time.span
(** Current heartbeat sending interval toward this follower. *)

val last_rtt : t -> Des.Time.span option
(** Most recently measured RTT (shipped or not). *)

val sent_count : t -> int
(** Heartbeats stamped so far (= the id of the next heartbeat). *)

val reset : t -> unit
(** Forget measurements and return the interval to the default (used on
    leadership change). *)
