type t = {
  config : Config.t;
  mutable next_id : int;
  mutable pending_rtt : Des.Time.span option;
  mutable last_rtt : Des.Time.span option;
  mutable interval : Des.Time.span;
}

let create (config : Config.t) =
  {
    config;
    next_id = 0;
    pending_rtt = None;
    last_rtt = None;
    interval = config.default_heartbeat_interval;
  }

let next_id t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

(* Hands over the stored [Some rtt] box itself — the caller ships it in
   the next heartbeat without re-boxing. *)
let take_rtt t =
  let rtt = t.pending_rtt in
  t.pending_rtt <- None;
  rtt

let on_response t ~now ~echo_sent_at ~tuned_h =
  if echo_sent_at <= now then begin
    let rtt = Des.Time.diff now echo_sent_at in
    t.pending_rtt <- Some rtt;
    t.last_rtt <- Some rtt
  end;
  match tuned_h with
  | Some h ->
      t.interval <-
        Des.Time.max_span t.config.min_heartbeat_interval h
  | None -> ()

let interval t = t.interval
let last_rtt t = t.last_rtt
let sent_count t = t.next_id

let reset t =
  t.next_id <- 0;
  t.pending_rtt <- None;
  t.last_rtt <- None;
  t.interval <- t.config.default_heartbeat_interval
