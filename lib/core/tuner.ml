type phase = Warming | Tuned

type rtt_backend =
  | Window of Rtt_estimator.t
  | Smoothed of Ewma_estimator.t

type t = {
  config : Config.t;
  rtt : rtt_backend;
  loss : Loss_estimator.t;
  (* Derived values are queried on every heartbeat (to arm the election
     timer and pick the piggybacked h) but change only when a sample is
     recorded, so they are cached behind a dirty flag.  The cached
     numbers are exactly what the direct computation would produce —
     recomputing them eagerly would give bit-identical traces, just three
     O(window) statistics passes per heartbeat instead of one. *)
  mutable dirty : bool;
  mutable cached_et : Des.Time.span;
  mutable cached_k : int;
  mutable cached_h : Des.Time.span;
}

let create config =
  match Config.validate config with
  | Error msg -> invalid_arg ("Tuner.create: " ^ msg)
  | Ok config ->
      {
        config;
        rtt =
          (match config.rtt_estimator with
          | Config.Sliding_window ->
              Window
                (Rtt_estimator.create ~min_size:config.min_list_size
                   ~max_size:config.max_list_size)
          | Config.Ewma alpha ->
              Smoothed
                (Ewma_estimator.create ~alpha
                   ~min_samples:config.min_list_size ()));
        loss =
          Loss_estimator.create ~min_size:config.min_list_size
            ~max_size:config.max_list_size;
        dirty = true;
        cached_et = config.default_election_timeout;
        cached_k = 1;
        cached_h = config.default_heartbeat_interval;
      }

let config t = t.config

let rtt_warmed t =
  match t.rtt with
  | Window w -> Rtt_estimator.warmed_up w
  | Smoothed e -> Ewma_estimator.warmed_up e

let rtt_observe t sample =
  match t.rtt with
  | Window w -> Rtt_estimator.observe w sample
  | Smoothed e -> Ewma_estimator.observe e sample

let rtt_et t ~s =
  match t.rtt with
  | Window w -> Rtt_estimator.election_timeout w ~s
  | Smoothed e -> Ewma_estimator.election_timeout e ~s

let phase t =
  if rtt_warmed t && Loss_estimator.warmed_up t.loss then Tuned else Warming

let observe_heartbeat t ~hb_id ~rtt =
  (match Loss_estimator.observe t.loss hb_id with
  | `Duplicate -> ()
  | `Recorded -> (
      t.dirty <- true;
      match rtt with
      | Some sample -> rtt_observe t sample
      | None -> ()))

let required_heartbeats_for ~p ~x =
  if p <= 0. then 1
  else if p >= 1. then max_int
  else
    (* 1 - p^K >= x  ⟺  K >= log_p(1 - x); both logs are negative. *)
    let k = log (1. -. x) /. log p in
    Stdlib.max 1 (int_of_float (ceil k))

let compute_election_timeout t =
  match (phase t, rtt_et t ~s:t.config.safety_factor) with
  | Tuned, Some et ->
      Des.Time.clamp et ~lo:t.config.min_election_timeout
        ~hi:t.config.max_election_timeout
  | (Warming | Tuned), _ -> t.config.default_election_timeout

let loss_rate t = Loss_estimator.loss_rate t.loss

let compute_required_heartbeats t ~et =
  match phase t with
  | Warming -> 1
  | Tuned ->
      let p = loss_rate t in
      let k = required_heartbeats_for ~p ~x:t.config.arrival_probability in
      (* K beyond Et / min_h cannot be honoured; clamp so h stays above
         its floor. *)
      let cap = Stdlib.max 1 (et / t.config.min_heartbeat_interval) in
      Stdlib.min k cap

let compute_heartbeat_interval t ~et ~k =
  match phase t with
  | Warming -> t.config.default_heartbeat_interval
  | Tuned -> Des.Time.max_span t.config.min_heartbeat_interval (et / k)

let refresh t =
  if t.dirty then begin
    let et = compute_election_timeout t in
    let k = compute_required_heartbeats t ~et in
    t.cached_et <- et;
    t.cached_k <- k;
    t.cached_h <- compute_heartbeat_interval t ~et ~k;
    t.dirty <- false
  end

let election_timeout t =
  refresh t;
  t.cached_et

let required_heartbeats t =
  refresh t;
  t.cached_k

let heartbeat_interval t =
  refresh t;
  t.cached_h

let rtt_mean t =
  match t.rtt with
  | Window w -> Rtt_estimator.mean w
  | Smoothed e -> Ewma_estimator.mean e

let rtt_std t =
  match t.rtt with
  | Window w -> Rtt_estimator.std w
  | Smoothed e -> Ewma_estimator.deviation e

let samples t =
  match t.rtt with
  | Window w -> Rtt_estimator.length w
  | Smoothed e -> Ewma_estimator.length e

let reset t =
  (match t.rtt with
  | Window w -> Rtt_estimator.clear w
  | Smoothed e -> Ewma_estimator.clear e);
  Loss_estimator.clear t.loss;
  t.dirty <- true

let pp ppf t =
  let phase_str = match phase t with Warming -> "warming" | Tuned -> "tuned" in
  Format.fprintf ppf
    "phase=%s n=%d rtt=%.1f±%.1fms p=%.3f K=%d Et=%a h=%a" phase_str
    (samples t)
    (Des.Time.to_ms_f (rtt_mean t))
    (Des.Time.to_ms_f (rtt_std t))
    (loss_rate t) (required_heartbeats t) Des.Time.pp_ms (election_timeout t)
    Des.Time.pp_ms (heartbeat_interval t)
