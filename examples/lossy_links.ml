(* Lossy links: watch Dynatune trade heartbeat rate against delivery
   assurance as packet loss rises and falls (a miniature of Fig 7a).

     dune exec examples/lossy_links.exe *)

module Cluster = Harness.Cluster
module Monitor = Harness.Monitor

let printf = Format.printf

let () =
  let hold = Des.Time.sec 15 in
  let losses = [ 0.; 0.1; 0.2; 0.3; 0.2; 0.1; 0. ] in
  let conditions =
    Netsim.Conditions.loss_staircase
      ~base:(Netsim.Conditions.profile ~rtt_ms:200. ~jitter:0.02 ())
      ~hold ~losses
  in
  let cluster =
    Cluster.create ~seed:9L ~n:5 ~config:(Raft.Config.dynatune ()) ~conditions
      ()
  in
  Cluster.start cluster;
  let leader =
    match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
    | Some l -> l
    | None -> failwith "no leader elected"
  in
  let follower =
    List.find
      (fun id -> not (Netsim.Node_id.equal id (Raft.Node.id leader)))
      (Cluster.node_ids cluster)
  in
  printf
    "RTT fixed at 200ms; loss staircase %s; watching the leader's heartbeat \
     interval toward %a@."
    (String.concat " -> "
       (List.map (fun l -> Printf.sprintf "%.0f%%" (100. *. l)) losses))
    Netsim.Node_id.pp follower;
  printf "@.  %6s %8s %12s %8s %14s@." "t(s)" "loss" "h (ms)" "K"
    "heartbeats/s";
  let duration = List.length losses * hold in
  let series =
    Monitor.watch cluster ~every:(Des.Time.sec 3) ~duration
      ~probes:
        [
          {
            Monitor.name = "h";
            read = (fun c -> Monitor.gap (Monitor.leader_h_ms c ~follower));
          };
          {
            Monitor.name = "k";
            read =
              (fun c ->
                match
                  Raft.Server.tuner
                    (Raft.Node.server (Cluster.node c follower))
                with
                | Some tuner ->
                    float_of_int (Dynatune.Tuner.required_heartbeats tuner)
                | None -> nan);
          };
        ]
  in
  let h = List.assoc "h" series and k = List.assoc "k" series in
  List.iter2
    (fun (t, h_ms) (_, k_now) ->
      let loss =
        (Netsim.Conditions.at conditions (Des.Time.of_sec_f t))
          .Netsim.Conditions.loss
      in
      printf "  %6.0f %7.0f%% %12.1f %8.0f %14.1f@." t (100. *. loss) h_ms
        k_now
        (if h_ms > 0. then 1000. /. h_ms else nan))
    (Stats.Timeseries.points h) (Stats.Timeseries.points k);
  printf
    "@.more loss -> more heartbeats needed for the same assurance (K = \
     ceil(log_p(1-x))) -> smaller h;@.as the network heals, Dynatune backs \
     off to save CPU and bandwidth.@."
