(* Fluctuating WAN: watch Dynatune's election timeout follow the RTT as
   the network degrades and recovers (a miniature of Fig 6a).

     dune exec examples/fluctuating_wan.exe *)

module Cluster = Harness.Cluster
module Monitor = Harness.Monitor

let printf = Format.printf

let () =
  (* RTT climbs 50 -> 250 ms and back, 10 s per step. *)
  let hold = Des.Time.sec 10 in
  let up = List.init 5 (fun i -> 50. +. (50. *. float_of_int i)) in
  let rtts = up @ List.tl (List.rev up) in
  let conditions =
    Netsim.Conditions.rtt_staircase
      ~base:(Netsim.Conditions.profile ~rtt_ms:50. ~jitter:0.05 ())
      ~hold ~rtts_ms:rtts
  in
  let cluster =
    Cluster.create ~seed:3L ~n:5 ~config:(Raft.Config.dynatune ()) ~conditions
      ()
  in
  Cluster.start cluster;
  (match Cluster.await_leader cluster ~timeout:(Des.Time.sec 30) with
  | Some _ -> ()
  | None -> failwith "no leader elected");

  printf "RTT staircase: %s ms, %.0fs per step@."
    (String.concat " -> " (List.map (fun r -> Printf.sprintf "%.0f" r) rtts))
    (Des.Time.to_sec_f hold);
  printf "@.  %6s %10s %22s %14s@." "t(s)" "RTT(ms)" "majority randTO (ms)"
    "leader?";
  let duration = List.length rtts * hold in
  let series =
    Monitor.watch cluster ~every:(Des.Time.sec 2) ~duration
      ~probes:
        [
          {
            Monitor.name = "rto";
            read = (fun c -> Monitor.gap (Monitor.majority_randomized_ms c));
          };
          {
            Monitor.name = "leader";
            read = (fun c -> if Monitor.has_leader c then 1. else 0.);
          };
        ]
  in
  let rto = List.assoc "rto" series and led = List.assoc "leader" series in
  List.iter2
    (fun (t, v) (_, l) ->
      let rtt =
        (Netsim.Conditions.at conditions (Des.Time.of_sec_f t))
          .Netsim.Conditions.rtt_ms
      in
      let bar =
        String.make (Stdlib.max 1 (int_of_float (v /. 25.))) '#'
      in
      printf "  %6.0f %10.0f %10.0f %s%s@." t rtt v
        (if l > 0. then "" else "[NO LEADER] ")
        bar)
    (Stats.Timeseries.points rto)
    (Stats.Timeseries.points led);
  printf
    "@.the timeout hugs the RTT curve: fast detection at low RTT, safety at \
     high RTT.@.static Raft would sit at ~1500ms throughout; Raft-Low \
     (Et=100ms) would lose the leader once RTT approaches 100ms.@."
