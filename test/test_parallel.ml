(* Domain pool and campaign sharding: result ordering, failure handling,
   shutdown discipline, and the determinism contract of sharded
   campaigns. *)

module Pool = Parallel.Pool
module Campaign = Parallel.Campaign

let with_pool ~domains f =
  let pool = Pool.create ~domains in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let test_pool_map_in_order () =
  with_pool ~domains:4 (fun pool ->
      let xs = List.init 1000 Fun.id in
      Alcotest.(check (list int))
        "1000 results in input order"
        (List.map (fun x -> x * x) xs)
        (Pool.map pool (fun x -> x * x) xs))

let test_pool_map_empty_and_single () =
  with_pool ~domains:2 (fun pool ->
      Alcotest.(check (list int)) "empty" [] (Pool.map pool Fun.id []);
      Alcotest.(check (list int)) "single" [ 7 ] (Pool.map pool Fun.id [ 7 ]))

let test_pool_survives_raising_task () =
  with_pool ~domains:2 (fun pool ->
      (match
         Pool.map pool (fun x -> if x = 3 then failwith "boom" else x)
           [ 1; 2; 3; 4; 5 ]
       with
      | _ -> Alcotest.fail "expected the task's exception to re-raise"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg);
      Alcotest.(check (list int))
        "pool usable after a failed batch" [ 2; 4; 6 ]
        (Pool.map pool (fun x -> 2 * x) [ 1; 2; 3 ]))

let test_pool_lowest_index_exception_wins () =
  with_pool ~domains:4 (fun pool ->
      match
        Pool.map pool
          (fun x -> if x >= 2 then raise (Failure (string_of_int x)) else x)
          [ 0; 1; 2; 3; 4 ]
      with
      | _ -> Alcotest.fail "expected an exception"
      | exception Failure msg ->
          Alcotest.(check string) "first failing index re-raised" "2" msg)

let test_pool_shutdown () =
  let pool = Pool.create ~domains:3 in
  Alcotest.(check int) "size" 3 (Pool.size pool);
  Alcotest.(check (list int)) "works" [ 1; 2; 3 ] (Pool.map pool Fun.id [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* Idempotent; submitting afterwards is an error. *)
  match Pool.map pool Fun.id [ 1 ] with
  | _ -> Alcotest.fail "expected Invalid_argument after shutdown"
  | exception Invalid_argument _ -> ()

let test_pool_create_invalid () =
  match Pool.create ~domains:0 with
  | _ -> Alcotest.fail "expected Invalid_argument for domains = 0"
  | exception Invalid_argument _ -> ()

let test_plan_single_shard () =
  List.iter
    (fun (jobs, total) ->
      match Campaign.plan ~jobs ~seed:42L ~total () with
      | [ s ] ->
          Alcotest.(check int) "index" 0 s.Campaign.index;
          Alcotest.(check int) "shards" 1 s.Campaign.shards;
          Alcotest.(check int64) "seed unchanged" 42L s.Campaign.seed;
          Alcotest.(check int) "quota" total s.Campaign.quota
      | l ->
          Alcotest.failf "expected 1 shard for jobs=%d total=%d, got %d" jobs
            total (List.length l))
    [ (1, 100); (0, 100); (4, 1); (4, 0) ]

let test_plan_quotas_and_seeds () =
  let seed = 42L in
  let shards = Campaign.plan ~jobs:4 ~seed ~total:10 () in
  Alcotest.(check int) "shard count" 4 (List.length shards);
  Alcotest.(check int) "quotas sum to total" 10
    (List.fold_left (fun a s -> a + s.Campaign.quota) 0 shards);
  List.iteri
    (fun i s ->
      Alcotest.(check int) "index" i s.Campaign.index;
      Alcotest.(check int) "shards" 4 s.Campaign.shards;
      Alcotest.(check bool) "quotas differ by at most one" true
        (s.Campaign.quota = 2 || s.Campaign.quota = 3);
      Alcotest.(check int64) "seed derivation" (Stats.Rng.derive seed i)
        s.Campaign.seed)
    shards;
  let seeds = List.map (fun s -> s.Campaign.seed) shards in
  Alcotest.(check int) "seeds pairwise distinct"
    (List.length seeds)
    (List.length (List.sort_uniq Int64.compare seeds));
  (* More workers than work: one shard per unit of work. *)
  Alcotest.(check int) "jobs > total collapses to total" 3
    (List.length (Campaign.plan ~jobs:8 ~seed ~total:3 ()));
  (* A pinned shard count overrides jobs in both directions. *)
  Alcotest.(check int) "pinned shards with jobs=1" 4
    (List.length (Campaign.plan ~shards:4 ~jobs:1 ~seed ~total:10 ()));
  Alcotest.(check int) "pinned shards with jobs=8" 4
    (List.length (Campaign.plan ~shards:4 ~jobs:8 ~seed ~total:10 ()));
  Alcotest.(check bool) "pinned plan independent of jobs" true
    (Campaign.plan ~shards:4 ~jobs:1 ~seed ~total:10 ()
    = Campaign.plan ~shards:4 ~jobs:8 ~seed ~total:10 ())

let test_sharded_runs_all_shards () =
  let quotas =
    Campaign.sharded ~jobs:4 ~seed:7L ~total:10
      ~f:(fun s -> s.Campaign.quota)
      ()
  in
  Alcotest.(check int) "full campaign covered" 10
    (List.fold_left ( + ) 0 quotas);
  let indexes =
    Campaign.sharded ~jobs:4 ~seed:7L ~total:10
      ~f:(fun s -> s.Campaign.index)
      ()
  in
  Alcotest.(check (list int)) "results in shard order" [ 0; 1; 2; 3 ] indexes;
  (* Pinned shards, one worker: the same plan runs inline. *)
  let seq =
    Campaign.sharded ~shards:4 ~jobs:1 ~seed:7L ~total:10 ~f:Fun.id ()
  in
  Alcotest.(check bool) "pinned plan identical inline vs pooled" true
    (seq = Campaign.sharded ~shards:4 ~jobs:4 ~seed:7L ~total:10 ~f:Fun.id ())

let test_all_runs_in_order () =
  let thunks = List.init 9 (fun i () -> i * i) in
  let expected = List.init 9 (fun i -> i * i) in
  Alcotest.(check (list int)) "inline" expected (Campaign.all ~jobs:1 thunks);
  Alcotest.(check (list int)) "parallel" expected (Campaign.all ~jobs:4 thunks)

(* Fingerprint of a campaign result: counts and exact moments of every
   summary.  Two runs agree on this iff they saw the same samples. *)
let fingerprint (r : Scenarios.Fig4.result) =
  List.concat_map
    (fun s ->
      [
        float_of_int (Stats.Summary.count s);
        Stats.Summary.mean s;
        Stats.Summary.std s;
        Stats.Summary.percentile s 90.;
      ])
    [
      r.Scenarios.Fig4.detection;
      r.Scenarios.Fig4.ots;
      r.Scenarios.Fig4.election;
      r.Scenarios.Fig4.randomized;
    ]

let check_same_result msg a b =
  Alcotest.(check (list (float 0.))) msg (fingerprint a) (fingerprint b)

let test_fig4_deterministic_across_runs () =
  let run jobs =
    Scenarios.Fig4.run ~failures:8 ~jobs ~config:(Raft.Config.dynatune ()) ()
  in
  check_same_result "jobs=1 twice" (run 1) (run 1);
  check_same_result "jobs=2 twice" (run 2) (run 2)

let test_fig4_sharded_meets_quota () =
  let r =
    Scenarios.Fig4.run ~failures:9 ~jobs:3 ~config:(Raft.Config.static ()) ()
  in
  Alcotest.(check int) "all shard quotas measured" 9
    r.Scenarios.Fig4.failures

let tests =
  [
    Alcotest.test_case "pool: map 1000 tasks in order" `Quick
      test_pool_map_in_order;
    Alcotest.test_case "pool: map empty and singleton" `Quick
      test_pool_map_empty_and_single;
    Alcotest.test_case "pool: survives raising task" `Quick
      test_pool_survives_raising_task;
    Alcotest.test_case "pool: lowest-index exception wins" `Quick
      test_pool_lowest_index_exception_wins;
    Alcotest.test_case "pool: shutdown joins and rejects" `Quick
      test_pool_shutdown;
    Alcotest.test_case "pool: create rejects domains < 1" `Quick
      test_pool_create_invalid;
    Alcotest.test_case "campaign: single-shard plans" `Quick
      test_plan_single_shard;
    Alcotest.test_case "campaign: quotas and derived seeds" `Quick
      test_plan_quotas_and_seeds;
    Alcotest.test_case "campaign: sharded covers the campaign" `Quick
      test_sharded_runs_all_shards;
    Alcotest.test_case "campaign: all preserves order" `Quick
      test_all_runs_in_order;
    Alcotest.test_case "fig4: same (seed, jobs) twice is identical" `Slow
      test_fig4_deterministic_across_runs;
    Alcotest.test_case "fig4: sharded campaign meets its quota" `Slow
      test_fig4_sharded_meets_quota;
  ]
