let () =
  Alcotest.run "dynatune"
    [
      ("stats", Test_stats.tests);
      ("parallel", Test_parallel.tests);
      ("des", Test_des.tests);
      ("netsim", Test_netsim.tests);
      ("tuner", Test_tuner.tests);
      ("raft-log", Test_log.tests);
      ("raft-server", Test_server.tests);
      ("raft-server-ext", Test_server_ext.tests);
      ("raft-node", Test_node.tests);
      ("kvsm", Test_kvsm.tests);
      ("harness", Test_harness.tests);
      ("faults", Test_faults.tests);
      ("snapshots", Test_snapshot.tests);
      ("reads-transfer", Test_reads_transfer.tests);
      ("reconfig", Test_reconfig.tests);
      ("check", Test_check.tests);
      ("chaos", Test_chaos.tests);
      ("reproduction", Test_reproduction.tests);
      ("integration", Test_integration.tests);
      ("properties", Test_props.tests);
      ("misc", Test_misc.tests);
      ("telemetry", Test_telemetry.tests);
      ("analysis", Test_analysis.tests);
      ("forensics", Test_forensics.tests);
      ("multiraft", Test_multiraft.tests);
    ]
