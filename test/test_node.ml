(* Node-level tests: the DES binding (timers, fault switch, CPU-coupled
   delivery, UDP buffer overflow, client waiters). *)

module Time = Des.Time
module Node_id = Netsim.Node_id

type rig = {
  engine : Des.Engine.t;
  fabric : Raft.Rpc.message Netsim.Fabric.t;
  trace : Raft.Probe.t Des.Mtrace.t;
  nodes : Raft.Node.t list;
}

let make_rig ?(n = 3) ?(config = Raft.Config.static ()) ?(rtt_ms = 10.)
    ?costs ?(cores = 1.) () =
  let engine = Des.Engine.create ~seed:13L () in
  let fabric = Netsim.Fabric.create engine in
  let trace = Des.Mtrace.create engine in
  let ids = Node_id.range n in
  List.iter (Netsim.Fabric.add_node fabric) ids;
  Netsim.Fabric.set_uniform_conditions fabric
    Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.02 ()));
  let nodes =
    List.map
      (fun id ->
        let peers = List.filter (fun p -> not (Node_id.equal p id)) ids in
        let cpu =
          match costs with
          | Some _ -> Some (Netsim.Cpu.create engine ~cores)
          | None -> None
        in
        Raft.Node.create ~fabric ~trace ?cpu ?costs ~id ~peers ~config ())
      ids
  in
  { engine; fabric; trace; nodes }

let await_leader rig ~timeout =
  let deadline = Time.add (Des.Engine.now rig.engine) timeout in
  let rec poll () =
    let leader =
      List.find_opt
        (fun n ->
          (not (Raft.Node.is_paused n))
          && Raft.Types.is_leader (Raft.Server.role (Raft.Node.server n)))
        rig.nodes
    in
    match leader with
    | Some l -> Some l
    | None ->
        if Des.Engine.now rig.engine >= deadline then None
        else begin
          Des.Engine.run_until rig.engine
            (Stdlib.min deadline (Time.add (Des.Engine.now rig.engine) (Time.ms 5)));
          poll ()
        end
  in
  poll ()

let start rig = List.iter Raft.Node.start rig.nodes

let test_paused_node_stays_silent () =
  let rig = make_rig () in
  start rig;
  let victim = List.hd rig.nodes in
  Raft.Node.pause victim;
  Des.Engine.run_until rig.engine (Time.sec 20);
  (* The paused node emitted no protocol probes: its timers are inert.
     (The fault-injection marker itself is expected.) *)
  Des.Mtrace.iter rig.trace ~f:(fun _ probe ->
      match probe with
      | Raft.Probe.Node_paused _ | Raft.Probe.Node_resumed _ -> ()
      | _ ->
          if Node_id.equal (Raft.Probe.node probe) (Raft.Node.id victim) then
            Alcotest.failf "paused node acted: %a" Raft.Probe.pp probe);
  (* The other two still elected a leader. *)
  Alcotest.(check bool) "majority elects without it" true
    (await_leader rig ~timeout:(Time.sec 1) <> None)

let test_resumed_follower_rejoins () =
  let rig = make_rig () in
  start rig;
  let leader =
    match await_leader rig ~timeout:(Time.sec 20) with
    | Some l -> l
    | None -> Alcotest.fail "no leader"
  in
  let follower =
    List.find (fun n -> not (Netsim.Node_id.equal (Raft.Node.id n) (Raft.Node.id leader))) rig.nodes
  in
  Raft.Node.pause follower;
  Des.Engine.run_for rig.engine (Time.sec 5);
  Raft.Node.resume follower;
  Des.Engine.run_for rig.engine (Time.sec 5);
  let server = Raft.Node.server follower in
  Alcotest.(check bool) "rejoined as follower of the live leader" true
    (Raft.Server.leader server = Some (Raft.Node.id leader));
  Alcotest.(check int) "terms converged"
    (Raft.Server.term (Raft.Node.server leader))
    (Raft.Server.term server)

let test_resumed_stale_leader_steps_down () =
  let rig = make_rig () in
  start rig;
  let old =
    match await_leader rig ~timeout:(Time.sec 20) with
    | Some l -> l
    | None -> Alcotest.fail "no leader"
  in
  Raft.Node.pause old;
  Des.Engine.run_for rig.engine (Time.sec 10);
  let fresh =
    match await_leader rig ~timeout:(Time.sec 20) with
    | Some l -> l
    | None -> Alcotest.fail "no replacement leader"
  in
  Alcotest.(check bool) "replacement differs" false
    (Netsim.Node_id.equal (Raft.Node.id old) (Raft.Node.id fresh));
  (* The woken stale leader still believes it leads, then abdicates. *)
  Raft.Node.resume old;
  Alcotest.(check bool) "stale leader wakes as leader" true
    (Raft.Types.is_leader (Raft.Server.role (Raft.Node.server old)));
  Des.Engine.run_for rig.engine (Time.sec 2);
  Alcotest.(check bool) "deposed by higher-term responses" false
    (Raft.Types.is_leader (Raft.Server.role (Raft.Node.server old)))

let test_submit_roundtrip () =
  let rig = make_rig () in
  start rig;
  let leader =
    match await_leader rig ~timeout:(Time.sec 20) with
    | Some l -> l
    | None -> Alcotest.fail "no leader"
  in
  let committed = ref None in
  (match
     Raft.Node.submit leader ~payload:"hello" ~client_id:7 ~seq:1
       ~on_result:(fun ~committed:ok -> committed := Some ok)
       ()
   with
  | `Accepted -> ()
  | `Not_leader _ -> Alcotest.fail "leader refused");
  Des.Engine.run_for rig.engine (Time.sec 1);
  Alcotest.(check (option bool)) "committed" (Some true) !committed

let test_submit_to_follower_redirects () =
  let rig = make_rig () in
  start rig;
  let leader =
    match await_leader rig ~timeout:(Time.sec 20) with
    | Some l -> l
    | None -> Alcotest.fail "no leader"
  in
  (* Give the leader's first heartbeats time to inform the followers. *)
  Des.Engine.run_for rig.engine (Time.sec 1);
  let follower =
    List.find
      (fun n -> not (Netsim.Node_id.equal (Raft.Node.id n) (Raft.Node.id leader)))
      rig.nodes
  in
  match
    Raft.Node.submit follower ~payload:"x" ~client_id:1 ~seq:1
      ~on_result:(fun ~committed:_ -> ())
      ()
  with
  | `Not_leader (Some hint) ->
      Alcotest.(check int) "hints at the real leader"
        (Node_id.to_int (Raft.Node.id leader))
        (Node_id.to_int hint)
  | `Not_leader None -> Alcotest.fail "expected a leader hint"
  | `Accepted -> Alcotest.fail "follower must not accept"

let test_udp_overflow_drops_heartbeats () =
  (* A Dynatune node whose CPU is saturated must drop datagram
     heartbeats (socket buffer overflow) instead of queueing them. *)
  let costs = Raft.Cost_model.etcd_like in
  let rig = make_rig ~config:(Raft.Config.dynatune ()) ~costs () in
  start rig;
  let node = List.hd rig.nodes in
  (* Saturate its CPU far beyond the 4 ms overflow bound. *)
  Netsim.Cpu.charge (Raft.Node.cpu node) ~cost:(Time.sec 2);
  let delivered_before = Des.Engine.processed_events rig.engine in
  ignore delivered_before;
  Netsim.Fabric.send rig.fabric Netsim.Transport.Datagram
    ~src:(Node_id.of_int 1) ~dst:(Raft.Node.id node)
    (Raft.Rpc.Heartbeat
       {
         term = 1;
         commit = 0;
         hb_id = 0;
         sent_at = Time.zero;
         measured_rtt = None;
         hb_gen = 0;
       });
  Des.Engine.run_until rig.engine (Time.ms 50);
  (* No heartbeat response was generated: the datagram was dropped. *)
  let responses =
    (Netsim.Fabric.counters rig.fabric).Netsim.Fabric.sent
  in
  (* The only sends so far are the startup election traffic plus our
     injected heartbeat; a response would add one targeted at node 1.
     Check directly: node 0 never learned about term 1's leader. *)
  ignore responses;
  Alcotest.(check (option int)) "no leader learned from dropped heartbeat"
    None
    (Option.map Node_id.to_int (Raft.Server.leader (Raft.Node.server node)))

let test_reliable_messages_survive_busy_cpu () =
  (* Append traffic uses the reliable transport and must NOT be dropped
     by the UDP overflow rule, however busy the node is. *)
  let costs = Raft.Cost_model.etcd_like in
  let rig = make_rig ~config:(Raft.Config.dynatune ()) ~costs () in
  start rig;
  let node = List.hd rig.nodes in
  Netsim.Cpu.charge (Raft.Node.cpu node) ~cost:(Time.ms 500);
  Netsim.Fabric.send rig.fabric Netsim.Transport.Reliable
    ~src:(Node_id.of_int 1) ~dst:(Raft.Node.id node)
    (Raft.Rpc.Append_request
       {
         term = 5;
         prev_index = 0;
         prev_term = 0;
         entries = [||];
         commit = 0;
         ar_gen = 0;
       });
  (* After the backlog drains, the append is processed. *)
  Des.Engine.run_until rig.engine (Time.sec 2);
  (* Elections may have advanced the term further, but the append was
     processed: the term is at least the sender's. *)
  Alcotest.(check bool) "append adopted the term" true
    (Raft.Server.term (Raft.Node.server node) >= 5)

let test_deterministic_runs () =
  let run () =
    let rig = make_rig ~n:5 ~config:(Raft.Config.dynatune ()) () in
    start rig;
    Des.Engine.run_until rig.engine (Time.sec 30);
    List.map
      (fun n ->
        Printf.sprintf "%d:%d:%s:%d"
          (Node_id.to_int (Raft.Node.id n))
          (Raft.Server.term (Raft.Node.server n))
          (Raft.Types.role_name (Raft.Server.role (Raft.Node.server n)))
          (Raft.Server.commit_index (Raft.Node.server n)))
      rig.nodes
  in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "identical state" a b

let tests =
  [
    Alcotest.test_case "paused node stays silent" `Quick
      test_paused_node_stays_silent;
    Alcotest.test_case "resumed follower rejoins" `Quick
      test_resumed_follower_rejoins;
    Alcotest.test_case "resumed stale leader steps down" `Quick
      test_resumed_stale_leader_steps_down;
    Alcotest.test_case "submit roundtrip" `Quick test_submit_roundtrip;
    Alcotest.test_case "submit to follower redirects" `Quick
      test_submit_to_follower_redirects;
    Alcotest.test_case "udp overflow drops heartbeats" `Quick
      test_udp_overflow_drops_heartbeats;
    Alcotest.test_case "reliable survives busy cpu" `Quick
      test_reliable_messages_survive_busy_cpu;
    Alcotest.test_case "bit-identical reruns" `Quick test_deterministic_runs;
  ]
