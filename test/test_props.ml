(* Property-based tests (qcheck) on the core data structures and the
   tuning invariants. *)

module Q = QCheck

let to_alcotest = QCheck_alcotest.to_alcotest

(* {2 Window} *)

let prop_window_matches_batch =
  Q.Test.make ~count:300 ~name:"window stats match batch recomputation"
    Q.(pair (int_range 1 20) (list (float_range (-1000.) 1000.)))
    (fun (capacity, samples) ->
      let w = Stats.Window.create ~capacity in
      List.iter (Stats.Window.push w) samples;
      let kept = Stats.Window.to_list w in
      let n = List.length kept in
      (n = Stdlib.min capacity (List.length samples))
      &&
      if n = 0 then true
      else
        let mean = List.fold_left ( +. ) 0. kept /. float_of_int n in
        let var =
          List.fold_left (fun a x -> a +. ((x -. mean) ** 2.)) 0. kept
          /. float_of_int n
        in
        abs_float (Stats.Window.mean w -. mean) < 1e-6
        && abs_float (Stats.Window.std w -. sqrt (Stdlib.max 0. var)) < 1e-6)

let prop_window_keeps_newest =
  Q.Test.make ~count:300 ~name:"window keeps the newest samples"
    Q.(pair (int_range 1 10) (list_of_size (Q.Gen.int_range 0 50) Q.small_nat))
    (fun (capacity, samples) ->
      let w = Stats.Window.create ~capacity in
      let floats = List.map float_of_int samples in
      List.iter (Stats.Window.push w) floats;
      let n = List.length floats in
      let expected =
        if n <= capacity then floats
        else List.filteri (fun i _ -> i >= n - capacity) floats
      in
      Stats.Window.to_list w = expected)

(* {2 Heap} *)

let prop_heap_sorts =
  Q.Test.make ~count:300 ~name:"heap drains in sorted order"
    Q.(list Q.small_int)
    (fun l ->
      let h = Des.Heap.create ~cmp:compare in
      List.iter (Des.Heap.push h) l;
      let drained = List.filter_map (fun _ -> Des.Heap.pop h) l in
      drained = List.sort compare l)

(* {2 Engine ordering} *)

let prop_engine_orders_events =
  Q.Test.make ~count:100 ~name:"engine runs events in timestamp order"
    Q.(list (int_range 0 1_000_000))
    (fun times ->
      let e = Des.Engine.create () in
      let fired = ref [] in
      List.iter
        (fun t ->
          ignore
            (Des.Engine.schedule_at e t (fun () -> fired := t :: !fired)))
        times;
      Des.Engine.run e;
      let got = List.rev !fired in
      List.sort compare got = got && List.length got = List.length times)

(* {2 Loss estimator} *)

let prop_loss_rate_bounds =
  Q.Test.make ~count:500 ~name:"loss rate stays in [0, 1)"
    Q.(list (int_range 0 500))
    (fun ids ->
      let l = Dynatune.Loss_estimator.create ~min_size:2 ~max_size:50 in
      List.iter (fun i -> ignore (Dynatune.Loss_estimator.observe l i)) ids;
      let p = Dynatune.Loss_estimator.loss_rate l in
      p >= 0. && p < 1.)

let prop_loss_rate_exact_on_sets =
  Q.Test.make ~count:300 ~name:"loss rate matches the paper's formula"
    Q.(list_of_size (Q.Gen.int_range 2 40) (int_range 0 100))
    (fun ids ->
      let distinct = List.sort_uniq compare ids in
      Q.assume (List.length distinct >= 2);
      let l = Dynatune.Loss_estimator.create ~min_size:2 ~max_size:200 in
      List.iter (fun i -> ignore (Dynatune.Loss_estimator.observe l i)) ids;
      let lo = List.hd distinct
      and hi = List.nth distinct (List.length distinct - 1) in
      let expected =
        1.
        -. (float_of_int (List.length distinct) /. float_of_int (hi - lo + 1))
      in
      abs_float (Dynatune.Loss_estimator.loss_rate l -. expected) < 1e-9)

let prop_loss_observe_insensitive_to_order =
  Q.Test.make ~count:300 ~name:"loss estimate is order-insensitive"
    Q.(list_of_size (Q.Gen.int_range 2 30) (int_range 0 60))
    (fun ids ->
      let run order =
        let l = Dynatune.Loss_estimator.create ~min_size:2 ~max_size:100 in
        List.iter (fun i -> ignore (Dynatune.Loss_estimator.observe l i)) order;
        Dynatune.Loss_estimator.loss_rate l
      in
      run ids = run (List.rev ids))

(* {2 Tuner invariants} *)

let tuner_cfg =
  {
    Dynatune.Config.default with
    Dynatune.Config.min_list_size = 2;
    max_list_size = 50;
  }

let prop_required_heartbeats_minimal =
  Q.Test.make ~count:500 ~name:"K is the minimal satisfying count"
    Q.(pair (float_range 0.01 0.95) (float_range 0.9 0.9999))
    (fun (p, x) ->
      let k = Dynatune.Tuner.required_heartbeats_for ~p ~x in
      let ok n = 1. -. (p ** float_of_int n) >= x -. 1e-12 in
      ok k && (k = 1 || not (ok (k - 1))))

let prop_tuner_h_bounds =
  Q.Test.make ~count:300 ~name:"h stays within [min_h, Et]"
    Q.(
      pair
        (list_of_size (Q.Gen.int_range 2 40) (float_range 0.5 800.))
        (list_of_size (Q.Gen.int_range 0 30) (int_range 0 100)))
    (fun (rtts_ms, drop_ids) ->
      let t = Dynatune.Tuner.create tuner_cfg in
      List.iteri
        (fun i rtt ->
          if not (List.mem i drop_ids) then
            Dynatune.Tuner.observe_heartbeat t ~hb_id:i
              ~rtt:(Some (Des.Time.of_ms_f rtt)))
        rtts_ms;
      let h = Dynatune.Tuner.heartbeat_interval t in
      let et = Dynatune.Tuner.election_timeout t in
      h >= tuner_cfg.Dynatune.Config.min_heartbeat_interval && h <= et)

let prop_tuner_et_bounds =
  Q.Test.make ~count:300 ~name:"tuned Et respects its clamps"
    Q.(list_of_size (Q.Gen.int_range 2 40) (float_range 0.0001 100000.))
    (fun rtts_ms ->
      let t = Dynatune.Tuner.create tuner_cfg in
      List.iteri
        (fun i rtt ->
          Dynatune.Tuner.observe_heartbeat t ~hb_id:i
            ~rtt:(Some (Des.Time.of_ms_f rtt)))
        rtts_ms;
      let et = Dynatune.Tuner.election_timeout t in
      et >= tuner_cfg.Dynatune.Config.min_election_timeout
      && et <= tuner_cfg.Dynatune.Config.max_election_timeout)

let prop_tuner_reset_restores_defaults =
  Q.Test.make ~count:200 ~name:"reset always restores the defaults"
    Q.(list_of_size (Q.Gen.int_range 0 40) (float_range 1. 1000.))
    (fun rtts_ms ->
      let t = Dynatune.Tuner.create tuner_cfg in
      List.iteri
        (fun i rtt ->
          Dynatune.Tuner.observe_heartbeat t ~hb_id:i
            ~rtt:(Some (Des.Time.of_ms_f rtt)))
        rtts_ms;
      Dynatune.Tuner.reset t;
      Dynatune.Tuner.phase t = Dynatune.Tuner.Warming
      && Dynatune.Tuner.election_timeout t
         = tuner_cfg.Dynatune.Config.default_election_timeout
      && Dynatune.Tuner.heartbeat_interval t
         = tuner_cfg.Dynatune.Config.default_heartbeat_interval)

(* {2 Summary} *)

let prop_summary_percentile_monotone =
  Q.Test.make ~count:300 ~name:"percentile is monotone in q"
    Q.(
      pair
        (list_of_size (Q.Gen.int_range 1 50) (float_range (-100.) 100.))
        (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (samples, (q1, q2)) ->
      let s = Stats.Summary.of_list samples in
      let lo = Stdlib.min q1 q2 and hi = Stdlib.max q1 q2 in
      Stats.Summary.percentile s lo <= Stats.Summary.percentile s hi +. 1e-9)

let prop_summary_mean_within_range =
  Q.Test.make ~count:300 ~name:"mean lies within [min, max]"
    Q.(list_of_size (Q.Gen.int_range 1 50) (float_range (-1e6) 1e6))
    (fun samples ->
      let s = Stats.Summary.of_list samples in
      Stats.Summary.mean s >= Stats.Summary.min s -. 1e-6
      && Stats.Summary.mean s <= Stats.Summary.max s +. 1e-6)

(* {2 Command codec} *)

let printable_string = Q.string_gen Q.Gen.printable

let prop_codec_roundtrip =
  Q.Test.make ~count:500 ~name:"command codec roundtrips"
    Q.(pair printable_string printable_string)
    (fun (key, value) ->
      let cmds =
        [
          Kvsm.Command.Put { key; value };
          Kvsm.Command.Get key;
          Kvsm.Command.Delete key;
          Kvsm.Command.Cas { key; expect = Some value; value = key };
          Kvsm.Command.Cas { key; expect = None; value };
        ]
      in
      List.for_all
        (fun c ->
          match Kvsm.Command.of_payload (Kvsm.Command.to_payload c) with
          | Ok d -> Kvsm.Command.equal c d
          | Error _ -> false)
        cmds)

(* {2 Log invariants} *)

let prop_log_append_grows_monotonically =
  Q.Test.make ~count:300 ~name:"append_new yields dense increasing indices"
    Q.(list_of_size (Q.Gen.int_range 1 30) (int_range 1 5))
    (fun terms ->
      let sorted_terms = List.sort compare terms in
      let l = Raft.Log.create () in
      List.iteri
        (fun i term ->
          let e = Raft.Log.append_new l ~term Raft.Log.Noop in
          assert (e.Raft.Log.index = i + 1))
        sorted_terms;
      Raft.Log.last_index l = List.length terms
      && Raft.Log.last_term l = List.nth sorted_terms (List.length terms - 1))

let prop_log_compaction_preserves_suffix =
  Q.Test.make ~count:300 ~name:"compaction preserves the surviving suffix"
    Q.(pair (int_range 1 40) (int_range 0 40))
    (fun (n, cut) ->
      let cut = Stdlib.min cut n in
      let l = Raft.Log.create () in
      let entries =
        List.init n (fun i ->
            Raft.Log.append_new l ~term:(1 + (i / 5)) Raft.Log.Noop)
      in
      Raft.Log.compact l ~upto:cut;
      Raft.Log.last_index l = n
      && Raft.Log.snapshot_index l = cut
      && List.for_all
           (fun (e : Raft.Log.entry) ->
             if e.index <= cut then Raft.Log.term_at l e.index = None || e.index = cut
             else Raft.Log.term_at l e.index = Some e.term)
           entries)

let prop_log_compaction_then_append_consistent =
  Q.Test.make ~count:300 ~name:"appends after compaction stay dense"
    Q.(pair (int_range 1 20) (int_range 1 20))
    (fun (n, extra) ->
      let l = Raft.Log.create () in
      for _ = 1 to n do
        ignore (Raft.Log.append_new l ~term:1 Raft.Log.Noop)
      done;
      Raft.Log.compact l ~upto:n;
      let appended =
        List.init extra (fun _ -> Raft.Log.append_new l ~term:2 Raft.Log.Noop)
      in
      List.for_all2
        (fun (e : Raft.Log.entry) i -> e.index = n + i + 1)
        appended
        (List.init extra Fun.id)
      && Raft.Log.last_index l = n + extra)

let prop_store_snapshot_roundtrip =
  Q.Test.make ~count:200 ~name:"store snapshots roundtrip any contents"
    Q.(list (pair printable_string printable_string))
    (fun bindings ->
      let s = Kvsm.Store.create () in
      List.iter
        (fun (key, value) ->
          ignore (Kvsm.Store.apply_command s (Kvsm.Command.Put { key; value })))
        bindings;
      match Kvsm.Store.of_serialized (Kvsm.Store.serialize s) with
      | Ok restored ->
          Kvsm.Store.state_digest restored = Kvsm.Store.state_digest s
      | Error _ -> false)

let prop_ewma_bounded_by_extremes =
  Q.Test.make ~count:300 ~name:"ewma srtt stays within sample extremes"
    Q.(
      pair (float_range 0.01 1.)
        (list_of_size (Q.Gen.int_range 1 60) (float_range 1. 1000.)))
    (fun (alpha, samples_ms) ->
      let e = Dynatune.Ewma_estimator.create ~alpha ~min_samples:1 () in
      List.iter
        (fun ms -> Dynatune.Ewma_estimator.observe e (Des.Time.of_ms_f ms))
        samples_ms;
      let srtt = Des.Time.to_ms_f (Dynatune.Ewma_estimator.mean e) in
      let lo = List.fold_left Stdlib.min infinity samples_ms in
      let hi = List.fold_left Stdlib.max neg_infinity samples_ms in
      srtt >= lo -. 1e-6 && srtt <= hi +. 1e-6)

let prop_ewma_constant_input_converges =
  Q.Test.make ~count:200 ~name:"ewma on a constant input equals it"
    Q.(pair (float_range 0.05 1.) (float_range 1. 500.))
    (fun (alpha, level) ->
      let e = Dynatune.Ewma_estimator.create ~alpha ~min_samples:1 () in
      for _ = 1 to 300 do
        Dynatune.Ewma_estimator.observe e (Des.Time.of_ms_f level)
      done;
      abs_float (Des.Time.to_ms_f (Dynatune.Ewma_estimator.mean e) -. level)
      < 1.
      && Des.Time.to_ms_f (Dynatune.Ewma_estimator.deviation e) < level)

let prop_partition_reachability_is_equivalence =
  Q.Test.make ~count:200 ~name:"partition reachability is an equivalence"
    Q.(list_of_size (Q.Gen.int_range 0 8) (int_range 0 7))
    (fun group_of ->
      (* Node i belongs to the group group_of[i] (others implicit). *)
      let n = 8 in
      let engine = Des.Engine.create () in
      let f : unit Netsim.Fabric.t = Netsim.Fabric.create engine in
      let ids = Netsim.Node_id.range n in
      List.iter (Netsim.Fabric.add_node f) ids;
      let groups =
        List.init 8 (fun g ->
            List.filteri (fun i _ -> List.nth_opt group_of i = Some g) ids)
      in
      let groups = List.filter (fun l -> l <> []) groups in
      Netsim.Fabric.partition f groups;
      let reach a b =
        Netsim.Fabric.reachable f (List.nth ids a) (List.nth ids b)
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        if not (reach a a) then ok := false;
        for b = 0 to n - 1 do
          if reach a b <> reach b a then ok := false;
          for c = 0 to n - 1 do
            if reach a b && reach b c && not (reach a c) then ok := false
          done
        done
      done;
      !ok)

let prop_conditions_piecewise_lookup =
  Q.Test.make ~count:300 ~name:"piecewise lookup matches linear scan"
    Q.(
      pair
        (list_of_size (Q.Gen.int_range 1 10) (float_range 1. 500.))
        (int_range 0 10_000))
    (fun (rtts, query_ms) ->
      let hold = Des.Time.ms 700 in
      let c =
        Netsim.Conditions.rtt_staircase
          ~base:(Netsim.Conditions.profile ~rtt_ms:0. ())
          ~hold ~rtts_ms:rtts
      in
      let query = Des.Time.ms query_ms in
      let expected_idx = Stdlib.min (query / hold) (List.length rtts - 1) in
      (Netsim.Conditions.at c query).Netsim.Conditions.rtt_ms
      = List.nth rtts expected_idx)

(* {2 Timing wheel vs. event heap}

   The wheel is a scheduling shortcut, not a semantics change: any
   interleaving of schedule / cancel / advance must fire the same events
   in the same (at, seq) order whether timers park in wheel slots or go
   straight onto the heap.  The offset generator deliberately lands on
   same-tick bursts, level-0/1 and level-1/2 cascade boundaries, and
   past-horizon deadlines (which overflow to the heap). *)

type wheel_op = W_schedule of int | W_cancel of int | W_advance of int

let wheel_op_gen =
  let tick = 1 lsl Des.Wheel.tick_bits in
  let offset =
    Q.Gen.oneof
      [
        (* same-deadline / same-tick bursts *)
        Q.Gen.int_range 0 (4 * tick);
        (* around the level-0/1 cascade boundary (256 ticks) *)
        Q.Gen.map (fun k -> k * tick) (Q.Gen.int_range 250 262);
        (* anywhere in level 0/1 *)
        Q.Gen.int_range 0 (300 * tick);
        (* around the level-1/2 boundary (65536 ticks) *)
        Q.Gen.map (fun k -> k * tick) (Q.Gen.int_range 65_530 65_545);
        (* beyond the wheel's horizon: must overflow into the heap *)
        Q.Gen.map (fun k -> k * tick) (Q.Gen.int_range 16_000_000 17_000_000);
      ]
  in
  Q.Gen.frequency
    [
      (5, Q.Gen.map (fun o -> W_schedule o) offset);
      (3, Q.Gen.map (fun k -> W_cancel k) (Q.Gen.int_range 0 100));
      (2, Q.Gen.map (fun n -> W_advance n) (Q.Gen.int_range 1 20));
    ]

let wheel_op_print = function
  | W_schedule o -> Printf.sprintf "schedule(+%d)" o
  | W_cancel k -> Printf.sprintf "cancel(%d)" k
  | W_advance n -> Printf.sprintf "advance(%d)" n

let prop_wheel_matches_heap =
  Q.Test.make ~count:200 ~name:"wheel and heap fire identically"
    (Q.make
       ~print:Q.Print.(list wheel_op_print)
       (Q.Gen.list_size (Q.Gen.int_range 0 120) wheel_op_gen))
    (fun ops ->
      let module H = Des.Event_heap in
      (* Reference: every event straight onto a heap. *)
      let ref_heap = H.create () in
      (* Subject: heap + wheel, drained in merged order like the engine. *)
      let sub_heap = H.create () in
      let wheel = Des.Wheel.create sub_heap in
      let ref_fired = ref [] and sub_fired = ref [] in
      let handles = ref [] (* (ref_ev, sub_ev), newest first *) in
      let seq = ref 0 and now = ref 0 in
      let ok = ref true in
      (* The engine's merged drain: pop the heap only while its top is
         strictly before everything the wheel could still owe. *)
      let fuel = ref 10_000_000 in
      let rec sub_next_live () =
        decr fuel;
        if !fuel <= 0 then begin
          let top = H.top_live sub_heap in
          failwith
            (Printf.sprintf
               "wheel prop: flush fuel exhausted: cursor=%d linked=%d lb=%d                 top_at=%s now=%d"
               (Des.Wheel.cursor_tick wheel)
               (Des.Wheel.linked wheel)
               (Des.Wheel.next_due_ns wheel)
               (if top == H.never then "none" else string_of_int top.H.at)
               !now)
        end;
        let top = H.top_live sub_heap in
        let lb = Des.Wheel.next_due_ns wheel in
        if lb = max_int || (top != H.never && top.H.at < lb) then top
        else begin
          Des.Wheel.flush_next wheel;
          sub_next_live ()
        end
      in
      let fire_one () =
        let sub = sub_next_live () in
        (match H.pop_live ref_heap with
        | Some r -> H.run_closure r
        | None -> if sub != H.never then ok := false);
        if sub != H.never then begin
          H.drop_top sub_heap;
          now := sub.H.at;
          H.run_closure sub
        end
      in
      let step = function
        | W_schedule offset ->
            let at = !now + offset and s = !seq in
            incr seq;
            let r = H.schedule ref_heap ~at ~seq:s (fun () ->
                ref_fired := s :: !ref_fired)
            in
            let e = H.make sub_heap ~at ~seq:s (fun () ->
                sub_fired := s :: !sub_fired)
            in
            if not (Des.Wheel.insert wheel e) then H.push_event sub_heap e;
            handles := (r, e) :: !handles
        | W_cancel k -> (
            match !handles with
            | [] -> ()
            | hs ->
                let i = k mod List.length hs in
                let r, e = List.nth hs i in
                H.cancel r;
                H.cancel e;
                if H.is_pending r <> H.is_pending e then ok := false;
                (* Pool discipline: a cancelled handle must be forgotten —
                   once the tombstone is discarded the event recycles, and
                   the two heaps recycle in different orders, so a stale
                   handle would alias different live events in each. *)
                handles := List.filteri (fun j _ -> j <> i) hs)
        | W_advance n ->
            for _ = 1 to n do
              fire_one ()
            done
      in
      List.iter step ops;
      (* Drain whatever is left on both sides. *)
      while H.live_length ref_heap > 0 || H.live_length sub_heap > 0
            || Des.Wheel.linked wheel > 0
      do
        fire_one ()
      done;
      !ok && !ref_fired = !sub_fired)

(* {2 Pipelined replication}

   End-to-end convergence of the replication engine v2 under a hostile
   link: random loss and duplication (the datagram heartbeats the tuner
   and the stalled-window nudge ride on), jitter-induced reordering, and
   a random follower sleeping through part of the write burst.  Whatever
   interleaving of stale nacks, rewinds and retransmissions results, a
   quiet period must leave every replica with the same store. *)

let prop_pipelined_replication_converges =
  Q.Test.make ~count:10
    ~name:"pipelined replication converges under loss/dup/reorder"
    Q.(
      quad (int_range 1 10_000)
        (float_range 0. 0.12)
        (float_range 0. 0.08)
        (int_range 0 3))
    (fun (seed, loss, duplicate, victim_pick) ->
      let config =
        Raft.Config.with_replication ~max_inflight_appends:4
          ~append_backpressure:8 ~max_entries_per_append:4
          (Raft.Config.dynatune ())
      in
      let conditions =
        Netsim.Conditions.(
          constant (profile ~rtt_ms:20. ~jitter:0.3 ~loss ~duplicate ()))
      in
      let c =
        Harness.Cluster.create ~seed:(Int64.of_int seed) ~n:5 ~config
          ~conditions ~check:Check.Always ()
      in
      Netsim.Fabric.set_uniform_serialization (Harness.Cluster.fabric c)
        (Des.Time.us 50);
      Harness.Cluster.start c;
      match Harness.Cluster.await_leader c ~timeout:(Des.Time.sec 30) with
      | None -> false
      | Some leader ->
          let leader = Raft.Node.id leader in
          let victim =
            List.nth
              (List.filter
                 (fun id -> not (Netsim.Node_id.equal id leader))
                 (Harness.Cluster.node_ids c))
              victim_pick
          in
          let target = Harness.Cluster.submit_target c in
          for i = 1 to 30 do
            if i = 8 then Harness.Fault.pause c victim;
            if i = 22 then Harness.Fault.recover c victim;
            ignore
              (target
                 ~payload:
                   (Kvsm.Command.to_payload
                      (Kvsm.Command.Put
                         { key = Printf.sprintf "p:%d" i; value = "v" }))
                 ~client_id:1 ~seq:i
                 ~on_result:(fun ~committed:_ -> ()));
            Harness.Cluster.run_for c (Des.Time.ms 25)
          done;
          Harness.Cluster.run_for c (Des.Time.sec 15);
          let digests =
            List.map
              (fun id -> Kvsm.Store.state_digest (Harness.Cluster.store c id))
              (Harness.Cluster.node_ids c)
          in
          (match digests with
          | d :: rest -> List.for_all (String.equal d) rest
          | [] -> false))

(* {2 Message pool safety}

   The perf-guard hot path recycles RPC records through [Rpc.Pool]:
   released at delivery, reallocated by the next send.  The invariant
   the @perf plans depend on: a record handed to the fabric is never
   recycled while its delivery is still in flight.  Each record carries
   a generation stamp the pool bumps on every reallocation, so the
   receiver can detect a recycle: the stamp at delivery must equal the
   stamp at send.  Exercised under randomized loss (never-released
   records must not wedge or alias the free list), duplication (the
   second copy must be a gen-0 clone, not the pooled record), and
   jitter-induced reordering. *)
let prop_pool_recycle_never_aliases_inflight =
  Q.Test.make ~count:60
    ~name:"pooled append_request never recycled while in flight"
    Q.(
      quad (float_range 0. 0.4) (float_range 0. 0.4) (float_range 0. 1.)
        (pair (int_range 1 80) small_nat))
    (fun (loss, duplicate, jitter, (msgs, seed)) ->
      let engine = Des.Engine.create ~seed:(Int64.of_int seed) () in
      let fabric = Netsim.Fabric.create engine in
      let a = Netsim.Node_id.of_int 0 and b = Netsim.Node_id.of_int 1 in
      List.iter (Netsim.Fabric.add_node fabric) [ a; b ];
      Netsim.Fabric.set_uniform_conditions fabric
        (Netsim.Conditions.constant
           (Netsim.Conditions.profile ~rtt_ms:10. ~jitter ~loss ~duplicate ()));
      Netsim.Fabric.set_dup_clone fabric Raft.Rpc.Pool.clone_for_dup;
      let pool = Raft.Rpc.Pool.create () in
      (* Outstanding-delivery count per physical record (pool reuse
         keeps the population tiny, so an identity assoc list is fine).
         The receiver cannot tell a recycled record from the newer send
         that recycled it — by design, they are the same bytes — so the
         invariant is enforced on the record's life cycle instead:
         - the pool must never hand out a record whose previous send is
           still in flight (count > 0 at allocation), and
         - a pooled delivery must find exactly the one outstanding
           flight it belongs to (count >= 1 at delivery; 0 means its
           release was already consumed — a double release). *)
      let tracked = ref [] in
      let count_of msg =
        match List.find_opt (fun (m, _) -> m == msg) !tracked with
        | Some (_, c) -> c
        | None ->
            let c = ref 0 in
            tracked := (msg, c) :: !tracked;
            c
      in
      let ok = ref true in
      Netsim.Fabric.set_handler fabric b (fun ~src:_ msg ->
          (* gen 0 records are dup clones (or hand-built): unpooled by
             construction, so they cannot alias the free list *)
          if Raft.Rpc.Pool.generation msg > 0 then begin
            let c = count_of msg in
            if !c < 1 then ok := false else decr c
          end;
          Raft.Rpc.Pool.release pool msg);
      for i = 1 to msgs do
        let msg =
          Raft.Rpc.Pool.append_request pool ~term:1 ~prev_index:i ~prev_term:1
            ~entries:[||] ~commit:0
        in
        let c = count_of msg in
        if !c > 0 then ok := false;
        incr c;
        Netsim.Fabric.send fabric Netsim.Transport.Datagram ~src:a ~dst:b msg;
        (* uneven spacing interleaves in-flight windows across sends *)
        Des.Engine.run_for engine (Des.Time.ms (i mod 7))
      done;
      Des.Engine.run_for engine (Des.Time.sec 5);
      let _hb, _hbr, ar, _apr = Raft.Rpc.Pool.sizes pool in
      (* Exactly-once release: the free list cannot outgrow the sends. *)
      !ok && ar <= msgs)

let tests =
  List.map to_alcotest
    [
      prop_wheel_matches_heap;
      prop_window_matches_batch;
      prop_window_keeps_newest;
      prop_heap_sorts;
      prop_engine_orders_events;
      prop_loss_rate_bounds;
      prop_loss_rate_exact_on_sets;
      prop_loss_observe_insensitive_to_order;
      prop_required_heartbeats_minimal;
      prop_tuner_h_bounds;
      prop_tuner_et_bounds;
      prop_tuner_reset_restores_defaults;
      prop_summary_percentile_monotone;
      prop_summary_mean_within_range;
      prop_codec_roundtrip;
      prop_log_append_grows_monotonically;
      prop_log_compaction_preserves_suffix;
      prop_log_compaction_then_append_consistent;
      prop_store_snapshot_roundtrip;
      prop_ewma_bounded_by_extremes;
      prop_ewma_constant_input_converges;
      prop_partition_reachability_is_equivalence;
      prop_conditions_piecewise_lookup;
      prop_pipelined_replication_converges;
      prop_pool_recycle_never_aliases_inflight;
    ]
