(* Unit tests for CheckQuorum and the Section IV-E extensions
   (heartbeat suppression, consolidated timer). *)

module Time = Des.Time
module Node_id = Netsim.Node_id
module Server = Raft.Server
module Rpc = Raft.Rpc
module Types = Raft.Types
module Config = Raft.Config

let nid = Node_id.of_int

let make ?(n = 5) ?(config = Config.static ()) ?(seed = 21L) ~self () =
  let ids = Node_id.range n in
  let peers = List.filter (fun p -> Node_id.to_int p <> self) ids in
  Server.create ~id:(nid self) ~peers ~config
    ~rng:(Stats.Rng.create ~seed ())
    ()

let recv server ~from msg ~now =
  Server.handle server ~now (Server.Message { from = nid from; msg })

let elect server ~now =
  ignore (Server.handle server ~now Server.Election_timeout_fired);
  let t = Server.term server in
  ignore
    (recv server ~from:1
       (Rpc.Vote_response { term = t + 1; granted = true; pre_vote = true })
       ~now);
  ignore
    (recv server ~from:2
       (Rpc.Vote_response { term = t + 1; granted = true; pre_vote = true })
       ~now);
  let t = Server.term server in
  ignore
    (recv server ~from:1
       (Rpc.Vote_response { term = t; granted = true; pre_vote = false })
       ~now);
  recv server ~from:2
    (Rpc.Vote_response { term = t; granted = true; pre_vote = false })
    ~now

let sends actions =
  List.filter_map
    (function Server.Send { dst; msg; _ } -> Some (dst, msg) | _ -> None)
    actions

let heartbeats actions =
  sends actions
  |> List.filter (fun (_, m) ->
         match m with Rpc.Heartbeat _ -> true | _ -> false)

(* {2 CheckQuorum} *)

let test_checkquorum_armed_on_election () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts = elect s ~now:Time.zero in
  Alcotest.(check bool) "quorum check timer armed" true
    (List.exists
       (function Server.Arm_quorum_check _ -> true | _ -> false)
       acts)

let test_checkquorum_steps_down_without_acks () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  let acts = Server.handle s ~now:(Time.sec 1) Server.Quorum_check_due in
  Alcotest.(check bool) "stepped down" true
    (Server.role s = Types.Follower);
  Alcotest.(check bool) "election timer re-armed" true
    (List.exists
       (function Server.Arm_election _ -> true | _ -> false)
       acts)

let test_checkquorum_survives_with_acks () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  (* Two followers answer a heartbeat (leader + 2 = quorum of 5). *)
  List.iter
    (fun from ->
      ignore
        (recv s ~from
           (Rpc.Heartbeat_response
              {
                term = Server.term s;
                hb_id = 0;
                echo_sent_at = Time.zero;
                tuned_h = None;
                hr_gen = 0;
              })
           ~now:(Time.ms 500)))
    [ 1; 2 ];
  let acts = Server.handle s ~now:(Time.sec 1) Server.Quorum_check_due in
  Alcotest.(check bool) "still leader" true (Server.role s = Types.Leader);
  Alcotest.(check bool) "check re-armed" true
    (List.exists
       (function Server.Arm_quorum_check _ -> true | _ -> false)
       acts)

let test_checkquorum_window_resets () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  (* Acks before the first check do not carry over to the second. *)
  List.iter
    (fun from ->
      ignore
        (recv s ~from
           (Rpc.Heartbeat_response
              {
                term = Server.term s;
                hb_id = 0;
                echo_sent_at = Time.zero;
                tuned_h = None;
                hr_gen = 0;
              })
           ~now:(Time.ms 100)))
    [ 1; 2; 3; 4 ];
  ignore (Server.handle s ~now:(Time.sec 1) Server.Quorum_check_due);
  Alcotest.(check bool) "alive after first check" true
    (Server.role s = Types.Leader);
  ignore (Server.handle s ~now:(Time.sec 2) Server.Quorum_check_due);
  Alcotest.(check bool) "second silent window abdicates" true
    (Server.role s = Types.Follower)

let test_checkquorum_disabled () =
  let config = { (Config.static ()) with Config.check_quorum = false } in
  let s = make ~config ~self:0 () in
  ignore (Server.start s);
  let acts = elect s ~now:Time.zero in
  Alcotest.(check bool) "no quorum timer when disabled" false
    (List.exists
       (function Server.Arm_quorum_check _ -> true | _ -> false)
       acts);
  ignore (Server.handle s ~now:(Time.sec 5) Server.Quorum_check_due);
  Alcotest.(check bool) "event ignored when disabled" true
    (Server.role s = Types.Leader)

let test_lease_expires_after_base_timeout () =
  (* A voter grants once its last leader contact is older than the base
     election timeout, even if its own randomized timer has not fired. *)
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore
    (recv s ~from:3
       (Rpc.Heartbeat
          {
            term = 1;
            commit = 0;
            hb_id = 0;
            sent_at = Time.zero;
            measured_rtt = None;
            hb_gen = 0;
          })
       ~now:Time.zero);
  (* 1.2s later (> Et = 1s), a pre-vote must be granted. *)
  let acts =
    recv s ~from:1
      (Rpc.Vote_request
         { term = 2; last_log_index = 0; last_log_term = 0; pre_vote = true; force = false })
      ~now:(Time.of_ms_f 1200.)
  in
  match sends acts with
  | [ (_, Rpc.Vote_response { granted; _ }) ] ->
      Alcotest.(check bool) "granted after lease expiry" true granted
  | _ -> Alcotest.fail "expected one response"

(* {2 Heartbeat suppression} *)

let suppress_config () =
  Config.with_extensions ~suppress_heartbeats_under_load:true
    ~consolidated_timer:false (Config.dynatune ())

let test_suppression_skips_heartbeat_after_append () =
  let s = make ~config:(suppress_config ()) ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  (* Propose + flush puts an append in flight toward every follower. *)
  ignore
    (Server.handle s ~now:(Time.ms 10)
       (Server.Propose { payload = "x"; client_id = 1; seq = 1 }));
  ignore (Server.handle s ~now:(Time.ms 11) Server.Flush_due);
  (* A heartbeat due right after must be suppressed (but re-armed). *)
  let acts = Server.handle s ~now:(Time.ms 20) (Server.Heartbeat_due (nid 1)) in
  Alcotest.(check int) "no heartbeat sent" 0 (List.length (heartbeats acts));
  Alcotest.(check bool) "timer re-armed" true
    (List.exists
       (function Server.Arm_heartbeat _ -> true | _ -> false)
       acts)

let test_suppression_expires () =
  let s = make ~config:(suppress_config ()) ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  ignore
    (Server.handle s ~now:(Time.ms 10)
       (Server.Propose { payload = "x"; client_id = 1; seq = 1 }));
  ignore (Server.handle s ~now:(Time.ms 11) Server.Flush_due);
  (* Far beyond the interval, the heartbeat flows again. *)
  let acts =
    Server.handle s ~now:(Time.sec 10) (Server.Heartbeat_due (nid 1))
  in
  Alcotest.(check int) "heartbeat sent after quiet period" 1
    (List.length (heartbeats acts))

let test_no_suppression_by_default () =
  let s = make ~config:(Config.dynatune ()) ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  ignore
    (Server.handle s ~now:(Time.ms 10)
       (Server.Propose { payload = "x"; client_id = 1; seq = 1 }));
  ignore (Server.handle s ~now:(Time.ms 11) Server.Flush_due);
  let acts = Server.handle s ~now:(Time.ms 20) (Server.Heartbeat_due (nid 1)) in
  Alcotest.(check int) "heartbeat still sent" 1
    (List.length (heartbeats acts))

(* {2 Consolidated timer} *)

let consolidated_config () =
  Config.with_extensions ~suppress_heartbeats_under_load:false
    ~consolidated_timer:true (Config.dynatune ())

let test_consolidated_uses_broadcast () =
  let s = make ~config:(consolidated_config ()) ~self:0 () in
  ignore (Server.start s);
  let acts = elect s ~now:Time.zero in
  Alcotest.(check bool) "broadcast timer armed" true
    (List.exists (function Server.Arm_broadcast _ -> true | _ -> false) acts);
  Alcotest.(check bool) "no per-peer timers" false
    (List.exists (function Server.Arm_heartbeat _ -> true | _ -> false) acts)

let test_consolidated_broadcast_sends_all () =
  let s = make ~config:(consolidated_config ()) ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  let acts = Server.handle s ~now:(Time.ms 100) Server.Broadcast_due in
  Alcotest.(check int) "heartbeats to every follower" 4
    (List.length (heartbeats acts))

let test_consolidated_interval_is_minimum () =
  let s = make ~config:(consolidated_config ()) ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  (* Followers piggyback different tuned h values. *)
  List.iter
    (fun (from, h) ->
      ignore
        (recv s ~from
           (Rpc.Heartbeat_response
              {
                term = Server.term s;
                hb_id = 0;
                echo_sent_at = Time.zero;
                tuned_h = Some h;
                hr_gen = 0;
              })
           ~now:(Time.ms 50)))
    [ (1, Time.ms 80); (2, Time.ms 30); (3, Time.ms 120) ];
  let acts = Server.handle s ~now:(Time.ms 100) Server.Broadcast_due in
  let rearm =
    List.filter_map
      (function Server.Arm_broadcast a -> Some a | _ -> None)
      acts
  in
  Alcotest.(check (list int)) "re-armed at the minimum tuned h"
    [ Time.ms 30 ] rearm

(* {2 Snapshot / read / transfer message edge cases} *)

let test_stale_install_snapshot_rejected () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  (* Establish term 5 first. *)
  ignore
    (recv s ~from:3
       (Rpc.Heartbeat
          {
            term = 5;
            commit = 0;
            hb_id = 0;
            sent_at = Time.zero;
            measured_rtt = None;
            hb_gen = 0;
          })
       ~now:Time.zero);
  let acts =
    recv s ~from:1
      (Rpc.Install_snapshot
         {
           term = 2;
           last_index = 50;
           last_term = 2;
           voters = Array.of_list (Node_id.range 5);
           learners = [||];
           data = "stale";
         })
      ~now:(Time.ms 1)
  in
  (match sends acts with
  | [ (_, Rpc.Install_snapshot_response { term; _ }) ] ->
      Alcotest.(check int) "carries our higher term" 5 term
  | _ -> Alcotest.fail "expected one response");
  Alcotest.(check int) "log untouched" 0
    (Raft.Log.snapshot_index (Server.log s))

let test_install_snapshot_applies () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts =
    recv s ~from:3
      (Rpc.Install_snapshot
         {
           term = 4;
           last_index = 30;
           last_term = 4;
           voters = Array.of_list (Node_id.range 5);
           learners = [||];
           data = "payload";
         })
      ~now:Time.zero
  in
  Alcotest.(check int) "boundary adopted" 30
    (Raft.Log.snapshot_index (Server.log s));
  Alcotest.(check int) "commit jumps to the snapshot" 30
    (Server.commit_index s);
  Alcotest.(check bool) "SM install action emitted" true
    (List.exists
       (function
         | Server.Install_sm { data = "payload"; last_index = 30 } -> true
         | _ -> false)
       acts);
  match
    List.filter_map
      (fun a ->
        match a with
        | Server.Send { msg = Rpc.Install_snapshot_response r; _ } -> Some r
        | _ -> None)
      acts
  with
  | [ r ] -> Alcotest.(check int) "acks the snapshot point" 30 r.Rpc.match_index
  | _ -> Alcotest.fail "expected one snapshot response"

let test_read_rejected_on_follower () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  let acts =
    Server.handle s ~now:Time.zero (Server.Read { client_id = 1; seq = 9 })
  in
  Alcotest.(check bool) "rejected" true
    (List.exists
       (function
         | Server.Reject_proposal { client_id = 1; seq = 9 } -> true
         | _ -> false)
       acts)

let test_read_confirmation_requires_fresh_echo () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  ignore
    (Server.handle s ~now:(Time.ms 100) (Server.Read { client_id = 1; seq = 1 }));
  (* Echoes of heartbeats sent BEFORE the read must not confirm it. *)
  let stale_echo from =
    recv s ~from
      (Rpc.Heartbeat_response
         {
           term = Server.term s;
           hb_id = 0;
           echo_sent_at = Time.ms 50;
           tuned_h = None;
           hr_gen = 0;
         })
      ~now:(Time.ms 150)
  in
  let served acts =
    List.exists
      (function Server.Serve_read _ -> true | _ -> false)
      acts
  in
  Alcotest.(check bool) "stale echo 1 not enough" false (served (stale_echo 1));
  Alcotest.(check bool) "stale echo 2 not enough" false (served (stale_echo 2));
  (* Fresh echoes (sent at/after registration) confirm. *)
  let fresh_echo from =
    recv s ~from
      (Rpc.Heartbeat_response
         {
           term = Server.term s;
           hb_id = 1;
           echo_sent_at = Time.ms 100;
           tuned_h = None;
           hr_gen = 0;
         })
      ~now:(Time.ms 200)
  in
  Alcotest.(check bool) "one fresh echo not quorum" false
    (served (fresh_echo 1));
  Alcotest.(check bool) "second fresh echo serves" true (served (fresh_echo 2))

let test_timeout_now_triggers_forced_election () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore
    (recv s ~from:3
       (Rpc.Heartbeat
          {
            term = 2;
            commit = 0;
            hb_id = 0;
            sent_at = Time.zero;
            measured_rtt = None;
            hb_gen = 0;
          })
       ~now:Time.zero);
  let acts = recv s ~from:3 (Rpc.Timeout_now { term = 2 }) ~now:(Time.ms 1) in
  Alcotest.(check bool) "became candidate immediately" true
    (Server.role s = Types.Candidate);
  Alcotest.(check int) "term bumped" 3 (Server.term s);
  let forced =
    List.exists
      (fun (_, m) ->
        match m with
        | Rpc.Vote_request { force = true; pre_vote = false; _ } -> true
        | _ -> false)
      (sends acts)
  in
  Alcotest.(check bool) "votes carry the force flag" true forced

let test_forced_vote_bypasses_lease () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore
    (recv s ~from:3
       (Rpc.Heartbeat
          {
            term = 1;
            commit = 0;
            hb_id = 0;
            sent_at = Time.zero;
            measured_rtt = None;
            hb_gen = 0;
          })
       ~now:Time.zero);
  (* Within the lease, a normal campaign is ignored but a forced one is
     granted. *)
  let acts =
    recv s ~from:1
      (Rpc.Vote_request
         {
           term = 2;
           last_log_index = 0;
           last_log_term = 0;
           pre_vote = false;
           force = true;
         })
      ~now:(Time.ms 5)
  in
  match sends acts with
  | [ (_, Rpc.Vote_response { granted; _ }) ] ->
      Alcotest.(check bool) "forced vote granted under lease" true granted
  | _ -> Alcotest.fail "expected one response"

let test_leader_ignores_timeout_now () =
  let s = make ~self:0 () in
  ignore (Server.start s);
  ignore (elect s ~now:Time.zero);
  let term = Server.term s in
  ignore (recv s ~from:1 (Rpc.Timeout_now { term }) ~now:(Time.ms 1));
  Alcotest.(check bool) "leader unmoved" true (Server.role s = Types.Leader);
  Alcotest.(check int) "term unchanged" term (Server.term s)

let tests =
  [
    Alcotest.test_case "checkquorum: armed on election" `Quick
      test_checkquorum_armed_on_election;
    Alcotest.test_case "checkquorum: abdicates without acks" `Quick
      test_checkquorum_steps_down_without_acks;
    Alcotest.test_case "checkquorum: survives with acks" `Quick
      test_checkquorum_survives_with_acks;
    Alcotest.test_case "checkquorum: window resets" `Quick
      test_checkquorum_window_resets;
    Alcotest.test_case "checkquorum: can be disabled" `Quick
      test_checkquorum_disabled;
    Alcotest.test_case "lease: expires after base timeout" `Quick
      test_lease_expires_after_base_timeout;
    Alcotest.test_case "suppression: skips after append" `Quick
      test_suppression_skips_heartbeat_after_append;
    Alcotest.test_case "suppression: expires" `Quick test_suppression_expires;
    Alcotest.test_case "suppression: off by default" `Quick
      test_no_suppression_by_default;
    Alcotest.test_case "consolidated: broadcast timer" `Quick
      test_consolidated_uses_broadcast;
    Alcotest.test_case "consolidated: sends to all" `Quick
      test_consolidated_broadcast_sends_all;
    Alcotest.test_case "consolidated: minimum interval" `Quick
      test_consolidated_interval_is_minimum;
    Alcotest.test_case "snapshot: stale rejected" `Quick
      test_stale_install_snapshot_rejected;
    Alcotest.test_case "snapshot: applies" `Quick test_install_snapshot_applies;
    Alcotest.test_case "read: rejected on follower" `Quick
      test_read_rejected_on_follower;
    Alcotest.test_case "read: needs fresh quorum echoes" `Quick
      test_read_confirmation_requires_fresh_echo;
    Alcotest.test_case "transfer: TimeoutNow forces election" `Quick
      test_timeout_now_triggers_forced_election;
    Alcotest.test_case "transfer: forced vote bypasses lease" `Quick
      test_forced_vote_bypasses_lease;
    Alcotest.test_case "transfer: leader ignores TimeoutNow" `Quick
      test_leader_ignores_timeout_now;
  ]
