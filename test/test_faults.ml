(* Tests for the two remaining fault models: network partitions and
   crash-recovery (volatile state lost, persistent state replayed). *)

module Cluster = Harness.Cluster
module Fault = Harness.Fault
module Monitor = Harness.Monitor
module Time = Des.Time
module Node_id = Netsim.Node_id

let lan () = Netsim.Conditions.(constant (profile ~rtt_ms:10. ~jitter:0.02 ()))

let make ?(seed = 23L) ?(n = 5) ?(config = Raft.Config.static ()) () =
  let c =
    Cluster.create ~seed ~n ~config ~conditions:(lan ()) ~check:Check.Always ()
  in
  Cluster.start c;
  c

let leader_id c =
  match Cluster.leader c with
  | Some l -> Raft.Node.id l
  | None -> Alcotest.fail "expected a leader"

let put c ~seq k v ~on_result =
  Cluster.submit_target c
    ~payload:(Kvsm.Command.to_payload (Kvsm.Command.Put { key = k; value = v }))
    ~client_id:1 ~seq ~on_result

(* {2 Partitions} *)

let test_partition_reachability () =
  let engine = Des.Engine.create () in
  let f : string Netsim.Fabric.t = Netsim.Fabric.create engine in
  let ids = Node_id.range 5 in
  List.iter (Netsim.Fabric.add_node f) ids;
  let n i = List.nth ids i in
  Netsim.Fabric.partition f [ [ n 0; n 1 ]; [ n 2; n 3 ] ];
  Alcotest.(check bool) "same group" true (Netsim.Fabric.reachable f (n 0) (n 1));
  Alcotest.(check bool) "cross group" false
    (Netsim.Fabric.reachable f (n 0) (n 2));
  (* n4 was not mentioned: it forms its own group. *)
  Alcotest.(check bool) "implicit group isolated" false
    (Netsim.Fabric.reachable f (n 4) (n 0));
  Alcotest.(check bool) "self always reachable" true
    (Netsim.Fabric.reachable f (n 4) (n 4));
  Netsim.Fabric.heal_partition f;
  Alcotest.(check bool) "healed" true (Netsim.Fabric.reachable f (n 0) (n 2))

let test_partition_rejects_duplicates () =
  let engine = Des.Engine.create () in
  let f : string Netsim.Fabric.t = Netsim.Fabric.create engine in
  let ids = Node_id.range 2 in
  List.iter (Netsim.Fabric.add_node f) ids;
  Alcotest.(check bool) "duplicate rejected" true
    (try
       Netsim.Fabric.partition f [ [ List.hd ids ]; [ List.hd ids ] ];
       false
     with Invalid_argument _ -> true)

let test_minority_partition_cannot_elect () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let leader = leader_id c in
  let followers =
    List.filter (fun id -> not (Node_id.equal id leader)) (Cluster.node_ids c)
  in
  (* Leader + one follower on the minority side. *)
  let minority = [ leader; List.hd followers ] in
  let majority = List.tl followers in
  Cluster.partition c [ minority; majority ];
  Cluster.run_for c (Time.sec 15);
  (* The majority elected a replacement. *)
  let new_leader = leader_id c in
  Alcotest.(check bool) "replacement on the majority side" true
    (List.exists (Node_id.equal new_leader) majority);
  (* The minority leader abdicated via CheckQuorum rather than serving
     stale reads forever. *)
  Alcotest.(check bool) "old leader stepped down" false
    (Raft.Types.is_leader
       (Raft.Server.role (Raft.Node.server (Cluster.node c leader))));
  (* Nobody on the minority side claims leadership. *)
  List.iter
    (fun id ->
      Alcotest.(check bool) "minority has no leader" false
        (Raft.Types.is_leader
           (Raft.Server.role (Raft.Node.server (Cluster.node c id)))))
    minority

let test_partition_heals_consistently () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let leader = leader_id c in
  let followers =
    List.filter (fun id -> not (Node_id.equal id leader)) (Cluster.node_ids c)
  in
  Cluster.partition c [ [ leader; List.hd followers ]; List.tl followers ];
  Cluster.run_for c (Time.sec 10);
  (* Write through the new (majority) leader during the partition. *)
  let committed = ref 0 in
  for i = 1 to 10 do
    (match
       put c ~seq:i
         (Printf.sprintf "part:%d" i)
         "v"
         ~on_result:(fun ~committed:ok -> if ok then incr committed)
     with
    | `Accepted -> ()
    | `Not_leader _ -> ());
    Cluster.run_for c (Time.ms 50)
  done;
  Cluster.run_for c (Time.sec 2);
  Alcotest.(check int) "majority committed during partition" 10 !committed;
  (* Heal: the minority catches up and every replica converges. *)
  Cluster.heal_partition c;
  Cluster.run_for c (Time.sec 10);
  let digests =
    List.map (fun id -> Kvsm.Store.state_digest (Cluster.store c id))
      (Cluster.node_ids c)
  in
  (match digests with
  | d :: rest -> List.iter (Alcotest.(check string) "converged" d) rest
  | [] -> Alcotest.fail "no stores");
  (* Exactly one leader after healing. *)
  let leaders =
    List.filter
      (fun id ->
        Raft.Types.is_leader
          (Raft.Server.role (Raft.Node.server (Cluster.node c id))))
      (Cluster.node_ids c)
  in
  Alcotest.(check int) "one leader" 1 (List.length leaders)

(* {2 Crash-recovery} *)

let test_crash_loses_volatile_keeps_log () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let committed = ref 0 in
  for i = 1 to 20 do
    (match
       put c ~seq:i
         (Printf.sprintf "k%d" i)
         "v"
         ~on_result:(fun ~committed:ok -> if ok then incr committed)
     with
    | `Accepted -> ()
    | `Not_leader _ -> ());
    Cluster.run_for c (Time.ms 30)
  done;
  Cluster.run_for c (Time.sec 2);
  Alcotest.(check int) "writes committed" 20 !committed;
  let leader = leader_id c in
  let victim =
    List.find (fun id -> not (Node_id.equal id leader)) (Cluster.node_ids c)
  in
  let log_before =
    Raft.Log.last_index (Raft.Server.log (Raft.Node.server (Cluster.node c victim)))
  in
  Fault.crash_and_restart c victim ~downtime:(Time.sec 2);
  let server = Raft.Node.server (Cluster.node c victim) in
  (* Immediately after restart: log preserved, commit index reset. *)
  Alcotest.(check int) "log survived the crash" log_before
    (Raft.Log.last_index (Raft.Server.log server));
  Alcotest.(check int) "commit index is volatile" 0
    (Raft.Server.commit_index server);
  Alcotest.(check int) "store rebuilt from scratch" 0
    (Kvsm.Store.size (Cluster.store c victim));
  (* The leader re-teaches the commit point; replay rebuilds the store. *)
  Cluster.run_for c (Time.sec 3);
  Alcotest.(check bool) "commit recovered" true
    (Raft.Server.commit_index server >= log_before);
  Alcotest.(check string) "replica converged after replay"
    (Kvsm.Store.state_digest (Cluster.store c leader))
    (Kvsm.Store.state_digest (Cluster.store c victim))

let test_crashed_node_keeps_vote () =
  (* Election safety across crashes: a restarted node must remember its
     vote and refuse to vote twice in the same term. *)
  let ids = Node_id.range 5 in
  let engine = Des.Engine.create ~seed:3L () in
  let fabric = Netsim.Fabric.create engine in
  List.iter (Netsim.Fabric.add_node fabric) ids;
  let trace = Des.Mtrace.create engine in
  let config = Raft.Config.static () in
  let peers = List.tl ids in
  let node =
    Raft.Node.create ~fabric ~trace ~id:(List.hd ids) ~peers ~config ()
  in
  Raft.Node.start node;
  (* Grant a vote in term 7 to peer 1. *)
  let dispatch msg =
    Netsim.Fabric.send fabric Netsim.Transport.Reliable ~src:(List.nth ids 1)
      ~dst:(List.hd ids) msg;
    Des.Engine.run_for engine (Time.ms 1)
  in
  dispatch
    (Raft.Rpc.Vote_request
       { term = 7; last_log_index = 0; last_log_term = 0; pre_vote = false; force = false });
  Alcotest.(check int) "term adopted" 7
    (Raft.Server.term (Raft.Node.server node));
  Raft.Node.crash node;
  Des.Engine.run_for engine (Time.ms 100);
  Raft.Node.restart node;
  let p = Raft.Server.persisted (Raft.Node.server node) in
  Alcotest.(check int) "term persisted" 7 p.Raft.Server.term;
  Alcotest.(check (option int)) "vote persisted" (Some 1)
    (Option.map Node_id.to_int p.Raft.Server.voted_for)

let test_crash_rejects_pending_waiters () =
  let c = make () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let leader = leader_id c in
  let result = ref None in
  (match
     put c ~seq:1 "doomed" "v" ~on_result:(fun ~committed ->
         result := Some committed)
   with
  | `Accepted -> ()
  | `Not_leader _ -> Alcotest.fail "leader refused");
  (* Crash the leader before the request can commit. *)
  Raft.Node.crash (Cluster.node c leader);
  Alcotest.(check (option bool)) "waiter rejected on crash" (Some false)
    !result;
  Raft.Node.restart (Cluster.node c leader)

let test_full_cluster_crash_recovery () =
  (* Every node crashes (rolling); all data committed before survives. *)
  let c = make ~config:(Raft.Config.dynatune ()) () in
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let committed = ref 0 in
  for i = 1 to 10 do
    (match
       put c ~seq:i (Printf.sprintf "stable:%d" i) "v"
         ~on_result:(fun ~committed:ok -> if ok then incr committed)
     with
    | `Accepted -> ()
    | `Not_leader _ -> ());
    Cluster.run_for c (Time.ms 30)
  done;
  Cluster.run_for c (Time.sec 2);
  Alcotest.(check int) "baseline committed" 10 !committed;
  List.iter
    (fun id ->
      Fault.crash_and_restart c id ~downtime:(Time.ms 500);
      Cluster.run_for c (Time.sec 5);
      ignore (Cluster.await_leader c ~timeout:(Time.sec 30)))
    (Cluster.node_ids c);
  Cluster.run_for c (Time.sec 5);
  (* All stores converge and contain the ten keys. *)
  let reference = Cluster.store c (leader_id c) in
  for i = 1 to 10 do
    Alcotest.(check (option string))
      (Printf.sprintf "key %d survived" i)
      (Some "v")
      (Kvsm.Store.find reference (Printf.sprintf "stable:%d" i))
  done

(* {2 Pipelined replication under faults}

   Regression for the replication engine v2: a follower that sleeps
   through a burst of writes wakes behind a pipeline of in-flight
   appends whose nacks are mostly stale (they answer superseded sends),
   on a link that also loses and duplicates datagrams.  The old
   nack-resends-everything behaviour re-appended the same window per
   stale nack; the stale rule plus the stalled-window nudge must still
   converge every replica. *)

let test_pipelined_laggard_catchup () =
  let config =
    Raft.Config.with_replication ~max_inflight_appends:4 ~append_backpressure:8
      ~max_entries_per_append:4
      (Raft.Config.static ())
  in
  let conditions =
    Netsim.Conditions.(
      constant (profile ~rtt_ms:20. ~jitter:0.3 ~loss:0.1 ~duplicate:0.05 ()))
  in
  let c =
    Cluster.create ~seed:31L ~n:5 ~config ~conditions ~check:Check.Always ()
  in
  (* A wire model so the bulk lanes and the egress queues engage. *)
  Netsim.Fabric.set_uniform_serialization (Cluster.fabric c) (Time.us 50);
  Cluster.start c;
  ignore (Cluster.await_leader c ~timeout:(Time.sec 20));
  let leader = leader_id c in
  let laggard =
    List.find (fun id -> not (Node_id.equal id leader)) (Cluster.node_ids c)
  in
  Fault.pause c laggard;
  let committed = ref 0 in
  for i = 1 to 30 do
    (match
       put c ~seq:i
         (Printf.sprintf "lag:%d" i)
         "v"
         ~on_result:(fun ~committed:ok -> if ok then incr committed)
     with
    | `Accepted -> ()
    | `Not_leader _ -> ());
    Cluster.run_for c (Time.ms 20)
  done;
  Cluster.run_for c (Time.sec 2);
  Alcotest.(check int) "quorum committed while the laggard slept" 30 !committed;
  Fault.recover c laggard;
  Cluster.run_for c (Time.sec 15);
  let digests =
    List.map
      (fun id -> Kvsm.Store.state_digest (Cluster.store c id))
      (Cluster.node_ids c)
  in
  (match digests with
  | d :: rest -> List.iter (Alcotest.(check string) "laggard caught up" d) rest
  | [] -> Alcotest.fail "no stores");
  (* The catch-up must not have re-appended entries it already sent:
     the laggard's log is exactly the leader's. *)
  Alcotest.(check int) "log lengths equal"
    (Raft.Log.last_index (Raft.Server.log (Raft.Node.server (Cluster.node c leader))))
    (Raft.Log.last_index (Raft.Server.log (Raft.Node.server (Cluster.node c laggard))))

let tests =
  [
    Alcotest.test_case "partition: reachability" `Quick
      test_partition_reachability;
    Alcotest.test_case "partition: duplicate groups rejected" `Quick
      test_partition_rejects_duplicates;
    Alcotest.test_case "partition: minority cannot elect" `Quick
      test_minority_partition_cannot_elect;
    Alcotest.test_case "partition: heal converges" `Quick
      test_partition_heals_consistently;
    Alcotest.test_case "crash: volatile lost, log kept" `Quick
      test_crash_loses_volatile_keeps_log;
    Alcotest.test_case "crash: vote persists" `Quick
      test_crashed_node_keeps_vote;
    Alcotest.test_case "crash: waiters rejected" `Quick
      test_crash_rejects_pending_waiters;
    Alcotest.test_case "crash: rolling full-cluster recovery" `Slow
      test_full_cluster_crash_recovery;
    Alcotest.test_case "pipelined laggard catches up under loss" `Quick
      test_pipelined_laggard_catchup;
  ]
