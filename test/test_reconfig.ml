(* Dynamic membership: single-server reconfiguration end-to-end,
   leadership transfer, the client's redirect loop bound, the checker's
   membership invariants, and the tuner's re-warm reason. *)

module Cluster = Harness.Cluster
module Node_id = Netsim.Node_id
module Time = Des.Time

let nid = Node_id.of_int

let lan ?(rtt_ms = 10.) () =
  Netsim.Conditions.(constant (profile ~rtt_ms ~jitter:0.02 ()))

let make ?(seed = 17L) ?(n = 3) ?(config = Raft.Config.static ())
    ?(check = Check.Always) ?telemetry () =
  let c =
    Cluster.create ~seed ~n ~config ~conditions:(lan ()) ~check ?telemetry ()
  in
  Cluster.start c;
  c

let await_leader_exn c =
  match Cluster.await_leader c ~timeout:(Time.sec 30) with
  | Some l -> l
  | None -> Alcotest.fail "no leader elected"

(* {2 Add / promote / remove} *)

let test_add_server_becomes_voter () =
  let c = make () in
  let _ = await_leader_exn c in
  let id, r = Cluster.add_server c in
  (match r with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "add_server must be accepted by a settled leader");
  Alcotest.(check bool) "promoted to voter" true
    (Cluster.await_voter c id ~timeout:(Time.sec 30));
  let s = Raft.Node.server (Option.get (Cluster.leader c)) in
  Alcotest.(check bool) "leader sees the voter" true (Raft.Server.is_voter s id);
  Alcotest.(check (list int))
    "no learners left"
    []
    (List.map Node_id.to_int (Raft.Server.learners s));
  Alcotest.(check int) "four members" 4
    (List.length (Raft.Server.members s));
  Cluster.check_now c

let test_remove_leader_hands_off () =
  let c = make ~n:3 () in
  let l = await_leader_exn c in
  let old = Raft.Node.id l in
  (match Cluster.remove_server c old with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "self-removal must be accepted");
  Alcotest.(check bool) "config settles" true
    (Cluster.await_config_quiet c ~timeout:(Time.sec 30));
  let l' = await_leader_exn c in
  Alcotest.(check bool) "leadership moved" false
    (Node_id.equal (Raft.Node.id l') old);
  Alcotest.(check bool) "removed from the config" false
    (List.exists (Node_id.equal old)
       (Raft.Server.members (Raft.Node.server l')));
  Cluster.retire c old;
  Cluster.run_for c (Time.sec 1);
  Cluster.check_now c

let test_second_change_pending () =
  let c = make ~n:3 () in
  let _ = await_leader_exn c in
  let joiner = Cluster.spawn_joiner c in
  (match Cluster.reconfigure c (Raft.Log.Add_learner joiner) with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "first change must be accepted");
  (* No engine time has passed: the first change cannot have committed,
     so a second one must be refused. *)
  let follower =
    List.find
      (fun id -> not (Node_id.equal id joiner))
      (Cluster.node_ids c)
  in
  (match Cluster.reconfigure c (Raft.Log.Remove follower) with
  | `Pending -> ()
  | `Ok _ -> Alcotest.fail "second change accepted while one is in flight"
  | _ -> Alcotest.fail "expected `Pending");
  Alcotest.(check bool) "settles eventually" true
    (Cluster.await_config_quiet c ~timeout:(Time.sec 30));
  Cluster.check_now c

let test_invalid_changes_rejected () =
  let c = make ~n:3 () in
  let l = await_leader_exn c in
  let member = Raft.Node.id l in
  (match Cluster.reconfigure c (Raft.Log.Add_learner member) with
  | `Invalid _ -> ()
  | _ -> Alcotest.fail "adding an existing member must be invalid");
  (match Cluster.reconfigure c (Raft.Log.Promote member) with
  | `Invalid _ -> ()
  | _ -> Alcotest.fail "promoting a non-learner must be invalid");
  match Cluster.reconfigure c (Raft.Log.Remove (nid 99)) with
  | `Invalid _ -> ()
  | _ -> Alcotest.fail "removing an unknown server must be invalid"

(* {2 Leadership transfer} *)

let test_transfer_leadership () =
  let c = make ~n:3 () in
  let l = await_leader_exn c in
  let target =
    List.find
      (fun id -> not (Node_id.equal id (Raft.Node.id l)))
      (Cluster.node_ids c)
  in
  (match Cluster.transfer_leadership c target with
  | `Ok -> ()
  | `Not_leader -> Alcotest.fail "transfer from the live leader refused");
  Cluster.run_for c (Time.sec 2);
  let l' = await_leader_exn c in
  Alcotest.(check int) "target leads" (Node_id.to_int target)
    (Node_id.to_int (Raft.Node.id l'));
  Cluster.check_now c

(* {2 Client redirect loop bound} *)

(* A service where every server always answers [`Not_leader] with a
   hint: the client must give up after exactly [max_redirects] hops,
   never loop. *)
let test_redirect_loop_bound () =
  let engine = Des.Engine.create ~seed:7L () in
  let attempts = ref 0 in
  let bouncing ~payload:_ ~client_id:_ ~seq:_ ~on_result:_ =
    incr attempts;
    `Not_leader (Some (nid 1))
  in
  let client =
    Kvsm.Client.create ~engine ~target:bouncing ~route:(fun _ -> bouncing)
      ~max_redirects:3 ~client_id:1 ~rate:10. ()
  in
  Kvsm.Client.start client;
  Des.Engine.run_for engine (Time.sec 2);
  Kvsm.Client.stop client;
  Des.Engine.run_for engine (Time.sec 1);
  let offered = Kvsm.Client.offered client in
  Alcotest.(check bool) "some arrivals" true (offered > 0);
  (* Each request: the initial attempt plus max_redirects hops. *)
  Alcotest.(check int) "attempts bounded" (4 * offered) !attempts;
  Alcotest.(check int) "every hop counted" (4 * offered)
    (Kvsm.Client.redirected client);
  Alcotest.(check int) "every request abandoned" offered
    (Kvsm.Client.abandoned client);
  Alcotest.(check int) "none completed" 0 (Kvsm.Client.completed client)

let test_redirects_disabled_without_route () =
  let engine = Des.Engine.create ~seed:8L () in
  let attempts = ref 0 in
  let bouncing ~payload:_ ~client_id:_ ~seq:_ ~on_result:_ =
    incr attempts;
    `Not_leader (Some (nid 1))
  in
  let client =
    Kvsm.Client.create ~engine ~target:bouncing ~client_id:1 ~rate:10. ()
  in
  Kvsm.Client.start client;
  Des.Engine.run_for engine (Time.sec 2);
  Kvsm.Client.stop client;
  let offered = Kvsm.Client.offered client in
  Alcotest.(check int) "one attempt per request" offered !attempts;
  Alcotest.(check int) "terminal redirects" offered
    (Kvsm.Client.redirected client)

(* {2 Checker membership invariants} *)

let fixture_view ?(role = Raft.Types.Follower) ?(voters = [ nid 0; nid 1 ])
    ?(learners = []) ?(votes = []) ?(entries = []) ?(commit = 0) id :
    Check.node_view =
  let entry_at i =
    List.find_opt (fun (e : Raft.Log.entry) -> e.Raft.Log.index = i) entries
  in
  {
    Check.id;
    alive = (fun () -> true);
    incarnation = (fun () -> 0);
    role = (fun () -> role);
    term = (fun () -> 1);
    commit_index = (fun () -> commit);
    voted_for = (fun () -> None);
    last_index =
      (fun () ->
        List.fold_left
          (fun acc (e : Raft.Log.entry) -> max acc e.Raft.Log.index)
          0 entries);
    snapshot_index = (fun () -> 0);
    term_at =
      (fun i ->
        if i = 0 then Some 0
        else
          Option.map (fun (e : Raft.Log.entry) -> e.Raft.Log.term) (entry_at i));
    entry_at;
    voters = (fun () -> voters);
    learners = (fun () -> learners);
    votes = (fun () -> votes);
  }

let expect_violation ~invariant nodes =
  let t = Check.create ~mode:Check.Always ~nodes () in
  match Check.check_now t with
  | () -> Alcotest.failf "checker missed a %s violation" invariant
  | exception Check.Violation v ->
      Alcotest.(check string) "invariant" invariant v.Check.invariant

let test_checker_learner_no_vote () =
  expect_violation ~invariant:"learner-no-vote"
    [
      fixture_view ~role:Raft.Types.Leader ~voters:[ nid 1 ]
        ~learners:[ nid 0 ] (nid 0);
      fixture_view ~voters:[ nid 1 ] ~learners:[ nid 0 ] (nid 1);
    ]

let test_checker_config_validity () =
  (* A committed Promote of a server that was never a learner. *)
  let entries =
    [
      {
        Raft.Log.term = 1;
        index = 1;
        command = Raft.Log.Config (Raft.Log.Promote (nid 5));
      };
    ]
  in
  expect_violation ~invariant:"config-validity"
    [
      fixture_view ~entries ~commit:1 (nid 0);
      fixture_view ~entries ~commit:1 (nid 1);
    ]

let test_checker_accepts_valid_history () =
  (* Add a learner, promote it, drop an original voter: every
     consecutive pair of configurations shares a quorum. *)
  let change i c =
    { Raft.Log.term = 1; index = i; command = Raft.Log.Config c }
  in
  let entries =
    [
      change 1 (Raft.Log.Add_learner (nid 2));
      change 2 (Raft.Log.Promote (nid 2));
      change 3 (Raft.Log.Remove (nid 1));
    ]
  in
  let t =
    Check.create ~mode:Check.Always
      ~nodes:
        [
          fixture_view ~entries ~commit:3 (nid 0);
          fixture_view ~entries ~commit:3 (nid 1);
        ]
      ()
  in
  Check.check_now t;
  Alcotest.(check bool) "checks ran" true (Check.checks_run t > 0)

(* {2 Tuner re-warm} *)

let test_tuner_rewarm_reason () =
  let telemetry = Telemetry.Metrics.create ~enabled:true () in
  let c =
    make ~seed:23L ~config:(Raft.Config.dynatune ()) ~check:Check.Off
      ~telemetry ()
  in
  let saw_reconfigured = ref false in
  Des.Mtrace.subscribe (Cluster.trace c) (fun _t probe ->
      match probe with
      | Raft.Probe.Tuner_decision { reason = Raft.Probe.Reconfigured; _ } ->
          saw_reconfigured := true
      | _ -> ());
  let _ = await_leader_exn c in
  (* Let the tuner reach Tuned before the membership change. *)
  Cluster.run_for c (Time.sec 10);
  let _, r = Cluster.add_server c in
  (match r with
  | `Ok _ -> ()
  | _ -> Alcotest.fail "add_server refused");
  Alcotest.(check bool) "settles" true
    (Cluster.await_config_quiet c ~timeout:(Time.sec 30));
  (* Re-warm needs a window of fresh heartbeat measurements. *)
  Cluster.run_for c (Time.sec 20);
  Alcotest.(check bool) "re-warmed decision tagged Reconfigured" true
    !saw_reconfigured

(* {2 The rolling-replace scenario} *)

let test_scenario_tuner_reduces_downtime () =
  match Scenarios.Reconfig.compare_modes ~rounds:4 () with
  | [ off; on ] ->
      Alcotest.(check string) "off mode" "raft" off.Scenarios.Reconfig.mode;
      Alcotest.(check string) "on mode" "dynatune" on.Scenarios.Reconfig.mode;
      Alcotest.(check int) "all replacements (off)" 20
        off.Scenarios.Reconfig.replacements;
      Alcotest.(check int) "all replacements (on)" 20
        on.Scenarios.Reconfig.replacements;
      Alcotest.(check int) "no stalls (off)" 0 off.Scenarios.Reconfig.stalls;
      Alcotest.(check int) "no stalls (on)" 0 on.Scenarios.Reconfig.stalls;
      Alcotest.(check bool) "tuner strictly reduces downtime" true
        (on.Scenarios.Reconfig.total_down_ms
        < off.Scenarios.Reconfig.total_down_ms)
  | _ -> Alcotest.fail "compare_modes must return the off/on pair"

let test_scenario_jobs_invariant () =
  let run jobs =
    Scenarios.Reconfig.run ~rounds:2 ~jobs ~shards:2 ~check:Check.Sample
      ~config:(Raft.Config.dynatune ())
      ()
  in
  let a = run 1 and b = run 2 in
  Alcotest.(check int64) "digest jobs-invariant" a.Scenarios.Reconfig.digest
    b.Scenarios.Reconfig.digest;
  Alcotest.(check (float 0.)) "downtime jobs-invariant"
    a.Scenarios.Reconfig.total_down_ms b.Scenarios.Reconfig.total_down_ms

let tests =
  [
    Alcotest.test_case "add_server: learner catches up, becomes voter" `Quick
      test_add_server_becomes_voter;
    Alcotest.test_case "remove_server: removed leader hands off" `Quick
      test_remove_leader_hands_off;
    Alcotest.test_case "reconfigure: second change pending" `Quick
      test_second_change_pending;
    Alcotest.test_case "reconfigure: invalid changes rejected" `Quick
      test_invalid_changes_rejected;
    Alcotest.test_case "transfer_leadership: target takes over" `Quick
      test_transfer_leadership;
    Alcotest.test_case "client: redirect loop bound" `Quick
      test_redirect_loop_bound;
    Alcotest.test_case "client: no route, no redirect loop" `Quick
      test_redirects_disabled_without_route;
    Alcotest.test_case "checker: learner must not lead" `Quick
      test_checker_learner_no_vote;
    Alcotest.test_case "checker: invalid promote caught" `Quick
      test_checker_config_validity;
    Alcotest.test_case "checker: valid history accepted" `Quick
      test_checker_accepts_valid_history;
    Alcotest.test_case "tuner: committed change re-warms" `Quick
      test_tuner_rewarm_reason;
    Alcotest.test_case "scenario: tuner reduces downtime" `Quick
      test_scenario_tuner_reduces_downtime;
    Alcotest.test_case "scenario: digest jobs-invariant" `Quick
      test_scenario_jobs_invariant;
  ]
